(* The scheduler-as-a-service subsystem: wire protocol round trips and
   totality, the bounded admission queue, the daemon lifecycle (serve,
   collapse, backpressure, timeout, drain), and the deterministic load
   generator.  Servers bind throwaway Unix sockets under the temp dir;
   everything runs in-process. *)

module Q = Numeric.Rational
module P = Service.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let q = Q.of_string

let platform specs =
  Dls.Platform.make_exn
    (List.mapi
       (fun i (c, w, d) ->
         Dls.Platform.worker
           ~name:(Printf.sprintf "P%d" (i + 1))
           ~c:(q c) ~w:(q w) ~d:(q d) ())
       specs)

let p2 () = platform [ ("1", "1", "1/2"); ("1", "2", "1/2") ]
let p3 () = platform [ ("1/2", "1", "1/4"); ("1", "2", "1/2"); ("2", "3", "1") ]

let tmp_socket () =
  let path = Filename.temp_file "dls-service" ".sock" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Protocol round trips                                                *)
(* ------------------------------------------------------------------ *)

let sample_requests () =
  [
    P.Solve
      {
        s_platform = p2 ();
        s_order = P.Fifo;
        s_model = Dls.Lp_model.One_port;
        s_fast = true;
        s_load = None;
      };
    P.Solve
      {
        s_platform = p3 ();
        s_order = P.Lifo;
        s_model = Dls.Lp_model.Two_port;
        s_fast = false;
        s_load = Some (q "1000");
      };
    P.Simulate
      {
        m_platform = p2 ();
        m_order = P.Fifo;
        m_items = 100;
        m_faults = None;
        m_replan = P.Replan_auto;
      };
    P.Simulate
      {
        m_platform = p3 ();
        m_order = P.Lifo;
        m_items = 50;
        m_faults =
          Some
            (Dls.Faults.make_exn
               [
                 Dls.Faults.Slowdown
                   { worker = 1; factor = q "3/2"; from_ = q "1/4" };
                 Dls.Faults.Crash { worker = 0; at = q "5/8" };
               ]);
        m_replan = P.Replan_policy Dls.Replan.Resolve;
      };
    P.Simulate
      {
        m_platform = p2 ();
        m_order = P.Fifo;
        m_items = 10;
        m_faults =
          Some
            (Dls.Faults.make_exn
               [
                 Dls.Faults.Stall
                   { worker = 1; at = q "1/8"; duration = q "1/2" };
               ]);
        m_replan = P.Replan_none;
      };
    P.Check (p3 ());
    P.Stats;
    P.Health;
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = P.request_to_string r in
      match P.parse_request ~line:1 line with
      | Error e -> Alcotest.failf "%S did not re-parse: %s" line (Dls.Errors.to_string e)
      | Ok r' ->
        (* canonical-form equality: the rendered line is the identity *)
        check_str "canonical line survives" line (P.request_to_string r'))
    (sample_requests ())

let sample_responses () =
  [
    P.Ok_solve
      {
        rho = q "6/11";
        sigma1 = [| 0; 1 |];
        alpha = [| q "4/11"; q "2/11" |];
        idle = [| q "0"; q "0" |];
        makespan = Some (q "550/3");
      };
    P.Ok_solve
      {
        rho = q "1/2";
        sigma1 = [| 2; 0; 1 |];
        alpha = [| q "1/4"; q "1/8"; q "1/8" |];
        idle = [| q "0"; q "1/16"; q "0" |];
        makespan = None;
      };
    P.Ok_simulate
      {
        sim_makespan = 118.;
        lp_makespan = 116.66666666666667;
        sim_valid = true;
        achieved = None;
        achieved_ratio = None;
        replanned = None;
      };
    P.Ok_simulate
      {
        sim_makespan = 1.5;
        lp_makespan = 1.25;
        sim_valid = true;
        achieved = Some 42.;
        achieved_ratio = Some 0.84;
        replanned = Some "margin:1/4";
      };
    P.Ok_check { check_ok = false; violations = 3 };
    P.Ok_stats
      {
        accepted = 10;
        served = 7;
        rejected = 2;
        timed_out = 1;
        failed = 2;
        malformed = 1;
        batches = 4;
        max_batch = 5;
        collapsed = 3;
        cache_hits = 6;
        cache_misses = 4;
        repair_probes = 3;
        repair_wins = 2;
        repair_pivots = 5;
        dispatchers = 4;
        steals = 6;
        queue_depth = 0;
        inflight = 0;
        p50_us = 256;
        p90_us = 1024;
        p99_us = 2048;
        max_us = 1843;
        uptime_s = 12.5;
      };
    P.Ok_health
      {
        healthy = true;
        draining = false;
        h_uptime_s = 3.25;
        h_queue_depth = 2;
        h_capacity = 64;
        h_workers = 4;
      };
    P.Overloaded { depth = 64; capacity = 64 };
    P.Timed_out { budget = 0.005 };
    P.Failed Dls.Errors.Unbounded;
    P.Failed Dls.Errors.Infeasible;
    P.Failed (Dls.Errors.Invalid_scenario "load must be positive");
    P.Failed (Dls.Errors.Io_error "server is draining");
    P.Failed
      (Dls.Errors.Parse_error
         { file = None; line = 1; col = 7; msg = "not a rational: \"x\"" });
  ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      let line = P.response_to_string r in
      match P.parse_response line with
      | Error e -> Alcotest.failf "%S did not re-parse: %s" line (Dls.Errors.to_string e)
      | Ok r' -> check_str "canonical line survives" line (P.response_to_string r'))
    (sample_responses ())

let expect_parse_error ~col input =
  match P.parse_request ~line:3 input with
  | Ok _ -> Alcotest.failf "%S parsed" input
  | Error (Dls.Errors.Parse_error { line; col = c; _ }) ->
    check_int (input ^ ": line") 3 line;
    check_int (input ^ ": col") col c
  | Error e ->
    Alcotest.failf "%S: expected a parse error, got %s" input
      (Dls.Errors.to_string e)

let test_request_error_positions () =
  (* Positions point at the offending token (1-based columns), as in
     the Platform_io/Schedule_io suites. *)
  expect_parse_error ~col:1 "frobnicate 1:1:1";
  expect_parse_error ~col:7 "solve 1:1";
  (* the position lands on the offending rational inside the spec *)
  expect_parse_error ~col:15 "solve 1:1:1,2:x:1";
  expect_parse_error ~col:13 "solve 1:1:1 order=sideways";
  expect_parse_error ~col:13 "solve 1:1:1 load=-3";
  expect_parse_error ~col:13 "solve 1:1:1 banana=7";
  expect_parse_error ~col:16 "simulate 1:1:1 items=0";
  expect_parse_error ~col:16 "simulate 1:1:1 faults=crash:0";
  expect_parse_error ~col:13 "check 1:1:1 extra=1";
  expect_parse_error ~col:7 "stats now";
  expect_parse_error ~col:1 ""

let test_parser_garbage_never_raises () =
  let rng = Random.State.make [| 2026; 8; 6; 5 |] in
  let alphabet =
    "0123456789/-.,:;=#solvecheckstamulathfqropidxyz overloadtimeru\t\"\\"
  in
  let garbage () =
    String.init
      (Random.State.int rng 100)
      (fun _ -> alphabet.[Random.State.int rng (String.length alphabet)])
  in
  for _ = 1 to 1000 do
    let s = garbage () in
    (match P.parse_request ~line:1 s with Ok _ | Error _ -> ());
    match P.parse_response s with Ok _ | Error _ -> ()
  done;
  (* mutations of valid lines must stay total too *)
  let valid =
    List.map P.request_to_string (sample_requests ())
    @ List.map P.response_to_string (sample_responses ())
  in
  List.iter
    (fun line ->
      let n = String.length line in
      for _ = 1 to 50 do
        let s =
          match Random.State.int rng 3 with
          | 0 -> String.sub line 0 (Random.State.int rng (n + 1))
          | 1 ->
            String.mapi
              (fun i ch ->
                if i = Random.State.int rng n then
                  alphabet.[Random.State.int rng (String.length alphabet)]
                else ch)
              line
          | _ ->
            line
            ^ String.init 3 (fun _ ->
                  alphabet.[Random.State.int rng (String.length alphabet)])
        in
        (match P.parse_request ~line:1 s with Ok _ | Error _ -> ());
        match P.parse_response s with Ok _ | Error _ -> ()
      done)
    valid

(* Non-finite floats: the renderer emits the canonical [nan]/[inf]/
   [-inf] spellings (never locale/libc-dependent garbage), and the
   parser rejects them with a typed parse error — a non-finite value on
   the wire can only be an upstream bug, so it must not round-trip
   silently into a client. *)
let test_float_nonfinite () =
  check_str "nan renders canonically" "timeout budget=nan"
    (P.response_to_string (P.Timed_out { budget = Float.nan }));
  check_str "inf renders canonically" "timeout budget=inf"
    (P.response_to_string (P.Timed_out { budget = Float.infinity }));
  check_str "-inf renders canonically" "timeout budget=-inf"
    (P.response_to_string (P.Timed_out { budget = Float.neg_infinity }));
  List.iter
    (fun line ->
      match P.parse_response line with
      | Ok _ -> Alcotest.failf "%S parsed" line
      | Error (Dls.Errors.Parse_error { msg; _ }) ->
        check (line ^ ": typed as non-finite") true
          (String.length msg >= 10 && String.sub msg 0 10 = "non-finite")
      | Error e ->
        Alcotest.failf "%S: expected a parse error, got %s" line
          (Dls.Errors.to_string e))
    [ "timeout budget=nan"; "timeout budget=inf"; "timeout budget=-inf" ];
  (match P.parse_response "timeout budget=banana" with
  | Error (Dls.Errors.Parse_error _) -> ()
  | Ok _ -> Alcotest.fail "garbage float parsed"
  | Error e -> Alcotest.failf "expected a parse error, got %s" (Dls.Errors.to_string e));
  (* finite values still round-trip to the shortest form *)
  check_str "finite float round-trips" "timeout budget=0.25"
    (P.response_to_string (P.Timed_out { budget = 0.25 }))

(* Platform specs: field order is pinned (a reversal regression), blanks
   around separators are tolerated, stray separators are rejected with
   the position of the offending field. *)
let test_platform_spec_hardening () =
  (match P.platform_of_spec ~line:1 ~col:1 "1:2:1/2,2:3:1" with
  | Error e -> Alcotest.failf "spec rejected: %s" (Dls.Errors.to_string e)
  | Ok p ->
    let w0 = Dls.Platform.get p 0 in
    check "worker order pinned" true
      (Q.equal w0.Dls.Platform.c Q.one
      && Q.equal w0.Dls.Platform.w (Q.of_int 2)
      && Q.equal w0.Dls.Platform.d (Q.of_ints 1 2)));
  (match P.platform_of_spec ~line:1 ~col:1 "1:2:1/2 ,\t2:3:1" with
  | Error e -> Alcotest.failf "blanks rejected: %s" (Dls.Errors.to_string e)
  | Ok p ->
    check_str "blanks trimmed, canonical spec" "1:2:1/2,2:3:1"
      (P.platform_to_spec p));
  List.iter
    (fun (spec, expect_col) ->
      match P.platform_of_spec ~line:1 ~col:1 spec with
      | Ok _ -> Alcotest.failf "spec %S: expected a parse error" spec
      | Error (Dls.Errors.Parse_error { col; _ }) ->
        check_int (Printf.sprintf "col of %S" spec) expect_col col
      | Error e ->
        Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e))
    [
      ("1:2:1/2,", 9);  (* stray ',' *)
      (",1:2:1/2", 1);
      ("1:2:1/2, ,2:3:1", 10);  (* whitespace-only worker *)
      ("1::1/2", 3);  (* stray ':' *)
      ("1:2:", 5);
      ("1:2", 1);  (* too few fields: blamed on the worker *)
    ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantiles () =
  let m = Service.Metrics.create () in
  (* Empty histogram: quantiles are 0, not an invented bucket edge. *)
  let s0 = Service.Metrics.snapshot m ~queue_depth:0 in
  check_int "empty p50" 0 s0.P.p50_us;
  check_int "empty p99" 0 s0.P.p99_us;
  (* Ordinary observations report the covering bucket's upper edge. *)
  Service.Metrics.observe_latency m 3e-6;
  let s1 = Service.Metrics.snapshot m ~queue_depth:0 in
  check_int "3us lands in [2,4)" 4 s1.P.p50_us;
  (* An absurd latency lands in the overflow bucket; the quantile must
     saturate at [max_tracked_us] instead of fabricating 2^40. *)
  let m2 = Service.Metrics.create () in
  Service.Metrics.observe_latency m2 1e7 (* seconds = 1e13 us *);
  let s2 = Service.Metrics.snapshot m2 ~queue_depth:0 in
  check_int "overflow saturates p50" Service.Metrics.max_tracked_us s2.P.p50_us;
  check_int "overflow saturates p99" Service.Metrics.max_tracked_us s2.P.p99_us;
  check "max_us keeps the raw value" true (s2.P.max_us > Service.Metrics.max_tracked_us)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_queue_basics () =
  let qq = Service.Queue.create ~capacity:2 in
  check "push 1" true (Service.Queue.try_push qq 1 = Service.Queue.Enqueued);
  check "push 2" true (Service.Queue.try_push qq 2 = Service.Queue.Enqueued);
  check "push 3 overloads" true
    (Service.Queue.try_push qq 3 = Service.Queue.Overloaded);
  check_int "length" 2 (Service.Queue.length qq);
  check "fifo pop" true (Service.Queue.pop qq = Some 1);
  check "fifo pop 2" true (Service.Queue.try_pop qq = Some 2);
  check "empty try_pop" true (Service.Queue.try_pop qq = None);
  Service.Queue.close qq;
  check "push after close" true
    (Service.Queue.try_push qq 4 = Service.Queue.Closed);
  check "pop after close+drain" true (Service.Queue.pop qq = None)

let test_queue_close_drains () =
  let qq = Service.Queue.create ~capacity:8 in
  for i = 1 to 5 do
    ignore (Service.Queue.try_push qq i)
  done;
  Service.Queue.close qq;
  let drained = ref [] in
  let rec go () =
    match Service.Queue.pop qq with
    | Some x -> drained := x :: !drained; go ()
    | None -> ()
  in
  go ();
  check "drained in order" true (List.rev !drained = [ 1; 2; 3; 4; 5 ])

let test_queue_concurrent () =
  (* Producer/consumer threads: every pushed item is popped exactly
     once, blocked consumers wake on close. *)
  let qq = Service.Queue.create ~capacity:16 in
  let producers = 4 and per_producer = 500 in
  let consumed = Array.make (producers * per_producer) 0 in
  let consumer () =
    let rec go () =
      match Service.Queue.pop qq with
      | Some x ->
        consumed.(x) <- consumed.(x) + 1;
        go ()
      | None -> ()
    in
    go ()
  in
  let producer p () =
    for i = 0 to per_producer - 1 do
      let x = (p * per_producer) + i in
      let rec push () =
        match Service.Queue.try_push qq x with
        | Service.Queue.Enqueued -> ()
        | Service.Queue.Overloaded ->
          Thread.yield ();
          push ()
        | Service.Queue.Closed -> Alcotest.fail "closed during production"
      in
      push ()
    done
  in
  let cs = Array.init 3 (fun _ -> Thread.create consumer ()) in
  let ps = Array.init producers (fun p -> Thread.create (producer p) ()) in
  Array.iter Thread.join ps;
  Service.Queue.close qq;
  Array.iter Thread.join cs;
  Array.iteri
    (fun x n -> if n <> 1 then Alcotest.failf "item %d consumed %d times" x n)
    consumed

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

let test_shards_exactly_once () =
  let shards = 4 and items = 64 in
  let s = Service.Shards.create ~shards ~capacity:256 in
  for i = 0 to items - 1 do
    match Service.Shards.try_push s ~key:(string_of_int i) i with
    | Service.Queue.Enqueued -> ()
    | Service.Queue.Overloaded -> Alcotest.failf "push %d overloaded" i
    | Service.Queue.Closed -> Alcotest.failf "push %d closed" i
  done;
  check_int "total length" items (Service.Shards.length s);
  Service.Shards.close s;
  (match Service.Shards.try_push s ~key:"x" 999 with
  | Service.Queue.Closed -> ()
  | _ -> Alcotest.fail "push after close not rejected");
  let seen = Array.init items (fun _ -> Atomic.make 0) in
  let consumer shard () =
    let rec go () =
      match Service.Shards.pop s ~shard with
      | None -> ()
      | Some (v, _src) ->
        Atomic.incr seen.(v);
        go ()
    in
    go ()
  in
  let ts = Array.init shards (fun i -> Thread.create (consumer i) ()) in
  Array.iter Thread.join ts;
  Array.iteri
    (fun i c ->
      let c = Atomic.get c in
      if c <> 1 then Alcotest.failf "item %d consumed %d times" i c)
    seen;
  check_int "fully drained" 0 (Service.Shards.length s)

let test_shards_steal () =
  let s = Service.Shards.create ~shards:2 ~capacity:8 in
  (* Find keys that land on shard 0, then consume from shard 1 only:
     everything it gets must be a steal. *)
  let key_on_0 =
    let rec find i =
      let k = string_of_int i in
      if Service.Shards.shard_of_key s k = 0 then k else find (i + 1)
    in
    find 0
  in
  for v = 1 to 3 do
    match Service.Shards.try_push s ~key:key_on_0 v with
    | Service.Queue.Enqueued -> ()
    | _ -> Alcotest.fail "push rejected"
  done;
  check_int "all on shard 0" 3 (Service.Shards.shard_length s 0);
  check_int "shard 1 empty" 0 (Service.Shards.shard_length s 1);
  (match Service.Shards.pop s ~shard:1 with
  | Some (_, src) -> check_int "claim was a steal from shard 0" 0 src
  | None -> Alcotest.fail "steal found nothing");
  Service.Shards.close s;
  let rec drain n =
    match Service.Shards.pop s ~shard:1 with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  check_int "rest drained after close" 2 (drain 0)

let test_shards_close_wakes_blocked_pop () =
  let s = Service.Shards.create ~shards:2 ~capacity:4 in
  let got = Atomic.make `Pending in
  let t =
    Thread.create
      (fun () ->
        match Service.Shards.pop s ~shard:0 with
        | None -> Atomic.set got `None
        | Some _ -> Atomic.set got `Some)
      ()
  in
  Thread.delay 0.02;
  Service.Shards.close s;
  Thread.join t;
  check "blocked pop unblocked with None" true (Atomic.get got = `None)

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let with_server cfg_of f =
  let path = tmp_socket () in
  let cfg = cfg_of (Service.Server.default_config (Service.Server.Unix_socket path)) in
  match Service.Server.start cfg with
  | Error e -> Alcotest.failf "server start: %s" (Dls.Errors.to_string e)
  | Ok server ->
    let r =
      match f server with
      | v -> v
      | exception exn ->
        Service.Server.stop server;
        raise exn
    in
    Service.Server.stop server;
    check "socket unlinked" false (Sys.file_exists path);
    r

let request_ok client req =
  match Service.Client.request client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "request failed: %s" (Dls.Errors.to_string e)

let drain_invariant label (s : P.stats_rep) =
  check_int (label ^ ": inflight 0") 0 s.P.inflight;
  check_int (label ^ ": queue empty") 0 s.P.queue_depth;
  check_int
    (label ^ ": accepted = served + timed_out + failed")
    s.P.accepted
    (s.P.served + s.P.timed_out + s.P.failed)

let solve_req p =
  P.Solve
    {
      s_platform = p;
      s_order = P.Fifo;
      s_model = Dls.Lp_model.One_port;
      s_fast = true;
      s_load = Some (q "1000");
    }

let test_server_solve_bit_identical () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 2 })
    (fun server ->
      let address = Service.Server.address server in
      let p = p3 () in
      let resp =
        match Service.Client.with_client address (fun cl -> request_ok cl (solve_req p)) with
        | Ok r -> r
        | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e)
      in
      let direct =
        Dls.Solve.solve_exn ~mode:`Exact
          (Dls.Scenario.fifo_exn p (Dls.Fifo.order p))
      in
      match resp with
      | P.Ok_solve r ->
        check_str "rho bit-identical" (Q.to_string direct.Dls.Lp_model.rho)
          (Q.to_string r.P.rho);
        Array.iteri
          (fun i a ->
            check_str
              (Printf.sprintf "alpha.(%d) bit-identical" i)
              (Q.to_string direct.Dls.Lp_model.alpha.(i))
              (Q.to_string a))
          r.P.alpha;
        check_str "makespan = time_for_load"
          (Q.to_string (Dls.Lp_model.time_for_load direct ~load:(q "1000")))
          (Q.to_string (Option.get r.P.makespan))
      | other ->
        Alcotest.failf "expected ok solve, got %s" (P.response_to_string other))

let test_server_single_flight_collapse () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        queue_capacity = 32;
        max_batch = 16;
        worker_delay = 0.02;
      })
    (fun server ->
      let address = Service.Server.address server in
      let p = p2 () in
      let clients = 10 in
      let replies = Array.make clients "" in
      let worker i () =
        match
          Service.Client.with_client address (fun cl ->
              P.response_to_string (request_ok cl (solve_req p)))
        with
        | Ok s -> replies.(i) <- s
        | Error e -> Alcotest.failf "client %d: %s" i (Dls.Errors.to_string e)
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join ts;
      Array.iter
        (fun s ->
          check_str "all duplicates share the canonical reply" replies.(0) s)
        replies;
      check "reply is ok" true (String.length replies.(0) > 2 && String.sub replies.(0) 0 2 = "ok");
      let s = Service.Server.stats server in
      check_int "all served" clients s.P.served;
      check "batching collapsed duplicates" true (s.P.collapsed >= 1);
      drain_invariant "collapse" s)

let test_server_overload () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        queue_capacity = 2;
        max_batch = 1;
        worker_delay = 0.05;
      })
    (fun server ->
      let address = Service.Server.address server in
      let p = p2 () in
      let clients = 12 in
      let outcomes = Array.make clients `Pending in
      let worker i () =
        match
          Service.Client.with_client address (fun cl -> request_ok cl (solve_req p))
        with
        | Ok (P.Overloaded _) -> outcomes.(i) <- `Overloaded
        | Ok r when P.is_ok r -> outcomes.(i) <- `Ok
        | Ok other ->
          Alcotest.failf "client %d: unexpected %s" i (P.response_to_string other)
        | Error e -> Alcotest.failf "client %d: %s" i (Dls.Errors.to_string e)
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join ts;
      let count tag = Array.fold_left (fun n o -> if o = tag then n + 1 else n) 0 outcomes in
      let ok = count `Ok and overloaded = count `Overloaded in
      check_int "every client answered" clients (ok + overloaded);
      check "backpressure rejected some" true (overloaded >= 1);
      check "some were served" true (ok >= 1);
      let s = Service.Server.stats server in
      check_int "rejected = overloaded responses" overloaded s.P.rejected;
      check_int "served = ok responses" ok s.P.served;
      drain_invariant "overload" s)

let test_server_timeout () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        worker_delay = 0.03;
        timeout = Some 0.005;
      })
    (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            ( request_ok cl (solve_req (p2 ())),
              request_ok cl (solve_req (p3 ())) ))
      in
      (match outcome with
      | Ok (P.Timed_out { budget = b1 }, P.Timed_out { budget = b2 }) ->
        check "budget echoed" true (b1 = 0.005 && b2 = 0.005)
      | Ok (r1, r2) ->
        Alcotest.failf "expected timeouts, got %s / %s"
          (P.response_to_string r1) (P.response_to_string r2)
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e));
      let s = Service.Server.stats server in
      check_int "both timed out" 2 s.P.timed_out;
      drain_invariant "timeout" s)

let test_server_drain_under_load () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        queue_capacity = 32;
        max_batch = 4;
        worker_delay = 0.02;
      })
    (fun server ->
      let address = Service.Server.address server in
      let clients = 8 in
      let answered = Atomic.make 0 in
      let worker i () =
        (* distinct platforms defeat dedup, keeping the queue busy *)
        let p =
          platform
            [ ("1", "1", "1/2"); (Printf.sprintf "%d/7" (i + 1), "2", "1/2") ]
        in
        match
          Service.Client.with_client address (fun cl -> request_ok cl (solve_req p))
        with
        | Ok _ -> Atomic.incr answered
        | Error _ ->
          (* admitted-after-drain connections may be refused: that is a
             clean refusal, not a lost in-flight request *)
          ()
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      (* let some requests get in flight, then drain concurrently *)
      Thread.delay 0.03;
      Service.Server.stop server;
      Array.iter Thread.join ts;
      let s = Service.Server.stats server in
      drain_invariant "drain" s;
      check "every admitted request was answered" true
        (Atomic.get answered >= s.P.served);
      check "progress before the drain" true (s.P.served >= 1))

let test_server_malformed_and_inline () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 1 })
    (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            let bad =
              match Service.Client.request_raw cl "solve 1:x:1" with
              | Ok (P.Failed (Dls.Errors.Parse_error { col; _ })) -> col
              | Ok other ->
                Alcotest.failf "expected parse error, got %s"
                  (P.response_to_string other)
              | Error e -> Alcotest.failf "transport: %s" (Dls.Errors.to_string e)
            in
            check_int "parse error column" 9 bad;
            (* the connection survives the malformed line *)
            (match request_ok cl P.Health with
            | P.Ok_health h ->
              check "healthy" true h.P.healthy;
              check "not draining" false h.P.draining
            | other ->
              Alcotest.failf "expected health, got %s" (P.response_to_string other));
            match request_ok cl P.Stats with
            | P.Ok_stats s -> s
            | other ->
              Alcotest.failf "expected stats, got %s" (P.response_to_string other))
      in
      match outcome with
      | Ok s ->
        check_int "malformed counted" 1 s.P.malformed;
        check_int "nothing admitted" 0 s.P.accepted
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Load generator                                                      *)
(* ------------------------------------------------------------------ *)

let test_loadgen_deterministic () =
  let render seed =
    Array.init 60 (fun i ->
        P.request_to_string (Service.Loadgen.request ~seed ~distinct:5 i))
  in
  check "same seed, same stream" true (render 7 = render 7);
  check "different seed, different stream" true (render 7 <> render 8);
  (* jobs-invariant mix: the stream touches solve, and the kind of
     request i is independent of who sends it *)
  let kinds =
    Array.to_list (render 7)
    |> List.map (fun line -> List.hd (String.split_on_char ' ' line))
    |> List.sort_uniq compare
  in
  check "solve present" true (List.mem "solve" kinds)

let test_loadgen_against_server () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      { c with Service.Server.jobs = 2; queue_capacity = 64; max_batch = 16 })
    (fun server ->
      let address = Service.Server.address server in
      match
        Service.Loadgen.run address ~connections:3 ~requests:30 ~seed:1
          ~distinct:5 ()
      with
      | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e)
      | Ok o ->
        check_int "all sent" 30 o.Service.Loadgen.sent;
        check_int "every request answered" 30
          (o.Service.Loadgen.ok + o.Service.Loadgen.overloaded
          + o.Service.Loadgen.timeouts + o.Service.Loadgen.failed);
        check "mostly ok" true (o.Service.Loadgen.ok >= 25);
        check_int "no failures" 0 o.Service.Loadgen.failed;
        let s = Service.Server.stats server in
        drain_invariant "loadgen" s)

let test_server_multi_dispatcher () =
  (* Four dispatchers over a skewed stream: every request still gets
     exactly one answer and the drain invariant holds; the stats line
     carries the dispatcher count. *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        dispatchers = 4;
        queue_capacity = 64;
        max_batch = 8;
      })
    (fun server ->
      let address = Service.Server.address server in
      match
        Service.Loadgen.run ~skew:1.2 address ~connections:6 ~requests:60
          ~seed:5 ~distinct:8 ()
      with
      | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e)
      | Ok o ->
        check_int "every request answered" 60
          (o.Service.Loadgen.ok + o.Service.Loadgen.overloaded
          + o.Service.Loadgen.timeouts + o.Service.Loadgen.failed);
        check_int "no failures" 0 o.Service.Loadgen.failed;
        let s = Service.Server.stats server in
        check_int "stats report the dispatcher count" 4 s.P.dispatchers;
        check "steals counter non-negative" true (s.P.steals >= 0);
        drain_invariant "multi-dispatcher" s)

let test_loadgen_skew () =
  (* Same seed, same skewed stream — request by request. *)
  let stream skew =
    Array.init 120 (fun i ->
        P.request_key (Service.Loadgen.request ~skew ~seed:3 ~distinct:8 i))
  in
  check "skewed stream deterministic" true (stream 1.5 = stream 1.5);
  (* skew = 0 is the classic uniform stream, bit for bit *)
  let classic =
    Array.init 120 (fun i ->
        P.request_key (Service.Loadgen.request ~seed:3 ~distinct:8 i))
  in
  check "skew 0 = classic stream" true (stream 0. = classic);
  (* A strong skew concentrates traffic: the most popular key must take
     a clearly larger share than under the uniform draw. *)
  let top_share keys =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun k ->
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      keys;
    Hashtbl.fold (fun _ n acc -> max n acc) tbl 0
  in
  check "skew concentrates the head" true
    (top_share (stream 2.) > top_share classic)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "error positions" `Quick test_request_error_positions;
          Alcotest.test_case "garbage never raises" `Quick
            test_parser_garbage_never_raises;
          Alcotest.test_case "non-finite floats" `Quick test_float_nonfinite;
          Alcotest.test_case "platform spec hardening" `Quick
            test_platform_spec_hardening;
        ] );
      ( "metrics",
        [ Alcotest.test_case "quantile edges" `Quick test_metrics_quantiles ] );
      ( "queue",
        [
          Alcotest.test_case "basics" `Quick test_queue_basics;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "concurrent" `Quick test_queue_concurrent;
        ] );
      ( "shards",
        [
          Alcotest.test_case "exactly-once across consumers" `Quick
            test_shards_exactly_once;
          Alcotest.test_case "dry shard steals from the longest" `Quick
            test_shards_steal;
          Alcotest.test_case "close wakes blocked pop" `Quick
            test_shards_close_wakes_blocked_pop;
        ] );
      ( "server",
        [
          Alcotest.test_case "solve bit-identical" `Quick
            test_server_solve_bit_identical;
          Alcotest.test_case "single-flight collapse" `Quick
            test_server_single_flight_collapse;
          Alcotest.test_case "overload backpressure" `Quick test_server_overload;
          Alcotest.test_case "per-request timeout" `Quick test_server_timeout;
          Alcotest.test_case "drain under load" `Quick test_server_drain_under_load;
          Alcotest.test_case "malformed + inline stats" `Quick
            test_server_malformed_and_inline;
          Alcotest.test_case "multi-dispatcher drain" `Quick
            test_server_multi_dispatcher;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_loadgen_deterministic;
          Alcotest.test_case "against a server" `Quick test_loadgen_against_server;
          Alcotest.test_case "skewed key popularity" `Quick test_loadgen_skew;
        ] );
    ]
