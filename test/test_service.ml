(* The scheduler-as-a-service subsystem: wire protocol round trips and
   totality, the bounded admission queue, the daemon lifecycle (serve,
   collapse, backpressure, timeout, drain), and the deterministic load
   generator.  Servers bind throwaway Unix sockets under the temp dir;
   everything runs in-process. *)

module Q = Numeric.Rational
module P = Service.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let q = Q.of_string

let platform specs =
  Dls.Platform.make_exn
    (List.mapi
       (fun i (c, w, d) ->
         Dls.Platform.worker
           ~name:(Printf.sprintf "P%d" (i + 1))
           ~c:(q c) ~w:(q w) ~d:(q d) ())
       specs)

let p2 () = platform [ ("1", "1", "1/2"); ("1", "2", "1/2") ]
let p3 () = platform [ ("1/2", "1", "1/4"); ("1", "2", "1/2"); ("2", "3", "1") ]

let tmp_socket () =
  let path = Filename.temp_file "dls-service" ".sock" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Protocol round trips                                                *)
(* ------------------------------------------------------------------ *)

let sample_requests () =
  [
    P.Solve
      {
        s_platform = p2 ();
        s_order = P.Fifo;
        s_model = Dls.Lp_model.One_port;
        s_fast = true;
        s_load = None;
      };
    P.Solve
      {
        s_platform = p3 ();
        s_order = P.Lifo;
        s_model = Dls.Lp_model.Two_port;
        s_fast = false;
        s_load = Some (q "1000");
      };
    P.Simulate
      {
        m_platform = p2 ();
        m_order = P.Fifo;
        m_items = 100;
        m_faults = None;
        m_replan = P.Replan_auto;
      };
    P.Simulate
      {
        m_platform = p3 ();
        m_order = P.Lifo;
        m_items = 50;
        m_faults =
          Some
            (Dls.Faults.make_exn
               [
                 Dls.Faults.Slowdown
                   { worker = 1; factor = q "3/2"; from_ = q "1/4" };
                 Dls.Faults.Crash { worker = 0; at = q "5/8" };
               ]);
        m_replan = P.Replan_policy Dls.Replan.Resolve;
      };
    P.Simulate
      {
        m_platform = p2 ();
        m_order = P.Fifo;
        m_items = 10;
        m_faults =
          Some
            (Dls.Faults.make_exn
               [
                 Dls.Faults.Stall
                   { worker = 1; at = q "1/8"; duration = q "1/2" };
               ]);
        m_replan = P.Replan_none;
      };
    P.Check (p3 ());
    P.Stats;
    P.Health;
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = P.request_to_string r in
      match P.parse_request ~line:1 line with
      | Error e -> Alcotest.failf "%S did not re-parse: %s" line (Dls.Errors.to_string e)
      | Ok r' ->
        (* canonical-form equality: the rendered line is the identity *)
        check_str "canonical line survives" line (P.request_to_string r'))
    (sample_requests ())

let sample_responses () =
  [
    P.Ok_solve
      {
        rho = q "6/11";
        sigma1 = [| 0; 1 |];
        alpha = [| q "4/11"; q "2/11" |];
        idle = [| q "0"; q "0" |];
        makespan = Some (q "550/3");
      };
    P.Ok_solve
      {
        rho = q "1/2";
        sigma1 = [| 2; 0; 1 |];
        alpha = [| q "1/4"; q "1/8"; q "1/8" |];
        idle = [| q "0"; q "1/16"; q "0" |];
        makespan = None;
      };
    P.Ok_simulate
      {
        sim_makespan = 118.;
        lp_makespan = 116.66666666666667;
        sim_valid = true;
        achieved = None;
        achieved_ratio = None;
        replanned = None;
      };
    P.Ok_simulate
      {
        sim_makespan = 1.5;
        lp_makespan = 1.25;
        sim_valid = true;
        achieved = Some 42.;
        achieved_ratio = Some 0.84;
        replanned = Some "margin:1/4";
      };
    P.Ok_check { check_ok = false; violations = 3 };
    P.Ok_stats
      {
        accepted = 10;
        served = 7;
        rejected = 2;
        timed_out = 1;
        failed = 2;
        malformed = 1;
        batches = 4;
        max_batch = 5;
        collapsed = 3;
        cache_hits = 6;
        cache_misses = 4;
        repair_probes = 3;
        repair_wins = 2;
        repair_pivots = 5;
        dispatchers = 4;
        steals = 6;
        shed = 2;
        brownouts = 1;
        hangups = 3;
        warm_hits = 5;
        journal_appended = 9;
        journal_replayed = 4;
        store_hits = 6;
        store_misses = 3;
        store_demoted = 2;
        compactions = 1;
        queue_depth = 0;
        inflight = 0;
        p50_us = 256;
        p90_us = 1024;
        p99_us = 2048;
        max_us = 1843;
        uptime_s = 12.5;
      };
    P.Ok_health
      {
        healthy = true;
        draining = false;
        h_mode = P.Mode_healthy;
        h_uptime_s = 3.25;
        h_queue_depth = 2;
        h_capacity = 64;
        h_workers = 4;
      };
    P.Ok_health
      {
        healthy = false;
        draining = false;
        h_mode = P.Mode_degraded;
        h_uptime_s = 7.5;
        h_queue_depth = 48;
        h_capacity = 64;
        h_workers = 4;
      };
    P.Overloaded { depth = 64; capacity = 64 };
    P.Timed_out { budget = 0.005 };
    P.Shed { wait = 0.75; budget = 0.25 };
    P.Failed Dls.Errors.Unbounded;
    P.Failed Dls.Errors.Infeasible;
    P.Failed (Dls.Errors.Invalid_scenario "load must be positive");
    P.Failed (Dls.Errors.Io_error "server is draining");
    P.Failed
      (Dls.Errors.Parse_error
         { file = None; line = 1; col = 7; msg = "not a rational: \"x\"" });
  ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      let line = P.response_to_string r in
      match P.parse_response line with
      | Error e -> Alcotest.failf "%S did not re-parse: %s" line (Dls.Errors.to_string e)
      | Ok r' -> check_str "canonical line survives" line (P.response_to_string r'))
    (sample_responses ())

let expect_parse_error ~col input =
  match P.parse_request ~line:3 input with
  | Ok _ -> Alcotest.failf "%S parsed" input
  | Error (Dls.Errors.Parse_error { line; col = c; _ }) ->
    check_int (input ^ ": line") 3 line;
    check_int (input ^ ": col") col c
  | Error e ->
    Alcotest.failf "%S: expected a parse error, got %s" input
      (Dls.Errors.to_string e)

let test_request_error_positions () =
  (* Positions point at the offending token (1-based columns), as in
     the Platform_io/Schedule_io suites. *)
  expect_parse_error ~col:1 "frobnicate 1:1:1";
  expect_parse_error ~col:7 "solve 1:1";
  (* the position lands on the offending rational inside the spec *)
  expect_parse_error ~col:15 "solve 1:1:1,2:x:1";
  expect_parse_error ~col:13 "solve 1:1:1 order=sideways";
  expect_parse_error ~col:13 "solve 1:1:1 load=-3";
  expect_parse_error ~col:13 "solve 1:1:1 banana=7";
  expect_parse_error ~col:16 "simulate 1:1:1 items=0";
  expect_parse_error ~col:16 "simulate 1:1:1 faults=crash:0";
  expect_parse_error ~col:13 "check 1:1:1 extra=1";
  expect_parse_error ~col:7 "stats now";
  expect_parse_error ~col:1 ""

let test_parser_garbage_never_raises () =
  let rng = Random.State.make [| 2026; 8; 6; 5 |] in
  let alphabet =
    "0123456789/-.,:;=#solvecheckstamulathfqropidxyz overloadtimeru\t\"\\"
  in
  let garbage () =
    String.init
      (Random.State.int rng 100)
      (fun _ -> alphabet.[Random.State.int rng (String.length alphabet)])
  in
  for _ = 1 to 1000 do
    let s = garbage () in
    (match P.parse_request ~line:1 s with Ok _ | Error _ -> ());
    match P.parse_response s with Ok _ | Error _ -> ()
  done;
  (* mutations of valid lines must stay total too *)
  let valid =
    List.map P.request_to_string (sample_requests ())
    @ List.map P.response_to_string (sample_responses ())
  in
  List.iter
    (fun line ->
      let n = String.length line in
      for _ = 1 to 50 do
        let s =
          match Random.State.int rng 3 with
          | 0 -> String.sub line 0 (Random.State.int rng (n + 1))
          | 1 ->
            String.mapi
              (fun i ch ->
                if i = Random.State.int rng n then
                  alphabet.[Random.State.int rng (String.length alphabet)]
                else ch)
              line
          | _ ->
            line
            ^ String.init 3 (fun _ ->
                  alphabet.[Random.State.int rng (String.length alphabet)])
        in
        (match P.parse_request ~line:1 s with Ok _ | Error _ -> ());
        match P.parse_response s with Ok _ | Error _ -> ()
      done)
    valid

(* Non-finite floats: the renderer emits the canonical [nan]/[inf]/
   [-inf] spellings (never locale/libc-dependent garbage), and the
   parser rejects them with a typed parse error — a non-finite value on
   the wire can only be an upstream bug, so it must not round-trip
   silently into a client. *)
let test_float_nonfinite () =
  check_str "nan renders canonically" "timeout budget=nan"
    (P.response_to_string (P.Timed_out { budget = Float.nan }));
  check_str "inf renders canonically" "timeout budget=inf"
    (P.response_to_string (P.Timed_out { budget = Float.infinity }));
  check_str "-inf renders canonically" "timeout budget=-inf"
    (P.response_to_string (P.Timed_out { budget = Float.neg_infinity }));
  List.iter
    (fun line ->
      match P.parse_response line with
      | Ok _ -> Alcotest.failf "%S parsed" line
      | Error (Dls.Errors.Parse_error { msg; _ }) ->
        check (line ^ ": typed as non-finite") true
          (String.length msg >= 10 && String.sub msg 0 10 = "non-finite")
      | Error e ->
        Alcotest.failf "%S: expected a parse error, got %s" line
          (Dls.Errors.to_string e))
    [ "timeout budget=nan"; "timeout budget=inf"; "timeout budget=-inf" ];
  (match P.parse_response "timeout budget=banana" with
  | Error (Dls.Errors.Parse_error _) -> ()
  | Ok _ -> Alcotest.fail "garbage float parsed"
  | Error e -> Alcotest.failf "expected a parse error, got %s" (Dls.Errors.to_string e));
  (* finite values still round-trip to the shortest form *)
  check_str "finite float round-trips" "timeout budget=0.25"
    (P.response_to_string (P.Timed_out { budget = 0.25 }))

(* Platform specs: field order is pinned (a reversal regression), blanks
   around separators are tolerated, stray separators are rejected with
   the position of the offending field. *)
let test_platform_spec_hardening () =
  (match P.platform_of_spec ~line:1 ~col:1 "1:2:1/2,2:3:1" with
  | Error e -> Alcotest.failf "spec rejected: %s" (Dls.Errors.to_string e)
  | Ok p ->
    let w0 = Dls.Platform.get p 0 in
    check "worker order pinned" true
      (Q.equal w0.Dls.Platform.c Q.one
      && Q.equal w0.Dls.Platform.w (Q.of_int 2)
      && Q.equal w0.Dls.Platform.d (Q.of_ints 1 2)));
  (match P.platform_of_spec ~line:1 ~col:1 "1:2:1/2 ,\t2:3:1" with
  | Error e -> Alcotest.failf "blanks rejected: %s" (Dls.Errors.to_string e)
  | Ok p ->
    check_str "blanks trimmed, canonical spec" "1:2:1/2,2:3:1"
      (P.platform_to_spec p));
  List.iter
    (fun (spec, expect_col) ->
      match P.platform_of_spec ~line:1 ~col:1 spec with
      | Ok _ -> Alcotest.failf "spec %S: expected a parse error" spec
      | Error (Dls.Errors.Parse_error { col; _ }) ->
        check_int (Printf.sprintf "col of %S" spec) expect_col col
      | Error e ->
        Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e))
    [
      ("1:2:1/2,", 9);  (* stray ',' *)
      (",1:2:1/2", 1);
      ("1:2:1/2, ,2:3:1", 10);  (* whitespace-only worker *)
      ("1::1/2", 3);  (* stray ':' *)
      ("1:2:", 5);
      ("1:2", 1);  (* too few fields: blamed on the worker *)
    ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_quantiles () =
  let m = Service.Metrics.create () in
  (* Empty histogram: quantiles are 0, not an invented bucket edge. *)
  let s0 = Service.Metrics.snapshot m ~queue_depth:0 in
  check_int "empty p50" 0 s0.P.p50_us;
  check_int "empty p99" 0 s0.P.p99_us;
  (* Ordinary observations report the covering bucket's upper edge. *)
  Service.Metrics.observe_latency m 3e-6;
  let s1 = Service.Metrics.snapshot m ~queue_depth:0 in
  check_int "3us lands in [2,4)" 4 s1.P.p50_us;
  (* An absurd latency lands in the overflow bucket; the quantile must
     saturate at [max_tracked_us] instead of fabricating 2^40. *)
  let m2 = Service.Metrics.create () in
  Service.Metrics.observe_latency m2 1e7 (* seconds = 1e13 us *);
  let s2 = Service.Metrics.snapshot m2 ~queue_depth:0 in
  check_int "overflow saturates p50" Service.Metrics.max_tracked_us s2.P.p50_us;
  check_int "overflow saturates p99" Service.Metrics.max_tracked_us s2.P.p99_us;
  check "max_us keeps the raw value" true (s2.P.max_us > Service.Metrics.max_tracked_us)

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_queue_basics () =
  let qq = Service.Queue.create ~capacity:2 in
  check "push 1" true (Service.Queue.try_push qq 1 = Service.Queue.Enqueued);
  check "push 2" true (Service.Queue.try_push qq 2 = Service.Queue.Enqueued);
  check "push 3 overloads" true
    (Service.Queue.try_push qq 3 = Service.Queue.Overloaded);
  check_int "length" 2 (Service.Queue.length qq);
  check "fifo pop" true (Service.Queue.pop qq = Some 1);
  check "fifo pop 2" true (Service.Queue.try_pop qq = Some 2);
  check "empty try_pop" true (Service.Queue.try_pop qq = None);
  Service.Queue.close qq;
  check "push after close" true
    (Service.Queue.try_push qq 4 = Service.Queue.Closed);
  check "pop after close+drain" true (Service.Queue.pop qq = None)

let test_queue_close_drains () =
  let qq = Service.Queue.create ~capacity:8 in
  for i = 1 to 5 do
    ignore (Service.Queue.try_push qq i)
  done;
  Service.Queue.close qq;
  let drained = ref [] in
  let rec go () =
    match Service.Queue.pop qq with
    | Some x -> drained := x :: !drained; go ()
    | None -> ()
  in
  go ();
  check "drained in order" true (List.rev !drained = [ 1; 2; 3; 4; 5 ])

let test_queue_concurrent () =
  (* Producer/consumer threads: every pushed item is popped exactly
     once, blocked consumers wake on close. *)
  let qq = Service.Queue.create ~capacity:16 in
  let producers = 4 and per_producer = 500 in
  let consumed = Array.make (producers * per_producer) 0 in
  let consumer () =
    let rec go () =
      match Service.Queue.pop qq with
      | Some x ->
        consumed.(x) <- consumed.(x) + 1;
        go ()
      | None -> ()
    in
    go ()
  in
  let producer p () =
    for i = 0 to per_producer - 1 do
      let x = (p * per_producer) + i in
      let rec push () =
        match Service.Queue.try_push qq x with
        | Service.Queue.Enqueued -> ()
        | Service.Queue.Overloaded ->
          Thread.yield ();
          push ()
        | Service.Queue.Closed -> Alcotest.fail "closed during production"
      in
      push ()
    done
  in
  let cs = Array.init 3 (fun _ -> Thread.create consumer ()) in
  let ps = Array.init producers (fun p -> Thread.create (producer p) ()) in
  Array.iter Thread.join ps;
  Service.Queue.close qq;
  Array.iter Thread.join cs;
  Array.iteri
    (fun x n -> if n <> 1 then Alcotest.failf "item %d consumed %d times" x n)
    consumed

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

let test_shards_exactly_once () =
  let shards = 4 and items = 64 in
  let s = Service.Shards.create ~shards ~capacity:256 in
  for i = 0 to items - 1 do
    match Service.Shards.try_push s ~key:(string_of_int i) i with
    | Service.Queue.Enqueued -> ()
    | Service.Queue.Overloaded -> Alcotest.failf "push %d overloaded" i
    | Service.Queue.Closed -> Alcotest.failf "push %d closed" i
  done;
  check_int "total length" items (Service.Shards.length s);
  Service.Shards.close s;
  (match Service.Shards.try_push s ~key:"x" 999 with
  | Service.Queue.Closed -> ()
  | _ -> Alcotest.fail "push after close not rejected");
  let seen = Array.init items (fun _ -> Atomic.make 0) in
  let consumer shard () =
    let rec go () =
      match Service.Shards.pop s ~shard with
      | None -> ()
      | Some (v, _src) ->
        Atomic.incr seen.(v);
        go ()
    in
    go ()
  in
  let ts = Array.init shards (fun i -> Thread.create (consumer i) ()) in
  Array.iter Thread.join ts;
  Array.iteri
    (fun i c ->
      let c = Atomic.get c in
      if c <> 1 then Alcotest.failf "item %d consumed %d times" i c)
    seen;
  check_int "fully drained" 0 (Service.Shards.length s)

let test_shards_steal () =
  let s = Service.Shards.create ~shards:2 ~capacity:8 in
  (* Find keys that land on shard 0, then consume from shard 1 only:
     everything it gets must be a steal. *)
  let key_on_0 =
    let rec find i =
      let k = string_of_int i in
      if Service.Shards.shard_of_key s k = 0 then k else find (i + 1)
    in
    find 0
  in
  for v = 1 to 3 do
    match Service.Shards.try_push s ~key:key_on_0 v with
    | Service.Queue.Enqueued -> ()
    | _ -> Alcotest.fail "push rejected"
  done;
  check_int "all on shard 0" 3 (Service.Shards.shard_length s 0);
  check_int "shard 1 empty" 0 (Service.Shards.shard_length s 1);
  (match Service.Shards.pop s ~shard:1 with
  | Some (_, src) -> check_int "claim was a steal from shard 0" 0 src
  | None -> Alcotest.fail "steal found nothing");
  Service.Shards.close s;
  let rec drain n =
    match Service.Shards.pop s ~shard:1 with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  check_int "rest drained after close" 2 (drain 0)

let test_shards_close_wakes_blocked_pop () =
  let s = Service.Shards.create ~shards:2 ~capacity:4 in
  let got = Atomic.make `Pending in
  let t =
    Thread.create
      (fun () ->
        match Service.Shards.pop s ~shard:0 with
        | None -> Atomic.set got `None
        | Some _ -> Atomic.set got `Some)
      ()
  in
  Thread.delay 0.02;
  Service.Shards.close s;
  Thread.join t;
  check "blocked pop unblocked with None" true (Atomic.get got = `None)

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let with_server cfg_of f =
  let path = tmp_socket () in
  let cfg = cfg_of (Service.Server.default_config (Service.Server.Unix_socket path)) in
  match Service.Server.start cfg with
  | Error e -> Alcotest.failf "server start: %s" (Dls.Errors.to_string e)
  | Ok server ->
    let r =
      match f server with
      | v -> v
      | exception exn ->
        Service.Server.stop server;
        raise exn
    in
    Service.Server.stop server;
    check "socket unlinked" false (Sys.file_exists path);
    r

let request_ok client req =
  match Service.Client.request client req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "request failed: %s" (Dls.Errors.to_string e)

let drain_invariant label (s : P.stats_rep) =
  check_int (label ^ ": inflight 0") 0 s.P.inflight;
  check_int (label ^ ": queue empty") 0 s.P.queue_depth;
  check_int
    (label ^ ": accepted = served + timed_out + failed + shed")
    s.P.accepted
    (s.P.served + s.P.timed_out + s.P.failed + s.P.shed)

let solve_req p =
  P.Solve
    {
      s_platform = p;
      s_order = P.Fifo;
      s_model = Dls.Lp_model.One_port;
      s_fast = true;
      s_load = Some (q "1000");
    }

let test_server_solve_bit_identical () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 2 })
    (fun server ->
      let address = Service.Server.address server in
      let p = p3 () in
      let resp =
        match Service.Client.with_client address (fun cl -> request_ok cl (solve_req p)) with
        | Ok r -> r
        | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e)
      in
      let direct =
        Dls.Solve.solve_exn ~mode:`Exact
          (Dls.Scenario.fifo_exn p (Dls.Fifo.order p))
      in
      match resp with
      | P.Ok_solve r ->
        check_str "rho bit-identical" (Q.to_string direct.Dls.Lp_model.rho)
          (Q.to_string r.P.rho);
        Array.iteri
          (fun i a ->
            check_str
              (Printf.sprintf "alpha.(%d) bit-identical" i)
              (Q.to_string direct.Dls.Lp_model.alpha.(i))
              (Q.to_string a))
          r.P.alpha;
        check_str "makespan = time_for_load"
          (Q.to_string (Dls.Lp_model.time_for_load direct ~load:(q "1000")))
          (Q.to_string (Option.get r.P.makespan))
      | other ->
        Alcotest.failf "expected ok solve, got %s" (P.response_to_string other))

let test_server_single_flight_collapse () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        queue_capacity = 32;
        max_batch = 16;
        worker_delay = 0.02;
      })
    (fun server ->
      let address = Service.Server.address server in
      let p = p2 () in
      let clients = 10 in
      let replies = Array.make clients "" in
      let worker i () =
        match
          Service.Client.with_client address (fun cl ->
              P.response_to_string (request_ok cl (solve_req p)))
        with
        | Ok s -> replies.(i) <- s
        | Error e -> Alcotest.failf "client %d: %s" i (Dls.Errors.to_string e)
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join ts;
      Array.iter
        (fun s ->
          check_str "all duplicates share the canonical reply" replies.(0) s)
        replies;
      check "reply is ok" true (String.length replies.(0) > 2 && String.sub replies.(0) 0 2 = "ok");
      let s = Service.Server.stats server in
      check_int "all served" clients s.P.served;
      check "batching collapsed duplicates" true (s.P.collapsed >= 1);
      drain_invariant "collapse" s)

let test_server_overload () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        queue_capacity = 2;
        max_batch = 1;
        worker_delay = 0.05;
      })
    (fun server ->
      let address = Service.Server.address server in
      let p = p2 () in
      let clients = 12 in
      let outcomes = Array.make clients `Pending in
      let worker i () =
        match
          Service.Client.with_client address (fun cl -> request_ok cl (solve_req p))
        with
        | Ok (P.Overloaded _) -> outcomes.(i) <- `Overloaded
        | Ok r when P.is_ok r -> outcomes.(i) <- `Ok
        | Ok other ->
          Alcotest.failf "client %d: unexpected %s" i (P.response_to_string other)
        | Error e -> Alcotest.failf "client %d: %s" i (Dls.Errors.to_string e)
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join ts;
      let count tag = Array.fold_left (fun n o -> if o = tag then n + 1 else n) 0 outcomes in
      let ok = count `Ok and overloaded = count `Overloaded in
      check_int "every client answered" clients (ok + overloaded);
      check "backpressure rejected some" true (overloaded >= 1);
      check "some were served" true (ok >= 1);
      let s = Service.Server.stats server in
      check_int "rejected = overloaded responses" overloaded s.P.rejected;
      check_int "served = ok responses" ok s.P.served;
      drain_invariant "overload" s)

let test_server_timeout () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        worker_delay = 0.03;
        timeout = Some 0.005;
      })
    (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            let first = request_ok cl (solve_req (p2 ())) in
            (* the first timeout seeds the admission predictor, so the
               second doomed request is shed instead of queued to die *)
            let second = request_ok cl (solve_req (p3 ())) in
            (first, second))
      in
      (match outcome with
      | Ok (P.Timed_out { budget }, P.Shed { budget = b2; _ }) ->
        check "budget echoed" true (budget = 0.005 && b2 = 0.005)
      | Ok (r1, r2) ->
        Alcotest.failf "expected timeout then shed, got %s / %s"
          (P.response_to_string r1) (P.response_to_string r2)
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e));
      let s = Service.Server.stats server in
      check_int "first timed out" 1 s.P.timed_out;
      check_int "second shed" 1 s.P.shed;
      drain_invariant "timeout" s)

let test_server_drain_under_load () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        queue_capacity = 32;
        max_batch = 4;
        worker_delay = 0.02;
      })
    (fun server ->
      let address = Service.Server.address server in
      let clients = 8 in
      let answered = Atomic.make 0 in
      let worker i () =
        (* distinct platforms defeat dedup, keeping the queue busy *)
        let p =
          platform
            [ ("1", "1", "1/2"); (Printf.sprintf "%d/7" (i + 1), "2", "1/2") ]
        in
        match
          Service.Client.with_client address (fun cl -> request_ok cl (solve_req p))
        with
        | Ok _ -> Atomic.incr answered
        | Error _ ->
          (* admitted-after-drain connections may be refused: that is a
             clean refusal, not a lost in-flight request *)
          ()
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      (* let some requests get in flight, then drain concurrently *)
      Thread.delay 0.03;
      Service.Server.stop server;
      Array.iter Thread.join ts;
      let s = Service.Server.stats server in
      drain_invariant "drain" s;
      check "every admitted request was answered" true
        (Atomic.get answered >= s.P.served);
      check "progress before the drain" true (s.P.served >= 1))

let test_server_malformed_and_inline () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 1 })
    (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            let bad =
              match Service.Client.request_raw cl "solve 1:x:1" with
              | Ok (P.Failed (Dls.Errors.Parse_error { col; _ })) -> col
              | Ok other ->
                Alcotest.failf "expected parse error, got %s"
                  (P.response_to_string other)
              | Error e -> Alcotest.failf "transport: %s" (Dls.Errors.to_string e)
            in
            check_int "parse error column" 9 bad;
            (* the connection survives the malformed line *)
            (match request_ok cl P.Health with
            | P.Ok_health h ->
              check "healthy" true h.P.healthy;
              check "not draining" false h.P.draining
            | other ->
              Alcotest.failf "expected health, got %s" (P.response_to_string other));
            match request_ok cl P.Stats with
            | P.Ok_stats s -> s
            | other ->
              Alcotest.failf "expected stats, got %s" (P.response_to_string other))
      in
      match outcome with
      | Ok s ->
        check_int "malformed counted" 1 s.P.malformed;
        check_int "nothing admitted" 0 s.P.accepted
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Load generator                                                      *)
(* ------------------------------------------------------------------ *)

let test_loadgen_deterministic () =
  let render seed =
    Array.init 60 (fun i ->
        P.request_to_string (Service.Loadgen.request ~seed ~distinct:5 i))
  in
  check "same seed, same stream" true (render 7 = render 7);
  check "different seed, different stream" true (render 7 <> render 8);
  (* jobs-invariant mix: the stream touches solve, and the kind of
     request i is independent of who sends it *)
  let kinds =
    Array.to_list (render 7)
    |> List.map (fun line -> List.hd (String.split_on_char ' ' line))
    |> List.sort_uniq compare
  in
  check "solve present" true (List.mem "solve" kinds)

let test_loadgen_against_server () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      { c with Service.Server.jobs = 2; queue_capacity = 64; max_batch = 16 })
    (fun server ->
      let address = Service.Server.address server in
      match
        Service.Loadgen.run address ~connections:3 ~requests:30 ~seed:1
          ~distinct:5 ()
      with
      | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e)
      | Ok o ->
        check_int "all sent" 30 o.Service.Loadgen.sent;
        check_int "every request answered" 30
          (o.Service.Loadgen.ok + o.Service.Loadgen.overloaded
          + o.Service.Loadgen.timeouts + o.Service.Loadgen.shed
          + o.Service.Loadgen.failed);
        check "mostly ok" true (o.Service.Loadgen.ok >= 25);
        check_int "no failures" 0 o.Service.Loadgen.failed;
        let s = Service.Server.stats server in
        drain_invariant "loadgen" s)

let test_server_multi_dispatcher () =
  (* Four dispatchers over a skewed stream: every request still gets
     exactly one answer and the drain invariant holds; the stats line
     carries the dispatcher count. *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 2;
        dispatchers = 4;
        queue_capacity = 64;
        max_batch = 8;
      })
    (fun server ->
      let address = Service.Server.address server in
      match
        Service.Loadgen.run ~skew:1.2 address ~connections:6 ~requests:60
          ~seed:5 ~distinct:8 ()
      with
      | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e)
      | Ok o ->
        check_int "every request answered" 60
          (o.Service.Loadgen.ok + o.Service.Loadgen.overloaded
          + o.Service.Loadgen.timeouts + o.Service.Loadgen.shed
          + o.Service.Loadgen.failed);
        check_int "no failures" 0 o.Service.Loadgen.failed;
        let s = Service.Server.stats server in
        check_int "stats report the dispatcher count" 4 s.P.dispatchers;
        check "steals counter non-negative" true (s.P.steals >= 0);
        drain_invariant "multi-dispatcher" s)

let test_loadgen_skew () =
  (* Same seed, same skewed stream — request by request. *)
  let stream skew =
    Array.init 120 (fun i ->
        P.request_key (Service.Loadgen.request ~skew ~seed:3 ~distinct:8 i))
  in
  check "skewed stream deterministic" true (stream 1.5 = stream 1.5);
  (* skew = 0 is the classic uniform stream, bit for bit *)
  let classic =
    Array.init 120 (fun i ->
        P.request_key (Service.Loadgen.request ~seed:3 ~distinct:8 i))
  in
  check "skew 0 = classic stream" true (stream 0. = classic);
  (* A strong skew concentrates traffic: the most popular key must take
     a clearly larger share than under the uniform draw. *)
  let top_share keys =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun k ->
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      keys;
    Hashtbl.fold (fun _ n acc -> max n acc) tbl 0
  in
  check "skew concentrates the head" true
    (top_share (stream 2.) > top_share classic)

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

module W = Service.Wire

let test_wire_byte_at_a_time () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = "first line\nsecond\r\nunterminated tail" in
  let writer =
    Thread.create
      (fun () ->
        String.iter
          (fun c ->
            ignore (Unix.write_substring a (String.make 1 c) 0 1);
            Thread.yield ())
          payload;
        Unix.close a)
      ()
  in
  let r = W.reader b in
  (match W.read_line r with
  | W.Line l -> check_str "line reassembled from 1-byte reads" "first line" l
  | _ -> Alcotest.fail "expected first line");
  (match W.read_line r with
  | W.Line l -> check_str "trailing \\r stripped" "second" l
  | _ -> Alcotest.fail "expected second line");
  (match W.read_line r with
  | W.Eof_mid_line -> ()
  | W.Line l -> Alcotest.failf "partial tail delivered as a line: %S" l
  | _ -> Alcotest.fail "expected eof mid-line");
  Thread.join writer;
  Unix.close b

let test_wire_read_deadline () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = W.reader b in
  (match W.read_line ~deadline_s:0.02 r with
  | W.Deadline -> ()
  | _ -> Alcotest.fail "expected deadline on a silent peer");
  (* a partial line before the deadline is kept, not delivered *)
  ignore (Unix.write_substring a "par" 0 3);
  (match W.read_line ~deadline_s:0.02 r with
  | W.Deadline -> ()
  | _ -> Alcotest.fail "expected deadline on a partial line");
  ignore (Unix.write_substring a "tial\n" 0 5);
  (match W.read_line r with
  | W.Line l -> check_str "buffered prefix survives the deadline" "partial" l
  | _ -> Alcotest.fail "expected the completed line");
  Unix.close a;
  (match W.read_line r with
  | W.Eof -> ()
  | _ -> Alcotest.fail "expected eof at a line boundary");
  Unix.close b

let test_server_kill_mid_line () =
  (* A client that vanishes half-way through a request line must be
     counted as a hangup and must not take the server down. *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 1 })
    (fun server ->
      let address = Service.Server.address server in
      let path =
        match address with
        | Service.Server.Unix_socket p -> p
        | Service.Server.Tcp _ -> Alcotest.fail "expected a unix socket"
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      ignore (Unix.write_substring fd "solve 1:1:1/2," 0 14);
      Unix.close fd;
      (* the connection thread notices asynchronously *)
      let t0 = Parallel.Clock.now () in
      let rec wait () =
        let s = Service.Server.stats server in
        if s.P.hangups >= 1 || Parallel.Clock.elapsed_s ~since:t0 > 2. then s
        else begin
          Thread.delay 0.005;
          wait ()
        end
      in
      let s = wait () in
      check_int "mid-line hangup counted" 1 s.P.hangups;
      check_int "nothing admitted" 0 s.P.accepted;
      match
        Service.Client.with_client address (fun cl -> request_ok cl P.Health)
      with
      | Ok (P.Ok_health h) -> check "server survives the hangup" true h.P.healthy
      | Ok other ->
        Alcotest.failf "expected health, got %s" (P.response_to_string other)
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e))

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

module J = Service.Journal

let tmp_journal () = Filename.temp_file "dls-journal" ".log"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let find_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then Alcotest.failf "substring %S not found" needle
    else if String.sub haystack i n = needle then i
    else go (i + 1)
  in
  go 0

let journal_open path =
  match J.open_ path with
  | Ok (j, replayed) -> (j, replayed)
  | Error e -> Alcotest.failf "journal open: %s" (Dls.Errors.to_string e)

let journal_append j ~key ~value =
  match J.append j ~key ~value with
  | Ok () -> ()
  | Error e -> Alcotest.failf "journal append: %s" (Dls.Errors.to_string e)

let seed_journal path records =
  let j, replayed = journal_open path in
  check_int "fresh journal replays nothing" 0 (List.length replayed);
  List.iter (fun (key, value) -> journal_append j ~key ~value) records;
  check_int "appends counted" (List.length records) (J.appended j);
  J.close j

let sample_records =
  [
    ("solve 1:1:1/2,1:2:1/2", "ok rho=3/4 alpha=1/2,1/4");
    ("check 1:1:1/2", "ok check valid=true violations=0");
    ("solve 2:1:1,1:3:1/2 load=1000", "ok rho=5/8 alpha=1/3,2/3 makespan=1600");
  ]

let test_journal_roundtrip () =
  let path = tmp_journal () in
  seed_journal path sample_records;
  let j, replayed = journal_open path in
  check "replay is oldest-first append order" true (replayed = sample_records);
  (* payloads must stay single-line: the record framing depends on it *)
  (match J.append j ~key:"bad\nkey" ~value:"v" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "newline-bearing key accepted");
  check_int "rejected append not counted" 0 (J.appended j);
  J.close j;
  Sys.remove path

let test_journal_truncated_tail () =
  let path = tmp_journal () in
  seed_journal path sample_records;
  (* crash mid-append: a torn record at the tail *)
  let good = read_file path in
  write_file path (good ^ "rec deadbeef 17 42\nsolve 3:1:1,2:");
  let j, replayed = journal_open path in
  check "torn tail costs nothing before it" true (replayed = sample_records);
  check_int "file truncated back to the last good boundary"
    (String.length good)
    (String.length (read_file path));
  (* the journal is immediately appendable again *)
  journal_append j ~key:"late" ~value:"ok late";
  J.close j;
  let j, replayed = journal_open path in
  check "post-repair appends replay" true
    (replayed = sample_records @ [ ("late", "ok late") ]);
  J.close j;
  Sys.remove path

let test_journal_crc_corruption () =
  let path = tmp_journal () in
  seed_journal path sample_records;
  (* flip one payload byte of the middle record: lengths and terminators
     still line up, only the checksum disagrees *)
  let contents = read_file path in
  let i = find_sub contents "check 1:1:1/2" in
  let corrupted = Bytes.of_string contents in
  Bytes.set corrupted i 'X';
  write_file path (Bytes.to_string corrupted);
  let j, replayed = journal_open path in
  check "replay stops at the first bad checksum" true
    (replayed = [ List.hd sample_records ]);
  J.close j;
  Sys.remove path

let test_journal_crc32_vector () =
  (* IEEE 802.3 check value: crc32("123456789") = 0xCBF43926. *)
  check_str "crc32 known-answer" "cbf43926"
    (Printf.sprintf "%08lx" (J.crc32 "123456789"))

(* ------------------------------------------------------------------ *)
(* Graceful degradation: shed, brownout, warm restart                  *)
(* ------------------------------------------------------------------ *)

let test_server_shed () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        worker_delay = 0.05;
        timeout = Some 0.04;
      })
    (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            (* The first request seeds the service-time EWMA (and times
               out: 50ms of work against a 40ms budget)... *)
            let first = request_ok cl (solve_req (p2 ())) in
            (* ...so the second is refused at admission: even at queue
               depth 0 the predicted service time alone blows the
               budget, and shedding beats queueing doomed work. *)
            let second = request_ok cl (solve_req (p3 ())) in
            (first, second))
      in
      (match outcome with
      | Ok (P.Timed_out _, P.Shed { wait; budget }) ->
        check "echoed budget" true (budget = 0.04);
        check "predicted wait exceeds the budget" true (wait > budget)
      | Ok (r1, r2) ->
        Alcotest.failf "expected timeout then shed, got %s / %s"
          (P.response_to_string r1) (P.response_to_string r2)
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e));
      let s = Service.Server.stats server in
      check_int "one timed out" 1 s.P.timed_out;
      check_int "one shed" 1 s.P.shed;
      check_int "shed counts as accepted" 2 s.P.accepted;
      drain_invariant "shed" s)

let test_server_brownout () =
  (* Sustained pressure must trip the brownout downgrade at least once,
     and every response served under it must still be bit-identical to
     the exact solver (the fast pipeline is certified: it falls back to
     exact whenever its own audit fails). *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      {
        c with
        Service.Server.jobs = 1;
        dispatchers = 1;
        queue_capacity = 8;
        max_batch = 1;
        worker_delay = 0.01;
        brownout = true;
      })
    (fun server ->
      let address = Service.Server.address server in
      let clients = 12 in
      let per_client = 2 in
      let answers = Array.make (clients * per_client) None in
      let worker i () =
        match
          Service.Client.with_client address (fun cl ->
              for k = 0 to per_client - 1 do
                let slot = (i * per_client) + k in
                let p =
                  platform
                    [
                      ("1", "1", "1/2");
                      (Printf.sprintf "%d/13" (slot + 1), "2", "1/2");
                    ]
                in
                (* keep the queue saturated: retry overload rejections *)
                let rec send () =
                  match request_ok cl (solve_req p) with
                  | P.Overloaded _ ->
                    Thread.delay 0.002;
                    send ()
                  | P.Ok_solve r -> answers.(slot) <- Some (p, r)
                  | other ->
                    Alcotest.failf "client %d: unexpected %s" i
                      (P.response_to_string other)
                in
                send ()
              done)
        with
        | Ok () -> ()
        | Error e -> Alcotest.failf "client %d: %s" i (Dls.Errors.to_string e)
      in
      let ts = Array.init clients (fun i -> Thread.create (worker i) ()) in
      Array.iter Thread.join ts;
      let s = Service.Server.stats server in
      check "sustained overload tripped the brownout" true (s.P.brownouts >= 1);
      check_int "every request eventually served" (clients * per_client)
        s.P.served;
      drain_invariant "brownout" s;
      Array.iter
        (fun a ->
          match a with
          | None -> Alcotest.fail "missing answer"
          | Some (p, r) ->
            let direct =
              Dls.Solve.solve_exn ~mode:`Exact
                (Dls.Scenario.fifo_exn p (Dls.Fifo.order p))
            in
            check_str "brownout answers bit-identical"
              (Q.to_string direct.Dls.Lp_model.rho)
              (Q.to_string r.P.rho))
        answers)

let test_server_journal_warm_restart () =
  Dls.Lp_model.reset_cache ();
  let journal = tmp_journal () in
  let reqs = [ solve_req (p2 ()); solve_req (p3 ()) ] in
  let first_dump, first_replies =
    with_server
      (fun c -> { c with Service.Server.jobs = 2; journal = Some journal })
      (fun server ->
        let address = Service.Server.address server in
        let replies =
          match
            Service.Client.with_client address (fun cl ->
                List.map
                  (fun r -> P.response_to_string (request_ok cl r))
                  reqs)
          with
          | Ok r -> r
          | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e)
        in
        let s = Service.Server.stats server in
        check_int "unique responses journaled" 2 s.P.journal_appended;
        check_int "fresh journal replays nothing" 0 s.P.journal_replayed;
        check_int "no warm hits before a restart" 0 s.P.warm_hits;
        (Service.Server.cache_dump server, replies))
  in
  check_int "warm cache holds the unique responses" 2 (List.length first_dump);
  (* restart on the same journal: the warm cache must reappear exactly *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 2; journal = Some journal })
    (fun server ->
      let address = Service.Server.address server in
      let s0 = Service.Server.stats server in
      check_int "journal replayed at boot" 2 s0.P.journal_replayed;
      check "replayed cache equals the pre-crash cache" true
        (Service.Server.cache_dump server = first_dump);
      let reply =
        match
          Service.Client.with_client address (fun cl ->
              P.response_to_string (request_ok cl (List.hd reqs)))
        with
        | Ok r -> r
        | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e)
      in
      check_str "warm reply bit-identical across the restart"
        (List.hd first_replies) reply;
      let s = Service.Server.stats server in
      check_int "repeat was a warm hit" 1 s.P.warm_hits;
      check_int "warm hit served at admission" 1 s.P.served;
      check_int "warm hit appends nothing new" 0 s.P.journal_appended;
      drain_invariant "warm restart" s);
  Sys.remove journal

(* ------------------------------------------------------------------ *)
(* Resilient client                                                    *)
(* ------------------------------------------------------------------ *)

module R = Service.Resilient

let test_resilient_breaker_lifecycle () =
  Dls.Lp_model.reset_cache ();
  let path = tmp_socket () in
  let address = Service.Server.Unix_socket path in
  let metrics = Service.Metrics.create () in
  let client =
    R.create ~metrics
      {
        (R.default_config address) with
        R.attempts = 2;
        attempt_timeout = Some 0.05;
        backoff_base = 0.001;
        backoff_max = 0.002;
        breaker_threshold = 2;
        breaker_cooldown = 0.15;
      }
  in
  (* nothing listens: both attempts fail, tripping the breaker *)
  (match R.request client P.Health with
  | Error _ -> ()
  | Ok r ->
    Alcotest.failf "request against a dead socket succeeded: %s"
      (P.response_to_string r));
  check "breaker tripped open" true (R.breaker client = R.Breaker_open);
  let st = R.stats client in
  check_int "one trip counted" 1 st.R.breaker_opens;
  check_int "metrics saw the trip" 1 (Service.Metrics.breaker_opens metrics);
  check "a retry was counted" true
    (st.R.retries >= 1 && Service.Metrics.retries metrics >= 1);
  (* while open: refused locally, without touching the network *)
  (match R.request client P.Health with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "open breaker let a request through");
  check_int "fast-fail counted" 1 (R.stats client).R.fast_fails;
  (* bring the server up; after the cooldown, the half-open probe
     succeeds and recloses the breaker *)
  (match
     Service.Server.start
       { (Service.Server.default_config address) with Service.Server.jobs = 1 }
   with
  | Error e -> Alcotest.failf "server start: %s" (Dls.Errors.to_string e)
  | Ok server ->
    Thread.delay 0.2;
    (match R.request client P.Health with
    | Ok (P.Ok_health h) -> check "probe answered" true h.P.healthy
    | Ok other ->
      Alcotest.failf "expected health, got %s" (P.response_to_string other)
    | Error e -> Alcotest.failf "half-open probe: %s" (Dls.Errors.to_string e));
    check "breaker reclosed" true (R.breaker client = R.Breaker_closed);
    R.close client;
    Service.Server.stop server)

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)
(* ------------------------------------------------------------------ *)

module C = Service.Chaos

let test_chaos_plan_roundtrip () =
  let plan = C.gen ~seed:5 ~conns:64 ~severity:0.9 in
  check "gen is deterministic" true
    (plan = C.gen ~seed:5 ~conns:64 ~severity:0.9);
  check "severity 0.9 draws faults" true (List.length plan >= 10);
  List.iter
    (fun s ->
      check "every fourth connection is clean" true (s.C.conn mod 4 <> 3))
    plan;
  (match C.of_string (C.to_string plan) with
  | Ok plan' -> check "plan text round trip" true (plan = plan')
  | Error e -> Alcotest.failf "plan parse: %s" (Dls.Errors.to_string e));
  check_int "severity 0 is a clean plan" 0
    (List.length (C.gen ~seed:5 ~conns:64 ~severity:0.));
  match C.of_string "conn 0 req 0 explode" with
  | Error (Dls.Errors.Parse_error _) -> ()
  | Error e ->
    Alcotest.failf "expected parse error, got %s" (Dls.Errors.to_string e)
  | Ok _ -> Alcotest.fail "malformed plan accepted"

let chaos_fault_of_int = function
  | 0 -> C.Drop
  | 1 -> C.Delay 0.004
  | 2 -> C.Stall
  | 3 -> C.Truncate
  | 4 -> C.Garble_req
  | 5 -> C.Garble_resp
  | _ -> C.Disconnect

let regimes = [| Check.Fuzz.Small_z; Check.Fuzz.Unit_z; Check.Fuzz.Big_z |]

(* The certification matrix: >= 300 seeded cases crossing every fault
   kind with every z-regime of the paper (plus clean pass-through
   cases), each on a fresh proxy so fault indices never leak between
   cases.  The resilient client must deliver the bit-identical answer
   with a bounded number of retries, and the server-side accounting
   invariant must survive the whole barrage. *)
let test_chaos_matrix () =
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c ->
      { c with Service.Server.jobs = 2; queue_capacity = 64; max_batch = 8 })
    (fun server ->
      let upstream = Service.Server.address server in
      let cases = 336 in
      let total_retries = ref 0 in
      for case = 0 to cases - 1 do
        let rng = Random.State.make [| 0xc4a05; case |] in
        let p = Check.Fuzz.gen_platform rng regimes.(case mod 3) in
        let req = solve_req p in
        let plan =
          if case mod 8 = 7 then [] (* clean pass-through *)
          else
            [ { C.conn = 0; req = 0; fault = chaos_fault_of_int (case mod 7) } ]
        in
        let fault_label =
          match plan with
          | [] -> "clean"
          | s :: _ -> C.fault_to_string s.C.fault
        in
        match
          C.start
            ~listen:(Service.Server.Unix_socket (tmp_socket ()))
            ~upstream plan
        with
        | Error e ->
          Alcotest.failf "case %d: proxy: %s" case (Dls.Errors.to_string e)
        | Ok proxy ->
          let client =
            R.create
              {
                (R.default_config (C.address proxy)) with
                R.attempts = 4;
                attempt_timeout = Some 0.05;
                backoff_base = 0.001;
                backoff_max = 0.004;
                jitter_seed = case;
              }
          in
          let resp =
            match R.request client req with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "case %d (%s): %s" case fault_label
                (Dls.Errors.to_string e)
          in
          let st = R.stats client in
          total_retries := !total_retries + st.R.retries;
          check
            (Printf.sprintf "case %d (%s): bounded retries" case fault_label)
            true (st.R.retries <= 3);
          R.close client;
          C.stop proxy;
          let direct =
            Dls.Solve.solve_exn ~mode:`Exact
              (Dls.Scenario.fifo_exn p (Dls.Fifo.order p))
          in
          (match resp with
          | P.Ok_solve r ->
            check_str
              (Printf.sprintf "case %d (%s): rho bit-identical" case fault_label)
              (Q.to_string direct.Dls.Lp_model.rho)
              (Q.to_string r.P.rho);
            check_str
              (Printf.sprintf "case %d (%s): makespan bit-identical" case
                 fault_label)
              (Q.to_string
                 (Dls.Lp_model.time_for_load direct ~load:(q "1000")))
              (Q.to_string (Option.get r.P.makespan))
          | other ->
            Alcotest.failf "case %d (%s): expected ok solve, got %s" case
              fault_label (P.response_to_string other))
      done;
      (* at most one retry per faulted case, plus slack for timing *)
      check "retry budget across the matrix" true (!total_retries <= cases);
      let s = Service.Server.stats server in
      check "garbled requests were refused, not served" true
        (s.P.malformed >= 1);
      drain_invariant "chaos matrix" s)

let test_loadgen_chaos_goodput () =
  (* Replies delayed past the caller's deadline count as throughput but
     not goodput — the two must be reported separately. *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 2 })
    (fun server ->
      let upstream = Service.Server.address server in
      let plan =
        [
          { C.conn = 0; req = 0; fault = C.Delay 0.06 };
          { C.conn = 1; req = 0; fault = C.Delay 0.06 };
        ]
      in
      match
        C.start ~listen:(Service.Server.Unix_socket (tmp_socket ())) ~upstream
          plan
      with
      | Error e -> Alcotest.failf "proxy: %s" (Dls.Errors.to_string e)
      | Ok proxy ->
        let rcfg =
          {
            (R.default_config upstream) with
            R.attempts = 3;
            attempt_timeout = Some 0.5;
          }
        in
        let r =
          Service.Loadgen.run ~resilient:rcfg ~deadline_s:0.03
            (C.address proxy) ~connections:2 ~requests:8 ~seed:11 ~distinct:4
            ()
        in
        C.stop proxy;
        (match r with
        | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e)
        | Ok o ->
          check_int "every request answered" 8
            (o.Service.Loadgen.ok + o.Service.Loadgen.overloaded
            + o.Service.Loadgen.timeouts + o.Service.Loadgen.shed
            + o.Service.Loadgen.failed);
          check_int "no failures" 0 o.Service.Loadgen.failed;
          check "delayed replies are throughput, not goodput" true
            (o.Service.Loadgen.goodput < o.Service.Loadgen.ok)))

let test_loadgen_chaos_resilient_beats_naive () =
  (* Same drop plan, two arms: the naive client loses every dropped
     request (it reconnects but never retries); the resilient client
     recovers all of them.  The plan drops the first request of each of
     the four initial connections, so the outcome is deterministic. *)
  Dls.Lp_model.reset_cache ();
  with_server
    (fun c -> { c with Service.Server.jobs = 2; queue_capacity = 64 })
    (fun server ->
      let upstream = Service.Server.address server in
      let plan =
        List.init 4 (fun c -> { C.conn = c; req = 0; fault = C.Drop })
      in
      let run_arm ?resilient () =
        match
          C.start
            ~listen:(Service.Server.Unix_socket (tmp_socket ()))
            ~upstream plan
        with
        | Error e -> Alcotest.failf "proxy: %s" (Dls.Errors.to_string e)
        | Ok proxy ->
          let r =
            Service.Loadgen.run ?resilient ~deadline_s:0.15 (C.address proxy)
              ~connections:4 ~requests:16 ~seed:2 ~distinct:4 ()
          in
          C.stop proxy;
          (match r with
          | Ok o -> o
          | Error e -> Alcotest.failf "loadgen: %s" (Dls.Errors.to_string e))
      in
      let naive = run_arm () in
      let rcfg =
        {
          (R.default_config upstream) with
          R.attempts = 3;
          attempt_timeout = Some 0.05;
          backoff_base = 0.001;
          backoff_max = 0.004;
        }
      in
      let resil = run_arm ~resilient:rcfg () in
      check_int "naive loses every dropped request" 4
        naive.Service.Loadgen.failed;
      check_int "naive throughput" 12 naive.Service.Loadgen.ok;
      check_int "resilient recovers them all" 16 resil.Service.Loadgen.ok;
      check_int "no resilient failures" 0 resil.Service.Loadgen.failed;
      check "retries did the recovering" true
        (resil.Service.Loadgen.retries >= 4);
      drain_invariant "chaos loadgen" (Service.Server.stats server))

(* ------------------------------------------------------------------ *)
(* Wire-format back compatibility                                      *)
(* ------------------------------------------------------------------ *)

let test_protocol_backcompat_lines () =
  (* Lines rendered by a pre-resilience daemon must parse with the new
     fields at their documented defaults. *)
  let old_stats =
    "ok stats accepted=10 served=7 rejected=1 timed_out=2 failed=1 \
     malformed=2 batches=3 max_batch=4 collapsed=1 cache_hits=5 \
     cache_misses=2 repair_probes=0 repair_wins=0 repair_pivots=0 \
     dispatchers=1 steals=0 queue_depth=0 inflight=0 p50_us=10 p90_us=20 \
     p99_us=30 max_us=40 uptime_s=1.5"
  in
  (match P.parse_response old_stats with
  | Ok (P.Ok_stats s) ->
    check_int "accepted preserved" 10 s.P.accepted;
    check_int "shed defaults to 0" 0 s.P.shed;
    check_int "brownouts defaults to 0" 0 s.P.brownouts;
    check_int "hangups defaults to 0" 0 s.P.hangups;
    check_int "warm_hits defaults to 0" 0 s.P.warm_hits;
    check_int "journal_appended defaults to 0" 0 s.P.journal_appended;
    check_int "journal_replayed defaults to 0" 0 s.P.journal_replayed
  | Ok other ->
    Alcotest.failf "expected stats, got %s" (P.response_to_string other)
  | Error e -> Alcotest.failf "old stats line: %s" (Dls.Errors.to_string e));
  let old_health mode_less =
    Printf.sprintf
      "ok health healthy=%s draining=%s uptime_s=2.5 queue=0 capacity=64 \
       workers=4"
      (if mode_less = `Healthy then "true" else "false")
      (if mode_less = `Draining then "true" else "false")
  in
  (match P.parse_response (old_health `Healthy) with
  | Ok (P.Ok_health h) ->
    check "healthy preserved" true h.P.healthy;
    check "absent mode derived as healthy" true (h.P.h_mode = P.Mode_healthy)
  | _ -> Alcotest.fail "old healthy line did not parse");
  match P.parse_response (old_health `Draining) with
  | Ok (P.Ok_health h) ->
    check "absent mode derived as draining" true (h.P.h_mode = P.Mode_draining)
  | _ -> Alcotest.fail "old draining line did not parse"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "error positions" `Quick test_request_error_positions;
          Alcotest.test_case "garbage never raises" `Quick
            test_parser_garbage_never_raises;
          Alcotest.test_case "non-finite floats" `Quick test_float_nonfinite;
          Alcotest.test_case "platform spec hardening" `Quick
            test_platform_spec_hardening;
          Alcotest.test_case "pre-resilience lines still parse" `Quick
            test_protocol_backcompat_lines;
        ] );
      ( "wire",
        [
          Alcotest.test_case "byte-at-a-time framing" `Quick
            test_wire_byte_at_a_time;
          Alcotest.test_case "read deadline keeps partial lines" `Quick
            test_wire_read_deadline;
        ] );
      ( "journal",
        [
          Alcotest.test_case "append/replay round trip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated, journal reusable" `Quick
            test_journal_truncated_tail;
          Alcotest.test_case "replay stops at a bad checksum" `Quick
            test_journal_crc_corruption;
          Alcotest.test_case "crc32 known-answer vector" `Quick
            test_journal_crc32_vector;
        ] );
      ( "metrics",
        [ Alcotest.test_case "quantile edges" `Quick test_metrics_quantiles ] );
      ( "queue",
        [
          Alcotest.test_case "basics" `Quick test_queue_basics;
          Alcotest.test_case "close drains" `Quick test_queue_close_drains;
          Alcotest.test_case "concurrent" `Quick test_queue_concurrent;
        ] );
      ( "shards",
        [
          Alcotest.test_case "exactly-once across consumers" `Quick
            test_shards_exactly_once;
          Alcotest.test_case "dry shard steals from the longest" `Quick
            test_shards_steal;
          Alcotest.test_case "close wakes blocked pop" `Quick
            test_shards_close_wakes_blocked_pop;
        ] );
      ( "server",
        [
          Alcotest.test_case "solve bit-identical" `Quick
            test_server_solve_bit_identical;
          Alcotest.test_case "single-flight collapse" `Quick
            test_server_single_flight_collapse;
          Alcotest.test_case "overload backpressure" `Quick test_server_overload;
          Alcotest.test_case "per-request timeout" `Quick test_server_timeout;
          Alcotest.test_case "drain under load" `Quick test_server_drain_under_load;
          Alcotest.test_case "malformed + inline stats" `Quick
            test_server_malformed_and_inline;
          Alcotest.test_case "multi-dispatcher drain" `Quick
            test_server_multi_dispatcher;
          Alcotest.test_case "hangup mid-line" `Quick test_server_kill_mid_line;
          Alcotest.test_case "deadline-aware shed" `Quick test_server_shed;
          Alcotest.test_case "brownout downgrade" `Quick test_server_brownout;
          Alcotest.test_case "journal warm restart" `Quick
            test_server_journal_warm_restart;
        ] );
      ( "resilient",
        [
          Alcotest.test_case "breaker open/half-open/close" `Quick
            test_resilient_breaker_lifecycle;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan round trip + generator" `Quick
            test_chaos_plan_roundtrip;
          Alcotest.test_case "fault matrix certification" `Slow
            test_chaos_matrix;
          Alcotest.test_case "goodput vs throughput under delay" `Quick
            test_loadgen_chaos_goodput;
          Alcotest.test_case "resilient beats naive under drops" `Quick
            test_loadgen_chaos_resilient_beats_naive;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "deterministic stream" `Quick
            test_loadgen_deterministic;
          Alcotest.test_case "against a server" `Quick test_loadgen_against_server;
          Alcotest.test_case "skewed key popularity" `Quick test_loadgen_skew;
        ] );
    ]
