(* Multi-load scheduling end to end: the steady-state LP, the batch
   extension of LP(2), the capacity/periodic squeeze tying them
   together, the simulator replay, and protocol v2 (solve-multi, hello,
   typed unsupported).  Everything exact unless the simulator's floats
   are involved. *)

module Q = Numeric.Rational
module P = Service.Protocol
module SS = Dls.Steady_state
module W = Dls.Workload

let qq = Q.of_ints
let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rat = Alcotest.testable Q.pp (fun a b -> Q.compare a b = 0)

(* Three workers, uniform return ratio [z]: heterogeneous links and
   speeds so neither resource row is trivially tight. *)
let plat z =
  Dls.Platform.with_return_ratio ~z
    [ (Q.one, Q.of_int 2); (qq 1 2, Q.of_int 3); (Q.of_int 2, qq 3 2) ]

let regimes = [ ("z<1", qq 1 2); ("z=1", Q.one); ("z>1", Q.of_int 2) ]

let mix ?(release2 = Q.zero) () =
  W.make_exn
    [
      W.load ~size:(Q.of_int 5) ();
      W.load ~release:release2 ~size:(Q.of_int 3) ();
    ]

(* ------------------------------------------------------------------ *)
(* Steady state                                                        *)
(* ------------------------------------------------------------------ *)

let test_steady_validates () =
  List.iter
    (fun (label, z) ->
      let p = plat z in
      let w = mix () in
      let s = SS.solve_exn p w in
      (match Check.Validator.validate_steady s with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "%s: steady violations: %s" label
          (String.concat "; "
             (List.map (Check.Validator.violation_to_string p) vs)));
      Alcotest.check rat
        (label ^ ": throughput = total/period")
        (Q.div (W.total_size w) s.SS.period)
        s.SS.throughput;
      let naive = Dls.Errors.get_exn (SS.naive_makespan p w) in
      check
        (label ^ ": period <= back-to-back")
        true
        (Q.compare s.SS.period naive <= 0))
    regimes

(* The steady period is asymptotically optimal: H copies of the mix can
   never beat H*T (capacity), and the periodic construction finishes by
   (H+2)*T — both sides exact, at every regime. *)
let test_squeeze () =
  let h = 3 in
  List.iter
    (fun (label, z) ->
      let p = plat z in
      let w = mix () in
      let s = SS.solve_exn p w in
      let b =
        Dls.Errors.get_exn (SS.solve_batch_best ~max_depth:2 p (W.repeat h w))
      in
      let lo = Q.mul (Q.of_int h) s.SS.period in
      let hi = Q.mul (Q.of_int (h + 2)) s.SS.period in
      check (label ^ ": H*T <= makespan") true (Q.compare lo b.SS.makespan <= 0);
      check
        (label ^ ": makespan <= (H+2)*T")
        true
        (Q.compare b.SS.makespan hi <= 0))
    regimes

(* A one-load batch at depth 0 is exactly the paper's LP(2): same LP,
   different route — the makespans must agree bit for bit. *)
let test_single_load_batch_is_lp2 () =
  List.iter
    (fun (label, z) ->
      let p = plat z in
      let w = W.make_exn [ W.load ~size:(Q.of_int 7) () ] in
      let induced = W.induced_platform w 0 p in
      let order = Dls.Fifo.order induced in
      let b = Dls.Errors.get_exn (SS.solve_batch ~depth:0 ~order p w) in
      let sol = Dls.Fifo.solve_order induced order in
      check_str
        (label ^ ": batch makespan = LP(2) makespan")
        (Q.to_string (Dls.Lp_model.time_for_load sol ~load:(Q.of_int 7)))
        (Q.to_string b.SS.makespan))
    regimes

(* ------------------------------------------------------------------ *)
(* Batch with releases: validation and simulator replay                *)
(* ------------------------------------------------------------------ *)

let test_batch_validates_and_replays () =
  List.iter
    (fun (label, z) ->
      let p = plat z in
      let w = mix ~release2:(qq 1 2) () in
      let b = Dls.Errors.get_exn (SS.solve_batch_best p w) in
      (match Check.Validator.validate_batch b with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "%s: batch violations: %s" label
          (String.concat "; "
             (List.map (Check.Validator.violation_to_string p) vs)));
      (* The eager replay is componentwise minimal for the LP's port
         order, so a noise-free run lands exactly on the LP makespan. *)
      let trace = Sim.Star.execute_multi p (Sim.Star.plan_of_batch b) in
      check (label ^ ": replay trace valid") true (Sim.Trace.is_valid trace);
      let lp = Q.to_float b.SS.makespan in
      check
        (label ^ ": replay makespan = LP makespan")
        true
        (Float.abs (trace.Sim.Trace.makespan -. lp) <= 1e-9 *. Float.max 1. lp))
    regimes

(* The seeded differential matrix itself, at test size: every regime,
   zero failures.  [dls check --fuzz-multi N] scales the same matrix
   up. *)
let test_fuzz_matrix () =
  List.iter
    (fun regime ->
      match Check.Fuzz.run_multi_matrix ~count:4 regime with
      | [] -> ()
      | f :: _ ->
        Alcotest.failf "%s: case %d failed: %s"
          (Check.Fuzz.regime_to_string regime)
          f.Check.Fuzz.w_index
          (String.concat "; " f.Check.Fuzz.w_messages))
    Check.Fuzz.all_regimes

(* ------------------------------------------------------------------ *)
(* Workload spec parsing                                               *)
(* ------------------------------------------------------------------ *)

let test_workload_spec_roundtrip () =
  List.iter
    (fun spec ->
      match W.of_spec ~line:1 ~col:1 spec with
      | Error e -> Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e)
      | Ok w -> check_str "canonical spec round-trips" spec (W.to_spec w))
    [ "5:0,3:1/2"; "1:0"; "5:0:2,3:1/2:1/4"; "7/3:1:1" ]

let test_workload_spec_errors () =
  List.iter
    (fun (spec, expect_col) ->
      match W.of_spec ~line:1 ~col:1 spec with
      | Ok _ -> Alcotest.failf "spec %S: expected a parse error" spec
      | Error (Dls.Errors.Parse_error { col; _ }) ->
        Alcotest.(check int) (Printf.sprintf "col of %S" spec) expect_col col
      | Error e -> Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e))
    [
      ("", 1);
      ("x:0", 1);
      ("5:y", 3);
      ("5:0,3", 5);
      ("5:0:z", 5);
      ("0:0", 1);  (* sizes must be positive *)
      ("5:-1", 1);  (* releases cannot be negative; blamed on the load *)
      ("5:0,", 5);  (* stray ',' *)
      (",5:0", 1);
      ("5:0,,3:1", 5);
      ("5::1", 3);  (* stray ':' *)
      ("5:0:", 5);
      (":0", 1);
    ]

let test_workload_spec_whitespace () =
  (* Blanks around separators are trimmed (offsets still point into the
     original string), the load order is pinned left to right. *)
  List.iter
    (fun (spec, canonical) ->
      match W.of_spec ~line:1 ~col:1 spec with
      | Error e -> Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e)
      | Ok w -> check_str (Printf.sprintf "canonical of %S" spec) canonical (W.to_spec w))
    [
      (" 5:0 ,\t3:1/2 ", "5:0,3:1/2");
      ("5:0, 3:1/2:2", "5:0,3:1/2:2");
    ];
  match W.of_spec ~line:1 ~col:1 "5:0,3:1/2" with
  | Error e -> Alcotest.failf "spec: %s" (Dls.Errors.to_string e)
  | Ok w ->
    let l0 = W.get w 0 in
    Alcotest.(check bool)
      "first load is the first part" true
      (Q.equal l0.W.size (Q.of_int 5) && Q.equal l0.W.release Q.zero)

(* ------------------------------------------------------------------ *)
(* Protocol v2                                                         *)
(* ------------------------------------------------------------------ *)

let multi_req ?depth mode =
  P.Solve_multi
    {
      u_platform = plat Q.one;
      u_workload = mix ~release2:(qq 1 2) ();
      u_mode = mode;
      u_depth = depth;
    }

let test_protocol_request_roundtrip () =
  List.iter
    (fun req ->
      let line = P.request_to_string req in
      match P.parse_request ~line:1 line with
      | Error e -> Alcotest.failf "%S: %s" line (Dls.Errors.to_string e)
      | Ok req' ->
        check_str "canonical line is a fixed point" line
          (P.request_to_string req'))
    [ multi_req P.Steady; multi_req ~depth:2 P.Batch; P.Hello ]

let test_protocol_response_roundtrip () =
  List.iter
    (fun resp ->
      let line = P.response_to_string resp in
      match P.parse_response line with
      | Error e -> Alcotest.failf "%S: %s" line (Dls.Errors.to_string e)
      | Ok resp' ->
        check_str "response round-trips" line (P.response_to_string resp'))
    [
      P.Ok_multi
        {
          mm_mode = P.Steady;
          mm_value = qq 48 5;
          mm_throughput = qq 5 6;
          mm_depth = None;
          mm_alloc = [| [| Q.one; Q.zero |]; [| qq 1 2; qq 5 2 |] |];
        };
      P.Ok_multi
        {
          mm_mode = P.Batch;
          mm_value = Q.of_int 12;
          mm_throughput = qq 2 3;
          mm_depth = Some 1;
          mm_alloc = [| [| Q.one |] |];
        };
      P.Ok_hello
        {
          server_version = P.version;
          server_min_version = P.min_version;
          server_verbs = P.verbs;
        };
      P.Unsupported { verb = "frobnicate"; server_version = P.version };
    ]

let test_unknown_verb_typed () =
  (match P.parse_request_v ~line:1 "frobnicate 1:1:1" with
  | `Unknown_verb v -> check_str "verb surfaced" "frobnicate" v
  | `Request _ | `Malformed _ ->
    Alcotest.fail "unknown verb not distinguished");
  (* ...while a known verb with a bad payload is malformed, not
     unknown. *)
  match P.parse_request_v ~line:1 "solve-multi 1:1:1 workload=x" with
  | `Malformed (Dls.Errors.Parse_error _) -> ()
  | `Malformed e -> Alcotest.failf "unexpected: %s" (Dls.Errors.to_string e)
  | `Request _ | `Unknown_verb _ -> Alcotest.fail "bad payload not rejected"

(* Garbage and mutation fuzz: the parsers must be total — typed errors,
   never exceptions — on arbitrary bytes and on corrupted canonical
   lines. *)
let gen_garbage =
  QCheck2.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 60))

let prop_parse_request_total =
  prop ~count:500 "parse_request never raises" gen_garbage (fun s ->
      (match P.parse_request ~line:1 s with Ok _ | Error _ -> ());
      (match P.parse_request_v ~line:1 s with
      | `Request _ | `Unknown_verb _ | `Malformed _ -> ());
      (match P.parse_response s with Ok _ | Error _ -> ());
      true)

let prop_solve_multi_mutations =
  let canonical = P.request_to_string (multi_req ~depth:1 P.Batch) in
  let gen =
    QCheck2.Gen.(
      let n = String.length canonical in
      pair (0 -- (n - 1)) (map Char.chr (int_range 32 126)))
  in
  prop ~count:500 "mutated solve-multi lines parse or fail cleanly" gen
    (fun (i, ch) ->
      let b = Bytes.of_string canonical in
      Bytes.set b i ch;
      let s = Bytes.to_string b in
      (match P.parse_request ~line:1 s with
      | Ok req ->
        (* Anything accepted must re-render canonically. *)
        String.length (P.request_to_string req) > 0
      | Error (Dls.Errors.Parse_error _) -> true
      | Error _ -> false)
      &&
      (* truncations too *)
      match P.parse_request ~line:1 (String.sub canonical 0 i) with
      | Ok _ | Error (Dls.Errors.Parse_error _) -> true
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Server: solve-multi, hello, version skew                            *)
(* ------------------------------------------------------------------ *)

let tmp_socket () =
  let path = Filename.temp_file "dls-multiload" ".sock" in
  Sys.remove path;
  path

let with_server f =
  let path = tmp_socket () in
  let cfg = Service.Server.default_config (Service.Server.Unix_socket path) in
  match Service.Server.start { cfg with Service.Server.jobs = 2 } with
  | Error e -> Alcotest.failf "server start: %s" (Dls.Errors.to_string e)
  | Ok server ->
    let r =
      match f server with
      | v -> v
      | exception exn ->
        Service.Server.stop server;
        raise exn
    in
    Service.Server.stop server;
    r

let test_server_solve_multi () =
  with_server (fun server ->
      let address = Service.Server.address server in
      let outcome =
        Service.Client.with_client address (fun cl ->
            (* hello: the version handshake *)
            (match Service.Client.request cl P.Hello with
            | Ok (P.Ok_hello h) ->
              Alcotest.(check int) "version" P.version h.P.server_version;
              check "min <= version" true
                (h.P.server_min_version <= h.P.server_version);
              check "solve-multi advertised" true
                (List.mem "solve-multi" h.P.server_verbs)
            | Ok other ->
              Alcotest.failf "hello: %s" (P.response_to_string other)
            | Error e -> Alcotest.failf "hello: %s" (Dls.Errors.to_string e));
            (* version skew: an unknown verb gets the typed refusal and
               the connection survives *)
            (match Service.Client.request_raw cl "solve-quantum 1:1:1" with
            | Ok (P.Unsupported { verb; server_version }) ->
              check_str "refused verb" "solve-quantum" verb;
              Alcotest.(check int) "speaks version" P.version server_version
            | Ok other ->
              Alcotest.failf "skew: %s" (P.response_to_string other)
            | Error e -> Alcotest.failf "skew: %s" (Dls.Errors.to_string e));
            (* solve-multi steady: bit-identical to the direct solve *)
            let p = plat (qq 1 2) in
            let w = mix () in
            let direct = SS.solve_exn p w in
            match
              Service.Client.request cl
                (P.Solve_multi
                   {
                     u_platform = p;
                     u_workload = w;
                     u_mode = P.Steady;
                     u_depth = None;
                   })
            with
            | Ok (P.Ok_multi r) ->
              check_str "period bit-identical"
                (Q.to_string direct.SS.period)
                (Q.to_string r.P.mm_value);
              Alcotest.(check int) "one alloc row per load" 2
                (Array.length r.P.mm_alloc)
            | Ok other ->
              Alcotest.failf "solve-multi: %s" (P.response_to_string other)
            | Error e ->
              Alcotest.failf "solve-multi: %s" (Dls.Errors.to_string e))
      in
      match outcome with
      | Ok () -> ()
      | Error e -> Alcotest.failf "client: %s" (Dls.Errors.to_string e))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "multiload"
    [
      ( "steady",
        [
          Alcotest.test_case "validates, all regimes" `Quick
            test_steady_validates;
          Alcotest.test_case "squeeze H*T <= M <= (H+2)*T" `Slow test_squeeze;
          Alcotest.test_case "single-load batch = LP(2)" `Quick
            test_single_load_batch_is_lp2;
        ] );
      ( "batch",
        [
          Alcotest.test_case "validates and replays" `Quick
            test_batch_validates_and_replays;
          Alcotest.test_case "differential fuzz matrix" `Slow test_fuzz_matrix;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_workload_spec_roundtrip;
          Alcotest.test_case "positioned errors" `Quick
            test_workload_spec_errors;
          Alcotest.test_case "spec whitespace + order" `Quick
            test_workload_spec_whitespace;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_protocol_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_protocol_response_roundtrip;
          Alcotest.test_case "unknown verb is typed" `Quick
            test_unknown_verb_typed;
          prop_parse_request_total;
          prop_solve_multi_mutations;
        ] );
      ("server", [ Alcotest.test_case "solve-multi + hello" `Quick test_server_solve_multi ]);
    ]
