(* Tests for the parallel evaluation layer: the domain pool, the LRU
   memo cache, and the headline guarantee that every parallel entry
   point (Brute, Search, Sweep) returns results bit-identical to its
   sequential counterpart. *)

module Q = Numeric.Rational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_array_map () =
  let f x = (x * x) + 1 in
  List.iter
    (fun n ->
      let arr = Array.init n (fun i -> i - 3) in
      let expected = Array.map f arr in
      List.iter
        (fun jobs ->
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            expected
            (Parallel.Pool.run ~jobs f arr))
        [ 1; 2; 3; 8 ])
    [ 0; 1; 2; 7; 64; 1000 ]

let test_pool_chunk_sizes () =
  let arr = Array.init 137 string_of_int in
  let expected = Array.map String.length arr in
  List.iter
    (fun chunk ->
      Alcotest.(check (array int))
        (Printf.sprintf "chunk=%d" chunk)
        expected
        (Parallel.Pool.run ~jobs:3 ~chunk String.length arr))
    [ 1; 2; 16; 200 ]

let test_pool_reuse () =
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      check_int "jobs accessor" 2 (Parallel.Pool.jobs pool);
      let a = Parallel.Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      let b = Parallel.Pool.map pool (fun x -> x * 2) [| 4; 5 |] in
      Alcotest.(check (array int)) "first batch" [| 2; 3; 4 |] a;
      Alcotest.(check (array int)) "second batch" [| 8; 10 |] b;
      Alcotest.(check (list int))
        "map_list" [ 2; 4; 6 ]
        (Parallel.Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_shutdown_degrades () =
  let pool = Parallel.Pool.create ~jobs:2 () in
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool (* idempotent *);
  Alcotest.(check (array int))
    "map after shutdown runs sequentially" [| 1; 4; 9 |]
    (Parallel.Pool.map pool (fun x -> x * x) [| 1; 2; 3 |])

let test_pool_run_local_matches_map () =
  let f x = (2 * x) - 5 in
  let arr = Array.init 97 Fun.id in
  let expected = Array.map f arr in
  List.iter
    (fun jobs ->
      (* the scratch state (a counter here) must not leak into results *)
      let got =
        Parallel.Pool.run_local ~jobs
          ~init:(fun () -> ref 0)
          (fun seen x ->
            incr seen;
            f x)
          arr
      in
      Alcotest.(check (array int))
        (Printf.sprintf "run_local jobs=%d" jobs)
        expected got)
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_first_failure_wins () =
  let f i = if i mod 5 = 3 then raise (Boom i) else i in
  List.iter
    (fun jobs ->
      match Parallel.Pool.run ~jobs f (Array.init 40 Fun.id) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        check_int (Printf.sprintf "smallest failing index, jobs=%d" jobs) 3 i)
    [ 1; 2; 4 ]

let test_pool_failure_leaves_pool_usable () =
  (* A task raising in a worker domain must reach the caller and leave
     the pool fully reusable — no wedged domains, no dropped results on
     the next batch. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      (match Parallel.Pool.map pool (fun i -> if i = 17 then raise (Boom i) else i)
               (Array.init 64 Fun.id)
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom 17 -> ());
      let again = Parallel.Pool.map pool (fun i -> i * i) (Array.init 64 Fun.id) in
      check "pool reusable after failure" true
        (again = Array.init 64 (fun i -> i * i)))

let test_pool_timeout () =
  let slow i =
    if i = 2 then Unix.sleepf 0.05;
    i
  in
  (* Overrun reported, smallest offending index, on both code paths. *)
  List.iter
    (fun jobs ->
      match Parallel.Pool.run ~jobs ~timeout:0.01 slow (Array.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected Task_timeout"
      | exception Parallel.Pool.Task_timeout { index; elapsed; budget } ->
        check_int (Printf.sprintf "offending index, jobs=%d" jobs) 2 index;
        check "elapsed over budget" true (elapsed > budget))
    [ 1; 4 ];
  (* A generous budget never fires. *)
  let ok = Parallel.Pool.run ~jobs:4 ~timeout:60.0 (fun i -> i + 1) (Array.init 32 Fun.id) in
  check "generous budget passes" true (ok = Array.init 32 (fun i -> i + 1));
  (* The task's own exception wins over the overrun. *)
  match
    Parallel.Pool.run ~jobs:1 ~timeout:0.01
      (fun i ->
        if i = 0 then begin
          Unix.sleepf 0.05;
          raise (Boom 0)
        end;
        i)
      (Array.init 2 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 0 -> ()
  | exception Parallel.Pool.Task_timeout _ ->
    Alcotest.fail "timeout masked the task's own exception"

let test_pool_concurrent_maps () =
  (* Several domains mapping on one pool at once — illegal on the old
     mutex pool, a supported part of the contract on the work-stealing
     one.  Each call must return its own deterministic result. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let run_one k =
        let arr = Array.init 500 (fun i -> i + (1000 * k)) in
        let expected = Array.map (fun x -> (2 * x) + k) arr in
        for _ = 1 to 5 do
          let got = Parallel.Pool.map pool (fun x -> (2 * x) + k) arr in
          if got <> expected then Alcotest.failf "concurrent map %d diverged" k
        done
      in
      let ds = List.init 3 (fun k -> Domain.spawn (fun () -> run_one (k + 1))) in
      run_one 0;
      List.iter Domain.join ds)

let test_pool_reentrant_map () =
  (* The task function maps on the same pool it runs on; the old pool
     raised Invalid_argument here. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let inner i =
        Parallel.Pool.map pool (fun x -> x * x) (Array.init (i + 1) Fun.id)
      in
      let got =
        Parallel.Pool.map pool
          (fun i -> Array.fold_left ( + ) 0 (inner i))
          (Array.init 20 Fun.id)
      in
      let expected =
        Array.init 20 (fun i ->
            Array.fold_left ( + ) 0 (Array.init (i + 1) (fun x -> x * x)))
      in
      Alcotest.(check (array int)) "reentrant map = sequential" expected got)

let pool_map_equiv_prop =
  QCheck2.Test.make ~count:40
    ~name:"pool: map = Array.map over random n/jobs/chunk"
    QCheck2.Gen.(triple (int_range 0 300) (int_range 1 8) (int_range 1 40))
    (fun (n, jobs, chunk) ->
      let f x = (x * 7) - (x * x) in
      let arr = Array.init n (fun i -> i - (n / 2)) in
      Parallel.Pool.run ~jobs ~chunk f arr = Array.map f arr)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Parallel.Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Parallel.Clock.now_ns () in
    if Int64.compare t !prev < 0 then
      Alcotest.failf "clock stepped back: %Ld after %Ld" t !prev;
    prev := t
  done;
  let t0 = Parallel.Clock.now () in
  check "elapsed_s never negative" true
    (Parallel.Clock.elapsed_s ~since:t0 >= 0.)

(* ------------------------------------------------------------------ *)
(* Deque                                                               *)
(* ------------------------------------------------------------------ *)

let test_deque_owner_order () =
  let d = Parallel.Deque.create () in
  check "fresh deque empty" true (Parallel.Deque.is_empty d);
  check "pop on empty" true (Parallel.Deque.pop d = None);
  check "steal on empty" true (Parallel.Deque.steal d = None);
  for i = 0 to 9 do
    Parallel.Deque.push d i
  done;
  check_int "length" 10 (Parallel.Deque.length d);
  (* the owner pops newest first *)
  for i = 9 downto 5 do
    check_int "pop LIFO" i (Option.get (Parallel.Deque.pop d))
  done;
  (* thieves take the oldest *)
  for i = 0 to 4 do
    check_int "steal FIFO" i (Option.get (Parallel.Deque.steal d))
  done;
  check "drained" true
    (Parallel.Deque.pop d = None && Parallel.Deque.steal d = None);
  (* empty -> nonempty -> empty transitions leave the deque usable *)
  Parallel.Deque.push d 42;
  check_int "reusable after empty" 42 (Option.get (Parallel.Deque.pop d));
  check "empty again" true (Parallel.Deque.pop d = None)

let test_deque_growth () =
  let d = Parallel.Deque.create ~capacity:4 () in
  let n = 1000 in
  for i = 0 to n - 1 do
    Parallel.Deque.push d i
  done;
  check_int "all retained across growth" n (Parallel.Deque.length d);
  let seen = Array.make n false in
  let rec drain () =
    match Parallel.Deque.pop d with
    | Some v ->
      seen.(v) <- true;
      drain ()
    | None -> ()
  in
  drain ();
  Array.iteri (fun i s -> if not s then Alcotest.failf "lost %d in growth" i) seen

let test_deque_hammer () =
  (* One owner pushing and popping, several thieves stealing: every
     pushed value must be claimed exactly once, across empty/nonempty
     transitions, the pop-vs-steal last-element race, and buffer
     growth (initial capacity far below the item count). *)
  let n = 50_000 and thieves = 3 in
  let d = Parallel.Deque.create ~capacity:8 () in
  let seen = Array.init n (fun _ -> Atomic.make 0) in
  let claimed = Atomic.make 0 in
  let claim v =
    Atomic.incr seen.(v);
    Atomic.incr claimed
  in
  let thief () =
    while Atomic.get claimed < n do
      match Parallel.Deque.steal d with
      | Some v -> claim v
      | None -> Domain.cpu_relax ()
    done
  in
  let ds = List.init thieves (fun _ -> Domain.spawn thief) in
  for i = 0 to n - 1 do
    Parallel.Deque.push d i;
    (* pop a share ourselves so both ends stay hot *)
    if i mod 3 = 0 then
      match Parallel.Deque.pop d with Some v -> claim v | None -> ()
  done;
  let rec drain () =
    match Parallel.Deque.pop d with
    | Some v ->
      claim v;
      drain ()
    | None ->
      if Atomic.get claimed < n then begin
        Domain.cpu_relax ();
        drain ()
      end
  in
  drain ();
  List.iter Domain.join ds;
  check_int "every value claimed" n (Atomic.get claimed);
  Array.iteri
    (fun i c ->
      let c = Atomic.get c in
      if c <> 1 then Alcotest.failf "value %d claimed %d times" i c)
    seen

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basics () =
  let c = Parallel.Lru.create ~capacity:8 () in
  check "miss on empty" true (Parallel.Lru.find c "a" = None);
  Parallel.Lru.add c "a" 1;
  Parallel.Lru.add c "b" 2;
  check "hit" true (Parallel.Lru.find c "a" = Some 1);
  check_int "length" 2 (Parallel.Lru.length c);
  check_int "capacity" 8 (Parallel.Lru.capacity c);
  Parallel.Lru.clear c;
  check_int "cleared" 0 (Parallel.Lru.length c);
  check "miss after clear" true (Parallel.Lru.find c "a" = None)

let test_lru_eviction_order () =
  let c = Parallel.Lru.create ~capacity:2 () in
  Parallel.Lru.add c "a" 1;
  Parallel.Lru.add c "b" 2;
  (* Touch "a" so "b" becomes the least recently used entry. *)
  ignore (Parallel.Lru.find c "a");
  Parallel.Lru.add c "c" 3;
  check "b evicted" false (Parallel.Lru.mem c "b");
  check "a kept" true (Parallel.Lru.mem c "a");
  check "c kept" true (Parallel.Lru.mem c "c");
  let s = Parallel.Lru.stats c in
  check_int "one eviction" 1 s.Parallel.Lru.evictions

let test_lru_find_or_add () =
  let c = Parallel.Lru.create ~capacity:4 () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check_int "computed" 42 (Parallel.Lru.find_or_add c "k" compute);
  check_int "cached" 42 (Parallel.Lru.find_or_add c "k" compute);
  check_int "compute ran once" 1 !calls;
  let s = Parallel.Lru.stats c in
  check_int "one miss" 1 s.Parallel.Lru.misses;
  check_int "one hit" 1 s.Parallel.Lru.hits

let test_lru_disabled () =
  let c = Parallel.Lru.create ~capacity:0 () in
  Parallel.Lru.add c "a" 1;
  check "nothing stored" true (Parallel.Lru.find c "a" = None);
  let calls = ref 0 in
  let compute () = incr calls; 7 in
  ignore (Parallel.Lru.find_or_add c "a" compute);
  ignore (Parallel.Lru.find_or_add c "a" compute);
  check_int "always recomputes" 2 !calls;
  check_int "stays empty" 0 (Parallel.Lru.length c)

let test_lru_concurrent_hammer () =
  (* Many domains hitting overlapping keys: no crash, and every lookup
     observes the canonical value for its key. *)
  let c = Parallel.Lru.create ~capacity:16 () in
  let f i =
    let k = i mod 24 in
    Parallel.Lru.find_or_add c k (fun () -> 2 * k)
  in
  let results = Parallel.Pool.run ~jobs:4 f (Array.init 480 Fun.id) in
  Array.iteri
    (fun i v ->
      if v <> 2 * (i mod 24) then
        Alcotest.failf "index %d: got %d, want %d" i v (2 * (i mod 24)))
    results

let test_lru_find_or_compute_sequential () =
  (* Sequentially, find_or_compute must be indistinguishable from
     find_or_add: one miss, then hits, no joins. *)
  let c = Parallel.Lru.create ~capacity:4 () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check_int "computed" 42 (Parallel.Lru.find_or_compute c "k" compute);
  check_int "cached" 42 (Parallel.Lru.find_or_compute c "k" compute);
  check_int "compute ran once" 1 !calls;
  let s = Parallel.Lru.stats c in
  check_int "one miss" 1 s.Parallel.Lru.misses;
  check_int "one hit" 1 s.Parallel.Lru.hits;
  check_int "no join" 0 s.Parallel.Lru.joins

let test_lru_find_or_compute_failure () =
  (* A compute that raises must clean up its flight so the key stays
     computable, and must cache nothing. *)
  let c = Parallel.Lru.create ~capacity:4 () in
  let boom () = failwith "boom" in
  (match Parallel.Lru.find_or_compute c "k" boom with
  | _ -> Alcotest.fail "expected the compute's exception"
  | exception Failure _ -> ());
  check "nothing cached" true (Parallel.Lru.find c "k" = None);
  check_int "recovers" 7 (Parallel.Lru.find_or_compute c "k" (fun () -> 7))

let spin () =
  (* Widen the in-flight window without sleeping (keeps the test free of
     unix/thread dependencies). *)
  for _ = 1 to 50_000 do
    ignore (Sys.opaque_identity ())
  done

let test_lru_single_flight_hammer () =
  (* The satellite property: under multi-domain contention each key is
     computed exactly once (single-flight), every caller observes the
     canonical value, and the counters stay exact — misses = one per
     key, and every other call either hit or joined a flight. *)
  let keys = 64 and ops = 512 and jobs = 8 in
  let c = Parallel.Lru.create ~capacity:128 () in
  let computes = Array.init keys (fun _ -> Atomic.make 0) in
  let f i =
    let k = i mod keys in
    Parallel.Lru.find_or_compute c k (fun () ->
        Atomic.incr computes.(k);
        spin ();
        3 * k)
  in
  let results = Parallel.Pool.run ~jobs f (Array.init ops Fun.id) in
  Array.iteri
    (fun i v ->
      if v <> 3 * (i mod keys) then
        Alcotest.failf "index %d: got %d, want %d" i v (3 * (i mod keys)))
    results;
  Array.iteri
    (fun k n ->
      let n = Atomic.get n in
      if n <> 1 then Alcotest.failf "key %d computed %d times" k n)
    computes;
  let s = Parallel.Lru.stats c in
  check_int "one miss per key" keys s.Parallel.Lru.misses;
  check_int "everything else hit or joined" (ops - keys)
    (s.Parallel.Lru.hits + s.Parallel.Lru.joins);
  check_int "no eviction" 0 s.Parallel.Lru.evictions

let test_lru_eviction_pressure_hammer () =
  (* Regression for the in-flight eviction race: with a capacity far
     below the live key set, a computed entry can be evicted between the
     computer's insert and a joiner's wake-up.  The flight record pins
     the computed value, so every joiner must still observe the correct
     value for its key — never a recompute of a different key's flight,
     never a hang.  Recomputes of evicted keys are expected; wrong
     values are not. *)
  let keys = 32 and ops = 2048 and jobs = 8 in
  let c = Parallel.Lru.create ~capacity:2 () in
  let f i =
    let k = i mod keys in
    let v =
      Parallel.Lru.find_or_compute c k (fun () ->
          spin ();
          (7 * k) + 1)
    in
    if v <> (7 * k) + 1 then
      Alcotest.failf "key %d: got %d, want %d" k v ((7 * k) + 1);
    v
  in
  let _ = Parallel.Pool.run ~jobs f (Array.init ops Fun.id) in
  let s = Parallel.Lru.stats c in
  check "evictions happened (pressure is real)" true
    (s.Parallel.Lru.evictions > 0);
  check_int "accounting: hits + misses + joins = ops" ops
    (s.Parallel.Lru.hits + s.Parallel.Lru.misses + s.Parallel.Lru.joins)

let test_lru_find_nearest () =
  let c = Parallel.Lru.create ~capacity:8 () in
  Parallel.Lru.add c 10 "a";
  Parallel.Lru.add c 20 "b";
  Parallel.Lru.add c 30 "c";
  (* best finite distance wins; incomparable keys are skipped *)
  let score k = if k = 10 then None else Some (abs (k - 21)) in
  (match Parallel.Lru.find_nearest c ~score with
  | Some (20, "b") -> ()
  | Some (k, v) -> Alcotest.failf "nearest: got (%d, %S)" k v
  | None -> Alcotest.fail "nearest: no neighbour");
  (* all incomparable: no neighbour *)
  check "incomparable -> None" true
    (Parallel.Lru.find_nearest c ~score:(fun _ -> None) = None);
  (* ties keep the more recently used entry: touch 10, tie it with 30 *)
  ignore (Parallel.Lru.find c 10);
  (match
     Parallel.Lru.find_nearest c ~score:(fun k ->
         if k = 20 then None else Some 5)
   with
  | Some (10, "a") -> ()
  | Some (k, v) -> Alcotest.failf "tie: got (%d, %S)" k v
  | None -> Alcotest.fail "tie: no neighbour");
  (* an exact match (distance 0) short-circuits the walk *)
  (match Parallel.Lru.find_nearest c ~score:(fun k -> Some (abs (k - 30))) with
  | Some (30, "c") -> ()
  | Some (k, v) -> Alcotest.failf "exact: got (%d, %S)" k v
  | None -> Alcotest.fail "exact: no neighbour");
  (* the probe is read-only: counters did not move beyond the one find *)
  let s = Parallel.Lru.stats c in
  check_int "probe moved no counters" 1 (s.Parallel.Lru.hits + s.Parallel.Lru.misses)

let test_lru_find_or_compute_disabled () =
  (* capacity 0: nothing is ever cached, joiners that find neither an
     entry nor a flight must become computers themselves — recomputes
     happen, but no call may hang. *)
  let c = Parallel.Lru.create ~capacity:0 () in
  let computes = Atomic.make 0 in
  let f i =
    ignore
      (Parallel.Lru.find_or_compute c (i mod 4) (fun () ->
           Atomic.incr computes;
           i mod 4));
    i
  in
  let _ = Parallel.Pool.run ~jobs:4 f (Array.init 64 Fun.id) in
  check "recomputed at least once per key" true (Atomic.get computes >= 4);
  check_int "stays empty" 0 (Parallel.Lru.length c)

(* ------------------------------------------------------------------ *)
(* Platform generators                                                 *)
(* ------------------------------------------------------------------ *)

(* Random platforms in both return-message regimes: d < c (z < 1,
   results smaller than inputs) and d > c (z > 1). *)
let gen_platform ~z_gt_1 ~max_workers =
  QCheck2.Gen.(
    let* n = int_range 2 max_workers in
    let* specs =
      list_repeat n (triple (int_range 1 5) (int_range 1 6) (int_range 1 5))
    in
    return
      (Dls.Platform.make_exn
         (List.mapi
            (fun i (c, w, d) ->
              let c = Q.of_ints c 4 in
              let w = Q.of_int w in
              (* force the regime while keeping d heterogeneous *)
              let d =
                if z_gt_1 then Q.add c (Q.of_ints d 4) else Q.of_ints d 24
              in
              Dls.Platform.worker
                ~name:(Printf.sprintf "P%d" (i + 1))
                ~c ~w ~d ())
            specs)))

let same_solution label (a : Dls.Lp_model.solved) (b : Dls.Lp_model.solved) =
  if not (Q.equal a.Dls.Lp_model.rho b.Dls.Lp_model.rho) then
    Alcotest.failf "%s: rho %s <> %s" label
      (Q.to_string a.Dls.Lp_model.rho)
      (Q.to_string b.Dls.Lp_model.rho);
  if
    a.Dls.Lp_model.scenario.Dls.Scenario.sigma1
    <> b.Dls.Lp_model.scenario.Dls.Scenario.sigma1
    || a.Dls.Lp_model.scenario.Dls.Scenario.sigma2
       <> b.Dls.Lp_model.scenario.Dls.Scenario.sigma2
  then Alcotest.failf "%s: selected scenarios differ" label;
  Array.iteri
    (fun i ai ->
      if not (Q.equal ai b.Dls.Lp_model.alpha.(i)) then
        Alcotest.failf "%s: alpha.(%d) differs" label i)
    a.Dls.Lp_model.alpha;
  true

(* ------------------------------------------------------------------ *)
(* Parallel = sequential, bit for bit                                  *)
(* ------------------------------------------------------------------ *)

let brute_determinism ~z_gt_1 name =
  QCheck2.Test.make ~count:12 ~name
    (gen_platform ~z_gt_1 ~max_workers:4)
    (fun p ->
      same_solution "best_fifo"
        (Dls.Brute.best_fifo ~jobs:1 p)
        (Dls.Brute.best_fifo ~jobs:2 p)
      && same_solution "best_lifo"
           (Dls.Brute.best_lifo ~jobs:1 p)
           (Dls.Brute.best_lifo ~jobs:2 p))

(* The certified fast path and the dominance pruner are pure
   accelerations: switching both off must reproduce the default scan bit
   for bit, including the idle vector. *)
let fast_prune_transparency ~z_gt_1 name =
  QCheck2.Test.make ~count:10 ~name
    (gen_platform ~z_gt_1 ~max_workers:4)
    (fun p ->
      let plain = Dls.Brute.best_fifo ~fast:false ~prune:false p in
      let accel = Dls.Brute.best_fifo p in
      ignore (same_solution "best_fifo fast+prune" plain accel);
      if
        not
          (Array.for_all2 Q.equal plain.Dls.Lp_model.idle
             accel.Dls.Lp_model.idle)
      then Alcotest.fail "best_fifo fast+prune: idle differs";
      let plain = Dls.Brute.best_lifo ~fast:false ~prune:false p in
      let accel = Dls.Brute.best_lifo p in
      same_solution "best_lifo fast+prune" plain accel
      && Array.for_all2 Q.equal plain.Dls.Lp_model.idle
           accel.Dls.Lp_model.idle)

let search_determinism ~z_gt_1 name =
  QCheck2.Test.make ~count:10 ~name
    (gen_platform ~z_gt_1 ~max_workers:5)
    (fun p ->
      let seq = Dls.Search.best_fifo ~jobs:1 p in
      let par = Dls.Search.best_fifo ~jobs:3 p in
      same_solution "best_fifo" seq.Dls.Search.solved par.Dls.Search.solved)

let test_brute_general_determinism () =
  let p =
    Dls.Platform.make_exn
      [
        Dls.Platform.worker ~name:"P1" ~c:(Q.of_ints 1 2) ~w:(Q.of_int 2)
          ~d:(Q.of_ints 1 3) ();
        Dls.Platform.worker ~name:"P2" ~c:(Q.of_ints 1 3) ~w:(Q.of_int 1)
          ~d:(Q.of_ints 1 2) ();
        Dls.Platform.worker ~name:"P3" ~c:(Q.of_ints 1 4) ~w:(Q.of_int 3)
          ~d:(Q.of_ints 1 5) ();
      ]
  in
  ignore
    (same_solution "best_general"
       (Dls.Brute.best_general ~jobs:1 p)
       (Dls.Brute.best_general ~jobs:2 p))

let test_sweep_determinism () =
  let config =
    {
      Experiments.Sweep.fig12 with
      Experiments.Sweep.id = "test";
      platforms = 3;
      workers = 4;
      sizes = [ 40; 80 ];
      total = 100;
      seed = 7;
    }
  in
  let seq = Experiments.Sweep.run ~jobs:1 config in
  let par = Experiments.Sweep.run ~jobs:2 config in
  check "sweep report identical under jobs=2" true (seq = par);
  let par3 = Experiments.Sweep.run ~jobs:3 config in
  check "sweep report identical under jobs=3" true (seq = par3)

(* ------------------------------------------------------------------ *)
(* LP cache                                                            *)
(* ------------------------------------------------------------------ *)

let small_platform =
  Dls.Platform.make_exn
    [
      Dls.Platform.worker ~name:"P1" ~c:(Q.of_ints 1 2) ~w:(Q.of_int 2)
        ~d:(Q.of_ints 1 4) ();
      Dls.Platform.worker ~name:"P2" ~c:(Q.of_ints 1 3) ~w:(Q.of_int 1)
        ~d:(Q.of_ints 1 6) ();
      Dls.Platform.worker ~name:"P3" ~c:(Q.of_ints 2 5) ~w:(Q.of_int 3)
        ~d:(Q.of_ints 1 5) ();
    ]

let test_cache_hit_identical () =
  Dls.Lp_model.reset_cache ();
  let scenario =
    Dls.Scenario.fifo_exn small_platform (Dls.Fifo.order small_platform)
  in
  let cold = Dls.Solve.solve_exn ~mode:`Exact scenario in
  let first = Dls.Solve.solve_exn ~mode:`Cached scenario in
  let second = Dls.Solve.solve_exn ~mode:`Cached scenario in
  ignore (same_solution "cached vs cold" cold first);
  ignore (same_solution "hit vs cold" cold second);
  check "hit returns the stored value" true (first == second);
  check "idle identical" true
    (Array.for_all2 Q.equal cold.Dls.Lp_model.idle second.Dls.Lp_model.idle);
  let s = Dls.Lp_model.cache_stats () in
  check_int "one miss" 1 s.Parallel.Lru.misses;
  check_int "one hit" 1 s.Parallel.Lru.hits

let test_cache_key_separates () =
  let order = Dls.Fifo.order small_platform in
  let fifo = Dls.Scenario.fifo_exn small_platform order in
  let lifo = Dls.Scenario.lifo_exn small_platform order in
  let key = Dls.Lp_model.scenario_key Dls.Lp_model.One_port in
  check "fifo key stable" true (key fifo = key fifo);
  check "fifo/lifo keys differ" true (key fifo <> key lifo);
  check "model is part of the key" true
    (key fifo <> Dls.Lp_model.scenario_key Dls.Lp_model.Two_port fifo)

let test_cache_capacity_zero () =
  Dls.Lp_model.reset_cache ~capacity:0 ();
  let scenario =
    Dls.Scenario.fifo_exn small_platform (Dls.Fifo.order small_platform)
  in
  let a = Dls.Solve.solve_exn ~mode:`Cached scenario in
  let b = Dls.Solve.solve_exn ~mode:`Cached scenario in
  ignore (same_solution "uncached solves agree" a b);
  let s = Dls.Lp_model.cache_stats () in
  check_int "nothing retained" 0 s.Parallel.Lru.size;
  check_int "two misses" 2 s.Parallel.Lru.misses;
  Dls.Lp_model.reset_cache ()

let test_cached_brute_parallel () =
  (* The brute-force scan funnels every LP through the shared cache from
     several domains at once; the winner must still match sequential. *)
  Dls.Lp_model.reset_cache ();
  let p = small_platform in
  let seq = Dls.Brute.best_fifo ~jobs:1 p in
  Dls.Lp_model.reset_cache ();
  let par = Dls.Brute.best_fifo ~jobs:4 p in
  ignore (same_solution "cached parallel brute" seq par)

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map = Array.map" `Quick test_pool_matches_array_map;
          Alcotest.test_case "chunk sizes" `Quick test_pool_chunk_sizes;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown degrades" `Quick test_pool_shutdown_degrades;
          Alcotest.test_case "first failure wins" `Quick test_pool_first_failure_wins;
          Alcotest.test_case "failure leaves pool usable" `Quick
            test_pool_failure_leaves_pool_usable;
          Alcotest.test_case "task timeout" `Quick test_pool_timeout;
          Alcotest.test_case "run_local = map" `Quick
            test_pool_run_local_matches_map;
          Alcotest.test_case "concurrent maps on one pool" `Quick
            test_pool_concurrent_maps;
          Alcotest.test_case "reentrant map" `Quick test_pool_reentrant_map;
        ]
        @ qsuite [ pool_map_equiv_prop ] );
      ( "deque",
        [
          Alcotest.test_case "owner LIFO / thief FIFO" `Quick
            test_deque_owner_order;
          Alcotest.test_case "growth keeps the live window" `Quick
            test_deque_growth;
          Alcotest.test_case "multi-domain hammer" `Quick test_deque_hammer;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "lru",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "find_or_add" `Quick test_lru_find_or_add;
          Alcotest.test_case "capacity 0 disables" `Quick test_lru_disabled;
          Alcotest.test_case "concurrent hammer" `Quick test_lru_concurrent_hammer;
          Alcotest.test_case "find_or_compute sequential" `Quick
            test_lru_find_or_compute_sequential;
          Alcotest.test_case "find_or_compute failure" `Quick
            test_lru_find_or_compute_failure;
          Alcotest.test_case "single-flight hammer" `Quick
            test_lru_single_flight_hammer;
          Alcotest.test_case "eviction-pressure hammer" `Quick
            test_lru_eviction_pressure_hammer;
          Alcotest.test_case "find_nearest" `Quick test_lru_find_nearest;
          Alcotest.test_case "find_or_compute capacity 0" `Quick
            test_lru_find_or_compute_disabled;
        ] );
      ( "determinism",
        qsuite
          [
            brute_determinism ~z_gt_1:false "brute fifo/lifo, z < 1";
            brute_determinism ~z_gt_1:true "brute fifo/lifo, z > 1";
            fast_prune_transparency ~z_gt_1:false "fast+prune off = on, z < 1";
            fast_prune_transparency ~z_gt_1:true "fast+prune off = on, z > 1";
            search_determinism ~z_gt_1:false "search B&B, z < 1";
            search_determinism ~z_gt_1:true "search B&B, z > 1";
          ]
        @ [
            Alcotest.test_case "brute general" `Quick test_brute_general_determinism;
            Alcotest.test_case "sweep report" `Quick test_sweep_determinism;
          ] );
      ( "cache",
        [
          Alcotest.test_case "hit identical to cold" `Quick test_cache_hit_identical;
          Alcotest.test_case "key separates scenarios" `Quick test_cache_key_separates;
          Alcotest.test_case "capacity 0" `Quick test_cache_capacity_zero;
          Alcotest.test_case "parallel brute through cache" `Quick
            test_cached_brute_parallel;
        ] );
    ]
