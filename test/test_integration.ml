(* End-to-end integration tests: LP -> schedule -> trace -> simulator
   across the whole stack, plus the exact consistency chain
   Theorem 2 = LP = noise-free simulation. *)

module Q = Numeric.Rational
open Q.Infix

let prop ?(count = 40) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let gen_factors_platform =
  let open QCheck2.Gen in
  let* seed = int_range 0 100_000 in
  let* workers = int_range 2 8 in
  let* n = oneofl [ 40; 80; 120; 200; 400 ] in
  let rng = Cluster.Prng.create ~seed in
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
  return (Cluster.Gen.platform Cluster.Workload.gdsdmi ~n f, seed, n)

(* LP -> exact schedule -> float trace -> validation, whole stack. *)
let prop_full_stack_fifo =
  prop "full stack: FIFO LP -> schedule -> trace -> gantt" gen_factors_platform
    (fun (platform, _, _) ->
      let sol = Dls.Fifo.optimal platform in
      let sched = Dls.Schedule.for_load sol ~load:(Q.of_int 1000) in
      (match Dls.Schedule.validate sched with
      | Ok () -> ()
      | Error m -> QCheck2.Test.fail_reportf "schedule: %s" (String.concat ";" m));
      let trace = Sim.Trace.of_schedule sched in
      if not (Sim.Trace.is_valid trace) then
        QCheck2.Test.fail_reportf "trace invalid"
      else begin
        let art = Sim.Gantt.render trace in
        String.length art > 0
      end)

(* Simulated execution of the rounded plan under noise stays a valid
   one-port execution and never beats the LP bound. *)
let prop_noisy_execution_valid =
  prop "noisy simulated campaign is valid and above the LP bound"
    gen_factors_platform (fun (platform, seed, n) ->
      let sol = Dls.Heuristics.solve Dls.Heuristics.Lifo platform in
      let total = 500 in
      let plan = Sim.Star.plan_of_rounded sol ~total in
      let noise = Cluster.Noise.make (Cluster.Prng.create ~seed) ~n in
      let trace = Sim.Star.execute ~noise platform plan in
      let bound = Q.to_float (Dls.Lp_model.time_for_load sol ~load:(Q.of_int total)) in
      Sim.Trace.is_valid trace && trace.Sim.Trace.makespan >= bound *. 0.999)

(* The exact consistency chain on bus platforms:
   Theorem 2 closed form = one-port FIFO LP (exactly), and the
   noise-free simulator reproduces the makespan to float precision. *)
let prop_bus_consistency_chain =
  prop "bus: closed form = LP = simulation"
    (let open QCheck2.Gen in
     let* seed = int_range 0 100_000 in
     let* workers = int_range 1 7 in
     let rng = Cluster.Prng.create ~seed in
     let f = Cluster.Gen.factors rng Cluster.Gen.Hom_comm_het_comp ~workers in
     return (Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:100 f))
    (fun platform ->
      let formula = Dls.Closed_form.fifo_throughput_of_platform platform in
      let sol = Dls.Fifo.optimal platform in
      if not (formula =/ sol.Dls.Lp_model.rho) then
        QCheck2.Test.fail_reportf "closed form %s <> LP %s" (Q.to_string formula)
          (Q.to_string sol.Dls.Lp_model.rho)
      else begin
        let plan = Sim.Star.plan_of_solved sol in
        let trace = Sim.Star.execute platform plan in
        Float.abs (trace.Sim.Trace.makespan -. 1.0) < 1e-6
      end)

(* Time-reversal duality end-to-end: a z > 1 platform solved directly
   and via the mirror construction agree, and the mirrored schedule
   simulates correctly on the original platform. *)
let prop_mirror_end_to_end =
  prop ~count:30 "mirror duality end-to-end"
    (let open QCheck2.Gen in
     let* seed = int_range 0 100_000 in
     let* workers = int_range 1 5 in
     let rng = Cluster.Prng.create ~seed in
     let specs =
       List.init workers (fun _ ->
           ( Q.of_ints (Cluster.Prng.int_range rng ~lo:1 ~hi:10) 10,
             Q.of_ints (Cluster.Prng.int_range rng ~lo:1 ~hi:10) 5 ))
     in
     return (Dls.Platform.with_return_ratio ~z:(Q.of_int 3) specs))
    (fun platform ->
      let direct = Dls.Fifo.optimal platform in
      let m = Dls.Fifo.optimal_via_mirror_exn platform in
      let rho = m.Dls.Fifo.solved.Dls.Lp_model.rho in
      let sched = m.Dls.Fifo.schedule in
      rho =/ direct.Dls.Lp_model.rho
      && Dls.Schedule.validate sched = Ok ()
      && Q.abs (Dls.Schedule.total_load sched -/ rho) =/ Q.zero)

(* The simulator executes the transfer orders it was given: sends follow
   sigma1, returns follow sigma2, even for arbitrary permutation pairs. *)
let prop_sim_respects_orders =
  prop "simulator respects sigma1 and sigma2" gen_factors_platform
    (fun (platform, seed, _) ->
      let nworkers = Dls.Platform.size platform in
      let rng = Cluster.Prng.create ~seed:(seed + 1) in
      let shuffle () =
        let a = Array.init nworkers Fun.id in
        for i = nworkers - 1 downto 1 do
          let j = Cluster.Prng.int_range rng ~lo:0 ~hi:i in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        a
      in
      let sigma1 = shuffle () and sigma2 = shuffle () in
      let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.make_exn platform ~sigma1 ~sigma2) in
      let plan = Sim.Star.plan_of_solved sol in
      let trace = Sim.Star.execute platform plan in
      let starts kind order =
        List.filter_map
          (fun i ->
            List.find_opt (fun e -> e.Sim.Trace.kind = kind) (Sim.Trace.events_of trace i)
            |> Option.map (fun e -> e.Sim.Trace.start))
          (Array.to_list order)
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> a <= b && sorted rest
        | _ -> true
      in
      sorted (starts Sim.Trace.Send sigma1) && sorted (starts Sim.Trace.Return sigma2))

(* The whole heuristic story on one platform: optimal FIFO dominates
   every FIFO heuristic, and brute force confirms it for small p. *)
let prop_heuristic_hierarchy =
  prop ~count:20 "heuristic hierarchy holds end-to-end"
    (let open QCheck2.Gen in
     let* seed = int_range 0 100_000 in
     let rng = Cluster.Prng.create ~seed in
     let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:4 in
     return (Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:120 f))
    (fun platform ->
      let incc = (Dls.Heuristics.solve Dls.Heuristics.Inc_c platform).Dls.Lp_model.rho in
      let incw = (Dls.Heuristics.solve Dls.Heuristics.Inc_w platform).Dls.Lp_model.rho in
      let brute = (Dls.Brute.best_fifo platform).Dls.Lp_model.rho in
      incc =/ brute && incw <=/ incc)

(* Multi-round LP solutions, executed chunk by chunk on the simulator
   with no noise, fill the unit horizon exactly: the LP and the
   simulator agree on the semantics of multi-installment schedules. *)
let prop_multiround_simulation_matches_lp =
  prop ~count:30 "multiround LP = chunked simulation"
    (let open QCheck2.Gen in
     let* seed = int_range 0 100_000 in
     let* workers = int_range 1 4 in
     let* rounds = int_range 1 3 in
     let* with_returns = bool in
     let rng = Cluster.Prng.create ~seed in
     let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
     return (Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:100 f, rounds, with_returns))
    (fun (platform, rounds, with_returns) ->
      let order = Dls.Fifo.order platform in
      match
        Dls.Multiround.solve platform
          (Dls.Multiround.config ~with_returns ~rounds order)
      with
      | Dls.Multiround.Too_slow -> QCheck2.Test.fail_reportf "unexpected Too_slow"
      | Dls.Multiround.Solved s ->
        let plan = Sim.Star.plan_of_multiround s in
        let trace = Sim.Star.execute_chunked platform plan in
        if Float.abs (trace.Sim.Trace.makespan -. 1.0) > 1e-6 then
          QCheck2.Test.fail_reportf "makespan %.9f, expected 1.0"
            trace.Sim.Trace.makespan
        else Sim.Trace.one_port_violations trace = [])

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          prop_full_stack_fifo;
          prop_noisy_execution_valid;
          prop_bus_consistency_chain;
          prop_mirror_end_to_end;
          prop_sim_respects_orders;
          prop_heuristic_hierarchy;
          prop_multiround_simulation_matches_lp;
        ] );
    ]
