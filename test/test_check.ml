(* Tests for the verification subsystem: the exact schedule validator,
   the independent LP certificate, schedule serialization, and the
   differential fuzzing matrix over the three return-ratio regimes. *)

module Q = Numeric.Rational
module Validator = Check.Validator
module Certificate = Check.Certificate
module Fuzz = Check.Fuzz

let qq = Q.of_ints

let worker ?name c w d =
  Dls.Platform.worker ?name ~c:(qq (fst c) (snd c)) ~w:(qq (fst w) (snd w))
    ~d:(qq (fst d) (snd d)) ()

let two_worker_platform () =
  Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (1, 1) (2, 1) (1, 2) ]

let fifo_schedule () = Dls.Schedule.of_solved (Dls.Fifo.optimal (two_worker_platform ()))

let check_ok label = function
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "%s: unexpected violations: %s" label
      (String.concat "; " vs)

let violations sched =
  match Validator.validate sched with Ok () -> [] | Error vs -> vs

(* Rebuild a schedule with entry [k] replaced. *)
let with_entry sched k entry =
  let entries = Array.copy sched.Dls.Schedule.entries in
  entries.(k) <- entry;
  { sched with Dls.Schedule.entries }

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)
(* ------------------------------------------------------------------ *)

let test_validator_accepts_solver_output () =
  let p = two_worker_platform () in
  List.iter
    (fun sol ->
      check_ok "solver schedule"
        (Validator.errors_of_result p (Validator.validate_solved sol)))
    [
      Dls.Fifo.optimal p;
      Dls.Lifo.optimal p;
      Dls.Fifo.optimal ~model:Dls.Lp_model.Two_port p;
      Dls.Heuristics.solve Dls.Heuristics.Inc_w p;
    ]

let expect label pred sched =
  if not (List.exists pred (violations sched)) then
    Alcotest.failf "expected a %s violation" label

let test_validator_catches_corruption () =
  let sched = fifo_schedule () in
  let e0 = sched.Dls.Schedule.entries.(0) in
  let e1 = sched.Dls.Schedule.entries.(1) in
  (* Shrink a send: its duration no longer matches alpha * c. *)
  expect "duration-mismatch"
    (function Validator.Duration_mismatch { phase = "send"; _ } -> true | _ -> false)
    (with_entry sched 0
       {
         e0 with
         Dls.Schedule.send =
           { e0.Dls.Schedule.send with Dls.Schedule.finish = e0.Dls.Schedule.send.Dls.Schedule.start };
       });
  (* Start computing before the data is in. *)
  expect "compute-before-receive"
    (function Validator.Compute_before_receive _ -> true | _ -> false)
    (with_entry sched 0
       {
         e0 with
         Dls.Schedule.compute =
           {
             Dls.Schedule.start = Q.sub e0.Dls.Schedule.compute.Dls.Schedule.start Q.half;
             finish = Q.sub e0.Dls.Schedule.compute.Dls.Schedule.finish Q.half;
           };
       });
  (* Return before the whole computation is done. *)
  expect "return-before-compute"
    (function Validator.Return_before_compute _ -> true | _ -> false)
    (with_entry sched 1
       {
         e1 with
         Dls.Schedule.return_ =
           {
             Dls.Schedule.start = Q.sub e1.Dls.Schedule.return_.Dls.Schedule.start Q.half;
             finish = Q.sub e1.Dls.Schedule.return_.Dls.Schedule.finish Q.half;
           };
       });
  (* Push a return past the horizon. *)
  expect "outside-horizon"
    (function Validator.Outside_horizon _ -> true | _ -> false)
    (with_entry sched 1
       {
         e1 with
         Dls.Schedule.return_ =
           {
             Dls.Schedule.start = Q.add e1.Dls.Schedule.return_.Dls.Schedule.start Q.half;
             finish = Q.add e1.Dls.Schedule.return_.Dls.Schedule.finish Q.half;
           };
       });
  (* Duplicate a worker. *)
  expect "duplicate-worker"
    (function Validator.Duplicate_worker _ -> true | _ -> false)
    (with_entry sched 1 e0);
  (* Zero out a load. *)
  expect "non-positive-load"
    (function Validator.Nonpositive_load _ -> true | _ -> false)
    (with_entry sched 0
       {
         e0 with
         Dls.Schedule.alpha = Q.zero;
         send = { e0.Dls.Schedule.send with Dls.Schedule.finish = e0.Dls.Schedule.send.Dls.Schedule.start };
         compute =
           { e0.Dls.Schedule.compute with Dls.Schedule.finish = e0.Dls.Schedule.compute.Dls.Schedule.start };
         return_ =
           { e0.Dls.Schedule.return_ with Dls.Schedule.finish = e0.Dls.Schedule.return_.Dls.Schedule.start };
       })

let test_validator_one_port_overlap () =
  let sched = fifo_schedule () in
  let e1 = sched.Dls.Schedule.entries.(1) in
  (* Slide P2's send half a unit earlier: it now crosses P1's send. *)
  let shifted =
    {
      e1 with
      Dls.Schedule.send =
        {
          Dls.Schedule.start = Q.sub e1.Dls.Schedule.send.Dls.Schedule.start Q.half;
          finish = Q.sub e1.Dls.Schedule.send.Dls.Schedule.finish Q.half;
        };
      compute =
        { e1.Dls.Schedule.compute with Dls.Schedule.start = Q.sub e1.Dls.Schedule.compute.Dls.Schedule.start Q.half };
    }
  in
  (* The compute duration changed too; only assert the overlap is seen. *)
  expect "one-port-overlap"
    (function Validator.One_port_overlap _ -> true | _ -> false)
    (with_entry sched 1 shifted)

let test_validator_touching_is_valid () =
  (* The canonical schedule packs transfers back-to-back: every boundary
     touches, none overlaps.  This is the explicit boundary semantics:
     touching intervals are NOT overlapping. *)
  let sched = fifo_schedule () in
  check_ok "touching"
    (Validator.errors_of_result sched.Dls.Schedule.platform (Validator.validate sched));
  (* And the master timeline really is packed: P1.send touches P2.send. *)
  let e0 = sched.Dls.Schedule.entries.(0) and e1 = sched.Dls.Schedule.entries.(1) in
  Alcotest.(check bool) "sends touch" true
    (Q.equal e0.Dls.Schedule.send.Dls.Schedule.finish e1.Dls.Schedule.send.Dls.Schedule.start)

let test_validator_load_sum () =
  let sol = Dls.Fifo.optimal (two_worker_platform ()) in
  (* [solved] is a private record, but the alpha array is still an
     array: tampering with it models a solver-layer bug. *)
  let saved = sol.Dls.Lp_model.alpha.(0) in
  sol.Dls.Lp_model.alpha.(0) <- Q.zero;
  let r = Validator.validate_solved sol in
  sol.Dls.Lp_model.alpha.(0) <- saved;
  (match r with
  | Error vs
    when List.exists
           (function Validator.Load_sum_mismatch _ -> true | _ -> false)
           vs ->
    ()
  | Ok () -> Alcotest.fail "tampered loads validated"
  | Error _ -> Alcotest.fail "wrong violation for tampered loads");
  check_ok "restored"
    (Validator.errors_of_result
       sol.Dls.Lp_model.scenario.Dls.Scenario.platform
       (Validator.validate_solved sol))

(* ------------------------------------------------------------------ *)
(* Certificate                                                         *)
(* ------------------------------------------------------------------ *)

let test_certificate_accepts () =
  let p = two_worker_platform () in
  List.iter
    (fun sol -> check_ok "certificate" (Certificate.check sol))
    [
      Dls.Fifo.optimal p;
      Dls.Lifo.optimal p;
      Dls.Fifo.optimal ~model:Dls.Lp_model.Two_port p;
    ]

let test_certificate_rejects_tampering () =
  let sol = Dls.Fifo.optimal (two_worker_platform ()) in
  let saved = sol.Dls.Lp_model.alpha.(0) in
  (* Inflate the first load: some deadline row must now exceed 1. *)
  sol.Dls.Lp_model.alpha.(0) <- Q.add saved Q.one;
  let r = Certificate.check sol in
  sol.Dls.Lp_model.alpha.(0) <- saved;
  (match r with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inflated loads certified");
  Alcotest.(check bool) "restored" true (Certificate.holds sol)

(* ------------------------------------------------------------------ *)
(* Schedule serialization                                               *)
(* ------------------------------------------------------------------ *)

let test_schedule_io_roundtrip () =
  let sched = fifo_schedule () in
  match Dls.Schedule_io.of_string (Dls.Schedule_io.to_string sched) with
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Dls.Errors.to_string e)
  | Ok sched' ->
    Alcotest.(check string) "identical dump"
      (Dls.Schedule_io.to_string sched)
      (Dls.Schedule_io.to_string sched');
    check_ok "parsed schedule validates"
      (Validator.errors_of_result sched'.Dls.Schedule.platform
         (Validator.validate sched'))

let test_schedule_io_rejects_malformed () =
  let expect_error label text =
    match Dls.Schedule_io.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed schedule accepted" label
  in
  expect_error "empty" "";
  expect_error "no horizon" "worker P1 1 1 1\n";
  expect_error "no workers" "horizon 1\n";
  expect_error "unknown directive" "horizon 1\nworker P1 1 1 1\nfrobnicate\n";
  expect_error "bad rational" "horizon x\nworker P1 1 1 1\n";
  expect_error "bad arity" "horizon 1\nworker P1 1 1 1\nentry 0 1/2\n";
  expect_error "bad index" "horizon 1\nworker P1 1 1 1\nentry 3 1/2 0 1/2 1/2 1 1 3/2\n"

let test_schedule_io_corruption_detected () =
  (* A dumped-then-corrupted schedule parses but does not validate —
     the library-level half of the CLI exit-code test (the dune rule in
     test/dune runs the real [dls check] binary on the same fixture). *)
  let text =
    "# corrupted by hand: P2's return starts before its compute ends\n\
     horizon 1\n\
     worker P1 1 1 1/2\n\
     worker P2 1 2 1/2\n\
     entry 0 4/11 0 4/11 4/11 8/11 8/11 10/11\n\
     entry 1 2/11 4/11 6/11 6/11 10/11 9/11 1\n"
  in
  match Dls.Schedule_io.of_string text with
  | Error e -> Alcotest.failf "fixture should parse: %s" (Dls.Errors.to_string e)
  | Ok sched -> (
    match Validator.validate sched with
    | Ok () -> Alcotest.fail "corrupted schedule validated"
    | Error vs ->
      Alcotest.(check bool) "several violations" true (List.length vs >= 2))

(* ------------------------------------------------------------------ *)
(* Differential fuzzing                                                 *)
(* ------------------------------------------------------------------ *)

let matrix_case regime =
  let name =
    Printf.sprintf "matrix %s (200 platforms)" (Fuzz.regime_to_string regime)
  in
  let run () =
    match Fuzz.run_matrix ~count:200 regime with
    | [] -> ()
    | f :: _ as fs ->
      Alcotest.failf "%d platform(s) failed; first (index %d, %s): %s"
        (List.length fs) f.Fuzz.index
        (String.concat " | " (String.split_on_char '\n' (String.trim f.Fuzz.platform)))
        (String.concat "; " f.Fuzz.messages)
  in
  Alcotest.test_case name `Slow run

(* The full fuzz corpus through both LP pipelines: every FIFO order of
   every platform must solve bit-identically fast and exact, with each
   fast answer re-certified (see [Fuzz.check_platform ~fast:true]). *)
let fast_matrix_case regime =
  let name =
    Printf.sprintf "fast-pipeline matrix %s (60 platforms)"
      (Fuzz.regime_to_string regime)
  in
  let run () =
    match Fuzz.run_matrix ~fast:true ~count:60 regime with
    | [] -> ()
    | f :: _ as fs ->
      Alcotest.failf "%d platform(s) failed; first (index %d, %s): %s"
        (List.length fs) f.Fuzz.index
        (String.concat " | " (String.split_on_char '\n' (String.trim f.Fuzz.platform)))
        (String.concat "; " f.Fuzz.messages)
  in
  Alcotest.test_case name `Slow run

(* An independent QCheck generator (different distribution than
   [Fuzz.gen_platform]) feeding the same differential matrix. *)
let gen_qcheck_platform regime =
  let open QCheck2.Gen in
  let pos = int_range 1 9 in
  let rational = map2 qq pos (int_range 1 5) in
  let z =
    match regime with
    | Fuzz.Unit_z -> return Q.one
    | Fuzz.Small_z ->
      let* den = int_range 2 9 in
      let* num = int_range 1 (den - 1) in
      return (qq num den)
    | Fuzz.Big_z ->
      let* num = int_range 2 9 in
      let* den = int_range 1 (num - 1) in
      return (qq num den)
  in
  let* z = z in
  let* n = int_range 2 4 in
  let* specs = list_size (return n) (pair rational rational) in
  return (Dls.Platform.with_return_ratio ~z specs)

let prop_case regime =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:50
       ~name:(Printf.sprintf "qcheck matrix %s" (Fuzz.regime_to_string regime))
       (gen_qcheck_platform regime)
       (fun p ->
         match Fuzz.check_platform p with
         | [] -> true
         | msgs -> QCheck2.Test.fail_report (String.concat "; " msgs)))

(* A float-simplex stall (forced here with a zero pivot budget) must
   route through the exact fallback and still produce the bit-identical
   answer — the pipeline's safety net, pinned. *)
let test_fast_stall_fallback () =
  let p = two_worker_platform () in
  let s = Dls.Scenario.fifo_exn p [| 0; 1 |] in
  Dls.Lp_model.reset_pipeline_stats ();
  let cold = Dls.Solve.solve_exn ~mode:`Exact s in
  let fast = Dls.Solve.solve_exn ~mode:`Fast ~max_float_pivots:0 s in
  Alcotest.(check bool) "identical rho" true
    (Q.equal fast.Dls.Lp_model.rho cold.Dls.Lp_model.rho);
  Alcotest.(check bool) "identical loads" true
    (Array.for_all2 Q.equal fast.Dls.Lp_model.alpha cold.Dls.Lp_model.alpha);
  Alcotest.(check bool) "identical idle times" true
    (Array.for_all2 Q.equal fast.Dls.Lp_model.idle cold.Dls.Lp_model.idle);
  let st = Dls.Lp_model.pipeline_stats () in
  Alcotest.(check bool) "took the exact fallback" true
    (st.Dls.Lp_model.exact_fallbacks >= 1);
  check_ok "fallback result certifies" (Certificate.check fast)

let test_matrix_reproducible () =
  (* Same seed, same failures (here: none) for any [jobs]. *)
  let a = Fuzz.run_matrix ~jobs:1 ~count:20 ~seed:3 Fuzz.Big_z in
  let b = Fuzz.run_matrix ~jobs:4 ~count:20 ~seed:3 Fuzz.Big_z in
  Alcotest.(check int) "same failure count" (List.length a) (List.length b)

(* The warm-repair acceptance matrix: 100 seeded deltas per regime (300
   total), each asserting the repaired answer is bit-identical to the
   exact solve or that the declined repair falls back to the (equally
   bit-identical) fast pipeline. *)
let resolve_matrix_case regime =
  let name =
    Printf.sprintf "resolve matrix %s (100 deltas)" (Fuzz.regime_to_string regime)
  in
  let run () =
    match Fuzz.run_resolve_matrix ~count:100 regime with
    | [] -> ()
    | f :: _ as fs ->
      Alcotest.failf "%d delta case(s) failed; first (index %d, %s, delta %s): %s"
        (List.length fs) f.Fuzz.r_index
        (String.concat " | "
           (String.split_on_char '\n' (String.trim f.Fuzz.r_platform)))
        f.Fuzz.r_delta
        (String.concat "; " f.Fuzz.r_messages)
  in
  Alcotest.test_case name `Slow run

let test_resolve_matrix_reproducible () =
  let a = Fuzz.run_resolve_matrix ~jobs:1 ~count:20 ~seed:5 Fuzz.Small_z in
  let b = Fuzz.run_resolve_matrix ~jobs:4 ~count:20 ~seed:5 Fuzz.Small_z in
  Alcotest.(check int) "same failure count" (List.length a) (List.length b)

(* A tiny nudge against a solved base must be answered by the repair
   path itself — certify-first or a few dual pivots — not the fallback,
   and bit-identically to a cold exact solve. *)
let test_repair_wins_on_nudge () =
  let p = two_worker_platform () in
  let base = Dls.Fifo.optimal p in
  let delta = [ Dls.Delta.Scale_comp { worker = 0; factor = Q.of_ints 11 10 } ] in
  let s' = Dls.Delta.apply_scenario_exn base.Dls.Lp_model.scenario delta in
  let exact = Dls.Solve.solve_exn ~mode:`Exact s' in
  Dls.Lp_model.reset_resolve_stats ();
  match Dls.Lp_model.solve_from_neighbor Dls.Lp_model.One_port s' base with
  | None -> Alcotest.fail "repair declined a 10% compute nudge"
  | Some repaired ->
    Alcotest.(check bool) "identical rho" true
      (Q.equal repaired.Dls.Lp_model.rho exact.Dls.Lp_model.rho);
    Alcotest.(check bool) "identical loads" true
      (Array.for_all2 Q.equal repaired.Dls.Lp_model.alpha exact.Dls.Lp_model.alpha);
    let st = Dls.Lp_model.resolve_stats () in
    Alcotest.(check int) "counted as a win" 1 st.Dls.Lp_model.repair_wins

(* Shape-changing deltas must be refused by the repair path: the cached
   basis indexes a different-dimension LP. *)
let test_repair_refuses_shape_change () =
  let p = two_worker_platform () in
  let base = Dls.Fifo.optimal p in
  let delta = [ Dls.Delta.Remove_worker 1 ] in
  let s' = Dls.Delta.apply_scenario_exn base.Dls.Lp_model.scenario delta in
  match Dls.Lp_model.solve_from_neighbor Dls.Lp_model.One_port s' base with
  | None -> ()
  | Some _ -> Alcotest.fail "repair accepted a basis of the wrong dimension"

(* End-to-end through the cache: a cold solve followed by a nudged
   scenario must probe the neighbour, and the cached answer must equal
   the exact one bit-for-bit whether repair won or fell back. *)
let test_cached_delta_probes_neighbor () =
  let p = two_worker_platform () in
  Dls.Lp_model.reset_cache ();
  Dls.Lp_model.reset_resolve_stats ();
  let s = Dls.Scenario.fifo_exn p [| 0; 1 |] in
  let _base = Dls.Solve.solve_exn ~mode:`Cached s in
  let p' =
    Dls.Delta.apply_exn p [ Dls.Delta.Scale_comm { worker = 1; factor = Q.of_ints 9 8 } ]
  in
  let s' = Dls.Scenario.fifo_exn p' [| 0; 1 |] in
  let cached = Dls.Solve.solve_exn ~mode:`Cached s' in
  let exact = Dls.Solve.solve_exn ~mode:`Exact s' in
  Alcotest.(check bool) "identical rho" true
    (Q.equal cached.Dls.Lp_model.rho exact.Dls.Lp_model.rho);
  Alcotest.(check bool) "identical loads" true
    (Array.for_all2 Q.equal cached.Dls.Lp_model.alpha exact.Dls.Lp_model.alpha);
  let st = Dls.Lp_model.resolve_stats () in
  Alcotest.(check bool) "neighbour probed" true (st.Dls.Lp_model.probes >= 1)

let test_lifo_z_gt_1_regression () =
  (* The exact platform on which the fuzzer first caught the reversed
     z > 1 LIFO order (it solved to 3/20 instead of 153/820). *)
  let p =
    Dls.Platform.make_exn
      [ worker ~name:"P1" (8, 1) (1, 2) (12, 1); worker ~name:"P2" (2, 3) (5, 1) (1, 1) ]
  in
  let lifo = Dls.Lifo.optimal p in
  let brute = Dls.Brute.best_lifo p in
  Alcotest.(check bool) "sorted LIFO order is optimal" true
    (Q.equal lifo.Dls.Lp_model.rho brute.Dls.Lp_model.rho);
  Alcotest.(check bool) "and beats the reversed order" true
    (Q.compare lifo.Dls.Lp_model.rho
       (Dls.Lifo.solve_order p [| 0; 1 |]).Dls.Lp_model.rho
    > 0)

let () =
  Alcotest.run "check"
    [
      ( "validator",
        [
          Alcotest.test_case "accepts solver output" `Quick
            test_validator_accepts_solver_output;
          Alcotest.test_case "catches corruption" `Quick
            test_validator_catches_corruption;
          Alcotest.test_case "one-port overlap" `Quick test_validator_one_port_overlap;
          Alcotest.test_case "touching boundaries valid" `Quick
            test_validator_touching_is_valid;
          Alcotest.test_case "load-sum mismatch" `Quick test_validator_load_sum;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "accepts solver output" `Quick test_certificate_accepts;
          Alcotest.test_case "rejects tampering" `Quick
            test_certificate_rejects_tampering;
        ] );
      ( "schedule-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick
            test_schedule_io_rejects_malformed;
          Alcotest.test_case "corruption detected" `Quick
            test_schedule_io_corruption_detected;
        ] );
      ( "differential",
        [
          matrix_case Fuzz.Small_z;
          matrix_case Fuzz.Unit_z;
          matrix_case Fuzz.Big_z;
          fast_matrix_case Fuzz.Small_z;
          fast_matrix_case Fuzz.Unit_z;
          fast_matrix_case Fuzz.Big_z;
          prop_case Fuzz.Small_z;
          prop_case Fuzz.Unit_z;
          prop_case Fuzz.Big_z;
          Alcotest.test_case "matrix jobs-reproducible" `Quick
            test_matrix_reproducible;
          Alcotest.test_case "fast stall falls back exactly" `Quick
            test_fast_stall_fallback;
          Alcotest.test_case "lifo z>1 regression" `Quick
            test_lifo_z_gt_1_regression;
        ] );
      ( "resolve",
        [
          resolve_matrix_case Fuzz.Small_z;
          resolve_matrix_case Fuzz.Unit_z;
          resolve_matrix_case Fuzz.Big_z;
          Alcotest.test_case "resolve matrix jobs-reproducible" `Quick
            test_resolve_matrix_reproducible;
          Alcotest.test_case "repair wins on a nudge" `Quick
            test_repair_wins_on_nudge;
          Alcotest.test_case "repair refuses shape change" `Quick
            test_repair_refuses_shape_change;
          Alcotest.test_case "cached delta probes neighbour" `Quick
            test_cached_delta_probes_neighbor;
        ] );
    ]
