(* Fault model, online re-planning, and the robustness fuzz matrix. *)

module Q = Numeric.Rational
open Q.Infix

let q n = Q.of_int n
let qq a b = Q.of_ints a b
let rat = Alcotest.testable Q.pp Q.equal

let wk ?name c w d = Dls.Platform.worker ?name ~c ~w ~d ()

(* Three workers, uniform z = 1/2. *)
let platform3 () =
  Dls.Platform.make_exn
    [ wk Q.one Q.one Q.half; wk Q.one (q 2) Q.half; wk (q 2) Q.one Q.one ]

(* ------------------------------------------------------------------ *)
(* Fault plans: construction and text format                           *)
(* ------------------------------------------------------------------ *)

let sample_plan () =
  Dls.Faults.make_exn
    [
      Dls.Faults.Crash { worker = 1; at = qq 5 8 };
      Dls.Faults.Slowdown { worker = 0; factor = qq 3 2; from_ = qq 1 4 };
      Dls.Faults.Stall { worker = 0; at = qq 1 3; duration = qq 1 12 };
      Dls.Faults.Degrade { worker = 2; factor = q 2; from_ = Q.zero };
    ]

let test_plan_roundtrip () =
  let plan = sample_plan () in
  match Dls.Faults.of_string (Dls.Faults.to_string plan) with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok plan' ->
    Alcotest.(check string)
      "identical dump" (Dls.Faults.to_string plan) (Dls.Faults.to_string plan');
    (match Dls.Faults.first_onset plan with
    | Some t -> Alcotest.check rat "sorted by onset" Q.zero t
    | None -> Alcotest.fail "plan is empty")

let test_plan_validation () =
  let expect_invalid label faults =
    match Dls.Faults.make faults with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: invalid plan accepted" label
  in
  expect_invalid "factor < 1"
    [ Dls.Faults.Slowdown { worker = 0; factor = Q.half; from_ = Q.zero } ];
  expect_invalid "negative onset"
    [ Dls.Faults.Crash { worker = 0; at = Q.neg Q.one } ];
  expect_invalid "zero duration"
    [ Dls.Faults.Stall { worker = 0; at = Q.zero; duration = Q.zero } ];
  expect_invalid "negative worker"
    [ Dls.Faults.Degrade { worker = -1; factor = q 2; from_ = Q.zero } ];
  match
    Dls.Faults.validate_for (platform3 ())
      (Dls.Faults.make_exn [ Dls.Faults.Crash { worker = 7; at = Q.one } ])
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-platform worker accepted"

let test_plan_rejects_malformed () =
  List.iter
    (fun text ->
      match Dls.Faults.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [
      "frobnicate 0 1 1\n";
      "slowdown 0 1/2 0\n";
      "slowdown 0 x 0\n";
      "crash 0\n";
      "crash 0 1/0\n";
      "stall 0 1\n";
      "slowdown 0 2\n";
    ]

(* Satellite: no input may make any text parser raise. *)
let test_parser_garbage_never_raises () =
  let rng = Random.State.make [| 2026; 8; 6 |] in
  let alphabet = "0123456789/-.#entryworkhzcrasltdge \t\n\"\\xyzEQ" in
  let garbage () =
    String.init
      (Random.State.int rng 80)
      (fun _ -> alphabet.[Random.State.int rng (String.length alphabet)])
  in
  for _ = 1 to 500 do
    let s = garbage () in
    (match Dls.Platform_io.of_string s with Ok _ | Error _ -> ());
    (match Dls.Schedule_io.of_string s with Ok _ | Error _ -> ());
    match Dls.Faults.of_string s with Ok _ | Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* The exact integrator                                                *)
(* ------------------------------------------------------------------ *)

let finish plan act ~start ~load =
  Dls.Faults.finish_time (platform3 ()) plan act ~start ~load

let test_integrator_nominal () =
  let empty = Dls.Faults.empty in
  Alcotest.(check (option rat))
    "send" (Some (q 2))
    (finish empty (Dls.Faults.Send_to 0) ~start:Q.zero ~load:(q 2));
  Alcotest.(check (option rat))
    "compute w=2" (Some (q 5))
    (finish empty (Dls.Faults.Compute_on 1) ~start:(q 1) ~load:(q 2));
  Alcotest.(check (option rat))
    "return d=1" (Some (q 3))
    (finish empty (Dls.Faults.Return_from 2) ~start:(q 1) ~load:(q 2))

let test_integrator_slowdown () =
  let plan =
    Dls.Faults.make_exn
      [ Dls.Faults.Slowdown { worker = 0; factor = q 2; from_ = Q.one } ]
  in
  (* 1 unit computed by t = 1, the second takes twice as long. *)
  Alcotest.(check (option rat))
    "slowdown bites at onset" (Some (q 3))
    (finish plan (Dls.Faults.Compute_on 0) ~start:Q.zero ~load:(q 2));
  (* Communication is untouched by a compute slowdown. *)
  Alcotest.(check (option rat))
    "send unaffected" (Some (q 2))
    (finish plan (Dls.Faults.Send_to 0) ~start:Q.zero ~load:(q 2))

let test_integrator_stall () =
  let plan =
    Dls.Faults.make_exn
      [ Dls.Faults.Stall { worker = 0; at = Q.one; duration = Q.one } ]
  in
  Alcotest.(check (option rat))
    "transfer freezes for the window" (Some (q 3))
    (finish plan (Dls.Faults.Send_to 0) ~start:Q.zero ~load:(q 2));
  Alcotest.(check (option rat))
    "compute ignores a comm stall" (Some (q 2))
    (finish plan (Dls.Faults.Compute_on 0) ~start:Q.zero ~load:(q 2))

let test_integrator_crash () =
  let plan = Dls.Faults.make_exn [ Dls.Faults.Crash { worker = 0; at = Q.one } ] in
  Alcotest.(check (option rat))
    "finishes exactly at the crash" (Some Q.one)
    (finish plan (Dls.Faults.Compute_on 0) ~start:Q.zero ~load:Q.one);
  Alcotest.(check (option rat))
    "never finishes past the crash" None
    (finish plan (Dls.Faults.Compute_on 0) ~start:Q.zero ~load:(q 2));
  Alcotest.(check (option rat))
    "sends still go through" (Some (q 2))
    (finish plan (Dls.Faults.Send_to 0) ~start:Q.zero ~load:(q 2))

let test_degraded_platform () =
  let plan =
    Dls.Faults.make_exn
      [
        Dls.Faults.Slowdown { worker = 0; factor = qq 3 2; from_ = q 5 };
        Dls.Faults.Slowdown { worker = 0; factor = q 2; from_ = q 7 };
        Dls.Faults.Degrade { worker = 1; factor = q 2; from_ = Q.zero };
      ]
  in
  let p' = Dls.Faults.degraded_platform (platform3 ()) plan in
  Alcotest.check rat "slowdowns compound on w" (q 3) (Dls.Platform.get p' 0).Dls.Platform.w;
  Alcotest.check rat "degrade scales c" (q 2) (Dls.Platform.get p' 1).Dls.Platform.c;
  Alcotest.check rat "degrade scales d" Q.one (Dls.Platform.get p' 1).Dls.Platform.d;
  Alcotest.(check (option rat))
    "z preserved" (Dls.Platform.z_ratio (platform3 ()))
    (Dls.Platform.z_ratio p')

(* ------------------------------------------------------------------ *)
(* Online re-planning                                                  *)
(* ------------------------------------------------------------------ *)

let test_replan_no_fault () =
  let sol = Dls.Fifo.optimal (platform3 ()) in
  let load = sol.Dls.Lp_model.rho in
  let o = Dls.Replan.respond_exn Dls.Faults.empty sol ~load in
  (match o.Dls.Replan.decision with
  | Dls.Replan.Keep_original -> ()
  | Dls.Replan.Recover _ -> Alcotest.fail "re-planned without faults");
  Alcotest.check rat "everything on time" load
    o.Dls.Replan.achieved.Dls.Replan.done_by_deadline

let test_replan_crash_recovers () =
  let sol = Dls.Fifo.optimal (platform3 ()) in
  let load = sol.Dls.Lp_model.rho in
  (* The first worker of the return order crashes early: without
     re-planning its load is lost and every later return stays queued
     behind a transfer that never happens. *)
  let victim = sol.Dls.Lp_model.scenario.Dls.Scenario.sigma2.(0) in
  let plan =
    Dls.Faults.make_exn [ Dls.Faults.Crash { worker = victim; at = qq 1 8 } ]
  in
  let o = Dls.Replan.respond_exn plan sol ~load in
  let open Dls.Replan in
  Alcotest.(check bool)
    "never worse than the baseline" true
    (o.achieved.done_by_deadline >=/ o.baseline.done_by_deadline);
  (match o.decision with
  | Keep_original -> Alcotest.fail "early crash should trigger a recovery"
  | Recover r ->
    Alcotest.check rat "accounting closes" load (r.banked +/ r.residual);
    (match Check.Validator.validate_recovery ~deadline:o.deadline r with
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "recovery does not validate: %s"
        (String.concat "; "
           (List.map (Check.Validator.violation_to_string r.degraded) vs)));
    Alcotest.(check bool)
      "recovery strictly beats the baseline" true
      (o.achieved.done_by_deadline >/ o.baseline.done_by_deadline))

let test_replan_policy_strings () =
  List.iter
    (fun p ->
      match Dls.Replan.policy_of_string (Dls.Replan.policy_to_string p) with
      | Some p' ->
        Alcotest.(check string)
          "round trip" (Dls.Replan.policy_to_string p)
          (Dls.Replan.policy_to_string p')
      | None -> Alcotest.failf "unparseable %s" (Dls.Replan.policy_to_string p))
    (Dls.Replan.Margin (qq 2 5) :: Dls.Replan.default_policies);
  Alcotest.(check bool)
    "junk rejected" true
    (Dls.Replan.policy_of_string "margin:-1" = None
    && Dls.Replan.policy_of_string "panic" = None)

(* Satellite: same seed, same case — bit-identical plans and decisions. *)
let test_fault_campaign_determinism () =
  List.iter
    (fun regime ->
      for i = 0 to 7 do
        let p1, f1, l1 = Check.Fuzz.fault_case ~seed:42 ~severity:0.7 regime i in
        let p2, f2, l2 = Check.Fuzz.fault_case ~seed:42 ~severity:0.7 regime i in
        Alcotest.(check string)
          "same platform" (Dls.Platform_io.to_string p1)
          (Dls.Platform_io.to_string p2);
        Alcotest.(check string)
          "same faults" (Dls.Faults.to_string f1) (Dls.Faults.to_string f2);
        Alcotest.check rat "same load" l1 l2;
        let render p f l =
          let sol = Dls.Fifo.optimal p in
          Format.asprintf "%a" Dls.Replan.pp_outcome
            (Dls.Replan.respond_exn f sol ~load:l)
        in
        Alcotest.(check string) "same decision" (render p1 f1 l1) (render p2 f2 l2)
      done)
    Check.Fuzz.all_regimes

(* ------------------------------------------------------------------ *)
(* The robustness fuzz matrix                                          *)
(* ------------------------------------------------------------------ *)

let matrix_case regime =
  let name = Printf.sprintf "fault matrix, %s" (Check.Fuzz.regime_to_string regime) in
  Alcotest.test_case name `Slow (fun () ->
      match Check.Fuzz.run_fault_matrix ~count:40 ~severity:0.8 regime with
      | [] -> ()
      | f :: _ as fs ->
        Alcotest.failf "%d failing case(s); first (index %d):\n%s%s\n%s"
          (List.length fs) f.Check.Fuzz.f_index f.Check.Fuzz.f_platform
          f.Check.Fuzz.f_faults
          (String.concat "\n" f.Check.Fuzz.f_messages))

let test_matrix_jobs_invariant () =
  (* The failure set (here: empty) and the generated cases must not
     depend on the parallelism. *)
  let one = Check.Fuzz.run_fault_matrix ~jobs:1 ~count:12 Check.Fuzz.Small_z in
  let two = Check.Fuzz.run_fault_matrix ~jobs:2 ~count:12 Check.Fuzz.Small_z in
  Alcotest.(check int) "same failure count" (List.length one) (List.length two)

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "roundtrip" `Quick test_plan_roundtrip;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "malformed rejected" `Quick test_plan_rejects_malformed;
          Alcotest.test_case "garbage never raises" `Quick
            test_parser_garbage_never_raises;
        ] );
      ( "integrator",
        [
          Alcotest.test_case "nominal" `Quick test_integrator_nominal;
          Alcotest.test_case "slowdown" `Quick test_integrator_slowdown;
          Alcotest.test_case "stall" `Quick test_integrator_stall;
          Alcotest.test_case "crash" `Quick test_integrator_crash;
          Alcotest.test_case "degraded platform" `Quick test_degraded_platform;
        ] );
      ( "replan",
        [
          Alcotest.test_case "no fault, no change" `Quick test_replan_no_fault;
          Alcotest.test_case "crash recovers" `Quick test_replan_crash_recovers;
          Alcotest.test_case "policy strings" `Quick test_replan_policy_strings;
          Alcotest.test_case "campaign determinism" `Quick
            test_fault_campaign_determinism;
        ] );
      ( "matrix",
        List.map matrix_case Check.Fuzz.all_regimes
        @ [ Alcotest.test_case "jobs invariant" `Quick test_matrix_jobs_invariant ]
      );
    ]
