(* Tests for the divisible-load scheduling core: the scenario LP,
   Theorem 1 (optimal FIFO ordering), Theorem 2 (bus closed form), LIFO,
   schedules and rounding. *)

module Q = Numeric.Rational
open Q.Infix

let rat = Alcotest.testable Q.pp Q.equal
let q = Q.of_int
let qq = Q.of_ints

let worker ?name c w d =
  Dls.Platform.worker ?name ~c:(qq (fst c) (snd c)) ~w:(qq (fst w) (snd w))
    ~d:(qq (fst d) (snd d)) ()

(* The running two-worker example, z = 1/2:
   P1 (c=1, w=1, d=1/2), P2 (c=1, w=2, d=1/2). *)
let two_worker_platform () =
  Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (1, 1) (2, 1) (1, 2) ]

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_pos_rational =
  let open QCheck2.Gen in
  let* n = int_range 1 10 in
  let* d = int_range 1 10 in
  return (qq n d)

(* A platform with uniform return ratio [z]. *)
let gen_platform ?z ~min_size ~max_size () =
  let open QCheck2.Gen in
  let* n = int_range min_size max_size in
  let* z = match z with Some z -> return z | None -> gen_pos_rational in
  let* specs = list_size (return n) (pair gen_pos_rational gen_pos_rational) in
  return (Dls.Platform.with_return_ratio ~z specs)

let gen_small_z =
  let open QCheck2.Gen in
  let* n = int_range 1 9 in
  let* d = int_range (n + 1) 12 in
  return (qq n d)

let gen_big_z =
  let open QCheck2.Gen in
  let* n = int_range 2 12 in
  let* d = int_range 1 (n - 1) in
  return (qq n d)

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Platform                                                            *)
(* ------------------------------------------------------------------ *)

let test_platform_validation () =
  (match Dls.Platform.make [] with
  | Error (Dls.Errors.Invalid_scenario _) -> ()
  | Ok _ -> Alcotest.fail "empty platform accepted"
  | Error e -> Alcotest.failf "unexpected error: %s" (Dls.Errors.to_string e));
  Alcotest.check_raises "empty (exn)"
    (Dls.Errors.Error (Dls.Errors.Invalid_scenario "Platform.make: no workers"))
    (fun () -> ignore (Dls.Platform.make_exn []));
  Alcotest.check_raises "zero c"
    (Invalid_argument "Platform.worker: c must be positive") (fun () ->
      ignore (Dls.Platform.worker ~c:Q.zero ~w:Q.one ~d:Q.one ()));
  Alcotest.check_raises "negative d"
    (Invalid_argument "Platform.worker: d must be non-negative") (fun () ->
      ignore (Dls.Platform.worker ~c:Q.one ~w:Q.one ~d:Q.minus_one ()))

let test_platform_z_ratio () =
  let p = two_worker_platform () in
  Alcotest.(check (option rat)) "z = 1/2" (Some Q.half) (Dls.Platform.z_ratio p);
  let p2 =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (1, 1) (1, 1) (1, 3) ]
  in
  Alcotest.(check (option rat)) "non-uniform" None (Dls.Platform.z_ratio p2)

let test_platform_is_bus () =
  Alcotest.(check bool) "bus" true (Dls.Platform.is_bus (two_worker_platform ()));
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (2, 1) (1, 1) (1, 1) ]
  in
  Alcotest.(check bool) "star" false (Dls.Platform.is_bus p)

let test_platform_scaling () =
  let p = Dls.Platform.scale_comm Q.two (two_worker_platform ()) in
  Alcotest.check rat "c doubled" Q.two (Dls.Platform.get p 0).Dls.Platform.c;
  Alcotest.check rat "d doubled" Q.one (Dls.Platform.get p 0).Dls.Platform.d;
  Alcotest.check rat "w kept" Q.one (Dls.Platform.get p 0).Dls.Platform.w;
  let p = Dls.Platform.scale_comp Q.half (two_worker_platform ()) in
  Alcotest.check rat "w halved" Q.half (Dls.Platform.get p 0).Dls.Platform.w

let test_platform_sorted_stable () =
  (* Equal keys keep the original order: sorting by c here is stable. *)
  let p =
    Dls.Platform.make_exn
      [ worker (2, 1) (1, 1) (1, 1); worker (1, 1) (9, 1) (1, 2); worker (1, 1) (1, 1) (1, 2) ]
  in
  let idx = Dls.Platform.sorted_indices_by p (fun wk -> wk.Dls.Platform.c) in
  Alcotest.(check (array int)) "stable sort" [| 1; 2; 0 |] idx

let test_platform_restrict () =
  let p = Dls.Platform.restrict (two_worker_platform ()) [| 1 |] in
  Alcotest.(check int) "size 1" 1 (Dls.Platform.size p);
  Alcotest.check rat "kept worker" Q.two (Dls.Platform.get p 0).Dls.Platform.w

(* ------------------------------------------------------------------ *)
(* Scenario                                                            *)
(* ------------------------------------------------------------------ *)

let test_scenario_validation () =
  let p = two_worker_platform () in
  let expect_invalid label r =
    match r with
    | Ok _ -> Alcotest.fail (label ^ " accepted")
    | Error (Dls.Errors.Invalid_scenario _) -> ()
    | Error e -> Alcotest.fail (label ^ ": wrong error " ^ Dls.Errors.to_string e)
  in
  expect_invalid "duplicate"
    (Dls.Scenario.make p ~sigma1:[| 0; 0 |] ~sigma2:[| 0; 1 |]);
  expect_invalid "out of range"
    (Dls.Scenario.make p ~sigma1:[| 0; 2 |] ~sigma2:[| 0; 2 |]);
  expect_invalid "different sets"
    (Dls.Scenario.make p ~sigma1:[| 0 |] ~sigma2:[| 1 |]);
  expect_invalid "empty" (Dls.Scenario.make p ~sigma1:[||] ~sigma2:[||]);
  (* The _exn wrapper raises the typed exception, not Invalid_argument. *)
  (try
     ignore (Dls.Scenario.make_exn p ~sigma1:[| 0; 0 |] ~sigma2:[| 0; 1 |]);
     Alcotest.fail "duplicate accepted by make_exn"
   with Dls.Errors.Error (Dls.Errors.Invalid_scenario _) -> ())

let test_scenario_kinds () =
  let p = two_worker_platform () in
  let f = Dls.Scenario.fifo_exn p [| 1; 0 |] in
  Alcotest.(check bool) "fifo is fifo" true (Dls.Scenario.is_fifo f);
  let l = Dls.Scenario.lifo_exn p [| 1; 0 |] in
  Alcotest.(check bool) "lifo is lifo" true (Dls.Scenario.is_lifo l);
  Alcotest.(check bool) "lifo not fifo" false (Dls.Scenario.is_fifo l);
  Alcotest.(check int) "send pos" 0 (Dls.Scenario.send_position l 1);
  Alcotest.(check int) "return pos" 1 (Dls.Scenario.return_position l 1)

(* ------------------------------------------------------------------ *)
(* LP model: hand-computed instances                                   *)
(* ------------------------------------------------------------------ *)

let test_lp_single_worker () =
  (* One worker: rho = 1 / (c + w + d). *)
  let p = Dls.Platform.make_exn [ worker (2, 1) (3, 1) (1, 1) ] in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.all_workers_fifo p) in
  Alcotest.check rat "rho" (qq 1 6) sol.Dls.Lp_model.rho

let test_lp_two_workers_fifo () =
  (* Hand-solved above: alpha = (4/11, 2/11), rho = 6/11. *)
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  Alcotest.check rat "rho" (qq 6 11) sol.Dls.Lp_model.rho;
  Alcotest.check rat "alpha1" (qq 4 11) sol.Dls.Lp_model.alpha.(0);
  Alcotest.check rat "alpha2" (qq 2 11) sol.Dls.Lp_model.alpha.(1)

let test_lp_two_workers_lifo () =
  (* Hand-solved above: rho = 18/35 with alpha = (2/5, 4/35). *)
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.lifo_exn p [| 0; 1 |]) in
  Alcotest.check rat "rho" (qq 18 35) sol.Dls.Lp_model.rho;
  Alcotest.check rat "alpha1" (qq 2 5) sol.Dls.Lp_model.alpha.(0);
  Alcotest.check rat "alpha2" (qq 4 35) sol.Dls.Lp_model.alpha.(1)

let test_lp_two_port_relaxation () =
  (* Dropping the one-port constraint can only help. *)
  let p = two_worker_platform () in
  let s = Dls.Scenario.fifo_exn p [| 0; 1 |] in
  let one = Dls.Solve.solve_exn ~mode:`Exact ~model:Dls.Lp_model.One_port s in
  let two = Dls.Solve.solve_exn ~mode:`Exact ~model:Dls.Lp_model.Two_port s in
  Alcotest.(check bool) "two-port >= one-port" true
    (two.Dls.Lp_model.rho >=/ one.Dls.Lp_model.rho)

let test_lp_time_for_load () =
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  Alcotest.check rat "time for 6 loads" (q 11)
    (Dls.Lp_model.time_for_load sol ~load:(q 6))

let prop_constraint_report_lemma1 =
  prop ~count:60 "constraint report: slacks >= 0, Lemma 1 structure"
    (gen_platform ~min_size:1 ~max_size:5 ())
    (fun p ->
      let sol = Dls.Fifo.optimal p in
      let report = Dls.Lp_model.constraint_report sol in
      let all_nonneg =
        List.for_all (fun st -> Q.sign st.Dls.Lp_model.slack >= 0) report
      in
      let everyone_enrolled =
        Array.for_all (fun a -> Q.sign a > 0) sol.Dls.Lp_model.alpha
      in
      let non_binding =
        List.length (List.filter (fun st -> not st.Dls.Lp_model.binding) report)
      in
      all_nonneg && ((not everyone_enrolled) || non_binding <= 1))

let test_constraint_report_shape () =
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let report = Dls.Lp_model.constraint_report sol in
  Alcotest.(check int) "2 deadlines + port" 3 (List.length report);
  Alcotest.(check bool) "port row present" true
    (List.exists (fun st -> st.Dls.Lp_model.label = "one-port") report);
  (* hand-computed instance: both deadlines bind, the port is slack
     (1.5 * 6/11 = 9/11 < 1). *)
  List.iter
    (fun st ->
      if st.Dls.Lp_model.label = "one-port" then begin
        Alcotest.(check bool) "port slack" false st.Dls.Lp_model.binding;
        Alcotest.check rat "port slack value" (qq 2 11) st.Dls.Lp_model.slack
      end
      else Alcotest.(check bool) "deadline binds" true st.Dls.Lp_model.binding)
    report

let prop_estimate_rho_accurate =
  prop ~count:60 "float estimate tracks the exact rho"
    (gen_platform ~min_size:1 ~max_size:6 ())
    (fun p ->
      let s = Dls.Scenario.fifo_exn p (Dls.Fifo.order p) in
      let exact = Q.to_float (Dls.Solve.solve_exn ~mode:`Exact s).Dls.Lp_model.rho in
      match Dls.Lp_model.estimate_rho s with
      | None -> QCheck2.Test.fail_reportf "float solver stalled"
      | Some approx ->
        if Float.abs (approx -. exact) > 1e-6 *. Float.max 1.0 exact then
          QCheck2.Test.fail_reportf "exact %.12g vs estimate %.12g" exact approx
        else true)

let test_lp_enrolled_subset () =
  (* Enrolling only worker 1 leaves worker 0 with zero load. *)
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 1 |]) in
  Alcotest.check rat "alpha0 = 0" Q.zero sol.Dls.Lp_model.alpha.(0);
  Alcotest.check rat "rho = 1/(c2+w2+d2)" (qq 2 7) sol.Dls.Lp_model.rho;
  Alcotest.(check (list int)) "enrolled" [ 1 ] (Dls.Lp_model.enrolled_workers sol)

(* ------------------------------------------------------------------ *)
(* Theorem 1: optimal FIFO                                             *)
(* ------------------------------------------------------------------ *)

let test_fifo_order_small_z () =
  (* z = 1/2 < 1: non-decreasing c. *)
  let p =
    Dls.Platform.make_exn
      [ worker (3, 1) (1, 1) (3, 2); worker (1, 1) (1, 1) (1, 2); worker (2, 1) (1, 1) (1, 1) ]
  in
  Alcotest.(check (array int)) "ascending c" [| 1; 2; 0 |] (Dls.Fifo.order p)

let test_fifo_order_big_z () =
  (* z = 2 > 1: non-increasing c (mirror argument). *)
  let p =
    Dls.Platform.make_exn
      [ worker (3, 1) (1, 1) (6, 1); worker (1, 1) (1, 1) (2, 1); worker (2, 1) (1, 1) (4, 1) ]
  in
  Alcotest.(check (array int)) "descending c" [| 0; 2; 1 |] (Dls.Fifo.order p)

let test_fifo_drops_slow_worker () =
  (* The best FIFO schedule may not enroll all workers (Section 1). *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (100, 1) (1, 1) (50, 1) ]
  in
  let best = Dls.Brute.best_fifo p in
  Alcotest.check rat "slow worker dropped" Q.zero best.Dls.Lp_model.alpha.(1);
  Alcotest.check rat "rho = 2/5" (qq 2 5) best.Dls.Lp_model.rho

let prop_theorem1_small_z =
  prop ~count:60 "Theorem 1: sorted FIFO is optimal (z < 1)"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:4 ())
    (fun p ->
      let brute = Dls.Brute.best_fifo p in
      let smart = Dls.Fifo.optimal p in
      Q.equal brute.Dls.Lp_model.rho smart.Dls.Lp_model.rho)

let prop_theorem1_big_z =
  prop ~count:40 "Theorem 1 mirrored: sorted FIFO is optimal (z > 1)"
    QCheck2.Gen.(gen_big_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:4 ())
    (fun p ->
      let brute = Dls.Brute.best_fifo p in
      let smart = Dls.Fifo.optimal p in
      Q.equal brute.Dls.Lp_model.rho smart.Dls.Lp_model.rho)

let prop_mirror_agrees =
  prop ~count:60 "mirror construction matches direct solve (z > 1)"
    QCheck2.Gen.(gen_big_z >>= fun z -> gen_platform ~z ~min_size:1 ~max_size:5 ())
    (fun p ->
      let direct = Dls.Fifo.optimal p in
      let m = Dls.Fifo.optimal_via_mirror_exn p in
      let rho = m.Dls.Fifo.solved.Dls.Lp_model.rho in
      Q.equal rho direct.Dls.Lp_model.rho
      &&
      match Dls.Schedule.validate m.Dls.Fifo.schedule with
      | Ok () -> Q.equal (Dls.Schedule.total_load m.Dls.Fifo.schedule) rho
      | Error msgs -> QCheck2.Test.fail_reportf "%s" (String.concat "; " msgs))

let prop_monotone_in_workers =
  prop ~count:60 "adding a worker never hurts"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:5 ())
    (fun p ->
      let n = Dls.Platform.size p in
      let sub = Dls.Platform.restrict p (Array.init (n - 1) Fun.id) in
      (Dls.Fifo.optimal p).Dls.Lp_model.rho
      >=/ (Dls.Fifo.optimal sub).Dls.Lp_model.rho)

let prop_idle_structure =
  prop ~count:80 "all workers enrolled => at most one idle gap"
    (gen_platform ~min_size:1 ~max_size:5 ())
    (fun p ->
      let sol = Dls.Fifo.optimal p in
      if Array.exists Q.is_zero sol.Dls.Lp_model.alpha then
        QCheck2.assume_fail ()
      else begin
        let sched = Dls.Schedule.of_solved sol in
        let gaps =
          List.filter
            (fun { Dls.Schedule.idle; _ } -> Q.sign idle > 0)
            (Dls.Schedule.idle_times sched)
        in
        List.length gaps <= 1
      end)

(* ------------------------------------------------------------------ *)
(* Theorem 2: bus closed form                                          *)
(* ------------------------------------------------------------------ *)

let test_closed_form_single () =
  (* One worker, c = d = w = 1: u = 1/2, rho~ = 1/3 = 1/(c+w+d). *)
  Alcotest.check rat "u" Q.half (Dls.Closed_form.bus_u ~c:Q.one ~d:Q.one [| Q.one |]).(0);
  Alcotest.check rat "rho" (qq 1 3)
    (Dls.Closed_form.fifo_throughput ~c:Q.one ~d:Q.one [| Q.one |])

let test_closed_form_saturated () =
  (* Many fast workers saturate the port: rho = 1/(c+d). *)
  let ws = Array.make 6 (qq 1 100) in
  Alcotest.check rat "saturated" (qq 2 3)
    (Dls.Closed_form.fifo_throughput ~c:Q.one ~d:Q.half ws)

let prop_theorem2_matches_lp =
  prop ~count:60 "Theorem 2 closed form = FIFO LP on a bus"
    (let open QCheck2.Gen in
     let* c = gen_pos_rational in
     let* dnum = int_range 1 9 in
     let* n = int_range 1 5 in
     let* ws = list_size (return n) gen_pos_rational in
     return (c, Q.mul (qq dnum 10) c, ws))
    (fun (c, d, ws) ->
      let formula = Dls.Closed_form.fifo_throughput ~c ~d (Array.of_list ws) in
      let p = Dls.Platform.bus ~c ~d ws in
      let lp = Dls.Fifo.optimal p in
      Q.equal formula lp.Dls.Lp_model.rho)

let prop_theorem2_two_port =
  prop ~count:60 "rho~ = two-port FIFO LP on a bus"
    (let open QCheck2.Gen in
     let* c = gen_pos_rational in
     let* dnum = int_range 1 9 in
     let* n = int_range 1 4 in
     let* ws = list_size (return n) gen_pos_rational in
     return (c, Q.mul (qq dnum 10) c, ws))
    (fun (c, d, ws) ->
      let formula = Dls.Closed_form.two_port_throughput ~c ~d (Array.of_list ws) in
      let p = Dls.Platform.bus ~c ~d ws in
      let lp = Dls.Fifo.optimal ~model:Dls.Lp_model.Two_port p in
      Q.equal formula lp.Dls.Lp_model.rho)

let prop_theorem2_order_invariant =
  prop ~count:80 "bus throughput is order-invariant (Adler et al.)"
    (let open QCheck2.Gen in
     let* c = gen_pos_rational in
     let* dnum = int_range 1 9 in
     let* ws = list_size (int_range 2 5) gen_pos_rational in
     let* seed = int_range 0 1000 in
     return (c, Q.mul (qq dnum 10) c, ws, seed))
    (fun (c, d, ws, seed) ->
      let a = Array.of_list ws in
      let shuffled = Array.copy a in
      (* deterministic Fisher-Yates from the seed *)
      let state = ref seed in
      let next bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      for i = Array.length shuffled - 1 downto 1 do
        let j = next (i + 1) in
        let t = shuffled.(i) in
        shuffled.(i) <- shuffled.(j);
        shuffled.(j) <- t
      done;
      Q.equal
        (Dls.Closed_form.fifo_throughput ~c ~d a)
        (Dls.Closed_form.fifo_throughput ~c ~d shuffled))

(* ------------------------------------------------------------------ *)
(* LIFO                                                                *)
(* ------------------------------------------------------------------ *)

let prop_lifo_order_optimal =
  prop ~count:50 "LIFO: non-decreasing c order is optimal (z < 1)"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:4 ())
    (fun p ->
      let brute = Dls.Brute.best_lifo p in
      let smart = Dls.Lifo.optimal p in
      Q.equal brute.Dls.Lp_model.rho smart.Dls.Lp_model.rho)

let prop_lifo_oneport_equals_twoport =
  prop ~count:80 "LIFO one-port LP = two-port LP (deadline row dominates)"
    (gen_platform ~min_size:1 ~max_size:5 ())
    (fun p ->
      let ord = Dls.Lifo.order p in
      let one = Dls.Lifo.solve_order ~model:Dls.Lp_model.One_port p ord in
      let two = Dls.Lifo.solve_order ~model:Dls.Lp_model.Two_port p ord in
      Q.equal one.Dls.Lp_model.rho two.Dls.Lp_model.rho)

(* ------------------------------------------------------------------ *)
(* Heuristics and brute force                                          *)
(* ------------------------------------------------------------------ *)

let prop_inc_c_beats_inc_w =
  prop ~count:60 "INC_C >= INC_W (z < 1)"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:5 ())
    (fun p ->
      (Dls.Heuristics.solve Dls.Heuristics.Inc_c p).Dls.Lp_model.rho
      >=/ (Dls.Heuristics.solve Dls.Heuristics.Inc_w p).Dls.Lp_model.rho)

let prop_general_at_least_fifo_lifo =
  prop ~count:12 "best general >= best FIFO, best LIFO"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:3 ())
    (fun p ->
      let general = (Dls.Brute.best_general p).Dls.Lp_model.rho in
      general >=/ (Dls.Brute.best_fifo p).Dls.Lp_model.rho
      && general >=/ (Dls.Brute.best_lifo p).Dls.Lp_model.rho)

let test_permutations_count () =
  Alcotest.(check int) "4! = 24" 24 (List.length (Dls.Brute.permutations 4));
  Alcotest.(check int) "0! = 1" 1 (List.length (Dls.Brute.permutations 0));
  (* all distinct *)
  let perms = List.map (fun a -> Array.to_list a) (Dls.Brute.permutations 4) in
  Alcotest.(check int) "distinct" 24
    (List.length (List.sort_uniq Stdlib.compare perms))

let test_permutations_seq_agrees () =
  (* the eager list is a thin wrapper over the lazy iterator: same
     permutations, same order *)
  List.iter
    (fun n ->
      let eager = Dls.Brute.permutations n in
      let lazy_ = List.of_seq (Dls.Brute.permutations_seq n) in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (List.length eager = List.length lazy_
        && List.for_all2 (fun a b -> a = b) eager lazy_))
    [ 0; 1; 2; 3; 5 ];
  (* the iterator yields fresh arrays: mutating one must not corrupt
     later elements *)
  let seq = Dls.Brute.permutations_seq 3 in
  (match seq () with
  | Seq.Cons (first, _) -> Array.fill first 0 3 99
  | Seq.Nil -> Alcotest.fail "empty sequence");
  let again = List.of_seq seq in
  Alcotest.(check bool)
    "re-traversal unaffected by mutation" true
    (again = Dls.Brute.permutations 3)

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let gen_scenario =
  let open QCheck2.Gen in
  let* p = gen_platform ~min_size:1 ~max_size:5 () in
  let n = Dls.Platform.size p in
  let* seed1 = int_range 0 10000 in
  let* seed2 = int_range 0 10000 in
  let shuffle seed =
    let a = Array.init n Fun.id in
    let state = ref (seed + 1) in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    for i = n - 1 downto 1 do
      let j = next (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  return (Dls.Scenario.make_exn p ~sigma1:(shuffle seed1) ~sigma2:(shuffle seed2))

let prop_schedule_valid =
  prop ~count:120 "LP schedules satisfy every one-port invariant" gen_scenario
    (fun s ->
      let sol = Dls.Solve.solve_exn ~mode:`Exact s in
      let sched = Dls.Schedule.of_solved sol in
      match Dls.Schedule.validate sched with
      | Ok () ->
        Q.equal (Dls.Schedule.total_load sched) sol.Dls.Lp_model.rho
        && Q.equal (Dls.Schedule.makespan sched) Q.one
      | Error msgs -> QCheck2.Test.fail_reportf "%s" (String.concat "; " msgs))

let prop_schedule_scaling =
  prop ~count:60 "for_load scales makespan and load linearly" gen_scenario
    (fun s ->
      let sol = Dls.Solve.solve_exn ~mode:`Exact s in
      let load = q 1000 in
      let sched = Dls.Schedule.for_load sol ~load in
      Q.equal (Dls.Schedule.total_load sched) load
      && Q.equal (Dls.Schedule.makespan sched)
           (load // sol.Dls.Lp_model.rho)
      && Dls.Schedule.validate sched = Ok ())

let test_schedule_mirror_roundtrip () =
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let sched = Dls.Schedule.of_solved sol in
  let mirrored = Dls.Schedule.mirror sched in
  (match Dls.Schedule.validate mirrored with
  | Ok () -> ()
  | Error msgs -> Alcotest.fail (String.concat "; " msgs));
  let back = Dls.Schedule.mirror mirrored in
  Alcotest.check rat "load preserved" (Dls.Schedule.total_load sched)
    (Dls.Schedule.total_load back)

(* ------------------------------------------------------------------ *)
(* Rounding                                                            *)
(* ------------------------------------------------------------------ *)

let test_rounding_paper_example () =
  (* Section 5: alpha = (200.4, 300.2, 139.8, 359.6), M = 1000
     -> (201, 301, 139, 359). *)
  let weights = [| qq 1002 5; qq 1501 5; qq 699 5; qq 1798 5 |] in
  let loads =
    Dls.Rounding.share_out ~weights ~order:[| 0; 1; 2; 3 |] ~total:1000
  in
  Alcotest.(check (array int)) "paper example" [| 201; 301; 139; 359 |] loads

let test_rounding_zero_total () =
  let loads =
    Dls.Rounding.share_out ~weights:[| Q.one; Q.two |] ~order:[| 0; 1 |] ~total:0
  in
  Alcotest.(check (array int)) "all zero" [| 0; 0 |] loads

let test_rounding_all_on_one_worker () =
  (* All the weight on one worker: it takes everything, the zero-weight
     workers get none of the leftovers either. *)
  let loads =
    Dls.Rounding.share_out
      ~weights:[| Q.zero; qq 7 3; Q.zero |]
      ~order:[| 2; 1; 0 |] ~total:7
  in
  Alcotest.(check (array int)) "single carrier" [| 0; 7; 0 |] loads

let test_rounding_leftovers_cycle_in_order () =
  (* Three equal weights, total 2: every floor is 0, K = 2 leftovers go
     one each to the first two POSITIVE-weight entries of [order] —
     order decides, not index. *)
  let w = qq 1 3 in
  let loads =
    Dls.Rounding.share_out ~weights:[| w; w; w |] ~order:[| 2; 0; 1 |] ~total:2
  in
  Alcotest.(check (array int)) "order-directed leftovers" [| 1; 0; 1 |] loads;
  (* Zero-weight entries are skipped when cycling. *)
  let loads =
    Dls.Rounding.share_out
      ~weights:[| Q.zero; w; w |]
      ~order:[| 0; 1; 2 |] ~total:3
  in
  Alcotest.(check (array int)) "zero-weight skipped" [| 0; 2; 1 |] loads

let test_rounding_guard_when_leftovers_exceed_entries () =
  (* K > positive entries is impossible for genuine floors (each of the
     [p] floors loses strictly less than one item, so K <= p - 1); the
     cycling guard in [share_out] is for defense in depth.  Exercise the
     largest reachable leftover count, K = p - 1. *)
  let w = qq 1 2 in
  let loads =
    Dls.Rounding.share_out ~weights:[| w; w |] ~order:[| 1; 0 |] ~total:3
  in
  (* exact = (3/2, 3/2): floors (1, 1), K = 1 -> first in order. *)
  Alcotest.(check (array int)) "boundary leftover" [| 1; 2 |] loads;
  Alcotest.(check int) "conserved" 3 (Array.fold_left ( + ) 0 loads)

let test_rounding_rejects_bad_input () =
  Alcotest.check_raises "negative total"
    (Invalid_argument "Rounding: negative total") (fun () ->
      ignore
        (Dls.Rounding.share_out ~weights:[| Q.one |] ~order:[| 0 |] ~total:(-1)));
  Alcotest.check_raises "all weights zero"
    (Invalid_argument "Rounding: all weights zero") (fun () ->
      ignore
        (Dls.Rounding.share_out ~weights:[| Q.zero; Q.zero |] ~order:[| 0; 1 |]
           ~total:5));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Rounding: negative weight") (fun () ->
      ignore
        (Dls.Rounding.share_out ~weights:[| Q.minus_one |] ~order:[| 0 |] ~total:5))

let prop_rounding_conserves =
  prop ~count:100 "rounded loads sum to the total"
    (QCheck2.Gen.pair (gen_platform ~min_size:1 ~max_size:6 ())
       (QCheck2.Gen.int_range 0 5000))
    (fun (p, total) ->
      let sol = Dls.Fifo.optimal p in
      let loads = Dls.Rounding.integer_loads sol ~total in
      Array.fold_left ( + ) 0 loads = total
      && Dls.Rounding.imbalance sol ~total <=/ Q.one)

let prop_rounding_respects_selection =
  prop ~count:80 "workers with zero load stay at zero"
    (gen_platform ~min_size:2 ~max_size:5 ())
    (fun p ->
      let sol = Dls.Fifo.optimal p in
      let loads = Dls.Rounding.integer_loads sol ~total:997 in
      Array.for_all2
        (fun l a -> Q.sign a > 0 || l = 0)
        loads sol.Dls.Lp_model.alpha)

(* ------------------------------------------------------------------ *)
(* No-return baseline (classical DLT results)                          *)
(* ------------------------------------------------------------------ *)

let test_no_return_single () =
  (* One worker: alpha = 1/(c+w). *)
  let p = Dls.Platform.make_exn [ worker (2, 1) (3, 1) (0, 1) ] in
  Alcotest.check rat "1/(c+w)" (qq 1 5) (Dls.No_return.throughput p)

let test_no_return_recursion () =
  (* Two identical workers, c = w = 1: alpha1 = 1/2, alpha2 = 1/4. *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (0, 1); worker (1, 1) (1, 1) (0, 1) ]
  in
  let alpha = Dls.No_return.loads p ~order:[| 0; 1 |] in
  Alcotest.check rat "alpha1" Q.half alpha.(0);
  Alcotest.check rat "alpha2" (qq 1 4) alpha.(1);
  Alcotest.check rat "rho" (qq 3 4) (Dls.No_return.throughput p)

let prop_no_return_matches_lp =
  prop ~count:60 "no-return closed form = scenario LP with d = 0"
    (gen_platform ~min_size:1 ~max_size:6 ())
    (fun p ->
      let p = Dls.No_return.strip_returns p in
      let formula = Dls.No_return.throughput p in
      let lp =
        Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p (Dls.No_return.optimal_order p))
      in
      Q.equal formula lp.Dls.Lp_model.rho)

let prop_no_return_bandwidth_order_optimal =
  prop ~count:30 "no-return: bandwidth-first beats every order (brute force)"
    (gen_platform ~min_size:2 ~max_size:4 ())
    (fun p ->
      let p = Dls.No_return.strip_returns p in
      let brute = Dls.Brute.best_fifo p in
      Q.equal brute.Dls.Lp_model.rho (Dls.No_return.throughput p))

let prop_no_return_all_participate =
  prop ~count:40 "no-return: every worker gets positive load"
    (gen_platform ~min_size:1 ~max_size:8 ())
    (fun p ->
      let alpha = Dls.No_return.loads p ~order:(Dls.No_return.optimal_order p) in
      Array.for_all (fun a -> Q.sign a > 0) alpha)

let prop_returns_only_hurt =
  prop ~count:40 "adding return messages can only reduce throughput"
    (gen_platform ~min_size:1 ~max_size:5 ())
    (fun p ->
      let with_returns = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
      let without = Dls.No_return.throughput (Dls.No_return.strip_returns p) in
      with_returns <=/ without)

(* ------------------------------------------------------------------ *)
(* Affine extension                                                    *)
(* ------------------------------------------------------------------ *)

let affine_rho = function
  | Dls.Affine.Solved s -> s.Dls.Affine.rho
  | Dls.Affine.Too_slow -> Alcotest.fail "unexpectedly Too_slow"

let test_affine_zero_latency_matches_linear () =
  let p = two_worker_platform () in
  let a = Dls.Affine.of_platform p in
  let order = [| 0; 1 |] in
  let affine = affine_rho (Dls.Affine.solve a ~sigma1:order ~sigma2:order) in
  let linear = (Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p order)).Dls.Lp_model.rho in
  Alcotest.check rat "same rho" linear affine

let test_affine_too_slow () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2) ] in
  let a = Dls.Affine.of_platform ~send_latency:(q 2) p in
  (match Dls.Affine.solve a ~sigma1:[| 0 |] ~sigma2:[| 0 |] with
  | Dls.Affine.Too_slow -> ()
  | Dls.Affine.Solved _ -> Alcotest.fail "latency 2 > deadline 1 accepted");
  match Dls.Affine.best_fifo a with
  | Dls.Affine.Too_slow -> ()
  | Dls.Affine.Solved _ -> Alcotest.fail "best_fifo should be Too_slow"

let test_affine_latency_forces_selection () =
  (* Without latency both workers help; a large start-up cost on the
     second message makes a single-worker schedule optimal. *)
  let p = two_worker_platform () in
  let expensive =
    Dls.Affine.make
      [
        Dls.Affine.worker (Dls.Platform.get p 0);
        Dls.Affine.worker ~send_latency:(qq 9 10) (Dls.Platform.get p 1);
      ]
  in
  match Dls.Affine.best_fifo expensive with
  | Dls.Affine.Too_slow -> Alcotest.fail "feasible schedules exist"
  | Dls.Affine.Solved s ->
    Alcotest.(check int) "only one worker" 1 (Array.length s.Dls.Affine.sigma1);
    (* worker 1 alone: rho = 1/(c+w+d) = 2/5 *)
    Alcotest.check rat "P1 alone" (qq 2 5) s.Dls.Affine.rho

let prop_affine_zero_latency_best =
  prop ~count:25 "affine best_fifo with zero latencies = linear brute force"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:3 ())
    (fun p ->
      let a = Dls.Affine.of_platform p in
      Q.equal
        (affine_rho (Dls.Affine.best_fifo a))
        (Dls.Brute.best_fifo p).Dls.Lp_model.rho)

let prop_affine_latency_monotone =
  prop ~count:30 "latencies only reduce throughput"
    (QCheck2.Gen.pair
       (gen_platform ~min_size:1 ~max_size:3 ())
       (QCheck2.Gen.int_range 1 20))
    (fun (p, lat) ->
      let latency = qq lat 100 in
      let free = affine_rho (Dls.Affine.best_fifo (Dls.Affine.of_platform p)) in
      match
        Dls.Affine.best_fifo
          (Dls.Affine.of_platform ~send_latency:latency ~return_latency:latency p)
      with
      | Dls.Affine.Too_slow -> true
      | Dls.Affine.Solved s -> s.Dls.Affine.rho <=/ free)

let prop_affine_general_at_least_fifo =
  prop ~count:10 "affine general search >= FIFO search"
    (gen_platform ~min_size:2 ~max_size:3 ())
    (fun p ->
      let a = Dls.Affine.of_platform ~send_latency:(qq 1 20) p in
      match (Dls.Affine.best_fifo a, Dls.Affine.best_general a) with
      | Dls.Affine.Too_slow, Dls.Affine.Too_slow -> true
      | Dls.Affine.Too_slow, Dls.Affine.Solved _ -> true
      | Dls.Affine.Solved _, Dls.Affine.Too_slow -> false
      | Dls.Affine.Solved f, Dls.Affine.Solved g ->
        g.Dls.Affine.rho >=/ f.Dls.Affine.rho)

(* ------------------------------------------------------------------ *)
(* Tree networks (no-return baseline)                                  *)
(* ------------------------------------------------------------------ *)

let gen_tree =
  let open QCheck2.Gen in
  let rec build depth =
    if depth = 0 then map (fun w -> Dls.Tree.leaf w) gen_pos_rational
    else
      let* n_children = int_range 0 3 in
      if n_children = 0 then map (fun w -> Dls.Tree.leaf w) gen_pos_rational
      else
        let* children =
          list_size (return n_children) (pair gen_pos_rational (build (depth - 1)))
        in
        let* own = option gen_pos_rational in
        return
          (match own with
          | Some w -> Dls.Tree.node ~w children
          | None -> Dls.Tree.node children)
  in
  let* n_top = int_range 1 3 in
  let* top = list_size (return n_top) (pair gen_pos_rational (build 2)) in
  return (Dls.Tree.root top)

let test_tree_flat_equals_star () =
  let specs = [ (qq 1 2, q 1); (q 1, q 2); (q 2, qq 1 3) ] in
  let tree = Dls.Tree.root (List.map (fun (c, w) -> (c, Dls.Tree.leaf w)) specs) in
  let star =
    Dls.Platform.make_exn
      (List.map (fun (c, w) -> Dls.Platform.worker ~c ~w ~d:Q.zero ()) specs)
  in
  Alcotest.check rat "flat tree = star" (Dls.No_return.throughput star)
    (Dls.Tree.throughput tree)

let test_tree_single_chain () =
  (* root -1-> leaf(w=2): rho = 1/3 *)
  let tree = Dls.Tree.root [ (q 1, Dls.Tree.leaf (q 2)) ] in
  Alcotest.check rat "chain" (qq 1 3) (Dls.Tree.throughput tree)

let test_tree_relay_chain () =
  (* root -1-> relay -1-> leaf(w=1): store-and-forward, rho = 1/3 *)
  let tree =
    Dls.Tree.root [ (q 1, Dls.Tree.node [ (q 1, Dls.Tree.leaf (q 1)) ]) ]
  in
  Alcotest.check rat "relay chain" (qq 1 3) (Dls.Tree.throughput tree)

let test_tree_computing_internal_node () =
  (* root -1-> node(w=1){ -1-> leaf(w=1) }:
     node as worker: 1/w + 1/(c+w) = 3/2, w_eq = 2/3, rho = 1/(1+2/3) = 3/5. *)
  let tree =
    Dls.Tree.root
      [ (q 1, Dls.Tree.node ~w:(q 1) [ (q 1, Dls.Tree.leaf (q 1)) ]) ]
  in
  Alcotest.check rat "computing internal" (qq 3 5) (Dls.Tree.throughput tree)

let test_tree_equivalent_leaf () =
  Alcotest.check rat "leaf equivalent" (q 7) (Dls.Tree.equivalent_w (Dls.Tree.leaf (q 7)))

let test_tree_constructors () =
  (try
     ignore (Dls.Tree.leaf Q.zero);
     Alcotest.fail "leaf w=0 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Dls.Tree.node []);
     Alcotest.fail "childless relay accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dls.Tree.node [ (Q.zero, Dls.Tree.leaf Q.one) ]);
    Alcotest.fail "zero link cost accepted"
  with Invalid_argument _ -> ()

let prop_tree_validates =
  prop ~count:80 "tree schedules pass the operational validator" gen_tree
    (fun tree ->
      match Dls.Tree.validate tree with
      | Ok () -> true
      | Error msgs -> QCheck2.Test.fail_reportf "%s" (String.concat "; " msgs))

let prop_tree_load_conservation =
  prop ~count:60 "tree: computed loads sum to the throughput" gen_tree
    (fun tree ->
      let total =
        Q.sum (List.map (fun a -> a.Dls.Tree.load) (Dls.Tree.schedule tree))
      in
      Q.equal total (Dls.Tree.throughput tree))

let prop_tree_extra_leaf_helps =
  prop ~count:50 "tree: adding a worker never hurts"
    (QCheck2.Gen.pair gen_tree (QCheck2.Gen.pair gen_pos_rational gen_pos_rational))
    (fun (tree, (c, w)) ->
      let bigger =
        Dls.Tree.node ~name:(Printf.sprintf "root+%d" (Dls.Tree.size tree))
          ((c, Dls.Tree.leaf w) :: tree.Dls.Tree.children)
      in
      Dls.Tree.throughput bigger >=/ Dls.Tree.throughput tree)

let prop_tree_relay_costs =
  prop ~count:50 "tree: inserting a relay never helps"
    (QCheck2.Gen.pair gen_pos_rational (QCheck2.Gen.pair gen_pos_rational gen_pos_rational))
    (fun (c_extra, (c, w)) ->
      let direct = Dls.Tree.root [ (c, Dls.Tree.leaf w) ] in
      let relayed =
        Dls.Tree.root [ (c, Dls.Tree.node [ (c_extra, Dls.Tree.leaf w) ]) ]
      in
      Dls.Tree.throughput relayed <=/ Dls.Tree.throughput direct)

(* ------------------------------------------------------------------ *)
(* Analytic bounds                                                     *)
(* ------------------------------------------------------------------ *)

let prop_bounds_sandwich_optimum =
  prop ~count:80 "analytic bounds sandwich the optimum"
    (gen_platform ~min_size:1 ~max_size:6 ())
    (fun p ->
      let rho = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
      Dls.Bounds.lower p <=/ rho && rho <=/ Dls.Bounds.upper p)

let prop_bounds_general_upper =
  prop ~count:20 "upper bound also caps arbitrary permutation pairs"
    (gen_platform ~min_size:2 ~max_size:3 ())
    (fun p ->
      (Dls.Brute.best_general p).Dls.Lp_model.rho <=/ Dls.Bounds.upper p)

let test_bounds_single_worker_tight () =
  (* One worker: all three quantities coincide with the optimum. *)
  let p = Dls.Platform.make_exn [ worker (2, 1) (3, 1) (1, 1) ] in
  let rho = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
  Alcotest.check rat "lower tight" rho (Dls.Bounds.lower p);
  Alcotest.check rat "chain tight" rho (Dls.Bounds.chain_bound p)

(* ------------------------------------------------------------------ *)
(* Small API surfaces                                                  *)
(* ------------------------------------------------------------------ *)

let test_heuristics_names () =
  Alcotest.(check (list string)) "names" [ "INC_C"; "INC_W"; "LIFO" ]
    (List.map Dls.Heuristics.name Dls.Heuristics.all)

let test_schedule_idle_times () =
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let sched = Dls.Schedule.of_solved sol in
  let idles = Dls.Schedule.idle_times sched in
  Alcotest.(check int) "one entry per enrolled worker" 2 (List.length idles);
  List.iter
    (fun { Dls.Schedule.idle = gap; _ } ->
      Alcotest.(check bool) "non-negative" true (Q.sign gap >= 0))
    idles

let test_schedule_scale_validation () =
  let p = two_worker_platform () in
  let sched = Dls.Schedule.of_solved (Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |])) in
  (try
     ignore (Dls.Schedule.scale Q.zero sched);
     Alcotest.fail "zero scale accepted"
   with Invalid_argument _ -> ());
  let doubled = Dls.Schedule.scale Q.two sched in
  Alcotest.check rat "horizon doubled" Q.two (Dls.Schedule.makespan doubled);
  Alcotest.(check bool) "still valid" true (Dls.Schedule.validate doubled = Ok ())

let test_schedule_mirror_rejects_no_return () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (0, 1) ] in
  let sched = Dls.Schedule.of_solved (Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0 |])) in
  try
    ignore (Dls.Schedule.mirror sched);
    Alcotest.fail "mirror of d=0 accepted"
  with Invalid_argument _ -> ()

let test_pp_smoke () =
  let p = two_worker_platform () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.lifo_exn p [| 0; 1 |]) in
  let s1 = Format.asprintf "%a" Dls.Platform.pp p in
  let s2 = Format.asprintf "%a" Dls.Scenario.pp sol.Dls.Lp_model.scenario in
  let s3 = Format.asprintf "%a" Dls.Lp_model.pp sol in
  let s4 = Format.asprintf "%a" Dls.Schedule.pp (Dls.Schedule.of_solved sol) in
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 0))
    [ s1; s2; s3; s4 ]

let test_fifo_order_z_equal_one () =
  (* z = 1: Theorem 1 says order is irrelevant; the library picks the
     ascending-c order and must still match the brute force. *)
  let p =
    Dls.Platform.make_exn
      [ worker (2, 1) (1, 1) (2, 1); worker (1, 1) (3, 1) (1, 1) ]
  in
  let brute = Dls.Brute.best_fifo p in
  let smart = Dls.Fifo.optimal p in
  Alcotest.check rat "z=1 optimal" brute.Dls.Lp_model.rho smart.Dls.Lp_model.rho

(* ------------------------------------------------------------------ *)
(* Sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let prop_slowing_never_helps =
  prop ~count:50 "slowing any resource never raises the throughput"
    (let open QCheck2.Gen in
     let* p = gen_small_z >>= fun z -> gen_platform ~z ~min_size:1 ~max_size:5 () in
     let* target = int_range 0 (Dls.Platform.size p - 1) in
     let* comm = bool in
     let* slow_num = int_range 11 30 in
     return (p, (if comm then Dls.Sensitivity.Comm target else Dls.Sensitivity.Comp target), qq slow_num 10))
    (fun (p, param, factor) ->
      Q.sign (Dls.Sensitivity.throughput_delta p param ~factor) <= 0)

let prop_speeding_never_hurts =
  prop ~count:50 "speeding any resource never lowers the throughput"
    (let open QCheck2.Gen in
     let* p = gen_small_z >>= fun z -> gen_platform ~z ~min_size:1 ~max_size:5 () in
     let* target = int_range 0 (Dls.Platform.size p - 1) in
     let* comm = bool in
     let* fast_den = int_range 11 30 in
     return (p, (if comm then Dls.Sensitivity.Comm target else Dls.Sensitivity.Comp target), qq 10 fast_den))
    (fun (p, param, factor) ->
      Q.sign (Dls.Sensitivity.throughput_delta p param ~factor) >= 0)

let test_sensitivity_dropped_worker_is_flat () =
  (* Slowing the compute of a worker that resource selection already
     dropped changes nothing. *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (100, 1) (1, 1) (50, 1) ]
  in
  let sol = Dls.Fifo.optimal p in
  Alcotest.check rat "worker 2 dropped" Q.zero sol.Dls.Lp_model.alpha.(1);
  Alcotest.check rat "no effect" Q.zero
    (Dls.Sensitivity.throughput_delta p (Dls.Sensitivity.Comp 1) ~factor:(q 5))

let test_sensitivity_table_shape () =
  let p = two_worker_platform () in
  let entries = Dls.Sensitivity.table p ~factor:(qq 11 10) in
  Alcotest.(check int) "2 workers x 2 params" 4 (List.length entries);
  List.iter
    (fun (param, rel) ->
      if Q.sign rel > 0 then
        Alcotest.failf "slowdown helped via %s"
          (Dls.Sensitivity.parameter_to_string p param))
    entries

let test_sensitivity_perturb_validation () =
  let p = two_worker_platform () in
  (try
     ignore (Dls.Sensitivity.perturb p (Dls.Sensitivity.Comm 5) ~factor:Q.one);
     Alcotest.fail "out-of-range worker accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dls.Sensitivity.perturb p (Dls.Sensitivity.Comm 0) ~factor:Q.zero);
    Alcotest.fail "zero factor accepted"
  with Invalid_argument _ -> ()

let test_sensitivity_preserves_z () =
  let p = two_worker_platform () in
  let p' = Dls.Sensitivity.perturb p (Dls.Sensitivity.Comm 0) ~factor:(q 3) in
  Alcotest.(check (option rat)) "z preserved" (Some Q.half) (Dls.Platform.z_ratio p')

(* ------------------------------------------------------------------ *)
(* Deltas                                                              *)
(* ------------------------------------------------------------------ *)

let test_delta_apply () =
  let p = two_worker_platform () in
  let d =
    [
      Dls.Delta.Scale_comm { worker = 0; factor = q 2 };
      Dls.Delta.Scale_comp { worker = 1; factor = Q.half };
    ]
  in
  Alcotest.(check bool) "shape preserved" true (Dls.Delta.preserves_shape d);
  let p' = Dls.Delta.apply_exn p d in
  let w0 = Dls.Platform.get p 0 and w0' = Dls.Platform.get p' 0 in
  Alcotest.(check rat) "c scaled" (Q.mul (q 2) w0.Dls.Platform.c) w0'.Dls.Platform.c;
  Alcotest.(check rat) "d scaled with c" (Q.mul (q 2) w0.Dls.Platform.d)
    w0'.Dls.Platform.d;
  Alcotest.(check (option rat)) "uniform z preserved by comm scaling"
    (Dls.Platform.z_ratio p) (Dls.Platform.z_ratio p');
  let w1 = Dls.Platform.get p 1 and w1' = Dls.Platform.get p' 1 in
  Alcotest.(check rat) "w scaled" (Q.mul Q.half w1.Dls.Platform.w)
    w1'.Dls.Platform.w;
  Alcotest.(check rat) "other fields untouched" w1.Dls.Platform.c
    w1'.Dls.Platform.c;
  (* add/remove change the shape and are rejected by [preserves_shape] *)
  let grow = [ Dls.Delta.Add_worker (Dls.Platform.worker ~c:(q 1) ~w:(q 2) ~d:Q.half ()) ] in
  Alcotest.(check bool) "add changes shape" false (Dls.Delta.preserves_shape grow);
  Alcotest.(check int) "worker appended" 3
    (Dls.Platform.size (Dls.Delta.apply_exn p grow));
  Alcotest.(check int) "worker removed" 1
    (Dls.Platform.size (Dls.Delta.apply_exn p [ Dls.Delta.Remove_worker 0 ]))

let test_delta_apply_rejects () =
  let p = two_worker_platform () in
  let rejects label d =
    match Dls.Delta.apply p d with
    | Error (Dls.Errors.Invalid_scenario _) -> ()
    | Error e -> Alcotest.failf "%s: wrong error %s" label (Dls.Errors.to_string e)
    | Ok _ -> Alcotest.failf "%s: accepted" label
  in
  rejects "out-of-range worker"
    [ Dls.Delta.Scale_comm { worker = 9; factor = q 2 } ];
  rejects "zero factor" [ Dls.Delta.Scale_comp { worker = 0; factor = Q.zero } ];
  rejects "negative z" [ Dls.Delta.Set_z (q (-1)) ];
  rejects "removing the last worker"
    [ Dls.Delta.Remove_worker 0; Dls.Delta.Remove_worker 0 ]

let test_delta_spec_roundtrip () =
  List.iter
    (fun spec ->
      match Dls.Delta.of_spec ~line:1 ~col:1 spec with
      | Error e -> Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e)
      | Ok d ->
        Alcotest.(check string)
          (Printf.sprintf "canonical %S" spec)
          spec (Dls.Delta.to_spec d))
    [ "comm:1:5/4"; "comp:2:1/2"; "z:3/2"; "add:1:2:1/2"; "drop:3";
      "comm:1:5/4,z:2,drop:1" ]

let test_delta_spec_errors () =
  List.iter
    (fun (spec, expect_col) ->
      match Dls.Delta.of_spec ~line:1 ~col:1 spec with
      | Ok _ -> Alcotest.failf "spec %S: expected a parse error" spec
      | Error (Dls.Errors.Parse_error { col; _ }) ->
        Alcotest.(check int) (Printf.sprintf "col of %S" spec) expect_col col
      | Error e -> Alcotest.failf "spec %S: %s" spec (Dls.Errors.to_string e))
    [
      ("", 1);
      ("comm:1", 1);  (* too few fields: blamed on the change *)
      ("comm:0:2", 6);  (* 1-based index *)
      ("comm:1:x", 8);
      ("z:", 3);  (* stray ':' *)
      ("comm:1:2,", 10);  (* stray ',' *)
      ("frob:1:2", 1);
    ]

let test_delta_scenario_keeps_order () =
  (* A shape-preserving delta keeps the scenario's permutations; a
     shape-changing one rebuilds the enrollment FIFO. *)
  let p = two_worker_platform () in
  let s = Dls.Scenario.fifo_exn p [| 1; 0 |] in
  let s' =
    Dls.Delta.apply_scenario_exn s
      [ Dls.Delta.Scale_comp { worker = 0; factor = q 2 } ]
  in
  Alcotest.(check bool) "sigma1 kept" true (s'.Dls.Scenario.sigma1 = [| 1; 0 |]);
  let s'' = Dls.Delta.apply_scenario_exn s [ Dls.Delta.Remove_worker 1 ] in
  Alcotest.(check bool) "rebuilt for the new size" true
    (s''.Dls.Scenario.sigma1 = [| 0 |])

let test_sensitivity_to_delta () =
  (* [Sensitivity.perturb] is the single-change special case of
     [Delta.apply]. *)
  let p = two_worker_platform () in
  let factor = qq 11 10 in
  List.iter
    (fun param ->
      let via_delta =
        Dls.Delta.apply_exn p [ Dls.Sensitivity.to_delta param ~factor ]
      in
      let direct = Dls.Sensitivity.perturb p param ~factor in
      Alcotest.(check string) "same platform"
        (Dls.Platform_io.to_string direct)
        (Dls.Platform_io.to_string via_delta))
    [ Dls.Sensitivity.Comm 0; Dls.Sensitivity.Comp 1 ]

let test_scenario_key_distance () =
  let p = two_worker_platform () in
  let key s = Dls.Lp_model.scenario_key Dls.Lp_model.One_port s
  and fifo pl = Dls.Scenario.fifo_exn pl [| 0; 1 |] in
  let k = key (fifo p) in
  Alcotest.(check (option int)) "self distance 0" (Some 0)
    (Dls.Lp_model.scenario_key_distance k k);
  let p1 =
    Dls.Delta.apply_exn p [ Dls.Delta.Scale_comp { worker = 0; factor = q 2 } ]
  in
  Alcotest.(check (option int)) "one nudged worker = distance 1" (Some 1)
    (Dls.Lp_model.scenario_key_distance k (key (fifo p1)));
  let p2 = Dls.Delta.apply_exn p1 [ Dls.Delta.Scale_comp { worker = 1; factor = q 2 } ] in
  Alcotest.(check (option int)) "two nudged workers = distance 2" (Some 2)
    (Dls.Lp_model.scenario_key_distance k (key (fifo p2)));
  (* different permutation: incomparable *)
  let swapped = Dls.Scenario.fifo_exn p [| 1; 0 |] in
  Alcotest.(check (option int)) "permutation differs -> incomparable" None
    (Dls.Lp_model.scenario_key_distance k (key swapped));
  (* different worker count: incomparable *)
  let p3 = Dls.Delta.apply_exn p [ Dls.Delta.Remove_worker 1 ] in
  Alcotest.(check (option int)) "size differs -> incomparable" None
    (Dls.Lp_model.scenario_key_distance k
       (key (Dls.Scenario.fifo_exn p3 [| 0 |])))

(* ------------------------------------------------------------------ *)
(* Platform and tree text formats                                      *)
(* ------------------------------------------------------------------ *)

let test_platform_io_roundtrip () =
  let p = two_worker_platform () in
  match Dls.Platform_io.of_string (Dls.Platform_io.to_string p) with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok p' ->
    Alcotest.(check int) "size" (Dls.Platform.size p) (Dls.Platform.size p');
    for i = 0 to Dls.Platform.size p - 1 do
      let a = Dls.Platform.get p i and b = Dls.Platform.get p' i in
      Alcotest.check rat "c" a.Dls.Platform.c b.Dls.Platform.c;
      Alcotest.check rat "w" a.Dls.Platform.w b.Dls.Platform.w;
      Alcotest.check rat "d" a.Dls.Platform.d b.Dls.Platform.d
    done

let test_platform_io_comments () =
  let text = "# header\n\nP1 1 2 1/2  # trailing comment\n" in
  match Dls.Platform_io.of_string text with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok p ->
    Alcotest.(check int) "one worker" 1 (Dls.Platform.size p);
    Alcotest.check rat "w" Q.two (Dls.Platform.get p 0).Dls.Platform.w

let test_platform_io_errors () =
  List.iter
    (fun text ->
      match Dls.Platform_io.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ ""; "# only comments\n"; "P1 1 2\n"; "P1 1 x 2\n"; "P1 0 1 1\n" ]

let test_tree_syntax_roundtrip () =
  let text = "(node (1 (leaf 2)) (1/2 (node 3 (2 (leaf 1)))) (2 (relay (1 (leaf 1/2)))))" in
  match Dls.Tree_syntax.of_string text with
  | Error e -> Alcotest.fail e
  | Ok tree -> (
    let printed = Dls.Tree_syntax.to_string tree in
    match Dls.Tree_syntax.of_string printed with
    | Error e -> Alcotest.fail ("reparse: " ^ e)
    | Ok tree' ->
      Alcotest.check rat "same throughput" (Dls.Tree.throughput tree)
        (Dls.Tree.throughput tree');
      Alcotest.(check int) "same size" (Dls.Tree.size tree) (Dls.Tree.size tree'))

let test_tree_syntax_comments_and_errors () =
  (match Dls.Tree_syntax.of_string "; comment\n(node (1 (leaf 2)))" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun text ->
      match Dls.Tree_syntax.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [
      "";
      "(leaf)";
      "(leaf 0)";
      "(node (1 (leaf 2)) trailing";
      "(node (0 (leaf 1)))";
      "(frob (1 (leaf 1)))";
      "(node (1 (leaf 2))) extra";
    ]

(* ------------------------------------------------------------------ *)
(* Branch-and-bound FIFO search                                        *)
(* ------------------------------------------------------------------ *)

(* Platforms with fully independent (c, w, d): outside Theorem 1's
   uniform-ratio hypothesis, where only search can certify optimality. *)
let gen_wild_platform ~min_size ~max_size =
  let open QCheck2.Gen in
  let* n = int_range min_size max_size in
  let* specs =
    list_size (return n) (triple gen_pos_rational gen_pos_rational gen_pos_rational)
  in
  return
    (Dls.Platform.make_exn
       (List.map
          (fun (c, w, d) -> Dls.Platform.worker ~c ~w ~d ())
          specs))

let prop_search_matches_brute =
  prop ~count:40 "B&B search = brute force (non-uniform z)"
    (gen_wild_platform ~min_size:2 ~max_size:4)
    (fun p ->
      let brute = Dls.Brute.best_fifo p in
      let { Dls.Search.solved = found; stats } = Dls.Search.best_fifo p in
      Q.equal brute.Dls.Lp_model.rho found.Dls.Lp_model.rho
      && stats.Dls.Search.pruned <= stats.Dls.Search.nodes
      && stats.Dls.Search.lps >= 1)

let prop_search_never_below_heuristic =
  prop ~count:40 "B&B search >= Theorem 1 heuristic order"
    (gen_wild_platform ~min_size:1 ~max_size:5)
    (fun p ->
      let heuristic = Dls.Fifo.optimal p in
      let found = (Dls.Search.best_fifo p).Dls.Search.solved in
      found.Dls.Lp_model.rho >=/ heuristic.Dls.Lp_model.rho)

let prop_search_proves_theorem1 =
  prop ~count:30 "B&B search confirms Theorem 1 on uniform-z platforms"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:5 ())
    (fun p ->
      let found = (Dls.Search.best_fifo p).Dls.Search.solved in
      Q.equal found.Dls.Lp_model.rho (Dls.Fifo.optimal p).Dls.Lp_model.rho)

let prop_search_lifo_matches_brute =
  prop ~count:30 "B&B LIFO search = brute force (non-uniform z)"
    (gen_wild_platform ~min_size:2 ~max_size:4)
    (fun p ->
      let brute = Dls.Brute.best_lifo p in
      let found = (Dls.Search.best_lifo p).Dls.Search.solved in
      Q.equal brute.Dls.Lp_model.rho found.Dls.Lp_model.rho)

let prop_search_lifo_confirms_order =
  prop ~count:25 "B&B LIFO confirms ascending-c order (z < 1)"
    QCheck2.Gen.(gen_small_z >>= fun z -> gen_platform ~z ~min_size:2 ~max_size:5 ())
    (fun p ->
      let found = (Dls.Search.best_lifo p).Dls.Search.solved in
      Q.equal found.Dls.Lp_model.rho (Dls.Lifo.optimal p).Dls.Lp_model.rho)

let test_search_two_port () =
  let p = two_worker_platform () in
  let found = (Dls.Search.best_fifo ~model:Dls.Lp_model.Two_port p).Dls.Search.solved in
  let brute = Dls.Brute.best_fifo ~model:Dls.Lp_model.Two_port p in
  Alcotest.check rat "two-port agrees" brute.Dls.Lp_model.rho found.Dls.Lp_model.rho

(* ------------------------------------------------------------------ *)
(* Multi-round extension                                               *)
(* ------------------------------------------------------------------ *)

let multiround_rho = function
  | Dls.Multiround.Solved s -> s.Dls.Multiround.rho
  | Dls.Multiround.Too_slow -> Alcotest.fail "unexpectedly Too_slow"

let test_multiround_one_round_equals_scenario_lp () =
  let p = two_worker_platform () in
  let order = [| 0; 1 |] in
  let single =
    multiround_rho
      (Dls.Multiround.solve p (Dls.Multiround.config ~rounds:1 order))
  in
  Alcotest.check rat "R=1 = paper LP" (qq 6 11) single

let test_multiround_no_returns_one_round () =
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 1) (0, 1); worker (1, 1) (1, 1) (0, 1) ]
  in
  let rho =
    multiround_rho
      (Dls.Multiround.solve p
         (Dls.Multiround.config ~with_returns:false ~rounds:1 [| 0; 1 |]))
  in
  Alcotest.check rat "matches closed form" (qq 3 4) rho

let test_multiround_too_slow () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2) ] in
  match
    Dls.Multiround.solve p
      (Dls.Multiround.config ~send_latency:(q 1) ~rounds:2 [| 0 |])
  with
  | Dls.Multiround.Too_slow -> ()
  | Dls.Multiround.Solved _ -> Alcotest.fail "two send latencies exceed T"

let test_multiround_validation () =
  (try
     ignore (Dls.Multiround.config ~rounds:0 [| 0 |]);
     Alcotest.fail "rounds = 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Dls.Multiround.config ~rounds:1 [||]);
    Alcotest.fail "empty order accepted"
  with Invalid_argument _ -> ()

let prop_multiround_one_round_matches_lp =
  prop ~count:40 "multiround R=1 = scenario LP (any platform)"
    (gen_platform ~min_size:1 ~max_size:5 ())
    (fun p ->
      let order = Dls.Fifo.order p in
      let lp = Dls.Fifo.solve_order p order in
      let mr =
        multiround_rho (Dls.Multiround.solve p (Dls.Multiround.config ~rounds:1 order))
      in
      Q.equal lp.Dls.Lp_model.rho mr)

let prop_multiround_monotone_in_rounds =
  prop ~count:25 "linear model: more rounds never hurt"
    (QCheck2.Gen.pair
       (gen_platform ~min_size:1 ~max_size:3 ())
       (QCheck2.Gen.int_range 1 3))
    (fun (p, r) ->
      let order = Dls.Fifo.order p in
      let rho rounds =
        multiround_rho (Dls.Multiround.solve p (Dls.Multiround.config ~rounds order))
      in
      rho (r + 1) >=/ rho r)

let prop_multiround_totals_consistent =
  prop ~count:25 "chunk totals equal per-worker loads"
    (gen_platform ~min_size:1 ~max_size:4 ())
    (fun p ->
      let order = Dls.Fifo.order p in
      match Dls.Multiround.solve p (Dls.Multiround.config ~rounds:3 order) with
      | Dls.Multiround.Too_slow -> false
      | Dls.Multiround.Solved s ->
        Q.equal (Q.sum_array s.Dls.Multiround.alpha) s.Dls.Multiround.rho
        && Array.for_all
             (fun per_round -> Array.for_all (fun a -> Q.sign a >= 0) per_round)
             s.Dls.Multiround.chunks)

let test_multiround_latency_finite_optimum () =
  (* With per-message latencies the best round count is finite: the
     throughput first rises with pipelining, then falls as latencies
     accumulate. *)
  let p =
    Dls.Platform.make_exn
      [ worker (1, 4) (2, 1) (1, 8); worker (1, 4) (2, 1) (1, 8) ]
  in
  let sweep =
    Dls.Multiround.sweep_rounds p ~send_latency:(qq 1 25) ~return_latency:(qq 1 25)
      ~order:[| 0; 1 |] ~max_rounds:8 ()
  in
  let rhos = List.map (fun r -> r.Dls.Multiround.throughput) sweep in
  let best = List.fold_left Q.max Q.zero rhos in
  let last = List.nth rhos (List.length rhos - 1) in
  let first = List.hd rhos in
  Alcotest.(check bool) "pipelining helps at first" true (Q.compare best first > 0);
  Alcotest.(check bool) "latencies eventually dominate" true
    (Q.compare last best < 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dls"
    [
      ( "platform",
        [
          Alcotest.test_case "validation" `Quick test_platform_validation;
          Alcotest.test_case "z ratio" `Quick test_platform_z_ratio;
          Alcotest.test_case "is_bus" `Quick test_platform_is_bus;
          Alcotest.test_case "scaling" `Quick test_platform_scaling;
          Alcotest.test_case "stable sort" `Quick test_platform_sorted_stable;
          Alcotest.test_case "restrict" `Quick test_platform_restrict;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "kinds" `Quick test_scenario_kinds;
        ] );
      ( "lp_model",
        [
          Alcotest.test_case "single worker" `Quick test_lp_single_worker;
          Alcotest.test_case "two workers FIFO" `Quick test_lp_two_workers_fifo;
          Alcotest.test_case "two workers LIFO" `Quick test_lp_two_workers_lifo;
          Alcotest.test_case "two-port relaxation" `Quick test_lp_two_port_relaxation;
          Alcotest.test_case "time for load" `Quick test_lp_time_for_load;
          Alcotest.test_case "enrolled subset" `Quick test_lp_enrolled_subset;
          prop_estimate_rho_accurate;
          prop_constraint_report_lemma1;
          Alcotest.test_case "constraint report" `Quick test_constraint_report_shape;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "order z<1" `Quick test_fifo_order_small_z;
          Alcotest.test_case "order z>1" `Quick test_fifo_order_big_z;
          Alcotest.test_case "resource selection" `Quick test_fifo_drops_slow_worker;
          prop_theorem1_small_z;
          prop_theorem1_big_z;
          prop_mirror_agrees;
          prop_monotone_in_workers;
          prop_idle_structure;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "single worker" `Quick test_closed_form_single;
          Alcotest.test_case "saturated port" `Quick test_closed_form_saturated;
          prop_theorem2_matches_lp;
          prop_theorem2_two_port;
          prop_theorem2_order_invariant;
        ] );
      ("lifo", [ prop_lifo_order_optimal; prop_lifo_oneport_equals_twoport ]);
      ( "heuristics",
        [
          prop_inc_c_beats_inc_w;
          prop_general_at_least_fifo_lifo;
          Alcotest.test_case "permutations" `Quick test_permutations_count;
          Alcotest.test_case "permutations_seq agrees" `Quick
            test_permutations_seq_agrees;
        ] );
      ( "schedule",
        [
          prop_schedule_valid;
          prop_schedule_scaling;
          Alcotest.test_case "mirror roundtrip" `Quick test_schedule_mirror_roundtrip;
        ] );
      ( "rounding",
        [
          Alcotest.test_case "paper example" `Quick test_rounding_paper_example;
          Alcotest.test_case "zero total" `Quick test_rounding_zero_total;
          Alcotest.test_case "all on one worker" `Quick
            test_rounding_all_on_one_worker;
          Alcotest.test_case "leftovers cycle in order" `Quick
            test_rounding_leftovers_cycle_in_order;
          Alcotest.test_case "leftover guard boundary" `Quick
            test_rounding_guard_when_leftovers_exceed_entries;
          Alcotest.test_case "rejects bad input" `Quick
            test_rounding_rejects_bad_input;
          prop_rounding_conserves;
          prop_rounding_respects_selection;
        ] );
      ( "no_return",
        [
          Alcotest.test_case "single worker" `Quick test_no_return_single;
          Alcotest.test_case "recursion" `Quick test_no_return_recursion;
          prop_no_return_matches_lp;
          prop_no_return_bandwidth_order_optimal;
          prop_no_return_all_participate;
          prop_returns_only_hurt;
        ] );
      ( "bounds",
        [
          prop_bounds_sandwich_optimum;
          prop_bounds_general_upper;
          Alcotest.test_case "single worker tight" `Quick
            test_bounds_single_worker_tight;
        ] );
      ( "api",
        [
          Alcotest.test_case "heuristic names" `Quick test_heuristics_names;
          Alcotest.test_case "idle times" `Quick test_schedule_idle_times;
          Alcotest.test_case "scale validation" `Quick test_schedule_scale_validation;
          Alcotest.test_case "mirror rejects d=0" `Quick
            test_schedule_mirror_rejects_no_return;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
          Alcotest.test_case "z=1 order" `Quick test_fifo_order_z_equal_one;
        ] );
      ( "sensitivity",
        [
          prop_slowing_never_helps;
          prop_speeding_never_hurts;
          Alcotest.test_case "dropped worker flat" `Quick
            test_sensitivity_dropped_worker_is_flat;
          Alcotest.test_case "table shape" `Quick test_sensitivity_table_shape;
          Alcotest.test_case "validation" `Quick test_sensitivity_perturb_validation;
          Alcotest.test_case "z preserved" `Quick test_sensitivity_preserves_z;
        ] );
      ( "delta",
        [
          Alcotest.test_case "apply" `Quick test_delta_apply;
          Alcotest.test_case "apply rejects" `Quick test_delta_apply_rejects;
          Alcotest.test_case "spec round-trip" `Quick test_delta_spec_roundtrip;
          Alcotest.test_case "spec positioned errors" `Quick
            test_delta_spec_errors;
          Alcotest.test_case "scenario keeps order" `Quick
            test_delta_scenario_keeps_order;
          Alcotest.test_case "sensitivity is the special case" `Quick
            test_sensitivity_to_delta;
          Alcotest.test_case "scenario key distance" `Quick
            test_scenario_key_distance;
        ] );
      ( "formats",
        [
          Alcotest.test_case "platform roundtrip" `Quick test_platform_io_roundtrip;
          Alcotest.test_case "platform comments" `Quick test_platform_io_comments;
          Alcotest.test_case "platform errors" `Quick test_platform_io_errors;
          Alcotest.test_case "tree roundtrip" `Quick test_tree_syntax_roundtrip;
          Alcotest.test_case "tree errors" `Quick test_tree_syntax_comments_and_errors;
        ] );
      ( "tree",
        [
          Alcotest.test_case "flat = star" `Quick test_tree_flat_equals_star;
          Alcotest.test_case "single chain" `Quick test_tree_single_chain;
          Alcotest.test_case "relay chain" `Quick test_tree_relay_chain;
          Alcotest.test_case "computing internal" `Quick
            test_tree_computing_internal_node;
          Alcotest.test_case "leaf equivalent" `Quick test_tree_equivalent_leaf;
          Alcotest.test_case "constructors" `Quick test_tree_constructors;
          Alcotest.test_case "leaf master rejected" `Quick (fun () ->
              try
                ignore (Dls.Tree.throughput (Dls.Tree.leaf Q.one));
                Alcotest.fail "leaf root accepted"
              with Invalid_argument _ -> ());
          prop_tree_validates;
          prop_tree_load_conservation;
          prop_tree_extra_leaf_helps;
          prop_tree_relay_costs;
        ] );
      ( "search",
        [
          prop_search_matches_brute;
          prop_search_never_below_heuristic;
          prop_search_proves_theorem1;
          prop_search_lifo_matches_brute;
          prop_search_lifo_confirms_order;
          Alcotest.test_case "two-port model" `Quick test_search_two_port;
        ] );
      ( "multiround",
        [
          Alcotest.test_case "R=1 equals paper LP" `Quick
            test_multiround_one_round_equals_scenario_lp;
          Alcotest.test_case "R=1 no returns" `Quick test_multiround_no_returns_one_round;
          Alcotest.test_case "too slow" `Quick test_multiround_too_slow;
          Alcotest.test_case "validation" `Quick test_multiround_validation;
          Alcotest.test_case "finite optimum with latency" `Quick
            test_multiround_latency_finite_optimum;
          prop_multiround_one_round_matches_lp;
          prop_multiround_monotone_in_rounds;
          prop_multiround_totals_consistent;
        ] );
      ( "affine",
        [
          Alcotest.test_case "zero latency = linear" `Quick
            test_affine_zero_latency_matches_linear;
          Alcotest.test_case "too slow" `Quick test_affine_too_slow;
          Alcotest.test_case "latency forces selection" `Quick
            test_affine_latency_forces_selection;
          prop_affine_zero_latency_best;
          prop_affine_latency_monotone;
          prop_affine_general_at_least_fifo;
        ] );
    ]
