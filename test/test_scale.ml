(* Horizontal scale-out: the consistent-hash ring (balance, minimal
   remap, cross-process determinism via pinned hashes), the tier-2
   shared solution store, journal compaction, the open-loop Poisson
   load generator, and the front router end to end — bit-identity
   through the router, shard affinity, failover past a dead shard and
   the merged control plane.  Servers and routers bind throwaway Unix
   sockets under the temp dir; everything runs in-process. *)

module Q = Numeric.Rational
module P = Service.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let q = Q.of_string

let platform specs =
  Dls.Platform.make_exn
    (List.mapi
       (fun i (c, w, d) ->
         Dls.Platform.worker
           ~name:(Printf.sprintf "P%d" (i + 1))
           ~c:(q c) ~w:(q w) ~d:(q d) ())
       specs)

let p2 () = platform [ ("1", "1", "1/2"); ("1", "2", "1/2") ]
let p3 () = platform [ ("1/2", "1", "1/4"); ("1", "2", "1/2"); ("2", "3", "1") ]

let tmp_socket () =
  let path = Filename.temp_file "dls-scale" ".sock" in
  Sys.remove path;
  path

let tmp_file suffix = Filename.temp_file "dls-scale" suffix

let server_cfg ?(jobs = 2) ?journal ?journal_max_bytes ?store path =
  {
    (Service.Server.default_config (Service.Server.Unix_socket path)) with
    Service.Server.jobs;
    journal;
    journal_max_bytes;
    store;
  }

let start_server_exn cfg =
  match Service.Server.start cfg with
  | Ok s -> s
  | Error e -> Alcotest.failf "server start: %s" (Dls.Errors.to_string e)

let start_router_exn cfg =
  match Service.Router.start cfg with
  | Ok r -> r
  | Error e -> Alcotest.failf "router start: %s" (Dls.Errors.to_string e)

(* One request over a throwaway connection; fails the test on any
   transport or protocol error. *)
let request_via address req =
  match
    Service.Client.with_client address (fun cl -> Service.Client.request cl req)
  with
  | Ok (Ok resp) -> resp
  | Ok (Error e) | Error e ->
    Alcotest.failf "request: %s" (Dls.Errors.to_string e)

let raw_via address line =
  match
    Service.Client.with_client address (fun cl ->
        Service.Client.request_raw cl line)
  with
  | Ok (Ok resp) -> resp
  | Ok (Error e) | Error e -> Alcotest.failf "raw: %s" (Dls.Errors.to_string e)

let solve_req p =
  P.Solve
    {
      P.s_platform = p;
      s_order = P.Fifo;
      s_model = Dls.Lp_model.One_port;
      s_fast = false;
      s_load = None;
    }

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let keys_1k () = Array.init 1000 (fun i -> Printf.sprintf "key-%d" i)

(* Every shard within 20% of the even share across 1000 keys, at the
   router's default point count. *)
let test_ring_balance () =
  List.iter
    (fun n_shards ->
      let names =
        Array.init n_shards (fun i -> Printf.sprintf "shard-%d" i)
      in
      let ring = Service.Ring.create ~vnodes:128 names in
      let counts = Array.make n_shards 0 in
      Array.iter
        (fun k ->
          let s = Service.Ring.lookup ring k in
          counts.(s) <- counts.(s) + 1)
        (keys_1k ());
      let mean = 1000. /. float_of_int n_shards in
      Array.iteri
        (fun i c ->
          let dev = Float.abs (float_of_int c -. mean) /. mean in
          if dev > 0.20 then
            Alcotest.failf "shard %d of %d owns %d keys (%.0f%% off even)" i
              n_shards c (100. *. dev))
        counts)
    [ 2; 3; 4; 8 ]

(* Removing a shard moves exactly the keys it owned — every other key
   keeps its shard — and the moved fraction is about 1/N. *)
let test_ring_minimal_remap () =
  let names = Array.init 4 (fun i -> Printf.sprintf "shard-%d" i) in
  let ring = Service.Ring.create ~vnodes:128 names in
  let ring' = Service.Ring.remove ring 2 in
  let moved = ref 0 in
  Array.iter
    (fun k ->
      let before = Service.Ring.lookup ring k in
      let after = Service.Ring.lookup ring' k in
      if before = 2 then begin
        incr moved;
        check ("moved key leaves removed shard: " ^ k) true (after <> 2)
      end
      else check_int ("unmoved key keeps its shard: " ^ k) before after)
    (keys_1k ());
  check "some keys moved" true (!moved > 0);
  (* 1/N = 250 of 1000; allow the arc-length slack the balance test
     allows. *)
  check "remap is minimal (<= 1/N + slack)" true (!moved <= 300);
  (* Failover order: the second entry of [route] is the owner after
     removal — retrying down the route list follows the remap. *)
  Array.iter
    (fun k ->
      if Service.Ring.lookup ring k = 2 then
        match Service.Ring.route ring k with
        | owner :: next :: _ ->
          check_int ("route head is the owner: " ^ k) 2 owner;
          check_int
            ("route successor is the post-removal owner: " ^ k)
            (Service.Ring.lookup ring' k)
            next
        | _ -> Alcotest.fail "route shorter than 2 on a 4-shard ring")
    (keys_1k ())

(* The placement must be a pure function of the byte strings: pinned
   hash constants (computed independently) and pinned lookups prove
   any process, today or later, places keys identically. *)
let test_ring_determinism () =
  let golden =
    [
      ("", 0xf52a15e9a9b5e89bL);
      ("a", 0x02c0bdbf481420f8L);
      ("solve", 0x4b65c556b6ce48deL);
      ("shard-0#0", 0xf921b31cc0d686a3L);
    ]
  in
  List.iter
    (fun (s, h) ->
      Alcotest.(check int64) (Printf.sprintf "hash %S" s) h
        (Service.Ring.hash s))
    golden;
  let ring = Service.Ring.create ~vnodes:128 [| "shard-0"; "shard-1" |] in
  let pinned = [ 0; 0; 0; 1; 0; 0; 1; 0 ] in
  List.iteri
    (fun i expect ->
      check_int
        (Printf.sprintf "pinned lookup key-%d" i)
        expect
        (Service.Ring.lookup ring (Printf.sprintf "key-%d" i)))
    pinned;
  (* Route: starts at the owner, visits every shard exactly once. *)
  let ring4 =
    Service.Ring.create ~vnodes:128
      (Array.init 4 (fun i -> Printf.sprintf "shard-%d" i))
  in
  Array.iter
    (fun k ->
      let r = Service.Ring.route ring4 k in
      check_int ("route covers the ring: " ^ k) 4 (List.length r);
      check_int ("route head is lookup: " ^ k)
        (Service.Ring.lookup ring4 k)
        (List.hd r);
      check ("route is distinct: " ^ k) true
        (List.length (List.sort_uniq compare r) = 4))
    (Array.sub (keys_1k ()) 0 50)

let test_ring_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Service.Ring.create ~vnodes:0 [| "a" |]);
  raises (fun () -> Service.Ring.create ~vnodes:8 [||]);
  let ring = Service.Ring.create ~vnodes:8 [| "a"; "b" |] in
  raises (fun () -> Service.Ring.remove ring 5);
  let solo = Service.Ring.remove ring 0 in
  (* the survivor keeps its original index *)
  check_int "survivor keeps its index" 1 (Service.Ring.lookup solo "x");
  raises (fun () -> Service.Ring.remove solo 1)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let open_store_exn path =
  match Service.Store.open_ path with
  | Ok s -> s
  | Error e -> Alcotest.failf "store open: %s" (Dls.Errors.to_string e)

let add_exn store ~key ~value =
  match Service.Store.add store ~key ~value with
  | Ok () -> ()
  | Error e -> Alcotest.failf "store add: %s" (Dls.Errors.to_string e)

let test_store_roundtrip () =
  let path = tmp_file ".store" in
  let s = open_store_exn path in
  add_exn s ~key:"k1" ~value:"v1";
  add_exn s ~key:"k2" ~value:"v2 with spaces";
  check "mem k1" true (Service.Store.mem s "k1");
  check_int "length" 2 (Service.Store.length s);
  check "find k1" true (Service.Store.find s "k1" = Some "v1");
  check "find k2" true (Service.Store.find s "k2" = Some "v2 with spaces");
  check "find missing" true (Service.Store.find s "nope" = None);
  (* re-adding an indexed key is a no-op, not a duplicate record *)
  let size = Service.Store.size_bytes s in
  add_exn s ~key:"k1" ~value:"other";
  check_int "no duplicate append" size (Service.Store.size_bytes s);
  let st = Service.Store.stats s in
  check_int "hits" 2 st.Service.Store.hits;
  check_int "misses" 1 st.Service.Store.misses;
  check_int "appended" 2 st.Service.Store.appended;
  Service.Store.close s;
  (* persistence across a reopen *)
  let s2 = open_store_exn path in
  check "persisted k2" true
    (Service.Store.find s2 "k2" = Some "v2 with spaces");
  Service.Store.close s2;
  Sys.remove path

(* Two handles on one file: a record added through one is visible
   through the other (the cross-shard sharing contract). *)
let test_store_cross_handle () =
  let path = tmp_file ".store" in
  let a = open_store_exn path in
  let b = open_store_exn path in
  add_exn a ~key:"from-a" ~value:"1";
  check "b sees a's append" true (Service.Store.find b "from-a" = Some "1");
  add_exn b ~key:"from-b" ~value:"2";
  check "a sees b's append" true (Service.Store.find a "from-b" = Some "2");
  (* compaction through b swaps the inode; a must follow it *)
  (match Service.Store.compact b () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "compact: %s" (Dls.Errors.to_string e));
  check "a survives b's compaction" true
    (Service.Store.find a "from-a" = Some "1");
  Service.Store.close a;
  Service.Store.close b;
  Sys.remove path

let test_store_compact () =
  let path = tmp_file ".store" in
  let s = open_store_exn path in
  for i = 1 to 5 do
    add_exn s
      ~key:(Printf.sprintf "k%d" i)
      ~value:(String.make 64 (Char.chr (Char.code '0' + i)))
  done;
  let before = Service.Store.size_bytes s in
  let live k = k = "k2" || k = "k4" in
  (match Service.Store.compact s ~live () with
  | Ok (b, a) ->
    check_int "reported before" before b;
    check "compaction shrinks" true (a < b)
  | Error e -> Alcotest.failf "compact: %s" (Dls.Errors.to_string e));
  check "kept key survives" true (Service.Store.find s "k2" <> None);
  check "dropped key is gone" true (Service.Store.find s "k1" = None);
  Service.Store.close s;
  let s2 = open_store_exn path in
  check_int "fresh handle sees only survivors" 2 (Service.Store.length s2);
  check "survivor value intact" true
    (Service.Store.find s2 "k4" = Some (String.make 64 '4'));
  Service.Store.close s2;
  Sys.remove path

(* A torn append (crash mid-write by some shard) must cost only the
   torn record. *)
let test_store_torn_tail () =
  let path = tmp_file ".store" in
  let s = open_store_exn path in
  add_exn s ~key:"good" ~value:"value";
  Service.Store.close s;
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "rec deadbeef 4 9\npar";
  close_out oc;
  let s2 = open_store_exn path in
  check "valid prefix served" true (Service.Store.find s2 "good" = Some "value");
  check_int "torn record not indexed" 1 (Service.Store.length s2);
  (* appending after the torn tail still works, and the new record is
     readable through a fresh handle *)
  add_exn s2 ~key:"after" ~value:"tear";
  Service.Store.close s2;
  let s3 = open_store_exn path in
  check "append after tear readable" true
    (Service.Store.find s3 "after" = Some "tear");
  Service.Store.close s3;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Journal compaction                                                  *)
(* ------------------------------------------------------------------ *)

let test_journal_compact () =
  let path = tmp_file ".journal" in
  let j =
    match Service.Journal.open_ path with
    | Ok (j, []) -> j
    | Ok _ -> Alcotest.fail "fresh journal not empty"
    | Error e -> Alcotest.failf "journal open: %s" (Dls.Errors.to_string e)
  in
  let append k v =
    match Service.Journal.append j ~key:k ~value:v with
    | Ok () -> ()
    | Error e -> Alcotest.failf "append: %s" (Dls.Errors.to_string e)
  in
  append "k1" "old";
  append "k2" "gone";
  append "k3" "kept";
  append "k1" "new";
  let before = Service.Journal.size_bytes j in
  (match
     Service.Journal.compact j ~live:(fun k -> k = "k1" || k = "k3")
   with
  | Ok (b, a) ->
    check_int "before bytes" before b;
    check "compaction shrinks" true (a < b);
    check_int "size_bytes agrees" a (Service.Journal.size_bytes j)
  | Error e -> Alcotest.failf "compact: %s" (Dls.Errors.to_string e));
  check_int "compactions counted" 1 (Service.Journal.compactions j);
  (* the journal stays appendable after the fd swap *)
  append "k4" "post";
  Service.Journal.close j;
  match Service.Journal.open_ path with
  | Ok (j2, replay) ->
    Service.Journal.close j2;
    (* latest record per live key, in last-append order, then the
       post-compaction append *)
    Alcotest.(check (list (pair string string)))
      "replay after compaction"
      [ ("k3", "kept"); ("k1", "new"); ("k4", "post") ]
      replay
  | Error e -> Alcotest.failf "reopen: %s" (Dls.Errors.to_string e)

(* End to end: a bounded journal compacts itself while serving, and
   the count lands in the wire stats. *)
let test_server_journal_budget () =
  let jpath = tmp_file ".journal" in
  let server =
    start_server_exn
      (server_cfg ~journal:jpath ~journal_max_bytes:128 (tmp_socket ()))
  in
  let address = Service.Server.address server in
  (* several distinct solves: every fresh response is appended, and
     each append beyond 128 bytes triggers a compaction pass *)
  List.iter
    (fun p -> ignore (request_via address (solve_req p)))
    [ p2 (); p3 () ];
  let stats = Service.Server.stats server in
  Service.Server.stop server;
  check "compactions surfaced in stats" true
    (stats.P.compactions >= 1);
  check "journal survives compaction" true (Sys.file_exists jpath);
  Sys.remove jpath

(* ------------------------------------------------------------------ *)
(* Server + tier-2 store                                               *)
(* ------------------------------------------------------------------ *)

(* A solution computed by one daemon is an admission-time answer for a
   different daemon sharing the store — across a restart, with a cold
   tier-1. *)
let test_server_store_tier2 () =
  let spath = tmp_file ".store" in
  Dls.Lp_model.reset_cache ();
  let a = start_server_exn (server_cfg ~store:spath (tmp_socket ())) in
  let req = solve_req (p2 ()) in
  let first = P.response_to_string (request_via (Service.Server.address a) req) in
  let sa = Service.Server.stats a in
  Service.Server.stop a;
  check_int "fresh solve missed the store" 1 sa.P.store_misses;
  check_int "no store hit on first sight" 0 sa.P.store_hits;
  (* a different daemon, empty tier-1, same store *)
  Dls.Lp_model.reset_cache ();
  let b = start_server_exn (server_cfg ~store:spath (tmp_socket ())) in
  let again = P.response_to_string (request_via (Service.Server.address b) req) in
  check_str "tier-2 answer bit-identical" first again;
  (* the hit was promoted to tier 1: a repeat is a warm hit *)
  let third = P.response_to_string (request_via (Service.Server.address b) req) in
  check_str "tier-1 promoted answer bit-identical" first third;
  let sb = Service.Server.stats b in
  Service.Server.stop b;
  check_int "restarted shard hit the store" 1 sb.P.store_hits;
  check "promotion made the repeat a warm hit" true (sb.P.warm_hits >= 1);
  Sys.remove spath

(* ------------------------------------------------------------------ *)
(* Open-loop load generator                                            *)
(* ------------------------------------------------------------------ *)

let test_arrivals () =
  let a = Service.Loadgen.arrivals ~seed:7 ~rps:100. 500 in
  let b = Service.Loadgen.arrivals ~seed:7 ~rps:100. 500 in
  check "deterministic" true (a = b);
  let c = Service.Loadgen.arrivals ~seed:8 ~rps:100. 500 in
  check "seed matters" true (a <> c);
  check_int "length" 500 (Array.length a);
  Array.iteri
    (fun i t ->
      check ("positive arrival " ^ string_of_int i) true (t > 0.);
      if i > 0 then
        check ("monotone " ^ string_of_int i) true (t >= a.(i - 1)))
    a;
  (* realised rate of the draw is within a factor of the target *)
  let offered = 500. /. a.(499) in
  check "offered near target" true (offered > 50. && offered < 200.);
  (* a prefix of the schedule is the schedule of a shorter run: the
     per-request gaps depend only on (seed, i) *)
  let short = Service.Loadgen.arrivals ~seed:7 ~rps:100. 100 in
  check "prefix property" true (short = Array.sub a 0 100);
  match Service.Loadgen.arrivals ~seed:1 ~rps:0. 10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rps = 0 must be rejected"

(* The request multiset and the schedule are invariant under the
   process count — only the interleaving changes. *)
let test_run_open_invariance () =
  let server = start_server_exn (server_cfg (tmp_socket ())) in
  let address = Service.Server.address server in
  let run processes =
    match
      Service.Loadgen.run_open address ~processes ~requests:60 ~rps:600.
        ~seed:5 ~distinct:4 ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "run_open: %s" (Dls.Errors.to_string e)
  in
  let one = run 1 in
  let four = run 4 in
  Service.Server.stop server;
  check_int "ok invariant" one.Service.Loadgen.closed.Service.Loadgen.ok
    four.Service.Loadgen.closed.Service.Loadgen.ok;
  check_int "everything answered" 60
    one.Service.Loadgen.closed.Service.Loadgen.ok;
  check "offered rate is schedule-determined" true
    (one.Service.Loadgen.offered_rps = four.Service.Loadgen.offered_rps);
  check_int "processes reported" 4 four.Service.Loadgen.processes;
  check "lag is measured" true (four.Service.Loadgen.max_lag_ms >= 0.)

let test_run_open_accounting () =
  let server = start_server_exn (server_cfg (tmp_socket ())) in
  let address = Service.Server.address server in
  let o =
    match
      Service.Loadgen.run_open address ~processes:2 ~requests:80 ~rps:400.
        ~seed:11 ~distinct:5 ()
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "run_open: %s" (Dls.Errors.to_string e)
  in
  Service.Server.stop server;
  check "target recorded" true (o.Service.Loadgen.target_rps = 400.);
  check "offered is one Poisson draw of the target" true
    (o.Service.Loadgen.offered_rps > 200.
    && o.Service.Loadgen.offered_rps < 800.);
  let closed = o.Service.Loadgen.closed in
  check_int "sent" 80 closed.Service.Loadgen.sent;
  check_int "ok" 80 closed.Service.Loadgen.ok;
  (* an open loop cannot finish before its own schedule *)
  check "wall at least the schedule span" true
    (closed.Service.Loadgen.wall_s
    >= 80. /. o.Service.Loadgen.offered_rps -. 0.5)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let with_fleet ?(shards = 2) f =
  let servers =
    List.init shards (fun _ -> start_server_exn (server_cfg (tmp_socket ())))
  in
  let cfg =
    Service.Router.default_config
      (Service.Server.Unix_socket (tmp_socket ()))
      ~shard_addresses:(List.map Service.Server.address servers)
  in
  let router = start_router_exn cfg in
  Fun.protect
    ~finally:(fun () ->
      Service.Router.stop router;
      List.iter Service.Server.stop servers)
    (fun () -> f router servers)

(* Responses through the router are byte-identical to a plain daemon's
   (which test_service pins against the direct exact solve). *)
let test_router_bit_identity () =
  let reference = start_server_exn (server_cfg (tmp_socket ())) in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop reference)
    (fun () ->
      with_fleet (fun router _ ->
          List.iter
            (fun p ->
              let req = solve_req p in
              let direct =
                P.response_to_string
                  (request_via (Service.Server.address reference) req)
              in
              let routed =
                P.response_to_string
                  (request_via (Service.Router.address router) req)
              in
              check_str "routed = direct" direct routed)
            [ p2 (); p3 () ]))

(* Equal requests land on one shard, and that shard is the ring
   owner. *)
let test_router_affinity () =
  with_fleet (fun router servers ->
      let req = solve_req (p2 ()) in
      let owner = Service.Router.shard_of_key router (P.request_key req) in
      for _ = 1 to 3 do
        ignore (request_via (Service.Router.address router) req)
      done;
      let s = Service.Router.stats router in
      check_int "all three on the owner" 3
        s.Service.Router.r_routed.(owner);
      check_int "nothing elsewhere" 3
        (Array.fold_left ( + ) 0 s.Service.Router.r_routed);
      check_int "no failovers" 0 s.Service.Router.r_failovers;
      (* the owning daemon collapsed the repeats into its cache *)
      let owner_stats = Service.Server.stats (List.nth servers owner) in
      check_int "owner served every copy" 3 owner_stats.P.served)

(* Killing the owning shard must degrade capacity, not availability:
   the request fails over to the ring successor and still answers
   bit-identically. *)
let test_router_failover () =
  with_fleet (fun router servers ->
      let req = solve_req (p3 ()) in
      let expected =
        P.response_to_string (request_via (Service.Router.address router) req)
      in
      let owner = Service.Router.shard_of_key router (P.request_key req) in
      Service.Server.stop (List.nth servers owner);
      let after =
        P.response_to_string (request_via (Service.Router.address router) req)
      in
      check_str "failover answer bit-identical" expected after;
      let s = Service.Router.stats router in
      check "failover counted" true (s.Service.Router.r_failovers >= 1);
      check_int "nothing unavailable" 0 s.Service.Router.r_unavailable)

(* The control plane speaks for the whole fleet: stats fan out and
   merge, hello is answered locally, malformed lines never reach a
   shard. *)
let test_router_control_plane () =
  with_fleet (fun router servers ->
      ignore (request_via (Service.Router.address router) (solve_req (p2 ())));
      ignore (request_via (Service.Router.address router) (solve_req (p3 ())));
      let merged =
        match request_via (Service.Router.address router) P.Stats with
        | P.Ok_stats s -> s
        | other ->
          Alcotest.failf "expected stats, got %s" (P.response_to_string other)
      in
      let direct_sum =
        List.fold_left
          (fun acc srv -> acc + (Service.Server.stats srv).P.served)
          0 servers
      in
      check_int "merged served = sum over shards" direct_sum merged.P.served;
      (match request_via (Service.Router.address router) P.Health with
      | P.Ok_health h -> check "fleet healthy" true h.P.healthy
      | other ->
        Alcotest.failf "expected health, got %s" (P.response_to_string other));
      (match raw_via (Service.Router.address router) "hello" with
      | P.Ok_hello _ -> ()
      | other ->
        Alcotest.failf "expected hello, got %s" (P.response_to_string other));
      (match raw_via (Service.Router.address router) "no-such-verb x" with
      | P.Unsupported _ -> ()
      | other ->
        Alcotest.failf "expected unsupported, got %s"
          (P.response_to_string other));
      (match raw_via (Service.Router.address router) "solve garbage" with
      | P.Failed _ -> ()
      | other ->
        Alcotest.failf "expected failure, got %s"
          (P.response_to_string other));
      let s = Service.Router.stats router in
      check "hello/malformed answered locally" true
        (s.Service.Router.r_local >= 2);
      check "fanouts counted" true (s.Service.Router.r_fanouts >= 2))

(* ------------------------------------------------------------------ *)
(* Wire format: JSON stats, merge, back compatibility                  *)
(* ------------------------------------------------------------------ *)

let sample_stats () =
  {
    P.accepted = 10;
    served = 7;
    rejected = 2;
    timed_out = 1;
    failed = 2;
    malformed = 1;
    batches = 4;
    max_batch = 5;
    collapsed = 3;
    cache_hits = 6;
    cache_misses = 4;
    repair_probes = 3;
    repair_wins = 2;
    repair_pivots = 5;
    dispatchers = 4;
    steals = 6;
    shed = 2;
    brownouts = 1;
    hangups = 3;
    warm_hits = 5;
    journal_appended = 9;
    journal_replayed = 4;
    store_hits = 6;
    store_misses = 3;
    store_demoted = 2;
    compactions = 1;
    queue_depth = 0;
    inflight = 0;
    p50_us = 256;
    p90_us = 1024;
    p99_us = 2048;
    max_us = 1843;
    uptime_s = 12.5;
  }

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || go (i + 1)
  in
  go 0

(* The JSON rendering carries exactly the line format's fields. *)
let test_stats_json () =
  let json = P.stats_to_json (sample_stats ()) in
  List.iter
    (fun fragment -> check ("json has " ^ fragment) true (contains json fragment))
    [
      "\"served\":7";
      "\"store_hits\":6";
      "\"store_misses\":3";
      "\"store_demoted\":2";
      "\"compactions\":1";
      "\"p99_us\":2048";
      "\"uptime_s\":12.5";
    ]

let test_merge_stats () =
  let a = sample_stats () in
  let b = { a with P.served = 100; p99_us = 9999; uptime_s = 3.; max_batch = 2 } in
  let m = P.merge_stats a [ b ] in
  check_int "served sums" 107 m.P.served;
  check_int "accepted sums" 20 m.P.accepted;
  check_int "store_hits sums" 12 m.P.store_hits;
  check_int "compactions sums" 2 m.P.compactions;
  check_int "p99 is the worst" 9999 m.P.p99_us;
  check_int "max_batch is the max" 5 m.P.max_batch;
  check "uptime is the eldest" true (m.P.uptime_s = 12.5);
  check_int "dispatchers sum across the fleet" 8 m.P.dispatchers;
  (* merging nothing is the identity *)
  check "identity" true (P.merge_stats a [] = a)

(* A PR-9-era stats line (no store/compaction fields) must still
   parse, with the new counters defaulting to zero. *)
let test_stats_backcompat () =
  let rendered = P.response_to_string (P.Ok_stats (sample_stats ())) in
  (match P.parse_response rendered with
  | Ok (P.Ok_stats s) -> check "round trip" true (s = sample_stats ())
  | Ok other ->
    Alcotest.failf "expected stats, got %s" (P.response_to_string other)
  | Error e -> Alcotest.failf "parse: %s" (Dls.Errors.to_string e));
  let old_line =
    "ok stats accepted=10 served=7 rejected=2 timed_out=1 failed=2 \
     malformed=1 batches=4 max_batch=5 collapsed=3 cache_hits=6 \
     cache_misses=4 queue_depth=0 inflight=0 p50_us=256 p90_us=1024 \
     p99_us=2048 max_us=1843 uptime_s=12.5"
  in
  match P.parse_response old_line with
  | Ok (P.Ok_stats s) ->
    check_int "store_hits defaults to 0" 0 s.P.store_hits;
    check_int "store_misses defaults to 0" 0 s.P.store_misses;
    check_int "store_demoted defaults to 0" 0 s.P.store_demoted;
    check_int "compactions defaults to 0" 0 s.P.compactions
  | Ok other ->
    Alcotest.failf "expected stats, got %s" (P.response_to_string other)
  | Error e -> Alcotest.failf "parse: %s" (Dls.Errors.to_string e)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "scale"
    [
      ( "ring",
        [
          Alcotest.test_case "balance within 20% over 1k keys" `Quick
            test_ring_balance;
          Alcotest.test_case "minimal remap on shard removal" `Quick
            test_ring_minimal_remap;
          Alcotest.test_case "pinned hashes and lookups" `Quick
            test_ring_determinism;
          Alcotest.test_case "argument validation" `Quick test_ring_validation;
        ] );
      ( "store",
        [
          Alcotest.test_case "round trip + persistence" `Quick
            test_store_roundtrip;
          Alcotest.test_case "cross-handle visibility" `Quick
            test_store_cross_handle;
          Alcotest.test_case "compaction" `Quick test_store_compact;
          Alcotest.test_case "torn tail tolerated" `Quick test_store_torn_tail;
        ] );
      ( "journal",
        [
          Alcotest.test_case "compact keeps latest live records" `Quick
            test_journal_compact;
          Alcotest.test_case "server compacts on byte budget" `Quick
            test_server_journal_budget;
        ] );
      ( "tiering",
        [
          Alcotest.test_case "store carries answers across restart" `Quick
            test_server_store_tier2;
        ] );
      ( "openloop",
        [
          Alcotest.test_case "arrival schedule" `Quick test_arrivals;
          Alcotest.test_case "invariant under process count" `Quick
            test_run_open_invariance;
          Alcotest.test_case "offered vs achieved accounting" `Quick
            test_run_open_accounting;
        ] );
      ( "router",
        [
          Alcotest.test_case "bit-identity through the router" `Quick
            test_router_bit_identity;
          Alcotest.test_case "shard affinity" `Quick test_router_affinity;
          Alcotest.test_case "failover past a dead shard" `Quick
            test_router_failover;
          Alcotest.test_case "merged control plane" `Quick
            test_router_control_plane;
        ] );
      ( "wire",
        [
          Alcotest.test_case "stats as JSON" `Quick test_stats_json;
          Alcotest.test_case "merge across shards" `Quick test_merge_stats;
          Alcotest.test_case "old stats lines still parse" `Quick
            test_stats_backcompat;
        ] );
    ]
