(* Tests for the exact simplex solver, cross-checked against brute-force
   vertex enumeration. *)

module Q = Numeric.Rational
module P = Simplex.Problem
module S = Simplex.Solver

let rat = Alcotest.testable Q.pp Q.equal
let q = Q.of_int
let qq = Q.of_ints

let lp direction objective constraints =
  P.make direction
    (Array.map Q.of_int objective)
    (List.map
       (fun (coeffs, rel, rhs) ->
         P.constr (Array.map Q.of_int coeffs) rel (Q.of_int rhs))
       constraints)

let check_optimal name expected problem =
  match S.solve problem with
  | S.Optimal s ->
    Alcotest.check rat (name ^ ": value") expected s.S.value;
    (match Simplex.Certify.check problem s with
    | Ok () -> ()
    | Error msgs -> Alcotest.fail (name ^ ": " ^ String.concat "; " msgs))
  | S.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")
  | S.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_basic_max () =
  (* max 3x + 2y st x + y <= 4, x <= 2 -> (2,2), value 10 *)
  let p = lp P.Maximize [| 3; 2 |] [ ([| 1; 1 |], P.Le, 4); ([| 1; 0 |], P.Le, 2) ] in
  check_optimal "basic max" (q 10) p

let test_basic_min () =
  (* min x + y st x + 2y >= 4, 3x + y >= 6 -> intersection (8/5, 6/5), value 14/5 *)
  let p =
    lp P.Minimize [| 1; 1 |] [ ([| 1; 2 |], P.Ge, 4); ([| 3; 1 |], P.Ge, 6) ]
  in
  check_optimal "basic min" (qq 14 5) p

let test_equality_constraints () =
  (* max x st x + y = 3, x - y = 1 -> x = 2 *)
  let p = lp P.Maximize [| 1; 0 |] [ ([| 1; 1 |], P.Eq, 3); ([| 1; -1 |], P.Eq, 1) ] in
  check_optimal "equalities" (q 2) p

let test_infeasible () =
  (* x <= -1 contradicts x >= 0 *)
  let p = lp P.Maximize [| 1 |] [ ([| 1 |], P.Le, -1) ] in
  match S.solve p with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_infeasible_equalities () =
  let p = lp P.Maximize [| 1; 1 |] [ ([| 1; 1 |], P.Eq, 1); ([| 1; 1 |], P.Eq, 2) ] in
  match S.solve p with
  | S.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = lp P.Maximize [| 1; 0 |] [ ([| 0; 1 |], P.Le, 5) ] in
  match S.solve p with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_unbounded_after_phase1 () =
  (* Feasibility needs phase 1 (a Ge row), then the objective is unbounded. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 1; 0 |], P.Ge, 2) ] in
  match S.solve p with
  | S.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_degenerate_no_cycle () =
  (* A classical cycling example (Beale); Bland's rule must terminate. *)
  let p =
    P.make P.Maximize
      [| qq 3 4; Q.of_int (-150); qq 1 50; Q.of_int (-6) |]
      [
        P.constr [| qq 1 4; Q.of_int (-60); qq (-1) 25; q 9 |] P.Le Q.zero;
        P.constr [| Q.half; Q.of_int (-90); qq (-1) 50; q 3 |] P.Le Q.zero;
        P.constr [| Q.zero; Q.zero; Q.one; Q.zero |] P.Le Q.one;
      ]
  in
  check_optimal "Beale" (qq 1 20) p

let test_redundant_rows () =
  let p =
    lp P.Maximize [| 1; 1 |]
      [ ([| 1; 1 |], P.Eq, 2); ([| 2; 2 |], P.Eq, 4); ([| 1; 0 |], P.Le, 1) ]
  in
  check_optimal "redundant equalities" (q 2) p

let test_negative_rhs_orientation () =
  (* -x - y <= -2 is x + y >= 2. *)
  let p = lp P.Minimize [| 1; 2 |] [ ([| -1; -1 |], P.Le, -2) ] in
  check_optimal "negative rhs" (q 2) p

let test_zero_objective () =
  let p = lp P.Maximize [| 0; 0 |] [ ([| 1; 1 |], P.Le, 3) ] in
  check_optimal "zero objective" (q 0) p

let test_dimension_mismatch () =
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Problem.make: constraint 0 has 1 coefficients, expected 2")
    (fun () ->
      ignore (P.make P.Maximize [| Q.one; Q.one |] [ P.constr [| Q.one |] P.Le Q.one ]))

let test_fractional_solution () =
  (* max x + y st 2x + y <= 3, x + 3y <= 5 -> (4/5, 7/5), value 11/5 *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  check_optimal "fractional" (qq 11 5) p;
  match S.solve p with
  | S.Optimal s ->
    Alcotest.check rat "x" (qq 4 5) s.S.point.(0);
    Alcotest.check rat "y" (qq 7 5) s.S.point.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_big_coefficients () =
  (* Exactness with large numbers: max x st 10^18 x <= 3 * 10^18. *)
  let big = Q.of_string "1000000000000000000" in
  let p =
    P.make P.Maximize [| Q.one |]
      [ P.constr [| big |] P.Le (Q.mul (q 3) big) ]
  in
  check_optimal "big coefficients" (q 3) p

(* ------------------------------------------------------------------ *)
(* Linear-algebra helpers                                              *)
(* ------------------------------------------------------------------ *)

let test_linear_solve () =
  let a = [| [| q 2; q 1 |]; [| q 1; q 3 |] |] in
  let b = [| q 5; q 10 |] in
  match Simplex.Linear.solve a b with
  | None -> Alcotest.fail "singular?"
  | Some x ->
    Alcotest.check rat "x0" (q 1) x.(0);
    Alcotest.check rat "x1" (q 3) x.(1)

let test_linear_singular () =
  let a = [| [| q 1; q 2 |]; [| q 2; q 4 |] |] in
  Alcotest.(check bool) "singular" true (Simplex.Linear.solve a [| q 1; q 2 |] = None)

let test_linear_rank () =
  Alcotest.(check int) "rank 2" 2
    (Simplex.Linear.rank [| [| q 1; q 0 |]; [| q 0; q 1 |]; [| q 1; q 1 |] |]);
  Alcotest.(check int) "rank 1" 1
    (Simplex.Linear.rank [| [| q 1; q 2 |]; [| q 2; q 4 |] |]);
  Alcotest.(check int) "rank 0" 0 (Simplex.Linear.rank [| [| q 0 |] |])

(* ------------------------------------------------------------------ *)
(* Property: simplex agrees with vertex enumeration                    *)
(* ------------------------------------------------------------------ *)

let gen_problem =
  let open QCheck2.Gen in
  let coeff = map Q.of_int (int_range (-5) 5) in
  let* n = int_range 1 3 in
  let* m = int_range 1 4 in
  let* objective = array_size (return n) coeff in
  let* constraints =
    list_size (return m)
      (let* coeffs = array_size (return n) coeff in
       let* rhs = map Q.of_int (int_range 0 10) in
       let* rel =
         (* mostly Le to keep feasible instances common *)
         frequency [ (6, return P.Le); (2, return P.Ge); (1, return P.Eq) ]
       in
       return (P.constr coeffs rel rhs))
  in
  let* direction = oneofl [ P.Maximize; P.Minimize ] in
  return (P.make direction objective constraints)

let prop_matches_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"simplex agrees with vertex oracle"
       gen_problem (fun p ->
         match S.solve p with
         | S.Optimal s -> begin
           (match Simplex.Certify.check p s with
           | Ok () -> ()
           | Error m -> QCheck2.Test.fail_reportf "certify: %s" (String.concat ";" m));
           match Simplex.Vertex_enum.best p with
           | None -> QCheck2.Test.fail_reportf "solver optimal but no vertex"
           | Some (v, _) ->
             if not (Q.equal v s.S.value) then
               QCheck2.Test.fail_reportf "solver %s oracle %s" (Q.to_string s.S.value)
                 (Q.to_string v)
             else true
         end
         | S.Infeasible ->
           (* No feasible vertex may exist. *)
           Simplex.Vertex_enum.vertices p = []
         | S.Unbounded ->
           (* The region must at least be non-empty. *)
           Simplex.Vertex_enum.vertices p <> []))

(* ------------------------------------------------------------------ *)
(* LP file format                                                      *)
(* ------------------------------------------------------------------ *)

let problems_equal (a : P.t) (b : P.t) =
  a.P.direction = b.P.direction
  && a.P.names = b.P.names
  && Array.for_all2 Q.equal a.P.objective b.P.objective
  && Array.length a.P.constraints = Array.length b.P.constraints
  && Array.for_all2
       (fun (ca : P.constr) (cb : P.constr) ->
         ca.P.relation = cb.P.relation
         && Q.equal ca.P.rhs cb.P.rhs
         && Array.for_all2 Q.equal ca.P.coeffs cb.P.coeffs)
       a.P.constraints b.P.constraints

let test_lp_file_roundtrip_simple () =
  let p =
    lp P.Maximize [| 3; 2 |]
      [ ([| 1; 1 |], P.Le, 4); ([| 1; -2 |], P.Ge, -3); ([| 0; 1 |], P.Eq, 2) ]
  in
  match Simplex.Lp_file.of_string (Simplex.Lp_file.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' -> Alcotest.(check bool) "roundtrip" true (problems_equal p p')

let test_lp_file_parse_handwritten () =
  let text =
    "\\ a comment\n\
     Minimize\n\
    \ obj: 1 x + 1/2 y\n\
     Subject To\n\
    \ c0: x + 2 y >= 4\n\
    \ weight: 3 x - y <= 10\n\
     End\n"
  in
  match Simplex.Lp_file.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check int) "2 vars" 2 (P.num_vars p);
    Alcotest.(check int) "2 constraints" 2 (P.num_constraints p);
    (* min x + y/2 st x + 2y >= 4: all load on y, y = 2, value 1 *)
    (match S.solve p with
    | S.Optimal s -> Alcotest.check rat "solved" (q 1) s.S.value
    | _ -> Alcotest.fail "expected optimum")

let test_lp_file_errors () =
  let bad =
    [
      "";
      "Maximize\n obj: 1 x\n";
      "Maximize\n obj: 1 x\nSubject To\n x <= \nEnd\n";
      "Maximize\n obj: + \nSubject To\nEnd\n";
      "Frobnicate\n obj: 1 x\nSubject To\nEnd\n";
    ]
  in
  List.iter
    (fun text ->
      match Simplex.Lp_file.of_string text with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" text
      | Error _ -> ())
    bad

let test_lp_file_negative_rhs () =
  let text = "Maximize\n obj: 1 x\nSubject To\n c: x <= -2\nEnd\n" in
  match Simplex.Lp_file.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p -> (
    match S.solve p with
    | S.Infeasible -> ()
    | _ -> Alcotest.fail "x <= -2 with x >= 0 must be infeasible")

let prop_lp_file_parser_total =
  (* The parser is total: random garbage must produce Error, never an
     exception. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"LP parser never raises"
       QCheck2.Gen.(
         string_size ~gen:(oneofl [ 'x'; '1'; '/'; '+'; '-'; '('; ':'; '='; '<';
                                    ' '; '\n'; 'M'; 'a'; 'e'; 'o'; 'b'; 'j' ])
           (int_range 0 80))
       (fun text ->
         match Simplex.Lp_file.of_string text with
         | Ok _ | Error _ -> true))

let prop_lp_file_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"LP file roundtrip" gen_problem
       (fun p ->
         match Simplex.Lp_file.of_string (Simplex.Lp_file.to_string p) with
         | Error e -> QCheck2.Test.fail_reportf "parse error: %s" e
         | Ok p' -> problems_equal p p'))

let prop_solution_feasible =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:400 ~name:"optimal points are feasible" gen_problem
       (fun p ->
         match S.solve p with
         | S.Optimal s -> Simplex.Certify.is_feasible p s.S.point
         | S.Infeasible | S.Unbounded -> true))

(* ------------------------------------------------------------------ *)
(* Problem and certification edge cases                                *)
(* ------------------------------------------------------------------ *)

let test_problem_pp_smoke () =
  let p =
    P.make ~names:[| "load"; "slack" |] P.Maximize [| q 3; Q.zero |]
      [ P.constr [| q 1; q 1 |] P.Le (q 4) ]
  in
  let s = Format.asprintf "%a" P.pp p in
  Alcotest.(check bool) "names printed" true
    (String.length s > 0
    &&
    let rec find i =
      i + 4 <= String.length s && (String.sub s i 4 = "load" || find (i + 1))
    in
    find 0)

let test_problem_eval_holds () =
  let c = P.constr [| q 2; q 1 |] P.Ge (q 4) in
  Alcotest.check rat "eval" (q 5) (P.eval_constraint c [| q 2; q 1 |]);
  Alcotest.(check bool) "holds" true (P.holds c [| q 2; q 1 |]);
  Alcotest.(check bool) "violated" false (P.holds c [| q 1; q 0 |])

let test_problem_bad_names () =
  Alcotest.check_raises "wrong name count"
    (Invalid_argument "Problem.make: wrong number of variable names") (fun () ->
      ignore (P.make ~names:[| "x" |] P.Maximize [| q 1; q 1 |] []))

let test_certify_rejects_bad_solutions () =
  let p = lp P.Maximize [| 1 |] [ ([| 1 |], P.Le, 2) ] in
  let sol value point = { S.value; point; pivots = 0; basis = [||] } in
  (* wrong dimension *)
  (match Simplex.Certify.check p (sol (q 2) [| q 2; q 0 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dimension mismatch accepted");
  (* infeasible point *)
  (match Simplex.Certify.check p (sol (q 3) [| q 3 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "infeasible point accepted");
  (* negative variable *)
  (match Simplex.Certify.check p (sol (q (-1)) [| q (-1) |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "negative point accepted");
  (* value mismatch *)
  match Simplex.Certify.check p (sol (q 2) [| q 1 |]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong value accepted"

let test_vertex_enum_lists_square () =
  (* 0 <= x,y <= 1: four vertices (possibly with degenerate duplicates). *)
  let p =
    lp P.Maximize [| 1; 1 |] [ ([| 1; 0 |], P.Le, 1); ([| 0; 1 |], P.Le, 1) ]
  in
  let vertices =
    List.sort_uniq Stdlib.compare
      (List.map
         (fun v -> Array.to_list (Array.map Q.to_float v))
         (Simplex.Vertex_enum.vertices p))
  in
  Alcotest.(check int) "four corners" 4 (List.length vertices)

(* ------------------------------------------------------------------ *)
(* Float solver (differential testing against the exact one)           *)
(* ------------------------------------------------------------------ *)

let test_float_solver_basic () =
  let p = lp P.Maximize [| 3; 2 |] [ ([| 1; 1 |], P.Le, 4); ([| 1; 0 |], P.Le, 2) ] in
  match Simplex.Float_solver.solve p with
  | Simplex.Float_solver.Optimal s ->
    Alcotest.(check (float 1e-9)) "value" 10.0 s.Simplex.Float_solver.value
  | _ -> Alcotest.fail "expected optimal"

let test_float_solver_infeasible () =
  let p = lp P.Maximize [| 1 |] [ ([| 1 |], P.Le, -1) ] in
  match Simplex.Float_solver.solve p with
  | Simplex.Float_solver.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let prop_float_matches_exact =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"float solver tracks the exact solver"
       gen_problem (fun p ->
         match (S.solve p, Simplex.Float_solver.solve p) with
         | S.Optimal exact, Simplex.Float_solver.Optimal approx ->
           let e = Q.to_float exact.S.value in
           let scale = Float.max 1.0 (Float.abs e) in
           if Float.abs (approx.Simplex.Float_solver.value -. e) > 1e-6 *. scale
           then
             QCheck2.Test.fail_reportf "exact %.12g, float %.12g" e
               approx.Simplex.Float_solver.value
           else true
         | S.Unbounded, Simplex.Float_solver.Unbounded -> true
         | S.Infeasible, Simplex.Float_solver.Infeasible -> true
         | _, Simplex.Float_solver.Stalled -> true (* tolerated: float backstop *)
         | _ ->
           (* Tolerance may flip near-degenerate classifications; only
              tolerate that when the exact optimum is essentially 0. *)
           (match S.solve p with
           | S.Optimal e -> Float.abs (Q.to_float e.S.value) < 1e-6
           | _ -> false)))

(* ------------------------------------------------------------------ *)
(* Warm starts and basis lifting                                       *)
(* ------------------------------------------------------------------ *)

let test_warm_start_own_basis () =
  (* Re-feeding a solve's own terminal basis must certify it with zero
     extra pivots beyond the factorization, and flag uniqueness on this
     non-degenerate problem. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  let s = S.solve_exn p in
  match S.solve_with_basis p ~basis:s.S.basis with
  | S.Warm_optimal (s', unique) ->
    Alcotest.check rat "value" s.S.value s'.S.value;
    Alcotest.(check bool) "point" true (Array.for_all2 Q.equal s.S.point s'.S.point);
    Alcotest.(check bool) "unique" true unique
  | _ -> Alcotest.fail "expected warm optimal"

let test_warm_start_rejections () =
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  let reject basis name =
    match S.solve_with_basis p ~basis with
    | S.Warm_rejected -> ()
    | _ -> Alcotest.fail name
  in
  reject [| 0 |] "wrong length accepted";
  reject [| 0; 0 |] "duplicate column accepted";
  reject [| 0; 7 |] "out-of-range column accepted";
  (* {x, slack_0}: the nonbasic choice forces x = 5 from row 1, driving
     row 0's slack to -7 — a primally infeasible vertex. *)
  reject [| 0; 2 |] "infeasible basis accepted"

let test_warm_start_alternate_optima () =
  (* max x + y on x + y <= 1: the whole edge is optimal, so even the
     solver's own terminal basis must come back with [unique = false] —
     the fast pipeline then falls back to the canonical cold solve. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 1; 1 |], P.Le, 1) ] in
  let s = S.solve_exn p in
  match S.solve_with_basis p ~basis:s.S.basis with
  | S.Warm_optimal (_, unique) ->
    Alcotest.(check bool) "not unique" false unique
  | _ -> Alcotest.fail "expected warm optimal"

let test_warm_start_recovers_from_suboptimal_basis () =
  (* Start from the all-slack basis (the origin): installation is a
     no-op and Bland's rule must walk to the optimum. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  match S.solve_with_basis p ~basis:[| 2; 3 |] with
  | S.Warm_optimal (s', _) -> Alcotest.check rat "value" (qq 11 5) s'.S.value
  | _ -> Alcotest.fail "expected warm optimal"

let test_float_stall_cap () =
  (* A one-pivot cap stalls the float solver on a problem needing more;
     the fast pipeline turns this into an exact fallback. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  match Simplex.Float_solver.solve ~max_pivots:1 p with
  | Simplex.Float_solver.Stalled -> ()
  | _ -> Alcotest.fail "expected stall under a 1-pivot cap"

let prop_lifted_basis_certifies =
  (* The fast pipeline's core step: lift the float solver's terminal
     basis into the exact solver.  Whenever the lift certifies with the
     uniqueness flag, the solution must be bit-identical to the cold
     exact solve. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"float basis lift is exact when certified"
       gen_problem (fun p ->
         match Simplex.Float_solver.solve p with
         | Simplex.Float_solver.Optimal f -> (
           match S.solve_with_basis p ~basis:f.Simplex.Float_solver.basis with
           | S.Warm_optimal (s', true) -> (
             match S.solve p with
             | S.Optimal s ->
               Q.equal s.S.value s'.S.value
               && Array.for_all2 Q.equal s.S.point s'.S.point
             | _ -> false)
           | S.Warm_optimal (_, false) | S.Warm_rejected -> true
           | S.Warm_unbounded -> (
             match S.solve p with S.Unbounded -> true | _ -> false))
         | _ -> true))

let prop_warm_start_any_valid_basis =
  (* From any installable basis the warm solve must reach the same
     optimal value as the cold solve (the point may differ only when
     alternate optima exist, i.e. when [unique] is false). *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"warm start reaches the cold optimum"
       gen_problem (fun p ->
         match S.solve p with
         | S.Optimal s -> (
           match S.solve_with_basis p ~basis:s.S.basis with
           | S.Warm_optimal (s', unique) ->
             Q.equal s.S.value s'.S.value
             && ((not unique) || Array.for_all2 Q.equal s.S.point s'.S.point)
           | S.Warm_rejected -> false (* its own terminal basis must install *)
           | S.Warm_unbounded -> false)
         | S.Unbounded | S.Infeasible -> true))

(* ------------------------------------------------------------------ *)
(* Restricted factorization certificate                                 *)
(* ------------------------------------------------------------------ *)

let test_certify_own_basis () =
  (* Certifying the cold solve's own terminal basis must reproduce its
     value and point with zero pivots — the fast pipeline's core step. *)
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  let s = S.solve_exn p in
  match S.certify_basis p ~basis:s.S.basis with
  | Some s' ->
    Alcotest.check rat "value" s.S.value s'.S.value;
    Alcotest.(check bool) "point" true (Array.for_all2 Q.equal s.S.point s'.S.point);
    Alcotest.(check int) "no pivots" 0 s'.S.pivots
  | None -> Alcotest.fail "expected a certificate"

let test_certify_rejects () =
  let p = lp P.Maximize [| 1; 1 |] [ ([| 2; 1 |], P.Le, 3); ([| 1; 3 |], P.Le, 5) ] in
  let reject prob basis name =
    match S.certify_basis prob ~basis with
    | None -> ()
    | Some _ -> Alcotest.fail name
  in
  reject p [| 0 |] "wrong length certified";
  reject p [| 0; 0 |] "duplicate column certified";
  reject p [| 0; 7 |] "out-of-range column certified";
  reject p [| 0; 2 |] "infeasible basis certified";
  reject p [| 2; 3 |] "suboptimal slack basis certified";
  (* Unsupported shape: a >= row must fall back, never certify. *)
  let ge = lp P.Minimize [| 1; 1 |] [ ([| 1; 2 |], P.Ge, 4) ] in
  reject ge [| 0 |] ">= constraint certified";
  (* Genuine alternate optima (the whole edge x + y = 1 is optimal):
     the zero reduced cost sits on an objective column, which is never
     twin-tolerable, so no certificate exists for any basis. *)
  let edge = lp P.Maximize [| 1; 1 |] [ ([| 1; 1 |], P.Le, 1) ] in
  let s = S.solve_exn edge in
  reject edge s.S.basis "alternate optimum certified"

let test_certify_twin_tolerance () =
  (* [z] (zero objective) appears only in the slack row 1, so its column
     duplicates that row's slack: the reduced cost of the nonbasic twin
     is structurally zero, yet the optimum is unique in [x] — the
     certificate must tolerate the pair and still succeed. *)
  let p =
    P.make P.Maximize
      [| Q.one; Q.zero |]
      [
        P.constr [| Q.one; Q.zero |] P.Le Q.one;
        P.constr [| Q.half; Q.one |] P.Le Q.one;
      ]
  in
  let s = S.solve_exn p in
  match S.certify_basis p ~basis:s.S.basis with
  | Some s' ->
    Alcotest.check rat "value" s.S.value s'.S.value;
    Alcotest.check rat "x" s.S.point.(0) s'.S.point.(0)
  | None -> Alcotest.fail "twin pair rejected"

let prop_certify_matches_cold =
  (* Whenever the certificate accepts the cold solve's own basis, it
     must agree with the cold solve on the value and on every objective
     coordinate of the point (twin pairs carry zero objective, so the
     guarantee covers everything callers read). *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"certify_basis agrees with the cold solve"
       gen_problem (fun p ->
         match S.solve p with
         | S.Optimal s -> (
           match S.certify_basis p ~basis:s.S.basis with
           | None -> true
           | Some s' ->
             Q.equal s.S.value s'.S.value
             && Array.for_all
                  (fun j ->
                    Q.sign p.P.objective.(j) = 0
                    || Q.equal s.S.point.(j) s'.S.point.(j))
                  (Array.init (P.num_vars p) Fun.id))
         | S.Unbounded | S.Infeasible -> true))

let prop_certify_float_basis =
  (* The full fast-pipeline step: certify the float solver's terminal
     basis.  Certified answers must match the cold solve exactly. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"certified float basis is exact"
       gen_problem (fun p ->
         match Simplex.Float_solver.solve p with
         | Simplex.Float_solver.Optimal f -> (
           match S.certify_basis p ~basis:f.Simplex.Float_solver.basis with
           | None -> true
           | Some s' -> (
             match S.solve p with
             | S.Optimal s ->
               Q.equal s.S.value s'.S.value
               && Array.for_all
                    (fun j ->
                      Q.sign p.P.objective.(j) = 0
                      || Q.equal s.S.point.(j) s'.S.point.(j))
                    (Array.init (P.num_vars p) Fun.id)
             | _ -> false))
         | _ -> true))

let () =
  Alcotest.run "simplex"
    [
      ( "solver.unit",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "basic min" `Quick test_basic_min;
          Alcotest.test_case "equalities" `Quick test_equality_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "infeasible eq" `Quick test_infeasible_equalities;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "unbounded after phase1" `Quick
            test_unbounded_after_phase1;
          Alcotest.test_case "Beale degenerate" `Quick test_degenerate_no_cycle;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_orientation;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
          Alcotest.test_case "fractional optimum" `Quick test_fractional_solution;
          Alcotest.test_case "big coefficients" `Quick test_big_coefficients;
        ] );
      ( "linear.unit",
        [
          Alcotest.test_case "solve" `Quick test_linear_solve;
          Alcotest.test_case "singular" `Quick test_linear_singular;
          Alcotest.test_case "rank" `Quick test_linear_rank;
        ] );
      ("solver.props", [ prop_matches_oracle; prop_solution_feasible ]);
      ( "problem",
        [
          Alcotest.test_case "pp" `Quick test_problem_pp_smoke;
          Alcotest.test_case "eval/holds" `Quick test_problem_eval_holds;
          Alcotest.test_case "bad names" `Quick test_problem_bad_names;
          Alcotest.test_case "certify rejects" `Quick test_certify_rejects_bad_solutions;
          Alcotest.test_case "vertex square" `Quick test_vertex_enum_lists_square;
        ] );
      ( "float_solver",
        [
          Alcotest.test_case "basic" `Quick test_float_solver_basic;
          Alcotest.test_case "infeasible" `Quick test_float_solver_infeasible;
          prop_float_matches_exact;
        ] );
      ( "warm_start",
        [
          Alcotest.test_case "own basis certifies" `Quick test_warm_start_own_basis;
          Alcotest.test_case "rejections" `Quick test_warm_start_rejections;
          Alcotest.test_case "alternate optima" `Quick
            test_warm_start_alternate_optima;
          Alcotest.test_case "suboptimal basis" `Quick
            test_warm_start_recovers_from_suboptimal_basis;
          Alcotest.test_case "float stall cap" `Quick test_float_stall_cap;
          prop_lifted_basis_certifies;
          prop_warm_start_any_valid_basis;
        ] );
      ( "certify_basis",
        [
          Alcotest.test_case "own basis" `Quick test_certify_own_basis;
          Alcotest.test_case "rejections" `Quick test_certify_rejects;
          Alcotest.test_case "twin tolerance" `Quick test_certify_twin_tolerance;
          prop_certify_matches_cold;
          prop_certify_float_basis;
        ] );
      ( "lp_file",
        [
          Alcotest.test_case "roundtrip simple" `Quick test_lp_file_roundtrip_simple;
          Alcotest.test_case "handwritten" `Quick test_lp_file_parse_handwritten;
          Alcotest.test_case "errors" `Quick test_lp_file_errors;
          Alcotest.test_case "negative rhs" `Quick test_lp_file_negative_rhs;
          prop_lp_file_roundtrip;
          prop_lp_file_parser_total;
        ] );
    ]
