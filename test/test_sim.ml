(* Tests for the discrete-event simulation substrate: heap, engine,
   star-network executor, traces, Gantt rendering. *)

module Q = Numeric.Rational
module Heap = Sim.Heap
module Engine = Sim.Engine
module Star = Sim.Star
module Trace = Sim.Trace
module Gantt = Sim.Gantt
module Trace_io = Sim.Trace_io

let qq = Q.of_ints

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.add h ~priority:p p) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      popped := v :: !popped;
      drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.add h ~priority:1.0 v) [ "a"; "b"; "c" ];
  let pop () = match Heap.pop h with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ]
    [ first; second; third ]

let test_heap_sizes () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  for i = 1 to 100 do
    Heap.add h ~priority:(float_of_int (i mod 7)) i
  done;
  Alcotest.(check int) "size" 100 (Heap.size h);
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.size h)

let test_heap_fifo_ties_at_scale () =
  (* Equal priorities must pop in insertion order even once the heap
     has grown past its initial capacity (the backing array doubles as
     it fills), and the stability must survive interleaving with other
     priority classes. *)
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.add h ~priority:(if i mod 3 = 0 then 1.0 else 2.0) i
  done;
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some (p, v) -> drain ((p, v) :: acc)
  in
  let popped = drain [] in
  Alcotest.(check int) "all popped" 100 (List.length popped);
  let firsts = List.filter (fun (p, _) -> p = 1.0) popped in
  let seconds = List.filter (fun (p, _) -> p = 2.0) popped in
  let expect pr = List.filter (fun i -> (i mod 3 = 0) = (pr = 1.0)) (List.init 100 Fun.id) in
  Alcotest.(check (list int))
    "priority-1 class in insertion order" (expect 1.0) (List.map snd firsts);
  Alcotest.(check (list int))
    "priority-2 class in insertion order" (expect 2.0) (List.map snd seconds);
  (* And the classes themselves come out priority-sorted. *)
  Alcotest.(check (list (float 0.0)))
    "classes ordered"
    (List.sort Float.compare (List.map fst popped))
    (List.map fst popped)

let prop_heap_sorts =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"heap drains in priority order"
       QCheck2.Gen.(list_size (int_range 0 60) (float_range (-100.) 100.))
       (fun priorities ->
         let h = Heap.create () in
         List.iter (fun p -> Heap.add h ~priority:p ()) priorities;
         let rec drain acc =
           match Heap.pop h with
           | None -> List.rev acc
           | Some (p, ()) -> drain (p :: acc)
         in
         drain [] = List.sort Float.compare priorities))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule_at eng ~time:2.0 (fun _ -> log := "b" :: !log);
  Engine.schedule_at eng ~time:1.0 (fun _ -> log := "a" :: !log);
  Engine.schedule_at eng ~time:3.0 (fun _ -> log := "c" :: !log);
  let final = Engine.run eng in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 0.0)) "clock" 3.0 final;
  Alcotest.(check int) "processed" 3 (Engine.events_processed eng)

let test_engine_nested_scheduling () =
  let eng = Engine.create () in
  let times = ref [] in
  Engine.schedule eng ~delay:1.0 (fun eng ->
      times := Engine.now eng :: !times;
      Engine.schedule eng ~delay:0.5 (fun eng -> times := Engine.now eng :: !times));
  let _ = Engine.run eng in
  Alcotest.(check (list (float 1e-12))) "nested" [ 1.0; 1.5 ] (List.rev !times)

let prop_engine_fires_in_order =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"engine fires callbacks in time order"
       QCheck2.Gen.(list_size (int_range 0 40) (float_range 0.0 100.0))
       (fun times ->
         let eng = Engine.create () in
         let fired = ref [] in
         List.iter
           (fun t -> Engine.schedule_at eng ~time:t (fun e -> fired := Engine.now e :: !fired))
           times;
         let final = Engine.run eng in
         let fired = List.rev !fired in
         fired = List.sort Float.compare times
         && (times = [] || final = List.fold_left Float.max 0.0 times)))

let test_engine_rejects_past () =
  let eng = Engine.create () in
  Engine.schedule eng ~delay:1.0 (fun eng ->
      try
        Engine.schedule_at eng ~time:0.5 (fun _ -> ());
        Alcotest.fail "scheduled in the past"
      with Invalid_argument _ -> ());
  ignore (Engine.run eng)

(* ------------------------------------------------------------------ *)
(* Star executor                                                       *)
(* ------------------------------------------------------------------ *)

let worker c w d =
  Dls.Platform.worker ~c:(qq (fst c) (snd c)) ~w:(qq (fst w) (snd w))
    ~d:(qq (fst d) (snd d)) ()

let platform_2 () =
  Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2); worker (1, 1) (2, 1) (1, 2) ]

let test_star_single_worker_exact () =
  (* One worker, load 1: makespan = c + w + d. *)
  let p = Dls.Platform.make_exn [ worker (2, 1) (3, 1) (1, 1) ] in
  let plan = { Star.sigma1 = [| 0 |]; sigma2 = [| 0 |]; loads = [| 1.0 |] } in
  let trace = Star.execute p plan in
  Alcotest.(check (float 1e-12)) "makespan" 6.0 trace.Trace.makespan;
  Alcotest.(check bool) "valid" true (Trace.is_valid trace)

let test_star_matches_lp_schedule () =
  (* Without noise the simulator must reproduce the LP makespan exactly
     (here: rho = 6/11 processed in unit time, so load 6 takes 11). *)
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  (* rho = 6/11: six load units need 11 time units, i.e. loads x11. *)
  let scale = 11.0 in
  let loads = Array.map (fun a -> Q.to_float a *. scale) sol.Dls.Lp_model.alpha in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads } in
  let trace = Star.execute p plan in
  Alcotest.(check (float 1e-9)) "makespan = 11 for 6 loads" 11.0 trace.Trace.makespan

let test_star_master_serializes () =
  (* Two instant-compute workers: returns must queue behind each other. *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (1, 100) (1, 1); worker (1, 1) (1, 100) (1, 1) ]
  in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] } in
  let trace = Star.execute p plan in
  Alcotest.(check bool) "one-port" true (Trace.one_port_violations trace = []);
  (* sends take [0,1] and [1,2]; worker 0 ready at ~1.01 but the master
     is still sending: its return starts at 2. *)
  let r0 = List.find (fun e -> e.Trace.kind = Trace.Return && e.Trace.worker = 0) trace.Trace.events in
  Alcotest.(check (float 1e-9)) "return waits for port" 2.0 r0.Trace.start

let test_star_return_order_respected () =
  (* sigma2 reversed: worker 1 returns first even if worker 0 is ready. *)
  let p = platform_2 () in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 1; 0 |]; loads = [| 1.0; 1.0 |] } in
  let trace = Star.execute p plan in
  let ret i =
    List.find (fun e -> e.Trace.kind = Trace.Return && e.Trace.worker = i) trace.Trace.events
  in
  Alcotest.(check bool) "worker1 before worker0" true
    ((ret 1).Trace.finish <= (ret 0).Trace.start +. 1e-12)

let test_star_skips_zero_loads () =
  let p = platform_2 () in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 0.0 |] } in
  let trace = Star.execute p plan in
  Alcotest.(check (list int)) "only worker 0" [ 0 ] (Trace.workers trace)

let test_star_noise_slows_down () =
  let p = platform_2 () in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] } in
  let noise =
    {
      Star.comm = (fun ~worker:_ x -> x *. 1.5);
      comp = (fun ~worker:_ x -> x *. 2.0);
    }
  in
  let base = Star.execute p plan in
  let slowed = Star.execute ~noise p plan in
  Alcotest.(check bool) "slower" true
    (slowed.Trace.makespan > base.Trace.makespan);
  Alcotest.(check bool) "still valid" true (Trace.is_valid slowed)

let prop_sim_matches_lp =
  (* The central integration property: executing the LP loads with no
     noise yields exactly the LP makespan (load / rho), for any scenario. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:80 ~name:"noise-free simulation = LP prediction"
       (let open QCheck2.Gen in
        let* n = int_range 1 5 in
        let* specs =
          list_size (return n)
            (pair (pair (int_range 1 10) (int_range 1 10)) (int_range 1 10))
        in
        let* flip = bool in
        return (specs, flip))
       (fun (specs, flip) ->
         let platform =
           Dls.Platform.make_exn
             (List.map
                (fun ((cn, cd), wn) ->
                  worker (cn, cd) (wn, 1) (cn, 2 * cd) (* z = 1/2 *))
                specs)
         in
         let sol =
           if flip then Dls.Lifo.optimal platform else Dls.Fifo.optimal platform
         in
         let plan = Star.plan_of_solved sol in
         let trace = Star.execute platform plan in
         let predicted = Q.to_float sol.Dls.Lp_model.rho in
         (* makespan for load rho is exactly 1 *)
         Trace.is_valid trace
         && Float.abs (trace.Trace.makespan -. 1.0) < 1e-9
         && Float.abs (Array.fold_left ( +. ) 0.0 plan.Star.loads -. predicted) < 1e-9))

let prop_sim_never_beats_lp =
  (* With a fixed scenario, the simulator (a particular feasible
     execution) can never finish faster than the LP optimum. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"simulation never beats the LP bound"
       (let open QCheck2.Gen in
        let* n = int_range 1 4 in
        let* specs =
          list_size (return n)
            (pair (pair (int_range 1 10) (int_range 1 10)) (int_range 1 10))
        in
        let* total = int_range 1 500 in
        return (specs, total))
       (fun (specs, total) ->
         let platform =
           Dls.Platform.make_exn
             (List.map (fun ((cn, cd), wn) -> worker (cn, cd) (wn, 1) (cn, 2 * cd)) specs)
         in
         let sol = Dls.Fifo.optimal platform in
         let plan = Star.plan_of_rounded sol ~total in
         let trace = Star.execute platform plan in
         let bound =
           Q.to_float (Dls.Lp_model.time_for_load sol ~load:(Q.of_int total))
         in
         trace.Trace.makespan >= bound -. 1e-6))

let test_star_eager_returns_earlier () =
  (* Near-instant compute, three workers: worker 0's results are ready
     while the master is still sending to worker 1, so under
     Eager_returns they come back before worker 2's data goes out;
     under Sends_first they wait for all three sends. *)
  let p =
    Dls.Platform.make_exn
      [
        worker (1, 1) (1, 100) (1, 1);
        worker (1, 1) (1, 100) (1, 1);
        worker (1, 1) (1, 100) (1, 1);
      ]
  in
  let plan =
    { Star.sigma1 = [| 0; 1; 2 |]; sigma2 = [| 0; 1; 2 |]; loads = [| 1.0; 1.0; 1.0 |] }
  in
  let eager = Star.execute ~protocol:Star.Eager_returns p plan in
  let ret0 t =
    (List.find (fun e -> e.Trace.kind = Trace.Return && e.Trace.worker = 0) t.Trace.events)
      .Trace.start
  in
  let lazy_ = Star.execute p plan in
  Alcotest.(check (float 1e-9)) "eager: right after send 2" 2.0 (ret0 eager);
  Alcotest.(check (float 1e-9)) "lazy: after all sends" 3.0 (ret0 lazy_);
  Alcotest.(check bool) "eager still valid" true (Trace.is_valid eager)

let test_star_eager_respects_sigma2 () =
  (* Even under Eager_returns, worker 1 cannot return before worker 0
     (sigma2 order), although it finishes computing first. *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (10, 1) (1, 1); worker (1, 1) (1, 100) (1, 1) ]
  in
  let plan = { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] } in
  let trace = Star.execute ~protocol:Star.Eager_returns p plan in
  let ret i =
    (List.find (fun e -> e.Trace.kind = Trace.Return && e.Trace.worker = i) trace.Trace.events)
      .Trace.start
  in
  Alcotest.(check bool) "sigma2 preserved" true (ret 0 < ret 1);
  Alcotest.(check bool) "valid" true (Trace.is_valid trace)

let prop_eager_protocol_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"eager protocol traces stay valid"
       (let open QCheck2.Gen in
        let* n = int_range 1 5 in
        list_size (return n)
          (pair (pair (int_range 1 10) (int_range 1 10)) (int_range 1 10)))
       (fun specs ->
         let platform =
           Dls.Platform.make_exn
             (List.map (fun ((cn, cd), wn) -> worker (cn, cd) (wn, 1) (cn, 2 * cd)) specs)
         in
         let sol = Dls.Fifo.optimal platform in
         let plan = Star.plan_of_solved sol in
         let trace = Star.execute ~protocol:Star.Eager_returns platform plan in
         Trace.is_valid trace
         (* eager interleaving is a feasible one-port execution, so it
            can never beat the optimum over ALL one-port schedules for
            the same loads... but it may beat the sends-first structure;
            just require a sane, positive makespan *)
         && trace.Trace.makespan > 0.0))

(* ------------------------------------------------------------------ *)
(* Chunked (multi-round) executor                                      *)
(* ------------------------------------------------------------------ *)

let test_chunked_two_chunks_one_worker () =
  (* Worker (c=1, w=2, d=1/2); chunks of 1 and 2 units.
     sends: [0,1], [1,3]; compute: [1,3], [3,7];
     returns after sends: chunk1 at max(3, 3)=3..3.5, chunk2 at 7..8. *)
  let p = Dls.Platform.make_exn [ worker (1, 1) (2, 1) (1, 2) ] in
  let plan =
    {
      Star.chunk_sends = [ (0, 1.0); (0, 2.0) ];
      chunk_returns = [ (0, 1.0); (0, 2.0) ];
    }
  in
  let trace = Star.execute_chunked p plan in
  Alcotest.(check (float 1e-9)) "makespan" 8.0 trace.Trace.makespan;
  let returns =
    List.filter (fun e -> e.Trace.kind = Trace.Return) trace.Trace.events
  in
  Alcotest.(check int) "two returns" 2 (List.length returns);
  Alcotest.(check (float 1e-9)) "first return start" 3.0
    (List.hd returns).Trace.start

let test_chunked_interleaves_compute () =
  (* Two workers, one chunk each: second worker's compute overlaps the
     first worker's, classic pipelining. *)
  let p =
    Dls.Platform.make_exn [ worker (1, 1) (3, 1) (1, 2); worker (1, 1) (3, 1) (1, 2) ]
  in
  let plan =
    {
      Star.chunk_sends = [ (0, 1.0); (1, 1.0) ];
      chunk_returns = [ (0, 1.0); (1, 1.0) ];
    }
  in
  let trace = Star.execute_chunked p plan in
  (* sends [0,1],[1,2]; computes [1,4],[2,5]; returns [4,4.5],[5,5.5] *)
  Alcotest.(check (float 1e-9)) "makespan" 5.5 trace.Trace.makespan;
  Alcotest.(check bool) "one-port ok" true (Trace.one_port_violations trace = [])

let test_chunked_return_without_send () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2) ] in
  let plan = { Star.chunk_sends = []; chunk_returns = [ (0, 1.0) ] } in
  try
    ignore (Star.execute_chunked p plan);
    Alcotest.fail "return without chunk accepted"
  with Invalid_argument _ -> ()

let test_chunked_noise_applies () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2) ] in
  let plan = { Star.chunk_sends = [ (0, 1.0) ]; chunk_returns = [ (0, 1.0) ] } in
  let noise =
    { Star.comm = (fun ~worker:_ x -> 2.0 *. x); comp = (fun ~worker:_ x -> x) }
  in
  let base = Star.execute_chunked p plan in
  let slow = Star.execute_chunked ~noise p plan in
  Alcotest.(check (float 1e-9)) "base" 2.5 base.Trace.makespan;
  Alcotest.(check (float 1e-9)) "slowed comm" 4.0 slow.Trace.makespan

let test_plan_of_multiround_rejects_latency () =
  let p = Dls.Platform.make_exn [ worker (1, 1) (1, 1) (1, 2) ] in
  match
    Dls.Multiround.solve p
      (Dls.Multiround.config ~send_latency:(qq 1 100) ~rounds:2 [| 0 |])
  with
  | Dls.Multiround.Too_slow -> Alcotest.fail "should be feasible"
  | Dls.Multiround.Solved s -> (
    try
      ignore (Star.plan_of_multiround s);
      Alcotest.fail "latencies accepted by the linear-model simulator"
    with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Trace validation                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_detects_overlap () =
  let e k w s f = { Trace.worker = w; kind = k; start = s; finish = f; load = 1.0 } in
  let bad =
    Trace.make
      [
        e Trace.Send 0 0.0 2.0;
        e Trace.Compute 0 2.0 3.0;
        e Trace.Return 0 3.0 4.0;
        e Trace.Send 1 1.0 2.5 (* overlaps worker 0's send *);
        e Trace.Compute 1 2.5 3.0;
        e Trace.Return 1 4.0 5.0;
      ]
  in
  Alcotest.(check int) "one overlap" 1 (List.length (Trace.one_port_violations bad))

let test_trace_detects_precedence () =
  let e k w s f = { Trace.worker = w; kind = k; start = s; finish = f; load = 1.0 } in
  let bad =
    Trace.make
      [ e Trace.Send 0 0.0 2.0; e Trace.Compute 0 1.0 3.0; e Trace.Return 0 3.0 4.0 ]
  in
  Alcotest.(check int) "one violation" 1
    (List.length (Trace.precedence_violations bad))

let test_trace_of_schedule () =
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let trace = Trace.of_schedule (Dls.Schedule.of_solved sol) in
  Alcotest.(check bool) "valid" true (Trace.is_valid trace);
  Alcotest.(check (float 1e-9)) "horizon 1" 1.0 trace.Trace.makespan

let test_trace_boundary_semantics () =
  (* Touching intervals are NOT overlapping: a transfer ending exactly
     when the next one starts is legal under the one-port model, and
     with the exact default (eps = 0) it must NOT be reported. *)
  let e k w s f = { Trace.worker = w; kind = k; start = s; finish = f; load = 1.0 } in
  let touching =
    Trace.make
      [
        e Trace.Send 0 0.0 2.0;
        e Trace.Compute 0 2.0 3.0;
        e Trace.Return 0 3.0 4.0;
        e Trace.Send 1 2.0 3.0 (* starts the instant worker 0's send ends *);
        e Trace.Compute 1 3.0 4.0;
        e Trace.Return 1 4.0 5.0 (* starts the instant worker 0's return ends *);
      ]
  in
  Alcotest.(check int) "touching is legal at eps=0" 0
    (List.length (Trace.one_port_violations touching));
  (* A strict crossing, however small, IS a violation at the default. *)
  let crossing =
    Trace.make
      [
        e Trace.Send 0 0.0 2.0;
        e Trace.Compute 0 2.0 3.0;
        e Trace.Return 0 3.0 4.0;
        e Trace.Send 1 (2.0 -. 1e-12) 3.0;
        e Trace.Compute 1 3.0 4.0;
        e Trace.Return 1 4.0 5.0;
      ]
  in
  Alcotest.(check int) "strict crossing caught at eps=0" 1
    (List.length (Trace.one_port_violations crossing));
  (* An explicit positive eps forgives crossings up to that tolerance —
     for noisy float traces only; exact data should use eps = 0. *)
  Alcotest.(check int) "eps forgives small crossing" 0
    (List.length (Trace.one_port_violations ~eps:1e-9 crossing));
  (* Back-to-back send/compute/return on one worker is exact precedence,
     not a violation. *)
  Alcotest.(check int) "touching precedence legal" 0
    (List.length (Trace.precedence_violations touching))

let test_trace_validate_schedule () =
  (* Exact rational schedules route through Check.Validator: the
     solver's own output passes, and a tampered copy is rejected with
     a human-readable message. *)
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let sched = Dls.Schedule.of_solved sol in
  (match Trace.validate_schedule sched with
  | Ok () -> ()
  | Error msgs ->
    Alcotest.failf "solver schedule rejected: %s" (String.concat "; " msgs));
  let entries = Array.copy sched.Dls.Schedule.entries in
  let e = entries.(1) in
  entries.(1) <-
    { e with
      Dls.Schedule.return_ = { e.Dls.Schedule.return_ with Dls.Schedule.start = qq 9 11 }
    };
  let bad = { sched with Dls.Schedule.entries } in
  match Trace.validate_schedule bad with
  | Ok () -> Alcotest.fail "tampered schedule accepted"
  | Error msgs -> Alcotest.(check bool) "has messages" true (msgs <> [])

(* ------------------------------------------------------------------ *)
(* Trace serialization                                                 *)
(* ------------------------------------------------------------------ *)

let test_trace_io_roundtrip () =
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let trace = Star.execute p (Star.plan_of_solved sol) in
  match Trace_io.of_string (Trace_io.to_string trace) with
  | Error e -> Alcotest.fail e
  | Ok trace' ->
    Alcotest.(check int) "same event count"
      (List.length trace.Trace.events)
      (List.length trace'.Trace.events);
    Alcotest.(check (float 0.0)) "same makespan (lossless)" trace.Trace.makespan
      trace'.Trace.makespan;
    Alcotest.(check bool) "still valid" true (Trace.is_valid trace');
    List.iter2
      (fun a b ->
        if a <> b then
          Alcotest.failf "event mismatch: worker %d %s" a.Trace.worker
            (Trace.kind_to_string a.Trace.kind))
      trace.Trace.events trace'.Trace.events

let test_trace_io_errors () =
  List.iter
    (fun text ->
      match Trace_io.of_string text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [
      "1,send,0.0\n";
      "x,send,0.0,1.0,1.0\n";
      "1,teleport,0.0,1.0,1.0\n";
      "1,send,2.0,1.0,1.0\n" (* finish before start *);
      "-1,send,0.0,1.0,1.0\n";
    ]

let test_trace_io_empty () =
  match Trace_io.of_string "worker,kind,start,finish,load\n" with
  | Ok t -> Alcotest.(check int) "no events" 0 (List.length t.Trace.events)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Gantt                                                               *)
(* ------------------------------------------------------------------ *)

let test_gantt_renders () =
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let art = Gantt.render_schedule (Dls.Schedule.of_solved sol) in
  Alcotest.(check bool) "has master lane" true
    (String.length art > 0
    && String.split_on_char '\n' art |> List.exists (fun l ->
           String.length l >= 6 && String.sub l 0 6 = "master"));
  String.iter
    (fun ch ->
      if not (List.mem ch [ '>'; '#'; '<'; '.'; ' '; '|'; '\n' ])
         && not (Char.code ch >= 32 && Char.code ch < 127) then
        Alcotest.fail "non-printable character in gantt")
    art

let test_gantt_empty () =
  let art = Gantt.render (Trace.make []) in
  Alcotest.(check string) "placeholder" "(empty trace)\n" art

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan acc i =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then scan (acc + 1) (i + 1)
    else scan acc (i + 1)
  in
  scan 0 0

let test_gantt_svg_structure () =
  let p = platform_2 () in
  let sol = Dls.Solve.solve_exn ~mode:`Exact (Dls.Scenario.fifo_exn p [| 0; 1 |]) in
  let sched = Dls.Schedule.of_solved sol in
  let svg = Gantt.render_schedule_svg sched in
  Alcotest.(check bool) "opens svg" true
    (String.length svg > 5 && String.sub svg 0 4 = "<svg");
  Alcotest.(check int) "closes svg" 1 (count_substring svg "</svg>");
  (* 2 workers x 3 phases, each drawn once in the worker lane; the 4
     transfers drawn again in the master lane; plus the background. *)
  Alcotest.(check int) "rect count" 11 (count_substring svg "<rect");
  Alcotest.(check int) "send fill" 4 (count_substring svg "#ffffff");
  Alcotest.(check int) "compute fill" 2 (count_substring svg "#555555")

let test_gantt_svg_empty () =
  let svg = Gantt.render_svg (Trace.make []) in
  Alcotest.(check bool) "mentions empty" true
    (count_substring svg "empty trace" = 1 && count_substring svg "</svg>" = 1)

(* ------------------------------------------------------------------ *)
(* Malformed plans and fault-injected execution                        *)
(* ------------------------------------------------------------------ *)

let test_star_rejects_malformed_plans () =
  let p = platform_2 () in
  let expect_error label plan =
    match Star.execute_result p plan with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed plan executed" label
  in
  expect_error "load arity"
    { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0 |] };
  expect_error "NaN load"
    { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; Float.nan |] };
  expect_error "negative load"
    { Star.sigma1 = [| 0; 1 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; -2.0 |] };
  expect_error "index out of range"
    { Star.sigma1 = [| 0; 7 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] };
  expect_error "duplicate enrollment"
    { Star.sigma1 = [| 0; 0 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] };
  (* The historic wedge: loaded worker enrolled for returns but never
     sent data — its results would silently never come back. *)
  expect_error "loaded worker missing from sigma1"
    { Star.sigma1 = [| 0 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] };
  (match
     Star.execute_result p
       { Star.sigma1 = [| 0 |]; sigma2 = [| 0 |]; loads = [| 1.0; 0.0 |] }
   with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "zero-load worker outside the orders must be fine: %s"
      (Dls.Errors.to_string e));
  match
    Star.execute p
      { Star.sigma1 = [| 0; 7 |]; sigma2 = [| 0; 1 |]; loads = [| 1.0; 1.0 |] }
  with
  | exception Dls.Errors.Error _ -> ()
  | _ -> Alcotest.fail "execute should raise the typed error"

let test_engine_run_until () =
  let eng = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at eng ~time:t (fun _ -> fired := t :: !fired))
    [ 1.0; 2.0; 3.0 ];
  let clock = Engine.run_until eng ~horizon:2.0 in
  Alcotest.(check (float 0.0)) "clock at horizon" 2.0 clock;
  Alcotest.(check (list (float 0.0))) "two events fired" [ 2.0; 1.0 ] !fired;
  Alcotest.(check int) "one pending" 1 (Engine.pending eng);
  (match Engine.schedule_at eng ~time:Float.nan (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN time accepted");
  ignore (Engine.run eng);
  Alcotest.(check (list (float 0.0))) "rest fired" [ 3.0; 2.0; 1.0 ] !fired

let test_sim_faults_no_fault_matches_star () =
  let p = platform_2 () in
  let sol = Dls.Fifo.optimal p in
  let plan = Star.plan_of_solved sol in
  let reference = Star.execute p plan in
  match Sim.Faults.execute p Dls.Faults.empty plan with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok trace ->
    Alcotest.(check (float 1e-12))
      "same makespan" reference.Trace.makespan trace.Trace.makespan;
    Alcotest.(check int)
      "same event count"
      (List.length reference.Trace.events)
      (List.length trace.Trace.events)

let test_sim_faults_crash_drops_return () =
  let p = platform_2 () in
  let sol = Dls.Fifo.optimal p in
  let star_plan = Star.plan_of_solved sol in
  let faults =
    Dls.Faults.make_exn [ Dls.Faults.Crash { worker = 0; at = qq 1 10 } ]
  in
  match Sim.Faults.execute p faults star_plan with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok trace ->
    let returns_of w =
      List.filter
        (fun e -> e.Trace.worker = w && e.Trace.kind = Trace.Return)
        trace.Trace.events
    in
    Alcotest.(check int) "crashed worker never returns" 0
      (List.length (returns_of 0));
    Alcotest.(check bool) "survivor still returns" true (returns_of 1 <> []);
    let m = Sim.Faults.metrics ~deadline:1.0 ~total:(Q.to_float sol.Dls.Lp_model.rho) trace in
    Alcotest.(check bool) "lost worker reported" true
      (List.mem_assoc 0 m.Sim.Faults.lateness && List.assoc 0 m.Sim.Faults.lateness = None);
    Alcotest.(check bool) "partial achievement" true
      (m.Sim.Faults.achieved < m.Sim.Faults.total)

let test_sim_faults_decision_trace_valid () =
  let p = platform_2 () in
  let sol = Dls.Fifo.optimal p in
  let load = sol.Dls.Lp_model.rho in
  let original = Dls.Schedule.for_load sol ~load in
  let faults =
    Dls.Faults.make_exn
      [ Dls.Faults.Slowdown { worker = 1; factor = Q.of_int 3; from_ = qq 1 4 } ]
  in
  let outcome = Dls.Replan.respond_exn faults sol ~load in
  match
    Sim.Faults.execute_decision p faults ~original
      ~decision:outcome.Dls.Replan.decision
  with
  | Error e -> Alcotest.fail (Dls.Errors.to_string e)
  | Ok trace ->
    Alcotest.(check bool) "one-port and precedence hold" true
      (Trace.is_valid ~eps:1e-9 trace)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "fifo ties at scale" `Quick test_heap_fifo_ties_at_scale;
          Alcotest.test_case "sizes" `Quick test_heap_sizes;
          prop_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
          prop_engine_fires_in_order;
        ] );
      ( "star",
        [
          Alcotest.test_case "single worker" `Quick test_star_single_worker_exact;
          Alcotest.test_case "matches LP schedule" `Quick test_star_matches_lp_schedule;
          Alcotest.test_case "master serializes" `Quick test_star_master_serializes;
          Alcotest.test_case "return order" `Quick test_star_return_order_respected;
          Alcotest.test_case "skips zero loads" `Quick test_star_skips_zero_loads;
          Alcotest.test_case "noise slows down" `Quick test_star_noise_slows_down;
          Alcotest.test_case "eager returns earlier" `Quick
            test_star_eager_returns_earlier;
          Alcotest.test_case "eager respects sigma2" `Quick
            test_star_eager_respects_sigma2;
          prop_sim_matches_lp;
          prop_sim_never_beats_lp;
          prop_eager_protocol_valid;
        ] );
      ( "chunked",
        [
          Alcotest.test_case "two chunks one worker" `Quick
            test_chunked_two_chunks_one_worker;
          Alcotest.test_case "pipelining" `Quick test_chunked_interleaves_compute;
          Alcotest.test_case "return without send" `Quick
            test_chunked_return_without_send;
          Alcotest.test_case "noise" `Quick test_chunked_noise_applies;
          Alcotest.test_case "latency rejection" `Quick
            test_plan_of_multiround_rejects_latency;
        ] );
      ( "faults",
        [
          Alcotest.test_case "malformed plans rejected" `Quick
            test_star_rejects_malformed_plans;
          Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
          Alcotest.test_case "no fault = star" `Quick
            test_sim_faults_no_fault_matches_star;
          Alcotest.test_case "crash drops return" `Quick
            test_sim_faults_crash_drops_return;
          Alcotest.test_case "decision trace valid" `Quick
            test_sim_faults_decision_trace_valid;
        ] );
      ( "trace",
        [
          Alcotest.test_case "detects overlap" `Quick test_trace_detects_overlap;
          Alcotest.test_case "detects precedence" `Quick test_trace_detects_precedence;
          Alcotest.test_case "of_schedule" `Quick test_trace_of_schedule;
          Alcotest.test_case "boundary semantics" `Quick test_trace_boundary_semantics;
          Alcotest.test_case "validate_schedule" `Quick test_trace_validate_schedule;
        ] );
      ( "trace_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "errors" `Quick test_trace_io_errors;
          Alcotest.test_case "empty" `Quick test_trace_io_empty;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "renders" `Quick test_gantt_renders;
          Alcotest.test_case "empty" `Quick test_gantt_empty;
          Alcotest.test_case "svg structure" `Quick test_gantt_svg_structure;
          Alcotest.test_case "svg empty" `Quick test_gantt_svg_empty;
        ] );
    ]
