(* Benchmark and reproduction harness.

   Running this executable regenerates, as printed tables, every figure
   of the paper's evaluation section (Figures 8-14) plus the Theorem 2
   cross-check and three ablation studies, then times the library's
   building blocks with Bechamel (one Test.make per figure on top of the
   micro-benchmarks).

   Usage: main.exe [--quick] [--skip-micro] [--only ID] [--jobs N]    *)

module Q = Numeric.Rational
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every figure                                     *)
(* ------------------------------------------------------------------ *)

let run_experiments ~quick ~jobs ~only =
  let entries =
    match only with
    | Some id -> (
      match Experiments.Registry.find id with
      | e -> [ e ]
      | exception Not_found ->
        Printf.eprintf "unknown experiment %S; known: %s\n" id
          (String.concat ", " (Experiments.Registry.ids ()));
        exit 2)
    | None -> Experiments.Registry.all
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      List.iter Experiments.Report.print
        (e.Experiments.Registry.run ~quick ~jobs);
      Printf.printf "(%s finished in %.1f s)\n\n%!" e.Experiments.Registry.id
        (Unix.gettimeofday () -. t0))
    entries

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let bench_platform workers =
  let rng = Cluster.Prng.create ~seed:99 in
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
  Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:120 f

let micro_tests ~jobs =
  let open Bechamel in
  let big_a = Q.of_string "123456789123456789/9876543211" in
  let big_b = Q.of_string "987654321987654321/1234567891" in
  let nat_a = Numeric.Natural.of_string (String.make 120 '7') in
  let nat_b = Numeric.Natural.of_string (String.make 60 '3') in
  let huge_a = Numeric.Natural.of_string (String.make 60000 '7') in
  let huge_b = Numeric.Natural.of_string (String.make 60000 '3') in
  let p4 = bench_platform 4 in
  let p8 = bench_platform 8 in
  let p11 = bench_platform 11 in
  let sol11 = Dls.Fifo.optimal p11 in
  let plan = Sim.Star.plan_of_rounded sol11 ~total:1000 in
  let sched = Dls.Schedule.of_solved sol11 in
  let ws = Array.init 11 (fun i -> Q.of_ints (i + 1) 7) in
  [
    Test.make ~name:"rational add" (Staged.stage (fun () -> Q.add big_a big_b));
    Test.make ~name:"rational mul" (Staged.stage (fun () -> Q.mul big_a big_b));
    Test.make ~name:"natural mul 120x60 digits"
      (Staged.stage (fun () -> Numeric.Natural.mul nat_a nat_b));
    Test.make ~name:"natural divmod 120/60 digits"
      (Staged.stage (fun () -> Numeric.Natural.divmod nat_a nat_b));
    Test.make ~name:"natural mul 60000 digits (karatsuba)"
      (Staged.stage (fun () -> Numeric.Natural.mul huge_a huge_b));
    Test.make ~name:"natural mul 60000 digits (schoolbook)"
      (Staged.stage (fun () -> Numeric.Natural.mul_schoolbook huge_a huge_b));
    Test.make ~name:"optimal FIFO LP, 4 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p4));
    Test.make ~name:"optimal FIFO LP, 8 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p8));
    Test.make ~name:"optimal FIFO LP, 11 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p11));
    Test.make ~name:"cached FIFO LP, 11 workers"
      (Staged.stage (fun () ->
           Dls.Solve.solve ~mode:`Cached
             (Dls.Scenario.fifo_exn p11 (Dls.Fifo.order p11))));
    Test.make ~name:"float simplex, same 11-worker LP"
      (Staged.stage
         (let lp =
            Dls.Lp_model.problem Dls.Lp_model.One_port
              (Dls.Scenario.fifo_exn p11 (Dls.Fifo.order p11))
          in
          fun () -> Simplex.Float_solver.solve lp));
    Test.make ~name:"optimal LIFO LP, 11 workers"
      (Staged.stage (fun () -> Dls.Lifo.optimal p11));
    Test.make ~name:"Theorem 2 closed form, 11 workers"
      (Staged.stage (fun () ->
           Dls.Closed_form.fifo_throughput ~c:(Q.of_ints 1 5) ~d:(Q.of_ints 1 10) ws));
    Test.make ~name:"schedule build + validate"
      (Staged.stage (fun () ->
           Dls.Schedule.validate (Dls.Schedule.of_solved sol11)));
    Test.make ~name:"simulate 1000-item campaign"
      (Staged.stage (fun () -> Sim.Star.execute p11 plan));
    Test.make ~name:"gantt render"
      (Staged.stage (fun () -> Sim.Gantt.render_schedule sched));
    Test.make ~name:"brute force best FIFO, 4 workers"
      (Staged.stage (fun () -> Dls.Brute.best_fifo p4));
    Test.make
      ~name:(Printf.sprintf "brute force best FIFO, 4 workers, %d jobs" jobs)
      (Staged.stage (fun () -> Dls.Brute.best_fifo ~jobs p4));
    Test.make ~name:"B&B search best FIFO, 8 workers"
      (Staged.stage (fun () -> Dls.Search.best_fifo p8));
    Test.make
      ~name:(Printf.sprintf "B&B search best FIFO, 8 workers, %d jobs" jobs)
      (Staged.stage (fun () -> Dls.Search.best_fifo ~jobs p8));
    Test.make ~name:"multi-round LP, 4 workers x 4 rounds"
      (Staged.stage (fun () ->
           Dls.Multiround.solve p4
             (Dls.Multiround.config ~rounds:4 (Dls.Fifo.order p4))));
  ]

let figure_tests ~jobs =
  let open Bechamel in
  [
    Test.make ~name:"fig8 harness" (Staged.stage (fun () -> Experiments.Fig8.run ()));
    Test.make ~name:"fig9 harness" (Staged.stage (fun () -> Experiments.Fig9.run ~jobs ()));
    Test.make ~name:"fig10 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig10));
    Test.make ~name:"fig11 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig11));
    Test.make ~name:"fig12 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig12));
    Test.make ~name:"fig13a harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig13a));
    Test.make ~name:"fig13b harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig13b));
    Test.make ~name:"fig14 harness"
      (Staged.stage (fun () -> (Experiments.Fig14.run ~x:1 (), Experiments.Fig14.run ~x:3 ())));
  ]

let run_bechamel ~name tests ~quota_s =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota_s)
      ~stabilize:false ~compaction:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name tests) in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows in
  Printf.printf "== bechamel: %s ==\n" name;
  Printf.printf "  %-45s %14s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (k, ols_result) ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%8.3f  s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%8.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%8.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%8.1f ns" time_ns
      in
      Printf.printf "  %-45s %14s %8s\n" k pretty
        (match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"))
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Part 3: solver-pipeline regression benchmark (BENCH_solvers.json)    *)
(* ------------------------------------------------------------------ *)

(* Exact-baseline vs certified-fast enumeration on deterministic
   platforms, p in {5,6,7} (quick: {4,5}), all three z regimes.  Timing
   is warmup + median-of-k; each measured run starts from a cold LP
   cache so both arms do the same work.  Results land in a
   machine-readable JSON file so later PRs can regress against it. *)

let solver_platform ~p ~regime ~z =
  let rng = Cluster.Prng.create ~seed:(7901 + (97 * p) + regime) in
  let specs =
    List.init p (fun _ ->
        let c = Q.of_ints (Cluster.Prng.int_range rng ~lo:2 ~hi:9) 4 in
        let w = Q.of_ints (Cluster.Prng.int_range rng ~lo:4 ~hi:20) 2 in
        (c, w))
  in
  Dls.Platform.with_return_ratio ~z specs

type solver_arm = {
  median_s : float;
  rho : Q.t;
  lps : int;
  cache_hits : int;
  float_wins : int;
  warm_wins : int;
  fallbacks : int;
  pruned : int;
  float_pivots : int;
  exact_pivots : int;
}

let median samples =
  let s = Array.copy samples in
  Array.sort compare s;
  s.(Array.length s / 2)

(* [f] must be a pure solve; the cache is reset around it here so every
   run is cold. *)
let run_solver_arm ~k ~warmup f =
  let once () =
    Dls.Lp_model.reset_cache ();
    f ()
  in
  for _ = 1 to warmup do
    ignore (once ())
  done;
  let samples =
    Array.init k (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (once ());
        Unix.gettimeofday () -. t0)
  in
  (* One more instrumented run for the counters (the run is
     deterministic, so it does exactly what the timed ones did). *)
  Dls.Lp_model.reset_pipeline_stats ();
  let sol = once () in
  let ps = Dls.Lp_model.pipeline_stats () in
  let cs = Dls.Lp_model.cache_stats () in
  Dls.Lp_model.reset_pipeline_stats ();
  {
    median_s = median samples;
    rho = sol.Dls.Lp_model.rho;
    lps = cs.Parallel.Lru.misses;
    cache_hits = cs.Parallel.Lru.hits;
    float_wins = ps.Dls.Lp_model.float_wins;
    warm_wins = ps.Dls.Lp_model.warm_wins;
    fallbacks = ps.Dls.Lp_model.exact_fallbacks;
    pruned = ps.Dls.Lp_model.pruned;
    float_pivots = ps.Dls.Lp_model.float_pivots;
    exact_pivots = ps.Dls.Lp_model.exact_pivots;
  }

let solver_arm_json a =
  Printf.sprintf
    "{\"median_s\": %.6f, \"lps\": %d, \"cache_hits\": %d, \"float_wins\": %d, \
     \"warm_wins\": %d, \"exact_fallbacks\": %d, \"pruned\": %d, \
     \"float_pivots\": %d, \"exact_pivots\": %d}"
    a.median_s a.lps a.cache_hits a.float_wins a.warm_wins a.fallbacks a.pruned
    a.float_pivots a.exact_pivots

let run_solver_bench ~quick ~k ~warmup ~json_path ~gate =
  let ps = if quick then [ 4; 5 ] else [ 5; 6; 7 ] in
  let regimes = [ ("z<1", Q.of_ints 1 2); ("z=1", Q.one); ("z>1", Q.of_int 2) ] in
  Printf.printf "== solver pipeline: exact baseline vs certified fast ==\n";
  Printf.printf "  (best_fifo over all p! orders; median of %d after %d warmup)\n"
    k warmup;
  Printf.printf "  %-4s %-4s %12s %12s %9s %9s %9s %9s\n" "p" "z" "exact" "fast"
    "speedup" "fallback%" "pruned" "warm";
  let points = ref [] in
  List.iter
    (fun p ->
      List.iteri
        (fun ri (rname, z) ->
          let platform = solver_platform ~p ~regime:ri ~z in
          let exact =
            run_solver_arm ~k ~warmup (fun () ->
                Dls.Brute.best_fifo ~fast:false ~prune:false platform)
          in
          let fast =
            run_solver_arm ~k ~warmup (fun () -> Dls.Brute.best_fifo platform)
          in
          if not (Q.equal exact.rho fast.rho) then begin
            Printf.eprintf
              "FATAL: fast pipeline diverged from exact baseline (p=%d, %s)\n"
              p rname;
            exit 3
          end;
          let speedup = exact.median_s /. Float.max 1e-9 fast.median_s in
          let solves = fast.float_wins + fast.warm_wins + fast.fallbacks in
          Printf.printf
            "  %-4d %-4s %9.1f ms %9.1f ms %8.2fx %8.1f%% %9d %9d\n%!" p rname
            (exact.median_s *. 1e3) (fast.median_s *. 1e3) speedup
            (100.0 *. float fast.fallbacks /. float (max 1 solves))
            fast.pruned fast.warm_wins;
          points :=
            Printf.sprintf
              "    {\"case\": \"best_fifo\", \"p\": %d, \"regime\": \"%s\", \
               \"speedup\": %.3f,\n\
              \     \"exact\": %s,\n\
              \     \"fast\": %s}"
              p rname speedup (solver_arm_json exact) (solver_arm_json fast)
            :: !points)
        regimes)
    ps;
  let gate_pass = ref true in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-solvers/1\",\n\
      \  \"k\": %d,\n\
      \  \"warmup\": %d,\n\
      \  \"quick\": %b,\n\
      \  \"points\": [\n%s\n  ]\n}\n"
      k warmup quick
      (String.concat ",\n" (List.rev !points))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  if gate then begin
    (* Regression gate: remeasure the smallest case (the most stable one
       on shared CI hardware) and require the fast pipeline to win. *)
    let p = List.hd ps in
    let platform = solver_platform ~p ~regime:0 ~z:(Q.of_ints 1 2) in
    let exact =
      run_solver_arm ~k ~warmup (fun () ->
          Dls.Brute.best_fifo ~fast:false ~prune:false platform)
    in
    let fast =
      run_solver_arm ~k ~warmup (fun () -> Dls.Brute.best_fifo platform)
    in
    if fast.median_s > exact.median_s then begin
      Printf.eprintf
        "GATE FAILED: fast pipeline slower than exact baseline on smoke case \
         (p=%d: %.1f ms vs %.1f ms)\n"
        p (fast.median_s *. 1e3) (exact.median_s *. 1e3);
      gate_pass := false
    end
    else
      Printf.printf "  gate: fast %.1f ms <= exact %.1f ms on p=%d smoke case\n%!"
        (fast.median_s *. 1e3) (exact.median_s *. 1e3) p
  end;
  !gate_pass

(* ------------------------------------------------------------------ *)
(* Part 4: robustness benchmark (BENCH_robustness.json)                *)
(* ------------------------------------------------------------------ *)

(* Recovered vs unrecovered completion under seeded fault plans: the
   fault-case generator of [Check.Fuzz] drives the online re-planner
   across a severity sweep and all three return-ratio regimes, and we
   record how much of the campaign the no-recovery continuation lands by
   the deadline versus the hedged decision of [Dls.Replan.respond].
   Everything depends only on the seed, so the JSON is reproducible. *)

module R = Dls.Replan

type robustness_cell = {
  severity : float;
  regime : string;
  r_cases : int;
  unrecovered : float;  (** mean fraction of load done by deadline, no recovery *)
  recovered : float;  (** same, under the chosen decision *)
  unrecovered_tp : float;  (** mean throughput (load/deadline) by deadline *)
  recovered_tp : float;
  recoveries : int;  (** cases where a recovery schedule was spliced *)
}

let robustness_cell ~seed ~severity ~cases regime =
  let rname = Check.Fuzz.regime_to_string regime in
  let sum_u = ref 0.0 and sum_r = ref 0.0 in
  let sum_utp = ref 0.0 and sum_rtp = ref 0.0 in
  let recoveries = ref 0 in
  for i = 0 to cases - 1 do
    let platform, plan, load = Check.Fuzz.fault_case ~seed ~severity regime i in
    let sol = Dls.Fifo.optimal platform in
    let o = R.respond_exn plan sol ~load in
    let frac (r : R.report) = Q.to_float (Q.div r.R.done_by_deadline r.R.total) in
    let tp (r : R.report) =
      Q.to_float (Q.div r.R.done_by_deadline r.R.deadline)
    in
    (* Sanity: the hedged decision must never lose to the baseline. *)
    if Q.sign (Q.sub o.R.achieved.R.done_by_deadline
                 o.R.baseline.R.done_by_deadline) < 0 then begin
      Printf.eprintf
        "FATAL: re-planner lost to no-recovery (severity %.2f, %s, case %d)\n"
        severity rname i;
      exit 3
    end;
    sum_u := !sum_u +. frac o.R.baseline;
    sum_r := !sum_r +. frac o.R.achieved;
    sum_utp := !sum_utp +. tp o.R.baseline;
    sum_rtp := !sum_rtp +. tp o.R.achieved;
    match o.R.decision with
    | R.Recover _ -> incr recoveries
    | R.Keep_original -> ()
  done;
  let n = float (max 1 cases) in
  {
    severity;
    regime = rname;
    r_cases = cases;
    unrecovered = !sum_u /. n;
    recovered = !sum_r /. n;
    unrecovered_tp = !sum_utp /. n;
    recovered_tp = !sum_rtp /. n;
    recoveries = !recoveries;
  }

let robustness_cell_json c =
  Printf.sprintf
    "    {\"severity\": %.2f, \"regime\": \"%s\", \"cases\": %d,\n\
    \     \"unrecovered_frac\": %.6f, \"recovered_frac\": %.6f,\n\
    \     \"unrecovered_throughput\": %.6f, \"recovered_throughput\": %.6f,\n\
    \     \"recoveries\": %d}"
    c.severity c.regime c.r_cases c.unrecovered c.recovered c.unrecovered_tp
    c.recovered_tp c.recoveries

let run_robustness_bench ~quick ~cases ~seed ~json_path =
  let severities = [ 0.25; 0.5; 0.75; 1.0 ] in
  let cases = if quick then min cases 6 else cases in
  Printf.printf "== robustness: recovered vs unrecovered under faults ==\n";
  Printf.printf
    "  (%d seeded fault cases per severity x regime, seed %d; fractions are\n\
    \   mean load completed by the fault-free deadline)\n"
    cases seed;
  Printf.printf "  %-9s %-4s %12s %12s %10s %10s\n" "severity" "z" "unrecovered"
    "recovered" "gain" "recovered%";
  let cells =
    List.concat_map
      (fun severity ->
        List.map
          (fun regime ->
            let c = robustness_cell ~seed ~severity ~cases regime in
            Printf.printf "  %-9.2f %-4s %11.1f%% %11.1f%% %9.1f%% %9.0f%%\n%!"
              c.severity c.regime (100.0 *. c.unrecovered)
              (100.0 *. c.recovered)
              (100.0 *. (c.recovered -. c.unrecovered))
              (100.0 *. float c.recoveries /. float (max 1 c.r_cases));
            c)
          Check.Fuzz.all_regimes)
      severities
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-robustness/1\",\n\
      \  \"seed\": %d,\n\
      \  \"cases_per_cell\": %d,\n\
      \  \"quick\": %b,\n\
      \  \"points\": [\n%s\n  ]\n}\n"
      seed cases quick
      (String.concat ",\n" (List.map robustness_cell_json cells))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path

(* ------------------------------------------------------------------ *)
(* Part 5: service throughput benchmark (BENCH_service.json)           *)
(* ------------------------------------------------------------------ *)

(* Two arms over the same deterministic duplicate-heavy request stream
   (Service.Loadgen, small [distinct]):

     baseline  dedup=false — every request evaluated independently,
               no single-flight batching, no LP cache;
     dedup     dedup=true  — the production configuration.

   The acceptance criterion is that the dedup arm's served-request
   throughput beats the baseline, and that served solve responses stay
   bit-identical to a direct Lp_model.solve on the same scenario. *)

type service_arm = {
  v_label : string;
  v_rps : float;
  v_wall_s : float;
  v_ok : int;
  v_served : int;
  v_collapsed : int;
  v_cache_hits : int;
  v_cache_misses : int;
  v_p50_us : int;
  v_p99_us : int;
}

let run_service_arm ~label ~dedup ~jobs ~requests ~connections ~distinct ~seed =
  Dls.Lp_model.reset_cache ();
  let path = Filename.temp_file "dls-bench-service" ".sock" in
  Sys.remove path;
  let cfg =
    {
      (Service.Server.default_config (Service.Server.Unix_socket path)) with
      Service.Server.jobs;
      queue_capacity = max 64 connections;
      max_batch = 32;
      dedup;
    }
  in
  let server =
    match Service.Server.start cfg with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "bench: service start failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let outcome =
    match
      Service.Loadgen.run (Service.Server.address server) ~connections ~requests
        ~seed ~distinct ()
    with
    | Ok o -> o
    | Error e ->
      Printf.eprintf "bench: loadgen failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let stats = Service.Server.stats server in
  Service.Server.stop server;
  if outcome.Service.Loadgen.ok <> requests then begin
    Printf.eprintf
      "bench: service arm %s dropped requests (ok=%d/%d overloaded=%d \
       timeouts=%d failed=%d)\n"
      label outcome.Service.Loadgen.ok requests
      outcome.Service.Loadgen.overloaded outcome.Service.Loadgen.timeouts
      outcome.Service.Loadgen.failed;
    exit 2
  end;
  {
    v_label = label;
    v_rps = outcome.Service.Loadgen.rps;
    v_wall_s = outcome.Service.Loadgen.wall_s;
    v_ok = outcome.Service.Loadgen.ok;
    v_served = stats.Service.Protocol.served;
    v_collapsed = stats.Service.Protocol.collapsed;
    v_cache_hits = stats.Service.Protocol.cache_hits;
    v_cache_misses = stats.Service.Protocol.cache_misses;
    v_p50_us = stats.Service.Protocol.p50_us;
    v_p99_us = stats.Service.Protocol.p99_us;
  }

(* A served solve must be byte-for-byte the direct solver answer. *)
let check_service_bit_identity ~jobs ~seed ~distinct =
  Dls.Lp_model.reset_cache ();
  let path = Filename.temp_file "dls-bench-service" ".sock" in
  Sys.remove path;
  let cfg =
    {
      (Service.Server.default_config (Service.Server.Unix_socket path)) with
      Service.Server.jobs;
    }
  in
  let server =
    match Service.Server.start cfg with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "bench: service start failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let rec first_solve i =
    if i >= 1000 then begin
      Printf.eprintf "bench: no solve request in the stream\n";
      exit 2
    end
    else
      match Service.Loadgen.request ~seed ~distinct i with
      | Service.Protocol.Solve r -> r
      | _ -> first_solve (i + 1)
  in
  let r = first_solve 0 in
  let reply =
    match
      Service.Client.with_client (Service.Server.address server) (fun cl ->
          Service.Client.request cl (Service.Protocol.Solve r))
    with
    | Ok (Ok resp) -> resp
    | Ok (Error e) | Error e ->
      Printf.eprintf "bench: client failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  Service.Server.stop server;
  let p = r.Service.Protocol.s_platform in
  let scenario =
    match r.Service.Protocol.s_order with
    | Service.Protocol.Fifo -> Dls.Scenario.fifo_exn p (Dls.Fifo.order p)
    | Service.Protocol.Lifo -> Dls.Scenario.lifo_exn p (Dls.Lifo.order p)
  in
  let direct =
    Dls.Solve.solve_exn ~mode:`Exact ~model:r.Service.Protocol.s_model scenario
  in
  match reply with
  | Service.Protocol.Ok_solve s ->
    let q_eq a b = Q.to_string a = Q.to_string b in
    let identical =
      q_eq s.Service.Protocol.rho direct.Dls.Lp_model.rho
      && Array.length s.Service.Protocol.alpha
         = Array.length direct.Dls.Lp_model.alpha
      && Array.for_all2 q_eq s.Service.Protocol.alpha direct.Dls.Lp_model.alpha
      && Array.for_all2 q_eq s.Service.Protocol.idle direct.Dls.Lp_model.idle
    in
    if not identical then begin
      Printf.eprintf "bench: service response differs from direct solve\n";
      exit 3
    end
  | other ->
    Printf.eprintf "bench: expected ok solve, got %s\n"
      (Service.Protocol.response_to_string other);
    exit 3

let service_arm_json a =
  Printf.sprintf
    "    { \"label\": %S, \"throughput_rps\": %.1f, \"wall_s\": %.4f, \"ok\": \
     %d, \"served\": %d, \"collapsed\": %d, \"cache_hits\": %d, \
     \"cache_misses\": %d, \"p50_us\": %d, \"p99_us\": %d }"
    a.v_label a.v_rps a.v_wall_s a.v_ok a.v_served a.v_collapsed a.v_cache_hits
    a.v_cache_misses a.v_p50_us a.v_p99_us

let run_service_bench ~quick ~jobs ~json_path ~gate =
  let requests, connections, distinct =
    if quick then (160, 4, 5) else (600, 8, 6)
  in
  let seed = 2026 in
  Printf.printf
    "=== service throughput (single-flight batching + LP cache) ===\n\
     (%d requests, %d connections, %d distinct scenarios, jobs=%d)\n\n%!"
    requests connections distinct jobs;
  check_service_bit_identity ~jobs ~seed ~distinct;
  Printf.printf "  bit-identity vs direct solve: ok\n%!";
  let baseline =
    run_service_arm ~label:"no-dedup baseline" ~dedup:false ~jobs ~requests
      ~connections ~distinct ~seed
  in
  let dedup =
    run_service_arm ~label:"dedup" ~dedup:true ~jobs ~requests ~connections
      ~distinct ~seed
  in
  let speedup = dedup.v_rps /. Float.max 1e-9 baseline.v_rps in
  List.iter
    (fun a ->
      Printf.printf
        "  %-18s  %8.1f req/s  wall %.3fs  collapsed %d  cache %d/%d  p50 \
         %dus  p99 %dus\n%!"
        a.v_label a.v_rps a.v_wall_s a.v_collapsed a.v_cache_hits
        a.v_cache_misses a.v_p50_us a.v_p99_us)
    [ baseline; dedup ];
  Printf.printf "  dedup speedup: %.2fx\n%!" speedup;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-service/1\",\n\
      \  \"quick\": %b,\n\
      \  \"seed\": %d,\n\
      \  \"requests\": %d,\n\
      \  \"connections\": %d,\n\
      \  \"distinct\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"bit_identical\": true,\n\
      \  \"speedup\": %.2f,\n\
      \  \"arms\": [\n%s\n  ]\n\
       }\n"
      quick seed requests connections distinct jobs speedup
      (String.concat ",\n" (List.map service_arm_json [ baseline; dedup ]))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  let gate_pass = dedup.v_rps > baseline.v_rps in
  if gate && not gate_pass then
    Printf.printf
      "  gate: FAIL - dedup %.1f req/s <= baseline %.1f req/s\n%!" dedup.v_rps
      baseline.v_rps
  else if gate then
    Printf.printf "  gate: dedup %.1f req/s > baseline %.1f req/s\n%!"
      dedup.v_rps baseline.v_rps;
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Part 6: multi-load steady state vs back-to-back (BENCH_multiload.json) *)
(* ------------------------------------------------------------------ *)

(* Deterministic platforms and a fixed two-load mix: the point is not
   statistics but the structural claim that the steady-state LP
   overlaps returns of one load with sends of the next, which the
   back-to-back baseline cannot.  All three z-regimes, two platform
   sizes; the batch LP on H zero-release copies sits between the two
   (capacity squeeze), pinning the numbers down. *)

type multiload_cell = {
  ml_p : int;
  ml_z : string;
  ml_h : int;
  ml_period : Q.t;
  ml_naive : Q.t;  (* back-to-back time for one mix *)
  ml_batch : Q.t;  (* batch makespan for H copies, best depth <= 2 *)
  ml_steady_tp : float;  (* load units per time unit *)
  ml_naive_tp : float;
  ml_batch_tp : float;
  ml_improvement : float;  (* steady over naive *)
}

let multiload_cell ~h p (ml_z, z) =
  let cs = [| Q.one; Q.of_ints 1 2; Q.of_int 2; Q.of_ints 3 4 |] in
  let ws = [| Q.of_int 2; Q.of_int 3; Q.of_ints 3 2; Q.of_ints 5 2 |] in
  let platform =
    Dls.Platform.with_return_ratio ~z
      (List.init p (fun i -> (cs.(i), ws.(i))))
  in
  let workload =
    Dls.Workload.make_exn
      [
        Dls.Workload.load ~size:(Q.of_int 5) ();
        Dls.Workload.load ~size:(Q.of_int 3) ();
      ]
  in
  let total = Dls.Workload.total_size workload in
  let steady = Dls.Steady_state.solve_exn platform workload in
  let naive =
    Dls.Errors.get_exn (Dls.Steady_state.naive_makespan platform workload)
  in
  let batch =
    Dls.Errors.get_exn
      (Dls.Steady_state.solve_batch_best ~max_depth:2 platform
         (Dls.Workload.repeat h workload))
  in
  let tp time = Q.to_float (Q.div total time) in
  let period = steady.Dls.Steady_state.period in
  {
    ml_p = p;
    ml_z;
    ml_h = h;
    ml_period = period;
    ml_naive = naive;
    ml_batch = batch.Dls.Steady_state.makespan;
    ml_steady_tp = tp period;
    ml_naive_tp = tp naive;
    ml_batch_tp =
      Q.to_float
        (Q.div (Q.mul (Q.of_int h) total) batch.Dls.Steady_state.makespan);
    ml_improvement = Q.to_float (Q.div naive period);
  }

let multiload_cell_json c =
  Printf.sprintf
    "    { \"p\": %d, \"z\": %S, \"h\": %d, \"period\": %S, \"naive\": %S, \
     \"batch_makespan\": %S, \"steady_tp\": %.6f, \"naive_tp\": %.6f, \
     \"batch_tp\": %.6f, \"improvement\": %.4f }"
    c.ml_p c.ml_z c.ml_h (Q.to_string c.ml_period) (Q.to_string c.ml_naive)
    (Q.to_string c.ml_batch) c.ml_steady_tp c.ml_naive_tp c.ml_batch_tp
    c.ml_improvement

let run_multiload_bench ~quick ~json_path ~gate =
  let h = if quick then 2 else 3 in
  let ps = if quick then [ 3 ] else [ 3; 4 ] in
  let regimes = [ ("1/2", Q.of_ints 1 2); ("1", Q.one); ("2", Q.of_int 2) ] in
  Printf.printf
    "=== multi-load: steady state vs back-to-back (mix 5+3, H=%d) ===\n\n%!" h;
  let cells =
    List.concat_map
      (fun p -> List.map (multiload_cell ~h p) regimes)
      ps
  in
  Printf.printf "  %-3s %-4s %12s %12s %12s %11s\n%!" "p" "z" "steady tp"
    "naive tp" "batch tp" "improvement";
  List.iter
    (fun c ->
      Printf.printf "  %-3d %-4s %12.4f %12.4f %12.4f %10.2fx\n%!" c.ml_p
        c.ml_z c.ml_steady_tp c.ml_naive_tp c.ml_batch_tp c.ml_improvement)
    cells;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-multiload/1\",\n\
      \  \"quick\": %b,\n\
      \  \"mix\": \"5:0,3:0\",\n\
      \  \"h\": %d,\n\
      \  \"cells\": [\n%s\n  ]\n\
       }\n"
      quick h
      (String.concat ",\n" (List.map multiload_cell_json cells))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  let gate_pass = List.exists (fun c -> c.ml_improvement > 1.0) cells in
  if gate && not gate_pass then
    Printf.printf
      "  gate: FAIL - steady state never beats back-to-back on any regime\n%!"
  else if gate then begin
    let best =
      List.fold_left (fun acc c -> Float.max acc c.ml_improvement) 0. cells
    in
    Printf.printf "  gate: steady state beats back-to-back (best %.2fx)\n%!"
      best
  end;
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Part 7: incremental re-solve benchmark (BENCH_resolve.json)         *)
(* ------------------------------------------------------------------ *)

(* A stream of near-duplicate requests: one base platform per
   (p, regime) cell, then [n] single-worker nudges of it.  The cold arm
   answers every request with the certified fast pipeline from scratch;
   the warm arm routes the same stream through the solve cache, so each
   nudge can be repaired from the nearest already-solved neighbour's
   optimal basis (certify-first, then bounded dual simplex — see
   [Dls.Lp_model.solve_from_neighbor]).  Answers are bit-identical by
   construction and re-checked here; the interesting outputs are the
   stream times, the repair hit rate and the pivots per repair. *)

type resolve_cell = {
  rs_p : int;
  rs_z : string;
  rs_n : int;  (* nudged requests after the base *)
  rs_cold_s : float;  (* median stream time, fast pipeline from scratch *)
  rs_warm_s : float;  (* median stream time, cached + warm repair *)
  rs_probes : int;
  rs_wins : int;
  rs_fallbacks : int;
  rs_pivots : int;
}

(* Generic-position variant of [solver_platform]: link speeds get an
   index-dependent offset making them pairwise distinct.  Two workers
   with equal [c] (hence equal bus cost [c + d]) tie exactly — the LP
   then has alternate optima, no basis certifies, and every warm repair
   falls back, so the bench would measure only the fallback path. *)
let resolve_platform ~p ~regime ~z =
  let rng = Cluster.Prng.create ~seed:(7901 + (97 * p) + regime) in
  let specs =
    List.init p (fun i ->
        let c =
          Q.of_ints ((10 * Cluster.Prng.int_range rng ~lo:2 ~hi:9) + i) 40
        in
        let w = Q.of_ints (Cluster.Prng.int_range rng ~lo:4 ~hi:20) 2 in
        (c, w))
  in
  Dls.Platform.with_return_ratio ~z specs

let resolve_stream ~p ~regime ~z ~n =
  let platform = resolve_platform ~p ~regime ~z in
  let base =
    Dls.Scenario.fifo_exn platform (Dls.Fifo.order platform)
  in
  let variants =
    List.init n (fun i ->
        let rng = Cluster.Prng.create ~seed:(3301 + (131 * i) + (17 * p) + regime) in
        let worker = Cluster.Prng.int_range rng ~lo:0 ~hi:(p - 1) in
        let factor = Q.of_ints (Cluster.Prng.int_range rng ~lo:8 ~hi:12) 10 in
        let change =
          if i mod 2 = 0 then Dls.Delta.Scale_comp { worker; factor }
          else Dls.Delta.Scale_comm { worker; factor }
        in
        Dls.Delta.apply_scenario_exn base [ change ])
  in
  base :: variants

let resolve_cell ~k ~warmup ~n p (rs_z, z) ~regime =
  let stream = resolve_stream ~p ~regime ~z ~n in
  let cold_once () =
    List.map (fun s -> Dls.Solve.solve_exn ~mode:`Fast s) stream
  in
  let warm_once () =
    Dls.Lp_model.reset_cache ();
    List.map (fun s -> Dls.Solve.solve_exn ~mode:`Cached s) stream
  in
  let time once =
    for _ = 1 to warmup do
      ignore (once ())
    done;
    median
      (Array.init k (fun _ ->
           let t0 = Unix.gettimeofday () in
           ignore (once ());
           Unix.gettimeofday () -. t0))
  in
  let cold_s = time cold_once in
  let warm_s = time warm_once in
  (* One instrumented pass for the repair counters and the bit-identity
     check (both arms are deterministic, so it repeats the timed work). *)
  Dls.Lp_model.reset_resolve_stats ();
  let warm_sols = warm_once () in
  let rs = Dls.Lp_model.resolve_stats () in
  List.iter2
    (fun (a : Dls.Lp_model.solved) (b : Dls.Lp_model.solved) ->
      if
        (not (Q.equal a.Dls.Lp_model.rho b.Dls.Lp_model.rho))
        || not (Array.for_all2 Q.equal a.Dls.Lp_model.alpha b.Dls.Lp_model.alpha)
      then begin
        Printf.eprintf
          "FATAL: warm-repair answer diverged from the fast pipeline (p=%d, %s)\n"
          p rs_z;
        exit 3
      end)
    (cold_once ()) warm_sols;
  {
    rs_p = p;
    rs_z;
    rs_n = n;
    rs_cold_s = cold_s;
    rs_warm_s = warm_s;
    rs_probes = rs.Dls.Lp_model.probes;
    rs_wins = rs.Dls.Lp_model.repair_wins;
    rs_fallbacks = rs.Dls.Lp_model.repair_fallbacks;
    rs_pivots = rs.Dls.Lp_model.repair_pivots;
  }

let resolve_cell_json c =
  Printf.sprintf
    "    { \"p\": %d, \"z\": %S, \"n\": %d, \"cold_s\": %.6f, \"warm_s\": %.6f, \
     \"speedup\": %.3f, \"probes\": %d, \"repair_wins\": %d, \
     \"repair_fallbacks\": %d, \"repair_pivots\": %d, \"hit_rate\": %.3f, \
     \"pivots_per_win\": %.2f }"
    c.rs_p c.rs_z c.rs_n c.rs_cold_s c.rs_warm_s
    (c.rs_cold_s /. Float.max 1e-9 c.rs_warm_s)
    c.rs_probes c.rs_wins c.rs_fallbacks c.rs_pivots
    (float c.rs_wins /. float (max 1 c.rs_n))
    (float c.rs_pivots /. float (max 1 c.rs_wins))

let run_resolve_bench ~quick ~k ~warmup ~json_path ~gate =
  let ps = if quick then [ 5 ] else [ 6; 10 ] in
  let n = if quick then 20 else 40 in
  let regimes = [ ("z<1", Q.of_ints 1 2); ("z=1", Q.one); ("z>1", Q.of_int 2) ] in
  Printf.printf
    "== incremental re-solve: cached warm repair vs fast-from-scratch ==\n";
  Printf.printf
    "  (base + %d nudged requests per cell; median of %d after %d warmup)\n" n k
    warmup;
  Printf.printf "  %-4s %-4s %12s %12s %9s %9s %9s %9s\n" "p" "z" "cold" "warm"
    "speedup" "hit%" "pivots" "fallback";
  let cells =
    List.concat_map
      (fun p ->
        List.mapi
          (fun regime rz -> resolve_cell ~k ~warmup ~n p rz ~regime)
          regimes)
      ps
  in
  List.iter
    (fun c ->
      Printf.printf "  %-4d %-4s %9.1f ms %9.1f ms %8.2fx %8.1f%% %9d %9d\n%!"
        c.rs_p c.rs_z (c.rs_cold_s *. 1e3) (c.rs_warm_s *. 1e3)
        (c.rs_cold_s /. Float.max 1e-9 c.rs_warm_s)
        (100.0 *. float c.rs_wins /. float (max 1 c.rs_n))
        c.rs_pivots c.rs_fallbacks)
    cells;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-resolve/1\",\n\
      \  \"k\": %d,\n\
      \  \"warmup\": %d,\n\
      \  \"quick\": %b,\n\
      \  \"cells\": [\n%s\n  ]\n\
       }\n"
      k warmup quick
      (String.concat ",\n" (List.map resolve_cell_json cells))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  (* Gate: across the whole benchmark the warm-repair stream must not be
     slower than answering every request from scratch (per-cell numbers
     are too noisy on shared CI hardware; the aggregate is stable). *)
  let cold_total = List.fold_left (fun a c -> a +. c.rs_cold_s) 0. cells in
  let warm_total = List.fold_left (fun a c -> a +. c.rs_warm_s) 0. cells in
  let gate_pass = warm_total <= cold_total in
  if gate && not gate_pass then
    Printf.eprintf
      "GATE FAILED: warm repair slower than from-scratch overall (%.1f ms vs \
       %.1f ms)\n"
      (warm_total *. 1e3) (cold_total *. 1e3)
  else if gate then
    Printf.printf "  gate: warm %.1f ms <= cold %.1f ms overall\n%!"
      (warm_total *. 1e3) (cold_total *. 1e3);
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Part 8: pool scaling benchmark (BENCH_pool.json)                    *)
(* ------------------------------------------------------------------ *)

(* Two halves, matching the two halves of the work-stealing change:

   1. claim-path scaling — [Parallel.Pool] (Chase-Lev deques) against
      [Parallel.Mutex_pool] (the PR-1 pool it replaced) on the same map
      with chunk=1, so every task is a separate claim and the claim
      path dominates.  Cells are jobs in {1,2,4,8} x {uniform, skewed}
      per-task cost, and the ws result is checked bit-identical to the
      sequential map before timing.

   2. dispatch scaling — the server with [dispatchers] 4 vs 1 on the
      skewed loadgen mix (the traffic shape sharding exists for), same
      stream, same pool size, artificial per-evaluation delay so round
      concurrency rather than LP time is what's measured. *)

type pool_cell = {
  pl_jobs : int;
  pl_mix : string;
  pl_tasks : int;
  pl_ws_s : float;
  pl_mutex_s : float;
}

(* Integer spin whose result feeds the output array: nothing for the
   compiler to hoist or dead-code away. *)
let pool_spin c x =
  let acc = ref x in
  for i = 1 to c do
    acc := Sys.opaque_identity ((!acc * 31) + i)
  done;
  !acc

(* Uniform: every task costs the same.  Skewed: a hot head of heavy
   tasks over a cheap tail (same total work order of magnitude), the
   shape that strands a static partition and makes idle workers steal. *)
let pool_costs ~mix ~tasks =
  match mix with
  | "uniform" -> Array.make tasks 120
  | _ -> Array.init tasks (fun i -> if i mod 64 = 0 then 4_000 else 60)

let pool_cell ~k ~warmup ~tasks ~mix jobs =
  let costs = pool_costs ~mix ~tasks in
  let input = Array.init tasks (fun i -> i) in
  let f i = pool_spin costs.(i) i in
  let expected = Array.map f input in
  (* Individual maps are a couple of ms, so repetitions are cheap.  The
     arms are interleaved rep by rep so a burst of scheduler noise lands
     on both, and each arm reports its best rep: on a shared box the
     minimum estimates intrinsic claim cost, which is what the two pools
     differ in — medians still wobble when a noise burst outlasts the
     whole cell. *)
  let reps = max 16 (4 * k) and warmup = max 2 warmup in
  let time_once map =
    let t0 = Parallel.Clock.now () in
    ignore (map f input);
    Parallel.Clock.elapsed_s ~since:t0
  in
  let ws_s, mutex_s =
    Parallel.Pool.with_pool ~jobs (fun ws ->
        Parallel.Mutex_pool.with_pool ~jobs (fun mx ->
            let ws_map f a = Parallel.Pool.map ~chunk:1 ws f a in
            let mx_map f a = Parallel.Mutex_pool.map ~chunk:1 mx f a in
            let got = ws_map f input in
            if got <> expected then begin
              Printf.eprintf
                "bench: ws pool map differs from sequential (jobs=%d mix=%s)\n"
                jobs mix;
              exit 3
            end;
            for _ = 1 to warmup do
              ignore (ws_map f input);
              ignore (mx_map f input)
            done;
            let ws_t = Array.make reps 0. and mx_t = Array.make reps 0. in
            for r = 0 to reps - 1 do
              ws_t.(r) <- time_once ws_map;
              mx_t.(r) <- time_once mx_map
            done;
            let best = Array.fold_left Float.min infinity in
            (best ws_t, best mx_t)))
  in
  { pl_jobs = jobs; pl_mix = mix; pl_tasks = tasks; pl_ws_s = ws_s;
    pl_mutex_s = mutex_s }

let pool_cell_json c =
  Printf.sprintf
    "    { \"jobs\": %d, \"mix\": %S, \"tasks\": %d, \"ws_s\": %.6f, \
     \"mutex_s\": %.6f, \"speedup\": %.2f }"
    c.pl_jobs c.pl_mix c.pl_tasks c.pl_ws_s c.pl_mutex_s
    (c.pl_mutex_s /. Float.max 1e-9 c.pl_ws_s)

type dispatch_arm = {
  dp_dispatchers : int;
  dp_rps : float;
  dp_ok : int;
  dp_steals : int;
}

let run_dispatch_arm ~k ~jobs ~dispatchers ~requests ~connections =
  Dls.Lp_model.reset_cache ();
  let path = Filename.temp_file "dls-bench-pool" ".sock" in
  Sys.remove path;
  let cfg =
    {
      (Service.Server.default_config (Service.Server.Unix_socket path)) with
      Service.Server.jobs;
      dispatchers;
      queue_capacity = max 64 connections;
      max_batch = 8;
      (* Per-evaluation sleep makes the round latency uniform across
         arms, so the measurement isolates how many dispatch rounds can
         be in flight — the thing sharding changes. *)
      worker_delay = 0.002;
    }
  in
  let server =
    match Service.Server.start cfg with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "bench: service start failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let one () =
    match
      Service.Loadgen.run (Service.Server.address server) ~skew:1.5
        ~connections ~requests ~seed:11 ~distinct:8 ()
    with
    | Error e ->
      Printf.eprintf "bench: loadgen failed: %s\n" (Dls.Errors.to_string e);
      exit 2
    | Ok o when o.Service.Loadgen.ok <> requests ->
      Printf.eprintf
        "bench: dispatch arm d=%d dropped requests (ok=%d/%d overloaded=%d \
         timeouts=%d failed=%d)\n"
        dispatchers o.Service.Loadgen.ok requests
        o.Service.Loadgen.overloaded o.Service.Loadgen.timeouts
        o.Service.Loadgen.failed;
      exit 2
    | Ok o -> o
  in
  ignore (one ());
  let runs = Array.init (max 1 k) (fun _ -> one ()) in
  let stats = Service.Server.stats server in
  Service.Server.stop server;
  {
    dp_dispatchers = dispatchers;
    (* Best sustained run, same estimator for both arms: short loadgen
       bursts see the same scheduler noise as the map cells. *)
    dp_rps =
      Array.fold_left
        (fun acc o -> Float.max acc o.Service.Loadgen.rps)
        0. runs;
    dp_ok = requests;
    dp_steals = stats.Service.Protocol.steals;
  }

let dispatch_arm_json a =
  Printf.sprintf
    "    { \"dispatchers\": %d, \"throughput_rps\": %.1f, \"ok\": %d, \
     \"steals\": %d }"
    a.dp_dispatchers a.dp_rps a.dp_ok a.dp_steals

let run_pool_bench ~quick ~k ~warmup ~json_path ~gate =
  (* Both halves are cheap enough (a few seconds) to run at full size
     even in quick mode — shrinking them just makes the best-of
     estimators noisy and the gate flaky. *)
  ignore quick;
  let tasks = 8192 in
  let requests, connections = (240, 16) in
  Printf.printf
    "=== pool scaling (work-stealing vs mutex pool, sharded dispatch) ===\n\
     (%d tasks, chunk=1, best of %d interleaved reps; %d requests over %d \
     connections, skew 1.5)\n\n%!"
    tasks
    (max 16 (4 * k))
    requests connections;
  let cells =
    List.concat_map
      (fun mix -> List.map (pool_cell ~k ~warmup ~tasks ~mix) [ 1; 2; 4; 8 ])
      [ "uniform"; "skewed" ]
  in
  Printf.printf "  %-8s %-5s %12s %12s %9s\n%!" "mix" "jobs" "ws" "mutex"
    "speedup";
  List.iter
    (fun c ->
      Printf.printf "  %-8s %-5d %9.2f ms %9.2f ms %8.2fx\n%!" c.pl_mix
        c.pl_jobs (c.pl_ws_s *. 1e3) (c.pl_mutex_s *. 1e3)
        (c.pl_mutex_s /. Float.max 1e-9 c.pl_ws_s))
    cells;
  let dispatch_jobs = 8 in
  let single =
    run_dispatch_arm ~k ~jobs:dispatch_jobs ~dispatchers:1 ~requests
      ~connections
  in
  let sharded =
    run_dispatch_arm ~k ~jobs:dispatch_jobs ~dispatchers:4 ~requests
      ~connections
  in
  Printf.printf "\n  %-22s %10.1f req/s  steals %d\n%!" "1 dispatcher"
    single.dp_rps single.dp_steals;
  Printf.printf "  %-22s %10.1f req/s  steals %d  (%.2fx)\n%!" "4 dispatchers"
    sharded.dp_rps sharded.dp_steals
    (sharded.dp_rps /. Float.max 1e-9 single.dp_rps);
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-pool/1\",\n\
      \  \"quick\": %b,\n\
      \  \"k\": %d,\n\
      \  \"warmup\": %d,\n\
      \  \"tasks\": %d,\n\
      \  \"chunk\": 1,\n\
      \  \"cells\": [\n%s\n  ],\n\
      \  \"dispatch\": {\n\
      \    \"jobs\": %d,\n\
      \    \"requests\": %d,\n\
      \    \"connections\": %d,\n\
      \    \"skew\": 1.5,\n\
      \    \"arms\": [\n%s\n    ]\n\
      \  }\n\
       }\n"
      quick k warmup tasks
      (String.concat ",\n" (List.map pool_cell_json cells))
      dispatch_jobs requests connections
      (String.concat ",\n"
         (List.map (fun a -> "  " ^ dispatch_arm_json a) [ single; sharded ]))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  (* Gate: the work-stealing pool must win (or tie, within a 5%
     measurement tolerance) every cell where claim contention exists
     (jobs >= 4), and the sharded dispatch path must at least match the
     single dispatcher on the skewed mix. *)
  let losing =
    List.filter
      (fun c -> c.pl_jobs >= 4 && c.pl_ws_s > c.pl_mutex_s *. 1.05)
      cells
  in
  let dispatch_pass = sharded.dp_rps >= single.dp_rps in
  let gate_pass = losing = [] && dispatch_pass in
  if gate && not gate_pass then begin
    List.iter
      (fun c ->
        Printf.eprintf
          "GATE FAILED: ws pool slower than mutex pool (jobs=%d mix=%s: %.2f \
           ms vs %.2f ms)\n"
          c.pl_jobs c.pl_mix (c.pl_ws_s *. 1e3) (c.pl_mutex_s *. 1e3))
      losing;
    if not dispatch_pass then
      Printf.eprintf
        "GATE FAILED: 4 dispatchers slower than 1 on the skewed mix (%.1f \
         req/s vs %.1f req/s)\n"
        sharded.dp_rps single.dp_rps
  end
  else if gate then
    Printf.printf
      "  gate: ws >= mutex on all jobs>=4 cells; 4 dispatchers %.1f >= 1 \
       dispatcher %.1f req/s\n%!"
      sharded.dp_rps single.dp_rps;
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Part 9: end-to-end resilience benchmark (BENCH_chaos.json)          *)
(* ------------------------------------------------------------------ *)

(* Two halves, matching the two halves of the resilience change:

   1. goodput under chaos — the same seeded fault plan (Service.Chaos)
      between the load generator and the server, two arms: the naive
      single-attempt client (reconnects after a failure but never
      retries the request) and the resilient retry/breaker client.
      Goodput counts ok responses that landed within the caller's
      deadline — an answer after the deadline is throughput, not
      goodput.  The gate is that resilience buys goodput.

   2. warm restart — the same daemon restarted on its response journal
      against a cold restart; time to re-answer the working set.  The
      gate is that journal replay beats recomputing. *)

type chaos_bench_arm = {
  ca_label : string;
  ca_ok : int;
  ca_failed : int;
  ca_goodput : int;
  ca_retries : int;
  ca_breaker_opens : int;
  ca_p50_ms : float;
  ca_p99_ms : float;
  ca_wall_s : float;
}

let run_chaos_arm ~label ~resilient ~plan ~requests ~connections ~seed ~distinct
    ~deadline_s =
  Dls.Lp_model.reset_cache ();
  let spath = Filename.temp_file "dls-bench-chaos" ".sock" in
  Sys.remove spath;
  let cfg =
    {
      (Service.Server.default_config (Service.Server.Unix_socket spath)) with
      Service.Server.jobs = 4;
      queue_capacity = max 64 connections;
      max_batch = 16;
    }
  in
  let server =
    match Service.Server.start cfg with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "bench: service start failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let ppath = Filename.temp_file "dls-bench-chaos" ".proxy" in
  Sys.remove ppath;
  let proxy =
    match
      Service.Chaos.start
        ~listen:(Service.Server.Unix_socket ppath)
        ~upstream:(Service.Server.address server)
        plan
    with
    | Ok p -> p
    | Error e ->
      Printf.eprintf "bench: chaos proxy failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  let outcome =
    match
      Service.Loadgen.run ?resilient ~deadline_s (Service.Chaos.address proxy)
        ~connections ~requests ~seed ~distinct ()
    with
    | Ok o -> o
    | Error e ->
      Printf.eprintf "bench: loadgen failed: %s\n" (Dls.Errors.to_string e);
      exit 2
  in
  Service.Chaos.stop proxy;
  Service.Server.stop server;
  let answered =
    outcome.Service.Loadgen.ok + outcome.Service.Loadgen.overloaded
    + outcome.Service.Loadgen.timeouts + outcome.Service.Loadgen.shed
    + outcome.Service.Loadgen.failed
  in
  if answered <> requests then begin
    Printf.eprintf "bench: chaos arm %s lost requests (%d/%d accounted)\n" label
      answered requests;
    exit 2
  end;
  {
    ca_label = label;
    ca_ok = outcome.Service.Loadgen.ok;
    ca_failed = outcome.Service.Loadgen.failed;
    ca_goodput = outcome.Service.Loadgen.goodput;
    ca_retries = outcome.Service.Loadgen.retries;
    ca_breaker_opens = outcome.Service.Loadgen.breaker_opens;
    ca_p50_ms = outcome.Service.Loadgen.p50_ms;
    ca_p99_ms = outcome.Service.Loadgen.p99_ms;
    ca_wall_s = outcome.Service.Loadgen.wall_s;
  }

let chaos_arm_json a =
  Printf.sprintf
    "    { \"label\": %S, \"ok\": %d, \"failed\": %d, \"goodput\": %d, \
     \"retries\": %d, \"breaker_opens\": %d, \"p50_ms\": %.3f, \"p99_ms\": \
     %.3f, \"wall_s\": %.4f }"
    a.ca_label a.ca_ok a.ca_failed a.ca_goodput a.ca_retries a.ca_breaker_opens
    a.ca_p50_ms a.ca_p99_ms a.ca_wall_s

(* Warm restart: serve a working set once (journaling it), restart on
   the journal, serve it again.  [worker_delay] gives every cold
   evaluation a deterministic floor, so the comparison measures the
   thing the journal changes — recompute vs replay — rather than LP
   noise. *)
let run_chaos_restart ~distinct ~seed =
  let journal = Filename.temp_file "dls-bench-chaos" ".journal" in
  let regimes = [| Check.Fuzz.Small_z; Check.Fuzz.Unit_z; Check.Fuzz.Big_z |] in
  let reqs =
    List.init distinct (fun i ->
        let rng = Random.State.make [| seed; i; 0xbe9c4 |] in
        let p = Check.Fuzz.gen_platform rng regimes.(i mod 3) in
        Service.Protocol.Solve
          {
            s_platform = p;
            s_order = Service.Protocol.Fifo;
            s_model = Dls.Lp_model.One_port;
            s_fast = true;
            s_load = Some (Q.of_int 1000);
          })
  in
  let serve_once label =
    Dls.Lp_model.reset_cache ();
    let spath = Filename.temp_file "dls-bench-chaos" ".sock" in
    Sys.remove spath;
    let cfg =
      {
        (Service.Server.default_config (Service.Server.Unix_socket spath)) with
        Service.Server.jobs = 2;
        worker_delay = 0.02;
        journal = Some journal;
      }
    in
    let server =
      match Service.Server.start cfg with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "bench: restart arm %s failed: %s\n" label
          (Dls.Errors.to_string e);
        exit 2
    in
    let t0 = Parallel.Clock.now () in
    (match
       Service.Client.with_client (Service.Server.address server) (fun cl ->
           List.iter
             (fun r ->
               match Service.Client.request cl r with
               | Ok resp when Service.Protocol.is_ok resp -> ()
               | Ok resp ->
                 Printf.eprintf "bench: restart arm %s: %s\n" label
                   (Service.Protocol.response_to_string resp);
                 exit 2
               | Error e ->
                 Printf.eprintf "bench: restart arm %s: %s\n" label
                   (Dls.Errors.to_string e);
                 exit 2)
             reqs)
     with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "bench: restart arm %s: %s\n" label (Dls.Errors.to_string e);
      exit 2);
    let wall = Parallel.Clock.elapsed_s ~since:t0 in
    let stats = Service.Server.stats server in
    Service.Server.stop server;
    (wall, stats)
  in
  let cold_s, cold_stats = serve_once "cold" in
  if cold_stats.Service.Protocol.journal_appended <> distinct then begin
    Printf.eprintf "bench: cold run journaled %d/%d records\n"
      cold_stats.Service.Protocol.journal_appended distinct;
    exit 2
  end;
  let warm_s, warm_stats = serve_once "warm" in
  if
    warm_stats.Service.Protocol.journal_replayed <> distinct
    || warm_stats.Service.Protocol.warm_hits <> distinct
  then begin
    Printf.eprintf "bench: warm run replayed %d, hit %d of %d records\n"
      warm_stats.Service.Protocol.journal_replayed
      warm_stats.Service.Protocol.warm_hits distinct;
    exit 2
  end;
  Sys.remove journal;
  (cold_s, warm_s)

let run_chaos_bench ~quick ~json_path ~gate =
  let requests, connections, distinct =
    if quick then (120, 8, 5) else (320, 16, 6)
  in
  (* Severity 1: every connection except each guaranteed-clean fourth
     carries a fault on one of its first three requests — the regime
     where the two clients actually part ways.  (At low severities the
     handful of loadgen connections can dodge the plan entirely.) *)
  let seed = 2026 and severity = 1.0 in
  let plan = Service.Chaos.gen ~seed ~conns:4096 ~severity in
  Printf.printf
    "=== end-to-end resilience (chaos proxy, retries, journal restart) ===\n\
     (%d requests, %d connections, severity %.2f, %d planned faults)\n\n%!"
    requests connections severity (List.length plan);
  let deadline_s = 0.25 in
  let naive =
    run_chaos_arm ~label:"naive client" ~resilient:None ~plan ~requests
      ~connections ~seed ~distinct ~deadline_s
  in
  let rcfg address =
    {
      (Service.Resilient.default_config address) with
      Service.Resilient.attempts = 4;
      attempt_timeout = Some 0.1;
      backoff_base = 0.002;
      backoff_max = 0.02;
      breaker_cooldown = 0.3;
      jitter_seed = seed;
    }
  in
  let resilient =
    run_chaos_arm ~label:"resilient client"
      ~resilient:
        (Some (rcfg (Service.Server.Unix_socket "/nonexistent(overridden)")))
      ~plan ~requests ~connections ~seed ~distinct ~deadline_s
  in
  List.iter
    (fun a ->
      Printf.printf
        "  %-18s  ok %4d  failed %4d  goodput %4d  retries %4d  breaker %d  \
         p50 %.1fms  p99 %.1fms\n%!"
        a.ca_label a.ca_ok a.ca_failed a.ca_goodput a.ca_retries
        a.ca_breaker_opens a.ca_p50_ms a.ca_p99_ms)
    [ naive; resilient ];
  let cold_s, warm_s = run_chaos_restart ~distinct ~seed in
  Printf.printf
    "  restart: cold %.3fs -> journal-warm %.3fs (%.2fx) over %d records\n%!"
    cold_s warm_s
    (cold_s /. Float.max 1e-9 warm_s)
    distinct;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-chaos/1\",\n\
      \  \"quick\": %b,\n\
      \  \"seed\": %d,\n\
      \  \"requests\": %d,\n\
      \  \"connections\": %d,\n\
      \  \"distinct\": %d,\n\
      \  \"severity\": %.2f,\n\
      \  \"plan_faults\": %d,\n\
      \  \"deadline_s\": %.3f,\n\
      \  \"arms\": [\n%s\n  ],\n\
      \  \"restart\": { \"records\": %d, \"cold_s\": %.4f, \"warm_s\": %.4f, \
       \"speedup\": %.2f }\n\
       }\n"
      quick seed requests connections distinct severity (List.length plan)
      deadline_s
      (String.concat ",\n" (List.map chaos_arm_json [ naive; resilient ]))
      distinct cold_s warm_s
      (cold_s /. Float.max 1e-9 warm_s)
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  let goodput_pass = resilient.ca_goodput > naive.ca_goodput in
  let restart_pass = warm_s < cold_s in
  let gate_pass = goodput_pass && restart_pass in
  if gate && not gate_pass then begin
    if not goodput_pass then
      Printf.eprintf
        "GATE FAILED: resilient goodput %d <= naive goodput %d under the same \
         chaos plan\n"
        resilient.ca_goodput naive.ca_goodput;
    if not restart_pass then
      Printf.eprintf
        "GATE FAILED: journal-warm restart %.3fs >= cold restart %.3fs\n" warm_s
        cold_s
  end
  else if gate then
    Printf.printf
      "  gate: resilient goodput %d > naive %d; warm restart %.3fs < cold \
       %.3fs\n%!"
      resilient.ca_goodput naive.ca_goodput warm_s cold_s;
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Part 10: horizontal scale-out benchmark (BENCH_scale.json)          *)
(* ------------------------------------------------------------------ *)

(* Two arms over the same open-loop Poisson stream (Loadgen.run_open)
   at ten times the Part-5 request volume:

     single   one daemon, the whole stream straight at it;
     router   the same stream at a consistent-hash front router over
              two daemon shards (Service.Router).

   Every daemon runs evaluation-bound (dedup off, a small artificial
   worker delay), so per-shard capacity is jobs/delay and the offered
   rate is pitched between one shard's capacity and two shards': the
   single arm saturates (the arrival-lag signal grows without bound),
   the routed fleet keeps up.  The gate asks for routed throughput at
   least the single daemon's on the same stream, responses through the
   router bit-identical to the direct exact solve, and the tier-2
   store turning a restarted shard's cold misses into admission-time
   hits (warm restart faster than cold). *)

type scale_arm = {
  sc_label : string;
  sc_target_rps : float;
  sc_offered_rps : float;
  sc_achieved_rps : float;
  sc_ok : int;
  sc_p50_ms : float;
  sc_p99_ms : float;
  sc_max_lag_ms : float;
  sc_wall_s : float;
}

(* Fixed socket paths, not temp names: shard addresses are the ring
   identities, so random paths would reshuffle key placement — and the
   measured shard split — on every run.  The server unlinks stale
   sockets at bind. *)
let scale_sock role =
  Filename.concat
    (Filename.get_temp_dir_name ())
    ("dls-bench-scale-" ^ role ^ ".sock")

let scale_server_cfg ?(jobs = 2) ?(dedup = false) ?(worker_delay = 0.004)
    ?store ~path () =
  {
    (Service.Server.default_config (Service.Server.Unix_socket path)) with
    Service.Server.jobs;
    queue_capacity = 256;
    max_batch = 32;
    dedup;
    worker_delay;
    store;
  }

let scale_start_server cfg =
  match Service.Server.start cfg with
  | Ok s -> s
  | Error e ->
    Printf.eprintf "bench: scale server start failed: %s\n"
      (Dls.Errors.to_string e);
    exit 2

let run_scale_arm ~label address ~processes ~requests ~rps ~seed ~distinct =
  match
    Service.Loadgen.run_open address ~processes ~requests ~rps ~seed ~distinct
      ()
  with
  | Error e ->
    Printf.eprintf "bench: open-loop loadgen failed: %s\n"
      (Dls.Errors.to_string e);
    exit 2
  | Ok oo ->
    let o = oo.Service.Loadgen.closed in
    if o.Service.Loadgen.ok <> requests then begin
      Printf.eprintf
        "bench: scale arm %s dropped requests (ok=%d/%d overloaded=%d \
         timeouts=%d failed=%d)\n"
        label o.Service.Loadgen.ok requests o.Service.Loadgen.overloaded
        o.Service.Loadgen.timeouts o.Service.Loadgen.failed;
      exit 2
    end;
    {
      sc_label = label;
      sc_target_rps = oo.Service.Loadgen.target_rps;
      sc_offered_rps = oo.Service.Loadgen.offered_rps;
      sc_achieved_rps = o.Service.Loadgen.rps;
      sc_ok = o.Service.Loadgen.ok;
      sc_p50_ms = o.Service.Loadgen.p50_ms;
      sc_p99_ms = o.Service.Loadgen.p99_ms;
      sc_max_lag_ms = oo.Service.Loadgen.max_lag_ms;
      sc_wall_s = o.Service.Loadgen.wall_s;
    }

(* Every distinct solve scenario of the stream, sent through the
   router, must come back byte-for-byte the direct exact answer. *)
let check_scale_bit_identity router_address ~seed ~distinct =
  let seen = Hashtbl.create 16 in
  let outcome =
    Service.Client.with_client router_address (fun cl ->
        let rec go i =
          if i >= 8 * distinct then Ok ()
          else
            match Service.Loadgen.request ~seed ~distinct i with
            | Service.Protocol.Solve r as req ->
              let key = Service.Protocol.request_key req in
              if Hashtbl.mem seen key then go (i + 1)
              else begin
                Hashtbl.add seen key ();
                match Service.Client.request cl req with
                | Error e -> Error e
                | Ok reply -> (
                  let p = r.Service.Protocol.s_platform in
                  let scenario =
                    match r.Service.Protocol.s_order with
                    | Service.Protocol.Fifo ->
                      Dls.Scenario.fifo_exn p (Dls.Fifo.order p)
                    | Service.Protocol.Lifo ->
                      Dls.Scenario.lifo_exn p (Dls.Lifo.order p)
                  in
                  let direct =
                    Dls.Solve.solve_exn ~mode:`Exact
                      ~model:r.Service.Protocol.s_model scenario
                  in
                  match reply with
                  | Service.Protocol.Ok_solve s ->
                    let q_eq a b = Q.to_string a = Q.to_string b in
                    let identical =
                      q_eq s.Service.Protocol.rho direct.Dls.Lp_model.rho
                      && Array.length s.Service.Protocol.alpha
                         = Array.length direct.Dls.Lp_model.alpha
                      && Array.for_all2 q_eq s.Service.Protocol.alpha
                           direct.Dls.Lp_model.alpha
                      && Array.for_all2 q_eq s.Service.Protocol.idle
                           direct.Dls.Lp_model.idle
                    in
                    if identical then go (i + 1)
                    else begin
                      Printf.eprintf
                        "bench: routed response differs from direct solve \
                         (stream index %d)\n"
                        i;
                      exit 3
                    end
                  | other ->
                    Printf.eprintf "bench: expected ok solve, got %s\n"
                      (Service.Protocol.response_to_string other);
                    exit 3)
              end
            | _ -> go (i + 1)
        in
        go 0)
  in
  match outcome with
  | Ok (Ok ()) -> Hashtbl.length seen
  | Ok (Error e) | Error e ->
    Printf.eprintf "bench: bit-identity probe failed: %s\n"
      (Dls.Errors.to_string e);
    exit 2

(* Tier-2 restart experiment.  Cold: run the stream, restart a fresh
   daemon, run it again — the restarted daemon re-evaluates everything.
   Warm: same, but both daemons share one store file — the restarted
   daemon starts with an empty tier-1 cache yet answers the repeats at
   admission time from the store.  The LP cache is reset around every
   run so only the store can carry answers across the restart. *)
let run_scale_restart ~seed ~distinct =
  let requests = 48 and connections = 4 in
  let run_once cfg =
    Dls.Lp_model.reset_cache ();
    let server = scale_start_server cfg in
    let t0 = Unix.gettimeofday () in
    (match
       Service.Loadgen.run
         (Service.Server.address server)
         ~connections ~requests ~seed ~distinct ()
     with
    | Ok o when o.Service.Loadgen.ok = requests -> ()
    | Ok o ->
      Printf.eprintf "bench: restart stream dropped requests (ok=%d/%d)\n"
        o.Service.Loadgen.ok requests;
      exit 2
    | Error e ->
      Printf.eprintf "bench: restart loadgen failed: %s\n"
        (Dls.Errors.to_string e);
      exit 2);
    let wall = Unix.gettimeofday () -. t0 in
    let stats = Service.Server.stats server in
    Service.Server.stop server;
    (wall, stats)
  in
  let cold_cfg () =
    scale_server_cfg ~dedup:true ~worker_delay:0.02
      ~path:(scale_sock "restart") ()
  in
  let _ = run_once (cold_cfg ()) in
  let cold_s, _ = run_once (cold_cfg ()) in
  let store = Filename.temp_file "dls-bench-scale" ".store" in
  let warm_cfg () =
    scale_server_cfg ~dedup:true ~worker_delay:0.02 ~store
      ~path:(scale_sock "restart") ()
  in
  let _ = run_once (warm_cfg ()) in
  let warm_s, warm_stats = run_once (warm_cfg ()) in
  (try Sys.remove store with Sys_error _ -> ());
  (cold_s, warm_s, warm_stats.Service.Protocol.store_hits)

let scale_arm_json a =
  Printf.sprintf
    "    { \"label\": %S, \"target_rps\": %.1f, \"offered_rps\": %.1f, \
     \"achieved_rps\": %.1f, \"ok\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \
     \"max_lag_ms\": %.3f, \"wall_s\": %.4f }"
    a.sc_label a.sc_target_rps a.sc_offered_rps a.sc_achieved_rps a.sc_ok
    a.sc_p50_ms a.sc_p99_ms a.sc_max_lag_ms a.sc_wall_s

let run_scale_bench ~quick ~json_path ~gate =
  let requests = if quick then 1600 else 6000 in
  let rps = 750. in
  let processes = 16 in
  let seed = 2026 and distinct = 6 in
  let jobs = 2 and worker_delay = 0.004 in
  let vnodes = 128 in
  Printf.printf
    "=== horizontal scale-out (consistent-hash router, 2 shards) ===\n\
     (%d open-loop requests at %.0f rps target, %d driving processes, %d \
     jobs x %.0fms work per shard)\n\n\
     %!"
    requests rps processes jobs (worker_delay *. 1000.);
  (* Arm 1: the whole stream straight at one daemon. *)
  Dls.Lp_model.reset_cache ();
  let s1 =
    scale_start_server
      (scale_server_cfg ~jobs ~worker_delay ~path:(scale_sock "single") ())
  in
  let single =
    run_scale_arm ~label:"single daemon"
      (Service.Server.address s1)
      ~processes ~requests ~rps ~seed ~distinct
  in
  Service.Server.stop s1;
  (* Arm 2: the same stream at a router over two shards. *)
  Dls.Lp_model.reset_cache ();
  let sh1 =
    scale_start_server
      (scale_server_cfg ~jobs ~worker_delay ~path:(scale_sock "shard-a") ())
  in
  let sh2 =
    scale_start_server
      (scale_server_cfg ~jobs ~worker_delay ~path:(scale_sock "shard-b") ())
  in
  let router =
    let cfg =
      {
        (Service.Router.default_config
           (Service.Server.Unix_socket (scale_sock "router"))
           ~shard_addresses:
             [ Service.Server.address sh1; Service.Server.address sh2 ])
        with
        Service.Router.vnodes;
        attempt_timeout = None;
      }
    in
    match Service.Router.start cfg with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "bench: router start failed: %s\n"
        (Dls.Errors.to_string e);
      exit 2
  in
  let scenarios =
    check_scale_bit_identity (Service.Router.address router) ~seed ~distinct
  in
  Printf.printf
    "  bit-identity through the router vs direct exact solve: ok (%d \
     scenarios)\n\
     %!"
    scenarios;
  let routed =
    run_scale_arm ~label:"router + 2 shards"
      (Service.Router.address router)
      ~processes ~requests ~rps ~seed ~distinct
  in
  let rstats = Service.Router.stats router in
  Service.Router.stop router;
  Service.Server.stop sh1;
  Service.Server.stop sh2;
  (* Tier-2 store across a restart. *)
  let cold_s, warm_s, warm_store_hits = run_scale_restart ~seed ~distinct in
  List.iter
    (fun a ->
      Printf.printf
        "  %-18s  %8.1f req/s achieved (offered %.1f)  p50 %.1fms  p99 \
         %.1fms  max lag %.1fms  wall %.3fs\n\
         %!"
        a.sc_label a.sc_achieved_rps a.sc_offered_rps a.sc_p50_ms a.sc_p99_ms
        a.sc_max_lag_ms a.sc_wall_s)
    [ single; routed ];
  Printf.printf
    "  routed per shard: [%s]  failovers: %d\n\
    \  store restart: cold %.3fs, warm %.3fs (%d admission-time store hits)\n\
     %!"
    (String.concat "; "
       (Array.to_list
          (Array.map string_of_int rstats.Service.Router.r_routed)))
    rstats.Service.Router.r_failovers cold_s warm_s warm_store_hits;
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"dls-bench-scale/1\",\n\
      \  \"quick\": %b,\n\
      \  \"seed\": %d,\n\
      \  \"requests\": %d,\n\
      \  \"target_rps\": %.1f,\n\
      \  \"processes\": %d,\n\
      \  \"distinct\": %d,\n\
      \  \"shards\": 2,\n\
      \  \"vnodes\": %d,\n\
      \  \"jobs_per_shard\": %d,\n\
      \  \"worker_delay_ms\": %.1f,\n\
      \  \"bit_identical\": true,\n\
      \  \"scenarios_checked\": %d,\n\
      \  \"routed_per_shard\": [%s],\n\
      \  \"failovers\": %d,\n\
      \  \"store_cold_s\": %.4f,\n\
      \  \"store_warm_s\": %.4f,\n\
      \  \"store_warm_hits\": %d,\n\
      \  \"arms\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      quick seed requests rps processes distinct vnodes jobs
      (worker_delay *. 1000.)
      scenarios
      (String.concat ", "
         (Array.to_list
            (Array.map string_of_int rstats.Service.Router.r_routed)))
      rstats.Service.Router.r_failovers cold_s warm_s warm_store_hits
      (String.concat ",\n" (List.map scale_arm_json [ single; routed ]))
  in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Printf.printf "  wrote %s\n\n%!" json_path;
  let throughput_pass = routed.sc_achieved_rps >= single.sc_achieved_rps in
  let restart_pass = warm_s < cold_s && warm_store_hits > 0 in
  let gate_pass = throughput_pass && restart_pass in
  if gate && not gate_pass then begin
    if not throughput_pass then
      Printf.eprintf
        "GATE FAILED: router+2 shards %.1f req/s < single daemon %.1f req/s \
         on the same open-loop stream\n"
        routed.sc_achieved_rps single.sc_achieved_rps;
    if not restart_pass then
      Printf.eprintf
        "GATE FAILED: store-warm restart %.3fs (hits %d) not faster than \
         cold restart %.3fs\n"
        warm_s warm_store_hits cold_s
  end
  else if gate then
    Printf.printf
      "  gate: routed %.1f >= single %.1f req/s; warm restart %.3fs < cold \
       %.3fs\n\
       %!"
      routed.sc_achieved_rps single.sc_achieved_rps warm_s cold_s;
  (not gate) || gate_pass

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let main quick skip_micro only jobs solvers_only solvers_json bench_k warmup
    solvers_gate robustness_only robustness_json robustness_cases service_only
    service_json service_gate multiload_only multiload_json multiload_gate
    resolve_only resolve_json resolve_gate pool_only pool_json pool_gate
    chaos_only chaos_json chaos_gate scale_only scale_json scale_gate =
  Printf.printf
    "One-port FIFO divisible-load scheduling - reproduction harness\n\
     (Beaumont, Marchal, Rehn, Robert, RR-5738, 2005)%s\n\n%!"
    (if quick then " [quick mode]" else "");
  if robustness_only then
    run_robustness_bench ~quick ~cases:robustness_cases ~seed:2026
      ~json_path:robustness_json
  else if service_only then begin
    if
      not
        (run_service_bench ~quick ~jobs ~json_path:service_json
           ~gate:service_gate)
    then exit 1
  end
  else if multiload_only then begin
    if not (run_multiload_bench ~quick ~json_path:multiload_json ~gate:multiload_gate)
    then exit 1
  end
  else if resolve_only then begin
    if
      not
        (run_resolve_bench ~quick ~k:bench_k ~warmup ~json_path:resolve_json
           ~gate:resolve_gate)
    then exit 1
  end
  else if pool_only then begin
    if
      not
        (run_pool_bench ~quick ~k:bench_k ~warmup ~json_path:pool_json
           ~gate:pool_gate)
    then exit 1
  end
  else if chaos_only then begin
    if not (run_chaos_bench ~quick ~json_path:chaos_json ~gate:chaos_gate) then
      exit 1
  end
  else if scale_only then begin
    if not (run_scale_bench ~quick ~json_path:scale_json ~gate:scale_gate) then
      exit 1
  end
  else begin
    if not solvers_only then begin
      run_experiments ~quick ~jobs ~only;
      if not skip_micro then begin
        run_bechamel ~name:"components" (micro_tests ~jobs) ~quota_s:0.5;
        run_bechamel ~name:"figures" (figure_tests ~jobs) ~quota_s:1.0
      end
    end;
    let gate_pass =
      run_solver_bench ~quick ~k:bench_k ~warmup ~json_path:solvers_json
        ~gate:solvers_gate
    in
    run_robustness_bench ~quick ~cases:robustness_cases ~seed:2026
      ~json_path:robustness_json;
    let service_pass =
      run_service_bench ~quick ~jobs ~json_path:service_json ~gate:service_gate
    in
    let multiload_pass =
      run_multiload_bench ~quick ~json_path:multiload_json ~gate:multiload_gate
    in
    let resolve_pass =
      run_resolve_bench ~quick ~k:bench_k ~warmup ~json_path:resolve_json
        ~gate:resolve_gate
    in
    let pool_pass =
      run_pool_bench ~quick ~k:bench_k ~warmup ~json_path:pool_json
        ~gate:pool_gate
    in
    let chaos_pass =
      run_chaos_bench ~quick ~json_path:chaos_json ~gate:chaos_gate
    in
    let scale_pass =
      run_scale_bench ~quick ~json_path:scale_json ~gate:scale_gate
    in
    if
      not
        (gate_pass && service_pass && multiload_pass && resolve_pass
       && pool_pass && chaos_pass && scale_pass)
    then exit 1
  end

let () =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shrink every sweep for a fast smoke run.")
  in
  let skip_micro_arg =
    Arg.(
      value & flag
      & info [ "skip-micro" ] ~doc:"Skip the Bechamel micro-benchmarks.")
  in
  let only_arg =
    let doc =
      Printf.sprintf "Run a single experiment; one of: %s."
        (String.concat ", " (Experiments.Registry.ids ()))
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for parallel evaluation (default: number of cores). \
       Figure output is bit-identical to $(b,--jobs=1)."
    in
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let solvers_only_arg =
    Arg.(
      value & flag
      & info [ "solvers-only" ]
          ~doc:"Run only the solver-pipeline benchmark (Part 3).")
  in
  let solvers_json_arg =
    Arg.(
      value
      & opt string "BENCH_solvers.json"
      & info [ "solvers-json" ] ~docv:"FILE"
          ~doc:"Where to write the solver-pipeline benchmark JSON.")
  in
  let bench_k_arg =
    Arg.(
      value & opt int 3
      & info [ "bench-k" ] ~docv:"K"
          ~doc:"Timed repetitions per solver-benchmark point (median is kept).")
  in
  let warmup_arg =
    Arg.(
      value & opt int 1
      & info [ "warmup" ] ~docv:"N"
          ~doc:"Untimed warmup runs before each solver-benchmark point.")
  in
  let solvers_gate_arg =
    Arg.(
      value & flag
      & info [ "solvers-gate" ]
          ~doc:
            "Exit non-zero if the certified fast pipeline is slower than the \
             exact baseline on the smoke case.")
  in
  let robustness_only_arg =
    Arg.(
      value & flag
      & info [ "robustness-only" ]
          ~doc:"Run only the fault-recovery robustness benchmark (Part 4).")
  in
  let robustness_json_arg =
    Arg.(
      value
      & opt string "BENCH_robustness.json"
      & info [ "robustness-json" ] ~docv:"FILE"
          ~doc:"Where to write the robustness benchmark JSON.")
  in
  let robustness_cases_arg =
    Arg.(
      value & opt int 18
      & info [ "robustness-cases" ] ~docv:"N"
          ~doc:
            "Seeded fault cases per severity x regime cell of the robustness \
             benchmark.")
  in
  let service_only_arg =
    Arg.(
      value & flag
      & info [ "service-only" ]
          ~doc:"Run only the service throughput benchmark (Part 5).")
  in
  let service_json_arg =
    Arg.(
      value
      & opt string "BENCH_service.json"
      & info [ "service-json" ] ~docv:"FILE"
          ~doc:"Where to write the service benchmark JSON.")
  in
  let service_gate_arg =
    Arg.(
      value & flag
      & info [ "service-gate" ]
          ~doc:
            "Exit non-zero unless single-flight batching beats the no-dedup \
             baseline on served-request throughput.")
  in
  let multiload_only_arg =
    Arg.(
      value & flag
      & info [ "multiload-only" ]
          ~doc:"Run only the multi-load steady-state benchmark (Part 6).")
  in
  let multiload_json_arg =
    Arg.(
      value
      & opt string "BENCH_multiload.json"
      & info [ "multiload-json" ] ~docv:"FILE"
          ~doc:"Where to write the multi-load benchmark JSON.")
  in
  let multiload_gate_arg =
    Arg.(
      value & flag
      & info [ "multiload-gate" ]
          ~doc:
            "Exit non-zero unless the steady-state period beats the \
             back-to-back baseline on at least one regime.")
  in
  let resolve_only_arg =
    Arg.(
      value & flag
      & info [ "resolve-only" ]
          ~doc:"Run only the incremental re-solve benchmark (Part 7).")
  in
  let resolve_json_arg =
    Arg.(
      value
      & opt string "BENCH_resolve.json"
      & info [ "resolve-json" ] ~docv:"FILE"
          ~doc:"Where to write the incremental re-solve benchmark JSON.")
  in
  let resolve_gate_arg =
    Arg.(
      value & flag
      & info [ "resolve-gate" ]
          ~doc:
            "Exit non-zero if the warm-repair stream is slower overall than \
             answering every request from scratch.")
  in
  let pool_only_arg =
    Arg.(
      value & flag
      & info [ "pool-only" ]
          ~doc:"Run only the pool scaling benchmark (Part 8).")
  in
  let pool_json_arg =
    Arg.(
      value
      & opt string "BENCH_pool.json"
      & info [ "pool-json" ] ~docv:"FILE"
          ~doc:"Where to write the pool scaling benchmark JSON.")
  in
  let pool_gate_arg =
    Arg.(
      value & flag
      & info [ "pool-gate" ]
          ~doc:
            "Exit non-zero unless the work-stealing pool matches or beats the \
             mutex pool on every jobs>=4 cell and 4 dispatchers match or beat \
             1 on the skewed service mix.")
  in
  let chaos_only_arg =
    Arg.(
      value & flag
      & info [ "chaos-only" ]
          ~doc:"Run only the end-to-end resilience benchmark (Part 9).")
  in
  let chaos_json_arg =
    Arg.(
      value
      & opt string "BENCH_chaos.json"
      & info [ "chaos-json" ] ~docv:"FILE"
          ~doc:"Where to write the resilience benchmark JSON.")
  in
  let chaos_gate_arg =
    Arg.(
      value & flag
      & info [ "chaos-gate" ]
          ~doc:
            "Exit non-zero unless the resilient client's goodput beats the \
             naive client under the same chaos plan and the journal-warm \
             restart beats the cold restart.")
  in
  let scale_only_arg =
    Arg.(
      value & flag
      & info [ "scale-only" ]
          ~doc:"Run only the horizontal scale-out benchmark (Part 10).")
  in
  let scale_json_arg =
    Arg.(
      value
      & opt string "BENCH_scale.json"
      & info [ "scale-json" ] ~docv:"FILE"
          ~doc:"Where to write the scale-out benchmark JSON.")
  in
  let scale_gate_arg =
    Arg.(
      value & flag
      & info [ "scale-gate" ]
          ~doc:
            "Exit non-zero unless the router over two shards matches or \
             beats the single daemon on the same open-loop stream and the \
             tier-2 store makes the warm restart faster than the cold one.")
  in
  let doc = "reproduce the paper's figures and benchmark the library" in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc)
      Term.(
        const main $ quick_arg $ skip_micro_arg $ only_arg $ jobs_arg
        $ solvers_only_arg $ solvers_json_arg $ bench_k_arg $ warmup_arg
        $ solvers_gate_arg $ robustness_only_arg $ robustness_json_arg
        $ robustness_cases_arg $ service_only_arg $ service_json_arg
        $ service_gate_arg $ multiload_only_arg $ multiload_json_arg
        $ multiload_gate_arg $ resolve_only_arg $ resolve_json_arg
        $ resolve_gate_arg $ pool_only_arg $ pool_json_arg $ pool_gate_arg
        $ chaos_only_arg $ chaos_json_arg $ chaos_gate_arg $ scale_only_arg
        $ scale_json_arg $ scale_gate_arg)
  in
  exit (Cmd.eval cmd)
