(** Small exact linear-algebra helpers over rationals: dense matrices and
    Gaussian elimination.  Used by the brute-force vertex enumerator that
    cross-checks the simplex solver in the test suite. *)

module Q = Numeric.Rational

(** [solve a b] solves the square system [a x = b] by Gaussian
    elimination with partial (first non-zero) pivoting.  Returns [None]
    when [a] is singular.  [a] is an array of rows; neither input is
    mutated. *)
val solve : Q.t array array -> Q.t array -> Q.t array option

(** [dot u v] is the inner product.  @raise Invalid_argument on length
    mismatch. *)
val dot : Q.t array -> Q.t array -> Q.t

(** [rank a] is the rank of the (possibly rectangular) matrix [a]. *)
val rank : Q.t array array -> int
