(** Exact two-phase primal simplex over arbitrary-precision rationals.

    Pivoting uses Bland's smallest-index rule, which guarantees
    termination even on degenerate problems (the scheduling LPs of the
    paper are routinely degenerate: several workers finish
    simultaneously).  Because the arithmetic is exact, the returned
    optimum is a true vertex of the feasible polyhedron — the structural
    arguments of the paper (Lemma 1: "at most one constraint slack")
    apply to it literally. *)

module Q = Numeric.Rational

type solution = {
  value : Q.t;  (** optimal objective value, in the problem's direction *)
  point : Q.t array;  (** one optimal assignment of the decision variables *)
  pivots : int;  (** number of simplex pivots performed (both phases) *)
}

type outcome = Optimal of solution | Unbounded | Infeasible

(** The two ways a linear program can fail to have an optimum.  (The
    [Error_] prefix keeps the constructors from clashing with
    {!outcome}'s.) *)
type error = Error_unbounded | Error_infeasible

(** Raised by {!solve_exn}; carries the typed failure instead of a
    [Failure] string. *)
exception Error of error

val string_of_error : error -> string
val pp_error : Format.formatter -> error -> unit

(** [solve p] solves the linear program exactly. *)
val solve : Problem.t -> outcome

(** [solve_result p] is {!solve} in [result] form. *)
val solve_result : Problem.t -> (solution, error) result

(** [solve_exn p] extracts the optimal solution.
    @raise Error when the problem is unbounded or infeasible. *)
val solve_exn : Problem.t -> solution

val pp_outcome : Format.formatter -> outcome -> unit
