module Q = Numeric.Rational

let dot u v =
  if Array.length u <> Array.length v then invalid_arg "Linear.dot: length mismatch";
  let acc = ref Q.zero in
  for i = 0 to Array.length u - 1 do
    acc := Q.add !acc (Q.mul u.(i) v.(i))
  done;
  !acc

let copy_matrix a = Array.map Array.copy a

(* Forward elimination with first-non-zero pivoting (exact arithmetic
   needs no magnitude-based pivot choice).  Returns the echelon form and
   the pivot column of each eliminated row. *)
let echelon a =
  let m = Array.length a in
  if m = 0 then (a, [])
  else begin
    let n = Array.length a.(0) in
    let a = copy_matrix a in
    let pivots = ref [] in
    let row = ref 0 in
    let col = ref 0 in
    while !row < m && !col < n do
      let r = !row and c = !col in
      let pivot_row = ref (-1) in
      for i = r to m - 1 do
        if !pivot_row < 0 && not (Q.is_zero a.(i).(c)) then pivot_row := i
      done;
      if !pivot_row < 0 then incr col
      else begin
        let p = !pivot_row in
        if p <> r then begin
          let tmp = a.(r) in
          a.(r) <- a.(p);
          a.(p) <- tmp
        end;
        let inv_pivot = Q.inv a.(r).(c) in
        for j = c to n - 1 do
          a.(r).(j) <- Q.mul a.(r).(j) inv_pivot
        done;
        for i = 0 to m - 1 do
          if i <> r && not (Q.is_zero a.(i).(c)) then begin
            let f = a.(i).(c) in
            for j = c to n - 1 do
              a.(i).(j) <- Q.sub a.(i).(j) (Q.mul f a.(r).(j))
            done
          end
        done;
        pivots := (r, c) :: !pivots;
        incr row;
        incr col
      end
    done;
    (a, List.rev !pivots)
  end

let rank a =
  let _, pivots = echelon a in
  List.length pivots

let solve a b =
  let m = Array.length a in
  if m = 0 then Some [||]
  else begin
    let n = Array.length a.(0) in
    if m <> n || Array.length b <> m then
      invalid_arg "Linear.solve: non-square system";
    let aug = Array.init m (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
    let reduced, pivots = echelon aug in
    if List.length pivots <> n || List.exists (fun (_, c) -> c >= n) pivots then
      None
    else
      Some (Array.init n (fun j -> reduced.(j).(n)))
  end
