module Q = Numeric.Rational

let feasibility_violations (p : Problem.t) x =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  if Array.length x <> Problem.num_vars p then
    add "point has %d coordinates, expected %d" (Array.length x)
      (Problem.num_vars p)
  else begin
    Array.iteri
      (fun j v ->
        if Q.sign v < 0 then
          add "variable %s = %s is negative" p.Problem.names.(j) (Q.to_string v))
      x;
    Array.iteri
      (fun i c ->
        if not (Problem.holds c x) then
          add "constraint %d violated: lhs = %s, rhs = %s" i
            (Q.to_string (Problem.eval_constraint c x))
            (Q.to_string c.Problem.rhs))
      p.Problem.constraints
  end;
  List.rev !violations

let is_feasible p x = feasibility_violations p x = []

let check p (s : Solver.solution) =
  let errs = feasibility_violations p s.Solver.point in
  let errs =
    (* The objective is only evaluable when the point has the right
       dimension (otherwise the violation is already reported above). *)
    if Array.length s.Solver.point <> Problem.num_vars p then errs
    else if Q.equal (Problem.objective_value p s.Solver.point) s.Solver.value
    then errs
    else
      errs
      @ [
          Printf.sprintf "claimed value %s but point evaluates to %s"
            (Q.to_string s.Solver.value)
            (Q.to_string (Problem.objective_value p s.Solver.point));
        ]
  in
  if errs = [] then Ok () else Error errs
