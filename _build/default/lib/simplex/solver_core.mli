(** The simplex algorithm, generic over the scalar {!Field.S}.

    {!Solver} instantiates it with exact rationals (and re-exports a
    rational-typed API — use that one by default); {!Float_solver} with
    IEEE doubles.  The algorithm is the classical two-phase primal
    simplex with Bland's smallest-index rule; with exact arithmetic
    Bland's rule guarantees termination, with floats an iteration cap
    backstops tolerance-induced cycling. *)

module Make (F : Field.S) : sig
  type solution = { value : F.t; point : F.t array; pivots : int }

  type outcome =
    | Optimal of solution
    | Unbounded
    | Infeasible
    | Stalled
        (** the pivot cap was reached — only reachable with inexact
            arithmetic *)

  (** [solve ?max_pivots p] solves the (rational-typed) problem with
      this field's arithmetic. Default cap: 100000 pivots. *)
  val solve : ?max_pivots:int -> Problem.t -> outcome
end
