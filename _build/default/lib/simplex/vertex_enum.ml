module Q = Numeric.Rational

(* All hyperplanes whose intersections can define vertices: constraint
   rows taken at equality, plus the axes x_j = 0. *)
let hyperplanes (p : Problem.t) =
  let n = Problem.num_vars p in
  let axes =
    List.init n (fun j ->
        (Array.init n (fun k -> if k = j then Q.one else Q.zero), Q.zero))
  in
  let rows =
    Array.to_list
      (Array.map (fun c -> (c.Problem.coeffs, c.Problem.rhs)) p.Problem.constraints)
  in
  Array.of_list (rows @ axes)

let rec subsets k lo upper =
  if k = 0 then [ [] ]
  else if lo >= upper then []
  else
    List.map (fun rest -> lo :: rest) (subsets (k - 1) (lo + 1) upper)
    @ subsets k (lo + 1) upper

let vertices (p : Problem.t) =
  let n = Problem.num_vars p in
  let planes = hyperplanes p in
  let candidates = subsets n 0 (Array.length planes) in
  List.filter_map
    (fun subset ->
      let a = Array.of_list (List.map (fun i -> fst planes.(i)) subset) in
      let b = Array.of_list (List.map (fun i -> snd planes.(i)) subset) in
      match Linear.solve a b with
      | None -> None
      | Some x -> if Certify.is_feasible p x then Some x else None)
    candidates

let best (p : Problem.t) =
  let better =
    match p.Problem.direction with
    | Problem.Maximize -> fun a b -> Q.compare a b > 0
    | Problem.Minimize -> fun a b -> Q.compare a b < 0
  in
  List.fold_left
    (fun acc x ->
      let v = Problem.objective_value p x in
      match acc with
      | Some (best_v, _) when not (better v best_v) -> acc
      | _ -> Some (v, x))
    None (vertices p)
