lib/simplex/field.mli: Numeric
