lib/simplex/solver.mli: Format Numeric Problem
