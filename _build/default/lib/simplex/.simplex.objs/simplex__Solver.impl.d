lib/simplex/solver.ml: Field Format Numeric Result Solver_core
