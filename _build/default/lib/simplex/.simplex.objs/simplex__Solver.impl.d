lib/simplex/solver.ml: Field Format Numeric Solver_core
