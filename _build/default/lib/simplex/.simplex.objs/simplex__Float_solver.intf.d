lib/simplex/float_solver.mli: Problem
