lib/simplex/solver_core.mli: Field Problem
