lib/simplex/lp_file.ml: Array Buffer Hashtbl List Numeric Printf Problem String
