lib/simplex/field.ml: Fun Numeric
