lib/simplex/certify.ml: Array List Numeric Printf Problem Solver
