lib/simplex/problem.ml: Array Format Linear List Numeric Printf String
