lib/simplex/lp_file.mli: Problem
