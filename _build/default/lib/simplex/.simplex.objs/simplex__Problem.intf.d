lib/simplex/problem.mli: Format Numeric
