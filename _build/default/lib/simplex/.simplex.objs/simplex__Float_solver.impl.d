lib/simplex/float_solver.ml: Field Solver_core
