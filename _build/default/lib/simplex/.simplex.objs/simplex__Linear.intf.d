lib/simplex/linear.mli: Numeric
