lib/simplex/linear.ml: Array List Numeric
