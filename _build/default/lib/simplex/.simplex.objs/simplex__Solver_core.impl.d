lib/simplex/solver_core.ml: Array Field Numeric Problem
