lib/simplex/certify.mli: Numeric Problem Solver
