lib/simplex/vertex_enum.mli: Numeric Problem
