lib/simplex/vertex_enum.ml: Array Certify Linear List Numeric Problem
