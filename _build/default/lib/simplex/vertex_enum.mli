(** Brute-force LP optimum by vertex enumeration.

    Since every feasible LP with [x >= 0] bounds has a pointed feasible
    region, a bounded optimum is attained at a vertex, i.e. at the
    intersection of [n] linearly independent tight constraints (drawn
    from the constraint rows and the axes [x_j = 0]).  Enumerating all
    [n]-subsets is exponential but exact — the test suite uses it as an
    oracle to cross-check the simplex solver on small problems. *)

module Q = Numeric.Rational

(** [best p] is [Some (value, point)] for the optimal vertex of [p], or
    [None] when no feasible vertex exists.  Unbounded problems return the
    best {e vertex} value (callers compare only against [Solver.Optimal]
    results). *)
val best : Problem.t -> (Q.t * Q.t array) option

(** [vertices p] lists all feasible vertices (may contain duplicates
    when several bases describe the same degenerate vertex). *)
val vertices : Problem.t -> Q.t array list
