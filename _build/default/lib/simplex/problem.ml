module Q = Numeric.Rational

type relation = Le | Ge | Eq
type constr = { coeffs : Q.t array; relation : relation; rhs : Q.t }
type direction = Maximize | Minimize

type t = {
  direction : direction;
  objective : Q.t array;
  constraints : constr array;
  names : string array;
}

let constr coeffs relation rhs = { coeffs; relation; rhs }

let make ?names direction objective constraints =
  let n = Array.length objective in
  List.iteri
    (fun i c ->
      if Array.length c.coeffs <> n then
        invalid_arg
          (Printf.sprintf
             "Problem.make: constraint %d has %d coefficients, expected %d" i
             (Array.length c.coeffs) n))
    constraints;
  let names =
    match names with
    | Some a ->
      if Array.length a <> n then
        invalid_arg "Problem.make: wrong number of variable names";
      a
    | None -> Array.init n (Printf.sprintf "x%d")
  in
  { direction; objective; constraints = Array.of_list constraints; names }

let num_vars p = Array.length p.objective
let num_constraints p = Array.length p.constraints
let eval_constraint c x = Linear.dot c.coeffs x
let objective_value p x = Linear.dot p.objective x

let holds c x =
  let lhs = eval_constraint c x in
  match c.relation with
  | Le -> Q.compare lhs c.rhs <= 0
  | Ge -> Q.compare lhs c.rhs >= 0
  | Eq -> Q.equal lhs c.rhs

let pp_relation fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp_linear names fmt coeffs =
  let first = ref true in
  Array.iteri
    (fun j a ->
      if not (Q.is_zero a) then begin
        if !first then first := false else Format.fprintf fmt " + ";
        Format.fprintf fmt "%a %s" Q.pp a names.(j)
      end)
    coeffs;
  if !first then Format.pp_print_string fmt "0"

let pp fmt p =
  Format.fprintf fmt "@[<v>%s %a@,subject to@,"
    (match p.direction with Maximize -> "maximize" | Minimize -> "minimize")
    (pp_linear p.names) p.objective;
  Array.iter
    (fun c ->
      Format.fprintf fmt "  %a %a %a@," (pp_linear p.names) c.coeffs pp_relation
        c.relation Q.pp c.rhs)
    p.constraints;
  Format.fprintf fmt "  %s >= 0@]"
    (String.concat ", " (Array.to_list p.names))
