(** Independent validation of LP solutions.

    The checker re-evaluates every constraint with exact arithmetic, so a
    bug in the tableau machinery cannot silently corrupt a schedule: the
    scheduling layer validates each solved program before trusting it. *)

module Q = Numeric.Rational

(** [feasibility_violations p x] lists human-readable descriptions of
    every constraint of [p] (including non-negativity) violated by [x].
    An empty list means [x] is feasible. *)
val feasibility_violations : Problem.t -> Q.t array -> string list

(** [is_feasible p x] is [feasibility_violations p x = []]. *)
val is_feasible : Problem.t -> Q.t array -> bool

(** [check p s] validates a solver result against problem [p]:
    feasibility of the point and agreement of the claimed objective
    value. Returns [Error messages] on any discrepancy. *)
val check : Problem.t -> Solver.solution -> (unit, string list) result
