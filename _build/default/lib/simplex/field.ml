module type S = sig
  type t

  val zero : t
  val one : t
  val minus_one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val inv : t -> t
  val sign : t -> int
  val compare : t -> t -> int
  val of_rational : Numeric.Rational.t -> t
  val to_float : t -> float
  val to_string : t -> string
end

module Rational : S with type t = Numeric.Rational.t = struct
  include Numeric.Rational

  let of_rational = Fun.id
end

module Float : S with type t = float = struct
  type t = float

  let eps = 1e-9
  let zero = 0.0
  let one = 1.0
  let minus_one = -1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let inv x = 1.0 /. x
  let sign x = if x > eps then 1 else if x < -.eps then -1 else 0
  let compare a b = sign (a -. b)
  let of_rational = Numeric.Rational.to_float
  let to_float = Fun.id
  let to_string = string_of_float
end
