(** Plain-text serialization of linear programs, in a CPLEX-LP-style
    dialect.

    Lets you dump any scheduling LP the library builds (e.g. to inspect
    a surprising schedule, or to feed an external solver) and read one
    back.  Extensions over the classical format: coefficients may be
    exact rationals ([3/4]); every variable appears in the objective
    (zero coefficients included) so that parsing reconstructs the exact
    variable order.

    {v
    \ one-port FIFO scheduling LP
    Maximize
     obj: 1 alpha_P1 + 1 alpha_P2 + 0 x_P1 + 0 x_P2
    Subject To
     c0: 5/2 alpha_P1 + 1/2 alpha_P2 + 1 x_P1 <= 1
    End
    v} *)

(** [to_string p] serializes the problem. *)
val to_string : Problem.t -> string

(** [of_string s] parses a problem back; [Error message] on malformed
    input. *)
val of_string : string -> (Problem.t, string) result

(** [write path p] / [read path]: file variants. *)
val write : string -> Problem.t -> unit

val read : string -> (Problem.t, string) result
