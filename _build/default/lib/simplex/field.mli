(** The scalar interface the simplex core is generic over.

    Two instances ship with the library: exact rationals (the default —
    schedules are exact) and IEEE floats with an epsilon-tolerant sign
    (fast, for throughput estimation at scale where exactness is not
    required).  See {!Solver_core.Make}. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val minus_one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val inv : t -> t

  (** [sign x] decides pivot eligibility; a float instance applies a
      tolerance here, which is the single point where robustness
      enters. *)
  val sign : t -> int

  val compare : t -> t -> int
  val of_rational : Numeric.Rational.t -> t
  val to_float : t -> float
  val to_string : t -> string
end

(** Exact rationals: [sign] is exact, the solver is exact. *)
module Rational : S with type t = Numeric.Rational.t

(** IEEE doubles with [sign] tolerance [1e-9]. *)
module Float : S with type t = float
