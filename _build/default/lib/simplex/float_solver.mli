(** Floating-point simplex: {!Solver_core.Make} over IEEE doubles.

    Roughly an order of magnitude faster than the exact solver on the
    scheduling LPs of this library, at the price of [1e-9]-tolerance
    pivoting: use it for large-scale throughput {e estimation}
    (dashboards, sweeps) and keep the exact solver for anything a
    schedule is built from.  Degenerate problems may [Stalled] out of
    the pivot cap instead of terminating. *)

type solution = { value : float; point : float array; pivots : int }
type outcome = Optimal of solution | Unbounded | Infeasible | Stalled

(** [solve ?max_pivots p] solves with float arithmetic (the problem
    statement itself stays exact). *)
val solve : ?max_pivots:int -> Problem.t -> outcome
