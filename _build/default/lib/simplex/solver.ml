module Q = Numeric.Rational
module Exact = Solver_core.Make (Field.Rational)

type solution = { value : Q.t; point : Q.t array; pivots : int }
type outcome = Optimal of solution | Unbounded | Infeasible
type error = Error_unbounded | Error_infeasible

exception Error of error

let string_of_error = function
  | Error_unbounded -> "unbounded problem"
  | Error_infeasible -> "infeasible problem"

let pp_error fmt e = Format.pp_print_string fmt (string_of_error e)

let solve p =
  (* With exact arithmetic Bland's rule terminates: the cap is a pure
     formality, set far beyond any reachable pivot count. *)
  match Exact.solve ~max_pivots:max_int p with
  | Exact.Optimal s ->
    Optimal { value = s.Exact.value; point = s.Exact.point; pivots = s.Exact.pivots }
  | Exact.Unbounded -> Unbounded
  | Exact.Infeasible -> Infeasible
  | Exact.Stalled -> assert false

let solve_result p =
  match solve p with
  | Optimal s -> Ok s
  | Unbounded -> Result.Error Error_unbounded
  | Infeasible -> Result.Error Error_infeasible

let solve_exn p =
  match solve_result p with Ok s -> s | Result.Error e -> raise (Error e)

let pp_outcome fmt = function
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Optimal s ->
    Format.fprintf fmt "@[optimal %a at (%a) in %d pivots@]" Q.pp s.value
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         Q.pp)
      s.point s.pivots
