(** Linear-program descriptions.

    A problem has [n] decision variables, all implicitly constrained to
    be non-negative, a linear objective, and a list of linear
    constraints with relations [<=], [>=] or [=]. *)

module Q = Numeric.Rational

type relation = Le | Ge | Eq

type constr = {
  coeffs : Q.t array;  (** one coefficient per decision variable *)
  relation : relation;
  rhs : Q.t;
}

type direction = Maximize | Minimize

type t = private {
  direction : direction;
  objective : Q.t array;
  constraints : constr array;
  names : string array;  (** variable names, for diagnostics *)
}

(** [make ?names direction objective constraints] checks that every
    constraint has exactly as many coefficients as the objective.
    @raise Invalid_argument on dimension mismatch. *)
val make :
  ?names:string array -> direction -> Q.t array -> constr list -> t

(** [constr coeffs relation rhs] is a convenience constructor. *)
val constr : Q.t array -> relation -> Q.t -> constr

val num_vars : t -> int
val num_constraints : t -> int

(** [eval_constraint c x] is the left-hand-side value [coeffs . x]. *)
val eval_constraint : constr -> Q.t array -> Q.t

(** [objective_value p x] is [objective . x]. *)
val objective_value : t -> Q.t array -> Q.t

(** [holds c x] tests whether point [x] satisfies constraint [c]. *)
val holds : constr -> Q.t array -> bool

val pp : Format.formatter -> t -> unit
