(** Baseline: classical divisible-load scheduling {e without} return
    messages.

    These are the results the paper builds on (its Section 1):

    - on a {e bus} network, the landmark closed form of Bataineh,
      Hsiung, Robertazzi [5] / the DLT book [10]: all workers
      participate, they never idle, they finish simultaneously, and the
      ordering does not matter;
    - on a {e star} network, Beaumont, Casanova, Legrand, Robert, Yang
      [6]: same structure, and the optimal ordering serves workers by
      {e non-decreasing} [c_i] — independent of their compute speeds.

    The loads follow the classical recursion
    [alpha_1 = 1/(c_1 + w_1)], [alpha_{i+1} = alpha_i w_i / (c_{i+1} + w_{i+1})].

    With [d_i = 0] the general scenario LP of this library degenerates
    to exactly this problem, which the test suite exploits: the closed
    form below equals the LP optimum, exactly, and brute force confirms
    the bandwidth-first ordering.  Contrast with the paper's main
    subject: adding return messages breaks every one of these structural
    properties (participation, ordering-by-bandwidth alone). *)

module Q = Numeric.Rational

(** [optimal_order p] is the bandwidth-first order (non-decreasing [c],
    stable).  The [d] components of [p] are ignored. *)
val optimal_order : Platform.t -> int array

(** [loads p ~order] is the closed-form load vector (platform indexing)
    when serving all workers in [order] with no return messages. *)
val loads : Platform.t -> order:int array -> Q.t array

(** [throughput p] is the optimal no-return throughput of the star
    platform [p] (bandwidth-first order, closed form). *)
val throughput : Platform.t -> Q.t

(** [bus_throughput ~c ws] is the closed form of [5,10] on a bus. *)
val bus_throughput : c:Q.t -> Q.t array -> Q.t

(** [strip_returns p] is the platform with every [d] forced to zero —
    the form under which the scenario LP reproduces this module's
    closed forms. *)
val strip_returns : Platform.t -> Platform.t
