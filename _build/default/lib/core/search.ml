module Q = Numeric.Rational
open Q.Infix

type stats = { nodes : int; pruned : int; lps : int }

(* Relaxation bound for a fixed FIFO prefix (ordered) and a set of
   unplaced workers.  Exact deadline rows for the prefix; optimistic
   rows for the unplaced; the full one-port row.  The paper's idle
   variables are omitted: in a pure-[<=] program [chain + x <= 1, x >= 0]
   is equivalent to [chain <= 1], and halving the variable count speeds
   every pivot up. *)
let bound_problem discipline model platform prefix remaining =
  let qp = Array.length prefix and qr = Array.length remaining in
  let n = qp + qr in
  let wk slot = Platform.get platform slot in
  let all = Array.append prefix remaining in
  let constraints = ref [] in
  let add coeffs rhs =
    constraints := Simplex.Problem.constr coeffs Simplex.Problem.Le rhs :: !constraints
  in
  (* prefix deadlines: exact under any completion.  FIFO: position k
     waits for sends up to k and for the returns of positions >= k,
     which include every unplaced worker.  LIFO: position k's sends and
     returns both range over positions <= k only, all in the prefix. *)
  for k = 0 to qp - 1 do
    let coeffs = Array.make n Q.zero in
    for j = 0 to n - 1 do
      let w = wk all.(j) in
      let contrib = ref Q.zero in
      (match discipline with
      | `Fifo ->
        if j <= k && j < qp then contrib := !contrib +/ w.Platform.c;
        if j >= k || j >= qp then contrib := !contrib +/ w.Platform.d
      | `Lifo ->
        if j <= k then contrib := !contrib +/ (w.Platform.c +/ w.Platform.d));
      if j = k then contrib := !contrib +/ w.Platform.w;
      coeffs.(j) <- !contrib
    done;
    add coeffs Q.one
  done;
  (* unplaced workers: optimistic completion.  FIFO: the prefix sends
     precede its own chain.  LIFO: additionally, every prefix worker
     returns after it, so the whole prefix return block is in its way. *)
  for k = qp to n - 1 do
    let coeffs = Array.make n Q.zero in
    for j = 0 to qp - 1 do
      let w = wk all.(j) in
      coeffs.(j) <-
        (match discipline with
        | `Fifo -> w.Platform.c
        | `Lifo -> w.Platform.c +/ w.Platform.d)
    done;
    let w = wk all.(k) in
    coeffs.(k) <- w.Platform.c +/ w.Platform.w +/ w.Platform.d;
    add coeffs Q.one
  done;
  (match model with
  | Lp_model.Two_port -> ()
  | Lp_model.One_port ->
    let coeffs = Array.make n Q.zero in
    for j = 0 to n - 1 do
      let w = wk all.(j) in
      coeffs.(j) <- w.Platform.c +/ w.Platform.d
    done;
    add coeffs Q.one);
  let objective = Array.make n Q.one in
  Simplex.Problem.make Simplex.Problem.Maximize objective (List.rev !constraints)

(* Two-tier bound test: a float solve first — if it says the node cannot
   be pruned (bound clearly above the incumbent) we skip the exact LP
   entirely; only when pruning looks possible do we confirm with exact
   arithmetic, so no subtree is ever cut on floating-point evidence. *)
let prunable discipline model platform prefix remaining ~incumbent ~count_lp =
  let problem = bound_problem discipline model platform prefix remaining in
  let inc = Q.to_float incumbent in
  let clearly_unprunable =
    match Simplex.Float_solver.solve problem with
    | Simplex.Float_solver.Optimal s ->
      s.Simplex.Float_solver.value > inc +. (1e-6 *. Float.max 1.0 (Float.abs inc))
    | _ -> false
  in
  if clearly_unprunable then false
  else begin
    count_lp ();
    let bound = (Simplex.Solver.solve_exn problem).Simplex.Solver.value in
    Q.compare bound incumbent <= 0
  end

let search discipline model platform =
  let n = Platform.size platform in
  let nodes = ref 0 and pruned = ref 0 and lps = ref 0 in
  let scenario_of order =
    match discipline with
    | `Fifo -> Scenario.fifo platform order
    | `Lifo -> Scenario.lifo platform order
  in
  let solve_order order =
    incr lps;
    Lp_model.solve ~model (scenario_of order)
  in
  (* Incumbent: the Theorem 1 heuristic order (also the optimal LIFO
     order under uniform z, per the companion paper). *)
  let incumbent = ref (solve_order (Fifo.order platform)) in
  (* Branch in ascending-c order, which tends to find improvements
     early. *)
  let candidates = Fifo.order platform in
  let rec dfs prefix used =
    incr nodes;
    let remaining =
      Array.of_list
        (List.filter (fun i -> not used.(i)) (Array.to_list candidates))
    in
    if Array.length remaining = 0 then begin
      let sol = solve_order (Array.of_list (List.rev prefix)) in
      if sol.Lp_model.rho >/ !incumbent.Lp_model.rho then incumbent := sol
    end
    else if
      prunable discipline model platform
        (Array.of_list (List.rev prefix))
        remaining ~incumbent:!incumbent.Lp_model.rho
        ~count_lp:(fun () -> incr lps)
    then incr pruned
    else
      Array.iter
        (fun i ->
          used.(i) <- true;
          dfs (i :: prefix) used;
          used.(i) <- false)
        remaining
  in
  dfs [] (Array.make n false);
  (!incumbent, { nodes = !nodes; pruned = !pruned; lps = !lps })

let best_fifo ?(model = Lp_model.One_port) platform = search `Fifo model platform
let best_lifo ?(model = Lp_model.One_port) platform = search `Lifo model platform
