module Q = Numeric.Rational
open Q.Infix

let fold_workers p f init =
  let acc = ref init in
  for i = 0 to Platform.size p - 1 do
    acc := f !acc (Platform.get p i)
  done;
  !acc

let port_bound p =
  let best =
    fold_workers p
      (fun acc wk ->
        let cd = wk.Platform.c +/ wk.Platform.d in
        match acc with Some m when m <=/ cd -> acc | _ -> Some cd)
      None
  in
  match best with Some m -> Q.inv m | None -> assert false

let chain_time wk = wk.Platform.c +/ wk.Platform.w +/ wk.Platform.d
let chain_bound p = fold_workers p (fun acc wk -> acc +/ Q.inv (chain_time wk)) Q.zero
let upper p = Q.min (port_bound p) (chain_bound p)

let lower p =
  fold_workers p (fun acc wk -> Q.max acc (Q.inv (chain_time wk))) Q.zero
