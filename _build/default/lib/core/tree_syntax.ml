module Q = Numeric.Rational

type sexp = Atom of string | List of sexp list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    match text.[!i] with
    | '(' ->
      tokens := "(" :: !tokens;
      incr i
    | ')' ->
      tokens := ")" :: !tokens;
      incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' ->
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    | _ ->
      let start = !i in
      while
        !i < n
        && not (List.mem text.[!i] [ '('; ')'; ' '; '\t'; '\n'; '\r'; ';' ])
      do
        incr i
      done;
      tokens := String.sub text start (!i - start) :: !tokens
  done;
  List.rev !tokens

let parse_sexp tokens =
  let rec one = function
    | [] -> fail "unexpected end of input"
    | "(" :: rest ->
      let items, rest = many [] rest in
      (List items, rest)
    | ")" :: _ -> fail "unexpected ')'"
    | atom :: rest -> (Atom atom, rest)
  and many acc = function
    | ")" :: rest -> (List.rev acc, rest)
    | [] -> fail "missing ')'"
    | tokens ->
      let item, rest = one tokens in
      many (item :: acc) rest
  in
  match one tokens with
  | sexp, [] -> sexp
  | _, _ :: _ -> fail "trailing tokens after the tree"

let rational_of_atom s =
  match Q.of_string s with
  | q ->
    if Q.sign q <= 0 then fail "costs must be positive, got %s" s;
    q
  | exception _ -> fail "expected a rational, got %S" s

let rec tree_of_sexp = function
  | Atom a -> fail "expected a tree, got atom %S" a
  | List (Atom "leaf" :: [ Atom w ]) -> Tree.leaf (rational_of_atom w)
  | List (Atom "leaf" :: _) -> fail "leaf takes exactly one cost"
  | List (Atom "relay" :: children) -> Tree.node (List.map child_of_sexp children)
  | List (Atom "node" :: Atom w :: children) ->
    Tree.node ~w:(rational_of_atom w) (List.map child_of_sexp children)
  | List (Atom "node" :: children) -> Tree.node (List.map child_of_sexp children)
  | List _ -> fail "expected (leaf W), (node [W] ...) or (relay ...)"

and child_of_sexp = function
  | List [ Atom c; sub ] -> (rational_of_atom c, tree_of_sexp sub)
  | _ -> fail "expected a (link-cost tree) pair"

let of_string text =
  match parse_sexp (tokenize text) with
  | exception Parse_error e -> Error e
  | sexp -> (
    match tree_of_sexp sexp with
    | tree -> Ok tree
    | exception Parse_error e -> Error e
    | exception Invalid_argument e -> Error e)

let rec to_string (t : Tree.t) =
  match (t.Tree.w, t.Tree.children) with
  | Some w, [] -> Printf.sprintf "(leaf %s)" (Q.to_string w)
  | Some w, children ->
    Printf.sprintf "(node %s %s)" (Q.to_string w) (children_to_string children)
  | None, children -> Printf.sprintf "(relay %s)" (children_to_string children)

and children_to_string children =
  String.concat " "
    (List.map
       (fun (c, sub) -> Printf.sprintf "(%s %s)" (Q.to_string c) (to_string sub))
       children)
