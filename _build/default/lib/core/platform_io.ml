module Q = Numeric.Rational

let to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# name c w d (rationals; per load unit)\n";
  for i = 0 to Platform.size p - 1 do
    let wk = Platform.get p i in
    Buffer.add_string buf
      (Printf.sprintf "%s %s %s %s\n" wk.Platform.name (Q.to_string wk.Platform.c)
         (Q.to_string wk.Platform.w) (Q.to_string wk.Platform.d))
  done;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
    with
    | [] -> Ok None
    | [ name; c; w; d ] -> (
      try
        Ok
          (Some
             (Platform.worker ~name ~c:(Q.of_string c) ~w:(Q.of_string w)
                ~d:(Q.of_string d) ()))
      with Invalid_argument msg | Failure msg ->
        Error (Printf.sprintf "line %d: %s" lineno msg))
    | fields ->
      Error
        (Printf.sprintf "line %d: expected 'name c w d', found %d fields" lineno
           (List.length fields))
  in
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> collect (lineno + 1) acc rest
      | Ok (Some w) -> collect (lineno + 1) (w :: acc) rest
      | Error e -> Error e)
  in
  match collect 1 [] lines with
  | Error e -> Error e
  | Ok [] -> Error "no workers"
  | Ok workers -> (
    match Platform.make workers with
    | Ok p -> Ok p
    | Error e -> Error (Errors.to_string e))

let write path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    of_string content
