(** Star-shaped master/worker platforms with the linear cost model.

    A platform is a master [P0] (no processing capability, as in the
    paper) plus [p] workers.  Worker [Pi] is described by three positive
    rationals: sending [X] load units from the master to [Pi] takes
    [X.ci] time units, processing them takes [X.wi], and returning the
    results takes [X.di].  A {e bus} is a star whose links are all
    identical ([ci = c], [di = d]).

    The paper's analysis assumes a uniform return ratio [di = z.ci];
    {!z_ratio} detects it. *)

module Q = Numeric.Rational

type worker = private {
  name : string;
  c : Q.t;  (** forward communication time per load unit *)
  w : Q.t;  (** computation time per load unit *)
  d : Q.t;  (** return communication time per load unit *)
}

type t = private { workers : worker array }

(** [worker ?name ~c ~w ~d ()] builds a worker description.
    @raise Invalid_argument unless [c > 0], [w > 0] and [d >= 0]. *)
val worker : ?name:string -> c:Q.t -> w:Q.t -> d:Q.t -> unit -> worker

(** [make workers] builds a platform; [Error (Invalid_scenario _)] when
    [workers] is empty. *)
val make : worker list -> (t, Errors.t) result

(** [make_exn workers] is {!make}. @raise Errors.Error accordingly. *)
val make_exn : worker list -> t

(** [of_floats specs] builds a platform from [(c, w, d)] float triples
    (converted exactly). *)
val of_floats : (float * float * float) list -> t

(** [bus ~c ~d ws] builds a bus platform: uniform link costs, per-worker
    compute costs [ws]. *)
val bus : c:Q.t -> d:Q.t -> Q.t list -> t

(** [with_return_ratio ~z specs] builds a star from [(c, w)] pairs with
    [d = z*c]. *)
val with_return_ratio : z:Q.t -> (Q.t * Q.t) list -> t

val size : t -> int
val get : t -> int -> worker

(** [z_ratio p] is [Some z] when every worker satisfies [d = z*c]. *)
val z_ratio : t -> Q.t option

(** [is_bus p] holds when all links are identical. *)
val is_bus : t -> bool

(** [scale_comm k p] multiplies every [c] and [d] by [k] (k > 0);
    [scale_comp k p] multiplies every [w].  Speeding a worker up by a
    factor [f] is scaling by [1/f]. *)
val scale_comm : Q.t -> t -> t

val scale_comp : Q.t -> t -> t

(** [restrict p keep] is the sub-platform with the workers whose indices
    are listed in [keep], in that order. *)
val restrict : t -> int array -> t

(** [sorted_indices_by p f] is the worker indices sorted by [f] in
    non-decreasing order, stable w.r.t. the original order. *)
val sorted_indices_by : t -> (worker -> Q.t) -> int array

val pp : Format.formatter -> t -> unit
