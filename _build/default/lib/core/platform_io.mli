(** Text serialization of platforms.

    One worker per line: [name c w d], whitespace-separated, rational
    components; blank lines and [#] comments ignored.

    {v
    # the paper's Figure 14 platform at x = 1, matrix size 400
    P1  32/1250  512/27000  16/1250
    P2  2/625    512/27000  1/625
    v} *)

(** [to_string p] serializes the platform. *)
val to_string : Platform.t -> string

(** [of_string s] parses a platform; [Error message] on malformed
    input. *)
val of_string : string -> (Platform.t, string) result

(** [write path p] / [read path]: file variants. *)
val write : string -> Platform.t -> unit

val read : string -> (Platform.t, string) result
