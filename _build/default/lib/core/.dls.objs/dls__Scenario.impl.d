lib/core/scenario.ml: Array Format Fun Platform Printf Stdlib String
