lib/core/scenario.ml: Array Errors Format Fun Platform Result Stdlib String
