lib/core/platform_io.mli: Platform
