lib/core/multiround.mli: Numeric Platform
