lib/core/errors.ml: Format Printexc Printf Result Simplex
