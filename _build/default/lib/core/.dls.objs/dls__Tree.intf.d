lib/core/tree.mli: Format Numeric
