lib/core/lp_model.mli: Format Numeric Scenario Simplex
