lib/core/lp_model.mli: Errors Format Numeric Parallel Scenario Simplex
