lib/core/brute.ml: Array Fun List Lp_model Numeric Parallel Platform Scenario
