lib/core/closed_form.ml: Array Numeric Platform
