lib/core/no_return.ml: Array List Numeric Platform
