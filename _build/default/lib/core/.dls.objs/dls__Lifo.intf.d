lib/core/lifo.mli: Lp_model Platform
