lib/core/platform_io.ml: Buffer Errors List Numeric Platform Printf String
