lib/core/platform_io.ml: Buffer List Numeric Platform Printf String
