lib/core/no_return.mli: Numeric Platform
