lib/core/platform.ml: Array Format Fun List Numeric Option Printf Stdlib
