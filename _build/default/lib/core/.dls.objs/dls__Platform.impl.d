lib/core/platform.ml: Array Errors Format Fun List Numeric Option Printf Stdlib
