lib/core/bounds.mli: Numeric Platform
