lib/core/heuristics.mli: Lp_model Platform
