lib/core/sensitivity.mli: Lp_model Numeric Platform
