lib/core/heuristics.ml: Fifo Lifo Platform
