lib/core/lp_model.ml: Array Buffer Errors Format List Numeric Option Parallel Platform Printf Scenario Simplex String
