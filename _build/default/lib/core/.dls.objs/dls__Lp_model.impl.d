lib/core/lp_model.ml: Array Format List Numeric Platform Printf Scenario Simplex String
