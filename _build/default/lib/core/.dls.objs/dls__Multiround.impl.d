lib/core/multiround.ml: Array Errors List Numeric Platform Scenario Simplex String
