lib/core/multiround.ml: Array List Numeric Platform Scenario Simplex String
