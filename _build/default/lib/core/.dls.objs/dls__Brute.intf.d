lib/core/brute.mli: Lp_model Numeric Platform
