lib/core/tree_syntax.mli: Tree
