lib/core/closed_form.mli: Numeric Platform
