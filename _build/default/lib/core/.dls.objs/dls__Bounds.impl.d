lib/core/bounds.ml: Numeric Platform
