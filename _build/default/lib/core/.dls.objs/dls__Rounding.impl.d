lib/core/rounding.ml: Array List Lp_model Numeric Scenario
