lib/core/lifo.ml: Fifo Lp_model Scenario
