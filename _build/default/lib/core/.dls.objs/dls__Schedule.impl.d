lib/core/schedule.ml: Array Format Hashtbl List Lp_model Numeric Platform Printf Scenario
