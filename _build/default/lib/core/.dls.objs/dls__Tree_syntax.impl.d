lib/core/tree_syntax.ml: List Numeric Printf String Tree
