lib/core/rounding.mli: Lp_model Numeric
