lib/core/sensitivity.ml: Fifo Fun List Lp_model Numeric Platform Printf
