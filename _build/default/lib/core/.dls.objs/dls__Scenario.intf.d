lib/core/scenario.mli: Format Platform
