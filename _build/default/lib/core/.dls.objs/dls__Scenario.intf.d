lib/core/scenario.mli: Errors Format Platform
