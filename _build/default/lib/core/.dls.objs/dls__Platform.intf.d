lib/core/platform.mli: Errors Format Numeric
