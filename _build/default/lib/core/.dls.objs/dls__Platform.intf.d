lib/core/platform.mli: Format Numeric
