lib/core/fifo.mli: Lp_model Numeric Platform Schedule
