lib/core/fifo.mli: Errors Lp_model Numeric Platform Schedule
