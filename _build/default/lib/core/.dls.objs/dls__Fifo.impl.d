lib/core/fifo.ml: Array List Lp_model Numeric Platform Scenario Schedule
