lib/core/fifo.ml: Array Errors List Lp_model Numeric Platform Scenario Schedule
