lib/core/schedule.mli: Format Lp_model Numeric Platform
