lib/core/search.ml: Array Atomic Fifo Float List Lp_model Numeric Parallel Platform Scenario Simplex
