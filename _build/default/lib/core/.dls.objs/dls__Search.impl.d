lib/core/search.ml: Array Fifo Float List Lp_model Numeric Platform Scenario Simplex
