lib/core/affine.ml: Array Brute List Lp_model Numeric Platform Printf Scenario Simplex String
