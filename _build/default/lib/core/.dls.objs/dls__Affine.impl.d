lib/core/affine.ml: Array Brute Errors List Lp_model Numeric Platform Printf Scenario Simplex String
