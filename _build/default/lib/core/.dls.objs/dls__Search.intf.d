lib/core/search.mli: Lp_model Numeric Platform
