lib/core/errors.mli: Format Simplex
