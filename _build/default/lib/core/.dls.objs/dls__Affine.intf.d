lib/core/affine.mli: Lp_model Numeric Platform
