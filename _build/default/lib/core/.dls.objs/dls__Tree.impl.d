lib/core/tree.ml: Format List Numeric Option Printf Stdlib
