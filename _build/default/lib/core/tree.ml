module Q = Numeric.Rational
open Q.Infix

type t = { name : string; w : Q.t option; children : (Q.t * t) list }

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

let leaf ?name w =
  if Q.sign w <= 0 then invalid_arg "Tree.leaf: w must be positive";
  { name = Option.value name ~default:(fresh_name "L"); w = Some w; children = [] }

let node ?name ?w children =
  (match w with
  | Some w when Q.sign w <= 0 -> invalid_arg "Tree.node: w must be positive"
  | _ -> ());
  if w = None && children = [] then
    invalid_arg "Tree.node: a relay node needs children";
  List.iter
    (fun (c, _) -> if Q.sign c <= 0 then invalid_arg "Tree.node: link cost must be positive")
    children;
  { name = Option.value name ~default:(fresh_name "N"); w; children }

let root children = node ~name:"root" children

let rec size t =
  1 + List.fold_left (fun acc (_, child) -> acc + size child) 0 t.children

(* The local star of a node acting as a worker: itself as a zero-cost
   pseudo-child (front-end overlap) plus every child summarized by its
   equivalent cost.  Entries are (link cost, per-unit cost), sorted
   bandwidth-first; [include_self] is dropped for the root (the master
   does not compute). *)
let rec local_star ~include_self t =
  let children =
    List.map (fun (c, child) -> (c, equivalent_w child)) t.children
  in
  let entries =
    match (include_self, t.w) with
    | true, Some w -> (Q.zero, w) :: children
    | _ -> children
  in
  List.stable_sort (fun (c1, _) (c2, _) -> Q.compare c1 c2) entries

(* Closed-form loads of [6] on a (c, w) list, unit horizon. *)
and star_loads entries =
  let previous = ref None in
  List.map
    (fun (c, w) ->
      let alpha =
        match !previous with
        | None -> Q.inv (c +/ w)
        | Some (alpha, w_prev) -> alpha */ w_prev // (c +/ w)
      in
      previous := Some (alpha, w);
      alpha)
    entries

and throughput_as_worker t = Q.sum (star_loads (local_star ~include_self:true t))

and equivalent_w t =
  match (t.w, t.children) with
  | Some w, [] -> w
  | _ -> Q.inv (throughput_as_worker t)

let throughput t =
  if t.children = [] then invalid_arg "Tree.throughput: the root has no workers";
  Q.sum (star_loads (local_star ~include_self:false t))

type assignment = {
  node_name : string;
  load : Q.t;
  subtree_load : Q.t;
  receive_start : Q.t;
  receive_finish : Q.t;
  compute_finish : Q.t;
}

(* Lay the timeline out recursively.  [total] units enter the subtree
   during [recv_start, recv_finish] and every computation must end by
   [deadline]; the closed form guarantees an exact fit. *)
let schedule t =
  let out = ref [] in
  let rec layout node ~recv_start ~recv_finish ~deadline ~total ~is_root =
    let include_self = (not is_root) && node.w <> None in
    let entries = local_star ~include_self node in
    let unit_loads = star_loads entries in
    let rho = Q.sum unit_loads in
    let window = deadline -/ recv_finish in
    assert (Q.equal total (window */ rho));
    let scale = window in
    (* Split the scaled loads back between "self" and the children: the
       self pseudo-entry, when present, is the unique zero-c entry. *)
    let own_load = ref Q.zero in
    let child_loads = ref [] in
    List.iter2
      (fun (c, _) alpha ->
        let load = alpha */ scale in
        if include_self && Q.is_zero c then own_load := load
        else child_loads := load :: !child_loads)
      entries unit_loads;
    let child_loads = List.rev !child_loads in
    (* Computing nodes end exactly at the deadline (simultaneous
       completion); relays and the root do not compute. *)
    let compute_finish = if include_self then deadline else recv_finish in
    out :=
      {
        node_name = node.name;
        load = !own_load;
        subtree_load = total;
        receive_start = recv_start;
        receive_finish = recv_finish;
        compute_finish;
      }
      :: !out;
    (* children sorted bandwidth-first, served back-to-back *)
    let sorted_children =
      List.stable_sort (fun (c1, _) (c2, _) -> Q.compare c1 c2) node.children
    in
    let clock = ref recv_finish in
    List.iter2
      (fun (c, child) load ->
        let start = !clock in
        let finish = start +/ (load */ c) in
        clock := finish;
        layout child ~recv_start:start ~recv_finish:finish ~deadline
          ~total:load ~is_root:false)
      sorted_children child_loads
  in
  let total = throughput t in
  layout t ~recv_start:Q.zero ~recv_finish:Q.zero ~deadline:Q.one ~total
    ~is_root:true;
  List.rev !out

let validate t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let assignments = schedule t in
  let names = List.map (fun a -> a.node_name) assignments in
  if List.length (List.sort_uniq Stdlib.compare names) <> List.length names then
    add "duplicate node names: validation needs unique names";
  let find name =
    match List.find_opt (fun a -> a.node_name = name) assignments with
    | Some a -> a
    | None ->
      add "node %s missing from the schedule" name;
      raise Exit
  in
  (try
     let rec walk node ~is_root =
       let a = find node.name in
       (* conservation *)
       let children_total =
         Q.sum (List.map (fun (_, child) -> (find child.name).subtree_load) node.children)
       in
       if a.subtree_load <>/ (a.load +/ children_total) then
         add "%s: subtree load %s <> own %s + children %s" node.name
           (Q.to_string a.subtree_load) (Q.to_string a.load)
           (Q.to_string children_total);
       (* reception window duration *)
       if not is_root then begin
         if Q.sign a.subtree_load <= 0 then add "%s: no load" node.name
       end;
       (* own computation fits and uses the whole window *)
       (match node.w with
       | Some w when not is_root ->
         let start = a.receive_finish in
         if start +/ (a.load */ w) <>/ a.compute_finish then
           add "%s: compute duration mismatch" node.name;
         if a.compute_finish <>/ Q.one then
           add "%s: does not finish at the horizon (%s)" node.name
             (Q.to_string a.compute_finish)
       | _ -> if Q.sign a.load <> 0 then add "%s: relay with load" node.name);
       (* children: bandwidth-first, consecutive sends after reception *)
       let sorted_children =
         List.stable_sort
           (fun ((c1 : Q.t), _) (c2, _) -> Q.compare c1 c2)
           node.children
       in
       let clock = ref a.receive_finish in
       List.iter
         (fun (c, child) ->
           let ca = find child.name in
           if ca.receive_start <>/ !clock then
             add "%s -> %s: transfer does not chain (starts %s, expected %s)"
               node.name child.name
               (Q.to_string ca.receive_start)
               (Q.to_string !clock);
           if ca.receive_finish <>/ (ca.receive_start +/ (ca.subtree_load */ c))
           then add "%s -> %s: transfer duration mismatch" node.name child.name;
           clock := ca.receive_finish;
           walk child ~is_root:false)
         sorted_children
     in
     walk t ~is_root:true
   with Exit -> ());
  if !errs = [] then Ok () else Error (List.rev !errs)

let rec pp fmt t =
  let w_str = match t.w with Some w -> Q.to_string w | None -> "-" in
  Format.fprintf fmt "@[<v 2>%s (w=%s)" t.name w_str;
  List.iter
    (fun (c, child) -> Format.fprintf fmt "@,--%s--> %a" (Q.to_string c) pp child)
    t.children;
  Format.fprintf fmt "@]"
