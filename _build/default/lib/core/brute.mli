(** Exhaustive search over message orderings.

    The complexity of the general problem (free permutation pair) is
    open — the paper conjectures NP-hardness.  For small platforms we
    can brute-force it: every ordering of the full worker set is tried
    (subsets are covered automatically, since the LP may assign zero
    load), for FIFO, LIFO, or arbitrary [(sigma1, sigma2)] pairs.  Used
    by the test suite to verify Theorem 1 and by the ablation benchmarks
    to measure how far FIFO/LIFO sit from the best-known schedule. *)

module Q = Numeric.Rational

(** [permutations n] lists all permutations of [0..n-1].  [n! ] entries:
    keep [n] small. *)
val permutations : int -> int array list

(** [best_fifo ?model platform] is the optimum over all FIFO scenarios. *)
val best_fifo : ?model:Lp_model.model -> Platform.t -> Lp_model.solved

(** [best_lifo ?model platform] is the optimum over all LIFO scenarios. *)
val best_lifo : ?model:Lp_model.model -> Platform.t -> Lp_model.solved

(** [best_general ?model platform] is the optimum over all
    [(sigma1, sigma2)] pairs — [ (n!)² ] LPs. *)
val best_general : ?model:Lp_model.model -> Platform.t -> Lp_model.solved
