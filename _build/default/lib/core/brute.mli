(** Exhaustive search over message orderings.

    The complexity of the general problem (free permutation pair) is
    open — the paper conjectures NP-hardness.  For small platforms we
    can brute-force it: every ordering of the full worker set is tried
    (subsets are covered automatically, since the LP may assign zero
    load), for FIFO, LIFO, or arbitrary [(sigma1, sigma2)] pairs.  Used
    by the test suite to verify Theorem 1 and by the ablation benchmarks
    to measure how far FIFO/LIFO sit from the best-known schedule.

    All entry points accept [?jobs] (default 1): the independent LPs are
    fanned out over a domain pool, and the reduction runs sequentially
    in enumeration order with a strict comparison, so the returned
    solution is {e bit-identical} for every [jobs] value — parallelism
    only changes wall-clock time.  Solves go through
    {!Lp_model.solve_cached}. *)

module Q = Numeric.Rational

(** [permutations n] lists all permutations of [0..n-1].  [n! ] entries:
    keep [n] small. *)
val permutations : int -> int array list

(** [best_fifo ?model ?jobs platform] is the optimum over all FIFO
    scenarios. *)
val best_fifo : ?model:Lp_model.model -> ?jobs:int -> Platform.t -> Lp_model.solved

(** [best_lifo ?model ?jobs platform] is the optimum over all LIFO
    scenarios. *)
val best_lifo : ?model:Lp_model.model -> ?jobs:int -> Platform.t -> Lp_model.solved

(** [best_general ?model ?jobs platform] is the optimum over all
    [(sigma1, sigma2)] pairs — [ (n!)² ] LPs. *)
val best_general : ?model:Lp_model.model -> ?jobs:int -> Platform.t -> Lp_model.solved
