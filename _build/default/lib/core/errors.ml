type t = Unbounded | Infeasible | Invalid_scenario of string

exception Error of t

let to_string = function
  | Unbounded -> "unbounded scheduling LP"
  | Infeasible -> "infeasible scheduling LP"
  | Invalid_scenario msg -> "invalid scenario: " ^ msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

let of_solver = function
  | Simplex.Solver.Error_unbounded -> Unbounded
  | Simplex.Solver.Error_infeasible -> Infeasible

let get_exn = function Ok v -> v | Error e -> raise (Error e)
let invalid fmt =
  Printf.ksprintf (fun msg -> Result.Error (Invalid_scenario msg)) fmt

(* Render the payload in [Printexc] backtraces and alcotest failures. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Dls.Errors.Error: " ^ to_string e)
    | _ -> None)
