(** Cheap analytic bounds on the optimal one-port throughput — no LP
    required.

    Useful as sanity envelopes around solver output and as first-cut
    estimates on very large platforms:

    - {e port bound}: every processed unit crosses the master's port
      twice (data + results), so [rho <= 1 / min_i (c_i + d_i)];
    - {e chain bound}: worker [i]'s own chain occupies
      [alpha_i (c_i + w_i + d_i) <= 1], so
      [rho <= Σ 1/(c_i + w_i + d_i)];
    - {e single-worker lower bound}: serving only the best worker
      achieves [max_i 1/(c_i + w_i + d_i)].

    The test suite checks [lower <= rho_opt <= upper] exactly on random
    platforms. *)

module Q = Numeric.Rational

(** [port_bound p] is [1 / min (c_i + d_i)]. *)
val port_bound : Platform.t -> Q.t

(** [chain_bound p] is [Σ 1/(c_i + w_i + d_i)]. *)
val chain_bound : Platform.t -> Q.t

(** [upper p] is the tighter of the two upper bounds. *)
val upper : Platform.t -> Q.t

(** [lower p] is the best single-worker throughput. *)
val lower : Platform.t -> Q.t
