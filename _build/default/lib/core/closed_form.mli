(** Closed-form throughputs on bus networks (Theorem 2 of the paper and
    the two-port bound it builds on).

    On a bus ([ci = c], [di = d]) the optimal FIFO one-port throughput is

    {v rho_opt = min( 1/(c+d) , Σ u_i / (1 + d Σ u_i) ) v}

    where [u_i = 1/(d + w_i) * Π_{j<=i} (d + w_j)/(c + w_j)].  The second
    term [ρ̃] is the optimal {e two-port} FIFO throughput from the
    companion paper; all workers participate in the optimal solution. *)

module Q = Numeric.Rational

(** [bus_u ~c ~d ws] is the vector [u] above, in worker order. *)
val bus_u : c:Q.t -> d:Q.t -> Q.t array -> Q.t array

(** [two_port_throughput ~c ~d ws] is [ρ̃ = Σu / (1 + d Σu)]. *)
val two_port_throughput : c:Q.t -> d:Q.t -> Q.t array -> Q.t

(** [fifo_throughput ~c ~d ws] is Theorem 2's [rho_opt]. *)
val fifo_throughput : c:Q.t -> d:Q.t -> Q.t array -> Q.t

(** [fifo_throughput_of_platform p] applies Theorem 2 to a platform.
    @raise Invalid_argument when [p] is not a bus. *)
val fifo_throughput_of_platform : Platform.t -> Q.t
