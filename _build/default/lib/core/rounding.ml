module Q = Numeric.Rational
open Q.Infix

let scaled_weights ~weights ~total =
  if total < 0 then invalid_arg "Rounding: negative total";
  Array.iter
    (fun w -> if Q.sign w < 0 then invalid_arg "Rounding: negative weight")
    weights;
  let sum = Q.sum_array weights in
  if Q.sign sum <= 0 then invalid_arg "Rounding: all weights zero";
  let scale = Q.of_int total // sum in
  Array.map (fun w -> w */ scale) weights

let share_out ~weights ~order ~total =
  let exact = scaled_weights ~weights ~total in
  let loads = Array.map Q.floor_int exact in
  let assigned = Array.fold_left ( + ) 0 loads in
  let leftover = ref (total - assigned) in
  (* Hand the K leftover items to the first K positive-weight entries in
     [order], cycling in the (impossible in theory, cheap to guard)
     event of more leftovers than entries. *)
  let positive =
    Array.of_list
      (List.filter (fun i -> Q.sign weights.(i) > 0) (Array.to_list order))
  in
  let k = ref 0 in
  while !leftover > 0 && Array.length positive > 0 do
    let i = positive.(!k mod Array.length positive) in
    loads.(i) <- loads.(i) + 1;
    decr leftover;
    incr k
  done;
  loads

let integer_loads (sol : Lp_model.solved) ~total =
  if Q.sign sol.Lp_model.rho <= 0 then invalid_arg "Rounding: zero throughput";
  share_out ~weights:sol.Lp_model.alpha
    ~order:sol.Lp_model.scenario.Scenario.sigma1 ~total

let imbalance sol ~total =
  let exact = scaled_weights ~weights:sol.Lp_model.alpha ~total in
  let rounded = integer_loads sol ~total in
  let worst = ref Q.zero in
  Array.iteri
    (fun i e ->
      let dev = Q.abs (Q.of_int rounded.(i) -/ e) in
      if dev >/ !worst then worst := dev)
    exact;
  !worst
