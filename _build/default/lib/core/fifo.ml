module Q = Numeric.Rational

let order platform =
  let ascending =
    Platform.sorted_indices_by platform (fun wk -> wk.Platform.c)
  in
  match Platform.z_ratio platform with
  | Some z when Q.compare z Q.one > 0 ->
    let n = Array.length ascending in
    Array.init n (fun i -> ascending.(n - 1 - i))
  | Some _ | None -> ascending

let solve_order ?model platform ord =
  Lp_model.solve ?model (Scenario.fifo platform ord)

let optimal ?model platform = solve_order ?model platform (order platform)

let optimal_via_mirror platform =
  let p = Platform.size platform in
  let swapped =
    Platform.make
      (List.init p (fun i ->
           let wk = Platform.get platform i in
           if Q.is_zero wk.Platform.d then
             invalid_arg "Fifo.optimal_via_mirror: worker with d = 0";
           Platform.worker ~name:wk.Platform.name ~c:wk.Platform.d
             ~w:wk.Platform.w ~d:wk.Platform.c ()))
  in
  let solved = optimal swapped in
  let sched = Schedule.mirror (Schedule.of_solved solved) in
  (solved.Lp_model.rho, sched)
