module Q = Numeric.Rational

let order platform =
  let ascending =
    Platform.sorted_indices_by platform (fun wk -> wk.Platform.c)
  in
  match Platform.z_ratio platform with
  | Some z when Q.compare z Q.one > 0 ->
    let n = Array.length ascending in
    Array.init n (fun i -> ascending.(n - 1 - i))
  | Some _ | None -> ascending

let solve_order ?model platform ord =
  Lp_model.solve_exn ?model (Scenario.fifo_exn platform ord)

let optimal ?model platform = solve_order ?model platform (order platform)

type mirrored = { solved : Lp_model.solved; schedule : Schedule.t }

let optimal_via_mirror platform =
  let p = Platform.size platform in
  let exception Zero_d of string in
  match
    Platform.make_exn
      (List.init p (fun i ->
           let wk = Platform.get platform i in
           if Q.is_zero wk.Platform.d then
             raise (Zero_d wk.Platform.name);
           Platform.worker ~name:wk.Platform.name ~c:wk.Platform.d
             ~w:wk.Platform.w ~d:wk.Platform.c ()))
  with
  | exception Zero_d name ->
    Errors.invalid "Fifo.optimal_via_mirror: worker %s has d = 0" name
  | swapped ->
    let solved = optimal swapped in
    let schedule = Schedule.mirror (Schedule.of_solved solved) in
    Ok { solved; schedule }

let optimal_via_mirror_exn platform = Errors.get_exn (optimal_via_mirror platform)
