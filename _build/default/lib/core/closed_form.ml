module Q = Numeric.Rational
open Q.Infix

let bus_u ~c ~d ws =
  let prefix = ref Q.one in
  Array.map
    (fun w ->
      prefix := !prefix */ ((d +/ w) // (c +/ w));
      !prefix // (d +/ w))
    ws

let two_port_throughput ~c ~d ws =
  let su = Q.sum_array (bus_u ~c ~d ws) in
  su // (Q.one +/ (d */ su))

let fifo_throughput ~c ~d ws =
  Q.min (Q.inv (c +/ d)) (two_port_throughput ~c ~d ws)

let fifo_throughput_of_platform p =
  if not (Platform.is_bus p) then
    invalid_arg "Closed_form.fifo_throughput_of_platform: not a bus network";
  let w0 = Platform.get p 0 in
  let ws = Array.init (Platform.size p) (fun i -> (Platform.get p i).Platform.w) in
  fifo_throughput ~c:w0.Platform.c ~d:w0.Platform.d ws
