(** The three scheduling heuristics compared in the paper's experiments
    (Section 5):

    - [Inc_c]: FIFO over all workers sorted by non-decreasing [c_i]
      (fastest-communicating first) — the optimal FIFO order of
      Theorem 1;
    - [Inc_w]: FIFO over all workers sorted by non-decreasing [w_i]
      (fastest-computing first) — the natural but suboptimal order;
    - [Lifo]: the optimal one-port LIFO solution.

    Each heuristic fixes the permutations; the loads come from the
    scenario LP, exactly as in the paper's MPI programs. *)

type t = Inc_c | Inc_w | Lifo

val all : t list
val name : t -> string

(** [solve ?model heuristic platform] dimensions the heuristic's
    schedule with the scenario LP. *)
val solve : ?model:Lp_model.model -> t -> Platform.t -> Lp_model.solved
