module Q = Numeric.Rational

type worker = { name : string; c : Q.t; w : Q.t; d : Q.t }
type t = { workers : worker array }

let worker ?name ~c ~w ~d () =
  if Q.sign c <= 0 then invalid_arg "Platform.worker: c must be positive";
  if Q.sign w <= 0 then invalid_arg "Platform.worker: w must be positive";
  if Q.sign d < 0 then invalid_arg "Platform.worker: d must be non-negative";
  { name = Option.value name ~default:""; c; w; d }

let make workers =
  if workers = [] then Errors.invalid "Platform.make: no workers"
  else begin
    let named =
      List.mapi
        (fun i wk ->
          if wk.name = "" then { wk with name = Printf.sprintf "P%d" (i + 1) }
          else wk)
        workers
    in
    Ok { workers = Array.of_list named }
  end

let make_exn workers = Errors.get_exn (make workers)

let of_floats specs =
  make_exn
    (List.map
       (fun (c, w, d) ->
         worker ~c:(Q.of_float c) ~w:(Q.of_float w) ~d:(Q.of_float d) ())
       specs)

let bus ~c ~d ws = make_exn (List.map (fun w -> worker ~c ~w ~d ()) ws)

let with_return_ratio ~z specs =
  make_exn (List.map (fun (c, w) -> worker ~c ~w ~d:(Q.mul z c) ()) specs)

let size p = Array.length p.workers
let get p i = p.workers.(i)

let z_ratio p =
  let ratios = Array.map (fun wk -> Q.div wk.d wk.c) p.workers in
  let z = ratios.(0) in
  if Array.for_all (Q.equal z) ratios then Some z else None

let is_bus p =
  let w0 = p.workers.(0) in
  Array.for_all (fun wk -> Q.equal wk.c w0.c && Q.equal wk.d w0.d) p.workers

let scale_comm k p =
  if Q.sign k <= 0 then invalid_arg "Platform.scale_comm: factor must be positive";
  { workers = Array.map (fun wk -> { wk with c = Q.mul k wk.c; d = Q.mul k wk.d }) p.workers }

let scale_comp k p =
  if Q.sign k <= 0 then invalid_arg "Platform.scale_comp: factor must be positive";
  { workers = Array.map (fun wk -> { wk with w = Q.mul k wk.w }) p.workers }

let restrict p keep = { workers = Array.map (fun i -> p.workers.(i)) keep }

let sorted_indices_by p f =
  let idx = Array.init (size p) Fun.id in
  let key = Array.map f p.workers in
  (* stable sort on (key, original index) *)
  Array.sort
    (fun i j ->
      let c = Q.compare key.(i) key.(j) in
      if c <> 0 then c else Stdlib.compare i j)
    idx;
  idx

let pp fmt p =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun wk ->
      Format.fprintf fmt "%-6s c=%-10s w=%-10s d=%s@," wk.name (Q.to_string wk.c)
        (Q.to_string wk.w) (Q.to_string wk.d))
    p.workers;
  Format.fprintf fmt "@]"
