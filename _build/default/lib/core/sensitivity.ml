module Q = Numeric.Rational
open Q.Infix

type parameter = Comm of int | Comp of int

let perturb platform param ~factor =
  if Q.sign factor <= 0 then invalid_arg "Sensitivity.perturb: factor must be positive";
  let n = Platform.size platform in
  let target, scale_comm =
    match param with Comm i -> (i, true) | Comp i -> (i, false)
  in
  if target < 0 || target >= n then
    invalid_arg "Sensitivity.perturb: worker index out of range";
  Platform.make_exn
    (List.init n (fun i ->
         let wk = Platform.get platform i in
         if i <> target then
           Platform.worker ~name:wk.Platform.name ~c:wk.Platform.c
             ~w:wk.Platform.w ~d:wk.Platform.d ()
         else if scale_comm then
           Platform.worker ~name:wk.Platform.name
             ~c:(factor */ wk.Platform.c)
             ~w:wk.Platform.w
             ~d:(factor */ wk.Platform.d)
             ()
         else
           Platform.worker ~name:wk.Platform.name ~c:wk.Platform.c
             ~w:(factor */ wk.Platform.w)
             ~d:wk.Platform.d ()))

let throughput_delta ?model platform param ~factor =
  let before = (Fifo.optimal ?model platform).Lp_model.rho in
  let after = (Fifo.optimal ?model (perturb platform param ~factor)).Lp_model.rho in
  after -/ before

let table ?model platform ~factor =
  let n = Platform.size platform in
  let rho = (Fifo.optimal ?model platform).Lp_model.rho in
  List.concat_map
    (fun i ->
      List.map
        (fun param -> (param, throughput_delta ?model platform param ~factor // rho))
        [ Comm i; Comp i ])
    (List.init n Fun.id)

let parameter_to_string platform = function
  | Comm i -> Printf.sprintf "comm(%s)" (Platform.get platform i).Platform.name
  | Comp i -> Printf.sprintf "comp(%s)" (Platform.get platform i).Platform.name
