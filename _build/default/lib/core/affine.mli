(** Extension: the affine cost model.

    The paper uses the linear model (communication of [X] units costs
    [X.c]); its related-work section discusses the {e affine} variant
    where every message additionally pays a start-up latency —
    sending [X] units to [Pi] costs [L_i + X.c_i] and the return
    message costs [M_i + X.d_i].  Latencies make resource selection
    genuinely combinatorial: a worker can no longer be "enrolled at
    zero load" for free, and the related DLS problem with affine costs
    is NP-hard (Legrand, Yang, Casanova, 2005).  This module provides
    the scenario LP for fixed enrollment and message orders, plus an
    exhaustive search over subsets and orders for small platforms.

    Setting every latency to zero recovers the paper's linear model
    exactly (property-tested). *)

module Q = Numeric.Rational

type worker = private {
  base : Platform.worker;
  send_latency : Q.t;  (** start-up cost of the initial message *)
  return_latency : Q.t;  (** start-up cost of the return message *)
}

type t = private { workers : worker array }

(** [worker ?send_latency ?return_latency base] attaches latencies
    (default zero) to a linear-model worker.
    @raise Invalid_argument on negative latencies. *)
val worker : ?send_latency:Q.t -> ?return_latency:Q.t -> Platform.worker -> worker

val make : worker list -> t

(** [of_platform ?send_latency ?return_latency p] applies uniform
    latencies to every worker of a linear platform. *)
val of_platform : ?send_latency:Q.t -> ?return_latency:Q.t -> Platform.t -> t

val size : t -> int
val get : t -> int -> worker

(** [linear_platform t] forgets the latencies. *)
val linear_platform : t -> Platform.t

type solved = private {
  affine : t;
  sigma1 : int array;
  sigma2 : int array;
  model : Lp_model.model;
  rho : Q.t;  (** optimal load processed within [T = 1] *)
  alpha : Q.t array;  (** per-worker loads, platform indexing *)
}

type outcome =
  | Solved of solved
  | Too_slow  (** the latencies alone exceed the deadline: no feasible
                  schedule enrolls this exact set of workers *)

(** [solve ?model t ~sigma1 ~sigma2] solves the affine scenario LP: all
    listed workers are enrolled (and pay their latencies), loads are
    optimized.  Orders must range over the same subset of workers. *)
val solve : ?model:Lp_model.model -> t -> sigma1:int array -> sigma2:int array -> outcome

(** [best_fifo ?model t] searches all non-empty subsets and all FIFO
    orders — exponential, for small platforms only.  Returns [Too_slow]
    when even single workers cannot meet the deadline. *)
val best_fifo : ?model:Lp_model.model -> t -> outcome

(** [best_general ?model t] additionally searches all return orders. *)
val best_general : ?model:Lp_model.model -> t -> outcome
