let order = Fifo.order

let solve_order ?model platform ord =
  Lp_model.solve ?model (Scenario.lifo platform ord)

let optimal ?model platform = solve_order ?model platform (order platform)
