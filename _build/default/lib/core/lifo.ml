let order = Fifo.order

let solve_order ?model platform ord =
  Lp_model.solve_exn ?model (Scenario.lifo_exn platform ord)

let optimal ?model platform = solve_order ?model platform (order platform)
