type t = Inc_c | Inc_w | Lifo

let all = [ Inc_c; Inc_w; Lifo ]
let name = function Inc_c -> "INC_C" | Inc_w -> "INC_W" | Lifo -> "LIFO"

let solve ?model heuristic platform =
  match heuristic with
  | Inc_c -> Fifo.solve_order ?model platform (Fifo.order platform)
  | Inc_w ->
    Fifo.solve_order ?model platform
      (Platform.sorted_indices_by platform (fun wk -> wk.Platform.w))
  | Lifo -> Lifo.optimal ?model platform
