(** Integer rounding of rational LP loads (Section 5 of the paper).

    The LP expresses loads in rational numbers, but a real campaign
    processes an integer number of items (matrices, in the paper).  The
    paper's policy: scale the [alpha] vector to the requested total,
    round every load down, then give one extra item to each of the first
    [K] enrolled workers in the sending order, where [K] is the number
    of leftover items. *)

module Q = Numeric.Rational

(** [share_out ~weights ~order ~total] scales the non-negative [weights]
    vector so it sums to [total], floors every entry, then gives one
    leftover item to each of the first [K] positive-weight entries in
    [order].  This is the paper's policy in isolation; the returned
    array sums exactly to [total].
    @raise Invalid_argument if [total < 0], weights are negative or all
    zero. *)
val share_out : weights:Q.t array -> order:int array -> total:int -> int array

(** [integer_loads solved ~total] is the per-worker item count, indexed
    like the platform, summing exactly to [total].
    @raise Invalid_argument if [total < 0] or the solution has zero
    throughput. *)
val integer_loads : Lp_model.solved -> total:int -> int array

(** [imbalance solved ~total] is the largest absolute deviation between
    the rounded loads and the exact rational loads, as a rational — a
    measure of the rounding-induced load imbalance. *)
val imbalance : Lp_model.solved -> total:int -> Q.t
