(** Baseline: divisible loads on tree networks (no return messages).

    The DLS literature the paper builds on ([10], Barlas [4], the
    surveys) treats multi-level trees by the {e equivalent processor}
    technique: a whole subtree is summarized as a single worker whose
    speed is the subtree's throughput, then the parent's star problem is
    solved with the results of [6] (bandwidth-first order, closed-form
    loads — see {!No_return}).

    Model (linear costs, no return messages):
    - the root holds the load and does not compute;
    - every other node has a computation cost [w] per unit and is
      reached from its parent through a link of cost [c] per unit;
    - store-and-forward: a node receives its whole subtree share before
      redistributing;
    - one-port sends: a node serves its children sequentially,
      bandwidth-first;
    - with front-end: a node's own computation overlaps its sends (it is
      modelled as a zero-[c] extra child in its own star).

    {!validate} rebuilds the explicit timeline from scratch and checks
    every one of these rules, so the algebraic reduction is
    machine-checked against the operational model. *)

module Q = Numeric.Rational

type t = private {
  name : string;
  w : Q.t option;  (** computation cost per unit; [None]: pure relay *)
  children : (Q.t * t) list;  (** (link cost, subtree) *)
}

(** [leaf ?name w] is a computing leaf.
    @raise Invalid_argument unless [w > 0]. *)
val leaf : ?name:string -> Q.t -> t

(** [node ?name ?w children] is an internal node ([w = None] relays
    only).  @raise Invalid_argument on empty children with no [w], or
    non-positive costs. *)
val node : ?name:string -> ?w:Q.t -> (Q.t * t) list -> t

(** [root children] is the master: no computation of its own. *)
val root : (Q.t * t) list -> t

val size : t -> int

(** [throughput tree] is the load processed within [T = 1] when the
    {e root} of [tree] holds the load (its own [w] is then ignored,
    matching the paper's master convention). *)
val throughput : t -> Q.t

(** [equivalent_w tree] is the equivalent-processor cost of the tree
    acting as a worker: time per load unit once its input has arrived
    (computation included).  [1 / throughput] with the node's own [w]
    participating. *)
val equivalent_w : t -> Q.t

type assignment = {
  node_name : string;
  load : Q.t;  (** units computed by this node itself *)
  subtree_load : Q.t;  (** units entering this node's subtree *)
  receive_start : Q.t;
  receive_finish : Q.t;
  compute_finish : Q.t;
}

(** [schedule tree] lays out the full timeline for the unit-horizon
    optimal distribution (one entry per node, preorder). *)
val schedule : t -> assignment list

(** [validate tree] re-derives the timeline and checks: load
    conservation at every node, sequential one-port sends, children
    served bandwidth-first after full reception, and completion within
    the horizon (all computing nodes finish exactly at 1 — the classic
    simultaneous-completion property). *)
val validate : t -> (unit, string list) result

val pp : Format.formatter -> t -> unit
