(** A small s-expression syntax for tree platforms.

    {v
    tree  ::= (leaf W) | (node [W] child ...) | (relay child ...)
    child ::= (C tree)
    v}

    where [W] and [C] are rationals: [W] the node's per-unit computation
    cost, [C] the cost of the link from its parent.  The outermost tree
    is the master (its own [W], if any, is ignored — the paper's master
    does not compute).

    {v
    (node (1 (leaf 2))
          (1/2 (node 3 (2 (leaf 1))))
          (2 (relay (1 (leaf 1/2)))))
    v} *)

(** [of_string s] parses a tree. *)
val of_string : string -> (Tree.t, string) result

(** [to_string t] prints a tree back in the same syntax. *)
val to_string : Tree.t -> string
