module Q = Numeric.Rational
open Q.Infix

let optimal_order p = Platform.sorted_indices_by p (fun wk -> wk.Platform.c)

let loads p ~order =
  let n = Platform.size p in
  if Array.length order <> n then
    invalid_arg "No_return.loads: order must list every worker";
  let alpha = Array.make n Q.zero in
  let previous = ref None in
  Array.iter
    (fun i ->
      let wk = Platform.get p i in
      let a =
        match !previous with
        | None -> Q.inv (wk.Platform.c +/ wk.Platform.w)
        | Some (prev_alpha, prev_w) ->
          prev_alpha */ prev_w // (wk.Platform.c +/ wk.Platform.w)
      in
      alpha.(i) <- a;
      previous := Some (a, wk.Platform.w))
    order;
  alpha

let throughput p = Q.sum_array (loads p ~order:(optimal_order p))

let bus_throughput ~c ws =
  let p = Platform.bus ~c ~d:Q.zero (Array.to_list ws) in
  throughput p

let strip_returns p =
  Platform.make_exn
    (List.init (Platform.size p) (fun i ->
         let wk = Platform.get p i in
         Platform.worker ~name:wk.Platform.name ~c:wk.Platform.c ~w:wk.Platform.w
           ~d:Q.zero ()))
