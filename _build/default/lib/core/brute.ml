module Q = Numeric.Rational

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
  in
  List.map Array.of_list (perms (List.init n Fun.id))

let best_over scenarios =
  match scenarios with
  | [] -> invalid_arg "Brute.best_over: empty scenario list"
  | first :: rest ->
    List.fold_left
      (fun best s ->
        if Q.compare s.Lp_model.rho best.Lp_model.rho > 0 then s else best)
      first rest

let best_fifo ?model platform =
  best_over
    (List.map
       (fun ord -> Lp_model.solve ?model (Scenario.fifo platform ord))
       (permutations (Platform.size platform)))

let best_lifo ?model platform =
  best_over
    (List.map
       (fun ord -> Lp_model.solve ?model (Scenario.lifo platform ord))
       (permutations (Platform.size platform)))

let best_general ?model platform =
  let perms = permutations (Platform.size platform) in
  best_over
    (List.concat_map
       (fun sigma1 ->
         List.map
           (fun sigma2 ->
             Lp_model.solve ?model (Scenario.make platform ~sigma1 ~sigma2))
           perms)
       perms)
