module Q = Numeric.Rational

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
  in
  List.map Array.of_list (perms (List.init n Fun.id))

let best_over scenarios =
  match scenarios with
  | [] -> invalid_arg "Brute.best_over: empty scenario list"
  | first :: rest ->
    List.fold_left
      (fun best s ->
        if Q.compare s.Lp_model.rho best.Lp_model.rho > 0 then s else best)
      first rest

(* Solve every scenario (optionally across domains), then reduce
   sequentially in enumeration order — the strict [>] of [best_over]
   keeps the first maximizer, so the winner is independent of [jobs]. *)
let best_solved ?model ?(jobs = 1) scenarios =
  if scenarios = [] then invalid_arg "Brute.best_over: empty scenario list";
  let solve s = Lp_model.solve_cached ?model s in
  let solved =
    if jobs <= 1 then List.map solve scenarios
    else
      Array.to_list (Parallel.Pool.run ~jobs solve (Array.of_list scenarios))
  in
  best_over solved

let best_fifo ?model ?jobs platform =
  best_solved ?model ?jobs
    (List.map
       (fun ord -> Scenario.fifo_exn platform ord)
       (permutations (Platform.size platform)))

let best_lifo ?model ?jobs platform =
  best_solved ?model ?jobs
    (List.map
       (fun ord -> Scenario.lifo_exn platform ord)
       (permutations (Platform.size platform)))

let best_general ?model ?jobs platform =
  let perms = permutations (Platform.size platform) in
  best_solved ?model ?jobs
    (List.concat_map
       (fun sigma1 ->
         List.map
           (fun sigma2 -> Scenario.make_exn platform ~sigma1 ~sigma2)
           perms)
       perms)
