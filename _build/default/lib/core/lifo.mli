(** Optimal LIFO schedules ([sigma2] is the reverse of [sigma1]).

    The paper (Section 5, building on the companion papers [7,8]) uses
    the optimal LIFO solution as its strongest heuristic: the optimal
    two-port LIFO schedule serves all workers by non-decreasing [c_i]
    and is, by construction, a valid one-port schedule.  We solve the
    one-port LIFO LP directly for that order; the test suite checks both
    the order optimality (by brute force on small platforms) and the
    equality with the two-port LIFO optimum. *)

(** [order platform] is non-decreasing [c] for [z <= 1], non-increasing
    for [z > 1] (mirror argument — the mirror of a LIFO schedule is
    again LIFO). *)
val order : Platform.t -> int array

(** [optimal ?model platform] is the optimal LIFO schedule
    (default: one-port). *)
val optimal : ?model:Lp_model.model -> Platform.t -> Lp_model.solved

(** [solve_order ?model platform order] is the best LIFO schedule with
    the given sending order. *)
val solve_order : ?model:Lp_model.model -> Platform.t -> int array -> Lp_model.solved
