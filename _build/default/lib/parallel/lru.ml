(* Classic Hashtbl + doubly-linked recency list.  [head] is the
   most-recently-used end, [tail] the eviction end. *)

type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  m : Mutex.t;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  cap : int;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ?(capacity = 1024) () =
  {
    m = Mutex.create ();
    table = Hashtbl.create (max 16 (min capacity 4096));
    cap = capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* List surgery below runs with [t.m] held. *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.evictions <- t.evictions + 1

let find_locked t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      t.hits <- t.hits + 1;
      touch t n;
      Some n.value
  | None ->
      t.misses <- t.misses + 1;
      None

let add_locked t k v =
  if t.cap > 0 then begin
    (match Hashtbl.find_opt t.table k with
    | Some n ->
        unlink t n;
        Hashtbl.remove t.table k
    | None -> ());
    if Hashtbl.length t.table >= t.cap then evict_lru t;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n
  end

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | x ->
      Mutex.unlock t.m;
      x
  | exception e ->
      Mutex.unlock t.m;
      raise e

let find t k = with_lock t (fun () -> find_locked t k)
let add t k v = with_lock t (fun () -> add_locked t k v)

let find_or_add t k compute =
  match find t k with
  | Some v -> v
  | None -> (
      let v = compute () in
      (* Another domain may have stored [k] while we computed; keep the
         existing entry so every caller sees one canonical value. *)
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table k with
          | Some n ->
              touch t n;
              n.value
          | None ->
              add_locked t k v;
              v))

let mem t k = with_lock t (fun () -> Hashtbl.mem t.table k)
let length t = with_lock t (fun () -> Hashtbl.length t.table)
let capacity t = t.cap

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.cap;
      })

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
