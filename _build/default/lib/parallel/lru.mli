(** Size-bounded LRU memo cache, safe for concurrent use from multiple
    domains (a single {!Mutex} guards the table; the expensive compute
    in {!find_or_add} runs {e outside} the lock).

    Intended for memoising pure functions whose results are structurally
    identical whenever the keys are equal — e.g. exact LP solutions
    keyed by a canonical scenario fingerprint.  Under that assumption a
    racy double-compute is harmless: both domains produce the same
    value and the first insertion wins. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** current number of entries *)
  capacity : int;
}

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries (least-recently-used evicted first).  [capacity <= 0]
    disables caching: every lookup misses and nothing is stored. *)
val create : ?capacity:int -> unit -> ('k, 'v) t

(** [find t k] is the cached value for [k], refreshing its recency. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts (or refreshes) [k -> v], evicting the
    least-recently-used entry if the cache is full. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [find_or_add t k compute] returns the cached value for [k], or runs
    [compute ()] (outside the cache lock), stores and returns it.  If
    another domain raced us to the same key, the already-stored value is
    returned so all callers observe one canonical entry. *)
val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v

val mem : ('k, 'v) t -> 'k -> bool
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

(** [stats t] is a snapshot of hit/miss/eviction counters. *)
val stats : ('k, 'v) t -> stats

(** [clear t] drops all entries and resets the counters. *)
val clear : ('k, 'v) t -> unit
