lib/parallel/lru.mli:
