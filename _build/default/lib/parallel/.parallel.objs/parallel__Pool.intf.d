lib/parallel/pool.mli:
