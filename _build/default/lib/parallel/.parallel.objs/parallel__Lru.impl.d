lib/parallel/lru.ml: Hashtbl Mutex
