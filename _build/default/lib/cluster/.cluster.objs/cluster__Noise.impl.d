lib/cluster/noise.ml: Prng Sim
