lib/cluster/prng.mli:
