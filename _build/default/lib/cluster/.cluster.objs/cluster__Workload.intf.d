lib/cluster/workload.mli: Dls Numeric
