lib/cluster/noise.mli: Prng Sim
