lib/cluster/gen.mli: Dls Prng Workload
