lib/cluster/workload.ml: Array Dls List Numeric
