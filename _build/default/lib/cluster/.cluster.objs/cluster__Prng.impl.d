lib/cluster/prng.ml: Float Int64
