lib/cluster/gen.ml: Array Prng Workload
