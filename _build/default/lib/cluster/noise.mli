(** Noise models bridging the linear cost model and a "real" cluster.

    The simulated campaign times differ from the LP prediction for the
    same reasons the paper's MPI runs did: per-message protocol
    overheads, bandwidth and CPU jitter, and a computation cost that
    grows slightly super-linearly with matrix size once the working set
    leaves cache.  All randomness is drawn from an explicit {!Prng}, so
    runs are reproducible. *)

type params = {
  comm_jitter : float;  (** lognormal sigma on transfer durations *)
  comp_jitter : float;  (** lognormal sigma on compute durations *)
  comm_overhead : float;
      (** constant multiplicative protocol overhead on transfers
          (e.g. 0.08 for +8%) *)
  comp_overhead : float;  (** same, for computations *)
  cache_pressure : float;
      (** extra multiplicative compute cost per unit of [n/200] —
          models the super-linear DGEMM cost the paper observes at
          large sizes (Fig. 13b) *)
}

(** Calibrated default: a few percent of jitter and overhead. *)
val default_params : params

val none : params

(** [make ?params rng ~n] builds the per-event noise hooks for a
    campaign at matrix size [n]. *)
val make : ?params:params -> Prng.t -> n:int -> Sim.Star.noise
