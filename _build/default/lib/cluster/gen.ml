type scenario = Homogeneous | Hom_comm_het_comp | Heterogeneous
type factors = { comm : int array; comp : int array }

let scenario_name = function
  | Homogeneous -> "homogeneous"
  | Hom_comm_het_comp -> "hom-comm/het-comp"
  | Heterogeneous -> "heterogeneous"

let draw rng = Prng.int_range rng ~lo:1 ~hi:10

let factors rng scenario ~workers =
  if workers <= 0 then invalid_arg "Gen.factors: need at least one worker";
  match scenario with
  | Homogeneous ->
    let comm = draw rng and comp = draw rng in
    { comm = Array.make workers comm; comp = Array.make workers comp }
  | Hom_comm_het_comp ->
    let comm = draw rng in
    { comm = Array.make workers comm; comp = Array.init workers (fun _ -> draw rng) }
  | Heterogeneous ->
    {
      comm = Array.init workers (fun _ -> draw rng);
      comp = Array.init workers (fun _ -> draw rng);
    }

let scale ?(comm_times = 1) ?(comp_times = 1) f =
  if comm_times <= 0 || comp_times <= 0 then
    invalid_arg "Gen.scale: factors must be positive";
  {
    comm = Array.map (fun x -> x * comm_times) f.comm;
    comp = Array.map (fun x -> x * comp_times) f.comp;
  }

let platform machine ~n f = Workload.platform machine ~n ~comm:f.comm ~comp:f.comp
