type params = {
  comm_jitter : float;
  comp_jitter : float;
  comm_overhead : float;
  comp_overhead : float;
  cache_pressure : float;
}

let default_params =
  {
    comm_jitter = 0.03;
    comp_jitter = 0.05;
    comm_overhead = 0.06;
    comp_overhead = 0.04;
    cache_pressure = 0.25;
  }

let none =
  {
    comm_jitter = 0.0;
    comp_jitter = 0.0;
    comm_overhead = 0.0;
    comp_overhead = 0.0;
    cache_pressure = 0.0;
  }

let make ?(params = default_params) rng ~n =
  let cache = 1.0 +. (params.cache_pressure *. (float_of_int n /. 200.0)) in
  {
    Sim.Star.comm =
      (fun ~worker:_ nominal ->
        nominal
        *. (1.0 +. params.comm_overhead)
        *. Prng.lognormal rng ~sigma:params.comm_jitter);
    comp =
      (fun ~worker:_ nominal ->
        nominal *. (1.0 +. params.comp_overhead) *. cache
        *. Prng.lognormal rng ~sigma:params.comp_jitter);
  }
