(** The paper's target application: a campaign of [M] independent
    matrix products on a master/worker cluster.

    Multiplying two [n x n] matrices of doubles moves [2 * 8n²] bytes to
    the worker, [8n²] bytes back (hence the paper's return ratio
    [z = 1/2]) and costs [2n³] floating-point operations.  The paper ran
    on the {e gdsdmi} cluster (P4 2.4 GHz nodes, switched Ethernet) and
    {e simulated} heterogeneity with integer speed-up factors 1-10: a
    factor-[f] link/processor is [f] times faster than the baseline.

    We do the same on a simulated cluster.  The baseline rates below
    were calibrated so that campaign makespans land in the same
    seconds-range as the paper's Figure 14 and so that the
    communication/computation balance crosses over inside the paper's
    matrix-size sweep (40-200), which is what makes the heuristics'
    ranking visible. *)

module Q = Numeric.Rational

type machine = {
  flops_per_sec : int;  (** baseline effective DGEMM rate *)
  bytes_per_sec : int;  (** baseline link throughput *)
}

(** The calibrated baseline node of the simulated gdsdmi cluster. *)
val gdsdmi : machine

(** [input_bytes ~n] = [16 n²]: the two operand matrices. *)
val input_bytes : n:int -> int

(** [output_bytes ~n] = [8 n²]: the product matrix. *)
val output_bytes : n:int -> int

(** [flops ~n] = [2 n³]. *)
val flops : n:int -> int

(** [costs machine ~n ~comm_factor ~comp_factor] is the exact per-matrix
    [(c, w, d)] in seconds for a worker whose link (resp. CPU) is
    [comm_factor] (resp. [comp_factor]) times faster than baseline. *)
val costs : machine -> n:int -> comm_factor:int -> comp_factor:int -> Q.t * Q.t * Q.t

(** [platform machine ~n ~comm ~comp] builds the star platform for one
    worker per entry of the factor arrays.
    @raise Invalid_argument on length mismatch. *)
val platform : machine -> n:int -> comm:int array -> comp:int array -> Dls.Platform.t
