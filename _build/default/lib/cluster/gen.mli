(** Random platform generation for the paper's experiment families
    (Section 5.3.2): per-worker integer speed-up factors drawn uniformly
    from 1-10. *)

type scenario =
  | Homogeneous
      (** one random comm factor and one random comp factor shared by all
          workers — "homogeneous random platforms" (Fig. 10) *)
  | Hom_comm_het_comp
      (** shared comm factor, per-worker comp factors (Fig. 11): the bus
          platforms of Theorem 2 *)
  | Heterogeneous  (** per-worker comm and comp factors (Fig. 12/13) *)

type factors = { comm : int array; comp : int array }

val scenario_name : scenario -> string

(** [factors rng scenario ~workers] draws the speed-up factors. *)
val factors : Prng.t -> scenario -> workers:int -> factors

(** [scale ?comm_times ?comp_times f] multiplies all factors, for the
    Figure 13 "computation x10" / "communication x10" variants. *)
val scale : ?comm_times:int -> ?comp_times:int -> factors -> factors

(** [platform machine ~n f] instantiates the matrix-product platform for
    matrix size [n]. *)
val platform : Workload.machine -> n:int -> factors -> Dls.Platform.t
