(** ASCII Gantt charts of execution traces — the textual equivalent of
    the paper's Figure 9 trace visualization.

    One lane per worker plus a master lane.  Legend: ['>'] data transfer
    from the master, ['#'] computation, ['<'] result transfer back to the
    master, ['.'] enrolled but idle. *)

(** [render ?width ?names trace] draws the chart, [width] columns of
    timeline (default 72). [names] maps worker indices to labels. *)
val render : ?width:int -> ?names:(int -> string) -> Trace.t -> string

(** [render_schedule ?width sched] renders an exact schedule, with
    worker names taken from the platform. *)
val render_schedule : ?width:int -> Dls.Schedule.t -> string

(** [render_svg ?width ?row_height ?names trace] renders the trace as a
    standalone SVG document, in the visual style of the paper's
    Figure 9: white boxes for data transfers, dark gray for
    computations, pale gray for result transfers, one lane per worker
    plus a master lane. *)
val render_svg :
  ?width:int -> ?row_height:int -> ?names:(int -> string) -> Trace.t -> string

(** [render_schedule_svg ?width ?row_height sched]: same, for an exact
    schedule. *)
val render_schedule_svg : ?width:int -> ?row_height:int -> Dls.Schedule.t -> string
