type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }
let size h = h.size
let is_empty h = h.size = 0

let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let swap h i j =
  let t = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && before h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && before h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~priority value =
  let entry = { priority; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  let cap = Array.length h.data in
  if h.size = cap then begin
    let grown = Array.make (max 16 (2 * cap)) entry in
    Array.blit h.data 0 grown 0 h.size;
    h.data <- grown
  end;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h =
  if h.size = 0 then None
  else Some (h.data.(0).priority, h.data.(0).value)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some (top.priority, top.value)
  end

let clear h =
  h.data <- [||];
  h.size <- 0
