lib/sim/trace.mli: Dls Format
