lib/sim/star.mli: Dls Trace
