lib/sim/trace_io.ml: Buffer List Printf String Trace
