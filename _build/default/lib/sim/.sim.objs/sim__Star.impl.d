lib/sim/star.ml: Array Dls Engine Float Hashtbl List Numeric Queue Trace
