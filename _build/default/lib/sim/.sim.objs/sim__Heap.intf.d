lib/sim/heap.mli:
