lib/sim/engine.mli:
