lib/sim/trace.ml: Array Dls Float Format List Numeric Printf Stdlib
