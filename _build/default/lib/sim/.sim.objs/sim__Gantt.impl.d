lib/sim/gantt.ml: Buffer Dls Float List Option Printf String Trace
