lib/sim/gantt.mli: Dls Trace
