(** CSV serialization of execution traces.

    Lets experiment artifacts (the simulated equivalents of the paper's
    MPI trace files) be stored, reloaded and re-validated.  Floats are
    printed with 17 significant digits, so a round trip is lossless. *)

(** [to_string t] renders one [worker,kind,start,finish,load] line per
    event, with a header. *)
val to_string : Trace.t -> string

(** [of_string s] parses a trace back; [Error message] on malformed
    input. *)
val of_string : string -> (Trace.t, string) result

(** [write path t] / [read path]: file variants. *)
val write : string -> Trace.t -> unit

val read : string -> (Trace.t, string) result
