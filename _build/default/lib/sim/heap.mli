(** Binary min-heap keyed by float priority, with FIFO tie-breaking.

    Elements inserted with equal priorities are popped in insertion
    order, which makes the event engine deterministic — simultaneous
    simulation events fire in the order they were scheduled. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

(** [add h ~priority v] inserts [v]. *)
val add : 'a t -> priority:float -> 'a -> unit

(** [peek h] is the minimal element without removing it. *)
val peek : 'a t -> (float * 'a) option

(** [pop h] removes and returns the minimal element. *)
val pop : 'a t -> (float * 'a) option

(** [clear h] removes every element. *)
val clear : 'a t -> unit
