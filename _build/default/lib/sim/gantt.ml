let symbol = function Trace.Send -> '>' | Trace.Compute -> '#' | Trace.Return -> '<'

let render ?(width = 72) ?(names = fun i -> Printf.sprintf "P%d" i) trace =
  let makespan = trace.Trace.makespan in
  let buf = Buffer.create 1024 in
  if makespan <= 0.0 then Buffer.add_string buf "(empty trace)\n"
  else begin
    let scale = makespan /. float_of_int width in
    let column_time col = (float_of_int col +. 0.5) *. scale in
    let lane events =
      String.init width (fun col ->
          let t = column_time col in
          match
            List.find_opt (fun e -> e.Trace.start <= t && t < e.Trace.finish) events
          with
          | Some e -> symbol e.Trace.kind
          | None ->
            let busy_span =
              List.exists (fun e -> e.Trace.start <= t) events
              && List.exists (fun e -> t < e.Trace.finish) events
            in
            if busy_span then '.' else ' ')
    in
    let label_width =
      List.fold_left
        (fun acc i -> max acc (String.length (names i)))
        6 (Trace.workers trace)
    in
    let line label s =
      Buffer.add_string buf (Printf.sprintf "%-*s |%s|\n" label_width label s)
    in
    (* Master lane: every transfer, in either direction. *)
    let transfers = List.filter (fun e -> e.Trace.kind <> Trace.Compute) trace.Trace.events in
    line "master" (lane transfers);
    List.iter (fun i -> line (names i) (lane (Trace.events_of trace i))) (Trace.workers trace);
    Buffer.add_string buf
      (Printf.sprintf "%-*s  0%*s%.4g\n" label_width "time" (width - 1) "" makespan);
    Buffer.add_string buf "legend: '>' data to worker, '#' compute, '<' results to master, '.' idle\n"
  end;
  Buffer.contents buf

let render_schedule ?width sched =
  let names i = (Dls.Platform.get sched.Dls.Schedule.platform i).Dls.Platform.name in
  render ?width ~names (Trace.of_schedule sched)

(* SVG rendering, in the style of the paper's Figure 9: white = data
   transfer, dark gray = computation, pale gray = result transfer. *)

let svg_fill = function
  | Trace.Send -> "#ffffff"
  | Trace.Compute -> "#555555"
  | Trace.Return -> "#c8c8c8"

let render_svg ?(width = 720) ?(row_height = 26) ?(names = fun i -> Printf.sprintf "P%d" i)
    trace =
  let makespan = trace.Trace.makespan in
  let label_w = 70 and pad = 10 and axis_h = 30 in
  let lanes = (None : int option) :: List.map Option.some (Trace.workers trace) in
  let total_w = label_w + width + (2 * pad) in
  let total_h = (List.length lanes * row_height) + axis_h + (2 * pad) in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\" font-family=\"monospace\" font-size=\"12\">\n"
    total_w total_h total_w total_h;
  out "<rect width=\"%d\" height=\"%d\" fill=\"#fafafa\"/>\n" total_w total_h;
  if makespan > 0.0 then begin
    let xscale = float_of_int width /. makespan in
    let x t = float_of_int (label_w + pad) +. (t *. xscale) in
    let draw_event row e =
      let y = pad + (row * row_height) + 3 in
      let h = row_height - 6 in
      let x0 = x e.Trace.start in
      let w = Float.max 0.75 ((e.Trace.finish -. e.Trace.start) *. xscale) in
      out
        "<rect x=\"%.2f\" y=\"%d\" width=\"%.2f\" height=\"%d\" fill=\"%s\" \
         stroke=\"#333333\" stroke-width=\"0.6\"><title>%s %s load=%.4g \
         [%.5g, %.5g]</title></rect>\n"
        x0 y w h (svg_fill e.Trace.kind) (names e.Trace.worker)
        (Trace.kind_to_string e.Trace.kind)
        e.Trace.load e.Trace.start e.Trace.finish
    in
    List.iteri
      (fun row lane ->
        let label, events =
          match lane with
          | None ->
            ("master", List.filter (fun e -> e.Trace.kind <> Trace.Compute) trace.Trace.events)
          | Some i -> (names i, Trace.events_of trace i)
        in
        out "<text x=\"%d\" y=\"%d\" fill=\"#222222\">%s</text>\n" pad
          (pad + (row * row_height) + (row_height / 2) + 4)
          label;
        List.iter (draw_event row) events)
      lanes;
    (* time axis with 5 ticks *)
    let axis_y = pad + (List.length lanes * row_height) + 12 in
    out
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#222222\" \
       stroke-width=\"1\"/>\n"
      (label_w + pad) axis_y (label_w + pad + width) axis_y;
    for k = 0 to 5 do
      let t = makespan *. float_of_int k /. 5.0 in
      out
        "<line x1=\"%.2f\" y1=\"%d\" x2=\"%.2f\" y2=\"%d\" stroke=\"#222222\"/>\n"
        (x t) (axis_y - 3) (x t) (axis_y + 3);
      out "<text x=\"%.2f\" y=\"%d\" fill=\"#222222\" text-anchor=\"middle\">%.3g</text>\n"
        (x t) (axis_y + 16) t
    done
  end
  else out "<text x=\"10\" y=\"20\">(empty trace)</text>\n";
  out "</svg>\n";
  Buffer.contents buf

let render_schedule_svg ?width ?row_height sched =
  let names i = (Dls.Platform.get sched.Dls.Schedule.platform i).Dls.Platform.name in
  render_svg ?width ?row_height ~names (Trace.of_schedule sched)
