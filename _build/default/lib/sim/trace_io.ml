let kind_of_string = function
  | "send" -> Some Trace.Send
  | "compute" -> Some Trace.Compute
  | "return" -> Some Trace.Return
  | _ -> None

let to_string (t : Trace.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "worker,kind,start,finish,load\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%s,%.17g,%.17g,%.17g\n" e.Trace.worker
           (Trace.kind_to_string e.Trace.kind)
           e.Trace.start e.Trace.finish e.Trace.load))
    t.Trace.events;
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let parse_line lineno line =
    if String.trim line = "" then Ok None
    else
      match String.split_on_char ',' line with
      | [ "worker"; "kind"; "start"; "finish"; "load" ] -> Ok None (* header *)
      | [ worker; kind; start; finish; load ] -> (
        match
          ( int_of_string_opt worker,
            kind_of_string kind,
            float_of_string_opt start,
            float_of_string_opt finish,
            float_of_string_opt load )
        with
        | Some worker, Some kind, Some start, Some finish, Some load ->
          if worker < 0 then Error (Printf.sprintf "line %d: negative worker" lineno)
          else if finish < start then
            Error (Printf.sprintf "line %d: finish before start" lineno)
          else Ok (Some { Trace.worker; kind; start; finish; load })
        | _ -> Error (Printf.sprintf "line %d: malformed fields" lineno))
      | _ -> Error (Printf.sprintf "line %d: expected 5 comma-separated fields" lineno)
  in
  let rec collect lineno acc = function
    | [] -> Ok (Trace.make (List.rev acc))
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> collect (lineno + 1) acc rest
      | Ok (Some e) -> collect (lineno + 1) (e :: acc) rest
      | Error e -> Error e)
  in
  collect 1 [] lines

let write path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    of_string content
