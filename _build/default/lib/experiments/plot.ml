type series = { label : string; points : (float * float) list }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '~' |]

let render ?(width = 64) ?(height = 16) ?y_min ?y_max series =
  if List.length series > Array.length markers then
    invalid_arg "Plot.render: too many series";
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then "(no data)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let x_lo = List.fold_left Float.min infinity xs in
    let x_hi = List.fold_left Float.max neg_infinity xs in
    let y_lo =
      match y_min with Some v -> v | None -> List.fold_left Float.min infinity ys
    in
    let y_hi =
      match y_max with Some v -> v | None -> List.fold_left Float.max neg_infinity ys
    in
    (* Avoid a degenerate scale when all values coincide. *)
    let x_hi = if x_hi > x_lo then x_hi else x_lo +. 1.0 in
    let y_hi = if y_hi > y_lo then y_hi else y_lo +. 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      let c =
        int_of_float ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1))
      in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1))
      in
      height - 1 - max 0 (min (height - 1) r)
    in
    List.iteri
      (fun si s ->
        let marker = markers.(si) in
        List.iter (fun (x, y) -> grid.(row y).(col x) <- marker) s.points)
      series;
    let buf = Buffer.create ((height + 4) * (width + 16)) in
    Array.iteri
      (fun r line ->
        let y_label =
          if r = 0 then Printf.sprintf "%10.4g" y_hi
          else if r = height - 1 then Printf.sprintf "%10.4g" y_lo
          else String.make 10 ' '
        in
        Buffer.add_string buf (Printf.sprintf "%s |%s|\n" y_label (String.init width (fun c -> line.(c)))))
      grid;
    Buffer.add_string buf
      (Printf.sprintf "%10s +%s+\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-*.4g%*.4g\n" "" (width / 2) x_lo (width - (width / 2))
         x_hi);
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf "%10s  %c %s\n" "" markers.(si) s.label))
      series;
    Buffer.contents buf
  end
