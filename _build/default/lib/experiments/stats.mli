(** Small statistics helpers for the experiment harnesses. *)

(** [mean xs]. @raise Invalid_argument on an empty list. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

type fit = { slope : float; intercept : float; r2 : float }

(** [linear_fit points] is the least-squares line through
    [(x, y)] pairs — used by the Figure 8 linearity check.
    @raise Invalid_argument with fewer than 2 points. *)
val linear_fit : (float * float) list -> fit
