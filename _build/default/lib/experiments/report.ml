type cell = Str of string | Float of float | Int of int

type t = {
  id : string;
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

let make ~id ~title ~columns ?(notes = []) rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Report.make: row %d has %d cells, expected %d" i
             (List.length row) width))
    rows;
  { id; title; columns; rows; notes }

let cell_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
    else Printf.sprintf "%.4g" f

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (fun c -> csv_escape (cell_to_string c)) row));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let cell_to_json = function
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_finite f then Printf.sprintf "%.17g" f
    else Printf.sprintf "\"%s\"" (Float.to_string f)

let to_json t =
  let strings items = String.concat "," items in
  Printf.sprintf
    "{\"id\":\"%s\",\"title\":\"%s\",\"columns\":[%s],\"rows\":[%s],\"notes\":[%s]}"
    (json_escape t.id) (json_escape t.title)
    (strings (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c)) t.columns))
    (strings
       (List.map (fun row -> "[" ^ strings (List.map cell_to_json row) ^ "]") t.rows))
    (strings (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) t.notes))

let pp fmt t =
  let all_rows = t.columns :: List.map (List.map cell_to_string) t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w s -> max w (String.length s)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all_rows
  in
  Format.fprintf fmt "@[<v>== %s: %s ==@," t.id t.title;
  let print_row row =
    let cells = List.map2 (fun w s -> Printf.sprintf "%*s" w s) widths row in
    Format.fprintf fmt "  %s@," (String.concat "  " cells)
  in
  print_row t.columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter (fun row -> print_row (List.map cell_to_string row)) t.rows;
  List.iter (fun note -> Format.fprintf fmt "  note: %s@," note) t.notes;
  Format.fprintf fmt "@]"

let print t = Format.printf "%a@." pp t
