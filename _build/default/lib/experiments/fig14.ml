let comm_factors x = [| 10; 8; 8; x |]
let comp_factors = [| 9; 9; 10; 1 |]

let worker_table ~x =
  let comm = comm_factors x in
  Report.make ~id:"fig14-table" ~title:"worker characteristics (Section 5.3.4)"
    ~columns:[ "worker"; "communication speed"; "computation speed" ]
    (List.init 4 (fun i ->
         [ Report.Int (i + 1); Report.Int comm.(i); Report.Int comp_factors.(i) ]))

let run ?(seed = 14) ~x () =
  let n = 400 and total = 1000 in
  let machine = Cluster.Workload.gdsdmi in
  let rng = Cluster.Prng.create ~seed in
  let rows =
    List.map
      (fun available ->
        let factors =
          {
            Cluster.Gen.comm = Array.sub (comm_factors x) 0 available;
            comp = Array.sub comp_factors 0 available;
          }
        in
        let m =
          Campaign.measure ~rng:(Cluster.Prng.split rng) ~machine ~n ~total
            factors Dls.Heuristics.Inc_c
        in
        [
          Report.Int available;
          Report.Float m.Campaign.lp_time;
          Report.Float m.Campaign.real_time;
          Report.Int m.Campaign.workers_used;
        ])
      [ 1; 2; 3; 4 ]
  in
  Report.make ~id:(Printf.sprintf "fig14-x%d" x)
    ~title:
      (Printf.sprintf "participating workers, INC_C, matrix size %d, x=%d" n x)
    ~columns:[ "available"; "lp time (s)"; "real time (s)"; "workers used" ]
    ~notes:
      [
        "the fourth worker must stay unused for x=1 and be enrolled for x=3";
      ]
    rows
