type config = {
  id : string;
  title : string;
  scenario : Cluster.Gen.scenario;
  comm_times : int;
  comp_times : int;
  heuristics : Dls.Heuristics.t list;
  platforms : int;
  workers : int;
  sizes : int list;
  total : int;
  seed : int;
}

let paper_sizes = [ 40; 60; 80; 100; 120; 140; 160; 180; 200 ]

let base =
  {
    id = "";
    title = "";
    scenario = Cluster.Gen.Heterogeneous;
    comm_times = 1;
    comp_times = 1;
    heuristics = Dls.Heuristics.all;
    platforms = 50;
    workers = 11;
    sizes = paper_sizes;
    total = 1000;
    seed = 1;
  }

let fig10 =
  {
    base with
    id = "fig10";
    title = "50 homogeneous random platforms";
    scenario = Cluster.Gen.Homogeneous;
    (* all FIFO strategies coincide on a homogeneous platform *)
    heuristics = [ Dls.Heuristics.Inc_c; Dls.Heuristics.Lifo ];
    seed = 10;
  }

let fig11 =
  {
    base with
    id = "fig11";
    title = "50 random platforms, homogeneous comm / heterogeneous comp";
    scenario = Cluster.Gen.Hom_comm_het_comp;
    seed = 11;
  }

let fig12 =
  { base with id = "fig12"; title = "50 heterogeneous random platforms"; seed = 12 }

let fig13a =
  {
    base with
    id = "fig13a";
    title = "50 heterogeneous random platforms, calculation power x10";
    comp_times = 10;
    seed = 12 (* same platforms as fig12, rescaled, as in the paper *);
  }

let fig13b =
  {
    base with
    id = "fig13b";
    title = "50 heterogeneous random platforms, communication power x10";
    comm_times = 10;
    seed = 12;
  }

let all = [ fig10; fig11; fig12; fig13a; fig13b ]

(* Everything one (size, platform) point contributes to the report.
   Measuring a point only touches its own pre-split PRNG, so points are
   independent and can be computed on any domain. *)
type point = {
  incc_lp : float;
  incc_ratio : float;
  others : (string * float * float) list;  (* heuristic, lp and real ratios *)
}

let measure_point config machine n factors rng =
  let baseline =
    Campaign.measure ~rng ~machine ~n ~total:config.total factors
      Dls.Heuristics.Inc_c
  in
  let others =
    List.filter_map
      (fun h ->
        if h = Dls.Heuristics.Inc_c then None
        else begin
          let m = Campaign.measure ~rng ~machine ~n ~total:config.total factors h in
          Some
            ( Dls.Heuristics.name h,
              m.Campaign.lp_time /. baseline.Campaign.lp_time,
              m.Campaign.real_time /. baseline.Campaign.lp_time )
        end)
      config.heuristics
  in
  {
    incc_lp = baseline.Campaign.lp_time;
    incc_ratio = baseline.Campaign.real_time /. baseline.Campaign.lp_time;
    others;
  }

let run ?(quick = false) ?(jobs = 1) config =
  let platforms = if quick then min 8 config.platforms else config.platforms in
  let sizes =
    if quick then List.filteri (fun i _ -> i mod 2 = 0) config.sizes
    else config.sizes
  in
  let machine = Cluster.Workload.gdsdmi in
  let root = Cluster.Prng.create ~seed:config.seed in
  let factor_sets =
    List.init platforms (fun _ ->
        Cluster.Gen.scale ~comm_times:config.comm_times
          ~comp_times:config.comp_times
          (Cluster.Gen.factors root config.scenario ~workers:config.workers))
  in
  let sim_rng = Cluster.Prng.split root in
  (* Pre-split one PRNG per point in the exact order the sequential loop
     would, then measure the points (possibly in parallel: results are
     bit-identical because each point owns its stream and the reduction
     below walks them back in sequential order). *)
  let tasks =
    Array.of_list
      (List.concat_map
         (fun n ->
           List.map (fun factors -> (n, factors, Cluster.Prng.split sim_rng)) factor_sets)
         sizes)
  in
  let measure (n, factors, rng) = measure_point config machine n factors rng in
  let points =
    if jobs <= 1 then Array.map measure tasks
    else Parallel.Pool.run ~jobs measure tasks
  in
  let columns =
    "n" :: "INC_C lp (s)"
    :: List.concat_map
         (fun h ->
           let name = Dls.Heuristics.name h in
           if h = Dls.Heuristics.Inc_c then [ name ^ " real/lp" ]
           else [ name ^ " lp/INC_C lp"; name ^ " real/INC_C lp" ])
         config.heuristics
  in
  let chart : (string * (float * float) list ref) list =
    List.concat_map
      (fun h ->
        let name = Dls.Heuristics.name h in
        if h = Dls.Heuristics.Inc_c then [ (name ^ " real/lp", ref []) ]
        else [ (name ^ " lp", ref []); (name ^ " real", ref []) ])
      config.heuristics
  in
  let push_chart key n v =
    match List.assoc_opt key chart with
    | Some acc -> acc := (float_of_int n, v) :: !acc
    | None -> ()
  in
  let rows =
    List.mapi
      (fun si n ->
        (* per-heuristic accumulated ratios across platforms; pushes
           happen in platform order, exactly as the sequential loop's,
           so the float summation order inside [Stats.mean] (and hence
           the report) is independent of [jobs] *)
        let acc = Hashtbl.create 8 in
        let push key v =
          Hashtbl.replace acc key (v :: Option.value ~default:[] (Hashtbl.find_opt acc key))
        in
        List.iteri
          (fun pi _factors ->
            let pt = points.((si * platforms) + pi) in
            push "incc_lp" pt.incc_lp;
            push "incc_ratio" pt.incc_ratio;
            List.iter
              (fun (name, lp_ratio, real_ratio) ->
                push (name ^ "_lp") lp_ratio;
                push (name ^ "_real") real_ratio)
              pt.others)
          factor_sets;
        let mean key = Stats.mean (Hashtbl.find acc key) in
        push_chart "INC_C real/lp" n (mean "incc_ratio");
        List.iter
          (fun h ->
            if h <> Dls.Heuristics.Inc_c then begin
              let name = Dls.Heuristics.name h in
              push_chart (name ^ " lp") n (mean (name ^ "_lp"));
              push_chart (name ^ " real") n (mean (name ^ "_real"))
            end)
          config.heuristics;
        Report.Int n :: Report.Float (mean "incc_lp")
        :: List.concat_map
             (fun h ->
               let name = Dls.Heuristics.name h in
               if h = Dls.Heuristics.Inc_c then [ Report.Float (mean "incc_ratio") ]
               else
                 [ Report.Float (mean (name ^ "_lp")); Report.Float (mean (name ^ "_real")) ])
             config.heuristics)
      sizes
  in
  let plot =
    Plot.render ~y_min:0.4 ~y_max:1.4
      (List.map
         (fun (label, acc) -> { Plot.label; points = List.rev !acc })
         chart)
  in
  let notes =
    Printf.sprintf
      "%d platforms x %d workers, %d items per campaign; ratios are \
       per-platform, then averaged; chart: time relative to INC_C lp, vs \
       matrix size (paper's y-range 0.4-1.4)"
      platforms config.workers config.total
    :: String.split_on_char '\n' plot
  in
  Report.make ~id:config.id ~title:config.title ~columns ~notes rows
