(** Figure 8: linearity test.

    The paper validates the linear cost model by sending messages of
    0.5-5 MB to workers with simulated link speed-ups 1-5 and plotting
    transfer time against size: the points fall on worker-specific lines
    through the origin.  We reproduce the test against the simulated
    cluster's noisy links and report per-worker least-squares fits
    (slope, intercept, R²) alongside the raw series. *)

val run : ?seed:int -> unit -> Report.t
