(** Ablation studies beyond the paper's published figures, probing the
    design choices DESIGN.md calls out:

    - how much throughput the one-port constraint costs versus the
      two-port model of the companion paper;
    - how close the fixed FIFO/LIFO disciplines come to the best
      permutation pair found by exhaustive search (the general problem
      whose complexity the paper leaves open);
    - how much the Theorem 1 ordering matters versus plausible
      alternatives (INC_W, DEC_C, platform order). *)

(** [one_port_cost ()] compares one-port and two-port optimal FIFO
    throughputs across matrix sizes on random heterogeneous platforms. *)
val one_port_cost : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [permutation_gap ()] measures FIFO and LIFO against the brute-force
    best [(sigma1, sigma2)] pair on small random platforms. *)
val permutation_gap : ?quick:bool -> ?seed:int -> ?jobs:int -> unit -> Report.t

(** [ordering ()] compares FIFO orderings (INC_C, INC_W, DEC_C, platform
    order) on random heterogeneous platforms. *)
val ordering : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [theorem2_check ()] tabulates the Theorem 2 closed form against the
    LP optimum on random bus platforms (they must agree exactly). *)
val theorem2_check : ?seed:int -> unit -> Report.t

(** [lifo_regime ()] sweeps the computation/communication balance and
    reports the LIFO-vs-INC_C makespan ratio: LIFO's advantage (the
    paper's Figs 10-12 observation) emerges in compute-dominant
    regimes.  Documents the calibration discussion in EXPERIMENTS.md. *)
val lifo_regime : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [affine_latency ()] sweeps a per-message start-up latency on a small
    platform and reports the optimal throughput and the number of
    enrolled workers: latencies shrink the optimal enrollment — the
    affine-model effect the paper's related work discusses. *)
val affine_latency : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [multiround ()] sweeps the number of rounds with and without
    per-message latencies: under the linear model more rounds always
    help (so the model degenerates), under the affine model a finite
    optimum emerges — the Section 6 argument, measured. *)
val multiround : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [protocol ()] replays the same LP-dimensioned plans under the two
    master policies ([Sends_first], the paper's structure, vs
    [Eager_returns]) and reports the makespan ratio: how much does the
    "all sends before all returns" modelling assumption cost or gain in
    execution? *)
val protocol : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [scaling ()] measures how the exact and floating-point simplex
    solvers scale with the worker count on the FIFO scheduling LP, and
    verifies they agree on the throughput.  The exact solver is the
    source of truth; the float path exists exactly for the large-[p]
    regime this table maps out. *)
val scaling : ?quick:bool -> ?seed:int -> unit -> Report.t

(** [sensitivity ()] executes INC_C- and LIFO-dimensioned campaigns
    under growing amounts of per-event jitter and reports the real/lp
    degradation of each: the paper explains LIFO's bad showing in
    Fig. 13a by its sensitivity "to small performance variations"; this
    experiment measures that hypothesis on the simulated cluster. *)
val sensitivity : ?quick:bool -> ?seed:int -> unit -> Report.t
