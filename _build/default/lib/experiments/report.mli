(** Tabular experiment reports: the textual equivalent of the paper's
    figures, printable and exportable as CSV. *)

type cell = Str of string | Float of float | Int of int

type t = {
  id : string;  (** e.g. "fig10" *)
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;  (** free-form commentary printed under the table *)
}

(** [make ~id ~title ~columns rows] checks that every row has one cell
    per column. @raise Invalid_argument otherwise. *)
val make : id:string -> title:string -> columns:string list -> ?notes:string list -> cell list list -> t

val cell_to_string : cell -> string

(** [to_csv t] renders the table as comma-separated values (header
    included). *)
val to_csv : t -> string

(** [to_json t] renders the table as a JSON object
    [{id, title, columns, rows, notes}]; numeric cells stay numbers. *)
val to_json : t -> string

(** [print t] pretty-prints the table (aligned columns) to stdout. *)
val print : t -> unit

val pp : Format.formatter -> t -> unit
