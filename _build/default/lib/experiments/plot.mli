(** Minimal ASCII scatter/line plots, so the benchmark harness can
    render the paper's figures as charts and not only as tables.

    Each series gets a marker character; points are placed on a
    character grid with auto-scaled axes.  Collisions show the marker of
    the last series drawn. *)

type series = { label : string; points : (float * float) list }

(** [render ?width ?height ?y_min ?y_max series] draws the chart.
    Returns ["(no data)\n"] when every series is empty.
    @raise Invalid_argument when more than 8 series are given. *)
val render :
  ?width:int -> ?height:int -> ?y_min:float -> ?y_max:float -> series list -> string
