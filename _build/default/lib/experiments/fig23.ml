module Q = Numeric.Rational

(* A fixed, moderately heterogeneous 4-worker platform with z = 1/2 —
   enough asymmetry that the three disciplines differ visibly. *)
let platform () =
  Dls.Platform.with_return_ratio ~z:Q.half
    [
      (Q.of_ints 1 4, Q.of_ints 3 4);
      (Q.of_ints 1 3, Q.of_ints 1 2);
      (Q.of_ints 1 2, Q.of_ints 2 5);
      (Q.of_ints 2 3, Q.of_ints 1 4);
    ]

let report_of ~width ~id ~title sol =
  let sched = Dls.Schedule.of_solved sol in
  let gantt = Sim.Gantt.render_schedule ~width sched in
  let s = sol.Dls.Lp_model.scenario in
  let name i = (Dls.Platform.get s.Dls.Scenario.platform i).Dls.Platform.name in
  let order a = String.concat " " (Array.to_list (Array.map name a)) in
  let rows =
    List.filter_map
      (fun i ->
        let alpha = sol.Dls.Lp_model.alpha.(i) in
        if Q.sign alpha > 0 then
          Some [ Report.Str (name i); Report.Float (Q.to_float alpha) ]
        else None)
      (List.init (Dls.Platform.size s.Dls.Scenario.platform) Fun.id)
  in
  Report.make ~id ~title
    ~columns:[ "worker"; "alpha" ]
    ~notes:
      (Printf.sprintf "rho = %s (~%.5f); sends: %s; returns: %s"
         (Q.to_string sol.Dls.Lp_model.rho)
         (Q.to_float sol.Dls.Lp_model.rho)
         (order s.Dls.Scenario.sigma1)
         (order s.Dls.Scenario.sigma2)
      :: String.split_on_char '\n' gantt)
    rows

let run ?(width = 72) () =
  let p = platform () in
  [
    report_of ~width ~id:"fig2" ~title:"a general schedule (best permutation pair)"
      (Dls.Brute.best_general p);
    report_of ~width ~id:"fig3a" ~title:"the optimal FIFO schedule"
      (Dls.Fifo.optimal p);
    report_of ~width ~id:"fig3b" ~title:"the optimal LIFO schedule"
      (Dls.Lifo.optimal p);
  ]
