(** Figures 10-13: heuristic comparison over random platforms.

    The paper draws 50 random platforms per family, schedules a campaign
    of 1000 matrix products with each heuristic for matrix sizes 40-200,
    and plots execution times normalized by the INC_C LP prediction.
    The five published variants:

    - Fig. 10: homogeneous platforms (INC_C and LIFO only — all FIFO
      orders coincide);
    - Fig. 11: homogeneous communication, heterogeneous computation
      (the bus platforms of Theorem 2);
    - Fig. 12: fully heterogeneous platforms;
    - Fig. 13a: Fig. 12 with all computations 10x faster;
    - Fig. 13b: Fig. 12 with all communications 10x faster. *)

type config = {
  id : string;
  title : string;
  scenario : Cluster.Gen.scenario;
  comm_times : int;  (** global communication speed multiplier *)
  comp_times : int;  (** global computation speed multiplier *)
  heuristics : Dls.Heuristics.t list;
  platforms : int;
  workers : int;
  sizes : int list;
  total : int;
  seed : int;
}

val fig10 : config
val fig11 : config
val fig12 : config
val fig13a : config
val fig13b : config
val all : config list

(** [run ?quick ?jobs config] produces one row per matrix size with the
    mean INC_C LP time and, for every heuristic, the mean ratios
    [lp / INC_C lp] and [real / INC_C lp] over the random platforms.
    [quick] shrinks the sweep (fewer platforms and sizes) for smoke
    tests.  [jobs] (default 1) measures the (size, platform) points on a
    domain pool; every PRNG stream is pre-split in sequential order and
    the means are reduced in platform order, so the report is
    bit-identical for every [jobs] value. *)
val run : ?quick:bool -> ?jobs:int -> config -> Report.t
