(** Figure 9: trace visualization of one campaign on a heterogeneous
    platform.

    As in the paper, a 5-worker heterogeneous platform is scheduled with
    the FIFO INC_C heuristic; because of resource selection only three
    of the five workers actually compute.  The report carries the
    per-worker loads and an ASCII Gantt chart of the simulated
    execution (data transfers, computations, result transfers). *)

(** [run ?jobs ()] deterministically searches platform seeds until
    resource selection drops exactly two of the five workers, then
    simulates and renders that campaign.  [jobs] (default 1) probes
    candidate seeds on a domain pool; the lowest matching seed is kept,
    so the report is identical for every [jobs] value. *)
val run : ?width:int -> ?jobs:int -> unit -> Report.t
