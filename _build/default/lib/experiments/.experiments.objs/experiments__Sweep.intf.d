lib/experiments/sweep.mli: Cluster Dls Report
