lib/experiments/fig23.mli: Report
