lib/experiments/report.ml: Buffer Char Float Format List Printf String
