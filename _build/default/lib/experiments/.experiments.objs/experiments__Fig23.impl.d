lib/experiments/fig23.ml: Array Dls Fun List Numeric Printf Report Sim String
