lib/experiments/plot.ml: Array Buffer Float List Printf String
