lib/experiments/fig14.mli: Report
