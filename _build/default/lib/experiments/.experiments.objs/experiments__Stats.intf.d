lib/experiments/stats.mli:
