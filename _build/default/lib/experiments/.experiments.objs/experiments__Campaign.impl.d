lib/experiments/campaign.ml: Array Cluster Dls Numeric Sim
