lib/experiments/fig14.ml: Array Campaign Cluster Dls List Printf Report
