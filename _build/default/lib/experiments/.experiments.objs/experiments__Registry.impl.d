lib/experiments/registry.ml: Ablations Fig14 Fig23 Fig8 Fig9 List Report Sweep
