lib/experiments/campaign.mli: Cluster Dls
