lib/experiments/sweep.ml: Campaign Cluster Dls Hashtbl List Option Plot Printf Report Stats String
