lib/experiments/sweep.ml: Array Campaign Cluster Dls Hashtbl List Option Parallel Plot Printf Report Stats String
