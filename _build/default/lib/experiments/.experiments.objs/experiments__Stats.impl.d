lib/experiments/stats.ml: List
