lib/experiments/fig9.ml: Array Cluster Dls List Numeric Printf Report Sim String
