lib/experiments/fig9.ml: Array Cluster Dls List Numeric Parallel Printf Report Sim String
