lib/experiments/fig8.ml: Cluster List Printf Report Sim Stats
