lib/experiments/ablations.ml: Array Campaign Cluster Dls Float Fun List Numeric Printf Report Sim Stats Unix
