lib/experiments/plot.mli:
