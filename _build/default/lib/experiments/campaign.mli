(** One measured campaign: a heuristic, dimensioned by the LP, executed
    on the simulated cluster.  This is the unit of work behind every
    heuristic-comparison figure. *)

type measurement = {
  heuristic : Dls.Heuristics.t;
  lp_time : float;  (** LP-predicted makespan for the campaign (seconds) *)
  real_time : float;  (** simulated makespan with rounding + noise *)
  workers_used : int;  (** workers that actually received items *)
}

(** [measure ?noise_params ~rng ~machine ~n ~total factors heuristic]
    builds the matrix-product platform, solves the heuristic's LP,
    rounds the loads to [total] items and executes the campaign on the
    simulated cluster. *)
val measure :
  ?noise_params:Cluster.Noise.params ->
  rng:Cluster.Prng.t ->
  machine:Cluster.Workload.machine ->
  n:int ->
  total:int ->
  Cluster.Gen.factors ->
  Dls.Heuristics.t ->
  measurement

(** [measure_platform ?noise_params ~rng ~n ~total platform heuristic]:
    same, for an already-built platform ([n] only parameterizes the
    noise model's cache term). *)
val measure_platform :
  ?noise_params:Cluster.Noise.params ->
  rng:Cluster.Prng.t ->
  n:int ->
  total:int ->
  Dls.Platform.t ->
  Dls.Heuristics.t ->
  measurement
