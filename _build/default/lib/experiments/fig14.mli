(** Figure 14 (and its worker table): resource selection in practice.

    Four workers with communication speed-ups (10, 8, 8, x) and
    computation speed-ups (9, 9, 10, 1); campaigns of 1000 products of
    400x400 matrices, offering 1 to 4 workers to the scheduler.  With
    [x = 1] the framework must refuse the slow fourth worker; with
    [x = 3] it must enroll it for a (barely visible) gain. *)

(** [run ~x ()] produces one row per number of available workers:
    LP time, simulated time, number of workers actually enrolled. *)
val run : ?seed:int -> x:int -> unit -> Report.t

(** [worker_table ()] is the platform description table from Section
    5.3.4. *)
val worker_table : x:int -> Report.t
