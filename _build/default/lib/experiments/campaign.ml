module Q = Numeric.Rational

type measurement = {
  heuristic : Dls.Heuristics.t;
  lp_time : float;
  real_time : float;
  workers_used : int;
}

let measure_platform ?noise_params ~rng ~n ~total platform heuristic =
  let sol = Dls.Heuristics.solve heuristic platform in
  let lp_time =
    Q.to_float (Dls.Lp_model.time_for_load sol ~load:(Q.of_int total))
  in
  let plan = Sim.Star.plan_of_rounded sol ~total in
  let noise = Cluster.Noise.make ?params:noise_params rng ~n in
  let trace = Sim.Star.execute ~noise platform plan in
  let workers_used =
    Array.fold_left (fun acc l -> if l > 0.0 then acc + 1 else acc) 0
      plan.Sim.Star.loads
  in
  { heuristic; lp_time; real_time = trace.Sim.Trace.makespan; workers_used }

let measure ?noise_params ~rng ~machine ~n ~total factors heuristic =
  let platform = Cluster.Gen.platform machine ~n factors in
  measure_platform ?noise_params ~rng ~n ~total platform heuristic
