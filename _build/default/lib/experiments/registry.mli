(** Registry of every reproducible experiment, keyed by the paper's
    figure ids.  The bench harness and the CLI both drive this list. *)

type entry = {
  id : string;
  description : string;
  run : quick:bool -> jobs:int -> Report.t list;
}

val all : entry list

(** [find id] looks an experiment up by id (e.g. "fig12").
    @raise Not_found for unknown ids. *)
val find : string -> entry

val ids : unit -> string list
