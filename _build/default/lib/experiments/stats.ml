let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
  sqrt var

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit points =
  if List.length points < 2 then invalid_arg "Stats.linear_fit: need >= 2 points";
  let xs = List.map fst points and ys = List.map snd points in
  let mx = mean xs and my = mean ys in
  let sxy =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0.0 points
  in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
  let syy = List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.0)) 0.0 ys in
  if sxx = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0.0 then 1.0 else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }
