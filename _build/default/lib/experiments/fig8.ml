let run ?(seed = 2006) () =
  let rng = Cluster.Prng.create ~seed in
  let noise = Cluster.Noise.make rng ~n:100 in
  let machine = Cluster.Workload.gdsdmi in
  let factors = [ 1; 2; 3; 4; 5 ] in
  let sizes_mb = List.init 10 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let time_of factor mb =
    let nominal =
      mb *. 1048576.0 /. float_of_int (machine.Cluster.Workload.bytes_per_sec * factor)
    in
    noise.Sim.Star.comm ~worker:factor nominal
  in
  let series =
    List.map (fun f -> (f, List.map (fun mb -> (mb, time_of f mb)) sizes_mb)) factors
  in
  let rows =
    List.map
      (fun mb ->
        Report.Float mb
        :: List.map
             (fun (_, points) -> Report.Float (List.assoc mb points))
             series)
      sizes_mb
  in
  let notes =
    List.map
      (fun (f, points) ->
        let fit = Stats.linear_fit points in
        let expected =
          1048576.0 /. float_of_int (machine.Cluster.Workload.bytes_per_sec * f)
        in
        Printf.sprintf
          "worker %d: slope %.4g s/MB (model %.4g), intercept %.2g s, R^2 = %.6f"
          f fit.Stats.slope expected fit.Stats.intercept fit.Stats.r2)
      series
  in
  Report.make ~id:"fig8" ~title:"linearity test, transfer time vs message size"
    ~columns:
      ("MB" :: List.map (fun f -> Printf.sprintf "worker%d (s)" f) factors)
    ~notes rows
