(** Figures 2 and 3 of the paper: the shape of general, FIFO and LIFO
    schedules.

    These are illustrative figures, not measurements — we regenerate
    them by solving a fixed 4-worker platform under each discipline and
    rendering the exact schedules as Gantt charts (the general
    permutation pair of Figure 2 is the best one found by exhaustive
    search). *)

(** [run ()] returns one report per discipline, each carrying its chart
    in the notes. *)
val run : ?width:int -> unit -> Report.t list
