(** Arbitrary-precision natural numbers (non-negative integers).

    Numbers are stored as little-endian arrays of 30-bit limbs.  All
    operations are purely functional; the underlying arrays are never
    shared with the caller in a mutable way.  This module is the base of
    the exact rational arithmetic used by the simplex solver: schedules
    computed by the library are exact, with no floating-point drift. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val ten : t

(** {1 Construction and conversion} *)

(** [of_int n] converts a non-negative OCaml integer.
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> t

(** [to_int_opt a] is [Some n] when [a] fits in an OCaml [int]. *)
val to_int_opt : t -> int option

(** [to_float a] is the nearest-ish float; loses precision beyond 53 bits
    and overflows to [infinity] for huge values. *)
val to_float : t -> float

(** [of_string s] parses a decimal numeral (digits only, optional leading
    zeros, ['_'] separators allowed).
    @raise Invalid_argument on empty or non-numeric input. *)
val of_string : string -> t

(** [to_string a] is the decimal representation of [a]. *)
val to_string : t -> string

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

(** [sub a b] is [a - b].
    @raise Invalid_argument if [b > a]. *)
val sub : t -> t -> t

(** [mul a b] multiplies: schoolbook below 32 limbs, Karatsuba above. *)
val mul : t -> t -> t

(** [mul_schoolbook a b] is the O(n²) reference multiplication, exposed
    so the test suite can cross-check {!mul}'s Karatsuba path and the
    benchmarks can measure the crossover. *)
val mul_schoolbook : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)] (Euclidean).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** [gcd a b] is the greatest common divisor; [gcd 0 b = b]. *)
val gcd : t -> t -> t

(** [pow a k] is [a]{^ [k]} for [k >= 0]. *)
val pow : t -> int -> t

(** {1 Bit operations} *)

(** [shift_left a k] multiplies [a] by 2{^ [k]} ([k >= 0]). *)
val shift_left : t -> int -> t

(** [shift_right a k] divides [a] by 2{^ [k]}, rounding down. *)
val shift_right : t -> int -> t

(** [num_bits a] is the position of the highest set bit plus one
    (0 for zero). *)
val num_bits : t -> int

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
