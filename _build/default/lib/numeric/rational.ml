type t = { num : Integer.t; den : Integer.t }
(* Invariant: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)

let make num den =
  if Integer.is_zero den then raise Division_by_zero;
  if Integer.is_zero num then { num = Integer.zero; den = Integer.one }
  else begin
    let num = if Integer.sign den < 0 then Integer.neg num else num in
    let den = Integer.abs den in
    let g = Integer.of_natural (Integer.gcd num den) in
    let num, _ = Integer.divmod num g in
    let den, _ = Integer.divmod den g in
    { num; den }
  end

let of_integer n = { num = n; den = Integer.one }
let of_int n = of_integer (Integer.of_int n)
let of_ints num den = make (Integer.of_int num) (Integer.of_int den)
let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2
let num a = a.num
let den a = a.den
let sign a = Integer.sign a.num
let is_zero a = Integer.is_zero a.num
let is_integer a = Integer.equal a.den Integer.one
let neg a = { a with num = Integer.neg a.num }
let abs a = { a with num = Integer.abs a.num }

let add a b =
  make
    (Integer.add (Integer.mul a.num b.den) (Integer.mul b.num a.den))
    (Integer.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Integer.mul a.num b.num) (Integer.mul a.den b.den)
let div a b = make (Integer.mul a.num b.den) (Integer.mul a.den b.num)
let inv a = div one a

let compare a b =
  Integer.compare (Integer.mul a.num b.den) (Integer.mul b.num a.den)

let equal a b = Integer.equal a.num b.num && Integer.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pow a k =
  if k >= 0 then { num = Integer.pow a.num k; den = Integer.pow a.den k }
  else inv { num = Integer.pow a.num (-k); den = Integer.pow a.den (-k) }

let floor a =
  let q, r = Integer.divmod a.num a.den in
  (* Truncated division rounds toward zero; fix up for negatives. *)
  if Integer.sign r < 0 then Integer.sub q Integer.one else q

let ceil a = Integer.neg (floor (neg a))

let to_int_exn name n =
  match Integer.to_int_opt n with
  | Some v -> v
  | None -> invalid_arg (name ^ ": result exceeds native int range")

let floor_int a = to_int_exn "Rational.floor_int" (floor a)
let ceil_int a = to_int_exn "Rational.ceil_int" (ceil a)
let to_float a = Integer.to_float a.num /. Integer.to_float a.den

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rational.of_float: not finite"
  else if f = 0.0 then zero
  else begin
    let mant, exp = Float.frexp f in
    (* mant * 2^53 is an exact integer for any finite float. *)
    let scaled = Int64.to_int (Int64.of_float (Float.ldexp mant 53)) in
    let num = Integer.of_int scaled in
    let e = exp - 53 in
    if e >= 0 then of_integer (Integer.mul num (Integer.pow (Integer.of_int 2) e))
    else make num (Integer.pow (Integer.of_int 2) (-e))
  end

let sum l = List.fold_left add zero l
let sum_array a = Array.fold_left add zero a

let to_string a =
  if is_integer a then Integer.to_string a.num
  else Integer.to_string a.num ^ "/" ^ Integer.to_string a.den

let pp fmt a = Format.pp_print_string fmt (to_string a)

let of_string_decimal s =
  (* [sign] [digits] [. digits] [e|E [sign] digits] *)
  let len = String.length s in
  if len = 0 then invalid_arg "Rational.of_string: empty string";
  let sgn, pos = match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0) in
  let mantissa_end =
    match String.index_from_opt s pos 'e' with
    | Some i -> i
    | None -> ( match String.index_from_opt s pos 'E' with Some i -> i | None -> len)
  in
  let mantissa = String.sub s pos (mantissa_end - pos) in
  let exponent =
    if mantissa_end = len then 0
    else int_of_string (String.sub s (mantissa_end + 1) (len - mantissa_end - 1))
  in
  let int_part, frac_part =
    match String.index_opt mantissa '.' with
    | None -> (mantissa, "")
    | Some i ->
      (String.sub mantissa 0 i, String.sub mantissa (i + 1) (String.length mantissa - i - 1))
  in
  let digits = int_part ^ frac_part in
  if digits = "" then invalid_arg "Rational.of_string: no digits";
  let n = Integer.of_natural (Natural.of_string digits) in
  let n = if sgn < 0 then Integer.neg n else n in
  let e = exponent - String.length frac_part in
  let ten = Integer.of_int 10 in
  if e >= 0 then of_integer (Integer.mul n (Integer.pow ten e))
  else make n (Integer.pow ten (-e))

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let p = Integer.of_string (String.sub s 0 i) in
    let q = Integer.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make p q
  | None -> of_string_decimal s

module Infix = struct
  let ( +/ ) = add
  let ( -/ ) = sub
  let ( */ ) = mul
  let ( // ) = div
  let ( =/ ) = equal
  let ( <>/ ) a b = not (equal a b)
  let ( </ ) a b = compare a b < 0
  let ( <=/ ) a b = compare a b <= 0
  let ( >/ ) a b = compare a b > 0
  let ( >=/ ) a b = compare a b >= 0
end
