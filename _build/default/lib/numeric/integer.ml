type t = { sign : int; mag : Natural.t }

let make sign mag =
  if sign < -1 || sign > 1 then invalid_arg "Integer.make: sign not in {-1,0,1}";
  if Natural.is_zero mag then { sign = 0; mag = Natural.zero }
  else if sign = 0 then invalid_arg "Integer.make: zero sign, non-zero magnitude"
  else { sign; mag }

let zero = { sign = 0; mag = Natural.zero }
let of_natural mag = if Natural.is_zero mag then zero else { sign = 1; mag }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Natural.of_int n }
  else if n = min_int then
    (* [-min_int] overflows; build |min_int| = 2^62 directly. *)
    { sign = -1; mag = Natural.shift_left Natural.one 62 }
  else { sign = -1; mag = Natural.of_int (-n) }

let one = of_int 1
let minus_one = of_int (-1)
let sign a = a.sign
let magnitude a = a.mag
let is_zero a = a.sign = 0
let neg a = if a.sign = 0 then a else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

let to_int_opt a =
  match Natural.to_int_opt a.mag with
  | Some m -> Some (a.sign * m)
  | None ->
    (* |min_int| = 2^62 exceeds max_int but -2^62 is representable. *)
    if a.sign < 0 && Natural.equal a.mag (Natural.shift_left Natural.one 62)
    then Some min_int
    else None

let to_float a = float_of_int a.sign *. Natural.to_float a.mag

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else a.sign * Natural.compare a.mag b.mag

let equal a b = compare a b = 0

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then { a with mag = Natural.add a.mag b.mag }
  else begin
    let cmp = Natural.compare a.mag b.mag in
    if cmp = 0 then zero
    else if cmp > 0 then { a with mag = Natural.sub a.mag b.mag }
    else { b with mag = Natural.sub b.mag a.mag }
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else { sign = a.sign * b.sign; mag = Natural.mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Natural.divmod a.mag b.mag in
  let quotient =
    if Natural.is_zero q then zero else { sign = a.sign * b.sign; mag = q }
  in
  let remainder = if Natural.is_zero r then zero else { sign = a.sign; mag = r } in
  (quotient, remainder)

let gcd a b = Natural.gcd a.mag b.mag

let pow a k =
  if k < 0 then invalid_arg "Integer.pow: negative exponent";
  let mag = Natural.pow a.mag k in
  if Natural.is_zero mag then zero
  else { sign = (if a.sign < 0 && k land 1 = 1 then -1 else 1); mag }

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Integer.of_string: empty string";
  match s.[0] with
  | '-' -> neg (of_natural (Natural.of_string (String.sub s 1 (len - 1))))
  | '+' -> of_natural (Natural.of_string (String.sub s 1 (len - 1)))
  | _ -> of_natural (Natural.of_string s)

let to_string a =
  if a.sign < 0 then "-" ^ Natural.to_string a.mag else Natural.to_string a.mag

let pp fmt a = Format.pp_print_string fmt (to_string a)
