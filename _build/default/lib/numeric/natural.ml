(* Little-endian limbs in base 2^30, no trailing zero limb; [||] is zero.
   Base 2^30 keeps every intermediate product below 2^62, inside OCaml's
   native 63-bit int range, so no boxed arithmetic is needed anywhere. *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

let zero : t = [||]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Natural.of_int: negative argument";
  let rec limbs acc n =
    if n = 0 then List.rev acc else limbs ((n land mask) :: acc) (n lsr base_bits)
  in
  Array.of_list (limbs [] n)

let one = of_int 1
let two = of_int 2
let ten = of_int 10

let to_int_opt a =
  let l = Array.length a in
  let fits =
    l <= 2 || (l = 3 && a.(2) < 1 lsl (62 - (2 * base_bits)))
  in
  if not fits then None
  else begin
    let v = ref 0 in
    for i = l - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

let to_float a =
  let v = ref 0.0 in
  let basef = float_of_int base in
  for i = Array.length a - 1 downto 0 do
    v := (!v *. basef) +. float_of_int a.(i)
  done;
  !v

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec scan i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else scan (i - 1)
    in
    scan (la - 1)
  end

let equal a b = compare a b = 0

let num_bits a =
  let l = Array.length a in
  if l = 0 then 0
  else begin
    let top = a.(l - 1) in
    let rec width w = if top lsr w = 0 then w else width (w + 1) in
    ((l - 1) * base_bits) + width 0
  end

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if la < lb then invalid_arg "Natural.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  if !borrow <> 0 then invalid_arg "Natural.sub: negative result";
  normalize r

let mul_schoolbook a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let cur = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- cur land mask;
          carry := cur lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = r.(!k) + !carry in
          r.(!k) <- cur land mask;
          carry := cur lsr base_bits;
          incr k
        done
      end
    done;
    normalize r
  end

(* Karatsuba multiplication above this limb count; below it the O(n^2)
   schoolbook loop has better constants (the recursion's temporaries are
   allocation-heavy, so the measured crossover sits high: see the
   "natural mul" benchmarks). *)
let karatsuba_threshold = 512

let low_limbs a m = normalize (Array.sub a 0 (min m (Array.length a)))

let high_limbs a m =
  if Array.length a <= m then zero
  else normalize (Array.sub a m (Array.length a - m))

(* [a * B^ (limbs)] without touching individual bits. *)
let shift_limbs a limbs =
  if is_zero a then zero
  else begin
    let r = Array.make (Array.length a + limbs) 0 in
    Array.blit a 0 r limbs (Array.length a);
    r
  end

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if min la lb < karatsuba_threshold then mul_schoolbook a b
  else begin
    (* Karatsuba: split both numbers at m limbs;
       a*b = z2 B^(2m) + z1 B^m + z0 with
       z1 = (a0+a1)(b0+b1) - z0 - z2, always non-negative. *)
    let m = (max la lb + 1) / 2 in
    let a0 = low_limbs a m and a1 = high_limbs a m in
    let b0 = low_limbs b m and b1 = high_limbs b m in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 m)) (shift_limbs z2 (2 * m))
  end

(* [m] must satisfy 0 <= m < base. *)
let mul_small a m =
  if m = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur land mask;
      carry := cur lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let add_small a m =
  if m = 0 then a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    Array.blit a 0 r 0 la;
    let carry = ref m in
    let i = ref 0 in
    while !carry <> 0 do
      let cur = r.(!i) + !carry in
      r.(!i) <- cur land mask;
      carry := cur lsr base_bits;
      incr i
    done;
    normalize r
  end

(* [m] must satisfy 0 < m < base; returns (quotient, remainder). *)
let divmod_small a m =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / m;
    rem := cur mod m
  done;
  (normalize q, !rem)

let shift_left a k =
  if k < 0 then invalid_arg "Natural.shift_left: negative shift";
  if k = 0 || is_zero a then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- r.(i + limbs + 1) lor (v lsr base_bits)
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Natural.shift_right: negative shift";
  if k = 0 || is_zero a then a
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let hi = if i + limbs + 1 < la then a.(i + limbs + 1) else 0 in
        r.(i) <- ((a.(i + limbs) lsr bits) lor (hi lsl (base_bits - bits))) land mask
      done;
      normalize r
    end
  end

(* Knuth's Algorithm D; requires [Array.length v0 >= 2] and [a >= v0]. *)
let knuth_d a v0 =
  let n = Array.length v0 in
  let top = v0.(n - 1) in
  let rec leading s =
    if top lsl s land (1 lsl (base_bits - 1)) <> 0 then s else leading (s + 1)
  in
  let s = leading 0 in
  let v = shift_left v0 s in
  assert (Array.length v = n);
  let u0 = shift_left a s in
  let m = Array.length u0 - n in
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  for j = m downto 0 do
    let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / v.(n - 1)) and rhat = ref (top2 mod v.(n - 1)) in
    let adjusting = ref true in
    while !adjusting do
      if
        !qhat >= base
        || !qhat * v.(n - 2) > (!rhat lsl base_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + v.(n - 1);
        if !rhat >= base then adjusting := false
      end
      else adjusting := false
    done;
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let t = u.(i + j) - (p land mask) - !borrow in
      if t < 0 then begin
        u.(i + j) <- t + base;
        borrow := 1
      end
      else begin
        u.(i + j) <- t;
        borrow := 0
      end
    done;
    let t = u.(j + n) - !carry - !borrow in
    if t < 0 then begin
      (* The estimate was one too large: add the divisor back. *)
      u.(j + n) <- t + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s2 = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- s2 land mask;
        carry2 := s2 lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land mask
    end
    else u.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = shift_right (normalize (Array.sub u 0 n)) s in
  (normalize q, r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end
  else knuth_d a b

let rec gcd a b = if is_zero b then a else gcd b (snd (divmod a b))

let pow a k =
  if k < 0 then invalid_arg "Natural.pow: negative exponent";
  let rec go acc a k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc a else acc in
      go acc (mul a a) (k lsr 1)
    end
  in
  go one a k

let chunk_digits = 9
let chunk_base = 1_000_000_000

let of_string str =
  let s = String.concat "" (String.split_on_char '_' str) in
  let len = String.length s in
  if len = 0 then invalid_arg "Natural.of_string: empty string";
  String.iter
    (fun ch ->
      if ch < '0' || ch > '9' then
        invalid_arg (Printf.sprintf "Natural.of_string: bad character %C" ch))
    s;
  let acc = ref zero in
  let pos = ref 0 in
  while !pos < len do
    let take = min chunk_digits (len - !pos) in
    let chunk = int_of_string (String.sub s !pos take) in
    let scale = int_of_float (10. ** float_of_int take) in
    acc := add_small (mul_small !acc scale) chunk;
    pos := !pos + take
  done;
  !acc

let to_string a =
  if is_zero a then "0"
  else begin
    let rec chunks acc a =
      if is_zero a then acc
      else begin
        let q, r = divmod_small a chunk_base in
        chunks (r :: acc) q
      end
    in
    match chunks [] a with
    | [] -> assert false
    | first :: rest ->
      let buf = Buffer.create 32 in
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
