(** Exact arbitrary-precision rational numbers.

    Values are kept normalized: the denominator is strictly positive and
    coprime with the numerator; zero is represented as [0/1].  This is
    the scalar type of the whole scheduling library — platform
    parameters, linear programs and schedules are all exact. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t
val half : t

(** {1 Construction and conversion} *)

val of_int : int -> t

(** [of_ints num den] is the fraction [num/den].
    @raise Division_by_zero if [den = 0]. *)
val of_ints : int -> int -> t

(** [make num den] builds and normalizes [num/den] from big integers.
    @raise Division_by_zero if [den] is zero. *)
val make : Integer.t -> Integer.t -> t

val of_integer : Integer.t -> t

(** [of_float f] is the {e exact} rational value of the float [f]
    (denominator a power of two).
    @raise Invalid_argument on NaN or infinities. *)
val of_float : float -> t

val to_float : t -> float

(** [of_string s] parses ["p/q"], a plain integer, or a decimal numeral
    with optional fraction and exponent (e.g. ["-1.25e-3"]). *)
val of_string : string -> t

(** [to_string a] prints ["p/q"], or ["p"] when the denominator is 1. *)
val to_string : t -> string

(** {1 Inspection} *)

val num : t -> Integer.t
val den : t -> Integer.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero if the divisor is zero. *)
val div : t -> t -> t

(** [inv a] is [1/a]. @raise Division_by_zero if [a] is zero. *)
val inv : t -> t

(** [pow a k] for any integer [k] (negative powers invert;
    @raise Division_by_zero on [pow zero k] with [k < 0]). *)
val pow : t -> int -> t

(** [floor a] is the largest integer [<= a]. *)
val floor : t -> Integer.t

(** [ceil a] is the smallest integer [>= a]. *)
val ceil : t -> Integer.t

(** [floor_int a] / [ceil_int a]: same, as OCaml ints.
    @raise Invalid_argument when the result does not fit. *)
val floor_int : t -> int

val ceil_int : t -> int

(** {1 Aggregates} *)

val sum : t list -> t
val sum_array : t array -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

(** Infix operators, meant to be opened locally:
    [Rational.Infix.(a */ b +/ c)]. *)
module Infix : sig
  val ( +/ ) : t -> t -> t
  val ( -/ ) : t -> t -> t
  val ( */ ) : t -> t -> t
  val ( // ) : t -> t -> t
  val ( =/ ) : t -> t -> bool
  val ( <>/ ) : t -> t -> bool
  val ( </ ) : t -> t -> bool
  val ( <=/ ) : t -> t -> bool
  val ( >/ ) : t -> t -> bool
  val ( >=/ ) : t -> t -> bool
end
