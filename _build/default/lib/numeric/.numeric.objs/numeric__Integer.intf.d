lib/numeric/integer.mli: Format Natural
