lib/numeric/rational.mli: Format Integer
