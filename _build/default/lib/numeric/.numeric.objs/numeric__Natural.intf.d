lib/numeric/natural.mli: Format
