lib/numeric/rational.ml: Array Float Format Int64 Integer List Natural String
