lib/numeric/integer.ml: Format Natural Stdlib String
