(** Arbitrary-precision signed integers, built on {!Natural}. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Construction and conversion} *)

val of_int : int -> t
val to_int_opt : t -> int option
val to_float : t -> float

(** [of_natural n] embeds a natural number. *)
val of_natural : Natural.t -> t

(** [make sign mag] builds [sign * mag]; the sign of a zero magnitude is
    forced to 0. [sign] must be -1, 0 or 1. *)
val make : int -> Natural.t -> t

(** [of_string s] parses an optionally signed decimal numeral. *)
val of_string : string -> t

val to_string : t -> string

(** {1 Inspection} *)

(** [sign a] is -1, 0 or 1. *)
val sign : t -> int

(** [magnitude a] is [|a|] as a natural number. *)
val magnitude : t -> Natural.t

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is truncated division: the quotient rounds toward zero
    and the remainder has the sign of [a] (OCaml's [(/)] / [(mod)]
    convention).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** [gcd a b] is the non-negative greatest common divisor of [|a|], [|b|]. *)
val gcd : t -> t -> Natural.t

val pow : t -> int -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
