(* Benchmark and reproduction harness.

   Running this executable regenerates, as printed tables, every figure
   of the paper's evaluation section (Figures 8-14) plus the Theorem 2
   cross-check and three ablation studies, then times the library's
   building blocks with Bechamel (one Test.make per figure on top of the
   micro-benchmarks).

   Usage: main.exe [--quick] [--skip-micro] [--only ID] [--jobs N]    *)

module Q = Numeric.Rational
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every figure                                     *)
(* ------------------------------------------------------------------ *)

let run_experiments ~quick ~jobs ~only =
  let entries =
    match only with
    | Some id -> (
      match Experiments.Registry.find id with
      | e -> [ e ]
      | exception Not_found ->
        Printf.eprintf "unknown experiment %S; known: %s\n" id
          (String.concat ", " (Experiments.Registry.ids ()));
        exit 2)
    | None -> Experiments.Registry.all
  in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      List.iter Experiments.Report.print
        (e.Experiments.Registry.run ~quick ~jobs);
      Printf.printf "(%s finished in %.1f s)\n\n%!" e.Experiments.Registry.id
        (Unix.gettimeofday () -. t0))
    entries

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let bench_platform workers =
  let rng = Cluster.Prng.create ~seed:99 in
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
  Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:120 f

let micro_tests ~jobs =
  let open Bechamel in
  let big_a = Q.of_string "123456789123456789/9876543211" in
  let big_b = Q.of_string "987654321987654321/1234567891" in
  let nat_a = Numeric.Natural.of_string (String.make 120 '7') in
  let nat_b = Numeric.Natural.of_string (String.make 60 '3') in
  let huge_a = Numeric.Natural.of_string (String.make 60000 '7') in
  let huge_b = Numeric.Natural.of_string (String.make 60000 '3') in
  let p4 = bench_platform 4 in
  let p8 = bench_platform 8 in
  let p11 = bench_platform 11 in
  let sol11 = Dls.Fifo.optimal p11 in
  let plan = Sim.Star.plan_of_rounded sol11 ~total:1000 in
  let sched = Dls.Schedule.of_solved sol11 in
  let ws = Array.init 11 (fun i -> Q.of_ints (i + 1) 7) in
  [
    Test.make ~name:"rational add" (Staged.stage (fun () -> Q.add big_a big_b));
    Test.make ~name:"rational mul" (Staged.stage (fun () -> Q.mul big_a big_b));
    Test.make ~name:"natural mul 120x60 digits"
      (Staged.stage (fun () -> Numeric.Natural.mul nat_a nat_b));
    Test.make ~name:"natural divmod 120/60 digits"
      (Staged.stage (fun () -> Numeric.Natural.divmod nat_a nat_b));
    Test.make ~name:"natural mul 60000 digits (karatsuba)"
      (Staged.stage (fun () -> Numeric.Natural.mul huge_a huge_b));
    Test.make ~name:"natural mul 60000 digits (schoolbook)"
      (Staged.stage (fun () -> Numeric.Natural.mul_schoolbook huge_a huge_b));
    Test.make ~name:"optimal FIFO LP, 4 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p4));
    Test.make ~name:"optimal FIFO LP, 8 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p8));
    Test.make ~name:"optimal FIFO LP, 11 workers"
      (Staged.stage (fun () -> Dls.Fifo.optimal p11));
    Test.make ~name:"cached FIFO LP, 11 workers"
      (Staged.stage (fun () ->
           Dls.Lp_model.solve_cached (Dls.Scenario.fifo_exn p11 (Dls.Fifo.order p11))));
    Test.make ~name:"float simplex, same 11-worker LP"
      (Staged.stage
         (let lp =
            Dls.Lp_model.problem Dls.Lp_model.One_port
              (Dls.Scenario.fifo_exn p11 (Dls.Fifo.order p11))
          in
          fun () -> Simplex.Float_solver.solve lp));
    Test.make ~name:"optimal LIFO LP, 11 workers"
      (Staged.stage (fun () -> Dls.Lifo.optimal p11));
    Test.make ~name:"Theorem 2 closed form, 11 workers"
      (Staged.stage (fun () ->
           Dls.Closed_form.fifo_throughput ~c:(Q.of_ints 1 5) ~d:(Q.of_ints 1 10) ws));
    Test.make ~name:"schedule build + validate"
      (Staged.stage (fun () ->
           Dls.Schedule.validate (Dls.Schedule.of_solved sol11)));
    Test.make ~name:"simulate 1000-item campaign"
      (Staged.stage (fun () -> Sim.Star.execute p11 plan));
    Test.make ~name:"gantt render"
      (Staged.stage (fun () -> Sim.Gantt.render_schedule sched));
    Test.make ~name:"brute force best FIFO, 4 workers"
      (Staged.stage (fun () -> Dls.Brute.best_fifo p4));
    Test.make
      ~name:(Printf.sprintf "brute force best FIFO, 4 workers, %d jobs" jobs)
      (Staged.stage (fun () -> Dls.Brute.best_fifo ~jobs p4));
    Test.make ~name:"B&B search best FIFO, 8 workers"
      (Staged.stage (fun () -> Dls.Search.best_fifo p8));
    Test.make
      ~name:(Printf.sprintf "B&B search best FIFO, 8 workers, %d jobs" jobs)
      (Staged.stage (fun () -> Dls.Search.best_fifo ~jobs p8));
    Test.make ~name:"multi-round LP, 4 workers x 4 rounds"
      (Staged.stage (fun () ->
           Dls.Multiround.solve p4
             (Dls.Multiround.config ~rounds:4 (Dls.Fifo.order p4))));
  ]

let figure_tests ~jobs =
  let open Bechamel in
  [
    Test.make ~name:"fig8 harness" (Staged.stage (fun () -> Experiments.Fig8.run ()));
    Test.make ~name:"fig9 harness" (Staged.stage (fun () -> Experiments.Fig9.run ~jobs ()));
    Test.make ~name:"fig10 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig10));
    Test.make ~name:"fig11 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig11));
    Test.make ~name:"fig12 harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig12));
    Test.make ~name:"fig13a harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig13a));
    Test.make ~name:"fig13b harness (quick)"
      (Staged.stage (fun () -> Experiments.Sweep.run ~quick:true ~jobs Experiments.Sweep.fig13b));
    Test.make ~name:"fig14 harness"
      (Staged.stage (fun () -> (Experiments.Fig14.run ~x:1 (), Experiments.Fig14.run ~x:3 ())));
  ]

let run_bechamel ~name tests ~quota_s =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota_s)
      ~stabilize:false ~compaction:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name tests) in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) rows in
  Printf.printf "== bechamel: %s ==\n" name;
  Printf.printf "  %-45s %14s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (k, ols_result) ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> Float.nan
      in
      let pretty =
        if time_ns >= 1e9 then Printf.sprintf "%8.3f  s" (time_ns /. 1e9)
        else if time_ns >= 1e6 then Printf.sprintf "%8.3f ms" (time_ns /. 1e6)
        else if time_ns >= 1e3 then Printf.sprintf "%8.3f us" (time_ns /. 1e3)
        else Printf.sprintf "%8.1f ns" time_ns
      in
      Printf.printf "  %-45s %14s %8s\n" k pretty
        (match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"))
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Command line                                                        *)
(* ------------------------------------------------------------------ *)

let main quick skip_micro only jobs =
  Printf.printf
    "One-port FIFO divisible-load scheduling - reproduction harness\n\
     (Beaumont, Marchal, Rehn, Robert, RR-5738, 2005)%s\n\n%!"
    (if quick then " [quick mode]" else "");
  run_experiments ~quick ~jobs ~only;
  if not skip_micro then begin
    run_bechamel ~name:"components" (micro_tests ~jobs) ~quota_s:0.5;
    run_bechamel ~name:"figures" (figure_tests ~jobs) ~quota_s:1.0
  end

let () =
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shrink every sweep for a fast smoke run.")
  in
  let skip_micro_arg =
    Arg.(
      value & flag
      & info [ "skip-micro" ] ~doc:"Skip the Bechamel micro-benchmarks.")
  in
  let only_arg =
    let doc =
      Printf.sprintf "Run a single experiment; one of: %s."
        (String.concat ", " (Experiments.Registry.ids ()))
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for parallel evaluation (default: number of cores). \
       Figure output is bit-identical to $(b,--jobs=1)."
    in
    Arg.(
      value
      & opt int (Parallel.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let doc = "reproduce the paper's figures and benchmark the library" in
  let cmd =
    Cmd.v
      (Cmd.info "bench" ~doc)
      Term.(const main $ quick_arg $ skip_micro_arg $ only_arg $ jobs_arg)
  in
  exit (Cmd.eval cmd)
