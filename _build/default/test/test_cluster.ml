(* Tests for the simulated-cluster substrate: PRNG, workload model,
   platform generators and noise. *)

module Q = Numeric.Rational

let rat = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Cluster.Prng.create ~seed:42 in
  let b = Cluster.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Cluster.Prng.bits64 a)
      (Cluster.Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Cluster.Prng.create ~seed:1 in
  let b = Cluster.Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true
    (Cluster.Prng.bits64 a <> Cluster.Prng.bits64 b)

let test_prng_split_independent () =
  let a = Cluster.Prng.create ~seed:7 in
  let b = Cluster.Prng.split a in
  let c = Cluster.Prng.split a in
  Alcotest.(check bool) "splits differ" true
    (Cluster.Prng.bits64 b <> Cluster.Prng.bits64 c)

let test_prng_float_range () =
  let g = Cluster.Prng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let f = Cluster.Prng.float g in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_int_range () =
  let g = Cluster.Prng.create ~seed:5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Cluster.Prng.int_range g ~lo:1 ~hi:10 in
    if v < 1 || v > 10 then Alcotest.failf "int out of range: %d" v;
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  (* each bucket within generous bounds of the expected 1000 *)
  Array.iteri
    (fun i c ->
      if c < 700 || c > 1300 then Alcotest.failf "bucket %d skewed: %d" (i + 1) c)
    counts

let test_prng_gaussian_moments () =
  let g = Cluster.Prng.create ~seed:11 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Cluster.Prng.gaussian g in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.05)) "mean ~ 0" 0.0 mean;
  Alcotest.(check (float 0.05)) "var ~ 1" 1.0 var

let test_prng_lognormal_positive () =
  let g = Cluster.Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    if Cluster.Prng.lognormal g ~sigma:0.2 <= 0.0 then
      Alcotest.fail "lognormal must be positive"
  done

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_sizes () =
  Alcotest.(check int) "input" 160_000 (Cluster.Workload.input_bytes ~n:100);
  Alcotest.(check int) "output" 80_000 (Cluster.Workload.output_bytes ~n:100);
  Alcotest.(check int) "flops" 2_000_000 (Cluster.Workload.flops ~n:100)

let test_workload_z_is_half () =
  (* The matrix-product application has z = 1/2 for any size/factors. *)
  List.iter
    (fun (n, f) ->
      let c, _, d =
        Cluster.Workload.costs Cluster.Workload.gdsdmi ~n ~comm_factor:f
          ~comp_factor:3
      in
      Alcotest.check rat (Printf.sprintf "z at n=%d" n) Q.half (Q.div d c))
    [ (40, 1); (100, 5); (200, 10); (400, 2) ]

let test_workload_factors_speed_up () =
  let c1, w1, d1 =
    Cluster.Workload.costs Cluster.Workload.gdsdmi ~n:100 ~comm_factor:1 ~comp_factor:1
  in
  let c2, w2, d2 =
    Cluster.Workload.costs Cluster.Workload.gdsdmi ~n:100 ~comm_factor:2 ~comp_factor:4
  in
  Alcotest.check rat "c halves" c2 (Q.div c1 Q.two);
  Alcotest.check rat "d halves" d2 (Q.div d1 Q.two);
  Alcotest.check rat "w quarters" w2 (Q.div w1 (Q.of_int 4))

let test_workload_platform_z () =
  let p =
    Cluster.Workload.platform Cluster.Workload.gdsdmi ~n:100 ~comm:[| 1; 2; 5 |]
      ~comp:[| 3; 1; 10 |]
  in
  Alcotest.(check (option rat)) "uniform z" (Some Q.half) (Dls.Platform.z_ratio p);
  Alcotest.(check int) "3 workers" 3 (Dls.Platform.size p)

let test_workload_validation () =
  (try
     ignore (Cluster.Workload.costs Cluster.Workload.gdsdmi ~n:0 ~comm_factor:1 ~comp_factor:1);
     Alcotest.fail "n = 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Cluster.Workload.platform Cluster.Workload.gdsdmi ~n:10 ~comm:[| 1 |] ~comp:[| 1; 2 |]);
    Alcotest.fail "length mismatch accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_gen_homogeneous () =
  let rng = Cluster.Prng.create ~seed:3 in
  let f = Cluster.Gen.factors rng Cluster.Gen.Homogeneous ~workers:8 in
  let all_equal a = Array.for_all (fun x -> x = a.(0)) a in
  Alcotest.(check bool) "comm uniform" true (all_equal f.Cluster.Gen.comm);
  Alcotest.(check bool) "comp uniform" true (all_equal f.Cluster.Gen.comp)

let test_gen_hom_comm () =
  let rng = Cluster.Prng.create ~seed:3 in
  let f = Cluster.Gen.factors rng Cluster.Gen.Hom_comm_het_comp ~workers:32 in
  let all_equal a = Array.for_all (fun x -> x = a.(0)) a in
  Alcotest.(check bool) "comm uniform" true (all_equal f.Cluster.Gen.comm);
  (* 32 independent draws are essentially never all equal *)
  Alcotest.(check bool) "comp varies" false (all_equal f.Cluster.Gen.comp)

let test_gen_factor_range () =
  let rng = Cluster.Prng.create ~seed:9 in
  for _ = 1 to 50 do
    let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:11 in
    Array.iter
      (fun x -> if x < 1 || x > 10 then Alcotest.failf "factor %d out of 1-10" x)
      (Array.append f.Cluster.Gen.comm f.Cluster.Gen.comp)
  done

let test_gen_scale () =
  let f = { Cluster.Gen.comm = [| 1; 2 |]; comp = [| 3; 4 |] } in
  let g = Cluster.Gen.scale ~comp_times:10 f in
  Alcotest.(check (array int)) "comm kept" [| 1; 2 |] g.Cluster.Gen.comm;
  Alcotest.(check (array int)) "comp x10" [| 30; 40 |] g.Cluster.Gen.comp

let test_gen_platform_is_bus_when_hom_comm () =
  let rng = Cluster.Prng.create ~seed:21 in
  let f = Cluster.Gen.factors rng Cluster.Gen.Hom_comm_het_comp ~workers:6 in
  let p = Cluster.Gen.platform Cluster.Workload.gdsdmi ~n:80 f in
  Alcotest.(check bool) "bus" true (Dls.Platform.is_bus p)

(* ------------------------------------------------------------------ *)
(* Noise                                                               *)
(* ------------------------------------------------------------------ *)

let test_noise_none_is_identity () =
  let rng = Cluster.Prng.create ~seed:1 in
  let noise = Cluster.Noise.make ~params:Cluster.Noise.none rng ~n:200 in
  Alcotest.(check (float 1e-12)) "comm id" 3.5 (noise.Sim.Star.comm ~worker:0 3.5);
  Alcotest.(check (float 1e-12)) "comp id" 2.5 (noise.Sim.Star.comp ~worker:0 2.5)

let test_noise_overheads_inflate () =
  let rng = Cluster.Prng.create ~seed:1 in
  let params =
    { Cluster.Noise.none with Cluster.Noise.comm_overhead = 0.10; comp_overhead = 0.25 }
  in
  let noise = Cluster.Noise.make ~params rng ~n:100 in
  Alcotest.(check (float 1e-12)) "comm +10%" 1.10 (noise.Sim.Star.comm ~worker:0 1.0);
  Alcotest.(check (float 1e-12)) "comp +25%" 1.25 (noise.Sim.Star.comp ~worker:0 1.0)

let test_noise_cache_pressure_grows_with_n () =
  let rng = Cluster.Prng.create ~seed:1 in
  let params = { Cluster.Noise.none with Cluster.Noise.cache_pressure = 0.2 } in
  let small = (Cluster.Noise.make ~params rng ~n:40).Sim.Star.comp ~worker:0 1.0 in
  let large = (Cluster.Noise.make ~params rng ~n:200).Sim.Star.comp ~worker:0 1.0 in
  Alcotest.(check bool) "larger n, larger factor" true (large > small);
  Alcotest.(check (float 1e-12)) "exact at n=200" 1.2 large

(* ------------------------------------------------------------------ *)
(* Calibration regression                                              *)
(* ------------------------------------------------------------------ *)

(* The Figure 14 anchor: a single worker with speed-ups (comm 10, comp 9)
   processes 1000 products of 400x400 matrices in 1000*(c+w+d) seconds.
   This pins the gdsdmi calibration — if someone retunes the machine
   constants, this fails loudly and EXPERIMENTS.md must be redone. *)
let test_calibration_anchor () =
  let c, w, d =
    Cluster.Workload.costs Cluster.Workload.gdsdmi ~n:400 ~comm_factor:10
      ~comp_factor:9
  in
  let t1 = Q.mul (Q.of_int 1000) (Q.add (Q.add c w) d) in
  Alcotest.(check (float 0.05)) "~22.03 s" 22.03 (Q.to_float t1);
  (* and the exact rational value, for bit-level reproducibility *)
  Alcotest.(check string) "exact" "74368/3375" (Q.to_string t1)

let test_calibration_constants () =
  Alcotest.(check int) "flops rate" 750_000_000
    Cluster.Workload.gdsdmi.Cluster.Workload.flops_per_sec;
  Alcotest.(check int) "link rate" 125_000_000
    Cluster.Workload.gdsdmi.Cluster.Workload.bytes_per_sec

let () =
  Alcotest.run "cluster"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
          Alcotest.test_case "lognormal positive" `Quick test_prng_lognormal_positive;
        ] );
      ( "workload",
        [
          Alcotest.test_case "sizes" `Quick test_workload_sizes;
          Alcotest.test_case "z = 1/2" `Quick test_workload_z_is_half;
          Alcotest.test_case "factors speed up" `Quick test_workload_factors_speed_up;
          Alcotest.test_case "platform z" `Quick test_workload_platform_z;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "gen",
        [
          Alcotest.test_case "homogeneous" `Quick test_gen_homogeneous;
          Alcotest.test_case "hom comm" `Quick test_gen_hom_comm;
          Alcotest.test_case "factor range" `Quick test_gen_factor_range;
          Alcotest.test_case "scale" `Quick test_gen_scale;
          Alcotest.test_case "bus when hom comm" `Quick test_gen_platform_is_bus_when_hom_comm;
        ] );
      ( "noise",
        [
          Alcotest.test_case "none is identity" `Quick test_noise_none_is_identity;
          Alcotest.test_case "overheads" `Quick test_noise_overheads_inflate;
          Alcotest.test_case "cache pressure" `Quick test_noise_cache_pressure_grows_with_n;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "fig14 anchor" `Quick test_calibration_anchor;
          Alcotest.test_case "constants" `Quick test_calibration_constants;
        ] );
    ]
