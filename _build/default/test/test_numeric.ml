(* Tests for the arbitrary-precision arithmetic substrate. *)

module N = Numeric.Natural
module Z = Numeric.Integer
module Q = Numeric.Rational

let nat = Alcotest.testable N.pp N.equal
let int_big = Alcotest.testable Z.pp Z.equal
let rat = Alcotest.testable Q.pp Q.equal

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

(* Random naturals as decimal strings up to [digits] long, so that all
   limb counts are exercised. *)
let gen_natural ?(min_digits = 1) digits =
  let open QCheck2.Gen in
  let* len = int_range min_digits digits in
  let* first = int_range 0 9 in
  let* rest = list_size (return (len - 1)) (int_range 0 9) in
  let s = String.concat "" (List.map string_of_int (first :: rest)) in
  return (N.of_string s)

let gen_integer digits =
  let open QCheck2.Gen in
  let* mag = gen_natural digits in
  let* negative = bool in
  let v = Z.of_natural mag in
  return (if negative then Z.neg v else v)

let gen_rational digits =
  let open QCheck2.Gen in
  let* n = gen_integer digits in
  let* d = gen_natural digits in
  let d = N.add d N.one in
  return (Q.make n (Z.of_natural d))

let prop ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* ------------------------------------------------------------------ *)
(* Natural: unit tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_nat_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (N.to_int_opt (N.of_int n)))
    [ 0; 1; 2; 1073741823; 1073741824; max_int; max_int - 1; 123456789012345 ]

let test_nat_of_int_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Natural.of_int: negative argument") (fun () ->
      ignore (N.of_int (-1)))

let test_nat_to_int_overflow () =
  let big = N.pow (N.of_int 10) 30 in
  Alcotest.(check (option int)) "10^30 does not fit" None (N.to_int_opt big)

let test_nat_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (N.to_string (N.of_string s)))
    [
      "0";
      "1";
      "999999999";
      "1000000000";
      "123456789123456789123456789";
      "99999999999999999999999999999999999999999999999999";
    ]

let test_nat_string_leading_zeros () =
  Alcotest.check nat "0007 = 7" (N.of_int 7) (N.of_string "0007")

let test_nat_string_separators () =
  Alcotest.check nat "1_000 = 1000" (N.of_int 1000) (N.of_string "1_000")

let test_nat_string_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Natural.of_string: empty string") (fun () ->
      ignore (N.of_string ""));
  (try
     ignore (N.of_string "12a3");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_nat_add_carry_chain () =
  (* (2^300 - 1) + 1 = 2^300: a maximal carry propagation. *)
  let p300 = N.shift_left N.one 300 in
  let m = N.sub p300 N.one in
  Alcotest.check nat "carry chain" p300 (N.add m N.one)

let test_nat_sub_borrow_chain () =
  let p300 = N.shift_left N.one 300 in
  let m = N.sub p300 N.one in
  Alcotest.check nat "borrow chain" m (N.sub p300 N.one)

let test_nat_sub_negative () =
  Alcotest.check_raises "negative result"
    (Invalid_argument "Natural.sub: negative result") (fun () ->
      ignore (N.sub (N.of_int 3) (N.of_int 5)))

let test_nat_mul_known () =
  let a = N.of_string "123456789123456789" in
  let b = N.of_string "987654321987654321" in
  Alcotest.check nat "big product"
    (N.of_string "121932631356500531347203169112635269")
    (N.mul a b)

let test_nat_divmod_known () =
  let a = N.of_string "121932631356500531347203169112635270" in
  let b = N.of_string "987654321987654321" in
  let q, r = N.divmod a b in
  Alcotest.check nat "quotient" (N.of_string "123456789123456789") q;
  Alcotest.check nat "remainder" N.one r

let test_nat_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (N.divmod N.one N.zero))

let test_nat_divmod_smaller () =
  let q, r = N.divmod (N.of_int 3) (N.of_int 10) in
  Alcotest.check nat "q" N.zero q;
  Alcotest.check nat "r" (N.of_int 3) r

let test_nat_divmod_addback () =
  (* A case engineered to trigger Knuth-D's rare add-back branch:
     u = B^3/2 where the first quotient estimate overshoots. *)
  let b30 = N.shift_left N.one 30 in
  let u = N.sub (N.shift_left N.one 89) N.one in
  let v = N.add (N.shift_left b30 30) N.one in
  let q, r = N.divmod u v in
  Alcotest.check nat "reconstruct" u (N.add (N.mul q v) r);
  Alcotest.(check bool) "r < v" true (N.compare r v < 0)

let test_nat_gcd () =
  Alcotest.check nat "gcd(48,36)" (N.of_int 12) (N.gcd (N.of_int 48) (N.of_int 36));
  Alcotest.check nat "gcd(0,5)" (N.of_int 5) (N.gcd N.zero (N.of_int 5));
  Alcotest.check nat "gcd(5,0)" (N.of_int 5) (N.gcd (N.of_int 5) N.zero);
  Alcotest.check nat "gcd coprime" N.one (N.gcd (N.of_int 17) (N.of_int 31))

let test_nat_pow () =
  Alcotest.check nat "2^10" (N.of_int 1024) (N.pow N.two 10);
  Alcotest.check nat "x^0" N.one (N.pow (N.of_int 12345) 0);
  Alcotest.check nat "10^20" (N.of_string "100000000000000000000") (N.pow N.ten 20)

let test_nat_shift () =
  Alcotest.check nat "1 << 100 >> 100" N.one
    (N.shift_right (N.shift_left N.one 100) 100);
  Alcotest.check nat "7 << 0" (N.of_int 7) (N.shift_left (N.of_int 7) 0);
  Alcotest.check nat "7 >> 3" N.zero (N.shift_right (N.of_int 7) 3);
  Alcotest.check nat "13 >> 2" (N.of_int 3) (N.shift_right (N.of_int 13) 2)

let test_nat_num_bits () =
  Alcotest.(check int) "bits 0" 0 (N.num_bits N.zero);
  Alcotest.(check int) "bits 1" 1 (N.num_bits N.one);
  Alcotest.(check int) "bits 2^30" 31 (N.num_bits (N.shift_left N.one 30));
  Alcotest.(check int) "bits 2^100-1" 100
    (N.num_bits (N.sub (N.shift_left N.one 100) N.one))

let test_nat_to_float () =
  Alcotest.(check (float 1e-9)) "to_float small" 12345.0
    (N.to_float (N.of_int 12345));
  Alcotest.(check (float 1e6)) "to_float 2^62" (Float.ldexp 1.0 62)
    (N.to_float (N.shift_left N.one 62))

(* ------------------------------------------------------------------ *)
(* Natural: properties                                                 *)
(* ------------------------------------------------------------------ *)

let nat_props =
  let g = gen_natural 50 in
  let g2 = QCheck2.Gen.pair g g in
  let g3 = QCheck2.Gen.triple g g g in
  [
    prop "nat: add commutative" g2 (fun (a, b) -> N.equal (N.add a b) (N.add b a));
    prop "nat: add associative" g3 (fun (a, b, c) ->
        N.equal (N.add (N.add a b) c) (N.add a (N.add b c)));
    prop "nat: (a+b)-b = a" g2 (fun (a, b) -> N.equal (N.sub (N.add a b) b) a);
    prop "nat: mul commutative" g2 (fun (a, b) -> N.equal (N.mul a b) (N.mul b a));
    prop "nat: mul distributes" g3 (fun (a, b, c) ->
        N.equal (N.mul a (N.add b c)) (N.add (N.mul a b) (N.mul a c)));
    prop "nat: divmod reconstructs" g2 (fun (a, b) ->
        let b = N.add b N.one in
        let q, r = N.divmod a b in
        N.equal a (N.add (N.mul q b) r) && N.compare r b < 0);
    prop "nat: string roundtrip" g (fun a -> N.equal a (N.of_string (N.to_string a)));
    prop "nat: shift roundtrip" (QCheck2.Gen.pair g (QCheck2.Gen.int_range 0 200))
      (fun (a, k) -> N.equal a (N.shift_right (N.shift_left a k) k));
    prop "nat: compare antisymmetric" g2 (fun (a, b) ->
        N.compare a b = -N.compare b a);
    prop "nat: gcd divides both" g2 (fun (a, b) ->
        let b = N.add b N.one in
        let g = N.gcd a b in
        let _, r1 = N.divmod a g and _, r2 = N.divmod b g in
        N.is_zero r1 && N.is_zero r2);
    (* Force the Karatsuba path (the threshold is 512 limbs, ~4600
       decimal digits) and cross-check it against the schoolbook
       reference.  Minimum digit counts keep the inputs above the
       threshold. *)
    prop ~count:10 "nat: Karatsuba = schoolbook on large inputs"
      (QCheck2.Gen.pair (gen_natural ~min_digits:5000 9000)
         (gen_natural ~min_digits:5000 9000))
      (fun (a, b) -> N.equal (N.mul a b) (N.mul_schoolbook a b));
    prop ~count:8 "nat: Karatsuba on unbalanced operands"
      (QCheck2.Gen.pair (gen_natural ~min_digits:10000 14000)
         (gen_natural ~min_digits:5000 6000))
      (fun (a, b) -> N.equal (N.mul a b) (N.mul_schoolbook a b));
  ]

(* ------------------------------------------------------------------ *)
(* Integer                                                             *)
(* ------------------------------------------------------------------ *)

let test_int_of_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (string_of_int n) (Some n)
        (Z.to_int_opt (Z.of_int n)))
    [ 0; 1; -1; max_int; min_int + 1; min_int; 42; -42 ]

let test_int_signs () =
  Alcotest.(check int) "sign +" 1 (Z.sign (Z.of_int 5));
  Alcotest.(check int) "sign -" (-1) (Z.sign (Z.of_int (-5)));
  Alcotest.(check int) "sign 0" 0 (Z.sign Z.zero);
  Alcotest.check int_big "neg neg" (Z.of_int 5) (Z.neg (Z.of_int (-5)));
  Alcotest.check int_big "abs" (Z.of_int 5) (Z.abs (Z.of_int (-5)))

let test_int_divmod_truncation () =
  (* Must match OCaml's native (/) and (mod) on every sign combination. *)
  List.iter
    (fun (a, b) ->
      let q, r = Z.divmod (Z.of_int a) (Z.of_int b) in
      Alcotest.(check (option int))
        (Printf.sprintf "%d/%d" a b)
        (Some (a / b)) (Z.to_int_opt q);
      Alcotest.(check (option int))
        (Printf.sprintf "%d mod %d" a b)
        (Some (a mod b))
        (Z.to_int_opt r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3); (0, 5) ]

let test_int_string () =
  Alcotest.check int_big "-123" (Z.of_int (-123)) (Z.of_string "-123");
  Alcotest.check int_big "+123" (Z.of_int 123) (Z.of_string "+123");
  Alcotest.(check string) "to_string" "-123" (Z.to_string (Z.of_int (-123)))

let test_int_pow_parity () =
  Alcotest.check int_big "(-2)^3" (Z.of_int (-8)) (Z.pow (Z.of_int (-2)) 3);
  Alcotest.check int_big "(-2)^4" (Z.of_int 16) (Z.pow (Z.of_int (-2)) 4);
  Alcotest.check int_big "0^0" Z.one (Z.pow Z.zero 0)

let int_props =
  let g = gen_integer 40 in
  let g2 = QCheck2.Gen.pair g g in
  let g3 = QCheck2.Gen.triple g g g in
  [
    prop "int: add commutative" g2 (fun (a, b) -> Z.equal (Z.add a b) (Z.add b a));
    prop "int: a + (-a) = 0" g (fun a -> Z.is_zero (Z.add a (Z.neg a)));
    prop "int: sub = add neg" g2 (fun (a, b) ->
        Z.equal (Z.sub a b) (Z.add a (Z.neg b)));
    prop "int: mul associative" g3 (fun (a, b, c) ->
        Z.equal (Z.mul (Z.mul a b) c) (Z.mul a (Z.mul b c)));
    prop "int: divmod reconstructs" g2 (fun (a, b) ->
        let b = if Z.is_zero b then Z.one else b in
        let q, r = Z.divmod a b in
        Z.equal a (Z.add (Z.mul q b) r)
        && N.compare (Z.magnitude r) (Z.magnitude b) < 0
        && (Z.is_zero r || Z.sign r = Z.sign a));
    prop "int: string roundtrip" g (fun a -> Z.equal a (Z.of_string (Z.to_string a)));
    prop "int: compare trichotomy" g2 (fun (a, b) ->
        let c = Z.compare a b in
        if c = 0 then Z.equal a b
        else if c < 0 then Z.compare b a > 0
        else Z.compare b a < 0);
  ]

(* ------------------------------------------------------------------ *)
(* Rational                                                            *)
(* ------------------------------------------------------------------ *)

let test_rat_normalization () =
  Alcotest.check rat "2/4 = 1/2" (Q.of_ints 1 2) (Q.of_ints 2 4);
  Alcotest.check rat "-2/-4 = 1/2" (Q.of_ints 1 2) (Q.of_ints (-2) (-4));
  Alcotest.check rat "2/-4 = -1/2" (Q.of_ints (-1) 2) (Q.of_ints 2 (-4));
  Alcotest.(check int) "den positive" 1 (Z.sign (Q.den (Q.of_ints 3 (-7))));
  Alcotest.check rat "0/5 = 0" Q.zero (Q.of_ints 0 5)

let test_rat_div_by_zero () =
  Alcotest.check_raises "of_ints x 0" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rat_arithmetic_known () =
  Alcotest.check rat "1/2 + 1/3" (Q.of_ints 5 6) (Q.add Q.half (Q.of_ints 1 3));
  Alcotest.check rat "1/2 * 2/3" (Q.of_ints 1 3) (Q.mul Q.half (Q.of_ints 2 3));
  Alcotest.check rat "(1/2) / (3/4)" (Q.of_ints 2 3) (Q.div Q.half (Q.of_ints 3 4));
  Alcotest.check rat "1/2 - 1/2" Q.zero (Q.sub Q.half Q.half)

let test_rat_floor_ceil () =
  Alcotest.check int_big "floor 7/2" (Z.of_int 3) (Q.floor (Q.of_ints 7 2));
  Alcotest.check int_big "floor -7/2" (Z.of_int (-4)) (Q.floor (Q.of_ints (-7) 2));
  Alcotest.check int_big "ceil 7/2" (Z.of_int 4) (Q.ceil (Q.of_ints 7 2));
  Alcotest.check int_big "ceil -7/2" (Z.of_int (-3)) (Q.ceil (Q.of_ints (-7) 2));
  Alcotest.(check int) "floor_int 3" 3 (Q.floor_int (Q.of_int 3));
  Alcotest.(check int) "ceil_int 3" 3 (Q.ceil_int (Q.of_int 3))

let test_rat_of_float () =
  Alcotest.check rat "0.5" Q.half (Q.of_float 0.5);
  Alcotest.check rat "0.25" (Q.of_ints 1 4) (Q.of_float 0.25);
  Alcotest.check rat "-1.5" (Q.of_ints (-3) 2) (Q.of_float (-1.5));
  Alcotest.check rat "0.0" Q.zero (Q.of_float 0.0);
  Alcotest.check rat "3.0" (Q.of_int 3) (Q.of_float 3.0);
  Alcotest.check_raises "nan" (Invalid_argument "Rational.of_float: not finite")
    (fun () -> ignore (Q.of_float Float.nan))

let test_rat_of_string () =
  Alcotest.check rat "3/4" (Q.of_ints 3 4) (Q.of_string "3/4");
  Alcotest.check rat "-3/4" (Q.of_ints (-3) 4) (Q.of_string "-3/4");
  Alcotest.check rat "42" (Q.of_int 42) (Q.of_string "42");
  Alcotest.check rat "1.25" (Q.of_ints 5 4) (Q.of_string "1.25");
  Alcotest.check rat "-1.25e-2" (Q.of_ints (-1) 80) (Q.of_string "-1.25e-2");
  Alcotest.check rat "2.5E3" (Q.of_int 2500) (Q.of_string "2.5E3");
  Alcotest.check rat ".5" Q.half (Q.of_string ".5")

let test_rat_to_string () =
  Alcotest.(check string) "int form" "3" (Q.to_string (Q.of_int 3));
  Alcotest.(check string) "frac form" "-1/2" (Q.to_string (Q.of_ints 1 (-2)))

let test_rat_sum () =
  Alcotest.check rat "sum list" (Q.of_ints 11 6)
    (Q.sum [ Q.one; Q.half; Q.of_ints 1 3 ]);
  Alcotest.check rat "sum array" Q.zero (Q.sum_array [||])

let rat_props =
  let g = gen_rational 25 in
  let g2 = QCheck2.Gen.pair g g in
  let g3 = QCheck2.Gen.triple g g g in
  let open Q.Infix in
  [
    prop "rat: add commutative" g2 (fun (a, b) -> a +/ b =/ (b +/ a));
    prop "rat: add associative" g3 (fun (a, b, c) ->
        a +/ b +/ c =/ (a +/ (b +/ c)));
    prop "rat: mul associative" g3 (fun (a, b, c) ->
        a */ b */ c =/ (a */ (b */ c)));
    prop "rat: distributivity" g3 (fun (a, b, c) ->
        a */ (b +/ c) =/ ((a */ b) +/ (a */ c)));
    prop "rat: a * inv a = 1" g (fun a ->
        Q.is_zero a || a */ Q.inv a =/ Q.one);
    prop "rat: sub then add" g2 (fun (a, b) -> a -/ b +/ b =/ a);
    prop "rat: floor bounds" g (fun a ->
        let f = Q.of_integer (Q.floor a) in
        f <=/ a && a </ (f +/ Q.one));
    prop "rat: ceil = -floor(-a)" g (fun a ->
        Z.equal (Q.ceil a) (Z.neg (Q.floor (Q.neg a))));
    prop "rat: compare consistent with sub sign" g2 (fun (a, b) ->
        Q.compare a b = Q.sign (a -/ b));
    prop "rat: string roundtrip" g (fun a -> Q.of_string (Q.to_string a) =/ a);
    prop "rat: float roundtrip is exact" QCheck2.Gen.float (fun f ->
        (not (Float.is_finite f)) || Q.to_float (Q.of_float f) = f);
    prop "rat: pow matches repeated mul" (QCheck2.Gen.pair g (QCheck2.Gen.int_range 0 8))
      (fun (a, k) ->
        let rec rep acc i = if i = 0 then acc else rep (acc */ a) (i - 1) in
        Q.pow a k =/ rep Q.one k);
  ]

(* ------------------------------------------------------------------ *)
(* Additional edge cases                                               *)
(* ------------------------------------------------------------------ *)

let test_int_min_int_edges () =
  let m = Z.of_int min_int in
  Alcotest.(check (option int)) "roundtrip" (Some min_int) (Z.to_int_opt m);
  Alcotest.(check bool) "neg leaves int range" true
    (Z.to_int_opt (Z.neg m) = None);
  Alcotest.(check int) "sign" (-1) (Z.sign m);
  Alcotest.(check (float 1e30)) "to_float magnitude"
    (-4.611686018427388e18) (Z.to_float m)

let test_int_gcd_signs () =
  let n = Numeric.Natural.of_int 6 in
  Alcotest.(check bool) "gcd(-12, 18)" true
    (Numeric.Natural.equal n (Z.gcd (Z.of_int (-12)) (Z.of_int 18)));
  Alcotest.(check bool) "gcd(12, -18)" true
    (Numeric.Natural.equal n (Z.gcd (Z.of_int 12) (Z.of_int (-18))))

let test_rat_min_max () =
  Alcotest.check rat "min" Q.half (Q.min Q.half Q.one);
  Alcotest.check rat "max" Q.one (Q.max Q.half Q.one);
  Alcotest.check rat "min neg" (Q.of_int (-3)) (Q.min (Q.of_int (-3)) Q.zero)

let test_rat_negative_pow () =
  Alcotest.check rat "(2/3)^-2" (Q.of_ints 9 4) (Q.pow (Q.of_ints 2 3) (-2));
  Alcotest.check_raises "0^-1" Division_by_zero (fun () ->
      ignore (Q.pow Q.zero (-1)))

let test_rat_is_integer () =
  Alcotest.(check bool) "3 integer" true (Q.is_integer (Q.of_int 3));
  Alcotest.(check bool) "4/2 integer" true (Q.is_integer (Q.of_ints 4 2));
  Alcotest.(check bool) "1/2 not" false (Q.is_integer Q.half)

let test_rat_floor_int_overflow () =
  let huge = Q.of_integer (Z.of_natural (N.pow N.ten 30)) in
  Alcotest.check_raises "overflow"
    (Invalid_argument "Rational.floor_int: result exceeds native int range")
    (fun () -> ignore (Q.floor_int huge))

let test_rat_infix_coverage () =
  let open Q.Infix in
  Alcotest.(check bool) "<>/" true (Q.half <>/ Q.one);
  Alcotest.(check bool) "</" true (Q.half </ Q.one);
  Alcotest.(check bool) "<=/" true (Q.half <=/ Q.half);
  Alcotest.(check bool) ">/" true (Q.one >/ Q.half);
  Alcotest.(check bool) ">=/" true (Q.one >=/ Q.one);
  Alcotest.check rat "chain" (Q.of_ints 3 2) (Q.one +/ Q.one -/ Q.half);
  Alcotest.check rat "div" Q.two (Q.one // Q.half)

let test_rat_of_string_errors () =
  List.iter
    (fun s ->
      try
        ignore (Q.of_string s);
        Alcotest.failf "accepted %S" s
      with Invalid_argument _ | Failure _ | Division_by_zero -> ())
    [ ""; "abc"; "1/"; "/2"; "1/0"; "--3"; "1.2.3" ]

let edge_cases =
  [
    Alcotest.test_case "int min_int edges" `Quick test_int_min_int_edges;
    Alcotest.test_case "int gcd signs" `Quick test_int_gcd_signs;
    Alcotest.test_case "rat min/max" `Quick test_rat_min_max;
    Alcotest.test_case "rat negative pow" `Quick test_rat_negative_pow;
    Alcotest.test_case "rat is_integer" `Quick test_rat_is_integer;
    Alcotest.test_case "rat floor_int overflow" `Quick test_rat_floor_int_overflow;
    Alcotest.test_case "rat infix" `Quick test_rat_infix_coverage;
    Alcotest.test_case "rat of_string errors" `Quick test_rat_of_string_errors;
  ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "numeric"
    [
      ( "natural.unit",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_nat_of_int_roundtrip;
          Alcotest.test_case "of_int negative" `Quick test_nat_of_int_negative;
          Alcotest.test_case "to_int overflow" `Quick test_nat_to_int_overflow;
          Alcotest.test_case "string roundtrip" `Quick test_nat_string_roundtrip;
          Alcotest.test_case "leading zeros" `Quick test_nat_string_leading_zeros;
          Alcotest.test_case "separators" `Quick test_nat_string_separators;
          Alcotest.test_case "invalid strings" `Quick test_nat_string_invalid;
          Alcotest.test_case "carry chain" `Quick test_nat_add_carry_chain;
          Alcotest.test_case "borrow chain" `Quick test_nat_sub_borrow_chain;
          Alcotest.test_case "sub negative" `Quick test_nat_sub_negative;
          Alcotest.test_case "mul known" `Quick test_nat_mul_known;
          Alcotest.test_case "divmod known" `Quick test_nat_divmod_known;
          Alcotest.test_case "divmod by zero" `Quick test_nat_divmod_by_zero;
          Alcotest.test_case "divmod smaller" `Quick test_nat_divmod_smaller;
          Alcotest.test_case "divmod add-back" `Quick test_nat_divmod_addback;
          Alcotest.test_case "gcd" `Quick test_nat_gcd;
          Alcotest.test_case "pow" `Quick test_nat_pow;
          Alcotest.test_case "shift" `Quick test_nat_shift;
          Alcotest.test_case "num_bits" `Quick test_nat_num_bits;
          Alcotest.test_case "to_float" `Quick test_nat_to_float;
        ] );
      ("natural.props", nat_props);
      ( "integer.unit",
        [
          Alcotest.test_case "of_int" `Quick test_int_of_int;
          Alcotest.test_case "signs" `Quick test_int_signs;
          Alcotest.test_case "divmod truncation" `Quick test_int_divmod_truncation;
          Alcotest.test_case "strings" `Quick test_int_string;
          Alcotest.test_case "pow parity" `Quick test_int_pow_parity;
        ] );
      ("integer.props", int_props);
      ( "rational.unit",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "division by zero" `Quick test_rat_div_by_zero;
          Alcotest.test_case "arithmetic" `Quick test_rat_arithmetic_known;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "of_float" `Quick test_rat_of_float;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
          Alcotest.test_case "to_string" `Quick test_rat_to_string;
          Alcotest.test_case "sums" `Quick test_rat_sum;
        ] );
      ("rational.props", rat_props);
      ("edge_cases", edge_cases);
    ]
