(* Tests for the experiment harnesses: report/stats utilities, the
   campaign runner and the qualitative shapes of every reproduced
   figure. *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_row_width () =
  try
    ignore
      (Experiments.Report.make ~id:"x" ~title:"t" ~columns:[ "a"; "b" ]
         [ [ Experiments.Report.Int 1 ] ]);
    Alcotest.fail "accepted ragged row"
  with Invalid_argument _ -> ()

let test_report_cells () =
  Alcotest.(check string) "int" "42" (Experiments.Report.cell_to_string (Experiments.Report.Int 42));
  Alcotest.(check string) "str" "hi" (Experiments.Report.cell_to_string (Experiments.Report.Str "hi"));
  Alcotest.(check string) "float" "1.5" (Experiments.Report.cell_to_string (Experiments.Report.Float 1.5));
  Alcotest.(check string) "whole float" "2.0" (Experiments.Report.cell_to_string (Experiments.Report.Float 2.0))

let test_report_csv () =
  let t =
    Experiments.Report.make ~id:"x" ~title:"t" ~columns:[ "a"; "b,c" ]
      [ [ Experiments.Report.Str "x\"y"; Experiments.Report.Int 7 ] ]
  in
  let csv = Experiments.Report.to_csv t in
  Alcotest.(check string) "escaped" "a,\"b,c\"\n\"x\"\"y\",7\n" csv

let test_report_json () =
  let t =
    Experiments.Report.make ~id:"j" ~title:"quote \" and newline\n"
      ~columns:[ "a" ] ~notes:[ "tab\there" ]
      [ [ Experiments.Report.Float 1.5 ]; [ Experiments.Report.Str "x" ] ]
  in
  let json = Experiments.Report.to_json t in
  Alcotest.(check bool) "escaped quote" true (contains_substring json "\\\"");
  Alcotest.(check bool) "escaped newline" true (contains_substring json "\\n");
  Alcotest.(check bool) "escaped tab" true (contains_substring json "\\t");
  Alcotest.(check bool) "numeric stays numeric" true (contains_substring json "[1.5]");
  Alcotest.(check bool) "object shape" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}')

let test_report_pp_smoke () =
  let t =
    Experiments.Report.make ~id:"id" ~title:"title" ~columns:[ "col" ]
      ~notes:[ "a note" ]
      [ [ Experiments.Report.Int 3 ] ]
  in
  let s = Format.asprintf "%a" Experiments.Report.pp t in
  Alcotest.(check bool) "has title" true (contains_substring s "title");
  Alcotest.(check bool) "has note" true (contains_substring s "a note")

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_stddev () =
  Alcotest.(check (float 1e-12)) "mean" 2.0 (Experiments.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-12)) "stddev" (sqrt (2.0 /. 3.0))
    (Experiments.Stats.stddev [ 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Experiments.Stats.mean []))

let test_stats_linear_fit () =
  let fit = Experiments.Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check (float 1e-12)) "slope" 2.0 fit.Experiments.Stats.slope;
  Alcotest.(check (float 1e-12)) "intercept" 1.0 fit.Experiments.Stats.intercept;
  Alcotest.(check (float 1e-12)) "r2" 1.0 fit.Experiments.Stats.r2

let test_stats_fit_degenerate () =
  (try
     ignore (Experiments.Stats.linear_fit [ (1.0, 2.0) ]);
     Alcotest.fail "one point accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Experiments.Stats.linear_fit [ (1.0, 2.0); (1.0, 3.0) ]);
    Alcotest.fail "vertical line accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Plot                                                                *)
(* ------------------------------------------------------------------ *)

let test_plot_basic () =
  let chart =
    Experiments.Plot.render ~width:20 ~height:5
      [
        { Experiments.Plot.label = "up"; points = [ (0.0, 0.0); (1.0, 1.0) ] };
        { Experiments.Plot.label = "down"; points = [ (0.0, 1.0); (1.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "mentions both labels" true
    (contains_substring chart "up" && contains_substring chart "down");
  Alcotest.(check bool) "uses markers" true
    (contains_substring chart "*" && contains_substring chart "+");
  let lines = String.split_on_char '\n' chart in
  (* 5 grid rows + axis + x labels + 2 legend lines + trailing empty *)
  Alcotest.(check int) "line count" 10 (List.length lines)

let test_plot_empty () =
  Alcotest.(check string) "no data" "(no data)\n" (Experiments.Plot.render []);
  Alcotest.(check string) "empty series" "(no data)\n"
    (Experiments.Plot.render [ { Experiments.Plot.label = "x"; points = [] } ])

let test_plot_degenerate_scale () =
  (* All points identical: must not divide by zero. *)
  let chart =
    Experiments.Plot.render
      [ { Experiments.Plot.label = "flat"; points = [ (1.0, 2.0); (1.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length chart > 0)

let test_plot_y_clamp () =
  (* Fixed y-range clamps out-of-range points instead of crashing. *)
  let chart =
    Experiments.Plot.render ~y_min:0.0 ~y_max:1.0
      [ { Experiments.Plot.label = "wild"; points = [ (0.0, -5.0); (1.0, 7.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (contains_substring chart "wild")

let test_plot_too_many_series () =
  let s label = { Experiments.Plot.label; points = [ (0.0, 0.0) ] } in
  try
    ignore
      (Experiments.Plot.render
         (List.init 9 (fun i -> s (string_of_int i))));
    Alcotest.fail "9 series accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)
(* ------------------------------------------------------------------ *)

let test_campaign_sane () =
  let rng = Cluster.Prng.create ~seed:3 in
  let factors = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:6 in
  let m =
    Experiments.Campaign.measure ~rng ~machine:Cluster.Workload.gdsdmi ~n:100
      ~total:500 factors Dls.Heuristics.Inc_c
  in
  Alcotest.(check bool) "lp positive" true (m.Experiments.Campaign.lp_time > 0.0);
  Alcotest.(check bool) "real >= lp (noise inflates)" true
    (m.Experiments.Campaign.real_time >= m.Experiments.Campaign.lp_time *. 0.999);
  Alcotest.(check bool) "workers in range" true
    (m.Experiments.Campaign.workers_used >= 1 && m.Experiments.Campaign.workers_used <= 6)

let test_campaign_noise_free_matches_lp () =
  let rng = Cluster.Prng.create ~seed:4 in
  let factors = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:5 in
  let m =
    Experiments.Campaign.measure ~noise_params:Cluster.Noise.none ~rng
      ~machine:Cluster.Workload.gdsdmi ~n:80 ~total:100_000 factors
      Dls.Heuristics.Inc_c
  in
  (* Large totals make the integer-rounding error negligible. *)
  Alcotest.(check bool) "within 0.1%" true
    (Float.abs ((m.Experiments.Campaign.real_time /. m.Experiments.Campaign.lp_time) -. 1.0)
    < 1e-3)

(* ------------------------------------------------------------------ *)
(* Figure harnesses                                                    *)
(* ------------------------------------------------------------------ *)

let test_fig23_diagrams () =
  let reports = Experiments.Fig23.run () in
  Alcotest.(check (list string)) "three diagrams" [ "fig2"; "fig3a"; "fig3b" ]
    (List.map (fun r -> r.Experiments.Report.id) reports);
  List.iter
    (fun r ->
      Alcotest.(check bool) "has a chart" true
        (List.exists
           (fun n -> contains_substring n "legend:")
           r.Experiments.Report.notes);
      Alcotest.(check bool) "has loads" true
        (List.length r.Experiments.Report.rows >= 1))
    reports

let test_fig8_linearity () =
  let r = Experiments.Fig8.run () in
  Alcotest.(check int) "10 rows" 10 (List.length r.Experiments.Report.rows);
  (* every per-worker note must report an essentially perfect fit *)
  List.iter
    (fun note ->
      if contains_substring note "R^2" then begin
        match String.index_opt note '=' with
        | Some _ ->
          let r2 =
            Scanf.sscanf (List.nth (String.split_on_char '=' note) 1) " %f"
              Fun.id
          in
          if r2 < 0.98 then Alcotest.failf "poor linearity: %s" note
        | None -> ()
      end)
    r.Experiments.Report.notes

let test_fig9_selects_three_workers () =
  let r = Experiments.Fig9.run () in
  let items_of_row row =
    match List.rev row with
    | Experiments.Report.Int items :: _ -> items
    | _ -> Alcotest.fail "unexpected row shape"
  in
  let used =
    List.length
      (List.filter (fun row -> items_of_row row > 0) r.Experiments.Report.rows)
  in
  Alcotest.(check int) "3 of 5 workers used" 3 used;
  Alcotest.(check bool) "trace reported valid" true
    (List.exists (fun n -> contains_substring n "trace valid: true") r.Experiments.Report.notes)

let float_cell = function
  | Experiments.Report.Float f -> f
  | Experiments.Report.Int i -> float_of_int i
  | Experiments.Report.Str s -> Alcotest.failf "expected number, got %S" s

let test_sweep_fig12_shape () =
  let r = Experiments.Sweep.run ~quick:true Experiments.Sweep.fig12 in
  Alcotest.(check int) "5 sizes in quick mode" 5 (List.length r.Experiments.Report.rows);
  List.iter
    (fun row ->
      match row with
      | [ _n; lp; incc_ratio; incw_lp; incw_real; _lifo_lp; lifo_real ] ->
        Alcotest.(check bool) "lp positive" true (float_cell lp > 0.0);
        Alcotest.(check bool) "real above lp" true (float_cell incc_ratio >= 1.0);
        (* Theorem 1: INC_C is the optimal FIFO order, INC_W cannot have
           a smaller LP time. *)
        Alcotest.(check bool) "INC_W lp ratio >= 1" true
          (float_cell incw_lp >= 1.0 -. 1e-9);
        Alcotest.(check bool) "INC_W real above" true (float_cell incw_real >= 1.0);
        Alcotest.(check bool) "LIFO real sane" true
          (float_cell lifo_real >= 0.8 && float_cell lifo_real < 2.0)
      | _ -> Alcotest.fail "unexpected column count")
    r.Experiments.Report.rows

let test_sweep_fig10_homogeneous_columns () =
  let r = Experiments.Sweep.run ~quick:true Experiments.Sweep.fig10 in
  (* INC_W is dropped: all FIFO orders coincide on homogeneous platforms. *)
  Alcotest.(check int) "5 columns" 5 (List.length r.Experiments.Report.columns)

let test_fig14_resource_selection () =
  let used_row r avail =
    let row = List.nth r.Experiments.Report.rows (avail - 1) in
    match List.rev row with
    | Experiments.Report.Int used :: _ -> used
    | _ -> Alcotest.fail "unexpected row"
  in
  let lp_of r avail =
    float_cell (List.nth (List.nth r.Experiments.Report.rows (avail - 1)) 1)
  in
  let r1 = Experiments.Fig14.run ~x:1 () in
  Alcotest.(check int) "x=1: 4 available, 3 used" 3 (used_row r1 4);
  Alcotest.(check bool) "x=1: adding w4 does not help" true
    (Float.abs (lp_of r1 4 -. lp_of r1 3) < 1e-9);
  let r3 = Experiments.Fig14.run ~x:3 () in
  Alcotest.(check int) "x=3: 4 available, 4 used" 4 (used_row r3 4);
  Alcotest.(check bool) "x=3: adding w4 helps" true (lp_of r3 4 < lp_of r3 3);
  (* availability can only improve the makespan *)
  List.iter
    (fun r ->
      let lps = List.map (fun a -> lp_of r a) [ 1; 2; 3; 4 ] in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone" true (non_increasing lps))
    [ r1; r3 ]

let test_fig14_worker_table () =
  let t = Experiments.Fig14.worker_table ~x:1 in
  Alcotest.(check int) "4 workers" 4 (List.length t.Experiments.Report.rows)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let test_theorem2_check_exact () =
  let r = Experiments.Ablations.theorem2_check () in
  List.iter
    (fun row ->
      match List.rev row with
      | Experiments.Report.Str verdict :: _ ->
        Alcotest.(check string) "exact agreement" "exact" verdict
      | _ -> Alcotest.fail "unexpected row")
    r.Experiments.Report.rows

let test_oneport_cost_ratios () =
  let r = Experiments.Ablations.one_port_cost ~quick:true () in
  List.iter
    (fun row ->
      match row with
      | [ _n; mean; mx ] ->
        Alcotest.(check bool) "two-port never slower" true (float_cell mean >= 1.0 -. 1e-12);
        Alcotest.(check bool) "max >= mean shape" true (float_cell mx >= 1.0 -. 1e-12)
      | _ -> Alcotest.fail "unexpected row")
    r.Experiments.Report.rows

let test_permutation_gap_bounds () =
  let r = Experiments.Ablations.permutation_gap ~quick:true () in
  List.iter
    (fun row ->
      match row with
      | [ _name; mean; mn; _hits ] ->
        Alcotest.(check bool) "at most the brute optimum" true
          (float_cell mean <= 1.0 +. 1e-9);
        Alcotest.(check bool) "min <= mean" true
          (float_cell mn <= float_cell mean +. 1e-9)
      | _ -> Alcotest.fail "unexpected row")
    r.Experiments.Report.rows

let test_lifo_regime_shape () =
  let r = Experiments.Ablations.lifo_regime ~quick:true () in
  (* The compute-bound end must favour LIFO; the comm-bound end must not. *)
  let ratio row = float_cell (List.nth row 1) in
  let first = List.hd r.Experiments.Report.rows in
  let last = List.nth r.Experiments.Report.rows (List.length r.Experiments.Report.rows - 1) in
  Alcotest.(check bool) "comm-bound: LIFO not better" true (ratio first >= 0.99);
  Alcotest.(check bool) "compute-bound: LIFO wins" true (ratio last < 1.0);
  (* enrollment grows towards compute-bound regimes *)
  let enrolled row = float_cell (List.nth row 2) in
  Alcotest.(check bool) "enrollment grows" true (enrolled last > enrolled first)

let test_affine_latency_shape () =
  let r = Experiments.Ablations.affine_latency ~quick:true () in
  let rhos =
    List.filter_map
      (fun row ->
        match List.nth row 1 with
        | Experiments.Report.Float f -> Some f
        | _ -> None)
      r.Experiments.Report.rows
  in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "rho falls with latency" true (non_increasing rhos);
  let enrolled row =
    match List.nth row 2 with Experiments.Report.Int i -> i | _ -> -1
  in
  let first = enrolled (List.hd r.Experiments.Report.rows) in
  let last =
    enrolled (List.nth r.Experiments.Report.rows (List.length r.Experiments.Report.rows - 1))
  in
  Alcotest.(check bool) "enrollment shrinks" true (last <= first)

let test_multiround_ablation_shape () =
  let r = Experiments.Ablations.multiround ~quick:true () in
  let linear = List.map (fun row -> float_cell (List.nth row 1)) r.Experiments.Report.rows in
  let affine =
    List.filter_map
      (fun row ->
        match List.nth row 2 with
        | Experiments.Report.Float f -> Some f
        | _ -> None)
      r.Experiments.Report.rows
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "linear monotone" true (non_decreasing linear);
  (* the affine curve must NOT be monotone: a finite optimum exists *)
  let best = List.fold_left Float.max neg_infinity affine in
  let last = List.nth affine (List.length affine - 1) in
  Alcotest.(check bool) "affine peaks before the end" true (last < best)

let test_protocol_ablation () =
  let r = Experiments.Ablations.protocol ~quick:true () in
  List.iter
    (fun row ->
      match row with
      | [ _n; lp; naive_mean; naive_min ] ->
        (* LP plans: the two policies must coincide exactly. *)
        Alcotest.(check (float 1e-9)) "LP plans unaffected" 1.0 (float_cell lp);
        (* Eager never helps: it is a feasible one-port execution of the
           same orders, and lazy realizes the LP's canonical form. *)
        Alcotest.(check bool) "eager never beats lazy" true
          (float_cell naive_min >= 1.0 -. 1e-9);
        Alcotest.(check bool) "mean >= min" true
          (float_cell naive_mean >= float_cell naive_min -. 1e-9)
      | _ -> Alcotest.fail "unexpected row")
    r.Experiments.Report.rows

let test_scaling_ablation () =
  let r = Experiments.Ablations.scaling ~quick:true () in
  List.iter
    (fun row ->
      match row with
      | [ _w; exact_ms; float_ms; err; pivots ] ->
        Alcotest.(check bool) "exact time positive" true (float_cell exact_ms > 0.0);
        Alcotest.(check bool) "float no slower x10" true
          (float_cell float_ms < float_cell exact_ms *. 10.0);
        Alcotest.(check bool) "solvers agree" true (float_cell err < 1e-9);
        Alcotest.(check bool) "pivots sane" true (float_cell pivots >= 1.0)
      | _ -> Alcotest.fail "unexpected row")
    r.Experiments.Report.rows

let test_sensitivity_ablation_shape () =
  let r = Experiments.Ablations.sensitivity ~quick:true () in
  (* degradation grows with jitter for both heuristics *)
  List.iter
    (fun col ->
      let series =
        List.map (fun row -> float_cell (List.nth row col)) r.Experiments.Report.rows
      in
      let first = List.hd series in
      let last = List.nth series (List.length series - 1) in
      Alcotest.(check bool) "grows with jitter" true (last > first);
      Alcotest.(check bool) "baseline near 1" true (first < 1.05))
    [ 1; 2 ]

let test_ordering_ablation () =
  let r = Experiments.Ablations.ordering ~quick:true () in
  match r.Experiments.Report.rows with
  | (Experiments.Report.Str "INC_C (Theorem 1)" :: [ v ]) :: rest ->
    Alcotest.(check (float 1e-9)) "INC_C is the reference" 1.0 (float_cell v);
    List.iter
      (fun row ->
        match row with
        | [ _; ratio ] ->
          Alcotest.(check bool) "no order beats INC_C" true
            (float_cell ratio <= 1.0 +. 1e-9)
        | _ -> Alcotest.fail "unexpected row")
      rest
  | _ -> Alcotest.fail "INC_C row missing or misplaced"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_ids_unique () =
  let ids = Experiments.Registry.ids () in
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq Stdlib.compare ids));
  Alcotest.(check bool) "all paper figures present" true
    (List.for_all
       (fun id -> List.mem id ids)
       [ "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13a"; "fig13b"; "fig14" ])

let test_registry_find () =
  let e = Experiments.Registry.find "fig12" in
  Alcotest.(check string) "id" "fig12" e.Experiments.Registry.id;
  try
    ignore (Experiments.Registry.find "nope");
    Alcotest.fail "found a ghost"
  with Not_found -> ()

let () =
  Alcotest.run "experiments"
    [
      ( "report",
        [
          Alcotest.test_case "row width" `Quick test_report_row_width;
          Alcotest.test_case "cells" `Quick test_report_cells;
          Alcotest.test_case "csv" `Quick test_report_csv;
          Alcotest.test_case "json" `Quick test_report_json;
          Alcotest.test_case "pp" `Quick test_report_pp_smoke;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "degenerate fits" `Quick test_stats_fit_degenerate;
        ] );
      ( "plot",
        [
          Alcotest.test_case "basic" `Quick test_plot_basic;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "degenerate scale" `Quick test_plot_degenerate_scale;
          Alcotest.test_case "y clamp" `Quick test_plot_y_clamp;
          Alcotest.test_case "too many series" `Quick test_plot_too_many_series;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "sane measurement" `Quick test_campaign_sane;
          Alcotest.test_case "noise-free matches LP" `Quick
            test_campaign_noise_free_matches_lp;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig2-3 diagrams" `Quick test_fig23_diagrams;
          Alcotest.test_case "fig8 linearity" `Quick test_fig8_linearity;
          Alcotest.test_case "fig9 selection" `Quick test_fig9_selects_three_workers;
          Alcotest.test_case "fig12 shape" `Slow test_sweep_fig12_shape;
          Alcotest.test_case "fig10 columns" `Slow test_sweep_fig10_homogeneous_columns;
          Alcotest.test_case "fig14 selection" `Quick test_fig14_resource_selection;
          Alcotest.test_case "fig14 table" `Quick test_fig14_worker_table;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "theorem2 exact" `Quick test_theorem2_check_exact;
          Alcotest.test_case "one-port cost" `Slow test_oneport_cost_ratios;
          Alcotest.test_case "permutation gap" `Slow test_permutation_gap_bounds;
          Alcotest.test_case "ordering" `Slow test_ordering_ablation;
          Alcotest.test_case "lifo regime" `Slow test_lifo_regime_shape;
          Alcotest.test_case "affine latency" `Slow test_affine_latency_shape;
          Alcotest.test_case "multiround" `Slow test_multiround_ablation_shape;
          Alcotest.test_case "protocol" `Slow test_protocol_ablation;
          Alcotest.test_case "sensitivity" `Slow test_sensitivity_ablation_shape;
          Alcotest.test_case "scaling" `Slow test_scaling_ablation;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
        ] );
    ]
