(* Divisible loads on a hierarchical grid: tree networks.

   The star results of the paper sit inside a larger DLT tradition that
   handles multi-level platforms by the "equivalent processor"
   reduction: summarize a whole subtree as one worker whose speed is the
   subtree's throughput, then solve the parent's star problem.  This
   example schedules a two-level federation — a master connected to
   three site head-nodes, each fronting its own small cluster — and
   shows what the reduction buys (no return messages: the classical
   baseline model).

   Run with:  dune exec examples/hierarchical_grid.exe               *)

module Q = Numeric.Rational

let q = Q.of_int
let qq = Q.of_ints

let () =
  (* Site A: fast head node (computes itself) + two workers. *)
  let site_a =
    Dls.Tree.node ~name:"headA" ~w:(q 2)
      [
        (qq 1 2, Dls.Tree.leaf ~name:"a1" (q 1));
        (qq 1 2, Dls.Tree.leaf ~name:"a2" (q 2));
      ]
  in
  (* Site B: pure relay in front of three slower machines. *)
  let site_b =
    Dls.Tree.node ~name:"relayB"
      [
        (qq 1 4, Dls.Tree.leaf ~name:"b1" (q 3));
        (qq 1 4, Dls.Tree.leaf ~name:"b2" (q 3));
        (qq 1 2, Dls.Tree.leaf ~name:"b3" (q 4));
      ]
  in
  (* Site C: one standalone machine on a slow WAN link. *)
  let site_c = Dls.Tree.leaf ~name:"c1" (q 1) in
  let grid =
    Dls.Tree.node ~name:"master"
      [ (q 1, site_a); (qq 3 2, site_b); (q 2, site_c) ]
  in
  Format.printf "The federation:@.%a@.@." Dls.Tree.pp grid;

  (* Equivalent-processor summaries. *)
  List.iter
    (fun (label, site) ->
      Format.printf "%s acts as a single worker of cost %s per unit (~%.4g)@."
        label
        (Q.to_string (Dls.Tree.equivalent_w site))
        (Q.to_float (Dls.Tree.equivalent_w site)))
    [ ("site A", site_a); ("site B", site_b); ("site C", site_c) ];
  print_newline ();

  let rho = Dls.Tree.throughput grid in
  Format.printf "grid throughput: %s (~%.6g) load units per unit time@."
    (Q.to_string rho) (Q.to_float rho);
  (match Dls.Tree.validate grid with
  | Ok () -> Format.printf "operational validator: every timing rule checks out@.@."
  | Error msgs -> List.iter (Format.printf "INVALID: %s@.") msgs);

  Format.printf "per-node work (unit horizon):@.";
  List.iter
    (fun a ->
      if Q.sign a.Dls.Tree.load > 0 then
        Format.printf "  %-7s %-10s units (receives during [%.3g, %.3g])@."
          a.Dls.Tree.node_name
          (Q.to_string a.Dls.Tree.load)
          (Q.to_float a.Dls.Tree.receive_start)
          (Q.to_float a.Dls.Tree.receive_finish))
    (Dls.Tree.schedule grid);
  print_newline ();

  (* What does the hierarchy cost?  Compare against a flat star where
     every machine hangs directly off the master with its site's link. *)
  let flat =
    Dls.Tree.node ~name:"flat-master"
      [
        (q 1, Dls.Tree.leaf ~name:"fa0" (q 2));
        (q 1, Dls.Tree.leaf ~name:"fa1" (q 1));
        (q 1, Dls.Tree.leaf ~name:"fa2" (q 2));
        (qq 3 2, Dls.Tree.leaf ~name:"fb1" (q 3));
        (qq 3 2, Dls.Tree.leaf ~name:"fb2" (q 3));
        (qq 3 2, Dls.Tree.leaf ~name:"fb3" (q 4));
        (q 2, Dls.Tree.leaf ~name:"fc1" (q 1));
      ]
  in
  let rho_flat = Dls.Tree.throughput flat in
  Format.printf
    "flat star with the same machines: %s (~%.6g) — the hierarchy costs %.1f%%@."
    (Q.to_string rho_flat) (Q.to_float rho_flat)
    (100.0 *. (1.0 -. (Q.to_float rho /. Q.to_float rho_flat)))
