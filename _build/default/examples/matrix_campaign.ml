(* The paper's Section 5 application end-to-end: a campaign of 1000
   matrix products on a heterogeneous 11-worker cluster, scheduled with
   the three heuristics (INC_C, INC_W, LIFO) and executed on the
   simulated cluster with integer rounding and noise.

   Run with:  dune exec examples/matrix_campaign.exe                  *)

module Q = Numeric.Rational

let () =
  let n = 120 (* matrix size *) and total = 1000 (* products *) in
  let rng = Cluster.Prng.create ~seed:2005 in

  (* A random heterogeneous platform, speed-up factors 1-10 as in the
     paper's experiments. *)
  let factors = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:11 in
  let platform = Cluster.Gen.platform Cluster.Workload.gdsdmi ~n factors in
  Format.printf
    "Simulated gdsdmi cluster, %dx%d products, %d items, 11 workers@." n n total;
  Format.printf "comm speed-ups: %s@."
    (String.concat " " (Array.to_list (Array.map string_of_int factors.Cluster.Gen.comm)));
  Format.printf "comp speed-ups: %s@.@."
    (String.concat " " (Array.to_list (Array.map string_of_int factors.Cluster.Gen.comp)));

  Format.printf "%-8s %14s %14s %9s %10s@." "strategy" "lp time (s)"
    "real time (s)" "real/lp" "enrolled";
  List.iter
    (fun h ->
      let m =
        Experiments.Campaign.measure_platform
          ~rng:(Cluster.Prng.split rng) ~n ~total platform h
      in
      Format.printf "%-8s %14.3f %14.3f %9.3f %10d@." (Dls.Heuristics.name h)
        m.Experiments.Campaign.lp_time m.Experiments.Campaign.real_time
        (m.Experiments.Campaign.real_time /. m.Experiments.Campaign.lp_time)
        m.Experiments.Campaign.workers_used)
    Dls.Heuristics.all;
  print_newline ();

  (* Show the integer rounding at work for INC_C: rational LP loads
     versus the integer item counts actually shipped. *)
  let sol = Dls.Heuristics.solve Dls.Heuristics.Inc_c platform in
  let loads = Dls.Rounding.integer_loads sol ~total in
  Format.printf "INC_C integer loads (%d items total):@." total;
  Array.iteri
    (fun i items ->
      if items > 0 then
        Format.printf "  %-4s %4d items (LP share %.2f)@."
          (Dls.Platform.get platform i).Dls.Platform.name items
          (Q.to_float sol.Dls.Lp_model.alpha.(i)
          *. float_of_int total
          /. Q.to_float sol.Dls.Lp_model.rho))
    loads;
  Format.printf "rounding imbalance: at most %s item@."
    (Q.to_string (Dls.Rounding.imbalance sol ~total))
