examples/crypto_keygen.mli:
