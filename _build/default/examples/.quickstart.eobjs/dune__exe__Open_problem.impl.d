examples/open_problem.ml: Array Cluster Dls Format List Numeric Printf String
