examples/resource_selection.ml: Array Cluster Dls Format List Numeric
