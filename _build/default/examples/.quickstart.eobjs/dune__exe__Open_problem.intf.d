examples/open_problem.mli:
