examples/matrix_campaign.mli:
