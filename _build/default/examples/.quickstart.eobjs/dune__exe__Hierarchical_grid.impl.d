examples/hierarchical_grid.ml: Dls Format List Numeric
