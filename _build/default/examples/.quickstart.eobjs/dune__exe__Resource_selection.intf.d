examples/resource_selection.mli:
