examples/hierarchical_grid.mli:
