examples/matrix_campaign.ml: Array Cluster Dls Experiments Format List Numeric String
