examples/quickstart.ml: Dls Format List Numeric Sim
