examples/crypto_keygen.ml: Array Dls Format List Numeric Sim String
