examples/quickstart.mli:
