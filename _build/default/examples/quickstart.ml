(* Quickstart: schedule a divisible load on a small heterogeneous star
   platform and inspect the result.

   Run with:  dune exec examples/quickstart.exe                       *)

module Q = Numeric.Rational

let () =
  (* A master and three workers.  Costs are per load unit: sending one
     unit to P1 takes 1 time unit, computing it takes 1, returning the
     (half-sized, z = 1/2) result takes 1/2. *)
  let platform =
    Dls.Platform.make_exn
      [
        Dls.Platform.worker ~name:"P1" ~c:Q.one ~w:Q.one ~d:Q.half ();
        Dls.Platform.worker ~name:"P2" ~c:(Q.of_int 2) ~w:Q.one ~d:Q.one ();
        Dls.Platform.worker ~name:"P3" ~c:(Q.of_ints 3 2) ~w:(Q.of_int 3)
          ~d:(Q.of_ints 3 4) ();
      ]
  in
  Format.printf "Platform:@.%a@." Dls.Platform.pp platform;

  (* Theorem 1: the optimal FIFO schedule serves workers by
     non-decreasing communication cost; the LP dimensions the loads and
     performs resource selection. *)
  let fifo = Dls.Fifo.optimal platform in
  Format.printf "Optimal FIFO schedule:@.%a@." Dls.Lp_model.pp fifo;

  (* The same platform under the LIFO discipline (first served returns
     last). *)
  let lifo = Dls.Lifo.optimal platform in
  Format.printf "Optimal LIFO throughput: %s (~%.4f)@.@."
    (Q.to_string lifo.Dls.Lp_model.rho)
    (Q.to_float lifo.Dls.Lp_model.rho);

  (* Realize the FIFO solution as an explicit timeline and draw it. *)
  let schedule = Dls.Schedule.of_solved fifo in
  (match Dls.Schedule.validate schedule with
  | Ok () -> Format.printf "schedule validates: all one-port invariants hold@."
  | Error msgs -> List.iter (Format.printf "INVALID: %s@.") msgs);
  print_newline ();
  print_string (Sim.Gantt.render_schedule schedule);
  print_newline ();

  (* Makespan scaling is linear: processing 600 load units simply scales
     the unit schedule. *)
  let load = Q.of_int 600 in
  Format.printf "makespan for %s units: %s time units@." (Q.to_string load)
    (Q.to_string (Dls.Lp_model.time_for_load fifo ~load));

  (* Execute the campaign on the discrete-event simulator (no noise):
     the measured makespan matches the LP prediction exactly. *)
  let plan = Sim.Star.plan_of_solved fifo in
  let trace = Sim.Star.execute platform plan in
  Format.printf "simulated unit-campaign makespan: %.6f (LP predicts 1.0)@."
    trace.Sim.Trace.makespan
