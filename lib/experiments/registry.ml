type entry = {
  id : string;
  description : string;
  run : quick:bool -> jobs:int -> Report.t list;
}

let sweep_entry config =
  {
    id = config.Sweep.id;
    description = config.Sweep.title;
    run = (fun ~quick ~jobs -> [ Sweep.run ~quick ~jobs config ]);
  }

let all =
  [
    {
      id = "fig2-3";
      description = "schedule-shape diagrams (general / FIFO / LIFO)";
      run = (fun ~quick:_ ~jobs:_ -> Fig23.run ());
    };
    {
      id = "fig8";
      description = "linearity test of the communication cost model";
      run = (fun ~quick:_ ~jobs:_ -> [ Fig8.run () ]);
    };
    {
      id = "fig9";
      description = "execution trace with resource selection (Gantt)";
      run = (fun ~quick:_ ~jobs -> [ Fig9.run ~jobs () ]);
    };
  ]
  @ List.map sweep_entry Sweep.all
  @ [
      {
        id = "fig14";
        description = "participating workers on the 4-worker platform";
        run =
          (fun ~quick:_ ~jobs:_ ->
            [ Fig14.worker_table ~x:1; Fig14.run ~x:1 (); Fig14.run ~x:3 () ]);
      };
      {
        id = "theorem2";
        description = "closed form vs LP cross-check";
        run = (fun ~quick:_ ~jobs:_ -> [ Ablations.theorem2_check () ]);
      };
      {
        id = "ablation-oneport";
        description = "cost of the one-port constraint vs two-port";
        run = (fun ~quick ~jobs:_ -> [ Ablations.one_port_cost ~quick () ]);
      };
      {
        id = "ablation-permutations";
        description = "FIFO/LIFO vs exhaustive permutation search";
        run = (fun ~quick ~jobs -> [ Ablations.permutation_gap ~quick ~jobs () ]);
      };
      {
        id = "ablation-ordering";
        description = "alternative FIFO sending orders";
        run = (fun ~quick ~jobs:_ -> [ Ablations.ordering ~quick () ]);
      };
      {
        id = "ablation-lifo-regime";
        description = "LIFO vs FIFO across compute/communication balances";
        run = (fun ~quick ~jobs:_ -> [ Ablations.lifo_regime ~quick () ]);
      };
      {
        id = "ablation-affine";
        description = "affine model: latency vs enrollment";
        run = (fun ~quick ~jobs:_ -> [ Ablations.affine_latency ~quick () ]);
      };
      {
        id = "ablation-multiround";
        description = "multi-round throughput, linear vs affine costs";
        run = (fun ~quick ~jobs:_ -> [ Ablations.multiround ~quick () ]);
      };
      {
        id = "ablation-protocol";
        description = "eager-return vs sends-first master policy";
        run = (fun ~quick ~jobs:_ -> [ Ablations.protocol ~quick () ]);
      };
      {
        id = "ablation-sensitivity";
        description = "jitter sensitivity of INC_C vs LIFO plans";
        run = (fun ~quick ~jobs:_ -> [ Ablations.sensitivity ~quick () ]);
      };
      {
        id = "ablation-scaling";
        description = "exact vs float solver scaling with worker count";
        run = (fun ~quick ~jobs:_ -> [ Ablations.scaling ~quick () ]);
      };
    ]

let find id = List.find (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
