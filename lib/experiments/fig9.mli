(** Figure 9: trace visualization of one campaign on a heterogeneous
    platform.

    As in the paper, a 5-worker heterogeneous platform is scheduled with
    the FIFO INC_C heuristic; because of resource selection only three
    of the five workers actually compute.  The report carries the
    per-worker loads and an ASCII Gantt chart of the simulated
    execution (data transfers, computations, result transfers). *)

(** [run ?jobs ()] deterministically searches platform seeds until
    resource selection drops exactly two of the five workers, then
    simulates and renders that campaign.  [jobs] (default 1) probes
    candidate seeds on a domain pool; the lowest matching seed is kept,
    so the report is identical for every [jobs] value.
    @raise Dls.Errors.Error ([Invalid_scenario]) if no seed below the
    search limit produces the wanted selectivity. *)
val run : ?width:int -> ?jobs:int -> unit -> Report.t

(** [find_selective_platform ~workers ~wanted ~n ()] probes platform
    seeds [0..seed_limit] (default 10000) for an [n]-sized matrix
    workload on [workers] machines whose INC_C solution enrolls exactly
    [wanted] of them; returns [(seed, factors, platform, solution)] for
    the lowest matching seed, for any [jobs].
    @raise Dls.Errors.Error ([Invalid_scenario]) when the limit is
    exhausted. *)
val find_selective_platform :
  ?jobs:int ->
  ?seed_limit:int ->
  workers:int ->
  wanted:int ->
  n:int ->
  unit ->
  int * Cluster.Gen.factors * Dls.Platform.t * Dls.Lp_model.solved
