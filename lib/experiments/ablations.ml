module Q = Numeric.Rational

let machine = Cluster.Workload.gdsdmi

let random_platform rng ~workers ~n =
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
  Cluster.Gen.platform machine ~n f

let one_port_cost ?(quick = false) ?(seed = 21) () =
  let reps = if quick then 5 else 30 in
  let sizes = if quick then [ 40; 120; 200 ] else [ 40; 80; 120; 160; 200; 400 ] in
  let rng = Cluster.Prng.create ~seed in
  let rows =
    List.map
      (fun n ->
        let ratios =
          List.init reps (fun _ ->
              let p = random_platform rng ~workers:8 ~n in
              let one = Dls.Fifo.optimal ~model:Dls.Lp_model.One_port p in
              let two = Dls.Fifo.optimal ~model:Dls.Lp_model.Two_port p in
              Q.to_float two.Dls.Lp_model.rho /. Q.to_float one.Dls.Lp_model.rho)
        in
        [
          Report.Int n;
          Report.Float (Stats.mean ratios);
          Report.Float (List.fold_left Float.max 1.0 ratios);
        ])
      sizes
  in
  Report.make ~id:"ablation-oneport"
    ~title:"two-port / one-port optimal FIFO throughput ratio"
    ~columns:[ "n"; "mean ratio"; "max ratio" ]
    ~notes:
      [
        "ratio 1 means the port serialization costs nothing; larger \
         communication shares (small n) widen the gap";
      ]
    rows

let permutation_gap ?(quick = false) ?(seed = 22) ?jobs () =
  let reps = if quick then 4 else 25 in
  let rng = Cluster.Prng.create ~seed in
  let fifo_gaps = ref [] and lifo_gaps = ref [] and fifo_hits = ref 0 in
  for _ = 1 to reps do
    let p = random_platform rng ~workers:4 ~n:120 in
    let best = (Dls.Brute.best_general ?jobs p).Dls.Lp_model.rho in
    let fifo = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
    let lifo = (Dls.Lifo.optimal p).Dls.Lp_model.rho in
    fifo_gaps := (Q.to_float fifo /. Q.to_float best) :: !fifo_gaps;
    lifo_gaps := (Q.to_float lifo /. Q.to_float best) :: !lifo_gaps;
    if Q.equal fifo best then incr fifo_hits
  done;
  Report.make ~id:"ablation-permutations"
    ~title:"FIFO/LIFO vs best permutation pair (brute force, 4 workers)"
    ~columns:[ "discipline"; "mean rho/best"; "min rho/best"; "exactly optimal" ]
    ~notes:
      [
        Printf.sprintf "%d random platforms; the general problem's complexity is open" reps;
      ]
    [
      [
        Report.Str "optimal FIFO";
        Report.Float (Stats.mean !fifo_gaps);
        Report.Float (List.fold_left Float.min 1.0 !fifo_gaps);
        Report.Str (Printf.sprintf "%d/%d" !fifo_hits reps);
      ];
      [
        Report.Str "optimal LIFO";
        Report.Float (Stats.mean !lifo_gaps);
        Report.Float (List.fold_left Float.min 1.0 !lifo_gaps);
        Report.Str "-";
      ];
    ]

let ordering ?(quick = false) ?(seed = 23) () =
  let reps = if quick then 8 else 40 in
  let rng = Cluster.Prng.create ~seed in
  let strategies =
    [
      ("INC_C (Theorem 1)", fun p -> Dls.Fifo.order p);
      ( "INC_W",
        fun p -> Dls.Platform.sorted_indices_by p (fun wk -> wk.Dls.Platform.w) );
      ( "DEC_C",
        fun p ->
          let a = Dls.Fifo.order p in
          Array.init (Array.length a) (fun i -> a.(Array.length a - 1 - i)) );
      ("platform order", fun p -> Array.init (Dls.Platform.size p) Fun.id);
    ]
  in
  let sums = Array.make (List.length strategies) 0.0 in
  for _ = 1 to reps do
    let p = random_platform rng ~workers:8 ~n:120 in
    let best = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
    List.iteri
      (fun i (_, order) ->
        let rho = (Dls.Fifo.solve_order p (order p)).Dls.Lp_model.rho in
        sums.(i) <- sums.(i) +. (Q.to_float rho /. Q.to_float best))
      strategies
  done;
  Report.make ~id:"ablation-ordering"
    ~title:"FIFO sending orders, throughput relative to INC_C"
    ~columns:[ "order"; "mean rho / rho(INC_C)" ]
    ~notes:[ Printf.sprintf "%d random heterogeneous 8-worker platforms" reps ]
    (List.mapi
       (fun i (name, _) ->
         [ Report.Str name; Report.Float (sums.(i) /. float_of_int reps) ])
       strategies)

let lifo_regime ?(quick = false) ?(seed = 25) () =
  let reps = if quick then 6 else 25 in
  let rng = Cluster.Prng.create ~seed in
  (* Scale w relative to c by a factor r; z stays at the workload's 1/2. *)
  let ratios = [ (1, 4); (1, 1); (2, 1); (4, 1); (8, 1); (16, 1); (32, 1) ] in
  let rows =
    List.map
      (fun (rn, rd) ->
        let r = Q.of_ints rn rd in
        let lifo_over_fifo = ref [] and enrolled = ref 0 in
        for _ = 1 to reps do
          let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:11 in
          let specs =
            List.init 11 (fun i ->
                let c = Q.of_ints 10 f.Cluster.Gen.comm.(i) in
                let w = Q.mul r (Q.of_ints 10 f.Cluster.Gen.comp.(i)) in
                (c, w))
          in
          let p = Dls.Platform.with_return_ratio ~z:Q.half specs in
          let fifo = Dls.Fifo.optimal p in
          let lifo = Dls.Lifo.optimal p in
          enrolled := !enrolled + List.length (Dls.Lp_model.enrolled_workers fifo);
          (* makespan ratio = inverse throughput ratio *)
          lifo_over_fifo :=
            Q.to_float fifo.Dls.Lp_model.rho /. Q.to_float lifo.Dls.Lp_model.rho
            :: !lifo_over_fifo
        done;
        [
          Report.Str (Printf.sprintf "%d/%d" rn rd);
          Report.Float (Stats.mean !lifo_over_fifo);
          Report.Float (float_of_int !enrolled /. float_of_int reps);
        ])
      ratios
  in
  Report.make ~id:"ablation-lifo-regime"
    ~title:"LIFO/INC_C makespan ratio vs compute-communication balance"
    ~columns:[ "w/c scale"; "LIFO time / INC_C time"; "FIFO enrolled (of 11)" ]
    ~notes:
      [
        "ratios below 1 mean LIFO wins; the paper's LIFO-dominant regime is \
         compute-bound (right side)";
      ]
    rows

let affine_latency ?(quick = false) ?(seed = 26) () =
  let workers = if quick then 3 else 4 in
  let rng = Cluster.Prng.create ~seed in
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
  let p = Cluster.Gen.platform machine ~n:100 f in
  let latencies = [ 0; 1; 2; 5; 10; 20 ] (* percent of the deadline *) in
  let rows =
    List.map
      (fun pct ->
        let latency = Q.of_ints pct 100 in
        let a = Dls.Affine.of_platform ~send_latency:latency ~return_latency:latency p in
        match Dls.Affine.best_fifo a with
        | Dls.Affine.Too_slow ->
          [ Report.Int pct; Report.Str "infeasible"; Report.Int 0 ]
        | Dls.Affine.Solved s ->
          [
            Report.Int pct;
            Report.Float (Numeric.Rational.to_float s.Dls.Affine.rho);
            Report.Int (Array.length s.Dls.Affine.sigma1);
          ])
      latencies
  in
  Report.make ~id:"ablation-affine"
    ~title:"affine model: message start-up latency vs optimal FIFO schedule"
    ~columns:[ "latency (% of deadline)"; "best rho"; "workers enrolled" ]
    ~notes:
      [
        Printf.sprintf
          "%d-worker heterogeneous platform; subsets and orders searched \
           exhaustively (latencies make enrollment combinatorial)"
          workers;
      ]
    rows

let multiround ?(quick = false) ?(seed = 27) () =
  let max_rounds = if quick then 6 else 8 in
  let rng = Cluster.Prng.create ~seed in
  let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:3 in
  let p = Cluster.Gen.platform machine ~n:100 f in
  let order = Dls.Fifo.order p in
  let base = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
  (* One percent of the deadline per message: small enough that a little
     pipelining still wins, large enough that many rounds lose. *)
  let latency = Q.of_ints 1 100 in
  let linear = Dls.Multiround.sweep_rounds p ~order ~max_rounds () in
  let affine =
    Dls.Multiround.sweep_rounds p ~send_latency:latency ~return_latency:latency
      ~order ~max_rounds ()
  in
  let rows =
    List.map
      (fun (pt : Dls.Multiround.round_point) ->
        let rho_affine =
          List.find_opt
            (fun (a : Dls.Multiround.round_point) ->
              a.Dls.Multiround.rounds = pt.Dls.Multiround.rounds)
            affine
        in
        [
          Report.Int pt.Dls.Multiround.rounds;
          Report.Float
            (Q.to_float pt.Dls.Multiround.throughput /. Q.to_float base);
          (match rho_affine with
          | Some a ->
            Report.Float (Q.to_float a.Dls.Multiround.throughput /. Q.to_float base)
          | None -> Report.Str "infeasible");
        ])
      linear
  in
  Report.make ~id:"ablation-multiround"
    ~title:"multi-round schedules: throughput vs round count"
    ~columns:
      [ "rounds"; "linear model (rho/1-round)"; "affine model (rho/1-round)" ]
    ~notes:
      [
        "linear costs: monotone non-decreasing in R (the degeneracy the paper \
         notes); affine costs: a finite optimal R emerges";
        Printf.sprintf "per-message latency = %s s" (Q.to_string latency);
      ]
    rows

let protocol ?(quick = false) ?(seed = 28) () =
  let reps = if quick then 8 else 40 in
  let rng = Cluster.Prng.create ~seed in
  let rows =
    List.map
      (fun n ->
        let lp_ratios = ref [] and naive_ratios = ref [] in
        for _ = 1 to reps do
          let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:8 in
          let p = Cluster.Gen.platform machine ~n f in
          let sol = Dls.Fifo.optimal p in
          let ratio plan =
            Sim.Star.makespan ~protocol:Sim.Star.Eager_returns p plan
            /. Sim.Star.makespan p plan
          in
          lp_ratios := ratio (Sim.Star.plan_of_rounded sol ~total:1000) :: !lp_ratios;
          (* The naive practitioner's plan: split the campaign evenly
             over all workers, INC_C order. *)
          let order = Dls.Fifo.order p in
          let naive =
            {
              Sim.Star.sigma1 = order;
              sigma2 = Array.copy order;
              loads = Array.make (Dls.Platform.size p) (1000.0 /. 8.0);
            }
          in
          naive_ratios := ratio naive :: !naive_ratios
        done;
        [
          Report.Int n;
          Report.Float (Stats.mean !lp_ratios);
          Report.Float (Stats.mean !naive_ratios);
          Report.Float (List.fold_left Float.min infinity !naive_ratios);
        ])
      [ 40; 120; 400 ]
  in
  Report.make ~id:"ablation-protocol"
    ~title:"eager-return vs sends-first master policy (makespan ratio)"
    ~columns:
      [ "n"; "LP plans: mean eager/lazy"; "equal-split: mean"; "equal-split: min" ]
    ~notes:
      [
        "LP-dimensioned plans keep every worker busy past the send phase, so \
         eager interleaving never fires (ratio 1); on naive equal-split plans \
         it fires but only delays the remaining sends (ratio > 1) — \
         empirical support for the paper's all-sends-first canonical form";
      ]
    rows

let scaling ?(quick = false) ?(seed = 30) () =
  let sizes = if quick then [ 4; 8; 16 ] else [ 4; 8; 16; 24; 32 ] in
  let rng = Cluster.Prng.create ~seed in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let rows =
    List.map
      (fun workers ->
        let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
        let p = Cluster.Gen.platform machine ~n:120 f in
        let scenario = Dls.Scenario.fifo_exn p (Dls.Fifo.order p) in
        let t_exact, sol = time (fun () -> Dls.Solve.solve_exn ~mode:`Exact scenario) in
        let t_float, estimate = time (fun () -> Dls.Lp_model.estimate_rho scenario) in
        let exact = Q.to_float sol.Dls.Lp_model.rho in
        let err =
          match estimate with
          | Some est -> Float.abs (est -. exact) /. exact
          | None -> Float.nan
        in
        [
          Report.Int workers;
          Report.Float (1000.0 *. t_exact);
          Report.Float (1000.0 *. t_float);
          Report.Float err;
          Report.Int sol.Dls.Lp_model.pivots;
        ])
      sizes
  in
  Report.make ~id:"ablation-scaling"
    ~title:"solver scaling with the worker count (FIFO scheduling LP)"
    ~columns:
      [ "workers"; "exact (ms)"; "float (ms)"; "relative error"; "pivots" ]
    ~notes:
      [
        "the exact rational solver is the source of truth; the float path \
         serves large sweeps where 1e-9 accuracy suffices";
      ]
    rows

let sensitivity ?(quick = false) ?(seed = 29) () =
  let reps = if quick then 8 else 40 in
  let n = 120 and total = 1000 in
  let rng = Cluster.Prng.create ~seed in
  let factor_sets =
    List.init reps (fun _ ->
        Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers:11)
  in
  let rows =
    List.map
      (fun jitter_pct ->
        let jitter = float_of_int jitter_pct /. 100.0 in
        let params =
          {
            Cluster.Noise.none with
            Cluster.Noise.comm_jitter = jitter;
            comp_jitter = jitter;
          }
        in
        let degradation heuristic =
          Stats.mean
            (List.map
               (fun factors ->
                 let m =
                   Campaign.measure ~noise_params:params
                     ~rng:(Cluster.Prng.split rng) ~machine ~n ~total factors
                     heuristic
                 in
                 m.Campaign.real_time /. m.Campaign.lp_time)
               factor_sets)
        in
        [
          Report.Int jitter_pct;
          Report.Float (degradation Dls.Heuristics.Inc_c);
          Report.Float (degradation Dls.Heuristics.Lifo);
        ])
      [ 0; 2; 5; 10; 20 ]
  in
  Report.make ~id:"ablation-sensitivity"
    ~title:"perturbation sensitivity: real/lp degradation vs jitter"
    ~columns:[ "jitter (%)"; "INC_C real/lp"; "LIFO real/lp" ]
    ~notes:
      [
        "the paper attributes LIFO's Fig. 13a behaviour to sensitivity to \
         performance variations; compare how fast each column grows";
      ]
    rows

let theorem2_check ?(seed = 24) () =
  let rng = Cluster.Prng.create ~seed in
  let rows =
    List.init 6 (fun k ->
        let workers = 2 + k in
        let f = Cluster.Gen.factors rng Cluster.Gen.Hom_comm_het_comp ~workers in
        let p = Cluster.Gen.platform machine ~n:100 f in
        let lp = (Dls.Fifo.optimal p).Dls.Lp_model.rho in
        let formula = Dls.Closed_form.fifo_throughput_of_platform p in
        [
          Report.Int workers;
          Report.Float (Q.to_float formula);
          Report.Float (Q.to_float lp);
          Report.Str (if Q.equal formula lp then "exact" else "MISMATCH");
        ])
  in
  Report.make ~id:"theorem2-check"
    ~title:"Theorem 2 closed form vs LP optimum (bus platforms)"
    ~columns:[ "workers"; "closed form"; "LP"; "agreement" ]
    rows
