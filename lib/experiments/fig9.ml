module Q = Numeric.Rational

let default_seed_limit = 10_000

let no_selective_platform seed_limit =
  raise
    (Dls.Errors.Error
       (Dls.Errors.Invalid_scenario
          (Printf.sprintf
             "Fig9: no selective platform found within %d seeds" seed_limit)))

let find_selective_platform ?(jobs = 1) ?(seed_limit = default_seed_limit)
    ~workers ~wanted ~n () =
  let machine = Cluster.Workload.gdsdmi in
  (* Pure in [seed]: each candidate builds its platform from a fresh
     PRNG, so seeds can be probed in any order or in parallel. *)
  let eval seed =
    let rng = Cluster.Prng.create ~seed in
    let f = Cluster.Gen.factors rng Cluster.Gen.Heterogeneous ~workers in
    let p = Cluster.Gen.platform machine ~n f in
    let sol = Dls.Heuristics.solve Dls.Heuristics.Inc_c p in
    if List.length (Dls.Lp_model.enrolled_workers sol) = wanted then
      Some (seed, f, p, sol)
    else None
  in
  let first_match results =
    let rec scan i =
      if i >= Array.length results then None
      else match results.(i) with Some _ as r -> r | None -> scan (i + 1)
    in
    scan 0
  in
  if jobs <= 1 then begin
    let rec search seed =
      if seed > seed_limit then no_selective_platform seed_limit
      else match eval seed with Some r -> r | None -> search (seed + 1)
    in
    search 0
  end
  else
    Parallel.Pool.with_pool ~jobs (fun pool ->
        (* Probe seeds block by block and keep the lowest match, so the
           chosen platform is the sequential one regardless of [jobs]. *)
        let block = 16 * jobs in
        let rec scan lo =
          if lo > seed_limit then no_selective_platform seed_limit
          else begin
            let size = min block (seed_limit - lo + 1) in
            let seeds = Array.init size (fun i -> lo + i) in
            match first_match (Parallel.Pool.map pool eval seeds) with
            | Some r -> r
            | None -> scan (lo + size)
          end
        in
        scan 0)

let run ?(width = 72) ?jobs () =
  let n = 300 and total = 200 and workers = 5 in
  let seed, f, platform, sol = find_selective_platform ?jobs ~workers ~wanted:3 ~n () in
  let rng = Cluster.Prng.create ~seed:(seed + 77) in
  let plan = Sim.Star.plan_of_rounded sol ~total in
  let noise = Cluster.Noise.make rng ~n in
  let trace = Sim.Star.execute ~noise platform plan in
  let rows =
    List.init workers (fun i ->
        [
          Report.Str (Dls.Platform.get platform i).Dls.Platform.name;
          Report.Int f.Cluster.Gen.comm.(i);
          Report.Int f.Cluster.Gen.comp.(i);
          Report.Float (Q.to_float sol.Dls.Lp_model.alpha.(i));
          Report.Int (int_of_float plan.Sim.Star.loads.(i));
        ])
  in
  let gantt =
    Sim.Gantt.render ~width
      ~names:(fun i -> (Dls.Platform.get platform i).Dls.Platform.name)
      trace
  in
  let notes =
    Printf.sprintf "platform seed %d, matrix size %d, %d items, makespan %.3f s"
      seed n total trace.Sim.Trace.makespan
    :: Printf.sprintf "one-port violations: %d; trace valid: %b"
         (List.length (Sim.Trace.one_port_violations trace))
         (Sim.Trace.is_valid trace)
    :: String.split_on_char '\n' gantt
  in
  Report.make ~id:"fig9" ~title:"execution trace, heterogeneous platform (INC_C)"
    ~columns:[ "worker"; "comm x"; "comp x"; "alpha"; "items" ]
    ~notes rows
