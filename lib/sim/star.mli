(** Discrete-event execution of a master/worker campaign on a star
    platform under the one-port model.

    The simulated master runs the same eager protocol as the paper's
    MPI program: it posts the initial messages back-to-back in [sigma1]
    order, then receives the result messages in [sigma2] order, each
    reception starting as soon as both the master is free and the worker
    has finished computing.  Per-event noise hooks model the gap between
    the linear cost model and a real cluster. *)

type noise = {
  comm : worker:int -> float -> float;
      (** maps a nominal transfer duration to an observed one *)
  comp : worker:int -> float -> float;  (** same, for computations *)
}

(** [no_noise] is the identity: the simulation reproduces the linear
    model exactly. *)
val no_noise : noise

(** Master decision policy.

    - [Sends_first]: post every initial message, then receive results in
      [sigma2] order — the paper's canonical structure and what its MPI
      program did;
    - [Eager_returns]: whenever the master is free and the next worker
      in [sigma2] has finished computing, receive its results before the
      remaining sends.  Still one-port and still order-respecting, but a
      different (sometimes better, sometimes worse) interleaving — an
      execution-policy ablation the model fixes by assumption. *)
type protocol = Sends_first | Eager_returns

type plan = {
  sigma1 : int array;  (** sending order (worker indices) *)
  sigma2 : int array;  (** return order *)
  loads : float array;  (** per-worker load, indexed like the platform *)
}

(** [plan_of_solved s] uses the exact rational loads (converted to
    float). *)
val plan_of_solved : Dls.Lp_model.solved -> plan

(** [plan_of_rounded s ~total] uses the paper's integer rounding for a
    campaign of [total] items. *)
val plan_of_rounded : Dls.Lp_model.solved -> total:int -> plan

(** [check_plan platform plan] validates a plan without running it —
    the checks behind {!execute_result}. *)
val check_plan : Dls.Platform.t -> plan -> (unit, Dls.Errors.t) result

(** [execute_result ?noise ?protocol platform plan] runs the campaign
    and returns the trace (default protocol: [Sends_first]).  Workers
    with zero load produce no events.

    Malformed plans — load array size mismatch, negative/NaN/infinite
    loads, out-of-range or duplicated order entries, a loaded worker
    missing from one of the orders (whose results would silently never
    come back) — yield a typed [Error] instead of a wedged or lying
    simulation. *)
val execute_result :
  ?noise:noise ->
  ?protocol:protocol ->
  Dls.Platform.t ->
  plan ->
  (Trace.t, Dls.Errors.t) result

(** [execute ?noise ?protocol platform plan] is {!execute_result}.
    @raise Dls.Errors.Error on a malformed plan. *)
val execute : ?noise:noise -> ?protocol:protocol -> Dls.Platform.t -> plan -> Trace.t

(** [makespan ?noise ?protocol platform plan] is the trace's makespan. *)
val makespan : ?noise:noise -> ?protocol:protocol -> Dls.Platform.t -> plan -> float

(** {1 Chunked (multi-round) campaigns} *)

type chunked_plan = {
  chunk_sends : (int * float) list;
      (** (worker, load) in the master's sending order *)
  chunk_returns : (int * float) list;
      (** (worker, load) in return order; the j-th return of a worker
          carries its j-th received chunk's results *)
}

(** [plan_of_multiround s] extracts the chunk structure of a multi-round
    LP solution (zero-size chunks are dropped).
    @raise Invalid_argument when the solution uses latencies — the
    simulator implements the linear cost model. *)
val plan_of_multiround : Dls.Multiround.solved -> chunked_plan

(** [execute_chunked ?noise platform plan] runs a multi-round campaign:
    sends back-to-back in order, per-worker in-order chunk processing,
    then the one-port return chain.  Used to cross-validate
    {!Dls.Multiround} — without noise the makespan equals the LP
    horizon. *)
val execute_chunked : ?noise:noise -> Dls.Platform.t -> chunked_plan -> Trace.t

(** {1 Multi-load batches} *)

(** One master-port operation of a multi-load batch, in port order. *)
type multi_op = {
  op_load : int;  (** workload load index *)
  op_worker : int;  (** platform worker index *)
  op_kind : kind;
  op_amount : float;  (** chunk size, load units *)
  op_release : float;  (** sends may not start earlier; [0.] for returns *)
  op_comm : float;  (** nominal transfer duration *)
  op_comp : float;  (** nominal compute duration; [0.] for returns *)
}

and kind = Op_send | Op_return

type multi_plan = { ops : multi_op list  (** in the port's activity order *) }

(** [plan_of_batch b] linearizes a batch LP solution into its port
    operation sequence (zero-size chunks are dropped; the LP's event
    dates induce the order). *)
val plan_of_batch : Dls.Steady_state.batch -> multi_plan

(** [execute_multi ?noise platform plan] replays the batch eagerly:
    each port operation starts as soon as the master is free, the data
    is released, and (for returns) the chunk's computation — which a
    worker runs in arrival order — has ended.  Without noise the
    resulting makespan equals the batch LP's: the eager schedule is the
    componentwise-earliest one compatible with the port order, and the
    LP already minimizes over that set. *)
val execute_multi : ?noise:noise -> Dls.Platform.t -> multi_plan -> Trace.t
