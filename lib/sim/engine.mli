(** Minimal discrete-event simulation engine.

    Callbacks are scheduled at absolute or relative simulated times and
    executed in time order (ties broken by scheduling order).  The clock
    only moves forward. *)

type t

val create : unit -> t

(** [now e] is the current simulated time. *)
val now : t -> float

(** [schedule_at e ~time f] runs [f e] when the clock reaches [time].
    @raise Invalid_argument if [time] is in the past. *)
val schedule_at : t -> time:float -> (t -> unit) -> unit

(** [schedule e ~delay f] runs [f e] after [delay >= 0] time units. *)
val schedule : t -> delay:float -> (t -> unit) -> unit

(** [run e] processes events until none remain; returns the final
    clock. *)
val run : t -> float

(** [run_until e ~horizon] processes events up to and including
    [horizon], leaves later ones queued, and advances the clock to (at
    least) [horizon].  Lets a driver cut a simulation at a detection
    date and inspect the partial state. *)
val run_until : t -> horizon:float -> float

(** [pending e] counts events still queued. *)
val pending : t -> int

(** [events_processed e] counts callbacks executed so far. *)
val events_processed : t -> int
