module Q = Numeric.Rational
module F = Dls.Faults

(* Durations under faults depend on the absolute start date, so instead
   of [load * cost] the simulator asks the exact integrator
   ({!Dls.Faults.finish_time}) at dispatch time, with the float clock
   lifted to an exact rational ([Q.of_float] is exact).  This keeps the
   discrete-event executor and {!Dls.Replan}'s rational replay
   bit-consistent on the same inputs. *)

let plan_of_schedule (sched : Dls.Schedule.t) =
  let n = Dls.Platform.size sched.Dls.Schedule.platform in
  let loads = Array.make n 0.0 in
  Array.iter
    (fun e ->
      loads.(e.Dls.Schedule.worker) <-
        loads.(e.Dls.Schedule.worker) +. Q.to_float e.Dls.Schedule.alpha)
    sched.Dls.Schedule.entries;
  let sigma1 = Array.map (fun e -> e.Dls.Schedule.worker) sched.Dls.Schedule.entries in
  let by_return = Array.copy sched.Dls.Schedule.entries in
  Array.stable_sort
    (fun a b ->
      Q.compare a.Dls.Schedule.return_.Dls.Schedule.start
        b.Dls.Schedule.return_.Dls.Schedule.start)
    by_return;
  {
    Star.sigma1;
    sigma2 = Array.map (fun e -> e.Dls.Schedule.worker) by_return;
    loads;
  }

let execute_seq ?(start = 0.0) platform faults (plan : Star.plan) =
  match Star.check_plan platform plan with
  | Error e -> Error e
  | Ok () ->
    let finish activity ~start:t ~load =
      if load <= 0.0 then Some t
      else
        Option.map Q.to_float
          (F.finish_time platform faults activity ~start:(Q.of_float t)
             ~load:(Q.of_float load))
    in
    let active order =
      Array.of_list
        (List.filter (fun i -> plan.Star.loads.(i) > 0.0) (Array.to_list order))
    in
    let sends = active plan.Star.sigma1 and returns = active plan.Star.sigma2 in
    let eng = Engine.create () in
    let events = ref [] in
    let record worker kind start finish load =
      events := { Trace.worker; kind; start; finish; load } :: !events
    in
    let n = Dls.Platform.size platform in
    let compute_done = Array.make n false in
    let lost = Array.make n false in
    let master_busy = ref false in
    let send_idx = ref 0 in
    let ret_idx = ref 0 in
    let rec master_step eng =
      if not !master_busy then begin
        while !ret_idx < Array.length returns && lost.(returns.(!ret_idx)) do
          incr ret_idx
        done;
        let sends_left = !send_idx < Array.length sends in
        let return_ready =
          !ret_idx < Array.length returns && compute_done.(returns.(!ret_idx))
        in
        if return_ready && not sends_left then begin
          let i = returns.(!ret_idx) in
          let load = plan.Star.loads.(i) in
          let now = Engine.now eng in
          match finish (F.Return_from i) ~start:now ~load with
          | None ->
            (* The transfer would never complete (crash): the master
               detects the failure and moves on without seizing the
               port. *)
            incr ret_idx;
            lost.(i) <- true;
            master_step eng
          | Some f ->
            incr ret_idx;
            record i Trace.Return now f load;
            master_busy := true;
            Engine.schedule_at eng ~time:f (fun eng ->
                master_busy := false;
                master_step eng)
        end
        else if sends_left then begin
          let i = sends.(!send_idx) in
          incr send_idx;
          let load = plan.Star.loads.(i) in
          let now = Engine.now eng in
          match finish (F.Send_to i) ~start:now ~load with
          | None ->
            (* Unreachable with the current fault kinds (stalls are
               finite and crashed workers still absorb data), kept for
               totality. *)
            lost.(i) <- true;
            master_step eng
          | Some sf ->
            record i Trace.Send now sf load;
            master_busy := true;
            Engine.schedule_at eng ~time:sf (fun eng ->
                master_busy := false;
                (match finish (F.Compute_on i) ~start:sf ~load with
                | None -> lost.(i) <- true
                | Some cf ->
                  record i Trace.Compute sf cf load;
                  Engine.schedule_at eng ~time:cf (fun eng ->
                      compute_done.(i) <- true;
                      master_step eng));
                master_step eng)
        end
      end
    in
    Engine.schedule_at eng ~time:start (fun eng -> master_step eng);
    let _ = Engine.run eng in
    Ok (Trace.make !events)

let execute platform faults plan = execute_seq ~start:0.0 platform faults plan

let execute_decision platform faults ~original ~decision =
  match decision with
  | Dls.Replan.Keep_original -> execute platform faults (plan_of_schedule original)
  | Dls.Replan.Recover r -> (
    let at = Q.to_float r.Dls.Replan.at in
    match execute platform Dls.Faults.empty (plan_of_schedule original) with
    | Error e -> Error e
    | Ok fault_free -> (
      let prefix =
        List.filter
          (fun e -> e.Trace.finish <= at)
          fault_free.Trace.events
      in
      match
        execute_seq ~start:at platform faults
          (plan_of_schedule r.Dls.Replan.schedule)
      with
      | Error e -> Error e
      | Ok recovery -> Ok (Trace.make (prefix @ recovery.Trace.events))))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

type metrics = {
  deadline : float;
  total : float;
  achieved : float;
  achieved_ratio : float;
  throughput : float;
  slack : float;
  lateness : (int * float option) list;
}

let metrics ~deadline ~total (trace : Trace.t) =
  let returned = Hashtbl.create 8 in
  let touched = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Hashtbl.replace touched e.Trace.worker ();
      if e.Trace.kind = Trace.Return then
        let prev = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt returned e.Trace.worker) in
        Hashtbl.replace returned e.Trace.worker
          (fst prev +. e.Trace.load, Float.max (snd prev) e.Trace.finish))
    trace.Trace.events;
  let achieved =
    Hashtbl.fold
      (fun _ (load, finish) acc -> if finish <= deadline then acc +. load else acc)
      returned 0.0
  in
  let last_return =
    Hashtbl.fold (fun _ (_, finish) acc -> Float.max acc finish) returned 0.0
  in
  let lateness =
    Hashtbl.fold
      (fun w () acc ->
        match Hashtbl.find_opt returned w with
        | None -> (w, None) :: acc
        | Some (_, finish) -> (w, Some (Float.max 0.0 (finish -. deadline))) :: acc)
      touched []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    deadline;
    total;
    achieved;
    achieved_ratio = (if total > 0.0 then achieved /. total else 0.0);
    throughput = (if deadline > 0.0 then achieved /. deadline else 0.0);
    slack = deadline -. last_return;
    lateness;
  }

let pp_metrics fmt m =
  Format.fprintf fmt
    "@[<v>achieved %.6g / %.6g load by deadline %.6g (%.1f%%), throughput \
     %.6g, slack %.6g@,"
    m.achieved m.total m.deadline (100.0 *. m.achieved_ratio) m.throughput
    m.slack;
  List.iter
    (fun (w, l) ->
      match l with
      | None -> Format.fprintf fmt "  worker %d: results lost@," w
      | Some l when l > 0.0 -> Format.fprintf fmt "  worker %d: late by %.6g@," w l
      | Some _ -> ())
    m.lateness;
  Format.fprintf fmt "@]"
