type t = {
  queue : (t -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0.0; processed = 0 }
let now e = e.clock

let schedule_at e ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < e.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before current time %g" time
         e.clock);
  Heap.add e.queue ~priority:time f

let schedule e ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at e ~time:(e.clock +. delay) f

let rec run e =
  match Heap.pop e.queue with
  | None -> e.clock
  | Some (time, f) ->
    e.clock <- time;
    e.processed <- e.processed + 1;
    f e;
    run e

let rec run_until e ~horizon =
  match Heap.peek e.queue with
  | Some (time, _) when time <= horizon -> (
    match Heap.pop e.queue with
    | None -> e.clock
    | Some (time, f) ->
      e.clock <- time;
      e.processed <- e.processed + 1;
      f e;
      run_until e ~horizon)
  | Some _ | None ->
    e.clock <- Float.max e.clock horizon;
    e.clock

let pending e = Heap.size e.queue

let events_processed e = e.processed
