(** Execution traces: the timestamped record of what every processor did
    during a (simulated) run, with the same structure as the paper's
    Figure 9 visualization. *)

type kind = Send | Compute | Return

type event = {
  worker : int;  (** platform worker index *)
  kind : kind;
  start : float;
  finish : float;
  load : float;  (** load units moved or processed *)
}

type t = private { events : event list; makespan : float }

(** [make events] sorts the events by start date and computes the
    makespan. *)
val make : event list -> t

(** [of_schedule sched] converts an exact schedule into a float trace
    (e.g. to render it). *)
val of_schedule : Dls.Schedule.t -> t

val workers : t -> int list

(** [events_of t i] lists worker [i]'s events in time order. *)
val events_of : t -> int -> event list

(** Two master transfers claiming the port at once, in time order. *)
type clash = { first : event; second : event }

(** [one_port_violations ?eps t] lists pairs of master transfers
    (sends/returns) overlapping by more than [eps].

    The default [eps = 0] is exact, with explicit boundary semantics:
    {e touching} intervals (one finishing exactly when the next starts)
    are NOT overlapping; only a strict crossing is a violation.  Traces
    derived from rational schedules or from the noise-free simulator
    need no tolerance — pass a positive [eps] only for measured (noisy)
    float traces. *)
val one_port_violations : ?eps:float -> t -> clash list

(** [precedence_violations ?eps t] checks that each worker receives,
    computes, then returns, in that order without overlap.  Workers may
    carry several send/compute/return triples (multi-round and
    multi-load traces): the [j]-th send is matched with the [j]-th
    compute and the [j]-th return in time order, so every chunk must be
    received before it is processed and processed before its results
    leave.  Boundary semantics as in {!one_port_violations}:
    back-to-back phases are valid, [eps] (default [0], exact) only
    forgives noisy input. *)
val precedence_violations : ?eps:float -> t -> string list

(** [is_valid ?eps t] holds when no violations of either kind exist. *)
val is_valid : ?eps:float -> t -> bool

(** [validate_schedule sched] checks the {e rational} schedule with the
    exact validator ({!Check.Validator}) — no floats, no epsilons.
    Prefer this over [is_valid (of_schedule sched)] whenever the exact
    data is available: the float shadow can only lose information. *)
val validate_schedule : Dls.Schedule.t -> (unit, string list) result

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
