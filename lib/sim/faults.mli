(** Discrete-event execution under an injected fault plan.

    Same master protocol as {!Star} ([Sends_first]), but every duration
    is integrated through the fault plan's piecewise rate profile via
    {!Dls.Faults.finish_time} (the float clock is lifted exactly into
    rationals), so this float executor and {!Dls.Replan}'s exact replay
    agree on the same inputs.  Workers whose computation or result
    message would never complete (crashes) are detected and skipped; the
    master's port is never wedged. *)

(** [plan_of_schedule sched] extracts orders and per-worker float loads
    from an explicit schedule. *)
val plan_of_schedule : Dls.Schedule.t -> Star.plan

(** [execute platform faults plan] runs the campaign from time [0] under
    the fault plan.  Malformed plans error as in
    {!Star.execute_result}. *)
val execute :
  Dls.Platform.t -> Dls.Faults.plan -> Star.plan -> (Trace.t, Dls.Errors.t) result

(** [execute_seq ~start platform faults plan] dispatches from [start]
    instead of [0] — used to splice recovery schedules. *)
val execute_seq :
  ?start:float ->
  Dls.Platform.t ->
  Dls.Faults.plan ->
  Star.plan ->
  (Trace.t, Dls.Errors.t) result

(** [execute_decision platform faults ~original ~decision] materialises
    a re-planning decision as a single trace: the fault-free prefix of
    [original] up to the splice point, then the recovery schedule
    executed under the faults ([Keep_original] just runs [original]
    under the faults in full). *)
val execute_decision :
  Dls.Platform.t ->
  Dls.Faults.plan ->
  original:Dls.Schedule.t ->
  decision:Dls.Replan.decision ->
  (Trace.t, Dls.Errors.t) result

(** Aggregates of a perturbed trace against a deadline. *)
type metrics = {
  deadline : float;
  total : float;  (** load the campaign enrolled *)
  achieved : float;  (** load fully returned by [deadline] *)
  achieved_ratio : float;  (** [achieved / total] *)
  throughput : float;  (** [achieved / deadline] *)
  slack : float;  (** [deadline - last return] (negative: late) *)
  lateness : (int * float option) list;
      (** per active worker: [Some l] = late by [l >= 0], [None] = its
          results never came back *)
}

val metrics : deadline:float -> total:float -> Trace.t -> metrics
val pp_metrics : Format.formatter -> metrics -> unit
