type kind = Send | Compute | Return

type event = {
  worker : int;
  kind : kind;
  start : float;
  finish : float;
  load : float;
}

type t = { events : event list; makespan : float }

let kind_to_string = function
  | Send -> "send"
  | Compute -> "compute"
  | Return -> "return"

let make events =
  let events =
    List.sort
      (fun a b ->
        let c = Float.compare a.start b.start in
        if c <> 0 then c else Float.compare a.finish b.finish)
      events
  in
  let makespan = List.fold_left (fun acc e -> Float.max acc e.finish) 0.0 events in
  { events; makespan }

let of_schedule (sched : Dls.Schedule.t) =
  let open Dls.Schedule in
  let f = Numeric.Rational.to_float in
  make
    (List.concat_map
       (fun e ->
         let load = f e.alpha in
         [
           { worker = e.worker; kind = Send; start = f e.send.start; finish = f e.send.finish; load };
           {
             worker = e.worker;
             kind = Compute;
             start = f e.compute.start;
             finish = f e.compute.finish;
             load;
           };
           {
             worker = e.worker;
             kind = Return;
             start = f e.return_.start;
             finish = f e.return_.finish;
             load;
           };
         ])
       (Array.to_list sched.entries))

let workers t =
  List.sort_uniq Stdlib.compare (List.map (fun e -> e.worker) t.events)

let events_of t i = List.filter (fun e -> e.worker = i) t.events

(* Boundary semantics are exact by default ([eps = 0]): two intervals
   overlap only when each one STRICTLY crosses into the other, so
   touching intervals — one finishing exactly when the next starts, the
   normal case in a packed one-port schedule — are NOT overlapping.
   Float comparisons are exact, so no tolerance is needed for traces
   derived from rational schedules or from the noise-free simulator; a
   positive [eps] additionally forgives overlaps up to [eps] and is only
   meant for measured (noisy) float traces. *)
type clash = { first : event; second : event }

let one_port_violations ?(eps = 0.) t =
  let transfers = List.filter (fun e -> e.kind <> Compute) t.events in
  let overlap a b = a.start < b.finish -. eps && b.start < a.finish -. eps in
  let rec scan acc = function
    | [] -> List.rev acc
    | e :: rest ->
      let acc =
        List.fold_left
          (fun acc e' ->
            if overlap e e' then { first = e; second = e' } :: acc else acc)
          acc rest
      in
      scan acc rest
  in
  scan [] transfers

(* Workers may carry several triples (multi-round chunks, multi-load
   batches); the j-th send feeds the j-th compute, whose results leave
   with the j-th return, all in time order. *)
let precedence_violations ?(eps = 0.) t =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun i ->
      let evs = events_of t i in
      let all k = List.filter (fun e -> e.kind = k) evs in
      let sends = all Send and computes = all Compute and returns = all Return in
      if sends = [] || List.length computes <> List.length sends then
        add "worker %d has an incomplete event set" i
      else if List.length returns > List.length sends then
        add "worker %d returns more chunks than it received" i
      else begin
        List.iteri
          (fun j (s : event) ->
            let c = List.nth computes j in
            if s.finish > c.start +. eps then
              add "worker %d computes chunk %d before reception ends" i (j + 1))
          sends;
        List.iteri
          (fun j (r : event) ->
            let c = List.nth computes j in
            if c.finish > r.start +. eps then
              add "worker %d returns chunk %d before computation ends" i (j + 1))
          returns
      end)
    (workers t);
  List.rev !errs

let is_valid ?eps t =
  one_port_violations ?eps t = [] && precedence_violations ?eps t = []

(* When the rational data is still around, don't check its float shadow:
   validate the schedule itself, exactly. *)
let validate_schedule sched =
  Check.Validator.errors_of_result sched.Dls.Schedule.platform
    (Check.Validator.validate sched)

let pp fmt t =
  Format.fprintf fmt "@[<v>makespan = %.6g@," t.makespan;
  List.iter
    (fun e ->
      Format.fprintf fmt "  t=%-10.4g %-8s worker %d (%.4g -> %.4g, load %.4g)@,"
        e.start (kind_to_string e.kind) e.worker e.start e.finish e.load)
    t.events;
  Format.fprintf fmt "@]"
