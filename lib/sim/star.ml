type noise = {
  comm : worker:int -> float -> float;
  comp : worker:int -> float -> float;
}

let no_noise = { comm = (fun ~worker:_ x -> x); comp = (fun ~worker:_ x -> x) }

type protocol = Sends_first | Eager_returns

type plan = { sigma1 : int array; sigma2 : int array; loads : float array }

let plan_of_solved (sol : Dls.Lp_model.solved) =
  let s = sol.Dls.Lp_model.scenario in
  {
    sigma1 = Array.copy s.Dls.Scenario.sigma1;
    sigma2 = Array.copy s.Dls.Scenario.sigma2;
    loads = Array.map Numeric.Rational.to_float sol.Dls.Lp_model.alpha;
  }

let plan_of_rounded (sol : Dls.Lp_model.solved) ~total =
  let s = sol.Dls.Lp_model.scenario in
  {
    sigma1 = Array.copy s.Dls.Scenario.sigma1;
    sigma2 = Array.copy s.Dls.Scenario.sigma2;
    loads = Array.map float_of_int (Dls.Rounding.integer_loads sol ~total);
  }

(* A malformed plan used to wedge the simulator silently: a worker
   enrolled in [sigma2] but never sent data waits forever, so its return
   simply vanishes from the trace and the makespan lies.  NaN loads
   poison the event clock.  Validate up front and fail with a typed
   error instead. *)
let check_plan platform plan =
  let n = Dls.Platform.size platform in
  let ( let* ) = Result.bind in
  let* () =
    if Array.length plan.loads = n then Ok ()
    else
      Dls.Errors.invalid "plan carries %d loads for a %d-worker platform"
        (Array.length plan.loads) n
  in
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i l ->
        if !bad = None && (Float.is_nan l || l = Float.infinity || l < 0.0) then
          bad := Some (i, l))
      plan.loads;
    match !bad with
    | Some (i, l) ->
      Dls.Errors.invalid "worker %d has invalid load %g (negative, NaN or infinite)" i l
    | None -> Ok ()
  in
  let check_order name order =
    let seen = Array.make n false in
    let bad = ref (Ok ()) in
    Array.iter
      (fun i ->
        match !bad with
        | Error _ -> ()
        | Ok () ->
          if i < 0 || i >= n then
            bad := Dls.Errors.invalid "%s refers to worker %d, platform has %d workers" name i n
          else if seen.(i) then
            bad := Dls.Errors.invalid "%s enrolls worker %d twice" name i
          else seen.(i) <- true)
      order;
    !bad
  in
  let* () = check_order "sigma1" plan.sigma1 in
  let* () = check_order "sigma2" plan.sigma2 in
  let member order i = Array.exists (fun j -> j = i) order in
  let missing =
    List.filter
      (fun i ->
        plan.loads.(i) > 0.0
        && (not (member plan.sigma1 i) || not (member plan.sigma2 i)))
      (List.init n Fun.id)
  in
  match missing with
  | i :: _ ->
    Dls.Errors.invalid
      "worker %d has load %g but is not enrolled in both orders (its results \
       would never come back)"
      i plan.loads.(i)
  | [] -> Ok ()

(* The master is a single resource running one decision procedure: when
   idle, it performs the next return of [sigma2] if that worker is ready
   (immediately under [Eager_returns]; only once all sends are posted
   under [Sends_first], which is what the paper's MPI program did), else
   the next send of [sigma1], else it waits for a computation to end. *)
let execute_unchecked ?(noise = no_noise) ?(protocol = Sends_first) platform plan =
  let qf = Numeric.Rational.to_float in
  let cost i =
    let wk = Dls.Platform.get platform i in
    (qf wk.Dls.Platform.c, qf wk.Dls.Platform.w, qf wk.Dls.Platform.d)
  in
  let active order =
    Array.of_list
      (List.filter (fun i -> plan.loads.(i) > 0.0) (Array.to_list order))
  in
  let sends = active plan.sigma1 and returns = active plan.sigma2 in
  let eng = Engine.create () in
  let events = ref [] in
  let record worker kind start finish load =
    events := { Trace.worker; kind; start; finish; load } :: !events
  in
  let compute_done = Array.make (Dls.Platform.size platform) false in
  let master_busy = ref false in
  let send_idx = ref 0 in
  let ret_idx = ref 0 in
  let rec master_step eng =
    if not !master_busy then begin
      let sends_left = !send_idx < Array.length sends in
      let return_ready =
        !ret_idx < Array.length returns && compute_done.(returns.(!ret_idx))
      in
      let do_return =
        return_ready && ((protocol = Eager_returns) || not sends_left)
      in
      if do_return then begin
        let i = returns.(!ret_idx) in
        incr ret_idx;
        let _, _, d = cost i in
        let load = plan.loads.(i) in
        let dur = noise.comm ~worker:i (load *. d) in
        let start = Engine.now eng in
        record i Trace.Return start (start +. dur) load;
        master_busy := true;
        Engine.schedule eng ~delay:dur (fun eng ->
            master_busy := false;
            master_step eng)
      end
      else if sends_left then begin
        let i = sends.(!send_idx) in
        incr send_idx;
        let c, w, _ = cost i in
        let load = plan.loads.(i) in
        let dur = noise.comm ~worker:i (load *. c) in
        let start = Engine.now eng in
        record i Trace.Send start (start +. dur) load;
        master_busy := true;
        Engine.schedule eng ~delay:dur (fun eng ->
            master_busy := false;
            let wdur = noise.comp ~worker:i (load *. w) in
            let wstart = Engine.now eng in
            record i Trace.Compute wstart (wstart +. wdur) load;
            Engine.schedule eng ~delay:wdur (fun eng ->
                compute_done.(i) <- true;
                master_step eng);
            master_step eng)
      end
      (* else: idle until some computation completes *)
    end
  in
  master_step eng;
  let _ = Engine.run eng in
  Trace.make !events

let execute_result ?noise ?protocol platform plan =
  match check_plan platform plan with
  | Error e -> Error e
  | Ok () -> Ok (execute_unchecked ?noise ?protocol platform plan)

let execute ?noise ?protocol platform plan =
  match execute_result ?noise ?protocol platform plan with
  | Ok trace -> trace
  | Error e -> raise (Dls.Errors.Error e)

let makespan ?noise ?protocol platform plan =
  (execute ?noise ?protocol platform plan).Trace.makespan

(* ------------------------------------------------------------------ *)
(* Chunked (multi-round) campaigns                                     *)
(* ------------------------------------------------------------------ *)

type chunked_plan = {
  chunk_sends : (int * float) list;
  chunk_returns : (int * float) list;
}

let plan_of_multiround (s : Dls.Multiround.solved) =
  let cfg = s.Dls.Multiround.config in
  if
    not
      (Numeric.Rational.is_zero cfg.Dls.Multiround.send_latency
      && Numeric.Rational.is_zero cfg.Dls.Multiround.return_latency)
  then
    invalid_arg
      "Star.plan_of_multiround: the simulator implements the linear model \
       (zero latencies)";
  let order = cfg.Dls.Multiround.order in
  let chunks_in_order =
    List.concat_map
      (fun per_round ->
        List.mapi
          (fun k a -> (order.(k), Numeric.Rational.to_float a))
          (Array.to_list per_round))
      (Array.to_list s.Dls.Multiround.chunks)
  in
  let nonzero = List.filter (fun (_, a) -> a > 0.0) chunks_in_order in
  {
    chunk_sends = nonzero;
    chunk_returns = (if cfg.Dls.Multiround.with_returns then nonzero else []);
  }

let execute_chunked ?(noise = no_noise) platform plan =
  let qf = Numeric.Rational.to_float in
  let cost i =
    let wk = Dls.Platform.get platform i in
    (qf wk.Dls.Platform.c, qf wk.Dls.Platform.w, qf wk.Dls.Platform.d)
  in
  let events = ref [] in
  let record worker kind start finish load =
    events := { Trace.worker; kind; start; finish; load } :: !events
  in
  let n = Dls.Platform.size platform in
  (* Sends back-to-back; each worker computes its chunks in order. *)
  let worker_ready = Array.make n 0.0 in
  let compute_ends : (int, float Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let clock = ref 0.0 in
  List.iter
    (fun (i, load) ->
      let c, w, _ = cost i in
      let dur = noise.comm ~worker:i (load *. c) in
      record i Trace.Send !clock (!clock +. dur) load;
      clock := !clock +. dur;
      let start = Float.max !clock worker_ready.(i) in
      let wdur = noise.comp ~worker:i (load *. w) in
      record i Trace.Compute start (start +. wdur) load;
      worker_ready.(i) <- start +. wdur;
      let q =
        match Hashtbl.find_opt compute_ends i with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add compute_ends i q;
          q
      in
      Queue.add (start +. wdur) q)
    plan.chunk_sends;
  (* One-port return chain, in the prescribed order. *)
  let master_free = ref !clock in
  List.iter
    (fun (i, load) ->
      let _, _, d = cost i in
      let computed =
        match Hashtbl.find_opt compute_ends i with
        | Some q when not (Queue.is_empty q) -> Queue.pop q
        | _ -> invalid_arg "Star.execute_chunked: return without a sent chunk"
      in
      let start = Float.max !master_free computed in
      let dur = noise.comm ~worker:i (load *. d) in
      record i Trace.Return start (start +. dur) load;
      master_free := start +. dur)
    plan.chunk_returns;
  Trace.make !events

(* ------------------------------------------------------------------ *)
(* Multi-load batches                                                  *)

type multi_op = {
  op_load : int;
  op_worker : int;
  op_kind : kind;
  op_amount : float;
  op_release : float;
  op_comm : float;
  op_comp : float;
}

and kind = Op_send | Op_return

type multi_plan = { ops : multi_op list }

let plan_of_batch (b : Dls.Steady_state.batch) =
  let qf = Numeric.Rational.to_float in
  let workload = b.Dls.Steady_state.b_workload in
  let ops =
    List.filter_map
      (fun (kind, k, j) ->
        let i = b.Dls.Steady_state.order.(j) in
        let wk = Dls.Platform.get b.Dls.Steady_state.b_platform i in
        let a = b.Dls.Steady_state.chunks.(k).(j) in
        if Numeric.Rational.sign a <= 0 then None
        else
          let a_f = qf a in
          match kind with
          | `Send ->
            Some
              {
                op_load = k;
                op_worker = i;
                op_kind = Op_send;
                op_amount = a_f;
                op_release =
                  qf (Dls.Workload.get workload k).Dls.Workload.release;
                op_comm = a_f *. qf wk.Dls.Platform.c;
                op_comp = a_f *. qf wk.Dls.Platform.w;
              }
          | `Return ->
            Some
              {
                op_load = k;
                op_worker = i;
                op_kind = Op_return;
                op_amount = a_f;
                op_release = 0.;
                op_comm = a_f *. qf (Dls.Workload.return_cost workload k wk);
                op_comp = 0.;
              })
      (Dls.Steady_state.port_sequence b)
  in
  { ops }

let execute_multi ?(noise = no_noise) platform plan =
  let events = ref [] in
  let record worker kind start finish load =
    events := { Trace.worker; kind; start; finish; load } :: !events
  in
  let n = Dls.Platform.size platform in
  let worker_ready = Array.make n 0.0 in
  let compute_ends : (int, float Queue.t) Hashtbl.t = Hashtbl.create 8 in
  let queue_of i =
    match Hashtbl.find_opt compute_ends i with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add compute_ends i q;
      q
  in
  let master_free = ref 0.0 in
  List.iter
    (fun op ->
      let i = op.op_worker in
      match op.op_kind with
      | Op_send ->
        let start = Float.max !master_free op.op_release in
        let dur = noise.comm ~worker:i op.op_comm in
        record i Trace.Send start (start +. dur) op.op_amount;
        master_free := start +. dur;
        let cstart = Float.max !master_free worker_ready.(i) in
        let cdur = noise.comp ~worker:i op.op_comp in
        record i Trace.Compute cstart (cstart +. cdur) op.op_amount;
        worker_ready.(i) <- cstart +. cdur;
        Queue.add (cstart +. cdur) (queue_of i)
      | Op_return ->
        let computed =
          let q = queue_of i in
          if Queue.is_empty q then
            invalid_arg "Star.execute_multi: return without a sent chunk"
          else Queue.pop q
        in
        let start = Float.max !master_free computed in
        let dur = noise.comm ~worker:i op.op_comm in
        record i Trace.Return start (start +. dur) op.op_amount;
        master_free := start +. dur)
    plan.ops;
  Trace.make !events
