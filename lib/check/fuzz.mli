(** Differential fuzzing of the solver stack.

    Five independent paths compute (pieces of) the same mathematical
    objects: {!Dls.Fifo} / {!Dls.Lifo} (Theorem 1 + sort), {!Dls.Brute}
    (exhaustive permutation search), {!Dls.Search} (branch-and-bound),
    and {!Dls.Closed_form} (Theorem 2 on bus platforms).  This module
    generates random platforms — deterministically, from an explicit
    seed — across the three return-ratio regimes and asserts every
    consistency relation the theory guarantees:

    - every emitted schedule passes the exact {!Validator}, and every LP
      solution passes the independent {!Certificate};
    - the heuristic FIFO orders (INC_C, INC_W) never beat the Theorem 1
      optimum, and exhaustive search never finds a better FIFO or LIFO
      order than the sorted one (uniform [z] — Theorem 1's hypothesis);
    - branch-and-bound agrees with brute force;
    - the two-port relaxation dominates the one-port optimum;
    - [z > 1]: the explicit mirror construction reproduces the direct
      solution and its flipped schedule validates on the original
      platform ({!Dls.Fifo.optimal_via_mirror});
    - [z = 1]: the sending order is irrelevant (enrollment order gives
      the same throughput as the sorted order);
    - bus platforms: Theorem 2's closed form equals the LP optimum, and
      the companion two-port closed form equals the two-port LP.

    All generated platforms keep the worker count small enough for brute
    force ([p!] LPs), so every relation is checked exhaustively. *)

module Q = Numeric.Rational

type regime = Small_z  (** [z < 1] *) | Unit_z  (** [z = 1] *) | Big_z  (** [z > 1] *)

val all_regimes : regime list
val regime_to_string : regime -> string

(** [regime_of_string s] parses ["z<1"], ["z=1"], ["z>1"]. *)
val regime_of_string : string -> regime option

(** [gen_platform rng regime] draws a random platform with a uniform
    return ratio in the regime: 2-4 workers, [c] and [w] rational in
    [[1/4, 8]]; every fourth draw is a bus (uniform links), so the
    closed-form path is exercised too. *)
val gen_platform : Random.State.t -> regime -> Dls.Platform.t

(** [check_platform ?fast platform] runs every consistency relation
    above; returns the list of discrepancies (empty = all solver paths
    agree and every schedule validates exactly).  With [~fast:true] it
    additionally solves {e every} FIFO order of the platform through
    both pipelines — [Dls.Solve.solve ~mode:`Exact] and the certified
    [~mode:`Fast], warm bases threaded as [Dls.Brute] does —
    and demands bit-identical [rho]/[alpha]/[idle] plus a passing
    {!Certificate} on each fast answer. *)
val check_platform : ?fast:bool -> Dls.Platform.t -> string list

(** One fuzzed platform that failed: its index in the run, the platform
    (serialized, for reproduction), and the discrepancies. *)
type failure = { index : int; platform : string; messages : string list }

(** [run_matrix ?jobs ?count ?seed ?fast regime] fuzzes [count] (default
    200) random platforms of the regime, fanning the checks out over a
    {!Parallel.Pool} of [jobs] domains (default: core count).  The
    platform drawn for index [i] depends only on [(seed, regime, i)], so
    results are independent of [jobs] and reproducible.  [~fast:true]
    adds the exact-vs-fast bit-identity check of {!check_platform} to
    every platform.  Returns the failures, in index order (empty = the
    matrix passes). *)
val run_matrix :
  ?jobs:int -> ?count:int -> ?seed:int -> ?fast:bool -> regime -> failure list

(** {1 Multi-load differential matrix}

    The multi-load analogue of {!run_matrix}: random platforms paired
    with random two-load workloads (sizes, release dates, optional
    per-load return ratios), cross-checking the steady-state LP against
    the batch LP on a long horizon:

    - the steady-state solution passes {!Validator.validate_steady} and
      its period never exceeds the naive back-to-back baseline;
    - capacity squeeze on [h] zero-release copies of the mix:
      [h * T <= makespan(batch, best depth <= 2) <= (h + 2) * T];
    - the released batch passes {!Validator.validate_batch} and never
      loses to fixed-order back-to-back (a feasible depth-0 point);
    - a one-load batch at depth 0 reproduces the paper's LP(2) makespan
      bit-exactly. *)

type multi_failure = {
  w_index : int;
  w_platform : string;  (** serialized, for reproduction *)
  w_workload : string;  (** {!Dls.Workload.to_spec} *)
  w_messages : string list;
}

(** [gen_workload rng regime] draws a random two-load workload: sizes in
    [[1/4, 8]], releases in [{0, 1/2, 1}], and each load keeping the
    platform's return ratio or overriding it with a fresh draw from the
    regime.  Also used by {!Service.Loadgen} for [solve-multi]
    traffic. *)
val gen_workload : Random.State.t -> regime -> Dls.Workload.t

(** [check_multi ?h platform workload] runs every assertion above for
    one case ([h] copies in the squeeze, default 3); returns the
    discrepancies (empty = pass). *)
val check_multi : ?h:int -> Dls.Platform.t -> Dls.Workload.t -> string list

(** [run_multi_matrix ?jobs ?count ?seed ?h regime] fuzzes [count]
    (default 60) multi-load cases over a {!Parallel.Pool}; the case at
    index [i] depends only on [(seed, regime, i)].  Failures come back
    in index order (empty = the matrix passes). *)
val run_multi_matrix :
  ?jobs:int -> ?count:int -> ?seed:int -> ?h:int -> regime -> multi_failure list

(** {1 Fault-injection matrix}

    The robustness analogue of {!run_matrix}: random platforms paired
    with random seeded fault plans ({!Dls.Faults.gen}), each fed to the
    online re-planner ({!Dls.Replan.respond}), asserting that

    - the re-planner's no-recovery baseline equals an independent exact
      replay of the original schedule under the faults;
    - the chosen decision never completes less load by the deadline than
      that baseline (re-planning never hurts);
    - when it recovers, the spliced schedule passes
      {!Validator.validate_recovery} — exact one-port validity on the
      degraded platform, deadline respected, accounting consistent;
    - an empty fault plan yields [Keep_original] with full completion;
    - [respond] is deterministic on identical inputs. *)

type fault_failure = {
  f_index : int;
  f_platform : string;  (** serialized, for reproduction *)
  f_faults : string;  (** serialized fault plan *)
  f_messages : string list;
}

(** [check_faulted platform plan ~load] runs every assertion above for
    one case; returns the discrepancies (empty = pass). *)
val check_faulted : Dls.Platform.t -> Dls.Faults.plan -> load:Q.t -> string list

(** [fault_case ~seed ~severity regime i] draws case [i] of the matrix:
    a platform of the regime, a fault plan whose onsets and factors
    scale with [severity] in [[0, 1]], and a campaign load sized to a
    deadline of 1/2 to 2 time units.  Depends only on the arguments —
    never on scheduling or [jobs]. *)
val fault_case :
  seed:int -> severity:float -> regime -> int -> Dls.Platform.t * Dls.Faults.plan * Q.t

(** [run_fault_matrix ?jobs ?count ?seed ?severity regime] fuzzes
    [count] (default 200) fault cases over a {!Parallel.Pool}; failures
    come back in index order (empty = the matrix passes). *)
val run_fault_matrix :
  ?jobs:int ->
  ?count:int ->
  ?seed:int ->
  ?severity:float ->
  regime ->
  fault_failure list

(** {1 Warm-repair differential matrix}

    The incremental-resolve analogue of {!run_matrix}: a random base
    platform solved cold ({!Dls.Fifo.optimal}), then a random
    {!Dls.Delta} applied to its scenario — mostly small [c]/[w] nudges
    and [z] sweeps (the near-duplicate traffic the repair path is built
    for), occasionally a worker add/drop to exercise the rejection rung
    — and the perturbed scenario pushed through
    {!Dls.Lp_model.solve_from_neighbor} against the base:

    - when the repair {e certifies}, its [rho]/[alpha]/[idle] must be
      bit-identical to a cold [`Exact] solve of the perturbed scenario
      and pass the independent {!Certificate};
    - when it declines ([None]), the fallback the cache would take
      ([`Fast]) must still agree bit-exactly with [`Exact];
    - a shape-changing delta must never be accepted by the repair path
      (the cached basis has the wrong dimension). *)

type resolve_failure = {
  r_index : int;
  r_platform : string;  (** serialized, for reproduction *)
  r_delta : string;  (** {!Dls.Delta.to_spec} *)
  r_messages : string list;
}

(** [gen_delta rng regime platform] draws a random delta against
    [platform]: factors in [[1/4, 4]] clustered around 1, [z] sweeps
    from the regime, one change in eight shape-changing and one in eight
    a composed pair. *)
val gen_delta : Random.State.t -> regime -> Dls.Platform.t -> Dls.Delta.t

(** [check_resolve platform delta] runs every assertion above for one
    case; returns the discrepancies (empty = pass). *)
val check_resolve : Dls.Platform.t -> Dls.Delta.t -> string list

(** [run_resolve_matrix ?jobs ?count ?seed regime] fuzzes [count]
    (default 100) delta cases over a {!Parallel.Pool}; the case at index
    [i] depends only on [(seed, regime, i)].  Failures come back in
    index order (empty = the matrix passes). *)
val run_resolve_matrix :
  ?jobs:int -> ?count:int -> ?seed:int -> regime -> resolve_failure list
