module Q = Numeric.Rational
open Q.Infix

type regime = Small_z | Unit_z | Big_z

let all_regimes = [ Small_z; Unit_z; Big_z ]

let regime_to_string = function
  | Small_z -> "z<1"
  | Unit_z -> "z=1"
  | Big_z -> "z>1"

let regime_of_string = function
  | "z<1" -> Some Small_z
  | "z=1" -> Some Unit_z
  | "z>1" -> Some Big_z
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Platform generation                                                 *)
(* ------------------------------------------------------------------ *)

let gen_rational rng =
  (* num/den in [1/4, 8]: small numerators keep the exact LPs cheap. *)
  Q.of_ints (1 + Random.State.int rng 8) (1 + Random.State.int rng 4)

let gen_z rng = function
  | Unit_z -> Q.one
  | Small_z ->
    let den = 2 + Random.State.int rng 8 in
    Q.of_ints (1 + Random.State.int rng (den - 1)) den
  | Big_z ->
    let num = 2 + Random.State.int rng 8 in
    Q.of_ints num (1 + Random.State.int rng (num - 1))

let gen_platform rng regime =
  let n = 2 + Random.State.int rng 3 in
  let z = gen_z rng regime in
  let bus = Random.State.int rng 4 = 0 in
  let bus_c = gen_rational rng in
  Dls.Platform.with_return_ratio ~z
    (List.init n (fun _ ->
         let c = if bus then bus_c else gen_rational rng in
         (c, gen_rational rng)))

(* ------------------------------------------------------------------ *)
(* The differential matrix                                             *)
(* ------------------------------------------------------------------ *)

let check_platform ?(fast = false) platform =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let expect_valid label sol =
    (match Validator.validate_solved sol with
    | Ok () -> ()
    | Error vs ->
      List.iter
        (fun v -> add "%s: %s" label (Validator.violation_to_string platform v))
        vs);
    match Certificate.check sol with
    | Ok () -> ()
    | Error msgs -> List.iter (fun m -> add "%s: certificate: %s" label m) msgs
  in
  let rho (sol : Dls.Lp_model.solved) = sol.Dls.Lp_model.rho in
  let fifo = Dls.Fifo.optimal platform in
  let lifo = Dls.Lifo.optimal platform in
  expect_valid "fifo" fifo;
  expect_valid "lifo" lifo;
  (* Two-port relaxes the port constraint: it can only do better. *)
  let two_port = Dls.Fifo.optimal ~model:Dls.Lp_model.Two_port platform in
  if rho two_port </ rho fifo then
    add "two-port optimum %s below one-port optimum %s"
      (Q.to_string (rho two_port)) (Q.to_string (rho fifo));
  (* Heuristic FIFO orders never beat the Theorem 1 order. *)
  List.iter
    (fun h ->
      let sol = Dls.Heuristics.solve h platform in
      expect_valid (Dls.Heuristics.name h) sol;
      match h with
      | Dls.Heuristics.Inc_c | Dls.Heuristics.Inc_w ->
        if rho sol >/ rho fifo then
          add "heuristic %s throughput %s beats the FIFO optimum %s"
            (Dls.Heuristics.name h) (Q.to_string (rho sol)) (Q.to_string (rho fifo))
      | Dls.Heuristics.Lifo ->
        if rho sol <>/ rho lifo then
          add "LIFO heuristic %s disagrees with Lifo.optimal %s"
            (Q.to_string (rho sol)) (Q.to_string (rho lifo)))
    Dls.Heuristics.all;
  (* Exhaustive search over orders: Theorem 1's sorted order must win. *)
  let brute_fifo = Dls.Brute.best_fifo platform in
  if rho brute_fifo <>/ rho fifo then
    add "brute-force FIFO %s differs from Theorem 1 optimum %s"
      (Q.to_string (rho brute_fifo)) (Q.to_string (rho fifo));
  let brute_lifo = Dls.Brute.best_lifo platform in
  if rho brute_lifo <>/ rho lifo then
    add "brute-force LIFO %s differs from sorted LIFO %s"
      (Q.to_string (rho brute_lifo)) (Q.to_string (rho lifo));
  (* Branch-and-bound agrees with brute force. *)
  let search = Dls.Search.best_fifo platform in
  if rho search.Dls.Search.solved <>/ rho brute_fifo then
    add "branch-and-bound FIFO %s differs from brute force %s"
      (Q.to_string (rho search.Dls.Search.solved))
      (Q.to_string (rho brute_fifo));
  (* Regime-specific relations. *)
  (match Dls.Platform.z_ratio platform with
  | None -> add "generator emitted a platform without a uniform return ratio"
  | Some z ->
    if Q.compare z Q.one > 0 then begin
      (* Mirror consistency (the paper's z > 1 argument). *)
      match Dls.Fifo.optimal_via_mirror platform with
      | Error e -> add "mirror construction failed: %s" (Dls.Errors.to_string e)
      | Ok m ->
        if rho m.Dls.Fifo.solved <>/ rho fifo then
          add "mirror throughput %s differs from direct solve %s"
            (Q.to_string (rho m.Dls.Fifo.solved)) (Q.to_string (rho fifo));
        (match Validator.validate m.Dls.Fifo.schedule with
        | Ok () -> ()
        | Error vs ->
          List.iter
            (fun v ->
              add "mirrored schedule: %s" (Validator.violation_to_string platform v))
            vs);
        let total = Dls.Schedule.total_load m.Dls.Fifo.schedule in
        if total <>/ rho fifo then
          add "mirrored schedule carries %s load, expected %s" (Q.to_string total)
            (Q.to_string (rho fifo))
    end
    else if Q.equal z Q.one then begin
      (* z = 1: the sending order is irrelevant. *)
      let identity = Array.init (Dls.Platform.size platform) (fun i -> i) in
      let sol = Dls.Fifo.solve_order platform identity in
      if rho sol <>/ rho fifo then
        add "z = 1 but enrollment order gives %s, sorted order %s"
          (Q.to_string (rho sol)) (Q.to_string (rho fifo))
    end);
  (* Bus platforms: Theorem 2 and the companion two-port closed form. *)
  if Dls.Platform.is_bus platform then begin
    let wk i = Dls.Platform.get platform i in
    let c = (wk 0).Dls.Platform.c and d = (wk 0).Dls.Platform.d in
    let ws =
      Array.init (Dls.Platform.size platform) (fun i -> (wk i).Dls.Platform.w)
    in
    let closed = Dls.Closed_form.fifo_throughput ~c ~d ws in
    if closed <>/ rho fifo then
      add "Theorem 2 closed form %s differs from the LP optimum %s"
        (Q.to_string closed) (Q.to_string (rho fifo));
    let closed2 = Dls.Closed_form.two_port_throughput ~c ~d ws in
    if closed2 <>/ rho two_port then
      add "two-port closed form %s differs from the two-port LP %s"
        (Q.to_string closed2) (Q.to_string (rho two_port))
  end;
  (* Certified fast pipeline: bit-identical to the exact solver on every
     FIFO order, with the previous optimal basis threaded through as a
     warm start (exactly the way [Brute] uses it), and each fast answer
     passed through the independent certificate again. *)
  if fast then begin
    let warm = ref None in
    List.iter
      (fun order ->
        let s = Dls.Scenario.fifo_exn platform order in
        let cold = Dls.Solve.solve_exn ~mode:`Exact s in
        let quick = Dls.Solve.solve_exn ~mode:`Fast ?warm:!warm s in
        warm := Some quick.Dls.Lp_model.basis;
        let order_str =
          String.concat ";" (List.map string_of_int (Array.to_list order))
        in
        let arrays_equal a b =
          Array.length a = Array.length b && Array.for_all2 Q.equal a b
        in
        if rho quick <>/ rho cold then
          add "fast pipeline rho %s differs from exact %s on order [%s]"
            (Q.to_string (rho quick)) (Q.to_string (rho cold)) order_str;
        if not (arrays_equal quick.Dls.Lp_model.alpha cold.Dls.Lp_model.alpha)
        then add "fast pipeline loads differ from exact on order [%s]" order_str;
        if not (arrays_equal quick.Dls.Lp_model.idle cold.Dls.Lp_model.idle)
        then
          add "fast pipeline idle times differ from exact on order [%s]"
            order_str;
        match Certificate.check quick with
        | Ok () -> ()
        | Error msgs ->
          List.iter (fun m -> add "fast [%s]: certificate: %s" order_str m) msgs)
      (Dls.Brute.permutations (Dls.Platform.size platform))
  end;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* The matrix driver                                                   *)
(* ------------------------------------------------------------------ *)

type failure = { index : int; platform : string; messages : string list }

let regime_tag = function Small_z -> 1 | Unit_z -> 2 | Big_z -> 3

let run_matrix ?jobs ?(count = 200) ?(seed = 7) ?(fast = false) regime =
  (* One PRNG per platform, seeded by (seed, regime, index): the matrix
     is reproducible and independent of [jobs]. *)
  let platform_of_index i =
    let rng = Random.State.make [| seed; regime_tag regime; i |] in
    gen_platform rng regime
  in
  let check i =
    let platform = platform_of_index i in
    match check_platform ~fast platform with
    | [] -> None
    | messages ->
      Some { index = i; platform = Dls.Platform_io.to_string platform; messages }
  in
  let results = Parallel.Pool.run ?jobs check (Array.init count (fun i -> i)) in
  List.filter_map Fun.id (Array.to_list results)

(* ------------------------------------------------------------------ *)
(* Multi-load differential matrix                                      *)
(* ------------------------------------------------------------------ *)

type multi_failure = {
  w_index : int;
  w_platform : string;
  w_workload : string;
  w_messages : string list;
}

(* Two loads and 2-3 workers keep the batch LPs (4 variables per chunk,
   H copies) inside exact-simplex comfort. *)
let gen_workload rng regime =
  let gen_load () =
    let size = gen_rational rng in
    let release =
      if Random.State.bool rng then Q.zero
      else Q.of_ints (Random.State.int rng 3) 2
    in
    let z = if Random.State.bool rng then Some (gen_z rng regime) else None in
    Dls.Workload.load ?z ~release ~size ()
  in
  Dls.Workload.make_exn [ gen_load (); gen_load () ]

let gen_multi_platform rng regime =
  let n = 2 + Random.State.int rng 2 in
  let z = gen_z rng regime in
  Dls.Platform.with_return_ratio ~z
    (List.init n (fun _ -> (gen_rational rng, gen_rational rng)))

let zero_releases workload =
  Dls.Workload.make_exn
    (List.map
       (fun (l : Dls.Workload.load) ->
         Dls.Workload.load ~name:l.Dls.Workload.name ?z:l.Dls.Workload.z
           ~size:l.Dls.Workload.size ())
       (Array.to_list workload.Dls.Workload.loads))

let check_multi ?(h = 3) platform workload =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let report_violations label wl = function
    | Ok () -> ()
    | Error vs ->
      List.iter
        (fun v -> add "%s: %s" label (Validator.violation_to_string platform v))
        vs;
      ignore wl
  in
  (match Dls.Steady_state.solve platform workload with
  | Error e -> add "steady-state solve failed: %s" (Dls.Errors.to_string e)
  | Ok steady ->
    report_violations "steady" workload (Validator.validate_steady steady);
    let period = steady.Dls.Steady_state.period in
    (* The naive back-to-back baseline is a periodic scheme too, so the
       optimal period can only be shorter. *)
    (match Dls.Steady_state.naive_makespan platform workload with
    | Error e -> add "naive baseline failed: %s" (Dls.Errors.to_string e)
    | Ok naive ->
      if period >/ naive then
        add "steady period %s exceeds the back-to-back baseline %s"
          (Q.to_string period) (Q.to_string naive));
    (* Two-sided squeeze against the batch LP on a long horizon (release
       dates stripped: the steady LP has none).  Capacity gives
       H*T <= makespan; the periodic window construction lives inside
       the depth-2 port order, so best-over-depths <= (H+2)*T. *)
    let order = Dls.Fifo.order platform in
    let w0 = zero_releases workload in
    let batch_h = Dls.Workload.repeat h w0 in
    (match Dls.Steady_state.solve_batch_best ~max_depth:2 ~order platform batch_h with
    | Error e -> add "batch solve (H=%d) failed: %s" h (Dls.Errors.to_string e)
    | Ok b ->
      report_violations "batch" batch_h (Validator.validate_batch b);
      let m = b.Dls.Steady_state.makespan in
      if Q.of_int h */ period >/ m then
        add "capacity bound violated: %d * period %s > batch makespan %s" h
          (Q.to_string period) (Q.to_string m);
      if m >/ Q.of_int (h + 2) */ period then
        add "batch makespan %s exceeds the periodic bound (%d+2) * %s"
          (Q.to_string m) h (Q.to_string period));
    (* The batch LP with release dates: valid, and never worse than
       back-to-back with the same worker order (that schedule is in the
       depth-0 feasible set). *)
    match Dls.Steady_state.solve_batch_best ~order platform workload with
    | Error e -> add "batch solve failed: %s" (Dls.Errors.to_string e)
    | Ok b ->
      report_violations "batch+releases" workload (Validator.validate_batch b);
      let naive_fixed =
        let seq = Array.to_list b.Dls.Steady_state.sequence in
        List.fold_left
          (fun clock k ->
            match clock with
            | Error _ as e -> e
            | Ok clock ->
              let l = Dls.Workload.get workload k in
              let induced =
                Dls.Workload.induced_platform workload k platform
              in
              let sol = Dls.Fifo.solve_order induced order in
              let span =
                Dls.Lp_model.time_for_load sol ~load:l.Dls.Workload.size
              in
              Ok (Q.max clock l.Dls.Workload.release +/ span))
          (Ok Q.zero) seq
      in
      (match naive_fixed with
      | Error _ -> ()
      | Ok naive_fixed ->
        if b.Dls.Steady_state.makespan >/ naive_fixed then
          add "batch makespan %s exceeds fixed-order back-to-back %s"
            (Q.to_string b.Dls.Steady_state.makespan)
            (Q.to_string naive_fixed)));
  (* Single-load agreement: a one-load batch at depth 0 is exactly the
     paper's LP(2) schedule, makespan [size / rho]. *)
  Array.iteri
    (fun k (l : Dls.Workload.load) ->
      let single =
        Dls.Workload.make_exn
          [ Dls.Workload.load ?z:l.Dls.Workload.z ~size:l.Dls.Workload.size () ]
      in
      let induced = Dls.Workload.induced_platform single 0 platform in
      let order = Dls.Fifo.order induced in
      match Dls.Steady_state.solve_batch ~depth:0 ~order platform single with
      | Error e ->
        add "single-load batch %d failed: %s" k (Dls.Errors.to_string e)
      | Ok b ->
        let sol = Dls.Fifo.solve_order induced order in
        let expected =
          Dls.Lp_model.time_for_load sol ~load:l.Dls.Workload.size
        in
        if b.Dls.Steady_state.makespan <>/ expected then
          add "single-load batch makespan %s differs from LP(2)'s %s (load %d)"
            (Q.to_string b.Dls.Steady_state.makespan)
            (Q.to_string expected) k)
    workload.Dls.Workload.loads;
  List.rev !errs

let run_multi_matrix ?jobs ?(count = 60) ?(seed = 23) ?(h = 3) regime =
  let check i =
    let rng = Random.State.make [| seed; 32 + regime_tag regime; i |] in
    let platform = gen_multi_platform rng regime in
    let workload = gen_workload rng regime in
    match check_multi ~h platform workload with
    | [] -> None
    | messages ->
      Some
        {
          w_index = i;
          w_platform = Dls.Platform_io.to_string platform;
          w_workload = Dls.Workload.to_spec workload;
          w_messages = messages;
        }
  in
  let results = Parallel.Pool.run ?jobs check (Array.init count (fun i -> i)) in
  List.filter_map Fun.id (Array.to_list results)

(* ------------------------------------------------------------------ *)
(* Fault-injection matrix                                              *)
(* ------------------------------------------------------------------ *)

type fault_failure = {
  f_index : int;
  f_platform : string;
  f_faults : string;
  f_messages : string list;
}

let check_faulted platform plan ~load =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let sol = Dls.Fifo.optimal platform in
  (match Dls.Replan.respond plan sol ~load with
  | Error e -> add "respond failed: %s" (Dls.Errors.to_string e)
  | Ok outcome ->
    let open Dls.Replan in
    (* The baseline must be exactly the independent no-recovery replay. *)
    let original = Dls.Schedule.for_load sol ~load in
    let naive =
      report_of ~deadline:outcome.deadline ~total:load
        (replay_seq platform plan (seq_of_schedule original ~start:Q.zero))
    in
    if naive.done_by_deadline <>/ outcome.baseline.done_by_deadline then
      add "baseline %s disagrees with an independent replay %s"
        (Q.to_string outcome.baseline.done_by_deadline)
        (Q.to_string naive.done_by_deadline);
    (* Never worse than doing nothing. *)
    if outcome.achieved.done_by_deadline </ naive.done_by_deadline then
      add "re-planner achieved %s, worse than the no-recovery baseline %s"
        (Q.to_string outcome.achieved.done_by_deadline)
        (Q.to_string naive.done_by_deadline);
    (* A no-fault plan never triggers a recovery and completes fully. *)
    if Dls.Faults.is_empty plan then begin
      (match outcome.decision with
      | Keep_original -> ()
      | Recover _ -> add "re-planned with an empty fault plan");
      if outcome.achieved.done_by_deadline <>/ load then
        add "no faults, yet only %s of %s done by the deadline"
          (Q.to_string outcome.achieved.done_by_deadline) (Q.to_string load)
    end;
    (match outcome.decision with
    | Keep_original -> ()
    | Recover r -> (
      (* Accounting ties the recovery to the campaign it splices into. *)
      if r.banked +/ r.residual <>/ load then
        add "banked %s + residual %s <> load %s" (Q.to_string r.banked)
          (Q.to_string r.residual) (Q.to_string load);
      (* The spliced schedule must validate exactly against the degraded
         platform — the one-port model holds even while recovering. *)
      match Validator.validate_recovery ~deadline:outcome.deadline r with
      | Ok () -> ()
      | Error vs ->
        List.iter
          (fun v -> add "recovery: %s" (Validator.violation_to_string r.degraded v))
          vs));
    (* Same inputs, same answer: respond is a pure function. *)
    match Dls.Replan.respond plan sol ~load with
    | Error e -> add "second respond failed: %s" (Dls.Errors.to_string e)
    | Ok outcome' ->
      let render o = Format.asprintf "%a" pp_outcome o in
      if render outcome <> render outcome' then
        add "respond is not deterministic on identical inputs");
  List.rev !errs

let fault_case ~seed ~severity regime i =
  let rng = Random.State.make [| seed; 16 + regime_tag regime; i |] in
  let platform = gen_platform rng regime in
  let sol = Dls.Fifo.optimal platform in
  (* Deadlines of 1/2, 1 or 2 time units, so onsets and durations drawn
     by the generator exercise different scales. *)
  let scale = Q.of_ints (1 + Random.State.int rng 4) 2 in
  let load = Q.mul sol.Dls.Lp_model.rho scale in
  let deadline = Dls.Lp_model.time_for_load sol ~load in
  let prng = Numeric.Prng.create ~seed:((seed * 1_000_003) + (regime_tag regime * 4096) + i) in
  let plan =
    Dls.Faults.gen prng ~workers:(Dls.Platform.size platform) ~deadline ~severity
  in
  (platform, plan, load)

let run_fault_matrix ?jobs ?(count = 200) ?(seed = 11) ?(severity = 0.6) regime =
  let check i =
    let platform, plan, load = fault_case ~seed ~severity regime i in
    match check_faulted platform plan ~load with
    | [] -> None
    | messages ->
      Some
        {
          f_index = i;
          f_platform = Dls.Platform_io.to_string platform;
          f_faults = Dls.Faults.to_string plan;
          f_messages = messages;
        }
  in
  let results = Parallel.Pool.run ?jobs check (Array.init count (fun i -> i)) in
  List.filter_map Fun.id (Array.to_list results)

(* ------------------------------------------------------------------ *)
(* Warm-repair differential matrix                                     *)
(* ------------------------------------------------------------------ *)

type resolve_failure = {
  r_index : int;
  r_platform : string;
  r_delta : string;
  r_messages : string list;
}

let gen_delta rng regime platform =
  let n = Dls.Platform.size platform in
  (* Factors clustered around 1 (1/2 .. 2): the near-duplicate regime
     the repair path is built for.  Larger kicks still certify or fall
     back; small ones are where the pivot counts should stay tiny. *)
  let nudge () =
    Q.of_ints (1 + Random.State.int rng 4) (1 + Random.State.int rng 4)
  in
  let shape_preserving () =
    match Random.State.int rng 5 with
    | 0 | 1 ->
      Dls.Delta.Scale_comm
        { worker = Random.State.int rng n; factor = nudge () }
    | 2 | 3 ->
      Dls.Delta.Scale_comp
        { worker = Random.State.int rng n; factor = nudge () }
    | _ -> Dls.Delta.Set_z (gen_z rng regime)
  in
  match Random.State.int rng 8 with
  | 0 ->
    (* Shape change: the repair path must refuse (the cached basis has
       the wrong dimension) and the fallback must still agree. *)
    if n > 1 && Random.State.bool rng then
      [ Dls.Delta.Remove_worker (Random.State.int rng n) ]
    else
      let c = gen_rational rng in
      [ Dls.Delta.Add_worker
          (Dls.Platform.worker ~c ~w:(gen_rational rng)
             ~d:(Q.mul (gen_z rng regime) c) ())
      ]
  | 1 -> [ shape_preserving (); shape_preserving () ]
  | _ -> [ shape_preserving () ]

let check_resolve platform delta =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let rho (sol : Dls.Lp_model.solved) = sol.Dls.Lp_model.rho in
  let arrays_equal a b =
    Array.length a = Array.length b && Array.for_all2 Q.equal a b
  in
  let base = Dls.Fifo.optimal platform in
  (match Dls.Delta.apply_scenario base.Dls.Lp_model.scenario delta with
  | Error e -> add "delta rejected: %s" (Dls.Errors.to_string e)
  | Ok scenario' -> (
    let exact = Dls.Solve.solve_exn ~mode:`Exact scenario' in
    match
      Dls.Lp_model.solve_from_neighbor Dls.Lp_model.One_port scenario' base
    with
    | Some repaired ->
      (* A repaired answer carries the full certified-optimum guarantee:
         bit-identical to the exact pipeline, and independently
         certified. *)
      if not (Dls.Delta.preserves_shape delta) then
        add "repair accepted a shape-changing delta";
      if rho repaired <>/ rho exact then
        add "repaired rho %s differs from exact %s"
          (Q.to_string (rho repaired))
          (Q.to_string (rho exact));
      if not (arrays_equal repaired.Dls.Lp_model.alpha exact.Dls.Lp_model.alpha)
      then add "repaired loads differ from exact";
      if not (arrays_equal repaired.Dls.Lp_model.idle exact.Dls.Lp_model.idle)
      then add "repaired idle times differ from exact";
      (match Certificate.check repaired with
      | Ok () -> ()
      | Error msgs -> List.iter (fun m -> add "repaired: certificate: %s" m) msgs)
    | None -> (
      (* Repair declined — the fallback the cache takes must agree with
         the exact answer (it is the certified fast pipeline). *)
      let fast = Dls.Solve.solve_exn ~mode:`Fast scenario' in
      if rho fast <>/ rho exact then
        add "fallback rho %s differs from exact %s after declined repair"
          (Q.to_string (rho fast))
          (Q.to_string (rho exact));
      if not (arrays_equal fast.Dls.Lp_model.alpha exact.Dls.Lp_model.alpha)
      then add "fallback loads differ from exact after declined repair")));
  List.rev !errs

let run_resolve_matrix ?jobs ?(count = 100) ?(seed = 13) regime =
  let check i =
    let rng = Random.State.make [| seed; 48 + regime_tag regime; i |] in
    let platform = gen_platform rng regime in
    let delta = gen_delta rng regime platform in
    match check_resolve platform delta with
    | [] -> None
    | messages ->
      Some
        {
          r_index = i;
          r_platform = Dls.Platform_io.to_string platform;
          r_delta = Dls.Delta.to_spec delta;
          r_messages = messages;
        }
  in
  let results = Parallel.Pool.run ?jobs check (Array.init count (fun i -> i)) in
  List.filter_map Fun.id (Array.to_list results)
