module Q = Numeric.Rational
open Q.Infix

type violation =
  | Nonpositive_load of { worker : int }
  | Duplicate_worker of { worker : int }
  | Bad_phase of { worker : int; phase : string }
  | Duration_mismatch of {
      worker : int;
      phase : string;
      expected : Q.t;
      actual : Q.t;
    }
  | Compute_before_receive of { worker : int }
  | Return_before_compute of { worker : int }
  | Outside_horizon of { worker : int; finish : Q.t; horizon : Q.t }
  | One_port_overlap of {
      worker1 : int;
      phase1 : string;
      worker2 : int;
      phase2 : string;
    }
  | Load_sum_mismatch of { claimed : Q.t; actual : Q.t }
  | Recovery_misses_deadline of { finish : Q.t; deadline : Q.t }
  | Recovery_accounting of { msg : string }
  | In_load of { load : string; violation : violation }
  | Batch_size_mismatch of { load : string; expected : Q.t; actual : Q.t }
  | Release_violated of {
      load : string;
      worker : int;
      start : Q.t;
      release : Q.t;
    }
  | Worker_overlap of { worker : int; load1 : string; load2 : string }
  | Steady_negative_alloc of { load : string; worker : int }
  | Steady_overload of { resource : string; busy : Q.t; period : Q.t }
  | Steady_slack of { period : Q.t; busy : Q.t }

let rec violation_to_string platform v =
  let name i = (Dls.Platform.get platform i).Dls.Platform.name in
  match v with
  | Nonpositive_load { worker } -> Printf.sprintf "%s: non-positive load" (name worker)
  | Duplicate_worker { worker } ->
    Printf.sprintf "%s: appears in several entries" (name worker)
  | Bad_phase { worker; phase } ->
    Printf.sprintf "%s: %s phase is ill-formed (negative start or length)"
      (name worker) phase
  | Duration_mismatch { worker; phase; expected; actual } ->
    Printf.sprintf "%s: %s duration is %s, expected %s" (name worker) phase
      (Q.to_string actual) (Q.to_string expected)
  | Compute_before_receive { worker } ->
    Printf.sprintf "%s: computes before data fully received" (name worker)
  | Return_before_compute { worker } ->
    Printf.sprintf "%s: returns results before computation ends" (name worker)
  | Outside_horizon { worker; finish; horizon } ->
    Printf.sprintf "%s: finishes at %s, after the horizon %s" (name worker)
      (Q.to_string finish) (Q.to_string horizon)
  | One_port_overlap { worker1; phase1; worker2; phase2 } ->
    Printf.sprintf "one-port violation: %s(%s) overlaps %s(%s)" phase1
      (name worker1) phase2 (name worker2)
  | Load_sum_mismatch { claimed; actual } ->
    Printf.sprintf "claimed throughput %s but validated loads sum to %s"
      (Q.to_string claimed) (Q.to_string actual)
  | Recovery_misses_deadline { finish; deadline } ->
    Printf.sprintf "recovery schedule ends at %s, after the deadline %s"
      (Q.to_string finish) (Q.to_string deadline)
  | Recovery_accounting { msg } -> Printf.sprintf "recovery accounting: %s" msg
  | In_load { load; violation } ->
    Printf.sprintf "load %s: %s" load (violation_to_string platform violation)
  | Batch_size_mismatch { load; expected; actual } ->
    Printf.sprintf "load %s: chunks sum to %s, expected %s" load
      (Q.to_string actual) (Q.to_string expected)
  | Release_violated { load; worker; start; release } ->
    Printf.sprintf "load %s: %s receives data at %s, before release %s" load
      (name worker) (Q.to_string start) (Q.to_string release)
  | Worker_overlap { worker; load1; load2 } ->
    Printf.sprintf "%s: computations of loads %s and %s overlap" (name worker)
      load1 load2
  | Steady_negative_alloc { load; worker } ->
    Printf.sprintf "load %s: negative allocation on %s" load (name worker)
  | Steady_overload { resource; busy; period } ->
    Printf.sprintf "%s busy %s per period exceeds the period %s" resource
      (Q.to_string busy) (Q.to_string period)
  | Steady_slack { period; busy } ->
    Printf.sprintf
      "period %s leaves slack on every resource (max busy %s): not optimal"
      (Q.to_string period) (Q.to_string busy)

let pp_violation platform fmt v =
  Format.pp_print_string fmt (violation_to_string platform v)

(* A master transfer, for the one-port sweep. *)
type transfer = { t_worker : int; t_phase : string; t_start : Q.t; t_finish : Q.t }

(* Sort by start date and sweep with the furthest finish seen so far.
   Touching intervals (finish of one equal to start of the next) are
   explicitly NOT overlapping; only a strict crossing is reported. *)
let sweep_one_port transfers ~add =
  let transfers =
    List.sort
      (fun a b ->
        let c = Q.compare a.t_start b.t_start in
        if c <> 0 then c else Q.compare a.t_finish b.t_finish)
      transfers
  in
  match transfers with
  | [] -> ()
  | first :: rest ->
    ignore
      (List.fold_left
         (fun frontier t ->
           if t.t_start </ frontier.t_finish then
             add
               (One_port_overlap
                  {
                    worker1 = frontier.t_worker;
                    phase1 = frontier.t_phase;
                    worker2 = t.t_worker;
                    phase2 = t.t_phase;
                  });
           if t.t_finish >/ frontier.t_finish then t else frontier)
         first rest)

let validate (sched : Dls.Schedule.t) =
  let open Dls.Schedule in
  let errs = ref [] in
  let add v = errs := v :: !errs in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let wk = Dls.Platform.get sched.platform e.worker in
      if Hashtbl.mem seen e.worker then add (Duplicate_worker { worker = e.worker })
      else Hashtbl.add seen e.worker ();
      if Q.sign e.alpha <= 0 then add (Nonpositive_load { worker = e.worker });
      let phase name p cost =
        if Q.sign p.start < 0 || p.finish </ p.start then
          add (Bad_phase { worker = e.worker; phase = name })
        else begin
          let actual = p.finish -/ p.start and expected = e.alpha */ cost in
          if actual <>/ expected then
            add (Duration_mismatch { worker = e.worker; phase = name; expected; actual })
        end
      in
      phase "send" e.send wk.Dls.Platform.c;
      phase "compute" e.compute wk.Dls.Platform.w;
      phase "return" e.return_ wk.Dls.Platform.d;
      if e.send.finish >/ e.compute.start then
        add (Compute_before_receive { worker = e.worker });
      if e.compute.finish >/ e.return_.start then
        add (Return_before_compute { worker = e.worker });
      List.iter
        (fun p ->
          if p.finish >/ sched.horizon then
            add
              (Outside_horizon
                 { worker = e.worker; finish = p.finish; horizon = sched.horizon }))
        [ e.send; e.compute; e.return_ ])
    sched.entries;
  (* One-port: no two of the master's transfers may strictly overlap. *)
  let transfers =
    List.concat_map
      (fun e ->
        [
          { t_worker = e.worker; t_phase = "send"; t_start = e.send.start; t_finish = e.send.finish };
          {
            t_worker = e.worker;
            t_phase = "return";
            t_start = e.return_.start;
            t_finish = e.return_.finish;
          };
        ])
      (Array.to_list sched.entries)
  in
  sweep_one_port transfers ~add;
  if !errs = [] then Ok () else Error (List.rev !errs)

let validate_solved (sol : Dls.Lp_model.solved) =
  let sched = Dls.Schedule.of_solved sol in
  let base = match validate sched with Ok () -> [] | Error vs -> vs in
  (* The schedule omits zero-load workers, so the sum of its entries must
     reproduce the claimed throughput on its own. *)
  let total = Dls.Schedule.total_load sched in
  let errs =
    if total <>/ sol.Dls.Lp_model.rho then
      base @ [ Load_sum_mismatch { claimed = sol.Dls.Lp_model.rho; actual = total } ]
    else base
  in
  if errs = [] then Ok () else Error errs

let validate_recovery ~deadline (r : Dls.Replan.recovery) =
  let open Dls.Replan in
  (* The spliced schedule's dates are relative to the splice point
     [r.at]; it must validate {e exactly} on the degraded platform it
     embeds, carry exactly the load it claims, keep the residual
     accounting consistent, and land before the campaign deadline. *)
  let base = match validate r.schedule with Ok () -> [] | Error vs -> vs in
  let errs = ref (List.rev base) in
  let add v = errs := v :: !errs in
  let total = Dls.Schedule.total_load r.schedule in
  if total <>/ r.planned then
    add (Load_sum_mismatch { claimed = r.planned; actual = total });
  let finish = r.at +/ Dls.Schedule.makespan r.schedule in
  if finish >/ deadline then add (Recovery_misses_deadline { finish; deadline });
  if Q.sign r.banked < 0 then
    add (Recovery_accounting { msg = "negative banked load" });
  if Q.sign r.unscheduled < 0 then
    add (Recovery_accounting { msg = "negative unscheduled load" });
  if r.planned +/ r.unscheduled <>/ r.residual then
    add
      (Recovery_accounting
         {
           msg =
             Printf.sprintf "planned %s + unscheduled %s <> residual %s"
               (Q.to_string r.planned) (Q.to_string r.unscheduled)
               (Q.to_string r.residual);
         });
  match List.rev !errs with [] -> Ok () | vs -> Error vs

(* ------------------------------------------------------------------ *)
(* Multi-load validation                                               *)

let validate_steady (s : Dls.Steady_state.solved) =
  let open Dls.Steady_state in
  let errs = ref [] in
  let add v = errs := v :: !errs in
  let workload = s.workload in
  let lname k = (Dls.Workload.get workload k).Dls.Workload.name in
  Array.iteri
    (fun k per_load ->
      Array.iteri
        (fun i a ->
          if Q.sign a < 0 then
            add (Steady_negative_alloc { load = lname k; worker = i }))
        per_load;
      let total = Q.sum_array per_load in
      let expected = (Dls.Workload.get workload k).Dls.Workload.size in
      if total <>/ expected then
        add (Batch_size_mismatch { load = lname k; expected; actual = total }))
    s.alloc;
  (* Re-derive both resource loads from the allocation and check them
     against the period — and that at least one resource is tight, or
     the period is not minimal. *)
  let platform = s.platform in
  let port =
    Q.sum
      (List.concat
         (List.init (Array.length s.alloc) (fun k ->
              List.init (Dls.Platform.size platform) (fun i ->
                  let wk = Dls.Platform.get platform i in
                  s.alloc.(k).(i)
                  */ (wk.Dls.Platform.c +/ Dls.Workload.return_cost workload k wk)))))
  in
  if port <>/ s.port_time then
    add
      (Recovery_accounting
         {
           msg =
             Printf.sprintf "claimed port time %s, recomputed %s"
               (Q.to_string s.port_time) (Q.to_string port);
         });
  if port >/ s.period then
    add (Steady_overload { resource = "port"; busy = port; period = s.period });
  let busiest = ref port in
  Array.iteri
    (fun i busy ->
      if busy >/ s.period then
        add
          (Steady_overload
             {
               resource = (Dls.Platform.get platform i).Dls.Platform.name;
               busy;
               period = s.period;
             });
      if busy >/ !busiest then busiest := busy)
    s.work_time;
  if !busiest </ s.period then
    add (Steady_slack { period = s.period; busy = !busiest });
  if !errs = [] then Ok () else Error (List.rev !errs)

let validate_batch (b : Dls.Steady_state.batch) =
  let open Dls.Steady_state in
  let errs = ref [] in
  let add v = errs := v :: !errs in
  let workload = b.b_workload in
  let lname k = (Dls.Workload.get workload k).Dls.Workload.name in
  (* Chunk accounting against the load sizes. *)
  Array.iteri
    (fun k per_load ->
      let total = Q.sum_array per_load in
      let expected = (Dls.Workload.get workload k).Dls.Workload.size in
      if total <>/ expected then
        add (Batch_size_mismatch { load = lname k; expected; actual = total }))
    b.chunks;
  (* Per-load invariants: realize each load as a schedule on its induced
     platform (phase durations, precedence, horizon containment) — the
     per-load one-port sweep is subsumed by the global one below. *)
  let schedules = batch_schedules b in
  let computes = ref [] in
  let transfers = ref [] in
  Array.iter
    (fun (k, sched) ->
      (match validate sched with
      | Ok () -> ()
      | Error vs ->
        List.iter (fun v -> add (In_load { load = lname k; violation = v })) vs);
      let release = (Dls.Workload.get workload k).Dls.Workload.release in
      Array.iter
        (fun e ->
          let open Dls.Schedule in
          if e.send.start </ release then
            add
              (Release_violated
                 {
                   load = lname k;
                   worker = e.worker;
                   start = e.send.start;
                   release;
                 });
          computes :=
            (lname k, e.worker, e.compute.start, e.compute.finish) :: !computes;
          transfers :=
            { t_worker = e.worker; t_phase = "send"; t_start = e.send.start; t_finish = e.send.finish }
            :: {
                 t_worker = e.worker;
                 t_phase = "return";
                 t_start = e.return_.start;
                 t_finish = e.return_.finish;
               }
            :: !transfers)
        sched.Dls.Schedule.entries)
    schedules;
  (* Global one-port: all transfers of all loads share the master's port. *)
  sweep_one_port !transfers ~add;
  (* A worker computes one chunk at a time, across loads. *)
  let by_worker = Hashtbl.create 8 in
  List.iter
    (fun (l, w, s, f) ->
      Hashtbl.replace by_worker w
        ((l, s, f) :: Option.value ~default:[] (Hashtbl.find_opt by_worker w)))
    !computes;
  Hashtbl.iter
    (fun w phases ->
      let phases =
        List.sort
          (fun (_, s1, f1) (_, s2, f2) ->
            let c = Q.compare s1 s2 in
            if c <> 0 then c else Q.compare f1 f2)
          phases
      in
      match phases with
      | [] -> ()
      | first :: rest ->
        ignore
          (List.fold_left
             (fun (l1, s1, f1) (l2, s2, f2) ->
               if s2 </ f1 then
                 add (Worker_overlap { worker = w; load1 = l1; load2 = l2 });
               if f2 >/ f1 then (l2, s2, f2) else (l1, s1, f1))
             first rest))
    by_worker;
  if !errs = [] then Ok () else Error (List.rev !errs)

let errors_of_result platform = function
  | Ok () -> Ok ()
  | Error vs -> Error (List.map (violation_to_string platform) vs)
