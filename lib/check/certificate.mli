(** Independent LP-certificate checking of solved scenarios.

    {!Dls.Lp_model.solve} already certifies its output against the LP it
    built ({!Simplex.Certify}) — but that check shares the constraint
    {e construction} with the solver, so a bug in the LP builder passes
    through it undetected.  This module re-substitutes a solution into
    the paper's LP (2) directly from the scenario description, with its
    own independent code path: positions are read straight off [sigma1]
    and [sigma2], coefficients straight off the platform.

    Checked, for a {!Dls.Lp_model.solved} value:

    - [alpha_i >= 0] and [x_i >= 0] for every enrolled worker, and
      [alpha_i = 0], [x_i = 0] for every worker outside the scenario;
    - [rho = sum alpha_i];
    - every deadline row of LP (2):
      [sum_(sigma1(j) <= sigma1(i)) alpha_j c_j + alpha_i w_i + x_i
       + sum_(sigma2(j) >= sigma2(i)) alpha_j d_j <= 1];
    - the one-port row (when the model is [One_port]):
      [sum alpha_i (c_i + d_i) <= 1]. *)

module Q = Numeric.Rational

(** [check sol] re-derives the LP (2) constraints and evaluates them at
    [sol]; [Error messages] lists every violated row. *)
val check : Dls.Lp_model.solved -> (unit, string list) result

(** [holds sol] is [check sol = Ok ()]. *)
val holds : Dls.Lp_model.solved -> bool
