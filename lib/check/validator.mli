(** Exact schedule validation — every paper invariant, no epsilons.

    The solver stack is exact-rational end to end, so its output can be
    held to exact standards: this module re-derives every invariant of a
    {!Dls.Schedule.t} from scratch, with {!Numeric.Rational} comparisons
    only.  It shares no code with the schedule builder or the simplex
    solver, so it can serve as an independent oracle for differential
    testing ({!Fuzz}) and as the regression gate for every future
    performance PR.

    Invariants checked, mirroring Section 2 of the paper:

    - every load is strictly positive (zero-load workers must be omitted);
    - each phase lasts exactly [alpha * c], [alpha * w], [alpha * d];
    - phases are well-formed ([start <= finish], nothing before time 0);
    - precedence per worker: the computation starts no earlier than the
      send completes, the return starts no earlier than the computation
      completes (results are returned only after the {e whole}
      computation, as the paper requires);
    - one-port: no two master transfers (sends and returns together)
      overlap.  Boundary semantics are exact and explicit: {e touching}
      intervals — one finishing exactly when the next starts — do NOT
      overlap;
    - every activity fits in [[0, horizon]] (with [of_solved] schedules,
      [horizon = T = 1], the paper's deadline);
    - no worker appears twice. *)

module Q = Numeric.Rational

type violation =
  | Nonpositive_load of { worker : int }
  | Duplicate_worker of { worker : int }
  | Bad_phase of { worker : int; phase : string }
      (** [finish < start] or [start < 0] *)
  | Duration_mismatch of {
      worker : int;
      phase : string;
      expected : Q.t;
      actual : Q.t;
    }  (** phase length differs from [alpha * {c,w,d}] *)
  | Compute_before_receive of { worker : int }
  | Return_before_compute of { worker : int }
  | Outside_horizon of { worker : int; finish : Q.t; horizon : Q.t }
  | One_port_overlap of {
      worker1 : int;
      phase1 : string;
      worker2 : int;
      phase2 : string;
    }  (** two master transfers strictly overlap *)
  | Load_sum_mismatch of { claimed : Q.t; actual : Q.t }
      (** the claimed throughput is not the sum of the validated loads *)
  | Recovery_misses_deadline of { finish : Q.t; deadline : Q.t }
      (** the spliced recovery schedule ends after the campaign deadline *)
  | Recovery_accounting of { msg : string }
      (** banked/residual/planned/unscheduled bookkeeping inconsistent;
          also reused for steady-state resource-accounting mismatches *)
  | In_load of { load : string; violation : violation }
      (** a single-load invariant violated inside one load of a batch *)
  | Batch_size_mismatch of { load : string; expected : Q.t; actual : Q.t }
      (** a load's chunks do not sum to its size *)
  | Release_violated of {
      load : string;
      worker : int;
      start : Q.t;
      release : Q.t;
    }  (** data leaves the master before the load's release date *)
  | Worker_overlap of { worker : int; load1 : string; load2 : string }
      (** a worker computes two chunks at once (across loads) *)
  | Steady_negative_alloc of { load : string; worker : int }
  | Steady_overload of { resource : string; busy : Q.t; period : Q.t }
      (** the port or a worker is busy longer than the claimed period *)
  | Steady_slack of { period : Q.t; busy : Q.t }
      (** no resource is tight: the period cannot be minimal *)

val violation_to_string : Dls.Platform.t -> violation -> string
val pp_violation : Dls.Platform.t -> Format.formatter -> violation -> unit

(** [validate sched] checks every invariant above against
    [sched.horizon].  Returns all violations, in a deterministic
    order. *)
val validate : Dls.Schedule.t -> (unit, violation list) result

(** [validate_solved sol] realizes the LP solution as a schedule
    ({!Dls.Schedule.of_solved}), validates it against the paper's
    deadline [T = 1], and additionally checks that the claimed [rho]
    equals the sum of the validated [alpha]s. *)
val validate_solved : Dls.Lp_model.solved -> (unit, violation list) result

(** [validate_recovery ~deadline r] checks a re-planning recovery: the
    spliced schedule validates {e exactly} against the degraded platform
    it embeds ({!validate}), carries exactly [r.planned] load, finishes
    by [deadline] (its dates being relative to the splice point [r.at]),
    and the [banked]/[residual]/[planned]/[unscheduled] accounting is
    consistent. *)
val validate_recovery :
  deadline:Q.t -> Dls.Replan.recovery -> (unit, violation list) result

(** [validate_steady s] checks a steady-state solution: non-negative
    allocations, per-load row sums equal to the load sizes, port and
    per-worker busy times re-derived from the allocation and bounded by
    the period, and at least one resource tight (otherwise the period
    is not minimal). *)
val validate_steady :
  Dls.Steady_state.solved -> (unit, violation list) result

(** [validate_batch b] checks a multi-load batch end to end: per-load
    chunk accounting, every single-load invariant of each load's
    realized schedule on its induced platform ({!validate}, reported
    under {!In_load}), release dates, the {e global} one-port property
    across all loads' transfers, and per-worker compute exclusivity
    across loads. *)
val validate_batch : Dls.Steady_state.batch -> (unit, violation list) result

(** [errors_of_result platform r] renders a validation result as
    strings, for reporting. *)
val errors_of_result :
  Dls.Platform.t -> (unit, violation list) result -> (unit, string list) result
