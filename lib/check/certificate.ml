module Q = Numeric.Rational
open Q.Infix

let check (sol : Dls.Lp_model.solved) =
  let s = sol.Dls.Lp_model.scenario in
  let platform = s.Dls.Scenario.platform in
  let sigma1 = s.Dls.Scenario.sigma1 and sigma2 = s.Dls.Scenario.sigma2 in
  let n = Dls.Platform.size platform in
  let wk i = Dls.Platform.get platform i in
  let name i = (wk i).Dls.Platform.name in
  let alpha i = sol.Dls.Lp_model.alpha.(i) in
  let idle i = sol.Dls.Lp_model.idle.(i) in
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* Positions straight off the permutation arrays — no Scenario helper,
     no Lp_model code. *)
  let pos order =
    let t = Array.make n (-1) in
    Array.iteri (fun k i -> t.(i) <- k) order;
    t
  in
  let send_pos = pos sigma1 and return_pos = pos sigma2 in
  let enrolled i = send_pos.(i) >= 0 in
  for i = 0 to n - 1 do
    if enrolled i then begin
      if Q.sign (alpha i) < 0 then add "alpha(%s) is negative" (name i);
      if Q.sign (idle i) < 0 then add "idle(%s) is negative" (name i)
    end
    else begin
      if not (Q.is_zero (alpha i)) then
        add "%s is not enrolled but carries load %s" (name i) (Q.to_string (alpha i));
      if not (Q.is_zero (idle i)) then
        add "%s is not enrolled but has idle time %s" (name i) (Q.to_string (idle i))
    end
  done;
  let total = Q.sum_array sol.Dls.Lp_model.alpha in
  if total <>/ sol.Dls.Lp_model.rho then
    add "rho = %s but the loads sum to %s"
      (Q.to_string sol.Dls.Lp_model.rho)
      (Q.to_string total);
  (* Deadline row of LP (2) for each enrolled worker. *)
  Array.iter
    (fun i ->
      let lhs = ref (idle i) in
      Array.iter
        (fun j ->
          if send_pos.(j) <= send_pos.(i) then
            lhs := !lhs +/ (alpha j */ (wk j).Dls.Platform.c);
          if return_pos.(j) >= return_pos.(i) then
            lhs := !lhs +/ (alpha j */ (wk j).Dls.Platform.d))
        sigma1;
      lhs := !lhs +/ (alpha i */ (wk i).Dls.Platform.w);
      if !lhs >/ Q.one then
        add "deadline(%s) violated: chain %s > 1" (name i) (Q.to_string !lhs))
    sigma1;
  (match sol.Dls.Lp_model.model with
  | Dls.Lp_model.Two_port -> ()
  | Dls.Lp_model.One_port ->
    let used =
      Q.sum_array
        (Array.map
           (fun i -> alpha i */ ((wk i).Dls.Platform.c +/ (wk i).Dls.Platform.d))
           sigma1)
    in
    if used >/ Q.one then
      add "one-port capacity violated: %s > 1" (Q.to_string used));
  if !errs = [] then Ok () else Error (List.rev !errs)

let holds sol = check sol = Ok ()
