(** Deterministic pseudo-random numbers (xoshiro256++, seeded through
    SplitMix64).

    Self-contained so that every experiment in the repository is exactly
    reproducible from its seed, independent of the OCaml stdlib's
    generator version. *)

type t

(** [create ~seed] initializes a generator. Any seed is fine, including
    0. *)
val create : seed:int -> t

(** [split rng] derives an independently-seeded generator (for giving
    each experiment repetition its own stream). *)
val split : t -> t

(** [bits64 rng] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [float rng] is uniform in [0, 1) with 53-bit resolution. *)
val float : t -> float

(** [uniform rng ~lo ~hi] is uniform in [lo, hi). *)
val uniform : t -> lo:float -> hi:float -> float

(** [int_range rng ~lo ~hi] is uniform over the inclusive range. *)
val int_range : t -> lo:int -> hi:int -> int

(** [gaussian rng] is a standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** [lognormal rng ~sigma] is [exp (sigma * gaussian)] — a
    multiplicative jitter factor with median 1. *)
val lognormal : t -> sigma:float -> float
