type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option;  (** cached second Box-Muller deviate *)
}

(* SplitMix64, used only to spread a seed over the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 g =
  let open Int64 in
  let result = add (rotl (add g.s0 g.s3) 23) g.s0 in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; spare = None }

let float g =
  let mantissa = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float mantissa *. 0x1.0p-53

let uniform g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: empty range";
  lo +. ((hi -. lo) *. float g)

let int_range g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  let span = hi - lo + 1 in
  min hi (lo + int_of_float (float g *. float_of_int span))

let gaussian g =
  match g.spare with
  | Some v ->
    g.spare <- None;
    v
  | None ->
    (* Box-Muller; u1 bounded away from 0 so log is finite. *)
    let u1 = Float.max (float g) 1e-300 in
    let u2 = float g in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    g.spare <- Some (r *. sin theta);
    r *. cos theta

let lognormal g ~sigma = exp (sigma *. gaussian g)
