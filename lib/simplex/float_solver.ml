module Fast = Solver_core.Make (Field.Float)

type solution = { value : float; point : float array; pivots : int; basis : int array }
type outcome = Optimal of solution | Unbounded | Infeasible | Stalled

let solve ?max_pivots p =
  match Fast.solve ?max_pivots p with
  | Fast.Optimal s ->
    Optimal
      {
        value = s.Fast.value;
        point = s.Fast.point;
        pivots = s.Fast.pivots;
        basis = s.Fast.basis;
      }
  | Fast.Unbounded -> Unbounded
  | Fast.Infeasible -> Infeasible
  | Fast.Stalled -> Stalled

let repair ?max_pivots p ~basis = Fast.repair ?max_pivots p ~basis
