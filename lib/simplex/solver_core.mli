(** The simplex algorithm, generic over the scalar {!Field.S}.

    {!Solver} instantiates it with exact rationals (and re-exports a
    rational-typed API — use that one by default); {!Float_solver} with
    IEEE doubles.  The algorithm is the classical two-phase primal
    simplex with Bland's smallest-index rule; with exact arithmetic
    Bland's rule guarantees termination, with floats an iteration cap
    backstops tolerance-induced cycling. *)

module Make (F : Field.S) : sig
  type solution = {
    value : F.t;
    point : F.t array;
    pivots : int;
    basis : int array;
        (** the terminal basis: for each constraint row, the column index
            of its basic variable.  Columns are numbered original
            variables first, then slacks, then artificials.  Feed it to
            {!solve_with_basis} (of the exact instantiation) to certify
            or warm-start another solve of a structurally identical
            problem. *)
  }

  type outcome =
    | Optimal of solution
    | Unbounded
    | Infeasible
    | Stalled
        (** the pivot cap was reached — only reachable with inexact
            arithmetic *)

  (** Outcome of a warm-started solve (see {!solve_with_basis}). *)
  type warm_outcome =
    | Warm_optimal of solution * bool
        (** the flag is [true] when every allowed non-basic column had a
            {e strictly} negative reduced cost at termination: the
            optimal point is then provably unique, so the solution is
            bit-identical to what {!solve} returns.  [false] means
            alternate optima may exist and the caller must fall back to
            the canonical cold solve if it needs a deterministic
            answer. *)
    | Warm_unbounded
    | Warm_rejected
        (** the candidate basis was unusable: wrong length, out-of-range
            or duplicate columns, artificial columns, linearly dependent
            columns, or a primally infeasible basic point *)
    | Warm_stalled  (** the pivot cap was reached *)

  (** [solve ?max_pivots p] solves the (rational-typed) problem with
      this field's arithmetic. Default cap: 100000 pivots. *)
  val solve : ?max_pivots:int -> Problem.t -> outcome

  (** [solve_with_basis ?max_pivots p ~basis] starts the simplex from the
      given basis instead of from scratch: the basis columns are brought
      in with plain Gauss-Jordan pivots (a single factorization restricted
      to the candidate basis — no phase 1), primal feasibility is checked
      in this field's arithmetic, and Bland's rule then runs to
      termination.  Intended uses, with the exact instantiation:

      - {e basis lifting}: pass the terminal basis of a float solve; if
        the float solver ended on the true optimal basis, zero additional
        pivots are needed and the exact check certifies it;
      - {e warm starts}: pass the optimal basis of a neighbouring problem
        (consecutive enumeration permutations differ by a transposition),
        so Bland's rule starts near the optimum.

      Any defect in the candidate basis yields [Warm_rejected] — never a
      wrong answer — and the caller falls back to {!solve}. *)
  val solve_with_basis :
    ?max_pivots:int -> Problem.t -> basis:int array -> warm_outcome

  (** [repair ?max_pivots p ~basis] warm-{e repairs} a candidate basis
      that need not be primally feasible for [p] — the typical state of
      a neighbouring problem's optimal basis after a small parameter
      change.  The basis is installed like {!solve_with_basis}; dual
      simplex pivots then drive any negative right-hand sides out
      (leaving row by smallest basic index, entering column by the dual
      ratio test), and a final primal Bland pass clears remaining
      positive reduced costs.  Returns the terminal basis and the
      number of repair pivots spent (installation excluded), or [None]
      when the candidate is unusable, the budget (default 200 pivots)
      runs out, or the program is infeasible or unbounded from here.

      The result is a {e candidate} optimal basis, nothing more: with
      inexact arithmetic the terminal basis can be wrong, so callers
      must pass it through an exact certification
      ({!Solver.certify_basis}) before trusting it. *)
  val repair :
    ?max_pivots:int -> Problem.t -> basis:int array -> (int array * int) option
end
