(** Floating-point simplex: {!Solver_core.Make} over IEEE doubles.

    Roughly an order of magnitude faster than the exact solver on the
    scheduling LPs of this library, at the price of [1e-9]-tolerance
    pivoting: use it for large-scale throughput {e estimation}
    (dashboards, sweeps), or as the scout of the certified fast path —
    its terminal {!solution.basis} is lifted into the exact solver by
    [Lp_model.solve_fast], which accepts the answer only after an exact
    re-derivation.  Keep the exact solver for anything a schedule is
    built from.  Degenerate problems may [Stalled] out of the pivot cap
    instead of terminating. *)

type solution = {
  value : float;
  point : float array;
  pivots : int;
  basis : int array;
      (** terminal basis, suitable for exact lifting via
          {!Solver.solve_with_basis} *)
}

type outcome = Optimal of solution | Unbounded | Infeasible | Stalled

(** [solve ?max_pivots p] solves with float arithmetic (the problem
    statement itself stays exact). *)
val solve : ?max_pivots:int -> Problem.t -> outcome

(** [repair ?max_pivots p ~basis] is {!Solver_core.Make.repair} over
    floats: dual-simplex pivots restore primal feasibility of a
    neighbouring problem's optimal basis, a primal Bland pass finishes,
    and the terminal basis comes back with the repair pivot count.  The
    basis is a candidate only — certify it exactly
    ({!Solver.certify_basis}) before trusting it; [None] (unusable
    basis, pivot budget exhausted, infeasible/unbounded) means "fall
    back to a full solve", never "no optimum". *)
val repair :
  ?max_pivots:int -> Problem.t -> basis:int array -> (int array * int) option
