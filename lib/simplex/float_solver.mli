(** Floating-point simplex: {!Solver_core.Make} over IEEE doubles.

    Roughly an order of magnitude faster than the exact solver on the
    scheduling LPs of this library, at the price of [1e-9]-tolerance
    pivoting: use it for large-scale throughput {e estimation}
    (dashboards, sweeps), or as the scout of the certified fast path —
    its terminal {!solution.basis} is lifted into the exact solver by
    [Lp_model.solve_fast], which accepts the answer only after an exact
    re-derivation.  Keep the exact solver for anything a schedule is
    built from.  Degenerate problems may [Stalled] out of the pivot cap
    instead of terminating. *)

type solution = {
  value : float;
  point : float array;
  pivots : int;
  basis : int array;
      (** terminal basis, suitable for exact lifting via
          {!Solver.solve_with_basis} *)
}

type outcome = Optimal of solution | Unbounded | Infeasible | Stalled

(** [solve ?max_pivots p] solves with float arithmetic (the problem
    statement itself stays exact). *)
val solve : ?max_pivots:int -> Problem.t -> outcome
