module Q = Numeric.Rational
module Exact = Solver_core.Make (Field.Rational)

type solution = { value : Q.t; point : Q.t array; pivots : int; basis : int array }
type outcome = Optimal of solution | Unbounded | Infeasible

type warm_outcome =
  | Warm_optimal of solution * bool
  | Warm_unbounded
  | Warm_rejected

type error = Error_unbounded | Error_infeasible

exception Error of error

let string_of_error = function
  | Error_unbounded -> "unbounded problem"
  | Error_infeasible -> "infeasible problem"

let pp_error fmt e = Format.pp_print_string fmt (string_of_error e)

let of_core (s : Exact.solution) =
  {
    value = s.Exact.value;
    point = s.Exact.point;
    pivots = s.Exact.pivots;
    basis = s.Exact.basis;
  }

let solve p =
  (* With exact arithmetic Bland's rule terminates: the cap is a pure
     formality, set far beyond any reachable pivot count. *)
  match Exact.solve ~max_pivots:max_int p with
  | Exact.Optimal s -> Optimal (of_core s)
  | Exact.Unbounded -> Unbounded
  | Exact.Infeasible -> Infeasible
  | Exact.Stalled -> assert false

let solve_with_basis p ~basis =
  match Exact.solve_with_basis ~max_pivots:max_int p ~basis with
  | Exact.Warm_optimal (s, unique) -> Warm_optimal (of_core s, unique)
  | Exact.Warm_unbounded -> Warm_unbounded
  | Exact.Warm_rejected -> Warm_rejected
  | Exact.Warm_stalled -> assert false

let solve_result p =
  match solve p with
  | Optimal s -> Ok s
  | Unbounded -> Result.Error Error_unbounded
  | Infeasible -> Result.Error Error_infeasible

(* ------------------------------------------------------------------ *)
(* Restricted exact factorization of a candidate basis.

   [certify_basis] answers one question: is [basis] the unique optimal
   basis of [p]?  If so it returns the (unique) optimal solution without
   running the simplex method at all — two [m x m] exact linear solves
   and a pricing pass replace the full tableau, which matters because
   every tableau pivot costs a row of rational gcd normalizations.

   The arithmetic is fraction-free: each row of the basis system is
   scaled to integers (lcm of denominators) and eliminated with the
   Montante/Bareiss one-step method, which keeps every intermediate
   value an integer minor of the scaled matrix and needs no gcds.  All
   products are overflow-checked native ints; any overflow, singularity
   or failed tolerance simply rejects the basis (returns [None]), and
   the caller falls back to the canonical cold solve — so the routine
   can only ever trade speed, never correctness.

   Acceptance requires, in exact arithmetic:
   - primal feasibility: [B x_B = b] with [x_B >= 0];
   - complementary duals: [B^T y = c_B] (so basic reduced costs vanish);
   - strict dual feasibility: [c_j - y . A_j < 0] for every non-basic
     column, slack columns included (for a maximization) — except that a
     reduced cost of exactly zero is tolerated on a column that is a
     bit-exact duplicate (coefficients and zero objective) of a basic
     column.
   The strict inequalities prove the optimal point unique in every
   coordinate outside such duplicate pairs: an exchange between twins
   [A_j = A_k] moves weight one-for-one within the pair ([B^-1 A_j] is
   the basic twin's unit vector) and touches nothing else.  The
   scheduling LPs hit this exactly once per slack deadline row, whose
   idle variable duplicates the row's slack — and callers there never
   read either twin (idle is recomputed canonically), so the returned
   point is bit-identical to {!solve}'s wherever it is consumed. *)

exception Cert_reject

module I = Numeric.Integer

(* Overflow-checked native multiply, used only while scaling input rows
   (the elimination itself runs on big integers). *)
let mul_chk a b =
  let r = a * b in
  if a <> 0 && (r / a <> b || (a = -1 && b = min_int)) then raise Cert_reject;
  r

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let to_int_chk i =
  match I.to_int_opt i with
  | Some v when v <> min_int -> v
  | _ -> raise Cert_reject

(* Solve the [m x m] system given by [entry] (row, col) and [rhs] with
   fraction-free Gauss-Jordan elimination (Montante/Bareiss): each row is
   first scaled to integers (lcm of denominators, content divided out),
   then eliminated with the one-step identity
   [a_ij := (piv * a_ij - a_ik * a_kj) / prev_piv], whose divisions are
   exact — every intermediate value is a minor of the scaled matrix, so
   no rational normalization (and no gcd) ever runs.  The minors exceed
   the native word for the larger scheduling bases, hence big-integer
   arithmetic; entries stay at a couple of limbs, far cheaper than the
   equivalent tableau pivoting in [Q].

   Returns [(numerators, denominator)]: after the last step every pivot
   entry equals the same determinant value, so one denominator serves
   all components.  Raises [Cert_reject] on a singular matrix or on
   input rationals too large to scale into native ints. *)
let montante_solve m entry rhs =
  let mat =
    Array.init m (fun i ->
        let row = Array.init (m + 1) (fun j -> if j < m then entry i j else rhs i) in
        let l =
          Array.fold_left
            (fun acc q ->
              let d = to_int_chk (Q.den q) in
              mul_chk (acc / gcd_int acc d) d)
            1 row
        in
        let scaled =
          Array.map (fun q -> mul_chk (to_int_chk (Q.num q)) (l / to_int_chk (Q.den q))) row
        in
        let g = Array.fold_left (fun acc v -> gcd_int acc (abs v)) 0 scaled in
        let g = if g > 1 then g else 1 in
        Array.map (fun v -> I.of_int (v / g)) scaled)
  in
  let rowof = Array.make m (-1) in
  let claimed = Array.make m false in
  let prev = ref I.one in
  for k = 0 to m - 1 do
    let r = ref (-1) in
    (try
       for i = 0 to m - 1 do
         if (not claimed.(i)) && not (I.is_zero mat.(i).(k)) then begin
           r := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !r < 0 then raise Cert_reject;
    let r = !r in
    rowof.(k) <- r;
    claimed.(r) <- true;
    let piv = mat.(r).(k) in
    for i = 0 to m - 1 do
      if i <> r then begin
        let f = mat.(i).(k) in
        let fz = I.is_zero f in
        for j = 0 to m do
          if j <> k then
            mat.(i).(j) <-
              (let scaled = I.mul piv mat.(i).(j) in
               let v = if fz then scaled else I.sub scaled (I.mul f mat.(r).(j)) in
               fst (I.divmod v !prev))
        done;
        mat.(i).(k) <- I.zero
      end
    done;
    prev := piv
  done;
  let det = mat.(rowof.(m - 1)).(m - 1) in
  (Array.init m (fun k -> mat.(rowof.(k)).(m)), det)

(* Small float LU solve used as a pre-screen: hopeless bases (wrong
   length aside: infeasible, suboptimal, or sitting on alternate optima)
   are rejected for the cost of a few hundred float ops, before any
   exact arithmetic is spent on them. *)
let float_solve m entry rhs =
  let a = Array.init m (fun i -> Array.init m (entry i)) in
  let x = Array.init m rhs in
  let piv_order = Array.init m Fun.id in
  for k = 0 to m - 1 do
    let best = ref k and best_mag = ref (Float.abs a.(piv_order.(k)).(k)) in
    for i = k + 1 to m - 1 do
      let mag = Float.abs a.(piv_order.(i)).(k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < 1e-12 then raise Cert_reject;
    let tmp = piv_order.(k) in
    piv_order.(k) <- piv_order.(!best);
    piv_order.(!best) <- tmp;
    let pr = piv_order.(k) in
    for i = k + 1 to m - 1 do
      let ri = piv_order.(i) in
      let f = a.(ri).(k) /. a.(pr).(k) in
      if f <> 0.0 then begin
        for j = k to m - 1 do
          a.(ri).(j) <- a.(ri).(j) -. (f *. a.(pr).(j))
        done;
        x.(ri) <- x.(ri) -. (f *. x.(pr))
      end
    done
  done;
  let out = Array.make m 0.0 in
  for k = m - 1 downto 0 do
    let r = piv_order.(k) in
    let s = ref x.(r) in
    for j = k + 1 to m - 1 do
      s := !s -. (a.(r).(j) *. out.(j))
    done;
    out.(k) <- !s /. a.(r).(k)
  done;
  out

let certify_basis (p : Problem.t) ~basis =
  let n = Problem.num_vars p in
  let m = Problem.num_constraints p in
  let cs = p.Problem.constraints in
  try
    (* Supported shape: every constraint [<=] with non-negative rhs (the
       scheduling LPs; the slack basis is feasible and column [n + i] is
       row [i]'s slack).  Anything else falls back to the cold solve. *)
    if
      not
        (Array.for_all
           (fun (c : Problem.constr) ->
             c.Problem.relation = Problem.Le && Q.sign c.Problem.rhs >= 0)
           cs)
    then raise Cert_reject;
    if Array.length basis <> m then raise Cert_reject;
    let seen = Array.make (n + m) false in
    Array.iter
      (fun j ->
        if j < 0 || j >= n + m || seen.(j) then raise Cert_reject;
        seen.(j) <- true)
      basis;
    let basic = seen in
    (* Column [j] of the standard-form matrix, at row [i]. *)
    let col i j =
      if j < n then cs.(i).Problem.coeffs.(j)
      else if j - n = i then Q.one
      else Q.zero
    in
    let sign_q =
      match p.Problem.direction with
      | Problem.Maximize -> Q.one
      | Problem.Minimize -> Q.minus_one
    in
    let obj j = if j < n then Q.mul sign_q p.Problem.objective.(j) else Q.zero in
    let b_entry i k = col i basis.(k) in
    let bt_entry k i = col i basis.(k) in
    (* A zero reduced cost is tolerable only on an exact duplicate of a
       basic zero-objective column (see the header): anything else opens
       a genuine alternate-optimum direction and rejects the basis. *)
    let duplicate_of_basic j =
      Q.sign (obj j) = 0
      && Array.exists
           (fun k ->
             k <> j
             && Q.sign (obj k) = 0
             &&
             let rec eq i = i >= m || (Q.equal (col i k) (col i j) && eq (i + 1)) in
             eq 0)
           basis
    in
    (* -------- float screen -------- *)
    let fcol i j = Q.to_float (col i j) in
    let fx =
      float_solve m
        (fun i k -> fcol i basis.(k))
        (fun i -> Q.to_float cs.(i).Problem.rhs)
    in
    Array.iter (fun v -> if v < -1e-7 then raise Cert_reject) fx;
    let fy =
      float_solve m
        (fun k i -> fcol i basis.(k))
        (fun k -> Q.to_float (obj basis.(k)))
    in
    for j = 0 to n + m - 1 do
      if not basic.(j) then begin
        let r = ref (Q.to_float (obj j)) in
        for i = 0 to m - 1 do
          let a = fcol i j in
          if a <> 0.0 then r := !r -. (fy.(i) *. a)
        done;
        (* Near-zero reduced costs mean alternate optima (or a wrong
           basis): no certificate is possible, except on a twin column
           whose exact reduced cost is structurally zero. *)
        if !r > -1e-7 && not (duplicate_of_basic j) then raise Cert_reject
      end
    done;
    (* -------- exact certificate -------- *)
    let xs, xden = montante_solve m b_entry (fun i -> cs.(i).Problem.rhs) in
    let xsign = I.sign xden in
    Array.iter (fun v -> if I.sign v * xsign < 0 then raise Cert_reject) xs;
    let ys, yden = montante_solve m bt_entry (fun k -> obj basis.(k)) in
    let ysign = I.sign yden in
    (* Strict dual feasibility, checked without any rational arithmetic:
       [r_j = c_j - y . A_j < 0] with [y_i = ys_i / yden].  Multiplying
       by [yden] and by the column's denominator lcm [l] (both nonzero)
       turns the test into a pure integer sign:
       [sign(l * num(c_j)/den(c_j) * yden - sum_i ys_i * (l * a_ij))
        * sign(yden) < 0]. *)
    let reduced_sign j =
      let l = ref (to_int_chk (Q.den (obj j))) in
      for i = 0 to m - 1 do
        let d = to_int_chk (Q.den (col i j)) in
        l := mul_chk (!l / gcd_int !l d) d
      done;
      let l = !l in
      let cj = obj j in
      let acc =
        ref (I.mul (I.of_int (mul_chk (to_int_chk (Q.num cj)) (l / to_int_chk (Q.den cj)))) yden)
      in
      for i = 0 to m - 1 do
        let a = col i j in
        if Q.sign a <> 0 then
          acc :=
            I.sub !acc
              (I.mul ys.(i)
                 (I.of_int (mul_chk (to_int_chk (Q.num a)) (l / to_int_chk (Q.den a)))))
      done;
      I.sign !acc * ysign
    in
    for j = 0 to n + m - 1 do
      if not basic.(j) then begin
        let s = reduced_sign j in
        if s > 0 || (s = 0 && not (duplicate_of_basic j)) then raise Cert_reject
      end
    done;
    (* -------- assemble the unique optimum -------- *)
    let point = Array.make n Q.zero in
    Array.iteri
      (fun k j -> if j < n then point.(j) <- Q.make xs.(k) xden)
      basis;
    let value = ref Q.zero in
    Array.iteri
      (fun j c ->
        if Q.sign c <> 0 && Q.sign point.(j) <> 0 then
          value := Q.add !value (Q.mul c point.(j)))
      p.Problem.objective;
    Some { value = !value; point; pivots = 0; basis = Array.copy basis }
  with Cert_reject -> None

let solve_exn p =
  match solve_result p with Ok s -> s | Result.Error e -> raise (Error e)

let pp_outcome fmt = function
  | Unbounded -> Format.pp_print_string fmt "unbounded"
  | Infeasible -> Format.pp_print_string fmt "infeasible"
  | Optimal s ->
    Format.fprintf fmt "@[optimal %a at (%a) in %d pivots@]" Q.pp s.value
      (Format.pp_print_array
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         Q.pp)
      s.point s.pivots
