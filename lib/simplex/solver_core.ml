module Make (F : Field.S) = struct
  type solution = {
    value : F.t;
    point : F.t array;
    pivots : int;
    basis : int array;
  }

  type outcome = Optimal of solution | Unbounded | Infeasible | Stalled

  type warm_outcome =
    | Warm_optimal of solution * bool
    | Warm_unbounded
    | Warm_rejected
    | Warm_stalled

  exception Pivot_cap

  (* Dense tableau over F; see Solver for the layout description. *)
  type tableau = {
    rows : F.t array array;
    obj : F.t array;
    basis : int array;
    allowed : bool array;
    total : int;
    max_pivots : int;
    mutable pivots : int;
  }

  let pivot t ~row ~col =
    if t.pivots >= t.max_pivots then raise Pivot_cap;
    let m = Array.length t.rows in
    let width = t.total + 1 in
    let pr = t.rows.(row) in
    let inv_p = F.inv pr.(col) in
    for j = 0 to width - 1 do
      pr.(j) <- F.mul pr.(j) inv_p
    done;
    let eliminate target =
      let f = target.(col) in
      if F.sign f <> 0 then
        for j = 0 to width - 1 do
          target.(j) <- F.sub target.(j) (F.mul f pr.(j))
        done
    in
    for i = 0 to m - 1 do
      if i <> row then eliminate t.rows.(i)
    done;
    eliminate t.obj;
    t.basis.(row) <- col;
    t.pivots <- t.pivots + 1

  let rec optimize t =
    let m = Array.length t.rows in
    let entering = ref (-1) in
    (try
       for j = 0 to t.total - 1 do
         if t.allowed.(j) && F.sign t.obj.(j) > 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref F.zero in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if F.sign a > 0 then begin
          let ratio = F.div t.rows.(i).(t.total) a in
          let better =
            !best_row < 0
            || F.compare ratio !best_ratio < 0
            || (F.compare ratio !best_ratio = 0 && t.basis.(i) < t.basis.(!best_row))
          in
          if better then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        optimize t
      end
    end

  let install_objective t c =
    Array.blit c 0 t.obj 0 (t.total + 1);
    Array.iteri
      (fun i bv ->
        let f = t.obj.(bv) in
        if F.sign f <> 0 then begin
          let row = t.rows.(i) in
          for j = 0 to t.total do
            t.obj.(j) <- F.sub t.obj.(j) (F.mul f row.(j))
          done
        end)
      t.basis

  (* Standard-form tableau shared by the cold and warm entry points. *)
  type prepared = {
    t : tableau;
    n : int;  (* original variables *)
    n_slack : int;
    n_art : int;
    maximize_sign : F.t;
  }

  let prepare ~max_pivots (p : Problem.t) =
    let n = Problem.num_vars p in
    let m = Problem.num_constraints p in
    let module Q = Numeric.Rational in
    let oriented =
      Array.map
        (fun (c : Problem.constr) ->
          if Q.sign c.Problem.rhs < 0 then
            let coeffs = Array.map Q.neg c.Problem.coeffs in
            let relation =
              match c.Problem.relation with
              | Problem.Le -> Problem.Ge
              | Problem.Ge -> Problem.Le
              | Problem.Eq -> Problem.Eq
            in
            Problem.constr coeffs relation (Q.neg c.Problem.rhs)
          else c)
        p.Problem.constraints
    in
    let n_slack =
      Array.fold_left
        (fun acc c ->
          match c.Problem.relation with Problem.Eq -> acc | _ -> acc + 1)
        0 oriented
    in
    let n_art =
      Array.fold_left
        (fun acc c ->
          match c.Problem.relation with Problem.Le -> acc | _ -> acc + 1)
        0 oriented
    in
    let total = n + n_slack + n_art in
    let rows = Array.init m (fun _ -> Array.make (total + 1) F.zero) in
    let basis = Array.make m (-1) in
    let next_slack = ref n in
    let next_art = ref (n + n_slack) in
    Array.iteri
      (fun i c ->
        Array.iteri (fun j q -> rows.(i).(j) <- F.of_rational q) c.Problem.coeffs;
        rows.(i).(total) <- F.of_rational c.Problem.rhs;
        (match c.Problem.relation with
        | Problem.Le ->
          rows.(i).(!next_slack) <- F.one;
          basis.(i) <- !next_slack;
          incr next_slack
        | Problem.Ge ->
          rows.(i).(!next_slack) <- F.minus_one;
          incr next_slack;
          rows.(i).(!next_art) <- F.one;
          basis.(i) <- !next_art;
          incr next_art
        | Problem.Eq ->
          rows.(i).(!next_art) <- F.one;
          basis.(i) <- !next_art;
          incr next_art))
      oriented;
    let t =
      {
        rows;
        obj = Array.make (total + 1) F.zero;
        basis;
        allowed = Array.make total true;
        total;
        max_pivots;
        pivots = 0;
      }
    in
    let maximize_sign =
      match p.Problem.direction with
      | Problem.Maximize -> F.one
      | Problem.Minimize -> F.minus_one
    in
    { t; n; n_slack; n_art; maximize_sign }

  let phase2_objective pr (p : Problem.t) =
    let c = Array.make (pr.t.total + 1) F.zero in
    Array.iteri
      (fun j v -> c.(j) <- F.mul pr.maximize_sign (F.of_rational v))
      p.Problem.objective;
    c

  let finish pr =
    let t = pr.t in
    let point = Array.make pr.n F.zero in
    Array.iteri
      (fun i bv -> if bv < pr.n then point.(bv) <- t.rows.(i).(t.total))
      t.basis;
    let value = F.mul pr.maximize_sign (F.neg t.obj.(t.total)) in
    Optimal
      { value; point; pivots = t.pivots; basis = Array.copy t.basis }

  let solve ?(max_pivots = 100_000) (p : Problem.t) =
    let pr = prepare ~max_pivots p in
    let t = pr.t in
    let n = pr.n and n_slack = pr.n_slack and n_art = pr.n_art in
    let total = t.total in
    try
      if n_art = 0 then begin
        install_objective t (phase2_objective pr p);
        match optimize t with `Optimal -> finish pr | `Unbounded -> Unbounded
      end
      else begin
        let c1 = Array.make (total + 1) F.zero in
        for j = n + n_slack to total - 1 do
          c1.(j) <- F.minus_one
        done;
        install_objective t c1;
        (match optimize t with
        | `Unbounded -> assert false
        | `Optimal -> ());
        if F.sign (F.neg t.obj.(total)) < 0 then Infeasible
        else begin
          Array.iteri
            (fun i bv ->
              if bv >= n + n_slack then begin
                let col = ref (-1) in
                (try
                   for j = 0 to n + n_slack - 1 do
                     if F.sign t.rows.(i).(j) <> 0 then begin
                       col := j;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !col >= 0 then pivot t ~row:i ~col:!col
              end)
            t.basis;
          for j = n + n_slack to total - 1 do
            t.allowed.(j) <- false
          done;
          install_objective t (phase2_objective pr p);
          match optimize t with `Optimal -> finish pr | `Unbounded -> Unbounded
        end
      end
    with Pivot_cap -> Stalled

  (* Bring the columns of [target] into the basis with plain Gauss-Jordan
     pivots.  Rows whose initial basic column already belongs to the
     target keep it; every remaining target column is pivoted onto the
     first free row where its coefficient is nonzero.  Returns [false]
     when the columns are linearly dependent (no such row exists). *)
  let install_basis t target =
    let m = Array.length t.rows in
    let in_target = Array.make t.total false in
    Array.iter (fun c -> in_target.(c) <- true) target;
    let claimed = Array.make m false in
    let placed = Array.make t.total false in
    Array.iteri
      (fun i bv ->
        if in_target.(bv) && not placed.(bv) then begin
          claimed.(i) <- true;
          placed.(bv) <- true
        end)
      t.basis;
    try
      Array.iter
        (fun col ->
          if not placed.(col) then begin
            let row = ref (-1) in
            (try
               for i = 0 to m - 1 do
                 if (not claimed.(i)) && F.sign t.rows.(i).(col) <> 0 then begin
                   row := i;
                   raise Exit
                 end
               done
             with Exit -> ());
            if !row < 0 then raise Not_found;
            pivot t ~row:!row ~col;
            claimed.(!row) <- true;
            placed.(col) <- true
          end)
        target;
      true
    with Not_found -> false

  (* Shared candidate-basis validation: [m] distinct structural
     (original or slack) columns — artificials never appear in a
     feasible basis of the real problem. *)
  let basis_shape_ok t ~structural ~m basis =
    Array.length basis = m
    &&
    let seen = Array.make t.total false in
    Array.for_all
      (fun c ->
        c >= 0 && c < structural
        &&
        if seen.(c) then false
        else begin
          seen.(c) <- true;
          true
        end)
      basis

  let solve_with_basis ?(max_pivots = 100_000) (p : Problem.t) ~basis =
    let pr = prepare ~max_pivots p in
    let t = pr.t in
    let m = Array.length t.rows in
    let structural = pr.n + pr.n_slack in
    if not (basis_shape_ok t ~structural ~m basis) then Warm_rejected
    else
      try
        if not (install_basis t basis) then Warm_rejected
        else begin
          (* Exact primal feasibility of the candidate basis. *)
          let feasible = ref true in
          for i = 0 to m - 1 do
            if F.sign t.rows.(i).(t.total) < 0 then feasible := false
          done;
          if not !feasible then Warm_rejected
          else begin
            for j = structural to t.total - 1 do
              t.allowed.(j) <- false
            done;
            install_objective t (phase2_objective pr p);
            match optimize t with
            | `Unbounded -> Warm_unbounded
            | `Optimal ->
              (* Strict dual feasibility: every allowed non-basic column
                 must have a strictly negative reduced cost.  This proves
                 the optimal point is unique, hence equal to whatever the
                 cold solve would return — the caller may then substitute
                 this solution for the canonical one. *)
              let basic = Array.make t.total false in
              Array.iter (fun bv -> basic.(bv) <- true) t.basis;
              let unique = ref true in
              for j = 0 to t.total - 1 do
                if t.allowed.(j) && (not basic.(j)) && F.sign t.obj.(j) = 0
                then unique := false
              done;
              (match finish pr with
              | Optimal s -> Warm_optimal (s, !unique)
              | _ -> assert false)
          end
        end
      with Pivot_cap -> Warm_stalled

  (* Warm *repair*.  Unlike [solve_with_basis], a primally infeasible
     installed basis is not grounds for rejection: that is exactly the
     state a neighbouring problem's optimal basis lands in after the
     right-hand side or a constraint row moved.  Dual-simplex pivots
     drive the negative right-hand sides out first (leaving row by
     Bland's smallest-basic-index among negative rows; entering column
     by the dual ratio test on [a_rj < 0], smallest index on ties), and
     the ordinary primal Bland pass then clears any remaining positive
     reduced costs.  The dual ratio test is only a heuristic here —
     nothing downstream trusts the terminal basis without certifying
     it, so a "wrong" pivot choice costs a fallback, never a wrong
     answer.

     Returns the terminal basis plus the number of repair pivots (dual
     and primal, excluding the ones spent installing the candidate), or
     [None] when the candidate is unusable, the pivot budget runs out,
     or the program is infeasible or unbounded from here. *)
  let repair ?(max_pivots = 200) (p : Problem.t) ~basis =
    let m = Problem.num_constraints p in
    (* Installing the candidate costs up to [m] Gauss-Jordan pivots on
       top of the repair budget proper. *)
    let pr = prepare ~max_pivots:(max_pivots + m) p in
    let t = pr.t in
    let structural = pr.n + pr.n_slack in
    if not (basis_shape_ok t ~structural ~m basis) then None
    else
      try
        if not (install_basis t basis) then None
        else begin
          for j = structural to t.total - 1 do
            t.allowed.(j) <- false
          done;
          install_objective t (phase2_objective pr p);
          let installed = t.pivots in
          let basic = Array.make t.total false in
          let rec dual () =
            let row = ref (-1) in
            for i = 0 to m - 1 do
              if
                F.sign t.rows.(i).(t.total) < 0
                && (!row < 0 || t.basis.(i) < t.basis.(!row))
              then row := i
            done;
            if !row < 0 then `Feasible
            else begin
              let r = !row in
              Array.fill basic 0 t.total false;
              Array.iter (fun bv -> basic.(bv) <- true) t.basis;
              let col = ref (-1) in
              let best = ref F.zero in
              for j = 0 to t.total - 1 do
                if t.allowed.(j) && not basic.(j) then begin
                  let a = t.rows.(r).(j) in
                  if F.sign a < 0 then begin
                    let ratio = F.div t.obj.(j) a in
                    if !col < 0 || F.compare ratio !best < 0 then begin
                      col := j;
                      best := ratio
                    end
                  end
                end
              done;
              if !col < 0 then `Stuck
              else begin
                pivot t ~row:r ~col:!col;
                dual ()
              end
            end
          in
          match dual () with
          | `Stuck -> None
          | `Feasible -> (
            match optimize t with
            | `Unbounded -> None
            | `Optimal -> Some (Array.copy t.basis, t.pivots - installed))
        end
      with Pivot_cap -> None
end
