(** Exact two-phase primal simplex over arbitrary-precision rationals.

    Pivoting uses Bland's smallest-index rule, which guarantees
    termination even on degenerate problems (the scheduling LPs of the
    paper are routinely degenerate: several workers finish
    simultaneously).  Because the arithmetic is exact, the returned
    optimum is a true vertex of the feasible polyhedron — the structural
    arguments of the paper (Lemma 1: "at most one constraint slack")
    apply to it literally. *)

module Q = Numeric.Rational

type solution = {
  value : Q.t;  (** optimal objective value, in the problem's direction *)
  point : Q.t array;  (** one optimal assignment of the decision variables *)
  pivots : int;  (** number of simplex pivots performed (both phases) *)
  basis : int array;
      (** terminal basis (column index per constraint row); reusable as a
          warm start or a certification target via {!solve_with_basis} *)
}

type outcome = Optimal of solution | Unbounded | Infeasible

(** Outcome of {!solve_with_basis}; mirrors
    {!Solver_core.Make.warm_outcome} minus [Warm_stalled], which is
    unreachable with exact arithmetic. *)
type warm_outcome =
  | Warm_optimal of solution * bool
      (** [true]: strictly negative reduced costs on all non-basic
          columns, so the optimum is unique and the solution is
          bit-identical to {!solve}'s.  [false]: alternate optima may
          exist — fall back to {!solve} for a canonical answer. *)
  | Warm_unbounded
  | Warm_rejected  (** unusable basis; no answer implied — use {!solve} *)

(** The two ways a linear program can fail to have an optimum.  (The
    [Error_] prefix keeps the constructors from clashing with
    {!outcome}'s.) *)
type error = Error_unbounded | Error_infeasible

(** Raised by {!solve_exn}; carries the typed failure instead of a
    [Failure] string. *)
exception Error of error

val string_of_error : error -> string
val pp_error : Format.formatter -> error -> unit

(** [solve p] solves the linear program exactly. *)
val solve : Problem.t -> outcome

(** [solve_with_basis p ~basis] factorizes the candidate basis exactly
    and re-optimizes from it (zero pivots when the basis is already
    optimal).  Use with a float solver's terminal basis to certify a
    fast solve, or with a neighbouring problem's optimal basis as a warm
    start.  A defective basis returns [Warm_rejected], never a wrong
    answer. *)
val solve_with_basis : Problem.t -> basis:int array -> warm_outcome

(** [certify_basis p ~basis] checks whether [basis] is the {e unique}
    optimal basis of [p] using a single exact factorization restricted
    to the basis columns — two [m x m] fraction-free integer
    eliminations (Montante/Bareiss) and a pricing pass — instead of
    tableau pivoting.  [Some sol] is returned only when, in exact
    arithmetic, the basis is primal feasible and every non-basic column
    has a strictly negative reduced cost — tolerating a reduced cost of
    exactly zero only on a column that duplicates (coefficients and zero
    objective) a basic column, since the exchange it permits moves
    weight strictly within the duplicate pair.  [sol] is then optimal
    and bit-identical to {!solve}'s answer in the value and in every
    point coordinate outside such pairs (in particular in every
    coordinate with a non-zero objective), with [pivots = 0].

    [None] means "no certificate", never "no optimum": the basis may be
    wrong, the optimum non-unique, the problem shape unsupported (only
    all-[<=] programs with non-negative right-hand sides are handled),
    or an intermediate value may have left the native integer range.
    Callers must fall back to {!solve}.  A cheap float screen rejects
    hopeless bases before any exact arithmetic is spent. *)
val certify_basis : Problem.t -> basis:int array -> solution option

(** [solve_result p] is {!solve} in [result] form. *)
val solve_result : Problem.t -> (solution, error) result

(** [solve_exn p] extracts the optimal solution.
    @raise Error when the problem is unbounded or infeasible. *)
val solve_exn : Problem.t -> solution

val pp_outcome : Format.formatter -> outcome -> unit
