module Q = Numeric.Rational

type machine = { flops_per_sec : int; bytes_per_sec : int }

(* Calibrated against the paper's Figure 14: a baseline node multiplies
   400x400 matrices at naive-loop speed (~750 MFLOPS on a P4) over a
   gigabit link.  With these rates the one-worker campaign of Fig. 14
   takes ~22 s and resource selection flips exactly as in the paper
   (worker 4 dropped at x=1, marginally enrolled at x=3). *)
let gdsdmi = { flops_per_sec = 750_000_000; bytes_per_sec = 125_000_000 }
let input_bytes ~n = 16 * n * n
let output_bytes ~n = 8 * n * n
let flops ~n = 2 * n * n * n

let costs machine ~n ~comm_factor ~comp_factor =
  if n <= 0 then invalid_arg "Workload.costs: matrix size must be positive";
  if comm_factor <= 0 || comp_factor <= 0 then
    invalid_arg "Workload.costs: speed factors must be positive";
  let c = Q.of_ints (input_bytes ~n) (machine.bytes_per_sec * comm_factor) in
  let d = Q.of_ints (output_bytes ~n) (machine.bytes_per_sec * comm_factor) in
  let w = Q.of_ints (flops ~n) (machine.flops_per_sec * comp_factor) in
  (c, w, d)

let platform machine ~n ~comm ~comp =
  if Array.length comm <> Array.length comp then
    invalid_arg "Workload.platform: factor arrays differ in length";
  Dls.Platform.make_exn
    (List.init (Array.length comm) (fun i ->
         let c, w, d = costs machine ~n ~comm_factor:comm.(i) ~comp_factor:comp.(i) in
         Dls.Platform.worker ~c ~w ~d ()))
