(** Deterministic pseudo-random numbers (xoshiro256++, seeded through
    SplitMix64).

    This is an alias of {!Numeric.Prng} — the implementation moved down
    so that fault-plan generation ({!Dls.Faults}) and the fault fuzzer
    ({!Check.Fuzz}) can share the exact same stream; [Cluster.Prng.t]
    and [Numeric.Prng.t] are the same type. *)

include module type of struct
  include Numeric.Prng
end
