(* The generator now lives in [Numeric.Prng] so that the lower layers
   (fault-plan generation in [Dls.Faults], the fault fuzzer in
   [Check.Fuzz]) can draw from the same deterministic stream without
   depending on this library.  This module re-exports it unchanged, so
   existing [Cluster.Prng] callers keep working and the types are
   interchangeable. *)
include Numeric.Prng
