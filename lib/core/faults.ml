module Q = Numeric.Rational
open Q.Infix

type fault =
  | Slowdown of { worker : int; factor : Q.t; from_ : Q.t }
  | Degrade of { worker : int; factor : Q.t; from_ : Q.t }
  | Crash of { worker : int; at : Q.t }
  | Stall of { worker : int; at : Q.t; duration : Q.t }

type plan = fault list (* sorted by onset, stable *)

let onset = function
  | Slowdown { from_; _ } | Degrade { from_; _ } -> from_
  | Crash { at; _ } | Stall { at; _ } -> at

let worker_of = function
  | Slowdown { worker; _ } | Degrade { worker; _ } | Crash { worker; _ }
  | Stall { worker; _ } ->
    worker

let fault_to_string f =
  let q = Q.to_string in
  match f with
  | Slowdown { worker; factor; from_ } ->
    Printf.sprintf "slowdown %d %s %s" worker (q factor) (q from_)
  | Degrade { worker; factor; from_ } ->
    Printf.sprintf "degrade %d %s %s" worker (q factor) (q from_)
  | Crash { worker; at } -> Printf.sprintf "crash %d %s" worker (q at)
  | Stall { worker; at; duration } ->
    Printf.sprintf "stall %d %s %s" worker (q at) (q duration)

let check_fault f =
  let err fmt = Errors.invalid fmt in
  if worker_of f < 0 then err "fault %s: negative worker index" (fault_to_string f)
  else if Q.sign (onset f) < 0 then
    err "fault %s: negative onset time" (fault_to_string f)
  else
    match f with
    | Slowdown { factor; _ } | Degrade { factor; _ } ->
      if Q.sign factor <= 0 then
        err "fault %s: factor must be positive" (fault_to_string f)
      else if factor </ Q.one then
        err "fault %s: factor below 1 would be a speed-up, not a fault"
          (fault_to_string f)
      else Ok ()
    | Stall { duration; _ } ->
      if Q.sign duration <= 0 then
        err "fault %s: stall duration must be positive" (fault_to_string f)
      else Ok ()
    | Crash _ -> Ok ()

let ( let* ) = Result.bind

let make faults =
  let rec check = function
    | [] -> Ok ()
    | f :: rest ->
      let* () = check_fault f in
      check rest
  in
  let* () = check faults in
  Ok (List.stable_sort (fun a b -> Q.compare (onset a) (onset b)) faults)

let make_exn faults = Errors.get_exn (make faults)
let empty : plan = []
let is_empty (p : plan) = p = []
let faults (p : plan) = p
let first_onset = function [] -> None | f :: _ -> Some (onset f)

let validate_for platform (p : plan) =
  let n = Platform.size platform in
  let rec go = function
    | [] -> Ok ()
    | f :: rest ->
      if worker_of f >= n then
        Errors.invalid "fault %s: worker index out of range (platform has %d)"
          (fault_to_string f) n
      else go rest
  in
  go p

let sorted_unique l = List.sort_uniq compare l

let crashed (p : plan) =
  sorted_unique (List.filter_map (function Crash { worker; _ } -> Some worker | _ -> None) p)

let faulty_workers (p : plan) = sorted_unique (List.map worker_of p)

let survivors platform (p : plan) =
  let dead = crashed p in
  List.filter
    (fun i -> not (List.mem i dead))
    (List.init (Platform.size platform) Fun.id)

(* The steady-state worst case: every slowdown/degradation applied in
   full, whatever its onset.  This is the platform the re-planner plans
   against and the one recovery schedules validate under; execution can
   only be (weakly) faster before late onsets, except for transient
   stalls, which the hedged replay accounts for separately. *)
let degraded_platform platform (p : plan) =
  let n = Platform.size platform in
  let comm = Array.make n Q.one and comp = Array.make n Q.one in
  List.iter
    (function
      | Slowdown { worker; factor; _ } -> comp.(worker) <- comp.(worker) */ factor
      | Degrade { worker; factor; _ } -> comm.(worker) <- comm.(worker) */ factor
      | Crash _ | Stall _ -> ())
    p;
  Platform.make_exn
    (List.init n (fun i ->
         let wk = Platform.get platform i in
         Platform.worker ~name:wk.Platform.name
           ~c:(wk.Platform.c */ comm.(i))
           ~w:(wk.Platform.w */ comp.(i))
           ~d:(wk.Platform.d */ comm.(i))
           ()))

(* ------------------------------------------------------------------ *)
(* Exact piecewise-rate progress integration                           *)
(* ------------------------------------------------------------------ *)

type activity = Send_to of int | Compute_on of int | Return_from of int

let activity_worker = function
  | Send_to i | Compute_on i | Return_from i -> i

(* Which faults bear on an activity:
   - [Slowdown] stretches computations;
   - [Degrade] stretches transfers in both directions (c and d);
   - [Stall] freezes transfers during its window;
   - [Crash] freezes the worker's computation and its result transfer
     forever.  A send {e towards} a crashed worker still occupies the
     port at nominal speed: the one-port master pushes the data without
     an acknowledgement, which is the pessimistic (and simple) model. *)
let relevant plan act =
  let j = activity_worker act in
  let is_comm = match act with Compute_on _ -> false | _ -> true in
  List.filter_map
    (fun f ->
      if worker_of f <> j then None
      else
        match (f, act) with
        | Slowdown { factor; from_; _ }, Compute_on _ -> Some (`Factor (from_, factor))
        | Slowdown _, _ -> None
        | Degrade { factor; from_; _ }, _ when is_comm -> Some (`Factor (from_, factor))
        | Degrade _, _ -> None
        | Stall { at; duration; _ }, _ when is_comm -> Some (`Window (at, at +/ duration))
        | Stall _, _ -> None
        | Crash { at; _ }, (Compute_on _ | Return_from _) -> Some (`Forever at)
        | Crash _, Send_to _ -> None)
    plan

let finish_time platform plan act ~start ~load =
  if Q.sign load < 0 then invalid_arg "Faults.finish_time: negative load";
  let wk = Platform.get platform (activity_worker act) in
  let unit_cost =
    match act with
    | Send_to _ -> wk.Platform.c
    | Compute_on _ -> wk.Platform.w
    | Return_from _ -> wk.Platform.d
  in
  let need = load */ unit_cost in
  if Q.is_zero need then Some start
  else begin
    let events = relevant plan act in
    (* Every instant where the effective rate may change. *)
    let breakpoints =
      List.sort_uniq Q.compare
        (List.concat_map
           (function
             | `Factor (t, _) -> [ t ]
             | `Window (t0, t1) -> [ t0; t1 ]
             | `Forever t -> [ t ])
           events)
    in
    let factor_at t =
      (* [None] = no progress at time [t]. *)
      let blocked =
        List.exists
          (function
            | `Window (t0, t1) -> t0 <=/ t && t </ t1
            | `Forever t0 -> t0 <=/ t
            | `Factor _ -> false)
          events
      in
      if blocked then None
      else
        Some
          (List.fold_left
             (fun acc -> function
               | `Factor (t0, f) when t0 <=/ t -> acc */ f
               | _ -> acc)
             Q.one events)
    in
    let next_bp t =
      List.find_opt (fun b -> b >/ t) breakpoints
    in
    (* March interval by interval; [need] is measured in nominal time
       units (load times unit cost), an active factor [f] makes one
       nominal unit take [f] wall-clock units. *)
    let rec go t need =
      match factor_at t with
      | None -> (
        match next_bp t with
        | Some nb -> go nb need
        | None -> None (* permanently blocked: crash *))
      | Some f -> (
        match next_bp t with
        | None -> Some (t +/ (need */ f))
        | Some nb ->
          let span = nb -/ t in
          let doable = span // f in
          if doable >=/ need then Some (t +/ (need */ f)) else go nb (need -/ doable))
    in
    go start need
  end

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let to_string (p : plan) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# dls faults v1\n";
  List.iter
    (fun f ->
      Buffer.add_string buf (fault_to_string f);
      Buffer.add_char buf '\n')
    p;
  Buffer.contents buf

module T = Text_format

let of_string text =
  let parse_line lineno line =
    let rat = T.rational ~line:lineno in
    match T.tokens line with
    | [] -> Ok None
    | { T.text = "slowdown"; col } :: rest -> (
      match rest with
      | [ w; factor; from_ ] ->
        let* worker = T.int ~line:lineno w in
        let* factor = rat factor in
        let* from_ = rat from_ in
        Ok (Some (Slowdown { worker; factor; from_ }))
      | _ -> Errors.parse_error ~line:lineno ~col "slowdown takes: worker factor from")
    | { T.text = "degrade"; col } :: rest -> (
      match rest with
      | [ w; factor; from_ ] ->
        let* worker = T.int ~line:lineno w in
        let* factor = rat factor in
        let* from_ = rat from_ in
        Ok (Some (Degrade { worker; factor; from_ }))
      | _ -> Errors.parse_error ~line:lineno ~col "degrade takes: worker factor from")
    | { T.text = "crash"; col } :: rest -> (
      match rest with
      | [ w; at ] ->
        let* worker = T.int ~line:lineno w in
        let* at = rat at in
        Ok (Some (Crash { worker; at }))
      | _ -> Errors.parse_error ~line:lineno ~col "crash takes: worker at")
    | { T.text = "stall"; col } :: rest -> (
      match rest with
      | [ w; at; duration ] ->
        let* worker = T.int ~line:lineno w in
        let* at = rat at in
        let* duration = rat duration in
        Ok (Some (Stall { worker; at; duration }))
      | _ -> Errors.parse_error ~line:lineno ~col "stall takes: worker at duration")
    | directive :: _ ->
      Errors.parse_error ~line:lineno ~col:directive.T.col
        "unknown fault %S (expected slowdown, degrade, crash or stall)"
        directive.T.text
  in
  let rec collect lineno acc = function
    | [] -> make (List.rev acc)
    | line :: rest ->
      let* parsed = parse_line lineno line in
      collect (lineno + 1)
        (match parsed with Some f -> f :: acc | None -> acc)
        rest
  in
  collect 1 [] (String.split_on_char '\n' text)

let write path p =
  match T.write_file path (to_string p) with
  | Ok () -> ()
  | Error e -> raise (Errors.Error e)

let read path =
  let* content = T.read_file path in
  Result.map_error (Errors.in_file path) (of_string content)

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

let gen rng ~workers ~deadline ~severity =
  if workers <= 0 then invalid_arg "Faults.gen: empty platform";
  if Q.sign deadline <= 0 then invalid_arg "Faults.gen: non-positive deadline";
  let severity = Float.max 0.0 (Float.min 1.0 severity) in
  let amplitude = 1 + int_of_float (Float.round (8.0 *. severity)) in
  let count = 1 + Numeric.Prng.int_range rng ~lo:0 ~hi:(1 + int_of_float (Float.round (2.0 *. severity))) in
  let crashes = ref 0 in
  let draw () =
    let worker = Numeric.Prng.int_range rng ~lo:0 ~hi:(workers - 1) in
    (* Onsets land in the first three quarters of the horizon, on a
       16th-of-deadline grid, so the plan stays exactly rational. *)
    let tick = Numeric.Prng.int_range rng ~lo:0 ~hi:12 in
    let at = deadline */ Q.of_ints tick 16 in
    let factor () =
      Q.one +/ Q.of_ints (1 + Numeric.Prng.int_range rng ~lo:0 ~hi:amplitude) 4
    in
    match Numeric.Prng.int_range rng ~lo:0 ~hi:19 with
    | 0 | 1 | 2 when !crashes < workers - 1 ->
      incr crashes;
      Crash { worker; at }
    | k when k <= 6 ->
      let ticks = 1 + Numeric.Prng.int_range rng ~lo:0 ~hi:amplitude in
      Stall { worker; at; duration = deadline */ Q.of_ints ticks 32 }
    | k when k <= 13 -> Slowdown { worker; factor = factor (); from_ = at }
    | _ -> Degrade { worker; factor = factor (); from_ = at }
  in
  make_exn (List.init count (fun _ -> draw ()))
