module Q = Numeric.Rational
open Q.Infix

type change =
  | Scale_comm of { worker : int; factor : Q.t }
  | Scale_comp of { worker : int; factor : Q.t }
  | Set_z of Q.t
  | Add_worker of Platform.worker
  | Remove_worker of int

type t = change list

let preserves_shape d =
  List.for_all
    (function Add_worker _ | Remove_worker _ -> false | _ -> true)
    d

(* ------------------------------------------------------------------ *)
(* Application                                                         *)

let rebuild workers = Platform.make (Array.to_list workers)

let remake (wk : Platform.worker) ~c ~w ~d =
  Platform.worker ~name:wk.Platform.name ~c ~w ~d ()

let apply_change workers = function
  | Scale_comm { worker; factor } ->
    if Q.sign factor <= 0 then
      Errors.invalid "delta: comm factor must be positive"
    else if worker < 0 || worker >= Array.length workers then
      Errors.invalid "delta: worker %d out of range" (worker + 1)
    else begin
      let wk = workers.(worker) in
      workers.(worker) <-
        remake wk
          ~c:(factor */ wk.Platform.c)
          ~w:wk.Platform.w
          ~d:(factor */ wk.Platform.d);
      Ok workers
    end
  | Scale_comp { worker; factor } ->
    if Q.sign factor <= 0 then
      Errors.invalid "delta: comp factor must be positive"
    else if worker < 0 || worker >= Array.length workers then
      Errors.invalid "delta: worker %d out of range" (worker + 1)
    else begin
      let wk = workers.(worker) in
      workers.(worker) <-
        remake wk ~c:wk.Platform.c
          ~w:(factor */ wk.Platform.w)
          ~d:wk.Platform.d;
      Ok workers
    end
  | Set_z z ->
    if Q.sign z < 0 then
      Errors.invalid "delta: return ratio z must be non-negative"
    else begin
      Array.iteri
        (fun i wk ->
          workers.(i) <-
            remake wk ~c:wk.Platform.c ~w:wk.Platform.w
              ~d:(z */ wk.Platform.c))
        workers;
      Ok workers
    end
  | Add_worker wk -> Ok (Array.append workers [| wk |])
  | Remove_worker i ->
    if i < 0 || i >= Array.length workers then
      Errors.invalid "delta: worker %d out of range" (i + 1)
    else if Array.length workers = 1 then
      Errors.invalid "delta: cannot remove the last worker"
    else
      Ok
        (Array.init
           (Array.length workers - 1)
           (fun j -> if j < i then workers.(j) else workers.(j + 1)))

let apply platform delta =
  let ( let* ) = Result.bind in
  let rec go workers = function
    | [] -> rebuild workers
    | ch :: rest ->
      let* workers = apply_change workers ch in
      go workers rest
  in
  go (Array.copy platform.Platform.workers) delta

let apply_exn platform delta = Errors.get_exn (apply platform delta)

let apply_scenario (s : Scenario.t) delta =
  let ( let* ) = Result.bind in
  let* platform = apply s.Scenario.platform delta in
  if Platform.size platform = Platform.size s.Scenario.platform then
    Scenario.make platform ~sigma1:(Array.copy s.Scenario.sigma1)
      ~sigma2:(Array.copy s.Scenario.sigma2)
  else Ok (Scenario.all_workers_fifo platform)

let apply_scenario_exn s delta = Errors.get_exn (apply_scenario s delta)

(* ------------------------------------------------------------------ *)
(* Text form.  Comma-separated changes; worker indices are 1-based to
   match the default [P1..Pn] worker names everywhere else in the CLI:

     comm:2:5/4    scale c and d of worker 2 by 5/4
     comp:1:1/2    scale w of worker 1 by 1/2
     z:3/2         set a uniform return ratio d_i = (3/2) c_i
     add:1:2:1/2   append a worker with c=1 w=2 d=1/2
     drop:3        remove worker 3                                     *)

let to_spec d =
  String.concat ","
    (List.map
       (function
         | Scale_comm { worker; factor } ->
           Printf.sprintf "comm:%d:%s" (worker + 1) (Q.to_string factor)
         | Scale_comp { worker; factor } ->
           Printf.sprintf "comp:%d:%s" (worker + 1) (Q.to_string factor)
         | Set_z z -> Printf.sprintf "z:%s" (Q.to_string z)
         | Add_worker wk ->
           Printf.sprintf "add:%s:%s:%s"
             (Q.to_string wk.Platform.c)
             (Q.to_string wk.Platform.w)
             (Q.to_string wk.Platform.d)
         | Remove_worker i -> Printf.sprintf "drop:%d" (i + 1))
       d)

let of_spec ?file ~line ~col s =
  let ( let* ) = Result.bind in
  let err ~off fmt = Errors.parse_error ?file ~line ~col:(col + off) fmt in
  (* Split [str] on [sep], keeping each part's offset into [s], with
     surrounding blanks trimmed (offsets adjusted).  A part left empty
     by the trim is a stray separator — rejected with its position. *)
  let split_offsets sep off str =
    let parts = String.split_on_char sep str in
    let _, with_off =
      List.fold_left
        (fun (o, acc) part ->
          (o + String.length part + 1, (o, part) :: acc))
        (off, []) parts
    in
    List.rev_map
      (fun (o, part) ->
        let n = String.length part in
        let i = ref 0 in
        while !i < n && (part.[!i] = ' ' || part.[!i] = '\t') do
          incr i
        done;
        let j = ref (n - 1) in
        while !j >= !i && (part.[!j] = ' ' || part.[!j] = '\t') do
          decr j
        done;
        (o + !i, String.sub part !i (!j - !i + 1)))
      with_off
  in
  let rational ~off txt =
    match Q.of_string txt with
    | q -> Ok q
    | exception _ -> err ~off "not a rational: %S" txt
  in
  let index ~off txt =
    match int_of_string_opt txt with
    | Some i when i >= 1 -> Ok (i - 1)
    | _ -> err ~off "not a 1-based worker index: %S" txt
  in
  let parse_change (off, part) =
    match split_offsets ':' off part with
    | (_, "") :: _ -> err ~off "empty delta change (stray ',' separator?)"
    | [ (_, "comm"); (oi, i); (ofc, f) ] ->
      let* worker = index ~off:oi i in
      let* factor = rational ~off:ofc f in
      Ok (Scale_comm { worker; factor })
    | [ (_, "comp"); (oi, i); (ofc, f) ] ->
      let* worker = index ~off:oi i in
      let* factor = rational ~off:ofc f in
      Ok (Scale_comp { worker; factor })
    | [ (_, "z"); (oz, z) ] ->
      let* z = rational ~off:oz z in
      Ok (Set_z z)
    | [ (_, "add"); (oc, c); (ow, w); (od, d) ] ->
      let* c = rational ~off:oc c in
      let* w = rational ~off:ow w in
      let* d = rational ~off:od d in
      (match Platform.worker ~c ~w ~d () with
      | wk -> Ok (Add_worker wk)
      | exception Invalid_argument msg -> err ~off "%s" msg)
    | [ (_, "drop"); (oi, i) ] ->
      let* i = index ~off:oi i in
      Ok (Remove_worker i)
    | fields ->
      let stray =
        List.find_opt (fun (_, f) -> f = "") fields |> Option.map fst
      in
      (match stray with
      | Some o ->
        err ~off:o "empty field in delta change (stray ':' separator?)"
      | None ->
        err ~off
          "expected comm:i:f, comp:i:f, z:q, add:c:w:d or drop:i, got %S"
          part)
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      let* ch = parse_change part in
      collect (ch :: acc) rest
  in
  if String.trim s = "" then err ~off:0 "empty delta spec"
  else collect [] (split_offsets ',' 0 s)

let of_spec_exn ?file ~line ~col s = Errors.get_exn (of_spec ?file ~line ~col s)

let change_to_string platform = function
  | Scale_comm { worker; factor } ->
    Printf.sprintf "comm(%s) x %s"
      (Platform.get platform worker).Platform.name
      (Q.to_string factor)
  | Scale_comp { worker; factor } ->
    Printf.sprintf "comp(%s) x %s"
      (Platform.get platform worker).Platform.name
      (Q.to_string factor)
  | Set_z z -> Printf.sprintf "z := %s" (Q.to_string z)
  | Add_worker wk ->
    Printf.sprintf "add worker (c=%s w=%s d=%s)"
      (Q.to_string wk.Platform.c)
      (Q.to_string wk.Platform.w)
      (Q.to_string wk.Platform.d)
  | Remove_worker i ->
    Printf.sprintf "drop %s" (Platform.get platform i).Platform.name

let pp platform fmt d =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
    (fun f ch -> Format.pp_print_string f (change_to_string platform ch))
    fmt d
