module Q = Numeric.Rational
module T = Text_format

let to_string p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# name c w d (rationals; per load unit)\n";
  for i = 0 to Platform.size p - 1 do
    let wk = Platform.get p i in
    Buffer.add_string buf
      (Printf.sprintf "%s %s %s %s\n" wk.Platform.name (Q.to_string wk.Platform.c)
         (Q.to_string wk.Platform.w) (Q.to_string wk.Platform.d))
  done;
  Buffer.contents buf

let ( let* ) = Result.bind

let of_string text =
  let parse_line lineno line =
    match T.tokens line with
    | [] -> Ok None
    | [ name; c; w; d ] ->
      let* c = T.rational ~line:lineno c in
      let* w = T.rational ~line:lineno w in
      let* d = T.rational ~line:lineno d in
      (match Platform.worker ~name:name.T.text ~c ~w ~d () with
      | wk -> Ok (Some wk)
      | exception Invalid_argument msg ->
        Errors.parse_error ~line:lineno ~col:name.T.col "%s" msg)
    | tok :: _ as fields ->
      Errors.parse_error ~line:lineno ~col:tok.T.col
        "expected 'name c w d', found %d fields" (List.length fields)
  in
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let* parsed = parse_line lineno line in
      collect (lineno + 1)
        (match parsed with Some w -> w :: acc | None -> acc)
        rest
  in
  let* workers = collect 1 [] (String.split_on_char '\n' text) in
  match workers with
  | [] -> Error (Errors.Invalid_scenario "platform file lists no workers")
  | workers -> Platform.make workers

let write path p =
  match Text_format.write_file path (to_string p) with
  | Ok () -> ()
  | Error e -> raise (Errors.Error e)

let read path =
  let* content = Text_format.read_file path in
  Result.map_error (Errors.in_file path) (of_string content)
