module Q = Numeric.Rational
open Q.Infix

type config = {
  rounds : int;
  order : int array;
  with_returns : bool;
  send_latency : Q.t;
  return_latency : Q.t;
}

let config ?(with_returns = true) ?(send_latency = Q.zero)
    ?(return_latency = Q.zero) ~rounds order =
  if rounds < 1 then invalid_arg "Multiround.config: rounds must be >= 1";
  if Array.length order = 0 then invalid_arg "Multiround.config: empty order";
  if Q.sign send_latency < 0 || Q.sign return_latency < 0 then
    invalid_arg "Multiround.config: negative latency";
  { rounds; order; with_returns; send_latency; return_latency }

type solved = {
  platform : Platform.t;
  config : config;
  rho : Q.t;
  chunks : Q.t array array;
  alpha : Q.t array;
}

type outcome = Solved of solved | Too_slow

(* Variable layout: for q = |order| slots and R rounds,
     alpha_{r,k} at r*q + k                  (chunk sizes)
     s_{r,k}     at R*q + r*q + k            (computation starts)
     t_{r,k}     at 2*R*q + r*q + k          (return starts, if any). *)
let solve platform cfg =
  (* Validate the order as a scenario over the platform. *)
  ignore (Scenario.fifo_exn platform cfg.order);
  let q = Array.length cfg.order in
  let r_count = cfg.rounds in
  let nchunks = r_count * q in
  let nvars = if cfg.with_returns then 3 * nchunks else 2 * nchunks in
  let a_var r k = (r * q) + k in
  let s_var r k = nchunks + (r * q) + k in
  let t_var r k = (2 * nchunks) + (r * q) + k in
  let wk k = Platform.get platform cfg.order.(k) in
  let constraints = ref [] in
  let add coeffs rhs =
    constraints := Simplex.Problem.constr coeffs Simplex.Problem.Le rhs :: !constraints
  in
  let row () = Array.make nvars Q.zero in
  (* Send end of chunk (r, k): sum over lexicographically earlier-or-
     equal chunks of (alpha c + send latency). *)
  let add_send_prefix coeffs r k =
    for r' = 0 to r do
      let kmax = if r' = r then k else q - 1 in
      for k' = 0 to kmax do
        coeffs.(a_var r' k') <- coeffs.(a_var r' k') +/ (wk k').Platform.c
      done
    done;
    Q.of_int ((r * q) + k + 1) */ cfg.send_latency
  in
  for r = 0 to r_count - 1 do
    for k = 0 to q - 1 do
      (* computation starts after reception: E_{r,k} - s_{r,k} <= -lat *)
      let coeffs = row () in
      let latency = add_send_prefix coeffs r k in
      coeffs.(s_var r k) <- coeffs.(s_var r k) -/ Q.one;
      add coeffs (Q.neg latency);
      (* computation starts after the previous chunk's computation *)
      if r > 0 then begin
        let coeffs = row () in
        coeffs.(s_var (r - 1) k) <- Q.one;
        coeffs.(a_var (r - 1) k) <- (wk k).Platform.w;
        coeffs.(s_var r k) <- Q.minus_one;
        add coeffs Q.zero
      end
    done
  done;
  if cfg.with_returns then begin
    (* the first return waits for every send to complete *)
    let coeffs = row () in
    let latency = add_send_prefix coeffs (r_count - 1) (q - 1) in
    coeffs.(t_var 0 0) <- Q.minus_one;
    add coeffs (Q.neg latency);
    for r = 0 to r_count - 1 do
      for k = 0 to q - 1 do
        (* the return waits for its chunk's computation *)
        let coeffs = row () in
        coeffs.(s_var r k) <- Q.one;
        coeffs.(a_var r k) <- (wk k).Platform.w;
        coeffs.(t_var r k) <- Q.minus_one;
        add coeffs Q.zero;
        (* one-port chain between consecutive returns *)
        let prev = if k > 0 then Some (r, k - 1) else if r > 0 then Some (r - 1, q - 1) else None in
        (match prev with
        | None -> ()
        | Some (pr, pk) ->
          let coeffs = row () in
          coeffs.(t_var pr pk) <- Q.one;
          coeffs.(a_var pr pk) <- (wk pk).Platform.d;
          coeffs.(t_var r k) <- Q.minus_one;
          add coeffs (Q.neg cfg.return_latency));
        (* the last return meets the horizon *)
        if r = r_count - 1 && k = q - 1 then begin
          let coeffs = row () in
          coeffs.(t_var r k) <- Q.one;
          coeffs.(a_var r k) <- (wk k).Platform.d;
          add coeffs (Q.one -/ cfg.return_latency)
        end
      done
    done
  end
  else
    (* without returns, each worker's last computation meets the horizon *)
    for k = 0 to q - 1 do
      let coeffs = row () in
      coeffs.(s_var (r_count - 1) k) <- Q.one;
      coeffs.(a_var (r_count - 1) k) <- (wk k).Platform.w;
      add coeffs Q.one
    done;
  let objective =
    Array.init nvars (fun v -> if v < nchunks then Q.one else Q.zero)
  in
  let problem =
    Simplex.Problem.make Simplex.Problem.Maximize objective (List.rev !constraints)
  in
  match Simplex.Solver.solve problem with
  | Simplex.Solver.Infeasible -> Too_slow
  | Simplex.Solver.Unbounded -> raise (Errors.Error Errors.Unbounded)
  | Simplex.Solver.Optimal sol ->
    (match Simplex.Certify.check problem sol with
    | Ok () -> ()
    | Error msgs ->
      raise
        (Errors.Error
           (Errors.Invalid_scenario
              ("Multiround.solve: certification failed: "
             ^ String.concat "; " msgs))));
    let point = sol.Simplex.Solver.point in
    let chunks =
      Array.init r_count (fun r -> Array.init q (fun k -> point.(a_var r k)))
    in
    let alpha = Array.make (Platform.size platform) Q.zero in
    Array.iteri
      (fun k i ->
        alpha.(i) <-
          Q.sum (List.init r_count (fun r -> chunks.(r).(k))))
      cfg.order;
    Solved
      { platform; config = cfg; rho = sol.Simplex.Solver.value; chunks; alpha }

type round_point = { rounds : int; throughput : Q.t }

let sweep_rounds platform ?with_returns ?send_latency ?return_latency ~order
    ~max_rounds () =
  List.filter_map
    (fun rounds ->
      let cfg = config ?with_returns ?send_latency ?return_latency ~rounds order in
      match solve platform cfg with
      | Too_slow -> None
      | Solved s -> Some { rounds; throughput = s.rho })
    (List.init max_rounds (fun i -> i + 1))
