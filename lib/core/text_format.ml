type token = { text : string; col : int }

let tokens line =
  (* Strip the '#' comment, then split on blanks, remembering where each
     token starts (1-based column, counting raw characters). *)
  let limit =
    match String.index_opt line '#' with Some i -> i | None -> String.length line
  in
  let toks = ref [] in
  let i = ref 0 in
  while !i < limit do
    while !i < limit && (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r') do
      incr i
    done;
    if !i < limit then begin
      let start = !i in
      while
        !i < limit && not (line.[!i] = ' ' || line.[!i] = '\t' || line.[!i] = '\r')
      do
        incr i
      done;
      toks := { text = String.sub line start (!i - start); col = start + 1 } :: !toks
    end
  done;
  List.rev !toks

let rational ~line (tok : token) =
  (* [Q.of_string] can raise [Failure], [Invalid_argument] or
     [Division_by_zero] ("1/0") depending on how the input is malformed;
     normalize all of them into a positioned parse error. *)
  match Numeric.Rational.of_string tok.text with
  | q -> Ok q
  | exception (Failure _ | Invalid_argument _ | Division_by_zero) ->
    Errors.parse_error ~line ~col:tok.col "not a rational: %S" tok.text

let int ~line (tok : token) =
  match int_of_string_opt tok.text with
  | Some i -> Ok i
  | None -> Errors.parse_error ~line ~col:tok.col "not an integer: %S" tok.text

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Errors.Io_error msg)
  | ic ->
    let finally () = close_in_noerr ic in
    Fun.protect ~finally (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception Sys_error msg -> Error (Errors.Io_error msg))

let write_file path content =
  match open_out_bin path with
  | exception Sys_error msg -> Error (Errors.Io_error msg)
  | oc ->
    let finally () = close_out_noerr oc in
    Fun.protect ~finally (fun () ->
        match output_string oc content with
        | () -> Ok ()
        | exception Sys_error msg -> Error (Errors.Io_error msg))
