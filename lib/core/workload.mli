(** Multi-load workloads: several divisible loads sharing one platform.

    The paper schedules a single load; the related work (Gallet, Robert,
    Vivien; Wu, Cao, Robertazzi) and the service daemon both deal in
    {e streams} of loads.  A workload is an ordered list of loads, each
    with its own size, release date, and optionally its own return ratio
    [z] ([d_i = z * c_i] on every worker, overriding the platform's own
    return costs for that load — result sizes differ per application,
    link speeds do not).

    Workloads feed the two solution modes of {!Steady_state}: the
    periodic throughput LP (one mix repeated forever) and the finite
    batch LP (a concrete batch with release dates). *)

module Q = Numeric.Rational

type load = {
  name : string;
  size : Q.t;  (** load units to process, [> 0] *)
  release : Q.t;  (** earliest date the master may start sending, [>= 0] *)
  z : Q.t option;
      (** per-load return ratio: [Some z] replaces every worker's return
          cost by [z * c_i] for this load ([z >= 0]); [None] keeps the
          platform's [d] *)
}

type t = private { loads : load array }

(** [load ?name ?release ?z ~size ()] builds one load description
    (defaults: release 0, platform return costs).
    @raise Invalid_argument unless [size > 0], [release >= 0] and
    [z >= 0] when given. *)
val load : ?name:string -> ?release:Q.t -> ?z:Q.t -> size:Q.t -> unit -> load

(** [make loads] builds a workload; [Error (Invalid_scenario _)] when
    [loads] is empty. *)
val make : load list -> (t, Errors.t) result

(** [make_exn loads] is {!make}. @raise Errors.Error accordingly. *)
val make_exn : load list -> t

val size : t -> int
val get : t -> int -> load

(** [total_size w] is the summed load sizes. *)
val total_size : t -> Q.t

(** [max_release w] is the latest release date. *)
val max_release : t -> Q.t

(** [repeat h w] concatenates [h] copies of the mix, preserving each
    load's release and [z] — the long-horizon batches the differential
    fuzzer feeds to the batch LP to squeeze it against the steady-state
    period.  @raise Invalid_argument when [h < 1]. *)
val repeat : int -> t -> t

(** [return_cost w k worker] is the per-unit return cost of load [k] on
    [worker]: [z * c] under an override, the worker's [d] otherwise. *)
val return_cost : t -> int -> Platform.worker -> Q.t

(** [induced_platform w k p] is [p] with every worker's return cost
    replaced by load [k]'s: the single-load platform on which load [k]
    alone would be scheduled. *)
val induced_platform : t -> int -> Platform.t -> Platform.t

(** {2 Text form}

    The compact spec mirrors the platform's [c:w:d] form:
    [size:release\[:z\],...] — e.g. [2:0,1:1/2:3] is a 2-unit load
    released at 0 plus a 1-unit load released at 1/2 with return ratio
    3. *)

(** [of_spec ~line ~col s] parses the compact form; error positions are
    relative to [col], the column where the spec token starts.  Never
    raises. *)
val of_spec :
  ?file:string -> line:int -> col:int -> string -> (t, Errors.t) result

(** [to_spec w] renders the canonical spec: {!of_spec} inverts it and
    load names are positional ([L1..Ln]). *)
val to_spec : t -> string

(** [key w] is a canonical fingerprint: workloads are structurally equal
    iff their keys are equal. *)
val key : t -> string

val pp : Format.formatter -> t -> unit
