module Q = Numeric.Rational
open Q.Infix

type phase = { start : Q.t; finish : Q.t }

type entry = {
  worker : int;
  alpha : Q.t;
  send : phase;
  compute : phase;
  return_ : phase;
}

type t = { platform : Platform.t; horizon : Q.t; entries : entry array }

let of_solved (sol : Lp_model.solved) =
  let s = sol.Lp_model.scenario in
  let platform = s.Scenario.platform in
  let alpha i = sol.Lp_model.alpha.(i) in
  let active order = Array.of_list (List.filter (fun i -> Q.sign (alpha i) > 0) (Array.to_list order)) in
  let sends = active s.Scenario.sigma1 in
  let returns = active s.Scenario.sigma2 in
  (* Return transfers are packed to end exactly at the horizon. *)
  let return_start = Hashtbl.create 8 in
  let horizon = Q.one in
  let cursor = ref horizon in
  for k = Array.length returns - 1 downto 0 do
    let i = returns.(k) in
    let d = (Platform.get platform i).Platform.d in
    let finish = !cursor in
    let start = finish -/ (alpha i */ d) in
    Hashtbl.add return_start i (start, finish);
    cursor := start
  done;
  let entries = ref [] in
  let clock = ref Q.zero in
  Array.iter
    (fun i ->
      let wk = Platform.get platform i in
      let a = alpha i in
      let send = { start = !clock; finish = !clock +/ (a */ wk.Platform.c) } in
      clock := send.finish;
      let compute = { start = send.finish; finish = send.finish +/ (a */ wk.Platform.w) } in
      let rs, rf = Hashtbl.find return_start i in
      let return_ = { start = rs; finish = rf } in
      entries := { worker = i; alpha = a; send; compute; return_ } :: !entries)
    sends;
  { platform; horizon; entries = Array.of_list (List.rev !entries) }

let scale k sched =
  if Q.sign k <= 0 then invalid_arg "Schedule.scale: factor must be positive";
  let ph p = { start = k */ p.start; finish = k */ p.finish } in
  {
    sched with
    horizon = k */ sched.horizon;
    entries =
      Array.map
        (fun e ->
          {
            e with
            alpha = k */ e.alpha;
            send = ph e.send;
            compute = ph e.compute;
            return_ = ph e.return_;
          })
        sched.entries;
  }

let for_load sol ~load = scale (Lp_model.time_for_load sol ~load) (of_solved sol)
let total_load sched = Q.sum_array (Array.map (fun e -> e.alpha) sched.entries)
let makespan sched = sched.horizon

type idle_slot = { idle_worker : int; idle : Q.t }

let idle_times sched =
  Array.to_list
    (Array.map
       (fun e -> { idle_worker = e.worker; idle = e.return_.start -/ e.compute.finish })
       sched.entries)

let mirror sched =
  let swapped =
    Platform.make_exn
      (List.map
         (fun wk ->
           if Q.is_zero wk.Platform.d then
             invalid_arg "Schedule.mirror: worker with d = 0 cannot be mirrored";
           Platform.worker ~name:wk.Platform.name ~c:wk.Platform.d
             ~w:wk.Platform.w ~d:wk.Platform.c ())
         (Array.to_list
            (Array.init (Platform.size sched.platform) (Platform.get sched.platform))))
  in
  let flip p = { start = sched.horizon -/ p.finish; finish = sched.horizon -/ p.start } in
  let entries =
    Array.map
      (fun e ->
        { e with send = flip e.return_; compute = flip e.compute; return_ = flip e.send })
      sched.entries
  in
  (* Reverse so entries appear in the new send order. *)
  let n = Array.length entries in
  let entries = Array.init n (fun i -> entries.(n - 1 - i)) in
  { platform = swapped; horizon = sched.horizon; entries }

let validate sched =
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let name i = (Platform.get sched.platform i).Platform.name in
  Array.iter
    (fun e ->
      let wk = Platform.get sched.platform e.worker in
      let dur p = p.finish -/ p.start in
      if Q.sign e.alpha <= 0 then add "%s: non-positive load" (name e.worker);
      if dur e.send <>/ (e.alpha */ wk.Platform.c) then
        add "%s: send duration mismatch" (name e.worker);
      if dur e.compute <>/ (e.alpha */ wk.Platform.w) then
        add "%s: compute duration mismatch" (name e.worker);
      if dur e.return_ <>/ (e.alpha */ wk.Platform.d) then
        add "%s: return duration mismatch" (name e.worker);
      if e.send.finish >/ e.compute.start then
        add "%s: computes before data fully received" (name e.worker);
      if e.compute.finish >/ e.return_.start then
        add "%s: returns results before computation ends" (name e.worker);
      if Q.sign e.send.start < 0 || e.return_.finish >/ sched.horizon then
        add "%s: activity outside [0, horizon]" (name e.worker))
    sched.entries;
  (* One-port: the master's transfer phases must not overlap. *)
  let master_phases =
    List.concat_map
      (fun e -> [ (e.send, "send", e.worker); (e.return_, "return", e.worker) ])
      (Array.to_list sched.entries)
  in
  let overlap a b = a.start </ b.finish && b.start </ a.finish in
  let rec pairs = function
    | [] -> ()
    | (p, kind, i) :: rest ->
      List.iter
        (fun (p', kind', i') ->
          if overlap p p' then
            add "one-port violation: %s(%s) overlaps %s(%s)" kind (name i) kind'
              (name i'))
        rest;
      pairs rest
  in
  pairs master_phases;
  if !errs = [] then Ok () else Error (List.rev !errs)

let pp fmt sched =
  Format.fprintf fmt "@[<v>horizon = %s (~%.6g), load = %s (~%.6g)@,"
    (Q.to_string sched.horizon)
    (Q.to_float sched.horizon)
    (Q.to_string (total_load sched))
    (Q.to_float (total_load sched));
  Array.iter
    (fun e ->
      let f p = Printf.sprintf "[%.4g, %.4g]" (Q.to_float p.start) (Q.to_float p.finish) in
      Format.fprintf fmt "  %-6s alpha=%-10.6g send=%s compute=%s return=%s@,"
        (Platform.get sched.platform e.worker).Platform.name
        (Q.to_float e.alpha) (f e.send) (f e.compute) (f e.return_))
    sched.entries;
  Format.fprintf fmt "@]"
