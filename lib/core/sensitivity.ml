module Q = Numeric.Rational
open Q.Infix

type parameter = Comm of int | Comp of int

(* A sensitivity parameter is the single-change special case of the
   general {!Delta} edit language. *)
let to_delta param ~factor =
  match param with
  | Comm worker -> Delta.Scale_comm { worker; factor }
  | Comp worker -> Delta.Scale_comp { worker; factor }

let perturb platform param ~factor =
  match Delta.apply platform [ to_delta param ~factor ] with
  | Ok p -> p
  | Error e -> invalid_arg ("Sensitivity.perturb: " ^ Errors.to_string e)

let throughput_delta ?model platform param ~factor =
  let before = (Fifo.optimal ?model platform).Lp_model.rho in
  let after = (Fifo.optimal ?model (perturb platform param ~factor)).Lp_model.rho in
  after -/ before

let table ?model platform ~factor =
  let n = Platform.size platform in
  let rho = (Fifo.optimal ?model platform).Lp_model.rho in
  List.concat_map
    (fun i ->
      List.map
        (fun param -> (param, throughput_delta ?model platform param ~factor // rho))
        [ Comm i; Comp i ])
    (List.init n Fun.id)

let parameter_to_string platform = function
  | Comm i -> Printf.sprintf "comm(%s)" (Platform.get platform i).Platform.name
  | Comp i -> Printf.sprintf "comp(%s)" (Platform.get platform i).Platform.name
