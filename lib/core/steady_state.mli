(** Multi-load scheduling: steady-state throughput and finite batches.

    Two solution modes for a {!Workload} on a star platform, both exact
    and both certified:

    {2 Steady state}

    Repeat the load mix forever and ask for the shortest period [T] in
    which one whole mix can be processed.  With [a(k,i)] the share of
    load [k] given to worker [i] per period, the LP is

    {v
      minimize   T
      subject to Σ_i a(k,i) = size_k                   for every load k
                 Σ_{k,i} a(k,i) (c_i + d(k,i)) <= T    (one-port)
                 Σ_k a(k,i) w_i <= T                   for every worker i
                 a(k,i) >= 0
    v}

    where [d(k,i)] is load [k]'s return cost on worker [i]
    ({!Workload.return_cost}).  Both resource rows are genuine lower
    bounds on any schedule processing the mix [H] times — the port is
    busy [Σ a (c+d)] and worker [i] computes [Σ a w] per mix — so
    [H*T] bounds every batch makespan from below; conversely the
    periodic construction (send copy [m] in window [m], compute it in
    window [m+1], return it in window [m+2]) turns any feasible [(a, T)]
    into a schedule of [H] copies finishing by [(H+2)*T].  The batch LP
    below, run at interleave depth 2, contains that construction, which
    is the two-sided squeeze the differential fuzzer checks.

    {2 Finite batch}

    A multi-round extension of the paper's LP(2) in the style of
    {!Multiround}, with explicit event times: loads are taken in a fixed
    sequence, each split into chunks over the workers in a fixed order,
    and the master's port performs the send-blocks and return-blocks in
    a fixed interleaved order ([depth] send-blocks run ahead of the
    return chain).  Release dates lower-bound the sends; each worker
    computes its chunks in sequence order; the makespan is minimized. *)

module Q = Numeric.Rational

type solved = private {
  platform : Platform.t;
  workload : Workload.t;
  period : Q.t;  (** optimal period [T], certified rational *)
  alloc : Q.t array array;
      (** [alloc.(k).(i)]: share of load [k] on worker [i] per period *)
  port_time : Q.t;  (** port busy time per period, [<= period] *)
  work_time : Q.t array;  (** per-worker compute time per period *)
  throughput : Q.t;  (** load units per time unit: [total_size / period] *)
  pivots : int;
}

(** [solve platform workload] computes the optimal steady-state period.
    The solution is validated with {!Simplex.Certify} before being
    returned. *)
val solve : Platform.t -> Workload.t -> (solved, Errors.t) result

(** [solve_exn] is {!solve}. @raise Errors.Error accordingly. *)
val solve_exn : Platform.t -> Workload.t -> solved

type batch = private {
  b_platform : Platform.t;
  b_workload : Workload.t;
  order : int array;  (** worker order used for every load's chunks *)
  sequence : int array;  (** load indices in scheduling (release) order *)
  depth : int;  (** send-blocks allowed to run ahead of the return chain *)
  makespan : Q.t;  (** certified batch completion time *)
  chunks : Q.t array array;  (** [chunks.(k).(j)]: load [k], order slot [j] *)
  send_starts : Q.t array array;
  compute_starts : Q.t array array;
  return_starts : Q.t array array;
  b_pivots : int;
}

(** [solve_batch ?depth ?order platform workload] schedules the batch at
    a fixed interleave depth (default 1) and worker order (default
    {!Fifo.order}).  Loads are sequenced by release date (ties by
    position).  @raise nothing; degenerate LPs surface as [Error]. *)
val solve_batch :
  ?depth:int ->
  ?order:int array ->
  Platform.t ->
  Workload.t ->
  (batch, Errors.t) result

(** [solve_batch_best ?max_depth ?order platform workload] tries every
    depth in [0..max_depth] (default: [min 2 (loads-1)]) and keeps the
    smallest makespan — deeper interleaving pipelines returns against
    the next load's sends but can lose when releases are sparse, so
    neither extreme dominates. *)
val solve_batch_best :
  ?max_depth:int ->
  ?order:int array ->
  Platform.t ->
  Workload.t ->
  (batch, Errors.t) result

(** [port_sequence b] lists the master-port operations in their exact
    chain order: [(kind, load, slot)] where [load] is a workload index
    and [slot] indexes [b.order].  Zero-size chunks are included (their
    operations have zero duration); drop them for replay. *)
val port_sequence : batch -> ([ `Send | `Return ] * int * int) list

(** [batch_schedules b] realizes each load of the batch as an explicit
    per-load {!Schedule.t} on its induced platform (shared horizon: the
    batch makespan), for replay and validation. *)
val batch_schedules : batch -> (int * Schedule.t) array

(** [naive_makespan platform workload] is the back-to-back baseline:
    loads in release order, each solved alone with the single-load FIFO
    LP on its induced platform (warm-starting each solve with the
    previous basis), no overlap between consecutive loads.  The
    published multi-load bench compares steady-state throughput against
    this. *)
val naive_makespan : Platform.t -> Workload.t -> (Q.t, Errors.t) result

val pp : Format.formatter -> solved -> unit
val pp_batch : Format.formatter -> batch -> unit
