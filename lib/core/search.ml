module Q = Numeric.Rational
open Q.Infix

type stats = { nodes : int; pruned : int; lps : int }
type outcome = { solved : Lp_model.solved; stats : stats }

(* Relaxation bound for a fixed FIFO prefix (ordered) and a set of
   unplaced workers.  Exact deadline rows for the prefix; optimistic
   rows for the unplaced; the full one-port row.  The paper's idle
   variables are omitted: in a pure-[<=] program [chain + x <= 1, x >= 0]
   is equivalent to [chain <= 1], and halving the variable count speeds
   every pivot up. *)
let bound_problem discipline model platform prefix remaining =
  let qp = Array.length prefix and qr = Array.length remaining in
  let n = qp + qr in
  let wk slot = Platform.get platform slot in
  let all = Array.append prefix remaining in
  let constraints = ref [] in
  let add coeffs rhs =
    constraints := Simplex.Problem.constr coeffs Simplex.Problem.Le rhs :: !constraints
  in
  (* prefix deadlines: exact under any completion.  FIFO: position k
     waits for sends up to k and for the returns of positions >= k,
     which include every unplaced worker.  LIFO: position k's sends and
     returns both range over positions <= k only, all in the prefix. *)
  for k = 0 to qp - 1 do
    let coeffs = Array.make n Q.zero in
    for j = 0 to n - 1 do
      let w = wk all.(j) in
      let contrib = ref Q.zero in
      (match discipline with
      | `Fifo ->
        if j <= k && j < qp then contrib := !contrib +/ w.Platform.c;
        if j >= k || j >= qp then contrib := !contrib +/ w.Platform.d
      | `Lifo ->
        if j <= k then contrib := !contrib +/ (w.Platform.c +/ w.Platform.d));
      if j = k then contrib := !contrib +/ w.Platform.w;
      coeffs.(j) <- !contrib
    done;
    add coeffs Q.one
  done;
  (* unplaced workers: optimistic completion.  FIFO: the prefix sends
     precede its own chain.  LIFO: additionally, every prefix worker
     returns after it, so the whole prefix return block is in its way. *)
  for k = qp to n - 1 do
    let coeffs = Array.make n Q.zero in
    for j = 0 to qp - 1 do
      let w = wk all.(j) in
      coeffs.(j) <-
        (match discipline with
        | `Fifo -> w.Platform.c
        | `Lifo -> w.Platform.c +/ w.Platform.d)
    done;
    let w = wk all.(k) in
    coeffs.(k) <- w.Platform.c +/ w.Platform.w +/ w.Platform.d;
    add coeffs Q.one
  done;
  (match model with
  | Lp_model.Two_port -> ()
  | Lp_model.One_port ->
    let coeffs = Array.make n Q.zero in
    for j = 0 to n - 1 do
      let w = wk all.(j) in
      coeffs.(j) <- w.Platform.c +/ w.Platform.d
    done;
    add coeffs Q.one);
  let objective = Array.make n Q.one in
  Simplex.Problem.make Simplex.Problem.Maximize objective (List.rev !constraints)

(* Two-tier bound test: a float solve first — if it says the node cannot
   be pruned (bound clearly above the incumbent) we skip the exact LP
   entirely; only when pruning looks possible do we confirm with exact
   arithmetic, so no subtree is ever cut on floating-point evidence.

   Two thresholds keep the parallel search canonical:
   - [local] is the task's own incumbent; pruning is NON-strict
     ([bound <= local]), exactly as in the sequential search;
   - [shared] is the best throughput any concurrent task has published;
     pruning against it is STRICT ([bound < shared]).  An optimal
     subtree has [bound >= rho*] and [shared <= rho*] at all times, so
     strict cross-task pruning can never cut the subtree holding the
     canonical optimum, whereas non-strict pruning could.
   A sequential caller passes [shared = local], making the combined test
   collapse to the classic [bound <= incumbent]. *)
let prunable discipline model platform prefix remaining ~local ~shared ~count_lp =
  (* Cheapest test first: the knapsack bound of [Bounds.prefix_bound]
     dominates the LP relaxation bound below (its rows are a subset of
     the LP's constraints, relaxed one at a time), so whenever it already
     fails to beat the incumbent the LP bound would have failed too.  The
     pruning decision — and hence the canonical answer — is unchanged;
     the node just skips both LP solves. *)
  let cheap =
    Bounds.prefix_bound ~model
      ~discipline:(discipline :> [ `Fifo | `Lifo | `Free ])
      platform ~prefix ~remaining
  in
  if Q.compare cheap local <= 0 || Q.compare cheap shared < 0 then true
  else
  let problem = bound_problem discipline model platform prefix remaining in
  let inc = Q.to_float (Q.max local shared) in
  let clearly_unprunable =
    match Simplex.Float_solver.solve problem with
    | Simplex.Float_solver.Optimal s ->
      s.Simplex.Float_solver.value > inc +. (1e-6 *. Float.max 1.0 (Float.abs inc))
    | _ -> false
  in
  if clearly_unprunable then false
  else begin
    count_lp ();
    let bound = (Simplex.Solver.solve_exn problem).Simplex.Solver.value in
    Q.compare bound local <= 0 || Q.compare bound shared < 0
  end

(* The canonical result — returned for every [jobs] — is the one of the
   sequential search: the heuristic seed if it already achieves the
   optimal throughput, otherwise the first leaf in DFS order (children
   in ascending-[c] candidate order) that does.  The parallel search
   reproduces it by (a) giving every root subtree its own task with a
   private incumbent seeded at the heuristic throughput, (b) only
   pruning strictly against the shared cross-task bound, and (c)
   reducing task results in subtree order with a strict comparison. *)
let search ?(jobs = 1) discipline model platform =
  let n = Platform.size platform in
  let scenario_of order =
    match discipline with
    | `Fifo -> Scenario.fifo_exn platform order
    | `Lifo -> Scenario.lifo_exn platform order
  in
  (* Incumbent: the Theorem 1 heuristic order (also the optimal LIFO
     order under uniform z, per the companion paper). *)
  let heuristic = Lp_model.solve_cached ~model (scenario_of (Fifo.order platform)) in
  (* Branch in ascending-c order, which tends to find improvements
     early. *)
  let candidates = Fifo.order platform in
  if jobs <= 1 then begin
    let nodes = ref 0 and pruned = ref 0 and lps = ref 1 in
    (* Leaf solves thread the previous optimal basis through as a warm
       start; a hint only, so the canonical-answer contract is intact. *)
    let warm = ref None in
    let solve_order order =
      incr lps;
      let sol = Lp_model.solve_cached ~model ?warm:!warm (scenario_of order) in
      warm := Some sol.Lp_model.basis;
      sol
    in
    let incumbent = ref heuristic in
    let rec dfs prefix used =
      incr nodes;
      let remaining =
        Array.of_list
          (List.filter (fun i -> not used.(i)) (Array.to_list candidates))
      in
      if Array.length remaining = 0 then begin
        let sol = solve_order (Array.of_list (List.rev prefix)) in
        if sol.Lp_model.rho >/ !incumbent.Lp_model.rho then incumbent := sol
      end
      else if
        prunable discipline model platform
          (Array.of_list (List.rev prefix))
          remaining ~local:!incumbent.Lp_model.rho ~shared:!incumbent.Lp_model.rho
          ~count_lp:(fun () -> incr lps)
      then incr pruned
      else
        Array.iter
          (fun i ->
            used.(i) <- true;
            dfs (i :: prefix) used;
            used.(i) <- false)
          remaining
    in
    dfs [] (Array.make n false);
    { solved = !incumbent; stats = { nodes = !nodes; pruned = !pruned; lps = !lps } }
  end
  else begin
    let root_lps = ref 0 in
    (* Root node: same prune check the sequential search performs before
       descending. *)
    if
      prunable discipline model platform [||] candidates
        ~local:heuristic.Lp_model.rho ~shared:heuristic.Lp_model.rho
        ~count_lp:(fun () -> incr root_lps)
    then
      { solved = heuristic; stats = { nodes = 1; pruned = 1; lps = 1 + !root_lps } }
    else begin
      let shared = Atomic.make heuristic.Lp_model.rho in
      let rec publish r =
        let cur = Atomic.get shared in
        if Q.compare r cur > 0 && not (Atomic.compare_and_set shared cur r) then
          publish r
      in
      let task root =
        let nodes = ref 0 and pruned = ref 0 and lps = ref 0 in
        let warm = ref None in
        let solve_order order =
          incr lps;
          let sol = Lp_model.solve_cached ~model ?warm:!warm (scenario_of order) in
          warm := Some sol.Lp_model.basis;
          sol
        in
        let local = ref heuristic.Lp_model.rho in
        let best = ref None in
        let used = Array.make n false in
        let rec dfs prefix =
          incr nodes;
          let remaining =
            Array.of_list
              (List.filter (fun i -> not used.(i)) (Array.to_list candidates))
          in
          if Array.length remaining = 0 then begin
            let sol = solve_order (Array.of_list (List.rev prefix)) in
            if sol.Lp_model.rho >/ !local then begin
              local := sol.Lp_model.rho;
              best := Some sol;
              publish sol.Lp_model.rho
            end
          end
          else if
            prunable discipline model platform
              (Array.of_list (List.rev prefix))
              remaining ~local:!local ~shared:(Atomic.get shared)
              ~count_lp:(fun () -> incr lps)
          then incr pruned
          else
            Array.iter
              (fun i ->
                used.(i) <- true;
                dfs (i :: prefix);
                used.(i) <- false)
              remaining
        in
        used.(root) <- true;
        dfs [ root ];
        (!best, !nodes, !pruned, !lps)
      in
      (* One task per root subtree; chunk 1 so each domain claims whole
         subtrees. *)
      let results = Parallel.Pool.run ~jobs ~chunk:1 task candidates in
      let best = ref heuristic in
      let nodes = ref 1 and pruned = ref 0 and lps = ref (1 + !root_lps) in
      Array.iter
        (fun (b, tn, tp, tl) ->
          (match b with
          | Some sol when sol.Lp_model.rho >/ !best.Lp_model.rho -> best := sol
          | Some _ | None -> ());
          nodes := !nodes + tn;
          pruned := !pruned + tp;
          lps := !lps + tl)
        results;
      { solved = !best; stats = { nodes = !nodes; pruned = !pruned; lps = !lps } }
    end
  end

let best_fifo ?(model = Lp_model.One_port) ?jobs platform =
  search ?jobs `Fifo model platform

let best_lifo ?(model = Lp_model.One_port) ?jobs platform =
  search ?jobs `Lifo model platform
