(** Online re-planning: splice a recovery schedule when the platform
    misbehaves.

    The model: the master executes the optimal FIFO schedule; a
    monitoring layer detects the first fault at its onset [t0] and
    reports the whole {!Faults.plan} (perfect detection).  Work whose
    result message had already come back by [t0] is {e banked};
    in-flight transfers and computations are cancelled and their load
    folded into the {e residual}, which is re-solved as a fresh
    divisible-load instance — LP (2) of the paper — on the degraded
    surviving platform ({!Faults.degraded_platform}), with the recovery
    schedule dispatched from [t0].

    Every candidate recovery, and the do-nothing continuation, is then
    {e replayed} exactly (rational arithmetic) under the full fault plan,
    and {!respond} keeps the best by completed-load-by-deadline.  The
    baseline is always a candidate, so the decision is never worse than
    not recovering — a property {!Check.Fuzz} re-verifies over random
    fault plans. *)

module Q = Numeric.Rational

(** {1 Exact replay} *)

type source = Original | Recovery

type completion = {
  worker : int;
  load : Q.t;
  source : source;
  finish : Q.t option;  (** return-message completion; [None]: lost *)
}

type report = {
  deadline : Q.t;
  total : Q.t;  (** load the original schedule enrolled *)
  done_by_deadline : Q.t;  (** load fully returned by [deadline] *)
  done_eventually : Q.t;  (** load fully returned, ever *)
  makespan : Q.t option;  (** last return; [None] if some load is lost *)
  completions : completion list;
}

(** [lateness ~deadline finish] is how far past the deadline a return
    landed ([Some 0] when on time, [None] when it never landed). *)
val lateness : deadline:Q.t -> Q.t option -> Q.t option

(** A dispatchable work assignment: orders, per-platform-index loads,
    dispatch origin. *)
type seq = {
  sigma1 : int array;
  sigma2 : int array;
  loads : Q.t array;
  start : Q.t;
  source : source;
}

(** [seq_of_schedule sched ~start] extracts orders and loads from an
    explicit schedule ([sigma2] by return start date). *)
val seq_of_schedule : ?source:source -> Schedule.t -> start:Q.t -> seq

(** [replay_seq platform plan seq] replays the assignment through the
    one-port [Sends_first] protocol with every duration integrated
    through the fault plan ({!Faults.finish_time}).  The master skips
    result messages that would never complete. *)
val replay_seq : Platform.t -> Faults.plan -> seq -> completion list

(** [report_of ~deadline ~total completions] aggregates a replay. *)
val report_of : deadline:Q.t -> total:Q.t -> completion list -> report

(** {1 Recovery policies} *)

type policy =
  | Resolve  (** re-solve LP (2) for the residual on all survivors *)
  | Drop_faulty
      (** re-solve on the workers untouched by any fault — write off
          stragglers entirely *)
  | Margin of Q.t
      (** like [Resolve], but size the committed load as if every faulty
          survivor were a further [1 + m] slower (via
          {!Sensitivity.perturb}), leaving slack against deeper
          degradation *)

val policy_to_string : policy -> string

(** Inverse of {!policy_to_string}; also accepts ["drop"] and bare
    ["margin"] (= [margin:1/4]). *)
val policy_of_string : string -> policy option

(** [Resolve; Drop_faulty; Margin 1/4]. *)
val default_policies : policy list

type recovery = {
  at : Q.t;  (** splice point = first fault onset *)
  banked : Q.t;  (** load already returned at [at] *)
  residual : Q.t;
  planned : Q.t;  (** residual load the recovery schedule carries *)
  unscheduled : Q.t;  (** residual beyond the degraded capacity *)
  degraded : Platform.t;  (** platform the schedule validates against *)
  schedule : Schedule.t;  (** dates relative to [at] *)
}

type decision = Keep_original | Recover of recovery

type outcome = {
  plan : Faults.plan;
  deadline : Q.t;
  total : Q.t;
  policy_used : policy option;  (** [None] iff [Keep_original] *)
  decision : decision;
  baseline : report;  (** no-recovery continuation *)
  achieved : report;  (** the chosen execution *)
  candidates : (policy * report) list;
}

(** [respond plan sol ~load] decides how to react to [plan] when
    executing [Schedule.for_load sol ~load] (deadline
    [Lp_model.time_for_load sol ~load]).  Guarantees
    [achieved.done_by_deadline >= baseline.done_by_deadline].
    Errors when the plan references absent workers or [load <= 0]. *)
val respond :
  ?policies:policy list ->
  Faults.plan ->
  Lp_model.solved ->
  load:Q.t ->
  (outcome, Errors.t) result

(** @raise Errors.Error — see {!respond}. *)
val respond_exn :
  ?policies:policy list -> Faults.plan -> Lp_model.solved -> load:Q.t -> outcome

val pp_report : Format.formatter -> report -> unit
val pp_outcome : Format.formatter -> outcome -> unit
