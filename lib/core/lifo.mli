(** Optimal LIFO schedules ([sigma2] is the reverse of [sigma1]).

    The paper (Section 5, building on the companion papers [7,8]) uses
    the optimal LIFO solution as its strongest heuristic: the optimal
    two-port LIFO schedule serves all workers by non-decreasing [c_i]
    and is, by construction, a valid one-port schedule.  We solve the
    one-port LIFO LP directly for that order; the test suite checks both
    the order optimality (by brute force on small platforms) and the
    equality with the two-port LIFO optimum. *)

(** [order platform] is non-decreasing [c], for {e every} return ratio:
    the mirror of a LIFO schedule is the LIFO schedule with the {e same}
    sending order on the swapped [(d, w, c)] platform, so — unlike
    {!Fifo.order} — the [z > 1] mirror argument does not reverse the
    order.  (An earlier revision flipped it; the differential fuzzer
    showed the flipped order strictly suboptimal on [z > 1]
    platforms.) *)
val order : Platform.t -> int array

(** [optimal ?model platform] is the optimal LIFO schedule
    (default: one-port). *)
val optimal : ?model:Lp_model.model -> Platform.t -> Lp_model.solved

(** [solve_order ?model platform order] is the best LIFO schedule with
    the given sending order. *)
val solve_order : ?model:Lp_model.model -> Platform.t -> int array -> Lp_model.solved
