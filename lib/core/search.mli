(** Branch-and-bound search for the best FIFO sending order.

    Theorem 1 solves the FIFO problem when every worker has the same
    return ratio [d_i / c_i].  Outside that hypothesis (mixed
    applications, asymmetric links) no ordering rule is known, and
    {!Brute.best_fifo} costs [p!] LPs.  This module searches the
    permutation tree with an admissible LP relaxation:

    - a {e prefix} of the order is fixed; its deadline constraints are
      exact (every unplaced worker provably returns after the whole
      prefix under FIFO);
    - each unplaced worker is given its most optimistic completion
      (served immediately after the prefix, returning first among the
      unplaced), which can only overestimate the achievable throughput;
    - the one-port constraint is kept in full.

    A node is pruned when its relaxation bound cannot beat the
    incumbent (seeded with the Theorem 1 order, which is usually
    optimal and makes the search mostly a proof of optimality).  The
    bound test is three-tier: the exact knapsack bound of
    {!Bounds.prefix_bound} first (it dominates the LP bound, so pruning
    on it never changes a decision — it just skips both LP solves), then
    a floating-point simplex, then an exact confirmation only when
    pruning looks possible — so no subtree is ever cut on floating-point
    evidence, but most nodes skip the exact LP.  Leaf solves run through
    the certified fast pipeline ({!Lp_model.solve_cached}), threading
    the previous optimal basis as a warm start.

    With [?jobs > 1] the root subtrees are searched by a domain pool.
    The returned {e solution} is bit-identical for every [jobs] value:
    cross-task pruning is strict and the reduction follows subtree
    order, so the canonical optimum of the sequential search always
    survives.  The {e statistics} are not part of that guarantee — a
    parallel run prunes differently, so [nodes]/[pruned]/[lps] may vary
    with [jobs] (and leaf solves may be answered by the LP cache). *)

module Q = Numeric.Rational

type stats = {
  nodes : int;  (** search-tree nodes visited *)
  pruned : int;  (** subtrees cut by the bound *)
  lps : int;  (** exact LPs requested (bounds + leaves; cache hits included) *)
}

(** A search result: the optimal solution plus the statistics of the run
    that found it. *)
type outcome = { solved : Lp_model.solved; stats : stats }

(** [best_fifo ?model ?jobs platform] is the exact optimal FIFO solution
    (over all sending orders; participation is still decided by the LP)
    and the search statistics.  [jobs] defaults to [1] (sequential). *)
val best_fifo : ?model:Lp_model.model -> ?jobs:int -> Platform.t -> outcome

(** [best_lifo ?model ?jobs platform] is the exact optimal LIFO
    solution.  The relaxation adapts: a LIFO prefix's workers return
    {e last} (after every unplaced worker), so their deadline rows only
    involve the prefix, while each unplaced worker optimistically pays
    the prefix sends, its own chain, and the whole prefix return
    block. *)
val best_lifo : ?model:Lp_model.model -> ?jobs:int -> Platform.t -> outcome
