module Q = Numeric.Rational

type model = One_port | Two_port

type solved = {
  scenario : Scenario.t;
  model : model;
  rho : Q.t;
  alpha : Q.t array;
  idle : Q.t array;
  pivots : int;
  basis : int array;
}

(* ------------------------------------------------------------------ *)
(* Fast-pipeline counters.  Process-wide atomics: enumeration runs across
   domains, and the numbers are diagnostics, so relaxed increments are
   fine. *)

type pipeline_stats = {
  float_wins : int;
  warm_wins : int;
  exact_fallbacks : int;
  pruned : int;
  float_pivots : int;
  exact_pivots : int;
}

let float_wins = Atomic.make 0
let warm_wins = Atomic.make 0
let exact_fallbacks = Atomic.make 0
let pruned_nodes = Atomic.make 0
let float_pivots = Atomic.make 0
let exact_pivots = Atomic.make 0
let bump counter n = ignore (Atomic.fetch_and_add counter n)

let pipeline_stats () =
  {
    float_wins = Atomic.get float_wins;
    warm_wins = Atomic.get warm_wins;
    exact_fallbacks = Atomic.get exact_fallbacks;
    pruned = Atomic.get pruned_nodes;
    float_pivots = Atomic.get float_pivots;
    exact_pivots = Atomic.get exact_pivots;
  }

let reset_pipeline_stats () =
  Atomic.set float_wins 0;
  Atomic.set warm_wins 0;
  Atomic.set exact_fallbacks 0;
  Atomic.set pruned_nodes 0;
  Atomic.set float_pivots 0;
  Atomic.set exact_pivots 0

let note_pruned n = bump pruned_nodes n

let pp_pipeline_stats fmt s =
  Format.fprintf fmt
    "@[<v>float-path wins:  %d@,warm-start wins:  %d@,exact fallbacks:  %d@,\
     pruned nodes:     %d@,float pivots:     %d@,exact pivots:     %d@]"
    s.float_wins s.warm_wins s.exact_fallbacks s.pruned s.float_pivots
    s.exact_pivots

let problem model (s : Scenario.t) =
  let q = Scenario.num_enrolled s in
  let wk k = Platform.get s.Scenario.platform s.Scenario.sigma1.(k) in
  (* Position of each enrolled worker (by sigma1 slot) in sigma2. *)
  let return_pos =
    Array.init q (fun k -> Scenario.return_position s s.Scenario.sigma1.(k))
  in
  (* Variables: alpha_0..alpha_{q-1} then x_0..x_{q-1}, sigma1 order. *)
  let nvars = 2 * q in
  let names =
    Array.init nvars (fun v ->
        if v < q then Printf.sprintf "alpha_%s" (wk v).Platform.name
        else Printf.sprintf "x_%s" (wk (v - q)).Platform.name)
  in
  let objective =
    Array.init nvars (fun v -> if v < q then Q.one else Q.zero)
  in
  let deadline k =
    let coeffs = Array.make nvars Q.zero in
    for j = 0 to q - 1 do
      let contrib = ref Q.zero in
      (* data transfers the master performs no later than P_{sigma1(k)}'s *)
      if j <= k then contrib := Q.add !contrib (wk j).Platform.c;
      (* result transfers no earlier than P's in sigma2 order *)
      if return_pos.(j) >= return_pos.(k) then
        contrib := Q.add !contrib (wk j).Platform.d;
      if j = k then contrib := Q.add !contrib (wk j).Platform.w;
      coeffs.(j) <- !contrib
    done;
    coeffs.(q + k) <- Q.one;
    Simplex.Problem.constr coeffs Simplex.Problem.Le Q.one
  in
  let constraints = List.init q deadline in
  let constraints =
    match model with
    | Two_port -> constraints
    | One_port ->
      let coeffs = Array.make nvars Q.zero in
      for j = 0 to q - 1 do
        coeffs.(j) <- Q.add (wk j).Platform.c (wk j).Platform.d
      done;
      constraints @ [ Simplex.Problem.constr coeffs Simplex.Problem.Le Q.one ]
  in
  Simplex.Problem.make ~names Simplex.Problem.Maximize objective constraints

(* Certify [sol] independently and repackage it as a [solved] record. *)
let accept model (s : Scenario.t) p (sol : Simplex.Solver.solution) =
  match Simplex.Certify.check p sol with
  | Error msgs ->
    (* Unreachable unless the solver itself is wrong; surfaced as a
       typed error rather than an assertion so callers can log it. *)
    Errors.invalid "LP certification failed: %s" (String.concat "; " msgs)
  | Ok () ->
    let n = Platform.size s.Scenario.platform in
    let alpha = Array.make n Q.zero in
    Array.iteri
      (fun k i -> alpha.(i) <- sol.Simplex.Solver.point.(k))
      s.Scenario.sigma1;
    (* [idle] is canonical, not read off the simplex point: it is the gap
       between the worker's compute finish and its return start in the
       canonical packed timeline (sends packed from 0, returns packed
       against the horizon — exactly [Schedule.of_solved]'s layout).  The
       LP's own idle variable duplicates its row's slack column, so the
       split between them depends on the pivot path; the gap depends only
       on [alpha], which keeps the two solver pipelines bit-identical. *)
    let idle = Array.make n Q.zero in
    let ret_pos =
      Array.map (fun i -> Scenario.return_position s i) s.Scenario.sigma1
    in
    Array.iteri
      (fun k i ->
        if Q.sign alpha.(i) > 0 then begin
          let gap = ref Q.one in
          Array.iteri
            (fun j ij ->
              let w = Platform.get s.Scenario.platform ij in
              if j <= k then gap := Q.sub !gap (Q.mul alpha.(ij) w.Platform.c);
              if ret_pos.(j) >= ret_pos.(k) then
                gap := Q.sub !gap (Q.mul alpha.(ij) w.Platform.d))
            s.Scenario.sigma1;
          let w = Platform.get s.Scenario.platform i in
          idle.(i) <- Q.sub !gap (Q.mul alpha.(i) w.Platform.w)
        end)
      s.Scenario.sigma1;
    Ok
      {
        scenario = s;
        model;
        rho = sol.Simplex.Solver.value;
        alpha;
        idle;
        pivots = sol.Simplex.Solver.pivots;
        basis = sol.Simplex.Solver.basis;
      }

let solve ?(model = One_port) (s : Scenario.t) =
  let p = problem model s in
  match Simplex.Solver.solve_result p with
  | Error e -> Error (Errors.of_solver e)
  | Ok sol ->
    bump exact_pivots sol.Simplex.Solver.pivots;
    accept model s p sol

let solve_exn ?model s = Errors.get_exn (solve ?model s)

(* The certified fast pipeline.  A candidate basis (the caller's warm
   start, else the float solver's terminal basis) is handed to
   {!Simplex.Solver.certify_basis}, which runs one exact factorization
   restricted to the basis columns and accepts only when every
   non-basic reduced cost is strictly negative — proving the optimal
   point unique, and therefore equal to the cold solve's.  Anything
   else (defective basis, float stall, alternate optima, integer
   overflow in the certificate) falls back to the canonical exact
   solve, so the result is bit-identical to {!solve} by
   construction. *)
let solve_fast ?(model = One_port) ?warm ?(max_float_pivots = 100_000)
    (s : Scenario.t) =
  let p = problem model s in
  let certified =
    match warm with
    | None -> None
    | Some basis -> (
      match Simplex.Solver.certify_basis p ~basis with
      | Some sol ->
        bump warm_wins 1;
        Some sol
      | None -> None)
  in
  let certified =
    match certified with
    | Some _ -> certified
    | None -> (
      match Simplex.Float_solver.solve ~max_pivots:max_float_pivots p with
      | Simplex.Float_solver.Optimal fsol -> (
        bump float_pivots fsol.Simplex.Float_solver.pivots;
        (* The certificate is deterministic in (problem, basis): when the
           float solver lands on the warm basis that was just rejected,
           re-certifying it can only fail again. *)
        let fbasis = fsol.Simplex.Float_solver.basis in
        if warm = Some fbasis then None
        else
          match Simplex.Solver.certify_basis p ~basis:fbasis with
          | Some sol ->
            bump float_wins 1;
            Some sol
          | None -> None)
      | Simplex.Float_solver.Unbounded | Simplex.Float_solver.Infeasible
      | Simplex.Float_solver.Stalled ->
        None)
  in
  match certified with
  | Some sol ->
    bump exact_pivots sol.Simplex.Solver.pivots;
    accept model s p sol
  | None ->
    bump exact_fallbacks 1;
    solve ~model s

let solve_fast_exn ?model ?warm ?max_float_pivots s =
  Errors.get_exn (solve_fast ?model ?warm ?max_float_pivots s)

(* ------------------------------------------------------------------ *)
(* LRU-memoized solving.                                              *)

(* Canonical fingerprint of everything [solve] depends on.  Rationals
   print in lowest terms with positive denominator ([Q.to_string] is
   injective on the normalized representation), so structural equality
   of scenarios coincides with string equality of keys. *)
let scenario_key model (s : Scenario.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (match model with One_port -> "1p|" | Two_port -> "2p|");
  Array.iter
    (fun (wk : Platform.worker) ->
      Buffer.add_string buf wk.Platform.name;
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string wk.Platform.c);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string wk.Platform.w);
      Buffer.add_char buf ':';
      Buffer.add_string buf (Q.to_string wk.Platform.d);
      Buffer.add_char buf ';')
    s.Scenario.platform.Platform.workers;
  Buffer.add_char buf '|';
  Array.iter
    (fun i ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',')
    s.Scenario.sigma1;
  Buffer.add_char buf '|';
  Array.iter
    (fun i ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ',')
    s.Scenario.sigma2;
  Buffer.contents buf

(* Distance between two scenario fingerprints, for the nearest-neighbor
   warm-repair probe: the number of differing worker [name:c:w:d]
   fields, provided the keys describe the same model, the same worker
   count and the same permutation pair — otherwise [None]
   (incomparable: the LPs have different shapes or different row
   semantics, so a cached basis cannot even be installed).  Purely
   syntactic on the canonical key, so it never needs the scenarios
   themselves. *)
let scenario_key_distance a b =
  let split4 k =
    match String.split_on_char '|' k with
    | [ model; workers; s1; s2 ] -> Some (model, workers, s1, s2)
    | _ -> None
  in
  match (split4 a, split4 b) with
  | Some (ma, wa, s1a, s2a), Some (mb, wb, s1b, s2b)
    when ma = mb && s1a = s1b && s2a = s2b ->
    let fa = String.split_on_char ';' wa in
    let fb = String.split_on_char ';' wb in
    if List.length fa <> List.length fb then None
    else
      Some (List.fold_left2 (fun d x y -> if x = y then d else d + 1) 0 fa fb)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Incremental re-solve counters (same discipline as the pipeline
   stats above: process-wide relaxed atomics, diagnostics only). *)

type resolve_stats = {
  probes : int;
  repair_wins : int;
  repair_fallbacks : int;
  repair_pivots : int;
}

let neighbor_probes = Atomic.make 0
let repair_wins = Atomic.make 0
let repair_fallbacks = Atomic.make 0
let repair_pivot_count = Atomic.make 0

let resolve_stats () =
  {
    probes = Atomic.get neighbor_probes;
    repair_wins = Atomic.get repair_wins;
    repair_fallbacks = Atomic.get repair_fallbacks;
    repair_pivots = Atomic.get repair_pivot_count;
  }

let reset_resolve_stats () =
  Atomic.set neighbor_probes 0;
  Atomic.set repair_wins 0;
  Atomic.set repair_fallbacks 0;
  Atomic.set repair_pivot_count 0

let pp_resolve_stats fmt s =
  Format.fprintf fmt
    "@[<v>neighbor probes:  %d@,repair wins:      %d@,repair fallbacks: %d@,\
     repair pivots:    %d@]"
    s.probes s.repair_wins s.repair_fallbacks s.repair_pivots

(* Warm repair from a neighbouring scenario's optimal basis.  The
   cheapest possibility first: for a small parameter nudge the old
   basis is very often still optimal, and [certify_basis] proves it in
   one restricted exact factorization (zero pivots).  Otherwise a
   bounded float dual-simplex repair walks from the old basis to a new
   terminal basis, which must then pass the same exact certification.
   [None] means "no certified answer this way" — never a wrong one —
   and the caller falls back to the ordinary pipeline, which keeps
   every cached answer bit-identical to [solve]'s by construction. *)
let solve_from_neighbor model s (near : solved) =
  bump neighbor_probes 1;
  let p = problem model s in
  let certified ~pivots basis =
    match Simplex.Solver.certify_basis p ~basis with
    | None -> None
    | Some sol -> (
      match accept model s p sol with
      | Ok solved ->
        bump repair_wins 1;
        bump repair_pivot_count pivots;
        Some solved
      | Error _ -> None)
  in
  match certified ~pivots:0 near.basis with
  | Some _ as hit -> hit
  | None -> (
    match Simplex.Float_solver.repair p ~basis:near.basis with
    | None -> None
    | Some (basis, pivots) ->
      if basis = near.basis then None else certified ~pivots basis)

let default_cache_capacity = 4096
let cache : (string, solved) Parallel.Lru.t ref =
  ref (Parallel.Lru.create ~capacity:default_cache_capacity ())

(* Every branch produces the same record bit-for-bit (see [solve_fast]
   and [solve_from_neighbor]), so the cache key does not need to
   distinguish them and a hit may have been computed by any pipeline.
   [warm] is a hint, not an input: it never changes the answer, only
   the pivot count.  Single-flight: concurrent misses on one scenario
   (server workers fielding identical requests, enumeration domains
   meeting on a shared prefix) run one solve; the others join it.

   A miss first probes the cache for the nearest already solved
   neighbor — same model, same permutations, same worker count, fewest
   differing worker fields — and tries to repair that scenario's
   optimal basis into this one's (certify-first, then bounded dual
   simplex + certification).  Certification failure of any kind falls
   back to the ordinary [fast] pipeline. *)
let solve_cached ?model ?(fast = true) ?warm s =
  let model_v = Option.value model ~default:One_port in
  let key = scenario_key model_v s in
  Parallel.Lru.find_or_compute !cache key (fun () ->
      let full () =
        if fast then solve_fast_exn ?model ?warm s else solve_exn ?model s
      in
      if not fast then full ()
      else
        match
          Parallel.Lru.find_nearest !cache ~score:(scenario_key_distance key)
        with
        | None -> full ()
        | Some (_, near) -> (
          match solve_from_neighbor model_v s near with
          | Some solved -> solved
          | None ->
            bump repair_fallbacks 1;
            full ()))

let cache_stats () = Parallel.Lru.stats !cache

let reset_cache ?(capacity = default_cache_capacity) () =
  cache := Parallel.Lru.create ~capacity ()

(* ------------------------------------------------------------------ *)

let estimate_rho ?(model = One_port) s =
  match Simplex.Float_solver.solve (problem model s) with
  | Simplex.Float_solver.Optimal sol -> Some sol.Simplex.Float_solver.value
  | Simplex.Float_solver.Unbounded | Simplex.Float_solver.Infeasible
  | Simplex.Float_solver.Stalled ->
    None

let enrolled_workers sol =
  let out = ref [] in
  Array.iteri (fun i a -> if Q.sign a > 0 then out := i :: !out) sol.alpha;
  List.rev !out

type constraint_status = { label : string; slack : Q.t; binding : bool }

let constraint_report sol =
  let s = sol.scenario in
  let platform = s.Scenario.platform in
  let wk i = Platform.get platform i in
  let status label slack = { label; slack; binding = Q.is_zero slack } in
  let deadline i =
    (* the worker's whole chain: wait + receive + compute + gap + return
       block; the gap is the LP idle variable plus the row's own slack,
       i.e. 1 - (chain without idle) *)
    let spos = Scenario.send_position s i in
    let rpos = Scenario.return_position s i in
    let chain = ref Q.zero in
    Array.iter
      (fun j ->
        let w = wk j in
        if Scenario.send_position s j <= spos then
          chain := Q.add !chain (Q.mul sol.alpha.(j) w.Platform.c);
        if Scenario.return_position s j >= rpos then
          chain := Q.add !chain (Q.mul sol.alpha.(j) w.Platform.d);
        if j = i then chain := Q.add !chain (Q.mul sol.alpha.(j) w.Platform.w))
      s.Scenario.sigma1;
    status
      (Printf.sprintf "deadline(%s)" (wk i).Platform.name)
      (Q.sub Q.one !chain)
  in
  let rows = List.map deadline (Array.to_list s.Scenario.sigma1) in
  match sol.model with
  | Two_port -> rows
  | One_port ->
    let used =
      Q.sum_array
        (Array.map
           (fun i ->
             Q.mul sol.alpha.(i)
               (Q.add (wk i).Platform.c (wk i).Platform.d))
           s.Scenario.sigma1)
    in
    rows @ [ status "one-port" (Q.sub Q.one used) ]

let time_for_load sol ~load =
  if Q.sign sol.rho <= 0 then invalid_arg "Lp_model.time_for_load: zero throughput";
  Q.div load sol.rho

let pp fmt sol =
  Format.fprintf fmt "@[<v>%s model, rho = %s (~%.6g)@,%a@,loads:@,"
    (match sol.model with One_port -> "one-port" | Two_port -> "two-port")
    (Q.to_string sol.rho) (Q.to_float sol.rho) Scenario.pp sol.scenario;
  Array.iteri
    (fun i a ->
      if Q.sign a > 0 then
        Format.fprintf fmt "  %-6s alpha=%-12s idle=%s@,"
          (Platform.get sol.scenario.Scenario.platform i).Platform.name
          (Q.to_string a)
          (Q.to_string sol.idle.(i)))
    sol.alpha;
  Format.fprintf fmt "@]"
