type mode = [ `Exact | `Fast | `Cached ]

let solve ?(mode = `Fast) ?model ?warm ?max_float_pivots scenario =
  match mode with
  | `Exact -> Lp_model.solve ?model scenario
  | `Fast -> Lp_model.solve_fast ?model ?warm ?max_float_pivots scenario
  | `Cached -> (
    match Lp_model.solve_cached ?model ?warm scenario with
    | solved -> Ok solved
    | exception Errors.Error e -> Error e)

let solve_exn ?mode ?model ?warm ?max_float_pivots scenario =
  Errors.get_exn (solve ?mode ?model ?warm ?max_float_pivots scenario)
