module Q = Numeric.Rational

(* Lazy permutation enumeration.  The order is exactly the one the
   classic list recursion produced ([insert_everywhere] of the head into
   every permutation of the tail), because downstream tie-breaking is
   "first maximizer in enumeration order": changing the order would
   change which optimal scenario is returned. *)
let insert_everywhere x l =
  let rec go acc l () =
    let here = List.rev_append acc (x :: l) in
    match l with
    | [] -> Seq.Cons (here, Seq.empty)
    | y :: rest -> Seq.Cons (here, go (y :: acc) rest)
  in
  go [] l

let rec perms l =
  match l with
  | [] -> Seq.return []
  | x :: rest -> Seq.concat_map (insert_everywhere x) (perms rest)

let permutations_seq n = Seq.map Array.of_list (perms (List.init n Fun.id))
let permutations n = List.of_seq (permutations_seq n)

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

(* Solve one candidate, threading the previous optimal basis through as a
   warm start (a hint only — never changes the answer) and keeping the
   first maximizer under strict [>]. *)
let consider ~model ~fast ~best ~warm s =
  let sol = Lp_model.solve_cached ~model ~fast ?warm:!warm s in
  if fast then warm := Some sol.Lp_model.basis;
  (match !best with
  | Some b when Q.compare sol.Lp_model.rho b.Lp_model.rho <= 0 -> ()
  | Some _ | None -> best := Some sol);
  sol.Lp_model.rho

(* Two-tier bound test: the float knapsack bound first (a few
   microseconds), the exact rational bound — the only one allowed to
   decide — only when the float bound says pruning is plausible.  A
   float error in either direction is harmless: too high skips the
   exact confirmation (the candidate is solved as if never pruned), too
   low wastes one exact bound computation.  [exact_le]: non-strict test
   against a sequential incumbent; strict against a shared parallel
   one. *)
let bound_cannot_beat ~model s incumbent ~exact_le =
  let inc = Q.to_float incumbent in
  Bounds.scenario_bound_float ~model s
  <= inc +. (1e-9 *. Float.max 1.0 (Float.abs inc))
  &&
  let c = Q.compare (Bounds.scenario_bound ~model s) incumbent in
  if exact_le then c <= 0 else c < 0

(* Sequential engine: candidates are consumed lazily in enumeration
   order; a candidate is skipped when its cheap bound cannot beat the
   incumbent (non-strict: a skipped candidate can tie the incumbent but
   never precede it, so the first maximizer survives). *)
let seq_best ~model ~fast ~prune scenarios =
  let best = ref None in
  let warm = ref None in
  Seq.iter
    (fun s ->
      let skip =
        prune
        &&
        match !best with
        | None -> false
        | Some (b : Lp_model.solved) ->
          bound_cannot_beat ~model s b.Lp_model.rho ~exact_le:true
      in
      if skip then Lp_model.note_pruned 1
      else ignore (consider ~model ~fast ~best ~warm s))
    scenarios;
  match !best with
  | Some b -> b
  | None -> invalid_arg "Brute.best_over: empty scenario list"

(* Parallel engine: every candidate is solved (or pruned) independently;
   pruning is STRICT against the best throughput any domain has
   published.  [shared <= rho*] at all times, so [bound < shared] implies
   the candidate is not a maximizer — no candidate tying the optimum is
   ever skipped, and the sequential reduction below returns the first
   maximizer in enumeration order, bit-identical to [jobs = 1].  Warm
   bases live in per-domain scratch state ({!Parallel.Pool.run_local}). *)
let par_best ~model ~jobs ~fast ~prune scenarios =
  if Array.length scenarios = 0 then
    invalid_arg "Brute.best_over: empty scenario list";
  let shared = Atomic.make Q.zero in
  let rec publish r =
    let cur = Atomic.get shared in
    if Q.compare r cur > 0 && not (Atomic.compare_and_set shared cur r) then
      publish r
  in
  let task warm s =
    if
      prune
      (* Snapshot of the shared incumbent: it only grows, so pruning
         against an older (smaller) value is merely conservative. *)
      && bound_cannot_beat ~model s (Atomic.get shared) ~exact_le:false
    then begin
      Lp_model.note_pruned 1;
      None
    end
    else begin
      let best = ref None in
      publish (consider ~model ~fast ~best ~warm s);
      !best
    end
  in
  let results =
    Parallel.Pool.run_local ~jobs ~init:(fun () -> ref None) task scenarios
  in
  let best = ref None in
  Array.iter
    (fun r ->
      match (r, !best) with
      | None, _ -> ()
      | Some (sol : Lp_model.solved), Some (b : Lp_model.solved)
        when Q.compare sol.Lp_model.rho b.Lp_model.rho <= 0 ->
        ()
      | Some sol, _ -> best := Some sol)
    results;
  match !best with
  | Some b -> b
  | None -> assert false (* the first candidate is never pruned *)

let best_of ~model ~jobs ~fast ~prune scenarios =
  if jobs <= 1 then seq_best ~model ~fast ~prune scenarios
  else par_best ~model ~jobs ~fast ~prune (Array.of_seq scenarios)

let best_fifo ?(model = Lp_model.One_port) ?(jobs = 1) ?(fast = true)
    ?(prune = true) platform =
  best_of ~model ~jobs ~fast ~prune
    (Seq.map
       (fun ord -> Scenario.fifo_exn platform ord)
       (permutations_seq (Platform.size platform)))

let best_lifo ?(model = Lp_model.One_port) ?(jobs = 1) ?(fast = true)
    ?(prune = true) platform =
  best_of ~model ~jobs ~fast ~prune
    (Seq.map
       (fun ord -> Scenario.lifo_exn platform ord)
       (permutations_seq (Platform.size platform)))

let best_general ?(model = Lp_model.One_port) ?(jobs = 1) ?(fast = true)
    ?(prune = true) platform =
  let n = Platform.size platform in
  if jobs <= 1 then begin
    (* Branch-and-bound over sigma1 blocks: [prefix_bound ~discipline:`Free]
       holds for every sigma2, so when it cannot beat the incumbent the
       whole [n!]-wide block is skipped at once. *)
    let best = ref None in
    let warm = ref None in
    let block = factorial n in
    Seq.iter
      (fun sigma1 ->
        let block_skip =
          prune
          &&
          match !best with
          | None -> false
          | Some (b : Lp_model.solved) ->
            Q.compare
              (Bounds.prefix_bound ~model ~discipline:`Free platform
                 ~prefix:sigma1 ~remaining:[||])
              b.Lp_model.rho
            <= 0
        in
        if block_skip then Lp_model.note_pruned block
        else
          Seq.iter
            (fun sigma2 ->
              let s = Scenario.make_exn platform ~sigma1 ~sigma2 in
              let skip =
                prune
                &&
                match !best with
                | None -> false
                | Some (b : Lp_model.solved) ->
                  bound_cannot_beat ~model s b.Lp_model.rho ~exact_le:true
              in
              if skip then Lp_model.note_pruned 1
              else ignore (consider ~model ~fast ~best ~warm s))
            (permutations_seq n))
      (permutations_seq n);
    match !best with
    | Some b -> b
    | None -> invalid_arg "Brute.best_over: empty scenario list"
  end
  else
    par_best ~model ~jobs ~fast ~prune
      (Array.of_seq
         (Seq.concat_map
            (fun sigma1 ->
              Seq.map
                (fun sigma2 -> Scenario.make_exn platform ~sigma1 ~sigma2)
                (permutations_seq n))
            (permutations_seq n)))
