(** Text serialization of platforms.

    One worker per line: [name c w d], whitespace-separated, rational
    components; blank lines and [#] comments ignored.

    {v
    # the paper's Figure 14 platform at x = 1, matrix size 400
    P1  32/1250  512/27000  16/1250
    P2  2/625    512/27000  1/625
    v} *)

(** [to_string p] serializes the platform. *)
val to_string : Platform.t -> string

(** [of_string s] parses a platform.  Malformed input — unparseable
    rationals (including ["1/0"]), wrong field counts, non-positive
    costs, an empty worker list — is reported as a typed
    {!Errors.Parse_error} (with 1-based line/column of the offending
    token) or {!Errors.Invalid_scenario}; no input makes this raise. *)
val of_string : string -> (Platform.t, Errors.t) result

(** [write path p] writes the platform.
    @raise Errors.Error ([Io_error]) when the file cannot be written. *)
val write : string -> Platform.t -> unit

(** [read path] parses the file; [Error (Io_error _)] when unreadable,
    parse errors carry the file name. *)
val read : string -> (Platform.t, Errors.t) result
