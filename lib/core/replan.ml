module Q = Numeric.Rational
open Q.Infix

(* ------------------------------------------------------------------ *)
(* Exact replay of a plan under faults                                 *)
(* ------------------------------------------------------------------ *)

type source = Original | Recovery

type completion = {
  worker : int;
  load : Q.t;
  source : source;
  finish : Q.t option;
}

type report = {
  deadline : Q.t;
  total : Q.t;
  done_by_deadline : Q.t;
  done_eventually : Q.t;
  makespan : Q.t option;
  completions : completion list;
}

let lateness ~deadline = function
  | None -> None
  | Some finish -> Some (Q.max Q.zero (finish -/ deadline))

(* One work assignment to execute: FIFO/LIFO orders plus per-platform-
   index loads, dispatched from [start].  The master follows the
   [Sends_first] protocol of [Sim.Star]: all initial messages in
   [sigma1] order back to back, then result messages in [sigma2] order
   as the computations complete.  Durations are integrated through the
   fault plan ({!Faults.finish_time}); the master skips transfers that
   would never complete (perfect failure detection). *)
type seq = {
  sigma1 : int array;
  sigma2 : int array;
  loads : Q.t array;
  start : Q.t;
  source : source;
}

let seq_of_schedule ?(source = Original) (sched : Schedule.t) ~start =
  let n = Platform.size sched.Schedule.platform in
  let loads = Array.make n Q.zero in
  Array.iter
    (fun e -> loads.(e.Schedule.worker) <- loads.(e.Schedule.worker) +/ e.Schedule.alpha)
    sched.Schedule.entries;
  {
    sigma1 = Array.map (fun e -> e.Schedule.worker) sched.Schedule.entries;
    sigma2 =
      (let by_return = Array.copy sched.Schedule.entries in
       Array.stable_sort
         (fun a b -> Q.compare a.Schedule.return_.Schedule.start b.Schedule.return_.Schedule.start)
         by_return;
       Array.map (fun e -> e.Schedule.worker) by_return);
    loads;
    start;
    source;
  }

let replay_seq platform plan (s : seq) =
  let active order =
    Array.of_list
      (List.filter (fun i -> Q.sign s.loads.(i) > 0) (Array.to_list order))
  in
  let sends = active s.sigma1 and returns = active s.sigma2 in
  let clock = ref s.start in
  let send_finish = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      match
        Faults.finish_time platform plan (Faults.Send_to i) ~start:!clock
          ~load:s.loads.(i)
      with
      | Some f ->
        Hashtbl.replace send_finish i f;
        clock := f
      | None ->
        (* Sends never block forever (stalls are finite, crashed workers
           still absorb data); keep the port safe regardless. *)
        ())
    sends;
  let master_free = ref !clock in
  let completions =
    Array.to_list
      (Array.map
         (fun i ->
           let finish =
             match Hashtbl.find_opt send_finish i with
             | None -> None
             | Some sf -> (
               match
                 Faults.finish_time platform plan (Faults.Compute_on i) ~start:sf
                   ~load:s.loads.(i)
               with
               | None -> None
               | Some cf -> (
                 let rs = Q.max !master_free cf in
                 match
                   Faults.finish_time platform plan (Faults.Return_from i)
                     ~start:rs ~load:s.loads.(i)
                 with
                 | None -> None
                 | Some rf ->
                   master_free := rf;
                   Some rf))
           in
           { worker = i; load = s.loads.(i); source = s.source; finish })
         returns)
  in
  completions

let report_of ~deadline ~total completions =
  let done_by_deadline =
    Q.sum
      (List.filter_map
         (fun c ->
           match c.finish with
           | Some f when f <=/ deadline -> Some c.load
           | _ -> None)
         completions)
  in
  let done_eventually =
    Q.sum (List.filter_map (fun c -> Option.map (fun _ -> c.load) c.finish) completions)
  in
  let makespan =
    List.fold_left
      (fun acc c ->
        match (acc, c.finish) with
        | None, _ | _, None -> None
        | Some m, Some f -> Some (Q.max m f))
      (Some Q.zero) completions
  in
  let makespan = if done_eventually =/ total then makespan else None in
  { deadline; total; done_by_deadline; done_eventually; makespan; completions }

(* ------------------------------------------------------------------ *)
(* Recovery policies                                                   *)
(* ------------------------------------------------------------------ *)

type policy = Resolve | Drop_faulty | Margin of Q.t

let policy_to_string = function
  | Resolve -> "resolve"
  | Drop_faulty -> "drop-faulty"
  | Margin m -> Printf.sprintf "margin:%s" (Q.to_string m)

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "resolve" ] -> Some Resolve
  | [ "drop-faulty" ] | [ "drop" ] -> Some Drop_faulty
  | [ "margin" ] -> Some (Margin (Q.of_ints 1 4))
  | [ "margin"; m ] -> (
    match Q.of_string m with
    | m when Q.sign m >= 0 -> Some (Margin m)
    | _ | (exception _) -> None)
  | _ -> None

let default_policies = [ Resolve; Drop_faulty; Margin (Q.of_ints 1 4) ]

type recovery = {
  at : Q.t;
  banked : Q.t;
  residual : Q.t;
  planned : Q.t;
  unscheduled : Q.t;
  degraded : Platform.t;
  schedule : Schedule.t;
}

type decision = Keep_original | Recover of recovery

type outcome = {
  plan : Faults.plan;
  deadline : Q.t;
  total : Q.t;
  policy_used : policy option;
  decision : decision;
  baseline : report;
  achieved : report;
  candidates : (policy * report) list;
}

(* Remap a schedule solved on [Platform.restrict p keep] back onto the
   full platform [p]: worker indices translate through [keep], dates and
   loads are untouched. *)
let unrestrict schedule ~platform ~keep =
  {
    schedule with
    Schedule.platform;
    entries =
      Array.map
        (fun e -> { e with Schedule.worker = keep.(e.Schedule.worker) })
        schedule.Schedule.entries;
  }

let build_recovery ~platform ~plan ~policy ~at ~banked ~residual ~deadline =
  if Q.sign (deadline -/ at) <= 0 || Q.sign residual <= 0 then None
  else begin
    let degraded = Faults.degraded_platform platform plan in
    let keep =
      match policy with
      | Resolve | Margin _ -> Faults.survivors platform plan
      | Drop_faulty ->
        let faulty = Faults.faulty_workers plan in
        List.filter
          (fun i -> not (List.mem i faulty))
          (List.init (Platform.size platform) Fun.id)
    in
    match keep with
    | [] -> None
    | keep ->
      let keep = Array.of_list keep in
      (* Stalls are transient, so [degraded_platform] cannot fold them
         into the parameters; budget for them instead — every stall
         window of an enrolled worker that intersects the remaining
         horizon can delay the port chain by at most its length. *)
      let stall_penalty =
        Q.sum
          (List.filter_map
             (function
               | Faults.Stall { worker; at = s; duration }
                 when Array.exists (fun k -> k = worker) keep ->
                 let lo = Q.max s at and hi = Q.min (s +/ duration) deadline in
                 if hi >/ lo then Some (hi -/ lo) else None
               | _ -> None)
             (Faults.faults plan))
      in
      let budget = deadline -/ at -/ stall_penalty in
      if Q.sign budget <= 0 then None
      else begin
      let restricted = Platform.restrict degraded keep in
      let sol = Fifo.optimal restricted in
      let rho = sol.Lp_model.rho in
      if Q.sign rho <= 0 then None
      else begin
        (* How much to commit by the deadline.  [Margin m] sizes the
           commitment against a platform degraded a further [1 + m]
           on every already-faulty surviving worker
           ({!Sensitivity.perturb}), buying slack against deeper
           degradation while the emitted schedule still runs — and
           validates — on the real degraded platform. *)
        let capacity =
          match policy with
          | Resolve | Drop_faulty -> rho */ budget
          | Margin m ->
            let faulty = Faults.faulty_workers plan in
            let hedged =
              Array.to_list keep
              |> List.mapi (fun pos i -> (pos, i))
              |> List.filter (fun (_, i) -> List.mem i faulty)
              |> List.fold_left
                   (fun p (pos, _) ->
                     let p = Sensitivity.perturb p (Sensitivity.Comm pos) ~factor:(Q.one +/ m) in
                     Sensitivity.perturb p (Sensitivity.Comp pos) ~factor:(Q.one +/ m))
                   restricted
            in
            (Fifo.optimal hedged).Lp_model.rho */ budget
        in
        let planned = Q.min residual capacity in
        if Q.sign planned <= 0 then None
        else
          let schedule =
            unrestrict (Schedule.for_load sol ~load:planned) ~platform:degraded ~keep
          in
          Some
            {
              at;
              banked;
              residual;
              planned;
              unscheduled = residual -/ planned;
              degraded;
              schedule;
            }
      end
      end
  end

let better (a : report) (b : report) =
  (* Strictly better: more done by the deadline, then more done
     eventually.  Ties go to the incumbent (the caller iterates with the
     baseline first), so re-planning is only chosen when it wins. *)
  match Q.compare a.done_by_deadline b.done_by_deadline with
  | 0 -> Q.compare a.done_eventually b.done_eventually > 0
  | c -> c > 0

let respond ?(policies = default_policies) plan sol ~load =
  if Q.sign load <= 0 then Errors.invalid "Replan.respond: non-positive load"
  else begin
    let platform = sol.Lp_model.scenario.Scenario.platform in
    match Faults.validate_for platform plan with
    | Error e -> Error e
    | Ok () ->
      let deadline = Lp_model.time_for_load sol ~load in
      let original = Schedule.for_load sol ~load in
      let orig_seq = seq_of_schedule original ~start:Q.zero in
      let baseline =
        report_of ~deadline ~total:load (replay_seq platform plan orig_seq)
      in
      let splice =
        match Faults.first_onset plan with
        | None -> None
        | Some t0 when t0 >=/ deadline -> None
        | Some t0 ->
          (* What the fault-free run had fully returned by [t0] is
             banked; in-flight transfers and computations are cancelled
             and their load folded into the residual. *)
          let fault_free = replay_seq platform Faults.empty orig_seq in
          let banked_completions =
            List.filter
              (fun c -> match c.finish with Some f -> f <=/ t0 | None -> false)
              fault_free
          in
          let banked = Q.sum (List.map (fun c -> c.load) banked_completions) in
          Some (t0, banked, load -/ banked, banked_completions)
      in
      let candidates =
        match splice with
        | None -> []
        | Some (at, banked, residual, banked_completions) ->
          List.filter_map
            (fun policy ->
              match
                build_recovery ~platform ~plan ~policy ~at ~banked ~residual
                  ~deadline
              with
              | None -> None
              | Some recovery ->
                let seq =
                  seq_of_schedule ~source:Recovery recovery.schedule ~start:Q.zero
                in
                let seq = { seq with start = at } in
                (* Dates inside the recovery schedule are relative to
                   [at]; the replay re-derives absolute dates from the
                   protocol, so only the dispatch origin matters. *)
                let completions =
                  banked_completions @ replay_seq platform plan seq
                in
                let report = report_of ~deadline ~total:load completions in
                Some (policy, recovery, report))
            policies
      in
      let chosen =
        List.fold_left
          (fun acc (policy, recovery, report) ->
            match acc with
            | Some (_, _, best) when not (better report best) -> acc
            | _ when not (better report baseline) -> acc
            | _ -> Some (policy, recovery, report))
          None candidates
      in
      let policy_used, decision, achieved =
        match chosen with
        | None -> (None, Keep_original, baseline)
        | Some (policy, recovery, report) -> (Some policy, Recover recovery, report)
      in
      Ok
        {
          plan;
          deadline;
          total = load;
          policy_used;
          decision;
          baseline;
          achieved;
          candidates = List.map (fun (p, _, r) -> (p, r)) candidates;
        }
  end

let respond_exn ?policies plan sol ~load =
  Errors.get_exn (respond ?policies plan sol ~load)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let fraction num den = if Q.is_zero den then 0.0 else Q.to_float (num // den)

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>by deadline %s: %s of %s load (%.1f%%); eventually %s%s@,"
    (Q.to_string r.deadline)
    (Q.to_string r.done_by_deadline)
    (Q.to_string r.total)
    (100.0 *. fraction r.done_by_deadline r.total)
    (Q.to_string r.done_eventually)
    (match r.makespan with
    | Some m -> Printf.sprintf "; makespan %s (~%.6g)" (Q.to_string m) (Q.to_float m)
    | None -> "; some work never completes");
  List.iter
    (fun c ->
      Format.fprintf fmt "  worker %d: %s load, %s%s@," c.worker
        (Q.to_string c.load)
        (match c.finish with
        | None -> "LOST"
        | Some f -> Printf.sprintf "returned at %s (~%.6g)" (Q.to_string f) (Q.to_float f))
        (match lateness ~deadline:r.deadline c.finish with
        | Some l when Q.sign l > 0 -> Printf.sprintf ", late by %s" (Q.to_string l)
        | _ -> ""))
    r.completions;
  Format.fprintf fmt "@]"

let pp_outcome fmt o =
  Format.fprintf fmt "@[<v>faults:@,%s" (String.trim (Faults.to_string o.plan));
  Format.fprintf fmt "@,decision: %s@,"
    (match o.decision with
    | Keep_original -> "keep original schedule (re-planning would not help)"
    | Recover r ->
      Printf.sprintf
        "re-plan at %s [%s]: %s banked, %s residual, %s re-scheduled%s"
        (Q.to_string r.at)
        (match o.policy_used with Some p -> policy_to_string p | None -> "?")
        (Q.to_string r.banked) (Q.to_string r.residual) (Q.to_string r.planned)
        (if Q.sign r.unscheduled > 0 then
           Printf.sprintf " (%s beyond the deadline capacity)" (Q.to_string r.unscheduled)
         else ""));
  Format.fprintf fmt "no-recovery baseline:@,  @[%a@]@," pp_report o.baseline;
  Format.fprintf fmt "achieved:@,  @[%a@]@]" pp_report o.achieved
