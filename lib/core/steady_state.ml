module Q = Numeric.Rational
open Q.Infix

type solved = {
  platform : Platform.t;
  workload : Workload.t;
  period : Q.t;
  alloc : Q.t array array;
  port_time : Q.t;
  work_time : Q.t array;
  throughput : Q.t;
  pivots : int;
}

let certify problem sol ~what =
  match Simplex.Certify.check problem sol with
  | Ok () -> Ok ()
  | Error msgs ->
    Error
      (Errors.Invalid_scenario
         (Printf.sprintf "%s: certification failed: %s" what
            (String.concat "; " msgs)))

(* Variable layout: a(k,i) at k*p + i, then T at K*p. *)
let solve platform workload =
  let ( let* ) = Result.bind in
  let p = Platform.size platform in
  let kk = Workload.size workload in
  let nvars = (kk * p) + 1 in
  let a_var k i = (k * p) + i in
  let t_var = kk * p in
  let row () = Array.make nvars Q.zero in
  let constraints = ref [] in
  let add coeffs relation rhs =
    constraints := Simplex.Problem.constr coeffs relation rhs :: !constraints
  in
  (* every load fully processed each period *)
  for k = 0 to kk - 1 do
    let coeffs = row () in
    for i = 0 to p - 1 do
      coeffs.(a_var k i) <- Q.one
    done;
    add coeffs Simplex.Problem.Eq (Workload.get workload k).Workload.size
  done;
  (* one-port: total transfer time per period fits in T *)
  let port = row () in
  for k = 0 to kk - 1 do
    for i = 0 to p - 1 do
      let wk = Platform.get platform i in
      port.(a_var k i) <- wk.Platform.c +/ Workload.return_cost workload k wk
    done
  done;
  port.(t_var) <- Q.minus_one;
  add port Simplex.Problem.Le Q.zero;
  (* every worker's compute time per period fits in T *)
  for i = 0 to p - 1 do
    let coeffs = row () in
    for k = 0 to kk - 1 do
      coeffs.(a_var k i) <- (Platform.get platform i).Platform.w
    done;
    coeffs.(t_var) <- Q.minus_one;
    add coeffs Simplex.Problem.Le Q.zero
  done;
  let objective = Array.make nvars Q.zero in
  objective.(t_var) <- Q.one;
  let problem =
    Simplex.Problem.make Simplex.Problem.Minimize objective
      (List.rev !constraints)
  in
  match Simplex.Solver.solve problem with
  | Simplex.Solver.Infeasible -> Error Errors.Infeasible
  | Simplex.Solver.Unbounded -> Error Errors.Unbounded
  | Simplex.Solver.Optimal sol ->
    let* () = certify problem sol ~what:"Steady_state.solve" in
    let point = sol.Simplex.Solver.point in
    let alloc =
      Array.init kk (fun k -> Array.init p (fun i -> point.(a_var k i)))
    in
    let port_time =
      Q.sum_array
        (Array.init kk (fun k ->
             Q.sum_array
               (Array.init p (fun i ->
                    let wk = Platform.get platform i in
                    alloc.(k).(i)
                    */ (wk.Platform.c +/ Workload.return_cost workload k wk)))))
    in
    let work_time =
      Array.init p (fun i ->
          (Platform.get platform i).Platform.w
          */ Q.sum_array (Array.init kk (fun k -> alloc.(k).(i))))
    in
    let period = point.(t_var) in
    Ok
      {
        platform;
        workload;
        period;
        alloc;
        port_time;
        work_time;
        throughput = Workload.total_size workload // period;
        pivots = sol.Simplex.Solver.pivots;
      }

let solve_exn platform workload = Errors.get_exn (solve platform workload)

(* ------------------------------------------------------------------ *)
(* Finite batches                                                      *)

type batch = {
  b_platform : Platform.t;
  b_workload : Workload.t;
  order : int array;
  sequence : int array;
  depth : int;
  makespan : Q.t;
  chunks : Q.t array array;
  send_starts : Q.t array array;
  compute_starts : Q.t array array;
  return_starts : Q.t array array;
  b_pivots : int;
}

(* Load sequence: release order, ties by position (a stable sort). *)
let sequence_of workload =
  let kk = Workload.size workload in
  let seq = Array.init kk Fun.id in
  let arr = Array.map (fun k -> ((Workload.get workload k).Workload.release, k)) seq in
  Array.sort (fun (r1, k1) (r2, k2) ->
      match Q.compare r1 r2 with 0 -> compare k1 k2 | c -> c) arr;
  Array.map snd arr

(* The port's activity sequence at interleave depth D: send-blocks
   S_0 .. S_D first, then R_j alternating with S_{D+1+j}, then the
   trailing returns.  Depth 0 is back-to-back (S R S R ...); depth
   K-1 is the paper's single-load shape (all sends, then all
   returns). *)
let port_blocks ~depth kk =
  let blocks = ref [] in
  let push b = blocks := b :: !blocks in
  let d = min depth (kk - 1) in
  for k = 0 to d do
    push (`Send k)
  done;
  for j = 0 to kk - 1 do
    push (`Return j);
    if d + 1 + j < kk then push (`Send (d + 1 + j))
  done;
  List.rev !blocks

let solve_batch ?(depth = 1) ?order platform workload =
  let ( let* ) = Result.bind in
  if depth < 0 then invalid_arg "Steady_state.solve_batch: negative depth";
  let order =
    match order with Some o -> o | None -> Fifo.order platform
  in
  (* Validate the worker order as a scenario over the platform. *)
  ignore (Scenario.fifo_exn platform order);
  let q = Array.length order in
  let kk = Workload.size workload in
  let seq = sequence_of workload in
  let nchunks = kk * q in
  let nvars = (4 * nchunks) + 1 in
  (* [k] below is a sequence position, not a workload index. *)
  let a_var k j = (k * q) + j in
  let u_var k j = nchunks + (k * q) + j in
  let s_var k j = (2 * nchunks) + (k * q) + j in
  let t_var k j = (3 * nchunks) + (k * q) + j in
  let m_var = 4 * nchunks in
  let wk j = Platform.get platform order.(j) in
  let dcost k j = Workload.return_cost workload seq.(k) (wk j) in
  let release k = (Workload.get workload seq.(k)).Workload.release in
  let size k = (Workload.get workload seq.(k)).Workload.size in
  let row () = Array.make nvars Q.zero in
  let constraints = ref [] in
  let add coeffs relation rhs =
    constraints := Simplex.Problem.constr coeffs relation rhs :: !constraints
  in
  let le coeffs rhs = add coeffs Simplex.Problem.Le rhs in
  for k = 0 to kk - 1 do
    (* the whole load is distributed *)
    let coeffs = row () in
    for j = 0 to q - 1 do
      coeffs.(a_var k j) <- Q.one
    done;
    add coeffs Simplex.Problem.Eq (size k);
    for j = 0 to q - 1 do
      (* no data leaves the master before the release date *)
      let coeffs = row () in
      coeffs.(u_var k j) <- Q.minus_one;
      le coeffs (Q.neg (release k));
      (* computation starts after reception *)
      let coeffs = row () in
      coeffs.(u_var k j) <- Q.one;
      coeffs.(a_var k j) <- (wk j).Platform.c;
      coeffs.(s_var k j) <- Q.minus_one;
      le coeffs Q.zero;
      (* a worker computes its chunks in sequence order *)
      if k > 0 then begin
        let coeffs = row () in
        coeffs.(s_var (k - 1) j) <- Q.one;
        coeffs.(a_var (k - 1) j) <- (wk j).Platform.w;
        coeffs.(s_var k j) <- Q.minus_one;
        le coeffs Q.zero
      end;
      (* the return waits for the computation *)
      let coeffs = row () in
      coeffs.(s_var k j) <- Q.one;
      coeffs.(a_var k j) <- (wk j).Platform.w;
      coeffs.(t_var k j) <- Q.minus_one;
      le coeffs Q.zero;
      (* the makespan covers every return's end *)
      let coeffs = row () in
      coeffs.(t_var k j) <- Q.one;
      coeffs.(a_var k j) <- dcost k j;
      coeffs.(m_var) <- Q.minus_one;
      le coeffs Q.zero
    done
  done;
  (* one-port chain over the interleaved block sequence *)
  let items =
    List.concat_map
      (fun block ->
        List.init q (fun j ->
            match block with
            | `Send k -> (u_var k j, (wk j).Platform.c, a_var k j)
            | `Return k -> (t_var k j, dcost k j, a_var k j)))
      (port_blocks ~depth kk)
  in
  let rec chain = function
    | (sv, cost, av) :: ((sv', _, _) :: _ as rest) ->
      let coeffs = row () in
      coeffs.(sv) <- Q.one;
      coeffs.(av) <- cost;
      coeffs.(sv') <- Q.minus_one;
      le coeffs Q.zero;
      chain rest
    | _ -> ()
  in
  chain items;
  let objective = Array.make nvars Q.zero in
  objective.(m_var) <- Q.one;
  let problem =
    Simplex.Problem.make Simplex.Problem.Minimize objective
      (List.rev !constraints)
  in
  match Simplex.Solver.solve problem with
  | Simplex.Solver.Infeasible -> Error Errors.Infeasible
  | Simplex.Solver.Unbounded -> Error Errors.Unbounded
  | Simplex.Solver.Optimal sol ->
    let* () = certify problem sol ~what:"Steady_state.solve_batch" in
    let point = sol.Simplex.Solver.point in
    (* re-index from sequence position back to workload load index *)
    let by_load f =
      let out = Array.make kk [||] in
      Array.iteri
        (fun k load -> out.(load) <- Array.init q (fun j -> point.(f k j)))
        seq;
      out
    in
    Ok
      {
        b_platform = platform;
        b_workload = workload;
        order;
        sequence = seq;
        depth;
        makespan = point.(m_var);
        chunks = by_load a_var;
        send_starts = by_load u_var;
        compute_starts = by_load s_var;
        return_starts = by_load t_var;
        b_pivots = sol.Simplex.Solver.pivots;
      }

let solve_batch_best ?max_depth ?order platform workload =
  let kk = Workload.size workload in
  let max_depth = match max_depth with Some d -> d | None -> min 2 (kk - 1) in
  let best = ref None in
  let err = ref None in
  for depth = 0 to max 0 max_depth do
    match solve_batch ~depth ?order platform workload with
    | Error e -> if !err = None then err := Some e
    | Ok b -> (
      match !best with
      | Some prev when prev.makespan <=/ b.makespan -> ()
      | _ -> best := Some b)
  done;
  match (!best, !err) with
  | Some b, _ -> Ok b
  | None, Some e -> Error e
  | None, None -> Error Errors.Infeasible

let port_sequence (b : batch) =
  let q = Array.length b.order in
  List.concat_map
    (fun block ->
      List.init q (fun j ->
          match block with
          | `Send k -> (`Send, b.sequence.(k), j)
          | `Return k -> (`Return, b.sequence.(k), j)))
    (port_blocks ~depth:b.depth (Workload.size b.b_workload))

let batch_schedules (b : batch) =
  let kk = Workload.size b.b_workload in
  Array.init kk (fun k ->
      let induced =
        Workload.induced_platform b.b_workload k b.b_platform
      in
      let entries = ref [] in
      Array.iteri
        (fun j i ->
          let a = b.chunks.(k).(j) in
          if Q.sign a > 0 then begin
            let wk = Platform.get induced i in
            let u = b.send_starts.(k).(j)
            and s = b.compute_starts.(k).(j)
            and t = b.return_starts.(k).(j) in
            entries :=
              {
                Schedule.worker = i;
                alpha = a;
                send = { Schedule.start = u; finish = u +/ (a */ wk.Platform.c) };
                compute = { Schedule.start = s; finish = s +/ (a */ wk.Platform.w) };
                return_ = { Schedule.start = t; finish = t +/ (a */ wk.Platform.d) };
              }
              :: !entries
          end)
        b.order;
      ( k,
        {
          Schedule.platform = induced;
          horizon = b.makespan;
          entries = Array.of_list (List.rev !entries);
        } ))

let naive_makespan platform workload =
  let ( let* ) = Result.bind in
  let seq = sequence_of workload in
  let rec go clock warm = function
    | [] -> Ok clock
    | k :: rest ->
      let l = Workload.get workload k in
      let induced = Workload.induced_platform workload k platform in
      let scenario = Scenario.fifo_exn induced (Fifo.order induced) in
      let* sol = Solve.solve ~mode:`Fast ?warm scenario in
      let span = Lp_model.time_for_load sol ~load:l.Workload.size in
      let start = Q.max clock l.Workload.release in
      go (start +/ span) (Some sol.Lp_model.basis) rest
  in
  go Q.zero None (Array.to_list seq)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>period = %s (~%.6g), throughput = %s (~%.6g)@,port busy = %s@,"
    (Q.to_string s.period) (Q.to_float s.period)
    (Q.to_string s.throughput)
    (Q.to_float s.throughput)
    (Q.to_string s.port_time);
  Array.iteri
    (fun k per_load ->
      Format.fprintf fmt "  %-6s alloc: %s@,"
        (Workload.get s.workload k).Workload.name
        (String.concat " " (Array.to_list (Array.map Q.to_string per_load))))
    s.alloc;
  Format.fprintf fmt "@]"

let pp_batch fmt b =
  Format.fprintf fmt "@[<v>makespan = %s (~%.6g), depth = %d@,"
    (Q.to_string b.makespan) (Q.to_float b.makespan) b.depth;
  Array.iteri
    (fun k per_load ->
      Format.fprintf fmt "  %-6s chunks: %s@,"
        (Workload.get b.b_workload k).Workload.name
        (String.concat " " (Array.to_list (Array.map Q.to_string per_load))))
    b.chunks;
  Format.fprintf fmt "@]"
