(** Extension: multi-round (multi-installment) schedules.

    The paper is single-round by design, and its related-work section
    explains the trade-off: multi-round strategies pipeline better
    (workers start computing after receiving only their first small
    chunk), but under a {e linear} cost model the optimizer degenerates
    — more rounds are always at least as good, favouring infinitely
    many infinitely small messages — so multi-round study requires the
    {e affine} model, whose latencies penalize extra messages.

    This module makes that discussion executable.  For a fixed
    {e activation structure} — [R] rounds of sends to the enrolled
    workers in a fixed order, followed (in the with-returns variant) by
    the result messages in the same FIFO chunk order — the optimal chunk
    sizes are computed by a linear program with explicit event-time
    variables:

    - sends are packed back-to-back in round-major order;
    - a chunk's computation starts after both its reception and the
      previous chunk's computation;
    - result transfers form a one-port chain after all sends, each no
      earlier than its chunk's computation end, the last ending at the
      horizon.

    Properties recovered by the test suite: with one round this LP
    equals the paper's scenario LP exactly; with zero latencies the
    throughput is non-decreasing in [R]; with latencies an optimal
    finite [R] emerges. *)

module Q = Numeric.Rational

type config = {
  rounds : int;  (** [R >= 1] *)
  order : int array;  (** enrolled workers, sending order (per round) *)
  with_returns : bool;  (** include result messages (the paper's setting) *)
  send_latency : Q.t;  (** per-message start-up cost (affine model) *)
  return_latency : Q.t;
}

(** [config ?with_returns ?send_latency ?return_latency ~rounds order]
    builds a configuration (defaults: returns on, zero latencies).
    @raise Invalid_argument if [rounds < 1] or [order] is empty. *)
val config :
  ?with_returns:bool ->
  ?send_latency:Q.t ->
  ?return_latency:Q.t ->
  rounds:int ->
  int array ->
  config

type solved = private {
  platform : Platform.t;
  config : config;
  rho : Q.t;  (** total load processed within [T = 1] *)
  chunks : Q.t array array;  (** [chunks.(r).(k)]: round [r], order slot [k] *)
  alpha : Q.t array;  (** per-worker totals, platform indexing *)
}

type outcome = Solved of solved | Too_slow

(** [solve platform config] optimizes the chunk sizes. [Too_slow] only
    occurs with latencies exceeding the deadline.
    @raise Errors.Error on a degenerate LP (cannot happen for a
    well-formed platform). *)
val solve : Platform.t -> config -> outcome

(** One point of a {!sweep_rounds} curve. *)
type round_point = { rounds : int; throughput : Q.t }

(** [sweep_rounds platform ?with_returns ?send_latency ?return_latency
    ~order ~max_rounds ()] lists the throughput for [r = 1..max_rounds]
    (omitting infeasible round counts). *)
val sweep_rounds :
  Platform.t ->
  ?with_returns:bool ->
  ?send_latency:Q.t ->
  ?return_latency:Q.t ->
  order:int array ->
  max_rounds:int ->
  unit ->
  round_point list
