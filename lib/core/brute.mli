(** Exhaustive search over message orderings.

    The complexity of the general problem (free permutation pair) is
    open — the paper conjectures NP-hardness.  For small platforms we
    can brute-force it: every ordering of the full worker set is tried
    (subsets are covered automatically, since the LP may assign zero
    load), for FIFO, LIFO, or arbitrary [(sigma1, sigma2)] pairs.  Used
    by the test suite to verify Theorem 1 and by the ablation benchmarks
    to measure how far FIFO/LIFO sit from the best-known schedule.

    Since PR 3 the enumeration is a branch-and-bound: each candidate is
    first measured against the incumbent with the exact knapsack bound
    of {!Bounds.scenario_bound} (for [best_general], whole [sigma1]
    blocks are measured with {!Bounds.prefix_bound}), LPs that cannot
    win are skipped, and the surviving solves run through the certified
    fast pipeline ({!Lp_model.solve_cached} with [fast], threading the
    previous optimal basis as a warm start).  Pruning is non-strict
    against the sequential incumbent and strict against the shared
    parallel incumbent, so the returned optimum stays {e bit-identical}
    to the unpruned exhaustive scan — and identical for every [jobs]
    value.  [~fast:false ~prune:false] restores the plain exact scan
    (benchmark baseline).

    All entry points accept [?jobs] (default 1): the independent LPs are
    fanned out over a domain pool, and the reduction runs sequentially
    in enumeration order with a strict comparison. *)

module Q = Numeric.Rational

(** [permutations_seq n] enumerates all permutations of [0..n-1] lazily,
    in the same order {!permutations} lists them; constant live memory. *)
val permutations_seq : int -> int array Seq.t

(** [permutations n] lists all permutations of [0..n-1].  [n! ] entries:
    keep [n] small (thin eager wrapper over {!permutations_seq}). *)
val permutations : int -> int array list

(** [best_fifo ?model ?jobs ?fast ?prune platform] is the optimum over
    all FIFO scenarios ([fast] and [prune] default [true]; disabling
    both gives the plain exact scan, bit-identical results either
    way). *)
val best_fifo :
  ?model:Lp_model.model ->
  ?jobs:int ->
  ?fast:bool ->
  ?prune:bool ->
  Platform.t ->
  Lp_model.solved

(** [best_lifo ?model ?jobs ?fast ?prune platform] is the optimum over
    all LIFO scenarios. *)
val best_lifo :
  ?model:Lp_model.model ->
  ?jobs:int ->
  ?fast:bool ->
  ?prune:bool ->
  Platform.t ->
  Lp_model.solved

(** [best_general ?model ?jobs ?fast ?prune platform] is the optimum
    over all [(sigma1, sigma2)] pairs — [ (n!)² ] LPs before pruning. *)
val best_general :
  ?model:Lp_model.model ->
  ?jobs:int ->
  ?fast:bool ->
  ?prune:bool ->
  Platform.t ->
  Lp_model.solved
