(** The one error type shared by every scheduling entry point.

    Fallible operations come in pairs: a [result]-returning base
    function ([Scenario.make], [Lp_model.solve], ...) and a thin [_exn]
    wrapper that raises {!Error}.  Nothing in the public API signals
    errors through [Failure] or [Invalid_argument] anymore; match on
    {!t} (or catch {!Error}) instead of parsing exception strings. *)

type t =
  | Unbounded  (** the scheduling LP is unbounded (degenerate platform) *)
  | Infeasible  (** the scheduling LP is infeasible (degenerate platform) *)
  | Invalid_scenario of string
      (** malformed combinatorial input: bad permutation pair, empty
          enrollment, out-of-range worker index, unusable platform ... *)
  | Parse_error of { file : string option; line : int; col : int; msg : string }
      (** malformed textual input ({!Platform_io}, {!Schedule_io},
          {!Faults}): 1-based line and column of the offending token *)
  | Io_error of string  (** the underlying file could not be read/written *)

(** Raised by the [_exn] wrappers. *)
exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [of_solver e] maps a simplex-level failure into {!t}. *)
val of_solver : Simplex.Solver.error -> t

(** [get_exn r] unwraps [Ok], raising {!Error} on [Error]. *)
val get_exn : ('a, t) result -> 'a

(** [invalid fmt ...] builds an [Error (Invalid_scenario msg)] result. *)
val invalid : ('a, unit, string, ('b, t) result) format4 -> 'a

(** [parse_error ?file ~line ~col fmt ...] builds an
    [Error (Parse_error _)] result (1-based positions). *)
val parse_error :
  ?file:string -> line:int -> col:int -> ('a, unit, string, ('b, t) result) format4 -> 'a

(** [in_file path e] attaches the file name to a {!Parse_error}
    (identity on every other constructor). *)
val in_file : string -> t -> t
