(** Deterministic fault injection for star platforms.

    A {e fault plan} is a finite set of timed perturbations of the
    platform — the misbehaving-cluster counterpart of the paper's
    closed-world LP (2), whose bounds are all tight and therefore blow
    up under any runtime degradation.  Plans are exact (rational
    factors and dates), composable, and generated from a seeded
    {!Numeric.Prng} stream so every experiment is reproducible and
    independent of [--jobs].

    Semantics, per fault kind:
    - [Slowdown]: from [from_] on, the worker computes [factor] times
      slower (factors of several slowdowns compound);
    - [Degrade]: from [from_] on, the worker's link is [factor] times
      slower in both directions ([c] and [d] stretch together, which
      preserves the paper's return ratio [z]);
    - [Crash]: from [at] on, the worker never finishes a computation and
      never returns results.  A send {e towards} a crashed worker still
      occupies the one-port master at nominal speed (the master pushes
      blindly);
    - [Stall]: transfers to/from the worker freeze during
      [[at, at + duration)] and resume afterwards.

    {!finish_time} integrates an activity through the induced
    piecewise-constant rate profile, exactly. *)

module Q = Numeric.Rational

type fault =
  | Slowdown of { worker : int; factor : Q.t; from_ : Q.t }
  | Degrade of { worker : int; factor : Q.t; from_ : Q.t }
  | Crash of { worker : int; at : Q.t }
  | Stall of { worker : int; at : Q.t; duration : Q.t }

(** A validated plan: onset-sorted faults. *)
type plan = private fault list

val onset : fault -> Q.t
val worker_of : fault -> int
val fault_to_string : fault -> string

(** [make faults] validates (worker indices non-negative, onsets
    non-negative, factors [>= 1], stall durations positive) and sorts by
    onset. *)
val make : fault list -> (plan, Errors.t) result

(** @raise Errors.Error on an invalid fault list. *)
val make_exn : fault list -> plan

val empty : plan
val is_empty : plan -> bool
val faults : plan -> fault list

(** [first_onset p] is the earliest fault time — the re-planner's splice
    point. *)
val first_onset : plan -> Q.t option

(** [validate_for platform p] additionally checks every worker index
    against the platform size. *)
val validate_for : Platform.t -> plan -> (unit, Errors.t) result

(** [crashed p] lists workers hit by a [Crash], sorted. *)
val crashed : plan -> int list

(** [faulty_workers p] lists workers hit by {e any} fault, sorted. *)
val faulty_workers : plan -> int list

(** [survivors platform p] lists the non-crashed worker indices, in
    platform order. *)
val survivors : Platform.t -> plan -> int list

(** [degraded_platform platform p] applies every slowdown/degradation
    factor in full, whatever its onset: the steady-state worst-case
    platform that recovery schedules are planned on and validated
    against.  Crashes and stalls do not change the parameters. *)
val degraded_platform : Platform.t -> plan -> Platform.t

(** One master/worker activity, for {!finish_time}. *)
type activity = Send_to of int | Compute_on of int | Return_from of int

(** [finish_time platform plan act ~start ~load] is the exact completion
    date of the activity started at [start] moving/processing [load]
    units, integrated through the plan's piecewise rate profile;
    [None] when it never completes (crash).
    @raise Invalid_argument on negative [load]. *)
val finish_time :
  Platform.t -> plan -> activity -> start:Q.t -> load:Q.t -> Q.t option

(** {1 Text format}

    One fault per line — [slowdown worker factor from], [degrade worker
    factor from], [crash worker at], [stall worker at duration] — with
    [#] comments and blank lines ignored:

    {v
    # dls faults v1
    slowdown 2 3/2 1/4
    crash 0 5/8
    v} *)

val to_string : plan -> string

(** [of_string s] parses a plan; malformed input yields a typed
    {!Errors.Parse_error} with 1-based line/column, never an
    exception. *)
val of_string : string -> (plan, Errors.t) result

(** [write path p] writes the plan.
    @raise Errors.Error ([Io_error]) when the file cannot be written. *)
val write : string -> plan -> unit

val read : string -> (plan, Errors.t) result

(** [gen rng ~workers ~deadline ~severity] draws a random plan of 1-3
    faults with onsets on a 16th-of-deadline grid.  [severity] in
    [[0, 1]] scales both the number of faults and the factor
    amplitudes; crashes always leave at least one worker alive.  The
    result depends only on the [rng] state, so seeding one generator
    per case index makes whole campaigns reproducible and
    jobs-invariant. *)
val gen :
  Numeric.Prng.t -> workers:int -> deadline:Q.t -> severity:float -> plan
