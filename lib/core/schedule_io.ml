module Q = Numeric.Rational
module T = Text_format

let to_string (sched : Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dls schedule v1\n";
  Buffer.add_string buf (Printf.sprintf "horizon %s\n" (Q.to_string sched.Schedule.horizon));
  for i = 0 to Platform.size sched.Schedule.platform - 1 do
    let wk = Platform.get sched.Schedule.platform i in
    Buffer.add_string buf
      (Printf.sprintf "worker %s %s %s %s\n" wk.Platform.name
         (Q.to_string wk.Platform.c) (Q.to_string wk.Platform.w)
         (Q.to_string wk.Platform.d))
  done;
  Array.iter
    (fun e ->
      let ph p = Printf.sprintf "%s %s" (Q.to_string p.Schedule.start) (Q.to_string p.Schedule.finish) in
      Buffer.add_string buf
        (Printf.sprintf "entry %d %s %s %s %s\n" e.Schedule.worker
           (Q.to_string e.Schedule.alpha)
           (ph e.Schedule.send) (ph e.Schedule.compute) (ph e.Schedule.return_)))
    sched.Schedule.entries;
  Buffer.contents buf

let ( let* ) = Result.bind

let of_string text =
  let horizon = ref None in
  let workers = ref [] in
  let entries = ref [] in
  let parse_line lineno line =
    match T.tokens line with
    | [] -> Ok ()
    | { T.text = "horizon"; col } :: rest -> (
      match rest with
      | [ h ] ->
        if !horizon <> None then
          Errors.parse_error ~line:lineno ~col "duplicate horizon"
        else
          let* h = T.rational ~line:lineno h in
          horizon := Some h;
          Ok ()
      | _ -> Errors.parse_error ~line:lineno ~col "horizon takes one rational")
    | { T.text = "worker"; col } :: rest -> (
      match rest with
      | [ name; c; w; d ] ->
        let* c = T.rational ~line:lineno c in
        let* w = T.rational ~line:lineno w in
        let* d = T.rational ~line:lineno d in
        (match Platform.worker ~name:name.T.text ~c ~w ~d () with
        | wk ->
          workers := wk :: !workers;
          Ok ()
        | exception Invalid_argument msg ->
          Errors.parse_error ~line:lineno ~col:name.T.col "%s" msg)
      | _ -> Errors.parse_error ~line:lineno ~col "worker takes: name c w d")
    | { T.text = "entry"; col } :: rest -> (
      match rest with
      | [ i; alpha; s0; s1; c0; c1; r0; r1 ] ->
        let* index = T.int ~line:lineno i in
        let* alpha = T.rational ~line:lineno alpha in
        let phase a b =
          let* s = T.rational ~line:lineno a in
          let* f = T.rational ~line:lineno b in
          Ok { Schedule.start = s; finish = f }
        in
        let* send = phase s0 s1 in
        let* compute = phase c0 c1 in
        let* return_ = phase r0 r1 in
        entries := { Schedule.worker = index; alpha; send; compute; return_ } :: !entries;
        Ok ()
      | _ ->
        Errors.parse_error ~line:lineno ~col
          "entry takes: index alpha send.start send.finish compute.start \
           compute.finish return.start return.finish")
    | directive :: _ ->
      Errors.parse_error ~line:lineno ~col:directive.T.col
        "unknown directive %S" directive.T.text
  in
  let rec walk lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let* () = parse_line lineno line in
      walk (lineno + 1) rest
  in
  let* () = walk 1 (String.split_on_char '\n' text) in
  match (!horizon, List.rev !workers) with
  | None, _ -> Error (Errors.Invalid_scenario "missing horizon line")
  | _, [] -> Error (Errors.Invalid_scenario "no worker lines")
  | Some horizon, workers ->
    let* platform = Platform.make workers in
    let n = Platform.size platform in
    let entries = Array.of_list (List.rev !entries) in
    let bad =
      Array.find_opt
        (fun e -> e.Schedule.worker < 0 || e.Schedule.worker >= n)
        entries
    in
    (match bad with
    | Some e ->
      Errors.invalid "entry refers to worker %d, platform has %d workers"
        e.Schedule.worker n
    | None -> Ok { Schedule.platform; horizon; entries })

let write path sched =
  match Text_format.write_file path (to_string sched) with
  | Ok () -> ()
  | Error e -> raise (Errors.Error e)

let read path =
  let* content = Text_format.read_file path in
  Result.map_error (Errors.in_file path) (of_string content)
