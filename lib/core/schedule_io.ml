module Q = Numeric.Rational

let to_string (sched : Schedule.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# dls schedule v1\n";
  Buffer.add_string buf (Printf.sprintf "horizon %s\n" (Q.to_string sched.Schedule.horizon));
  for i = 0 to Platform.size sched.Schedule.platform - 1 do
    let wk = Platform.get sched.Schedule.platform i in
    Buffer.add_string buf
      (Printf.sprintf "worker %s %s %s %s\n" wk.Platform.name
         (Q.to_string wk.Platform.c) (Q.to_string wk.Platform.w)
         (Q.to_string wk.Platform.d))
  done;
  Array.iter
    (fun e ->
      let ph p = Printf.sprintf "%s %s" (Q.to_string p.Schedule.start) (Q.to_string p.Schedule.finish) in
      Buffer.add_string buf
        (Printf.sprintf "entry %d %s %s %s %s\n" e.Schedule.worker
           (Q.to_string e.Schedule.alpha)
           (ph e.Schedule.send) (ph e.Schedule.compute) (ph e.Schedule.return_)))
    sched.Schedule.entries;
  Buffer.contents buf

let of_string text =
  let exception Bad of string in
  let fail lineno fmt =
    Printf.ksprintf (fun s -> raise (Bad (Printf.sprintf "line %d: %s" lineno s))) fmt
  in
  let rational lineno s =
    match Q.of_string s with
    | q -> q
    | exception _ -> fail lineno "not a rational: %S" s
  in
  let horizon = ref None in
  let workers = ref [] in
  let entries = ref [] in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | [] -> ()
    | [ "horizon"; h ] ->
      if !horizon <> None then fail lineno "duplicate horizon";
      horizon := Some (rational lineno h)
    | "horizon" :: _ -> fail lineno "horizon takes one rational"
    | [ "worker"; name; c; w; d ] -> (
      match
        Platform.worker ~name ~c:(rational lineno c) ~w:(rational lineno w)
          ~d:(rational lineno d) ()
      with
      | wk -> workers := wk :: !workers
      | exception Invalid_argument msg -> fail lineno "%s" msg)
    | "worker" :: _ -> fail lineno "worker takes: name c w d"
    | [ "entry"; i; alpha; s0; s1; c0; c1; r0; r1 ] ->
      let index =
        match int_of_string_opt i with
        | Some i -> i
        | None -> fail lineno "not a worker index: %S" i
      in
      let r = rational lineno in
      let phase a b = { Schedule.start = r a; finish = r b } in
      entries :=
        {
          Schedule.worker = index;
          alpha = r alpha;
          send = phase s0 s1;
          compute = phase c0 c1;
          return_ = phase r0 r1;
        }
        :: !entries
    | "entry" :: _ ->
      fail lineno "entry takes: index alpha send.start send.finish \
                   compute.start compute.finish return.start return.finish"
    | directive :: _ -> fail lineno "unknown directive %S" directive
  in
  match List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' text) with
  | exception Bad msg -> Error msg
  | () -> (
    match (!horizon, List.rev !workers) with
    | None, _ -> Error "missing horizon line"
    | _, [] -> Error "no worker lines"
    | Some horizon, workers -> (
      match Platform.make workers with
      | Error e -> Error (Errors.to_string e)
      | Ok platform ->
        let n = Platform.size platform in
        let entries = Array.of_list (List.rev !entries) in
        let bad =
          Array.find_opt
            (fun e -> e.Schedule.worker < 0 || e.Schedule.worker >= n)
            entries
        in
        (match bad with
        | Some e ->
          Error
            (Printf.sprintf "entry refers to worker %d, platform has %d workers"
               e.Schedule.worker n)
        | None -> Ok { Schedule.platform; horizon; entries })))

let write path sched =
  let oc = open_out path in
  output_string oc (to_string sched);
  close_out oc

let read path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    of_string text
