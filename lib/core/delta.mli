(** Parametric deltas against a base platform/scenario.

    Production request streams are dominated by near-duplicates of a
    canonical base case: the same platform with one worker's link or
    compute speed nudged, a worker added or removed, or the return
    ratio [z] swept (the parametric analyses of Drozdowski & Lawenda's
    line of work).  This module gives those edits a first-class,
    composable representation so callers can say "the base scenario,
    plus these changes" instead of rebuilding platforms by hand — and so
    the cached solver ({!Solve.solve}[ ~mode:`Cached]) can recognise the
    resulting scenarios as neighbours of an already solved one and
    {e repair} the cached optimal basis instead of solving from scratch
    (see {!Lp_model.resolve_stats}).

    {!Sensitivity}'s [Comm]/[Comp] perturbations are the two
    single-change special cases ({!Sensitivity.to_delta}). *)

module Q = Numeric.Rational

(** One edit.  Worker indices are 0-based (the text form
    {!of_spec}/{!to_spec} uses 1-based indices, matching the default
    [P1..Pn] worker names). *)
type change =
  | Scale_comm of { worker : int; factor : Q.t }
      (** scale the worker's [c] {e and} [d] by [factor > 0],
          preserving the return ratio (the paper's hypothesis) *)
  | Scale_comp of { worker : int; factor : Q.t }
      (** scale the worker's [w] by [factor > 0] *)
  | Set_z of Q.t
      (** impose a uniform return ratio: [d_i := z * c_i] on every
          worker, [z >= 0] *)
  | Add_worker of Platform.worker  (** append a worker *)
  | Remove_worker of int  (** remove the worker (at least one must stay) *)

(** A delta: changes applied left to right. *)
type t = change list

(** [preserves_shape d] holds when [d] keeps the worker count (no
    {!Add_worker}/{!Remove_worker}): exactly the deltas whose perturbed
    LP has the same dimensions as the base, so the cached basis-repair
    path can apply. *)
val preserves_shape : t -> bool

(** [apply platform d] applies every change in order.  Out-of-range
    indices, non-positive factors, a negative [z], or removing the last
    worker yield [Error (Invalid_scenario _)]. *)
val apply : Platform.t -> t -> (Platform.t, Errors.t) result

val apply_exn : Platform.t -> t -> Platform.t

(** [apply_scenario s d] applies [d] to the scenario's platform.  When
    the worker count is unchanged the permutation pair is kept verbatim;
    when it changes (add/remove), the orderings are rebuilt as the
    full-enrollment FIFO of the new platform — re-sort explicitly if a
    different order is wanted. *)
val apply_scenario : Scenario.t -> t -> (Scenario.t, Errors.t) result

val apply_scenario_exn : Scenario.t -> t -> Scenario.t

(** {1 Text form}

    Comma-separated changes, 1-based worker indices:
    [comm:2:5/4] (scale worker 2's [c],[d] by 5/4), [comp:1:1/2],
    [z:3/2], [add:1:2:1/2] ([c:w:d], auto-named), [drop:3]. *)

(** [of_spec ?file ~line ~col s] parses the compact delta spec;
    positions in errors are 1-based and offset by [col] (stray
    separators and whitespace-only fields are rejected with the exact
    position of the offending field). *)
val of_spec :
  ?file:string -> line:int -> col:int -> string -> (t, Errors.t) result

val of_spec_exn : ?file:string -> line:int -> col:int -> string -> t

(** [to_spec d] renders the canonical spec; [of_spec] of the result is
    [d] again. *)
val to_spec : t -> string

val change_to_string : Platform.t -> change -> string

(** [pp platform fmt d] pretty-prints against the base platform (worker
    names resolved). *)
val pp : Platform.t -> Format.formatter -> t -> unit
