(** Shared plumbing for the line-oriented text formats ({!Platform_io},
    {!Schedule_io}, {!Faults}): comment-stripping tokenization with
    column positions, positioned scalar parsers, and file helpers that
    never raise on I/O failures. *)

type token = { text : string; col : int  (** 1-based *) }

(** [tokens line] splits [line] on blanks, dropping a ['#'] comment;
    each token carries its 1-based starting column. *)
val tokens : string -> token list

(** [rational ~line tok] parses the token as an exact rational,
    reporting a positioned {!Errors.Parse_error} on malformed input
    (including ["1/0"]). *)
val rational : line:int -> token -> (Numeric.Rational.t, Errors.t) result

(** [int ~line tok] parses the token as an OCaml int. *)
val int : line:int -> token -> (int, Errors.t) result

(** [read_file path] reads the whole file; [Error (Io_error _)] instead
    of [Sys_error]. *)
val read_file : string -> (string, Errors.t) result

(** [write_file path content] writes the whole file. *)
val write_file : string -> string -> (unit, Errors.t) result
