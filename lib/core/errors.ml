type t =
  | Unbounded
  | Infeasible
  | Invalid_scenario of string
  | Parse_error of { file : string option; line : int; col : int; msg : string }
  | Io_error of string

exception Error of t

let to_string = function
  | Unbounded -> "unbounded scheduling LP"
  | Infeasible -> "infeasible scheduling LP"
  | Invalid_scenario msg -> "invalid scenario: " ^ msg
  | Parse_error { file; line; col; msg } ->
    let where =
      match file with Some f -> Printf.sprintf "%s:%d:%d" f line col | None -> Printf.sprintf "line %d, column %d" line col
    in
    Printf.sprintf "parse error at %s: %s" where msg
  | Io_error msg -> "i/o error: " ^ msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

let of_solver = function
  | Simplex.Solver.Error_unbounded -> Unbounded
  | Simplex.Solver.Error_infeasible -> Infeasible

let get_exn = function Ok v -> v | Error e -> raise (Error e)
let invalid fmt =
  Printf.ksprintf (fun msg -> Result.Error (Invalid_scenario msg)) fmt

let parse_error ?file ~line ~col fmt =
  Printf.ksprintf
    (fun msg -> Result.Error (Parse_error { file; line; col; msg }))
    fmt

let in_file file = function
  | Parse_error p -> Parse_error { p with file = Some file }
  | e -> e

(* Render the payload in [Printexc] backtraces and alcotest failures. *)
let () =
  Printexc.register_printer (function
    | Error e -> Some ("Dls.Errors.Error: " ^ to_string e)
    | _ -> None)
