(** The one solver front door.

    Historically the library grew three entry points for the same LP —
    {!Lp_model.solve} (cold exact), {!Lp_model.solve_fast} (certified
    float-first, PR 3) and {!Lp_model.solve_cached} (LRU-memoized,
    PR 5) — and every caller picked one by name.  This module folds the
    choice into a [mode] argument so call sites say {e what} guarantee
    they need, not {e which} pipeline to run; the old names survive as
    deprecated aliases in {!Lp_model}.

    All three modes return bit-identical {!Lp_model.solved} records by
    construction (the fast pipeline certifies or falls back; the cache
    stores the same records), so [mode] is purely a performance
    knob. *)

(** How to run the solve:
    - [`Exact]: the cold exact simplex, no floats anywhere — the
      reference path;
    - [`Fast]: certified float-first pipeline, bit-identical to
      [`Exact] (default);
    - [`Cached]: [`Fast] memoized through the process-wide LRU; a miss
      additionally probes the cache for the nearest already solved
      neighbour (same shape, few differing worker fields — e.g. a
      {!Delta} nudge) and warm-{e repairs} its optimal basis instead of
      solving from scratch when the repair certifies
      ({!Lp_model.solve_from_neighbor}; counters in
      {!Lp_model.resolve_stats}).  Still bit-identical: certification
      failure falls back to the full pipeline. *)
type mode = [ `Exact | `Fast | `Cached ]

(** [solve ?mode ?model ?warm ?max_float_pivots scenario] solves the
    scenario LP (defaults: [`Fast], [One_port]).  [warm] (a
    neighbouring scenario's terminal basis) and [max_float_pivots] only
    affect the [`Fast] and [`Cached] modes. *)
val solve :
  ?mode:mode ->
  ?model:Lp_model.model ->
  ?warm:int array ->
  ?max_float_pivots:int ->
  Scenario.t ->
  (Lp_model.solved, Errors.t) result

(** [solve_exn] is {!solve}. @raise Errors.Error on a degenerate LP. *)
val solve_exn :
  ?mode:mode ->
  ?model:Lp_model.model ->
  ?warm:int array ->
  ?max_float_pivots:int ->
  Scenario.t ->
  Lp_model.solved
