(** Explicit schedules: concrete start/finish dates for every transfer
    and computation, built from an LP solution.

    Construction follows the paper's canonical form: initial messages
    are packed back-to-back from time 0 in [sigma1] order; return
    messages are packed back-to-back ending at the horizon in [sigma2]
    order ("as late as possible").  The LP constraints guarantee the
    result is a valid one-port schedule; {!validate} re-checks every
    invariant from scratch. *)

module Q = Numeric.Rational

type phase = { start : Q.t; finish : Q.t }

type entry = {
  worker : int;  (** platform worker index *)
  alpha : Q.t;  (** load processed by this worker *)
  send : phase;  (** master-to-worker data transfer *)
  compute : phase;
  return_ : phase;  (** worker-to-master result transfer *)
}

type t = {
  platform : Platform.t;
  horizon : Q.t;  (** total schedule duration *)
  entries : entry array;  (** in [sigma1] order; zero-load workers omitted *)
}

(** [of_solved s] realizes the LP solution as a schedule with horizon 1. *)
val of_solved : Lp_model.solved -> t

(** [for_load s ~load] scales the unit schedule so that the total
    processed load is [load]; the horizon becomes [load / rho]. *)
val for_load : Lp_model.solved -> load:Q.t -> t

(** [scale k sched] multiplies every date and every load by [k > 0]. *)
val scale : Q.t -> t -> t

(** [mirror sched] reverses time: sends become returns and vice versa.
    The mirror of a valid schedule on platform [(c, w, d)] is a valid
    schedule on the platform [(d, w, c)] — the paper's argument for the
    [z > 1] case.  The returned schedule lives on that swapped
    platform. *)
val mirror : t -> t

(** [total_load sched] is [Σ alpha]. *)
val total_load : t -> Q.t

val makespan : t -> Q.t

(** One entry of {!idle_times}. *)
type idle_slot = { idle_worker : int; idle : Q.t }

(** [idle_times sched] is the per-entry gap between the end of the
    computation and the start of the return transfer. *)
val idle_times : t -> idle_slot list

(** [validate sched] re-derives every invariant: phase durations match
    [alpha * c / w / d], precedence (receive before compute before
    return), the one-port property (no two master transfers overlap),
    and containment in [0, horizon].  Returns all violations. *)
val validate : t -> (unit, string list) result

val pp : Format.formatter -> t -> unit
